/**
 * @file
 * Interval-style out-of-order core timing model (the Sniper
 * analogue), packaged as a PinTool.
 *
 * The model follows the interval-simulation idea: the core commits
 * dispatchWidth instructions per cycle until a miss event (branch
 * misprediction or off-core memory access) opens an interval whose
 * length is the event's exposed latency.  Exposed latencies are the
 * raw latencies scaled by an overlap factor per hierarchy level, and
 * back-to-back long-latency misses within a ROB window are treated
 * as memory-level parallel (charged once per MLP group).
 */

#ifndef SPLAB_TIMING_INTERVAL_CORE_HH
#define SPLAB_TIMING_INTERVAL_CORE_HH

#include <memory>

#include "branch_predictor.hh"
#include "cache/hierarchy.hh"
#include "machine_config.hh"
#include "pin/pintool.hh"

namespace splab
{

/** Cycle/CPI statistics of one timing run. */
struct TimingStats
{
    ICount instrs = 0;
    double cycles = 0.0;
    u64 branches = 0;
    u64 mispredicts = 0;
    u64 l2Hits = 0;
    u64 l3Hits = 0;
    u64 memAccesses = 0;

    double
    cpi() const
    {
        return instrs ? cycles / static_cast<double>(instrs) : 0.0;
    }

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) /
                              static_cast<double>(branches)
                        : 0.0;
    }
};

/** The timing simulator: attach to an Engine and replay a window. */
class IntervalCoreTool : public PinTool
{
  public:
    explicit IntervalCoreTool(const MachineConfig &config);
    ~IntervalCoreTool() override;

    const char *name() const override { return "sniper-core"; }
    bool wantsMemory() const override { return true; }

    void onBlock(const BlockRecord &rec, const MemAccess *accs,
                 std::size_t nAccs, const BranchRecord *br) override;

    /** Batch path: devirtualized per-block loop over the SoA views
     *  (the interval model is inherently sequential per block). */
    void onBatch(const EventBatch &batch) override;

    /** Microarchitectural warm-up: state trains, stats frozen. */
    void setWarmup(bool on);

    /** Cold-restart the core (caches, predictor, MLP window). */
    void coldRestart();

    /** Zero the statistics (state is kept). */
    void resetStats();

    const TimingStats &stats() const { return timing; }
    const MachineConfig &config() const { return cfg; }
    CacheHierarchy &hierarchy() { return *caches; }

  private:
    double exposedLatency(HitLevel level);

    MachineConfig cfg;
    std::unique_ptr<CacheHierarchy> caches;
    TournamentPredictor predictor;
    TimingStats timing;
    bool warming = false;

    /** Instructions since the last long-latency (memory) miss, for
     *  the MLP overlap window. */
    ICount sinceMemMiss;
};

} // namespace splab

#endif // SPLAB_TIMING_INTERVAL_CORE_HH
