#include "branch_predictor.hh"

#include "support/logging.hh"

namespace splab
{

GsharePredictor::GsharePredictor(u32 historyBits)
{
    SPLAB_ASSERT(historyBits >= 4 && historyBits <= 24,
                 "gshare history bits out of range: ", historyBits);
    table.assign(1ULL << historyBits, 1); // weakly not-taken
    mask = (1ULL << historyBits) - 1;
}

bool
GsharePredictor::predict(Addr pc) const
{
    return table[index(pc)] >= 2;
}

bool
GsharePredictor::update(Addr pc, bool taken)
{
    u64 i = index(pc);
    bool predicted = table[i] >= 2;
    bool correct = predicted == taken;

    if (taken && table[i] < 3)
        ++table[i];
    else if (!taken && table[i] > 0)
        --table[i];
    history = ((history << 1) | (taken ? 1 : 0)) & mask;

    if (!warming) {
        ++nLookups;
        if (!correct)
            ++nMispredicts;
    }
    return correct;
}

void
GsharePredictor::reset()
{
    table.assign(table.size(), 1);
    history = 0;
}

TournamentPredictor::TournamentPredictor(u32 historyBits)
{
    SPLAB_ASSERT(historyBits >= 4 && historyBits <= 24,
                 "predictor history bits out of range: ",
                 historyBits);
    std::size_t n = 1ULL << historyBits;
    bimodal.assign(n, 1);
    gshare.assign(n, 1);
    chooser.assign(n, 1); // prefer bimodal when cold
    mask = n - 1;
}

bool
TournamentPredictor::predict(Addr pc) const
{
    bool pB = bimodal[pcIndex(pc)] >= 2;
    bool pG = gshare[gIndex(pc)] >= 2;
    return chooser[pcIndex(pc)] >= 2 ? pG : pB;
}

bool
TournamentPredictor::update(Addr pc, bool taken)
{
    u64 iP = pcIndex(pc);
    u64 iG = gIndex(pc);
    bool pB = bimodal[iP] >= 2;
    bool pG = gshare[iG] >= 2;
    bool chosen = chooser[iP] >= 2 ? pG : pB;
    bool correct = chosen == taken;

    // Chooser trains only when the components disagree.
    if (pB != pG)
        train(chooser[iP], pG == taken);
    train(bimodal[iP], taken);
    train(gshare[iG], taken);
    history = ((history << 1) | (taken ? 1 : 0)) & mask;

    if (!warming) {
        ++nLookups;
        if (!correct)
            ++nMispredicts;
    }
    return correct;
}

void
TournamentPredictor::reset()
{
    bimodal.assign(bimodal.size(), 1);
    gshare.assign(gshare.size(), 1);
    chooser.assign(chooser.size(), 1);
    history = 0;
}

} // namespace splab
