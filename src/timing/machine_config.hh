/**
 * @file
 * Machine configuration for the timing model (the paper's Table III:
 * an Intel i7-3770 modelled in Sniper).
 */

#ifndef SPLAB_TIMING_MACHINE_CONFIG_HH
#define SPLAB_TIMING_MACHINE_CONFIG_HH

#include <string>

#include "cache/hierarchy.hh"

namespace splab
{

/** Core + memory parameters of the simulated machine. */
struct MachineConfig
{
    std::string model = "8-core Intel i7-3770 (modelled)";
    double frequencyGHz = 3.4;

    /// @name Core (Table III)
    /// @{
    u32 dispatchWidth = 4;          ///< fused uops committed / cycle
    u32 robEntries = 168;
    u32 branchMispredictPenalty = 8;
    /// @}

    /// @name Memory (Table III latencies)
    /// @{
    u32 l1LatencyCycles = 4;
    u32 l2LatencyCycles = 10;
    u32 l3LatencyCycles = 30;
    u32 memLatencyCycles = 190;
    /// @}

    /// @name Branch predictor
    /// @{
    u32 predictorHistoryBits = 14; ///< gshare global history length
    /// @}

    HierarchyConfig caches;

    u64 contentHash() const;
};

/** The configuration of Table III. */
MachineConfig tableIIIMachine();

/** Render the configuration as a paper-style two-column table. */
std::string describeMachine(const MachineConfig &cfg);

} // namespace splab

#endif // SPLAB_TIMING_MACHINE_CONFIG_HH
