#include "machine_config.hh"

#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/table.hh"

namespace splab
{

u64
MachineConfig::contentHash() const
{
    ByteWriter w;
    w.putString(model);
    w.put<double>(frequencyGHz);
    w.put<u32>(dispatchWidth);
    w.put<u32>(robEntries);
    w.put<u32>(branchMispredictPenalty);
    w.put<u32>(l1LatencyCycles);
    w.put<u32>(l2LatencyCycles);
    w.put<u32>(l3LatencyCycles);
    w.put<u32>(memLatencyCycles);
    w.put<u32>(predictorHistoryBits);
    // Full per-level hashes (geometry + replacement policy), not a
    // hand-picked field subset: see CacheParams::contentHash().
    w.put<u64>(caches.contentHash());
    return hashBytes(w.bytes().data(), w.bytes().size());
}

MachineConfig
tableIIIMachine()
{
    MachineConfig cfg;
    cfg.caches = tableIIIConfig();
    return cfg;
}

std::string
describeMachine(const MachineConfig &cfg)
{
    TableWriter t("System Configuration (Table III)");
    t.header({"Parameter", "Value"});
    t.row({"Model", cfg.model});
    t.row({"CPU Frequency", fmt(cfg.frequencyGHz, 1) + " GHz"});
    t.row({"Dispatch width",
           std::to_string(cfg.dispatchWidth) + " uops per cycle"});
    t.row({"Reorder buffer",
           std::to_string(cfg.robEntries) + " entries"});
    t.row({"Branch misprediction penalty",
           std::to_string(cfg.branchMispredictPenalty) + " cycles"});
    auto cacheRow = [&](const char *label, const CacheParams &p,
                        u32 lat) {
        t.row({label, fmtSi(static_cast<double>(p.sizeBytes), 0) +
                          "B, " + std::to_string(p.ways) + "-way & " +
                          std::to_string(lat) + " cycles"});
    };
    cacheRow("L1-I cache & latency", cfg.caches.l1i,
             cfg.l1LatencyCycles);
    cacheRow("L1-D cache & latency", cfg.caches.l1d,
             cfg.l1LatencyCycles);
    cacheRow("L2 cache & latency", cfg.caches.l2, cfg.l2LatencyCycles);
    cacheRow("L3 cache & latency", cfg.caches.l3, cfg.l3LatencyCycles);
    t.row({"Cache line size",
           std::to_string(cfg.caches.l1d.lineBytes) + " Bytes"});
    return t.render();
}

} // namespace splab
