/**
 * @file
 * Branch direction predictors: gshare and an Alpha 21264-style
 * tournament (bimodal + gshare + per-branch chooser).
 *
 * The timing model uses the tournament: the bimodal component
 * captures per-branch bias even when global history is uninformative
 * (irregular control flow), while the gshare component captures
 * history-correlated patterns; the chooser learns which to trust
 * per branch.
 */

#ifndef SPLAB_TIMING_BRANCH_PREDICTOR_HH
#define SPLAB_TIMING_BRANCH_PREDICTOR_HH

#include <vector>

#include "support/types.hh"

namespace splab
{

/**
 * Global-history XOR-indexed table of 2-bit saturating counters.
 */
class GsharePredictor
{
  public:
    /** @param historyBits table is 2^historyBits counters. */
    explicit GsharePredictor(u32 historyBits);

    /** Predict direction for the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update with the resolved outcome.
     * @return true when the earlier prediction was correct.
     */
    bool update(Addr pc, bool taken);

    /** Reset to the cold (weakly-not-taken, empty history) state. */
    void reset();

    u64 lookups() const { return nLookups; }
    u64 mispredicts() const { return nMispredicts; }

    /** Freeze counters during warm-up (state still trains). */
    void setWarmup(bool on) { warming = on; }

    void
    resetStats()
    {
        nLookups = 0;
        nMispredicts = 0;
    }

  private:
    u64
    index(Addr pc) const
    {
        return ((pc >> 2) ^ history) & mask;
    }

    std::vector<u8> table; ///< 2-bit counters, 0..3
    u64 history = 0;
    u64 mask;
    u64 nLookups = 0;
    u64 nMispredicts = 0;
    bool warming = false;
};

/**
 * Tournament predictor: per-branch bimodal and gshare components
 * arbitrated by a per-branch chooser.  Cold state prefers bimodal,
 * which trains within two executions of a biased branch.
 */
class TournamentPredictor
{
  public:
    /** @param historyBits each table is 2^historyBits counters. */
    explicit TournamentPredictor(u32 historyBits);

    /** Predict direction for the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update all components with the resolved outcome.
     * @return true when the earlier prediction was correct.
     */
    bool update(Addr pc, bool taken);

    /** Reset to the cold state (weakly not-taken, prefer bimodal). */
    void reset();

    u64 lookups() const { return nLookups; }
    u64 mispredicts() const { return nMispredicts; }

    void setWarmup(bool on) { warming = on; }

    void
    resetStats()
    {
        nLookups = 0;
        nMispredicts = 0;
    }

  private:
    u64
    pcIndex(Addr pc) const
    {
        return (pc >> 2) & mask;
    }

    u64
    gIndex(Addr pc) const
    {
        return ((pc >> 2) ^ history) & mask;
    }

    static void
    train(u8 &counter, bool taken)
    {
        if (taken && counter < 3)
            ++counter;
        else if (!taken && counter > 0)
            --counter;
    }

    std::vector<u8> bimodal;
    std::vector<u8> gshare;
    std::vector<u8> chooser; ///< >= 2 selects gshare
    u64 history = 0;
    u64 mask;
    u64 nLookups = 0;
    u64 nMispredicts = 0;
    bool warming = false;
};

} // namespace splab

#endif // SPLAB_TIMING_BRANCH_PREDICTOR_HH
