#include "interval_core.hh"

namespace splab
{

IntervalCoreTool::IntervalCoreTool(const MachineConfig &config)
    : cfg(config),
      caches(std::make_unique<CacheHierarchy>(config.caches)),
      predictor(config.predictorHistoryBits),
      sinceMemMiss(config.robEntries)
{
}

IntervalCoreTool::~IntervalCoreTool() = default;

void
IntervalCoreTool::setWarmup(bool on)
{
    warming = on;
    caches->setWarmup(on);
    predictor.setWarmup(on);
}

void
IntervalCoreTool::coldRestart()
{
    caches->flush();
    predictor.reset();
    sinceMemMiss = cfg.robEntries;
}

void
IntervalCoreTool::resetStats()
{
    timing = TimingStats();
    caches->resetStats();
    predictor.resetStats();
}

double
IntervalCoreTool::exposedLatency(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        // Pipelined L1 hits are hidden by out-of-order execution.
        return 0.0;
      case HitLevel::L2:
        if (!warming)
            ++timing.l2Hits;
        return (cfg.l2LatencyCycles - cfg.l1LatencyCycles) * 0.35;
      case HitLevel::L3:
        if (!warming)
            ++timing.l3Hits;
        return (cfg.l3LatencyCycles - cfg.l2LatencyCycles) * 0.55;
      case HitLevel::Memory: {
        if (!warming)
            ++timing.memAccesses;
        // MLP: a miss issued within a ROB window of the previous
        // memory miss largely overlaps with it.
        double exposed = static_cast<double>(cfg.memLatencyCycles);
        if (sinceMemMiss < cfg.robEntries)
            exposed *= 0.25;
        sinceMemMiss = 0;
        return exposed * 0.8;
      }
    }
    return 0.0;
}

void
IntervalCoreTool::onBlock(const BlockRecord &rec, const MemAccess *accs,
                          std::size_t nAccs, const BranchRecord *br)
{
    double cycles = static_cast<double>(rec.instrs) /
                    static_cast<double>(cfg.dispatchWidth);

    // Instruction fetch: L1I misses stall the front end.
    HitLevel fetch = caches->accessInstr(rec.pc);
    if (fetch != HitLevel::L1)
        cycles += exposedLatency(fetch) * 0.5;

    sinceMemMiss += rec.instrs;
    for (std::size_t i = 0; i < nAccs; ++i) {
        HitLevel level = caches->accessData(accs[i].addr,
                                            accs[i].isWrite);
        // L1 hits expose zero latency and touch no timing state, so
        // skip the latency call entirely on the (dominant) hit path;
        // exposedLatency(L1) would return 0.0 with no side effects,
        // making this guard byte-neutral.
        if (level == HitLevel::L1)
            continue;
        // Store misses retire through the write buffer; only loads
        // expose their full latency to the critical path.
        double scale = accs[i].isWrite ? 0.3 : 1.0;
        cycles += exposedLatency(level) * scale;
    }

    if (br) {
        bool correct = predictor.update(br->pc, br->taken);
        if (!warming) {
            ++timing.branches;
            if (!correct) {
                ++timing.mispredicts;
                cycles += cfg.branchMispredictPenalty;
            }
        }
    }

    if (!warming) {
        timing.instrs += rec.instrs;
        timing.cycles += cycles;
    }
}

void
IntervalCoreTool::onBatch(const EventBatch &batch)
{
    // The interval model carries sequential state (MLP window,
    // predictor) across blocks, so the batch path is the same
    // per-block computation with the virtual dispatch hoisted out.
    const std::size_t n = batch.numBlocks();
    for (std::size_t i = 0; i < n; ++i)
        IntervalCoreTool::onBlock(batch.block(i), batch.accs(i),
                                  batch.accCount(i), batch.branch(i));
}

} // namespace splab
