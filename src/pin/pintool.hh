/**
 * @file
 * Analysis-tool interface of the instrumentation engine.
 *
 * Mirrors the role of a Pintool: a passive observer receiving
 * callbacks for every dynamic basic block (with its memory accesses
 * and terminating branch) of the instrumented execution.
 */

#ifndef SPLAB_PIN_PINTOOL_HH
#define SPLAB_PIN_PINTOOL_HH

#include "isa/events.hh"

namespace splab
{

class SyntheticWorkload;

/** Base class for analysis tools attached to the Engine. */
class PinTool
{
  public:
    virtual ~PinTool() = default;

    /** Short identifier, e.g. "ldstmix". */
    virtual const char *name() const = 0;

    /**
     * Whether this tool consumes memory addresses.  When no attached
     * tool does, the engine skips address generation entirely (a
     * substantial speedup for BBV-profiling passes).
     */
    virtual bool wantsMemory() const { return false; }

    /** Called once before the first block of a run window. */
    virtual void onRunStart(const SyntheticWorkload &workload)
    {
        (void)workload;
    }

    /**
     * One dynamic basic block.
     * @param rec   the block record
     * @param accs  memory accesses (null when address generation is
     *              off or the block has none)
     * @param nAccs number of accesses
     * @param br    terminating branch or null
     */
    virtual void onBlock(const BlockRecord &rec, const MemAccess *accs,
                         std::size_t nAccs, const BranchRecord *br) = 0;

    /**
     * One batch (chunk) of dynamic blocks in SoA layout.  The engine
     * dispatches per batch; the default unpacks to onBlock() in
     * stream order, so block-granular tools need no changes.  Hot
     * tools override this to process the arrays directly (identical
     * event content — batching is a delivery reordering only).
     *
     * Threading contract: under the engine's tool lanes
     * (SPLAB_TOOL_LANES, see pin/engine.hh) different tools may be
     * served by different pool workers concurrently, but any one
     * tool always observes every batch of a run in chunk order from
     * exactly one thread, with the batch contents read-only for the
     * duration of the call.  Tools therefore need no locking as
     * long as they touch only their own state — which is also what
     * keeps lane results byte-identical to serial delivery.
     */
    virtual void
    onBatch(const EventBatch &batch)
    {
        const std::size_t n = batch.numBlocks();
        for (std::size_t i = 0; i < n; ++i)
            onBlock(batch.block(i), batch.accs(i), batch.accCount(i),
                    batch.branch(i));
    }

    /** Called once after the last block of a run window. */
    virtual void onRunEnd() {}
};

} // namespace splab

#endif // SPLAB_PIN_PINTOOL_HH
