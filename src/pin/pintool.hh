/**
 * @file
 * Analysis-tool interface of the instrumentation engine.
 *
 * Mirrors the role of a Pintool: a passive observer receiving
 * callbacks for every dynamic basic block (with its memory accesses
 * and terminating branch) of the instrumented execution.
 */

#ifndef SPLAB_PIN_PINTOOL_HH
#define SPLAB_PIN_PINTOOL_HH

#include "isa/events.hh"

namespace splab
{

class SyntheticWorkload;

/** Base class for analysis tools attached to the Engine. */
class PinTool
{
  public:
    virtual ~PinTool() = default;

    /** Short identifier, e.g. "ldstmix". */
    virtual const char *name() const = 0;

    /**
     * Whether this tool consumes memory addresses.  When no attached
     * tool does, the engine skips address generation entirely (a
     * substantial speedup for BBV-profiling passes).
     */
    virtual bool wantsMemory() const { return false; }

    /** Called once before the first block of a run window. */
    virtual void onRunStart(const SyntheticWorkload &workload)
    {
        (void)workload;
    }

    /**
     * One dynamic basic block.
     * @param rec   the block record
     * @param accs  memory accesses (null when address generation is
     *              off or the block has none)
     * @param nAccs number of accesses
     * @param br    terminating branch or null
     */
    virtual void onBlock(const BlockRecord &rec, const MemAccess *accs,
                         std::size_t nAccs, const BranchRecord *br) = 0;

    /** Called once after the last block of a run window. */
    virtual void onRunEnd() {}
};

} // namespace splab

#endif // SPLAB_PIN_PINTOOL_HH
