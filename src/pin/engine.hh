/**
 * @file
 * The instrumentation engine: executes a workload window and fans
 * dynamic events out to attached tools (the Pin analogue).
 */

#ifndef SPLAB_PIN_ENGINE_HH
#define SPLAB_PIN_ENGINE_HH

#include <vector>

#include "pintool.hh"
#include "workload/synthetic.hh"

namespace splab
{

/**
 * Runs a SyntheticWorkload under a set of PinTools.
 *
 * Tools are attached non-owning; the caller keeps them alive for the
 * duration of run().  Multiple run() calls against different windows
 * of the same workload are allowed (tool state carries over, exactly
 * like a Pintool observing a resumed execution).
 */
class Engine : public EventSink
{
  public:
    /** Attach a tool; order of attachment is dispatch order. */
    void attach(PinTool *tool);

    /** Detach all tools. */
    void clearTools();

    /**
     * Execute chunks [firstChunk, firstChunk + numChunks) of
     * @p workload, delivering events to every attached tool.
     * @return instructions executed in this window.
     */
    ICount run(SyntheticWorkload &workload, u64 firstChunk,
               u64 numChunks);

    /** Execute the whole workload. */
    ICount
    runWhole(SyntheticWorkload &workload)
    {
        return run(workload, 0, workload.totalChunks());
    }

    /** Instructions executed across all run() calls so far. */
    ICount instructionsExecuted() const { return icount; }

    // EventSink
    void onBlock(const BlockRecord &rec, const MemAccess *accs,
                 std::size_t nAccs, const BranchRecord *br) override;

    /** Batched fan-out: one virtual call per (chunk, tool) instead
     *  of one per (block, tool). */
    void onBatch(const EventBatch &batch) override;

  private:
    std::vector<PinTool *> tools;
    ICount icount = 0;
};

} // namespace splab

#endif // SPLAB_PIN_ENGINE_HH
