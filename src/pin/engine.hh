/**
 * @file
 * The instrumentation engine: executes a workload window and fans
 * dynamic events out to attached tools (the Pin analogue).
 */

#ifndef SPLAB_PIN_ENGINE_HH
#define SPLAB_PIN_ENGINE_HH

#include <vector>

#include "pintool.hh"
#include "workload/synthetic.hh"

namespace splab
{

/**
 * Runs a SyntheticWorkload under a set of PinTools.
 *
 * Tools are attached non-owning; the caller keeps them alive for the
 * duration of run().  Multiple run() calls against different windows
 * of the same workload are allowed (tool state carries over, exactly
 * like a Pintool observing a resumed execution).
 *
 * Generation pipeline: when the thread pool has workers to spare (and
 * SPLAB_GEN_PIPELINE is not 0), run() overlaps chunk generation with
 * tool dispatch.  Producer workers generate chunks out of order into
 * a bounded ring of batch arenas — chunk state is a pure function of
 * (seed, chunk index), so any worker can generate any chunk — while
 * consumer lanes deliver completed batches to the tools strictly in
 * chunk order.  Tool-visible state is therefore identical to the
 * serial path, byte for byte; the ring bound supplies backpressure so
 * at most O(threads) chunks are in flight.  Runs issued from inside a
 * parallel region (regional replays under a parallelFor) fall back to
 * the serial path automatically.
 *
 * Tool lanes: with several tools attached and pool workers to spare
 * (and SPLAB_TOOL_LANES not 0), the consumer side splits into
 * per-tool lanes — ideally one lane per tool, otherwise tools
 * grouped round-robin onto the lanes the pool can afford — each
 * walking the ring in chunk order on its own pool worker.  A batch's
 * arena is retired for reuse only when every lane has finished it
 * (atomic per-slot refcount).  Each tool still observes every chunk
 * in order from exactly one thread, and per-tool state is disjoint,
 * so per-tool results are byte-identical to the single-consumer
 * delivery by construction.
 */
class Engine : public EventSink
{
  public:
    /** Attach a tool; order of attachment is dispatch order. */
    void attach(PinTool *tool);

    /** Detach all tools. */
    void clearTools();

    /**
     * Execute chunks [firstChunk, firstChunk + numChunks) of
     * @p workload, delivering events to every attached tool.
     * @return instructions executed in this window.
     */
    ICount run(SyntheticWorkload &workload, u64 firstChunk,
               u64 numChunks);

    /** Execute the whole workload. */
    ICount
    runWhole(SyntheticWorkload &workload)
    {
        return run(workload, 0, workload.totalChunks());
    }

    /** Instructions executed across all run() calls so far. */
    ICount instructionsExecuted() const { return icount; }

    // EventSink
    void onBlock(const BlockRecord &rec, const MemAccess *accs,
                 std::size_t nAccs, const BranchRecord *br) override;

    /** Batched fan-out: one virtual call per (chunk, tool) instead
     *  of one per (block, tool). */
    void onBatch(const EventBatch &batch) override;

  private:
    /** Ordered in-chunk-order delivery via the producer/consumer
     *  pipeline; engages only when shouldPipeline() held. */
    void runPipelined(SyntheticWorkload &workload, u64 firstChunk,
                      u64 numChunks, bool needAddresses);

    /** The engine's own per-batch accounting (dispatch counters +
     *  the instruction count) — everything onBatch() does besides
     *  the tool fan-out.  In lane mode exactly one lane calls this
     *  per chunk, so totals match the serial path. */
    void accountBatch(const EventBatch &batch);

    std::vector<PinTool *> tools;
    ICount icount = 0;
};

} // namespace splab

#endif // SPLAB_PIN_ENGINE_HH
