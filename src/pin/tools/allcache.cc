#include "allcache.hh"

namespace splab
{

AllCacheTool::AllCacheTool(const HierarchyConfig &config)
    : caches(std::make_unique<CacheHierarchy>(config))
{
}

void
AllCacheTool::onBlock(const BlockRecord &rec, const MemAccess *accs,
                      std::size_t nAccs, const BranchRecord *)
{
    // One instruction-fetch lookup per dynamic block.  Blocks are
    // small relative to I-cache lines and the paper reports L1I miss
    // rates as negligible, so per-line fetch modelling is not
    // load-bearing here.
    caches->accessInstr(rec.pc);
    for (std::size_t i = 0; i < nAccs; ++i)
        caches->accessData(accs[i].addr, accs[i].isWrite);
}

} // namespace splab
