#include "allcache.hh"

namespace splab
{

AllCacheTool::AllCacheTool(const HierarchyConfig &config)
    : caches(std::make_unique<CacheHierarchy>(config))
{
}

void
AllCacheTool::onBlock(const BlockRecord &rec, const MemAccess *accs,
                      std::size_t nAccs, const BranchRecord *)
{
    // One instruction-fetch lookup per dynamic block.  Blocks are
    // small relative to I-cache lines and the paper reports L1I miss
    // rates as negligible, so per-line fetch modelling is not
    // load-bearing here.
    caches->accessInstr(rec.pc);
    for (std::size_t i = 0; i < nAccs; ++i)
        caches->accessData(accs[i].addr, accs[i].isWrite);
}

void
AllCacheTool::onBatch(const EventBatch &batch)
{
    // Same event order as the per-block path (fetch, then that
    // block's accesses), over the contiguous SoA access pool.  Data
    // references must go through accessData(): the hierarchy keeps
    // an absent-from-L1D memo there that a direct levelRef() probe
    // would silently invalidate.
    const BlockRecord *blocks = batch.blocks().data();
    const MemAccess *pool = batch.accessPool().data();
    const u32 *off = batch.offsets().data();
    const std::size_t n = batch.numBlocks();
    for (std::size_t b = 0; b < n; ++b) {
        caches->accessInstr(blocks[b].pc);
        for (u32 i = off[b]; i < off[b + 1]; ++i)
            caches->accessData(pool[i].addr, pool[i].isWrite);
    }
}

} // namespace splab
