/**
 * @file
 * Branch-behaviour profiling tool.
 */

#ifndef SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH
#define SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH

#include "pin/pintool.hh"

namespace splab
{

/** Counts dynamic branches, taken outcomes and data-dependent ones. */
class BranchProfileTool : public PinTool
{
  public:
    const char *name() const override { return "branchprofile"; }

    void
    onBlock(const BlockRecord &, const MemAccess *, std::size_t,
            const BranchRecord *br) override
    {
        if (!br)
            return;
        ++branches;
        if (br->taken)
            ++taken;
        if (br->dataDependent)
            ++dataDependent;
    }

    /** Batch path: O(1) per chunk off the precomputed aggregates
     *  (the batch counted branch outcomes at push time). */
    void
    onBatch(const EventBatch &batch) override
    {
        branches += batch.branchTotal();
        taken += batch.takenTotal();
        dataDependent += batch.dataDependentTotal();
    }

    u64 branchCount() const { return branches; }
    u64 takenCount() const { return taken; }
    u64 dataDependentCount() const { return dataDependent; }

    double
    takenRate() const
    {
        return branches ? static_cast<double>(taken) /
                              static_cast<double>(branches)
                        : 0.0;
    }

  private:
    u64 branches = 0;
    u64 taken = 0;
    u64 dataDependent = 0;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH
