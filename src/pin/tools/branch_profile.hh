/**
 * @file
 * Branch-behaviour profiling tool.
 */

#ifndef SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH
#define SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH

#include "pin/pintool.hh"

namespace splab
{

/** Counts dynamic branches, taken outcomes and data-dependent ones. */
class BranchProfileTool : public PinTool
{
  public:
    const char *name() const override { return "branchprofile"; }

    void
    onBlock(const BlockRecord &, const MemAccess *, std::size_t,
            const BranchRecord *br) override
    {
        if (!br)
            return;
        ++branches;
        if (br->taken)
            ++taken;
        if (br->dataDependent)
            ++dataDependent;
    }

    /** Batch path: walk the branch array, guarded by the validity
     *  flags (a zero flag means the block had no branch). */
    void
    onBatch(const EventBatch &batch) override
    {
        const BranchRecord *brs = batch.branches().data();
        const u8 *flags = batch.branchValid().data();
        const std::size_t n = batch.numBlocks();
        for (std::size_t i = 0; i < n; ++i) {
            if (!flags[i])
                continue;
            ++branches;
            if (brs[i].taken)
                ++taken;
            if (brs[i].dataDependent)
                ++dataDependent;
        }
    }

    u64 branchCount() const { return branches; }
    u64 takenCount() const { return taken; }
    u64 dataDependentCount() const { return dataDependent; }

    double
    takenRate() const
    {
        return branches ? static_cast<double>(taken) /
                              static_cast<double>(branches)
                        : 0.0;
    }

  private:
    u64 branches = 0;
    u64 taken = 0;
    u64 dataDependent = 0;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_BRANCH_PROFILE_HH
