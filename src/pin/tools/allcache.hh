/**
 * @file
 * The `allcache` pintool: functional simulation of the I+D cache
 * hierarchy (Table I by default).
 */

#ifndef SPLAB_PIN_TOOLS_ALLCACHE_HH
#define SPLAB_PIN_TOOLS_ALLCACHE_HH

#include <memory>

#include "cache/hierarchy.hh"
#include "pin/pintool.hh"

namespace splab
{

/** Drives a CacheHierarchy from the dynamic event stream. */
class AllCacheTool : public PinTool
{
  public:
    explicit AllCacheTool(const HierarchyConfig &config);

    const char *name() const override { return "allcache"; }
    bool wantsMemory() const override { return true; }

    void onBlock(const BlockRecord &rec, const MemAccess *accs,
                 std::size_t nAccs, const BranchRecord *) override;

    /** Batch path: tight L1D probe loop over the flattened access
     *  pool, descending the hierarchy only on an L1D miss. */
    void onBatch(const EventBatch &batch) override;

    CacheHierarchy &hierarchy() { return *caches; }
    const CacheHierarchy &hierarchy() const { return *caches; }

    /** Enter/leave cache-warming mode (state updates, stats frozen). */
    void setWarmup(bool on) { caches->setWarmup(on); }

  private:
    std::unique_ptr<CacheHierarchy> caches;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_ALLCACHE_HH
