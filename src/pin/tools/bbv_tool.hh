/**
 * @file
 * BBV-profiling tool: slices the dynamic stream into fixed-size
 * intervals and collects one basic-block vector per slice (the
 * PinPoints front-end).
 */

#ifndef SPLAB_PIN_TOOLS_BBV_TOOL_HH
#define SPLAB_PIN_TOOLS_BBV_TOOL_HH

#include <memory>
#include <vector>

#include "pin/pintool.hh"
#include "simpoint/bbv.hh"

namespace splab
{

/**
 * Collects instruction-weighted BBVs, one per @p sliceInstrs-sized
 * interval.  The slice length must be a whole multiple of the
 * workload's chunk length so slice boundaries are exact.
 */
class BbvTool : public PinTool
{
  public:
    explicit BbvTool(ICount sliceInstrs);

    const char *name() const override { return "bbv"; }

    void onRunStart(const SyntheticWorkload &workload) override;
    void onBlock(const BlockRecord &rec, const MemAccess *,
                 std::size_t, const BranchRecord *) override;
    /** Batch path: accumulates from the batch's per-static-block
     *  instruction sums (O(touched blocks) per chunk); falls back to
     *  the per-block walk only when a slice boundary lands inside
     *  the batch.  Byte-identical output either way. */
    void onBatch(const EventBatch &batch) override;
    void onRunEnd() override;

    /** Per-slice BBVs collected so far (final partial slice kept if
     *  it holds at least half a slice of instructions). */
    const std::vector<FrequencyVector> &vectors() const
    {
        return slices;
    }

    ICount sliceLength() const { return sliceInstrs; }

  private:
    ICount sliceInstrs;
    ICount inSlice = 0;
    std::unique_ptr<BbvAccumulator> acc;
    std::vector<FrequencyVector> slices;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_BBV_TOOL_HH
