/**
 * @file
 * Cold-start miss classification (extension; the CoolSim idea of
 * Nikoleris et al., cited as related work [34]).
 *
 * When a simulation point replays from cold caches, part of its miss
 * count is an artefact of the checkpoint boundary: the first touch
 * of every line is a guaranteed miss regardless of what a warm cache
 * would have held.  Instead of paying for a warm-up replay, this
 * tool classifies each miss as *first-touch* (cold-start artefact
 * candidate) or *repeat* (genuine in-region capacity/conflict miss)
 * and derives a statistically corrected miss-rate estimate that
 * excludes the boundary artefact.
 */

#ifndef SPLAB_PIN_TOOLS_COLD_CLASSIFIER_HH
#define SPLAB_PIN_TOOLS_COLD_CLASSIFIER_HH

#include <memory>
#include <unordered_set>

#include "cache/hierarchy.hh"
#include "pin/pintool.hh"

namespace splab
{

/** Miss breakdown of one cache level within a replayed region. */
struct ColdMissStats
{
    u64 accesses = 0;
    u64 firstTouchMisses = 0; ///< line never seen in this region
    u64 repeatMisses = 0;     ///< line seen before, evicted since

    u64 misses() const { return firstTouchMisses + repeatMisses; }

    /** Raw (cold-replay) miss rate. */
    double
    coldMissRate() const
    {
        return accesses ? static_cast<double>(misses()) /
                              static_cast<double>(accesses)
                        : 0.0;
    }

    /**
     * Corrected estimate of the warm miss rate: first-touch misses
     * are treated as unknowable boundary artefacts and excluded
     * from both numerator and denominator, leaving the in-region
     * reuse behaviour the cache actually resolves.
     */
    double
    correctedMissRate() const
    {
        u64 resolved = accesses - firstTouchMisses;
        return resolved ? static_cast<double>(repeatMisses) /
                              static_cast<double>(resolved)
                        : 0.0;
    }
};

/**
 * An allcache variant that also tracks per-region first touches.
 * Call beginRegion() before each simulation point.
 */
class ColdClassifierTool : public PinTool
{
  public:
    explicit ColdClassifierTool(const HierarchyConfig &config);

    const char *name() const override { return "coldclassify"; }
    bool wantsMemory() const override { return true; }

    void onBlock(const BlockRecord &rec, const MemAccess *accs,
                 std::size_t nAccs, const BranchRecord *) override;

    /** Reset per-region state (first-touch sets and counters). */
    void beginRegion();

    const ColdMissStats &l1d() const { return statsL1d; }
    const ColdMissStats &l2() const { return statsL2; }
    const ColdMissStats &l3() const { return statsL3; }

    CacheHierarchy &hierarchy() { return *caches; }

  private:
    void classify(ColdMissStats &stats,
                  std::unordered_set<Addr> &seen, Addr line,
                  bool miss);

    std::unique_ptr<CacheHierarchy> caches;
    u32 lineShift;
    std::unordered_set<Addr> seenL1d;
    std::unordered_set<Addr> seenL2;
    std::unordered_set<Addr> seenL3;
    ColdMissStats statsL1d;
    ColdMissStats statsL2;
    ColdMissStats statsL3;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_COLD_CLASSIFIER_HH
