/**
 * @file
 * The `inscount0` pintool: dynamic instruction counting.
 */

#ifndef SPLAB_PIN_TOOLS_INSCOUNT_HH
#define SPLAB_PIN_TOOLS_INSCOUNT_HH

#include "pin/pintool.hh"

namespace splab
{

/** Counts dynamic instructions, blocks and branches. */
class InsCountTool : public PinTool
{
  public:
    const char *name() const override { return "inscount"; }

    void
    onBlock(const BlockRecord &rec, const MemAccess *,
            std::size_t, const BranchRecord *br) override
    {
        instrs += rec.instrs;
        ++blocks;
        if (br)
            ++branches;
    }

    /** Batch path: O(1) per chunk off the precomputed aggregates. */
    void
    onBatch(const EventBatch &batch) override
    {
        instrs += batch.instrs();
        blocks += batch.numBlocks();
        branches += batch.branchTotal();
    }

    ICount instructions() const { return instrs; }
    u64 blockCount() const { return blocks; }
    u64 branchCount() const { return branches; }

    void
    reset()
    {
        instrs = 0;
        blocks = 0;
        branches = 0;
    }

  private:
    ICount instrs = 0;
    u64 blocks = 0;
    u64 branches = 0;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_INSCOUNT_HH
