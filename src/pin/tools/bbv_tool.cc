#include "bbv_tool.hh"

#include "support/logging.hh"
#include "workload/synthetic.hh"

namespace splab
{

BbvTool::BbvTool(ICount sliceInstrs) : sliceInstrs(sliceInstrs)
{
    SPLAB_ASSERT(sliceInstrs > 0, "slice length must be positive");
}

void
BbvTool::onRunStart(const SyntheticWorkload &workload)
{
    SPLAB_ASSERT(sliceInstrs % workload.chunkLen() == 0,
                 "slice length ", sliceInstrs,
                 " must be a multiple of the chunk length ",
                 workload.chunkLen());
    if (!acc)
        acc = std::make_unique<BbvAccumulator>(
            workload.numStaticBlocks());
}

void
BbvTool::onBlock(const BlockRecord &rec, const MemAccess *,
                 std::size_t, const BranchRecord *)
{
    acc->add(rec.bb, static_cast<double>(rec.instrs));
    inSlice += rec.instrs;
    if (inSlice >= sliceInstrs) {
        SPLAB_ASSERT(inSlice == sliceInstrs,
                     "slice boundary crossed mid-block");
        slices.push_back(acc->harvest());
        inSlice = 0;
    }
}

void
BbvTool::onBatch(const EventBatch &batch)
{
    const BlockRecord *blocks = batch.blocks().data();
    const std::size_t n = batch.numBlocks();
    for (std::size_t i = 0; i < n; ++i) {
        const BlockRecord &rec = blocks[i];
        acc->add(rec.bb, static_cast<double>(rec.instrs));
        inSlice += rec.instrs;
        if (inSlice >= sliceInstrs) {
            SPLAB_ASSERT(inSlice == sliceInstrs,
                         "slice boundary crossed mid-block");
            slices.push_back(acc->harvest());
            inSlice = 0;
        }
    }
}

void
BbvTool::onRunEnd()
{
    // Keep a final partial slice only if it is at least half full;
    // SimPoint likewise drops trailing slivers.
    if (inSlice * 2 >= sliceInstrs && acc && !acc->empty()) {
        slices.push_back(acc->harvest());
    } else if (acc && !acc->empty()) {
        (void)acc->harvest(); // discard the sliver, reset scratch
    }
    inSlice = 0;
}

} // namespace splab
