#include "bbv_tool.hh"

#include "support/logging.hh"
#include "workload/synthetic.hh"

namespace splab
{

BbvTool::BbvTool(ICount sliceInstrs) : sliceInstrs(sliceInstrs)
{
    SPLAB_ASSERT(sliceInstrs > 0, "slice length must be positive");
}

void
BbvTool::onRunStart(const SyntheticWorkload &workload)
{
    SPLAB_ASSERT(sliceInstrs % workload.chunkLen() == 0,
                 "slice length ", sliceInstrs,
                 " must be a multiple of the chunk length ",
                 workload.chunkLen());
    if (!acc)
        acc = std::make_unique<BbvAccumulator>(
            workload.numStaticBlocks());
}

void
BbvTool::onBlock(const BlockRecord &rec, const MemAccess *,
                 std::size_t, const BranchRecord *)
{
    acc->add(rec.bb, static_cast<double>(rec.instrs));
    inSlice += rec.instrs;
    if (inSlice >= sliceInstrs) {
        SPLAB_ASSERT(inSlice == sliceInstrs,
                     "slice boundary crossed mid-block");
        slices.push_back(acc->harvest());
        inSlice = 0;
    }
}

void
BbvTool::onBatch(const EventBatch &batch)
{
    // Fast path: the whole batch lands inside the current slice
    // (always true for whole-chunk batches, since the slice length
    // is a multiple of the chunk length).  Accumulate from the
    // per-static-block sums — one add per *touched* block instead of
    // one per dynamic block.  The sums are integer-valued doubles
    // well below 2^53, so this reassociation is exact and the
    // harvested (sorted) vectors are byte-identical to the
    // per-block path; no bbvprofile salt bump is needed (asserted
    // in tests/test_engine_batch.cc).
    if (inSlice + batch.instrs() <= sliceInstrs) {
        for (u32 b : batch.touchedBlocks())
            acc->add(b, static_cast<double>(batch.blockInstrSum(b)));
        inSlice += batch.instrs();
        if (inSlice == sliceInstrs) {
            slices.push_back(acc->harvest());
            inSlice = 0;
        }
        return;
    }
    // A slice boundary falls inside this batch (partial-chunk
    // delivery): walk the blocks to place it exactly.
    const BlockRecord *blocks = batch.blocks().data();
    const std::size_t n = batch.numBlocks();
    for (std::size_t i = 0; i < n; ++i) {
        const BlockRecord &rec = blocks[i];
        acc->add(rec.bb, static_cast<double>(rec.instrs));
        inSlice += rec.instrs;
        if (inSlice >= sliceInstrs) {
            SPLAB_ASSERT(inSlice == sliceInstrs,
                         "slice boundary crossed mid-block");
            slices.push_back(acc->harvest());
            inSlice = 0;
        }
    }
}

void
BbvTool::onRunEnd()
{
    // Keep a final partial slice only if it is at least half full
    // (the half-full case inSlice * 2 == sliceInstrs included);
    // SimPoint likewise drops trailing slivers.  Harvest
    // unconditionally so the scratch resets through one path,
    // whether the sliver is kept or dropped.
    if (acc && !acc->empty()) {
        FrequencyVector sliver = acc->harvest();
        if (inSlice * 2 >= sliceInstrs)
            slices.push_back(std::move(sliver));
    }
    inSlice = 0;
}

} // namespace splab
