#include "cold_classifier.hh"

namespace splab
{

namespace
{

u32
log2u(u64 v)
{
    u32 n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

ColdClassifierTool::ColdClassifierTool(const HierarchyConfig &config)
    : caches(std::make_unique<CacheHierarchy>(config)),
      lineShift(log2u(config.l1d.lineBytes))
{
}

void
ColdClassifierTool::beginRegion()
{
    caches->flush();
    seenL1d.clear();
    seenL2.clear();
    seenL3.clear();
    statsL1d = ColdMissStats();
    statsL2 = ColdMissStats();
    statsL3 = ColdMissStats();
}

void
ColdClassifierTool::classify(ColdMissStats &stats,
                             std::unordered_set<Addr> &seen,
                             Addr line, bool miss)
{
    ++stats.accesses;
    bool firstTouch = seen.insert(line).second;
    if (!miss)
        return;
    if (firstTouch)
        ++stats.firstTouchMisses;
    else
        ++stats.repeatMisses;
}

void
ColdClassifierTool::onBlock(const BlockRecord &rec,
                            const MemAccess *accs, std::size_t nAccs,
                            const BranchRecord *)
{
    caches->accessInstr(rec.pc);
    for (std::size_t i = 0; i < nAccs; ++i) {
        Addr line = accs[i].addr >> lineShift;
        HitLevel level =
            caches->accessData(accs[i].addr, accs[i].isWrite);
        // A request that hit at level N accessed (and missed) every
        // level above N.
        classify(statsL1d, seenL1d, line, level != HitLevel::L1);
        if (level != HitLevel::L1) {
            classify(statsL2, seenL2, line, level != HitLevel::L2);
            if (level != HitLevel::L2)
                classify(statsL3, seenL3, line,
                         level == HitLevel::Memory);
        }
    }
}

} // namespace splab
