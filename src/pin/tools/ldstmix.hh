/**
 * @file
 * The `ldstmix` pintool: instruction distribution by memory operand
 * pattern (NO_MEM / MEM_R / MEM_W / MEM_RW), the metric of the
 * paper's Figures 3 and 7.
 */

#ifndef SPLAB_PIN_TOOLS_LDSTMIX_HH
#define SPLAB_PIN_TOOLS_LDSTMIX_HH

#include "pin/pintool.hh"

namespace splab
{

/** Accumulates the dynamic instruction mix. */
class LdStMixTool : public PinTool
{
  public:
    const char *name() const override { return "ldstmix"; }

    void
    onBlock(const BlockRecord &rec, const MemAccess *,
            std::size_t, const BranchRecord *) override
    {
        total += rec.mix;
        fpInstrs += rec.fpInstrs;
    }

    /** Batch path: O(1) per chunk off the precomputed aggregates
     *  (the batch already summed the per-block mixes at push time). */
    void
    onBatch(const EventBatch &batch) override
    {
        total += batch.mixTotal();
        fpInstrs += batch.fpTotal();
    }

    const InstrMix &mix() const { return total; }
    ICount fpInstructions() const { return fpInstrs; }

    void
    reset()
    {
        total = InstrMix();
        fpInstrs = 0;
    }

  private:
    InstrMix total;
    ICount fpInstrs = 0;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_LDSTMIX_HH
