/**
 * @file
 * The `ldstmix` pintool: instruction distribution by memory operand
 * pattern (NO_MEM / MEM_R / MEM_W / MEM_RW), the metric of the
 * paper's Figures 3 and 7.
 */

#ifndef SPLAB_PIN_TOOLS_LDSTMIX_HH
#define SPLAB_PIN_TOOLS_LDSTMIX_HH

#include "pin/pintool.hh"

namespace splab
{

/** Accumulates the dynamic instruction mix. */
class LdStMixTool : public PinTool
{
  public:
    const char *name() const override { return "ldstmix"; }

    void
    onBlock(const BlockRecord &rec, const MemAccess *,
            std::size_t, const BranchRecord *) override
    {
        total += rec.mix;
        fpInstrs += rec.fpInstrs;
    }

    /** Batch path: sum mixes straight off the SoA block array. */
    void
    onBatch(const EventBatch &batch) override
    {
        const BlockRecord *blocks = batch.blocks().data();
        const std::size_t n = batch.numBlocks();
        for (std::size_t i = 0; i < n; ++i) {
            total += blocks[i].mix;
            fpInstrs += blocks[i].fpInstrs;
        }
    }

    const InstrMix &mix() const { return total; }
    ICount fpInstructions() const { return fpInstrs; }

    void
    reset()
    {
        total = InstrMix();
        fpInstrs = 0;
    }

  private:
    InstrMix total;
    ICount fpInstrs = 0;
};

} // namespace splab

#endif // SPLAB_PIN_TOOLS_LDSTMIX_HH
