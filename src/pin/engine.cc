#include "engine.hh"

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "support/logging.hh"

namespace splab
{

void
Engine::attach(PinTool *tool)
{
    SPLAB_ASSERT(tool != nullptr, "cannot attach null tool");
    tools.push_back(tool);
}

void
Engine::clearTools()
{
    tools.clear();
}

ICount
Engine::run(SyntheticWorkload &workload, u64 firstChunk, u64 numChunks)
{
    obs::TraceSpan span("engine.window");
    static obs::Counter &windows =
        obs::counter("pin.windows", "instrumented run windows");
    static obs::Counter &chunks =
        obs::counter("pin.chunks_replayed",
                     "workload chunks run under instrumentation");
    static obs::Counter &instrs =
        obs::counter("pin.instrs", "instructions instrumented");

    bool needAddresses = false;
    for (PinTool *t : tools)
        needAddresses = needAddresses || t->wantsMemory();

    for (PinTool *t : tools)
        t->onRunStart(workload);

    ICount before = icount;
    workload.run(firstChunk, numChunks, *this, needAddresses);

    for (PinTool *t : tools)
        t->onRunEnd();

    windows.add();
    chunks.add(numChunks);
    instrs.add(icount - before);
    return icount - before;
}

void
Engine::onBlock(const BlockRecord &rec, const MemAccess *accs,
                std::size_t nAccs, const BranchRecord *br)
{
    icount += rec.instrs;
    for (PinTool *t : tools)
        t->onBlock(rec, accs, nAccs, br);
}

void
Engine::onBatch(const EventBatch &batch)
{
    static obs::Counter &batches =
        obs::counter("pin.batches", "event batches dispatched");
    static obs::Counter &batchBlocks =
        obs::counter("pin.batch_blocks",
                     "dynamic blocks delivered via batches");
    batches.add();
    batchBlocks.add(batch.numBlocks());
    icount += batch.instrs();
    for (PinTool *t : tools)
        t->onBatch(batch);
}

} // namespace splab
