#include "engine.hh"

#include "support/logging.hh"

namespace splab
{

void
Engine::attach(PinTool *tool)
{
    SPLAB_ASSERT(tool != nullptr, "cannot attach null tool");
    tools.push_back(tool);
}

void
Engine::clearTools()
{
    tools.clear();
}

ICount
Engine::run(SyntheticWorkload &workload, u64 firstChunk, u64 numChunks)
{
    bool needAddresses = false;
    for (PinTool *t : tools)
        needAddresses = needAddresses || t->wantsMemory();

    for (PinTool *t : tools)
        t->onRunStart(workload);

    ICount before = icount;
    workload.run(firstChunk, numChunks, *this, needAddresses);

    for (PinTool *t : tools)
        t->onRunEnd();

    return icount - before;
}

void
Engine::onBlock(const BlockRecord &rec, const MemAccess *accs,
                std::size_t nAccs, const BranchRecord *br)
{
    icount += rec.instrs;
    for (PinTool *t : tools)
        t->onBlock(rec, accs, nAccs, br);
}

} // namespace splab
