#include "engine.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace splab
{

namespace
{

/** Below this many chunks the per-producer GenContext construction
 *  outweighs the overlap; run serial. */
constexpr u64 kMinPipelineChunks = 4;

/** Per-lane stall gauges are registered for the first this many
 *  lanes (the fused tool stack has five; more lanes still run, they
 *  just fold into the summed gauge only). */
constexpr std::size_t kMaxLaneGauges = 8;

/** Shared state of one pipelined run.  The mutex orders every slot
 *  handoff, so a lane that observed ready == true reads batch
 *  contents the producer wrote before publishing (and vice versa for
 *  slot reuse). */
struct PipeState
{
    std::mutex mtx;
    std::condition_variable slotFree;  ///< producers: a slot retired
    std::condition_variable slotReady; ///< lanes: a batch landed
    std::atomic<u64> nextChunk{0};     ///< producer claim counter
    u64 retired = 0;    ///< chunks finished by *every* lane
    u64 published = 0;  ///< chunks handed to the ring
    u64 peakInFlight = 0; ///< max published - retired observed
    bool aborted = false; ///< a role threw; all bail out
    u64 producerStalls = 0; ///< blocking episodes, summed
    std::vector<u64> laneStalls; ///< blocking episodes per lane
};

/** One reorder-window slot: a reusable arena, the chunk occupying
 *  it and its full/empty flag (all guarded by PipeState::mtx), plus
 *  the lane refcount that retires the arena back to the ring. */
struct PipeSlot
{
    EventBatch batch;
    u64 chunk = 0;
    bool ready = false;
    /** Lanes that have not yet finished this slot.  Decremented with
     *  acq_rel outside the mutex: the non-last lanes' batch reads
     *  happen-before the last lane's decrement, which happens-before
     *  the retirement it performs under the mutex — the edge that
     *  lets a producer overwrite the arena safely. */
    std::atomic<u32> pending{0};
};

bool
shouldPipeline(u64 numChunks)
{
    return genPipelineEnabled() && parallelThreads() > 1 &&
           !parallelRegionActive() && numChunks >= kMinPipelineChunks;
}

} // namespace

void
Engine::attach(PinTool *tool)
{
    SPLAB_ASSERT(tool != nullptr, "cannot attach null tool");
    tools.push_back(tool);
}

void
Engine::clearTools()
{
    tools.clear();
}

ICount
Engine::run(SyntheticWorkload &workload, u64 firstChunk, u64 numChunks)
{
    obs::TraceSpan span("engine.window");
    static obs::Counter &windows =
        obs::counter("pin.windows", "instrumented run windows");
    static obs::Counter &chunks =
        obs::counter("pin.chunks_replayed",
                     "workload chunks run under instrumentation");
    static obs::Counter &instrs =
        obs::counter("pin.instrs", "instructions instrumented");

    bool needAddresses = false;
    for (PinTool *t : tools)
        needAddresses = needAddresses || t->wantsMemory();

    for (PinTool *t : tools)
        t->onRunStart(workload);

    ICount before = icount;
    if (shouldPipeline(numChunks))
        runPipelined(workload, firstChunk, numChunks, needAddresses);
    else
        workload.run(firstChunk, numChunks, *this, needAddresses);

    for (PinTool *t : tools)
        t->onRunEnd();

    windows.add();
    chunks.add(numChunks);
    instrs.add(icount - before);
    return icount - before;
}

void
Engine::runPipelined(SyntheticWorkload &workload, u64 firstChunk,
                     u64 numChunks, bool needAddresses)
{
    obs::TraceSpan span("engine.pipeline");

    // Consumer lanes: ideally one per attached tool, otherwise the
    // tools are grouped round-robin onto as many lanes as the pool
    // can afford while always leaving at least one producer.
    // nLanes == 1 is exactly the classic single-consumer pipeline.
    // Lane count is a pure scheduling choice: every tool still sees
    // each chunk in order from one thread, so results cannot depend
    // on it.
    const std::size_t poolSize = parallelThreads();
    std::size_t nLanes = 1;
    if (toolLanesEnabled() && tools.size() >= 2)
        nLanes = std::min(tools.size(), poolSize - 1);
    const std::size_t producers = poolSize - nLanes;
    const u64 window = std::min<u64>(
        std::max<u64>({u64{2 * producers}, u64{2 * nLanes}, u64{4}}),
        numChunks);

    PipeState st;
    st.laneStalls.assign(nLanes, 0);
    std::vector<PipeSlot> ring(static_cast<std::size_t>(window));

    auto produce = [&] {
        // Each producer owns private PhaseModel replicas, built on
        // its own thread so construction overlaps too.
        GenContext ctx(workload);
        for (;;) {
            u64 c = st.nextChunk.fetch_add(
                1, std::memory_order_relaxed);
            if (c >= numChunks)
                return;
            {
                std::unique_lock<std::mutex> lk(st.mtx);
                if (!st.aborted && st.retired + window <= c) {
                    ++st.producerStalls;
                    st.slotFree.wait(lk, [&] {
                        return st.aborted ||
                               st.retired + window > c;
                    });
                }
                if (st.aborted)
                    return;
            }
            PipeSlot &slot = ring[c % window];
            try {
                ctx.generateChunk(firstChunk + c, slot.batch,
                                  needAddresses);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(st.mtx);
                    st.aborted = true;
                }
                st.slotFree.notify_all();
                st.slotReady.notify_all();
                throw;
            }
            {
                std::lock_guard<std::mutex> lk(st.mtx);
                slot.chunk = c;
                slot.pending.store(static_cast<u32>(nLanes),
                                   std::memory_order_relaxed);
                slot.ready = true;
                ++st.published;
                u64 inFlight = st.published - st.retired;
                if (inFlight > st.peakInFlight)
                    st.peakInFlight = inFlight;
            }
            if (nLanes > 1)
                st.slotReady.notify_all();
            else
                st.slotReady.notify_one();
        }
    };

    auto consumeLane = [&](std::size_t lane) {
        // This lane's tools, in attachment order — the relative
        // order the single consumer would use for them.
        std::vector<PinTool *> mine;
        for (std::size_t t = lane; t < tools.size(); t += nLanes)
            mine.push_back(tools[t]);
        for (u64 c = 0; c < numChunks; ++c) {
            PipeSlot &slot = ring[c % window];
            {
                std::unique_lock<std::mutex> lk(st.mtx);
                // ready alone is not enough with several lanes: the
                // slot may still hold chunk c - window (this lane is
                // done with it, a slower lane is not), so wait until
                // it holds *this* chunk.
                auto mineToRead = [&] {
                    return st.aborted ||
                           (slot.ready && slot.chunk == c);
                };
                if (!mineToRead()) {
                    ++st.laneStalls[lane];
                    st.slotReady.wait(lk, mineToRead);
                }
                if (st.aborted)
                    return;
            }
            try {
                // Exactly one lane does the engine-level accounting,
                // so totals match the single-consumer path.
                if (lane == 0)
                    accountBatch(slot.batch);
                for (PinTool *t : mine)
                    t->onBatch(slot.batch);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(st.mtx);
                    st.aborted = true;
                }
                st.slotFree.notify_all();
                st.slotReady.notify_all();
                throw;
            }
            if (slot.pending.fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
                // Last lane out retires the arena back to the ring.
                {
                    std::lock_guard<std::mutex> lk(st.mtx);
                    slot.ready = false;
                    ++st.retired;
                }
                st.slotFree.notify_all();
            }
        }
    };

    // Roles 0..nLanes-1 = consumer lanes (lane 0 claimed first,
    // normally by the submitting thread), the rest producers.  The
    // role count equals the pool size, so every role gets its own
    // thread; progress never needs more than {one lane, one
    // producer} running concurrently — a producer that fills the
    // window blocks until every lane drains it, and roles return
    // only when the run is exhausted, so late-waking workers just
    // find less to do.
    parallelFor(producers + nLanes, [&](std::size_t role) {
        if (role < nLanes)
            consumeLane(role);
        else
            produce();
    });

    SPLAB_ASSERT(st.aborted || st.retired == numChunks,
                 "pipeline ended with ", st.retired, " of ",
                 numChunks, " chunks retired");

    // Pipeline health stats are gauges, not counters: stall counts
    // and arena footprints depend on scheduling, and the manifest
    // contract reserves counters for scheduling-invariant totals.
    std::size_t arenaBytes = 0;
    for (const PipeSlot &s : ring)
        arenaBytes += s.batch.capacityBytes();
    u64 laneStallSum = 0;
    for (u64 s : st.laneStalls)
        laneStallSum += s;

    static std::atomic<u64> runsTotal{0}, prodStallsTotal{0},
        consStallsTotal{0}, peakArena{0};
    runsTotal.fetch_add(1, std::memory_order_relaxed);
    prodStallsTotal.fetch_add(st.producerStalls,
                              std::memory_order_relaxed);
    if (nLanes == 1)
        consStallsTotal.fetch_add(laneStallSum,
                                  std::memory_order_relaxed);
    u64 prevPeak = peakArena.load(std::memory_order_relaxed);
    while (prevPeak < arenaBytes &&
           !peakArena.compare_exchange_weak(
               prevPeak, arenaBytes, std::memory_order_relaxed))
        ;

    obs::gauge("genpipe.runs", "pipelined generation runs")
        .set(runsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.window",
               "reorder window (chunks in flight) of the most "
               "recent pipelined run")
        .set(window);
    obs::gauge("genpipe.producer_stalls",
               "producer blocking episodes waiting on a free slot "
               "(consumer-bound), cumulative")
        .set(prodStallsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.consumer_stalls",
               "consumer blocking episodes waiting on a ready batch "
               "(producer-bound), cumulative across single-consumer "
               "runs")
        .set(consStallsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.peak_arena_bytes",
               "peak bytes held by in-flight batch arenas across "
               "pipelined runs")
        .set(peakArena.load(std::memory_order_relaxed));

    // Tool-lane health: same volatile-section rules as genpipe.*.
    static std::atomic<u64> laneRunsTotal{0}, laneStallsTotal{0},
        peakInFlightMax{0};
    static std::array<std::atomic<u64>, kMaxLaneGauges>
        perLaneStallsTotal{};
    if (nLanes > 1) {
        laneRunsTotal.fetch_add(1, std::memory_order_relaxed);
        laneStallsTotal.fetch_add(laneStallSum,
                                  std::memory_order_relaxed);
        u64 prevIF = peakInFlightMax.load(std::memory_order_relaxed);
        while (prevIF < st.peakInFlight &&
               !peakInFlightMax.compare_exchange_weak(
                   prevIF, st.peakInFlight,
                   std::memory_order_relaxed))
            ;
        for (std::size_t l = 0;
             l < nLanes && l < kMaxLaneGauges; ++l) {
            perLaneStallsTotal[l].fetch_add(
                st.laneStalls[l], std::memory_order_relaxed);
            obs::gauge("toollanes.lane" + std::to_string(l) +
                           "_stalls",
                       "lane " + std::to_string(l) +
                           " blocking episodes waiting on a ready "
                           "batch, cumulative")
                .set(perLaneStallsTotal[l].load(
                    std::memory_order_relaxed));
        }
    }
    obs::gauge("toollanes.runs",
               "pipelined runs with per-tool consumer lanes engaged")
        .set(laneRunsTotal.load(std::memory_order_relaxed));
    obs::gauge("toollanes.lanes",
               "consumer lanes of the most recent pipelined run "
               "(1 = single consumer)")
        .set(nLanes);
    obs::gauge("toollanes.lane_stalls",
               "lane blocking episodes waiting on a ready batch, "
               "summed over lanes, cumulative")
        .set(laneStallsTotal.load(std::memory_order_relaxed));
    obs::gauge("toollanes.peak_inflight_slots",
               "peak ring slots simultaneously published and not "
               "yet retired by every lane, across lane runs")
        .set(peakInFlightMax.load(std::memory_order_relaxed));
}

void
Engine::onBlock(const BlockRecord &rec, const MemAccess *accs,
                std::size_t nAccs, const BranchRecord *br)
{
    icount += rec.instrs;
    for (PinTool *t : tools)
        t->onBlock(rec, accs, nAccs, br);
}

void
Engine::accountBatch(const EventBatch &batch)
{
    static obs::Counter &batches =
        obs::counter("pin.batches", "event batches dispatched");
    static obs::Counter &batchBlocks =
        obs::counter("pin.batch_blocks",
                     "dynamic blocks delivered via batches");
    batches.add();
    batchBlocks.add(batch.numBlocks());
    icount += batch.instrs();
}

void
Engine::onBatch(const EventBatch &batch)
{
    accountBatch(batch);
    for (PinTool *t : tools)
        t->onBatch(batch);
}

} // namespace splab
