#include "engine.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace splab
{

namespace
{

/** Below this many chunks the per-producer GenContext construction
 *  outweighs the overlap; run serial. */
constexpr u64 kMinPipelineChunks = 4;

/** Shared state of one pipelined run.  The mutex orders every slot
 *  handoff, so a consumer that observed ready == true reads batch
 *  contents the producer wrote before publishing (and vice versa for
 *  slot reuse). */
struct PipeState
{
    std::mutex mtx;
    std::condition_variable slotFree;  ///< producers: window advanced
    std::condition_variable slotReady; ///< consumer: a batch landed
    std::atomic<u64> nextChunk{0};     ///< producer claim counter
    u64 delivered = 0;                 ///< chunks handed to tools
    bool aborted = false;              ///< a role threw; all bail out
    u64 producerStalls = 0;            ///< blocking episodes, summed
    u64 consumerStalls = 0;
};

/** One reorder-window slot: a reusable arena plus its full/empty
 *  flag (guarded by PipeState::mtx). */
struct PipeSlot
{
    EventBatch batch;
    bool ready = false;
};

bool
shouldPipeline(u64 numChunks)
{
    return genPipelineEnabled() && parallelThreads() > 1 &&
           !parallelRegionActive() && numChunks >= kMinPipelineChunks;
}

} // namespace

void
Engine::attach(PinTool *tool)
{
    SPLAB_ASSERT(tool != nullptr, "cannot attach null tool");
    tools.push_back(tool);
}

void
Engine::clearTools()
{
    tools.clear();
}

ICount
Engine::run(SyntheticWorkload &workload, u64 firstChunk, u64 numChunks)
{
    obs::TraceSpan span("engine.window");
    static obs::Counter &windows =
        obs::counter("pin.windows", "instrumented run windows");
    static obs::Counter &chunks =
        obs::counter("pin.chunks_replayed",
                     "workload chunks run under instrumentation");
    static obs::Counter &instrs =
        obs::counter("pin.instrs", "instructions instrumented");

    bool needAddresses = false;
    for (PinTool *t : tools)
        needAddresses = needAddresses || t->wantsMemory();

    for (PinTool *t : tools)
        t->onRunStart(workload);

    ICount before = icount;
    if (shouldPipeline(numChunks))
        runPipelined(workload, firstChunk, numChunks, needAddresses);
    else
        workload.run(firstChunk, numChunks, *this, needAddresses);

    for (PinTool *t : tools)
        t->onRunEnd();

    windows.add();
    chunks.add(numChunks);
    instrs.add(icount - before);
    return icount - before;
}

void
Engine::runPipelined(SyntheticWorkload &workload, u64 firstChunk,
                     u64 numChunks, bool needAddresses)
{
    obs::TraceSpan span("engine.pipeline");

    const std::size_t producers = parallelThreads() - 1;
    const u64 window = std::min<u64>(
        std::max<u64>(2 * producers, 4), numChunks);

    PipeState st;
    std::vector<PipeSlot> ring(static_cast<std::size_t>(window));

    auto produce = [&] {
        // Each producer owns private PhaseModel replicas, built on
        // its own thread so construction overlaps too.
        GenContext ctx(workload);
        for (;;) {
            u64 c = st.nextChunk.fetch_add(
                1, std::memory_order_relaxed);
            if (c >= numChunks)
                return;
            {
                std::unique_lock<std::mutex> lk(st.mtx);
                if (!st.aborted && st.delivered + window <= c) {
                    ++st.producerStalls;
                    st.slotFree.wait(lk, [&] {
                        return st.aborted ||
                               st.delivered + window > c;
                    });
                }
                if (st.aborted)
                    return;
            }
            PipeSlot &slot = ring[c % window];
            try {
                ctx.generateChunk(firstChunk + c, slot.batch,
                                  needAddresses);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(st.mtx);
                    st.aborted = true;
                }
                st.slotFree.notify_all();
                st.slotReady.notify_all();
                throw;
            }
            {
                std::lock_guard<std::mutex> lk(st.mtx);
                slot.ready = true;
            }
            st.slotReady.notify_one();
        }
    };

    auto consume = [&] {
        for (u64 c = 0; c < numChunks; ++c) {
            PipeSlot &slot = ring[c % window];
            {
                std::unique_lock<std::mutex> lk(st.mtx);
                if (!st.aborted && !slot.ready) {
                    ++st.consumerStalls;
                    st.slotReady.wait(lk, [&] {
                        return st.aborted || slot.ready;
                    });
                }
                if (st.aborted)
                    return;
            }
            try {
                onBatch(slot.batch);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(st.mtx);
                    st.aborted = true;
                }
                st.slotFree.notify_all();
                st.slotReady.notify_all();
                throw;
            }
            {
                std::lock_guard<std::mutex> lk(st.mtx);
                slot.ready = false;
                ++st.delivered;
            }
            st.slotFree.notify_all();
        }
    };

    // Role 0 = consumer (claimed first, normally by the submitting
    // thread), roles 1..producers = producers.  Progress never needs
    // more than {consumer, one producer} running concurrently: a
    // producer that fills the window blocks until the consumer
    // drains it, and roles return only when the run is exhausted, so
    // late-waking workers just find less to do.
    parallelFor(producers + 1, [&](std::size_t role) {
        if (role == 0)
            consume();
        else
            produce();
    });

    SPLAB_ASSERT(st.aborted || st.delivered == numChunks,
                 "pipeline ended with ", st.delivered, " of ",
                 numChunks, " chunks delivered");

    // Pipeline health stats are gauges, not counters: stall counts
    // and arena footprints depend on scheduling, and the manifest
    // contract reserves counters for scheduling-invariant totals.
    std::size_t arenaBytes = 0;
    for (const PipeSlot &s : ring)
        arenaBytes += s.batch.capacityBytes();

    static std::atomic<u64> runsTotal{0}, prodStallsTotal{0},
        consStallsTotal{0}, peakArena{0};
    runsTotal.fetch_add(1, std::memory_order_relaxed);
    prodStallsTotal.fetch_add(st.producerStalls,
                              std::memory_order_relaxed);
    consStallsTotal.fetch_add(st.consumerStalls,
                              std::memory_order_relaxed);
    u64 prevPeak = peakArena.load(std::memory_order_relaxed);
    while (prevPeak < arenaBytes &&
           !peakArena.compare_exchange_weak(
               prevPeak, arenaBytes, std::memory_order_relaxed))
        ;

    obs::gauge("genpipe.runs", "pipelined generation runs")
        .set(runsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.window",
               "reorder window (chunks in flight) of the most "
               "recent pipelined run")
        .set(window);
    obs::gauge("genpipe.producer_stalls",
               "producer blocking episodes waiting on a free slot "
               "(consumer-bound), cumulative")
        .set(prodStallsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.consumer_stalls",
               "consumer blocking episodes waiting on a ready batch "
               "(producer-bound), cumulative")
        .set(consStallsTotal.load(std::memory_order_relaxed));
    obs::gauge("genpipe.peak_arena_bytes",
               "peak bytes held by in-flight batch arenas across "
               "pipelined runs")
        .set(peakArena.load(std::memory_order_relaxed));
}

void
Engine::onBlock(const BlockRecord &rec, const MemAccess *accs,
                std::size_t nAccs, const BranchRecord *br)
{
    icount += rec.instrs;
    for (PinTool *t : tools)
        t->onBlock(rec, accs, nAccs, br);
}

void
Engine::onBatch(const EventBatch &batch)
{
    static obs::Counter &batches =
        obs::counter("pin.batches", "event batches dispatched");
    static obs::Counter &batchBlocks =
        obs::counter("pin.batch_blocks",
                     "dynamic blocks delivered via batches");
    batches.add();
    batchBlocks.add(batch.numBlocks());
    icount += batch.instrs();
    for (PinTool *t : tools)
        t->onBatch(batch);
}

} // namespace splab
