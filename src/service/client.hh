/**
 * @file
 * Client side of the splabd artifact service.
 *
 * A ServiceClient is a thin, connection-per-request wrapper over the
 * wire protocol (see protocol.hh): every call connects to the
 * daemon's Unix-domain socket, performs one request/response
 * exchange and closes.  Connections to a local socket are cheap, and
 * one-connection-per-request gives the daemon natural per-request
 * parallelism (it serves each connection on its own thread) without
 * any client-side multiplexing state — which also makes the client
 * trivially thread-safe: concurrent calls just open concurrent
 * connections.
 *
 * Every method reports failure by return value (nullopt / false) and
 * never throws or aborts: the caller (RemoteBackend) treats any
 * failure as "no daemon — fall back to local".
 */

#ifndef SPLAB_SERVICE_CLIENT_HH
#define SPLAB_SERVICE_CLIENT_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hh"
#include "support/types.hh"

namespace splab
{
namespace service
{

class ServiceClient
{
  public:
    /** @param socketPath daemon Unix-domain socket path. */
    explicit ServiceClient(std::string socketPath)
        : sock(std::move(socketPath))
    {
    }

    const std::string &path() const { return sock; }

    /** Liveness probe: true iff a daemon answered on the socket. */
    bool ping() const;

    /**
     * Ask the daemon to materialize one artifact (computing it if
     * its cache is cold) and stream back the serialized bytes.
     * @param benchmark  benchmark name
     * @param kind       ArtifactKind as its wire value
     * @param configHash ExperimentConfig::contentHash()
     * @param config     ExperimentConfig::serialize() bytes
     * @return the serialized artifact payload, or nullopt on any
     *         failure (no daemon, protocol error, server error).
     */
    std::optional<std::vector<u8>>
    ensureArtifact(const std::string &benchmark, u8 kind,
                   u64 configHash,
                   const std::vector<u8> &config) const;

    /** Daemon-side counter snapshot (name -> value). */
    std::optional<std::map<std::string, u64>> stats() const;

    /** Outcome of a daemon-side cache eviction. */
    struct EvictOutcome
    {
        u64 residentBefore = 0; ///< resident bytes pre-eviction
        u64 residentAfter = 0;  ///< resident bytes post-eviction
        u64 artifacts = 0;      ///< surviving artifact blobs
        u64 sharedBlobs = 0;    ///< surviving shared sub-blobs
    };

    /** Ask the daemon to LRU-evict its cache down to
     *  @p targetBytes resident bytes (0 = everything evictable);
     *  nullopt on any failure (no daemon, disabled cache, protocol
     *  error). */
    std::optional<EvictOutcome> evict(u64 targetBytes) const;

    /** Ask the daemon to shut down; true if it acknowledged. */
    bool requestShutdown() const;

  private:
    /** One connect + request + response exchange; @p payload (when
     *  non-null) receives the streamed data frames. */
    bool roundTrip(const Request &req, ResponseHeader &header,
                   std::vector<u8> *payload) const;

    std::string sock;
};

} // namespace service
} // namespace splab

#endif // SPLAB_SERVICE_CLIENT_HH
