/**
 * @file
 * The splabd artifact-service daemon.
 *
 * A ServiceDaemon owns one ArtifactCache and a registry of
 * ArtifactGraphs (one per distinct ExperimentConfig content hash,
 * created on first request) and serves Ensure requests over a
 * Unix-domain socket (see protocol.hh).  Because every client's
 * requests resolve through the *same* graph instances, the per-node
 * single-flight inside ArtifactGraph::ensure() becomes a global
 * request coalescer: two clients asking for the same cold artifact
 * block on one computation, which runs once on the daemon's shared
 * thread pool, and both receive the identical bytes.
 *
 * Threading: one acceptor thread polls the listening socket (200 ms
 * tick, so stop() is prompt) and hands each connection to its own
 * handler thread; handlers run graph computations inline, which fan
 * out onto the global ThreadPool exactly as a local run would.
 * Handler threads are tracked and joined by stop(); live connections
 * are shut down so no handler blocks stop() indefinitely.
 *
 * The daemon's graphs always use the *local* artifact backend
 * (makeLocalBackend), never makeBackend(): splabd itself runs with
 * SPLAB_SERVICE pointing at its own socket, and resolving through
 * the environment would connect the daemon to itself.
 *
 * In-process use: tests and the smoke harness construct a
 * ServiceDaemon directly (start()/stop()) instead of spawning the
 * splabd binary, so daemon-side obs counters are directly
 * assertable.
 */

#ifndef SPLAB_SERVICE_DAEMON_HH
#define SPLAB_SERVICE_DAEMON_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_graph.hh"
#include "service/protocol.hh"

namespace splab
{
namespace service
{

class ServiceDaemon
{
  public:
    /**
     * @param socketPath Unix-domain socket to serve on (must fit the
     *        AF_UNIX path limit; keep it short, e.g. under /tmp).
     * @param cache artifact cache to serve from; null = fromEnv().
     */
    explicit ServiceDaemon(
        std::string socketPath,
        std::shared_ptr<const ArtifactCache> cache = nullptr);

    ~ServiceDaemon(); ///< calls stop()

    ServiceDaemon(const ServiceDaemon &) = delete;
    ServiceDaemon &operator=(const ServiceDaemon &) = delete;

    /** Bind + listen + spawn the acceptor.  False (with a warning)
     *  when the socket cannot be bound. */
    bool start();

    /** Stop accepting, unblock and join every handler, remove the
     *  socket.  Idempotent. */
    void stop();

    bool running() const { return listening.load(); }

    const std::string &path() const { return sock; }

    /** The cache this daemon serves from. */
    const ArtifactCache &artifactCache() const { return *cache; }

    /** Distinct experiment configs seen so far (tests). */
    std::size_t graphCount() const;

    /** True once a client sent Op::Shutdown; the owner (splabd's
     *  main loop, or a test) is expected to call stop(). */
    bool shutdownRequested() const { return shutdownReq.load(); }

  private:
    void acceptLoop();
    void handle(int fd);
    void serveEnsure(int fd, const Request &req);
    void serveEvict(int fd, const Request &req);
    bool sendError(int fd, const std::string &message);
    bool sendOk(int fd, const std::vector<u8> &payload);

    /** Graph serving @p req's config (created on first use); null
     *  with @p err set when the request's config is unusable. */
    ArtifactGraph *graphFor(const Request &req, std::string &err);

    std::string sock;
    std::shared_ptr<const ArtifactCache> cache;

    int listenFd = -1;
    std::atomic<bool> listening{false};
    std::atomic<bool> stopFlag{false};
    std::atomic<bool> shutdownReq{false};
    std::thread acceptor;

    mutable std::mutex mtx; ///< graphs, handlers, live connections
    std::map<u64, std::unique_ptr<ArtifactGraph>> graphs;
    std::vector<std::thread> handlers;
    std::set<int> liveConns;
};

} // namespace service
} // namespace splab

#endif // SPLAB_SERVICE_DAEMON_HH
