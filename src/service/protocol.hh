/**
 * @file
 * Wire protocol of the splabd artifact service.
 *
 * Transport: a local Unix-domain stream socket.  Every message is a
 * *frame*: a u32 byte count (host order — both ends are the same
 * machine by construction) followed by that many bytes.  Frames are
 * capped at kMaxFrameBytes; a peer announcing more is malformed and
 * the connection is dropped.
 *
 * A request is one frame:
 *
 *     u32 magic "SPLB" | u16 version | u8 op | op-specific body
 *
 * Op bodies (all integers fixed-width, strings length-prefixed):
 *  - Ping, Stats, Shutdown: empty.
 *  - Evict: u64 targetBytes — evict least-recently-used artifacts
 *           from the daemon's cache until the resident bytes fit the
 *           target (0 = evict everything evictable).  The Ok payload
 *           is four u64s: resident bytes before, resident bytes
 *           after, artifacts after, shared sub-blobs after.
 *  - Ensure: string benchmark | u8 kind | u64 configHash |
 *            f64 scale | u32 configLen + configLen bytes (a
 *            serialized ExperimentConfig, see
 *            ExperimentConfig::serialize).  scale is the client's
 *            workloadScale(): SPLAB_SCALE is process environment,
 *            not part of ExperimentConfig, yet it shapes every
 *            artifact — a daemon refuses requests whose scale
 *            differs from its own rather than serve bytes from a
 *            differently-sized workload (the client then falls
 *            back to local resolution).
 *
 * The response is a header frame:
 *
 *     u32 magic | u16 version | u8 status |
 *       Ok:    u64 payloadBytes
 *       Error: string message
 *
 * followed (on Ok, when payloadBytes > 0) by data frames of at most
 * kChunkBytes each until payloadBytes have been streamed.  Ensure
 * payloads are the *serialized artifact bytes* (ready for
 * deserializeArtifact); Stats payloads are u32 count + (string name,
 * u64 value) pairs of the daemon's counter snapshot.
 *
 * Decoding is defensive (bounds-checked, never asserts): a daemon
 * must survive torn or malformed frames from a dying client.  The
 * *content* of a well-formed Ensure config blob is trusted — the
 * socket is a user-local path, not a security boundary.
 */

#ifndef SPLAB_SERVICE_PROTOCOL_HH
#define SPLAB_SERVICE_PROTOCOL_HH

#include <string>
#include <vector>

#include "support/types.hh"

namespace splab
{
namespace service
{

constexpr u32 kMagic = 0x53504c42; // "SPLB"
constexpr u16 kWireVersion = 1;
constexpr u32 kMaxFrameBytes = 256u << 20;
constexpr u32 kChunkBytes = 64u << 10;

enum class Op : u8
{
    Ping = 1,     ///< liveness probe; empty Ok response
    Ensure = 2,   ///< materialize one artifact; payload = its bytes
    Stats = 3,    ///< daemon counter snapshot
    Shutdown = 4, ///< ask the daemon to stop accepting and exit
    Evict = 5,    ///< LRU-evict the cache down to a byte budget
};

enum class Status : u8
{
    Ok = 0,
    Error = 1,
};

/** One decoded request frame. */
struct Request
{
    Op op = Op::Ping;
    std::string benchmark;  ///< Ensure only
    u8 kind = 0;            ///< Ensure only (ArtifactKind value)
    u64 configHash = 0;     ///< Ensure only
    double scale = 1.0;     ///< Ensure only: client workloadScale()
    std::vector<u8> config; ///< Ensure only: serialized config
    u64 evictBytes = 0;     ///< Evict only: target resident bytes
};

/** One decoded response header frame. */
struct ResponseHeader
{
    Status status = Status::Error;
    u64 payloadBytes = 0; ///< data-frame bytes to follow (Ok)
    std::string error;    ///< human-readable cause (Error)
};

/// @name Frame body encode/decode (decode returns false on malformed)
/// @{
std::vector<u8> encodeRequest(const Request &r);
bool decodeRequest(const std::vector<u8> &frame, Request &out);
std::vector<u8> encodeResponseHeader(const ResponseHeader &h);
bool decodeResponseHeader(const std::vector<u8> &frame,
                          ResponseHeader &out);
/// @}

/// @name Framed socket I/O (EINTR-safe; false on error/EOF)
/// @{
bool sendFrame(int fd, const void *data, std::size_t n);
bool recvFrame(int fd, std::vector<u8> &out);
/// @}

} // namespace service
} // namespace splab

#endif // SPLAB_SERVICE_PROTOCOL_HH
