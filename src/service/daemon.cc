#include "daemon.hh"

#include <algorithm>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/artifact_backend.hh"
#include "obs/counters.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "workload/suite.hh"

namespace splab
{
namespace service
{

namespace
{

obs::Counter &
requestsCounter()
{
    return obs::counter("service.requests",
                        "requests handled by the splabd daemon");
}

obs::Counter &
errorsCounter()
{
    return obs::counter("service.request_errors",
                        "daemon requests answered with an error");
}

obs::Counter &
servedCounter()
{
    return obs::counter("service.artifacts_served",
                        "artifacts streamed to service clients");
}

obs::Counter &
bytesCounter()
{
    return obs::counter("service.bytes_streamed",
                        "artifact payload bytes streamed to clients");
}

obs::Counter &
connectionsCounter()
{
    return obs::counter("service.connections",
                        "client connections accepted by the daemon");
}

obs::Counter &
evictRequestsCounter()
{
    return obs::counter("service.evict_requests",
                        "admin eviction requests handled by the "
                        "daemon");
}

} // namespace

ServiceDaemon::ServiceDaemon(
    std::string socketPath, std::shared_ptr<const ArtifactCache> c)
    : sock(std::move(socketPath)), cache(std::move(c))
{
    if (!cache)
        cache = std::make_shared<const ArtifactCache>(
            ArtifactCache::fromEnv());
    // Eager registration so an idle daemon's stats() already carries
    // the whole service counter family.
    requestsCounter();
    errorsCounter();
    servedCounter();
    bytesCounter();
    connectionsCounter();
    evictRequestsCounter();
}

ServiceDaemon::~ServiceDaemon() { stop(); }

bool
ServiceDaemon::start()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (sock.size() >= sizeof(addr.sun_path)) {
        SPLAB_WARN("service socket path too long for AF_UNIX: ",
                   sock);
        return false;
    }
    std::memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) {
        SPLAB_WARN("cannot create service socket: ",
                   std::strerror(errno));
        return false;
    }
    ::unlink(sock.c_str()); // clear a stale socket from a dead daemon
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        SPLAB_WARN("cannot bind service socket ", sock, ": ",
                   std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    stopFlag.store(false);
    listening.store(true);
    acceptor = std::thread([this] { acceptLoop(); });
    SPLAB_INFORM("splabd serving on ", sock);
    return true;
}

void
ServiceDaemon::stop()
{
    if (!listening.exchange(false))
        return;
    stopFlag.store(true);
    if (acceptor.joinable())
        acceptor.join();
    {
        // Unblock handlers stuck in recv; they exit on the failed
        // read and are joined below.
        std::lock_guard<std::mutex> g(mtx);
        for (int fd : liveConns)
            ::shutdown(fd, SHUT_RDWR);
    }
    std::vector<std::thread> toJoin;
    {
        std::lock_guard<std::mutex> g(mtx);
        toJoin.swap(handlers);
    }
    for (std::thread &t : toJoin)
        if (t.joinable())
            t.join();
    if (listenFd >= 0) {
        ::close(listenFd);
        listenFd = -1;
    }
    ::unlink(sock.c_str());
}

std::size_t
ServiceDaemon::graphCount() const
{
    std::lock_guard<std::mutex> g(mtx);
    return graphs.size();
}

void
ServiceDaemon::acceptLoop()
{
    while (!stopFlag.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, 200);
        if (rc < 0 && errno != EINTR)
            break;
        if (rc <= 0 || !(pfd.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        connectionsCounter().add();
        std::lock_guard<std::mutex> g(mtx);
        liveConns.insert(fd);
        handlers.emplace_back([this, fd] { handle(fd); });
    }
}

bool
ServiceDaemon::sendError(int fd, const std::string &message)
{
    errorsCounter().add();
    ResponseHeader h;
    h.status = Status::Error;
    h.error = message;
    std::vector<u8> frame = encodeResponseHeader(h);
    return sendFrame(fd, frame.data(), frame.size());
}

bool
ServiceDaemon::sendOk(int fd, const std::vector<u8> &payload)
{
    ResponseHeader h;
    h.status = Status::Ok;
    h.payloadBytes = payload.size();
    std::vector<u8> frame = encodeResponseHeader(h);
    if (!sendFrame(fd, frame.data(), frame.size()))
        return false;
    for (std::size_t off = 0; off < payload.size();
         off += kChunkBytes) {
        std::size_t n =
            std::min<std::size_t>(kChunkBytes, payload.size() - off);
        if (!sendFrame(fd, payload.data() + off, n))
            return false;
    }
    return true;
}

ArtifactGraph *
ServiceDaemon::graphFor(const Request &req, std::string &err)
{
    std::lock_guard<std::mutex> g(mtx);
    auto it = graphs.find(req.configHash);
    if (it != graphs.end())
        return it->second.get();

    ByteReader r(req.config);
    ExperimentConfig cfg;
    if (!ExperimentConfig::deserialize(r, cfg)) {
        err = "undecodable experiment config";
        return nullptr;
    }
    if (cfg.contentHash() != req.configHash) {
        err = "experiment config does not match its declared hash";
        return nullptr;
    }
    // The daemon's own graphs must resolve locally: SPLAB_SERVICE
    // typically names *this* daemon's socket, and makeBackend()
    // would loop us back to ourselves.
    auto graph = std::make_unique<ArtifactGraph>(
        cfg, cache, makeLocalBackend(cache));
    ArtifactGraph *out = graph.get();
    graphs.emplace(req.configHash, std::move(graph));
    SPLAB_INFORM("splabd: new experiment config ",
                 req.configHash, " (", graphs.size(), " total)");
    return out;
}

void
ServiceDaemon::serveEnsure(int fd, const Request &req)
{
    if (req.kind >= kNumArtifactKinds) {
        sendError(fd, "unknown artifact kind " +
                          std::to_string(int(req.kind)));
        return;
    }
    // SPLAB_SCALE shapes every artifact but lives in the process
    // environment, not in ExperimentConfig — a daemon launched at a
    // different scale would serve bytes from a differently-sized
    // workload.  Refuse instead; the client falls back to local.
    if (req.scale != workloadScale()) {
        sendError(fd, "workload scale mismatch (client " +
                          std::to_string(req.scale) + ", daemon " +
                          std::to_string(workloadScale()) + ")");
        return;
    }
    // Validate the name up front: deep lookup is fatal on unknown
    // benchmarks, and a daemon must not die on a bad request.
    static const std::vector<std::string> known = suiteNames();
    bool ok = false;
    for (const std::string &n : known)
        ok = ok || n == req.benchmark;
    if (!ok) {
        sendError(fd, "unknown benchmark " + req.benchmark);
        return;
    }
    std::string err;
    ArtifactGraph *graph = graphFor(req, err);
    if (!graph) {
        sendError(fd, err);
        return;
    }
    // ensure() runs here on the handler thread; identical concurrent
    // requests from other connections coalesce on the node's
    // single-flight, and the compute fans onto the shared pool.
    std::vector<u8> payload = graph->ensureSerialized(
        req.benchmark, static_cast<ArtifactKind>(req.kind));
    if (sendOk(fd, payload)) {
        servedCounter().add();
        bytesCounter().add(payload.size());
    }
}

void
ServiceDaemon::serveEvict(int fd, const Request &req)
{
    evictRequestsCounter().add();
    if (!cache->enabled()) {
        sendError(fd, "daemon cache is disabled");
        return;
    }
    u64 before = cache->usage().residentBytes;
    CacheUsage after = cache->evictToBytes(req.evictBytes);
    std::vector<u8> payload;
    auto put = [&payload](u64 v) {
        const u8 *b = reinterpret_cast<const u8 *>(&v);
        payload.insert(payload.end(), b, b + sizeof(v));
    };
    put(before);
    put(after.residentBytes);
    put(after.artifacts);
    put(after.sharedBlobs);
    sendOk(fd, payload);
}

void
ServiceDaemon::handle(int fd)
{
    std::vector<u8> frame;
    while (!stopFlag.load() && recvFrame(fd, frame)) {
        Request req;
        if (!decodeRequest(frame, req)) {
            sendError(fd, "malformed request frame");
            break;
        }
        requestsCounter().add();
        if (req.op == Op::Ping) {
            sendOk(fd, {});
        } else if (req.op == Op::Ensure) {
            serveEnsure(fd, req);
        } else if (req.op == Op::Stats) {
            // u32 count + (name, value) pairs, counters only: the
            // deterministic face of the daemon, same as a manifest.
            auto snap = obs::counterSnapshot();
            std::vector<u8> payload;
            auto put = [&payload](const void *p, std::size_t n) {
                const u8 *b = static_cast<const u8 *>(p);
                payload.insert(payload.end(), b, b + n);
            };
            u32 count = static_cast<u32>(snap.size());
            put(&count, sizeof(count));
            for (const auto &kv : snap) {
                u32 len = static_cast<u32>(kv.first.size());
                put(&len, sizeof(len));
                put(kv.first.data(), len);
                put(&kv.second, sizeof(kv.second));
            }
            sendOk(fd, payload);
        } else if (req.op == Op::Evict) {
            serveEvict(fd, req);
        } else if (req.op == Op::Shutdown) {
            // Raise the flag before acking: a client returning from
            // requestShutdown() must observe shutdownRequested().
            shutdownReq.store(true);
            sendOk(fd, {});
            break;
        } else {
            sendError(fd, "unknown op");
            break;
        }
    }
    ::close(fd);
    std::lock_guard<std::mutex> g(mtx);
    liveConns.erase(fd);
}

} // namespace service
} // namespace splab
