#include "protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace splab
{
namespace service
{

namespace
{

/**
 * Bounds-checked little reader over one frame.  Unlike ByteReader
 * (which asserts on truncation — correct for checksummed files we
 * wrote ourselves), every get here reports failure, because frames
 * arrive from another process that may be buggy or dying.
 */
class FrameReader
{
  public:
    explicit FrameReader(const std::vector<u8> &frame) : buf(frame) {}

    template <typename T>
    bool
    get(T &out)
    {
        if (buf.size() - pos < sizeof(T))
            return false;
        std::memcpy(&out, buf.data() + pos, sizeof(T));
        pos += sizeof(T);
        return true;
    }

    bool
    getString(std::string &out)
    {
        u32 n = 0;
        if (!get(n) || buf.size() - pos < n)
            return false;
        out.assign(reinterpret_cast<const char *>(buf.data() + pos),
                   n);
        pos += n;
        return true;
    }

    bool
    getBlob(std::vector<u8> &out)
    {
        u32 n = 0;
        if (!get(n) || buf.size() - pos < n)
            return false;
        out.assign(buf.begin() + pos, buf.begin() + pos + n);
        pos += n;
        return true;
    }

    bool exhausted() const { return pos == buf.size(); }

  private:
    const std::vector<u8> &buf;
    std::size_t pos = 0;
};

class FrameWriter
{
  public:
    template <typename T>
    void
    put(T v)
    {
        const u8 *p = reinterpret_cast<const u8 *>(&v);
        buf.insert(buf.end(), p, p + sizeof(T));
    }

    void
    putString(const std::string &s)
    {
        put<u32>(static_cast<u32>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }

    void
    putBlob(const std::vector<u8> &b)
    {
        put<u32>(static_cast<u32>(b.size()));
        buf.insert(buf.end(), b.begin(), b.end());
    }

    std::vector<u8> take() { return std::move(buf); }

  private:
    std::vector<u8> buf;
};

bool
decodePreamble(FrameReader &r)
{
    u32 magic = 0;
    u16 version = 0;
    return r.get(magic) && magic == kMagic && r.get(version) &&
           version == kWireVersion;
}

void
encodePreamble(FrameWriter &w)
{
    w.put<u32>(kMagic);
    w.put<u16>(kWireVersion);
}

} // namespace

std::vector<u8>
encodeRequest(const Request &r)
{
    FrameWriter w;
    encodePreamble(w);
    w.put<u8>(static_cast<u8>(r.op));
    if (r.op == Op::Ensure) {
        w.putString(r.benchmark);
        w.put<u8>(r.kind);
        w.put<u64>(r.configHash);
        w.put<double>(r.scale);
        w.putBlob(r.config);
    } else if (r.op == Op::Evict) {
        w.put<u64>(r.evictBytes);
    }
    return w.take();
}

bool
decodeRequest(const std::vector<u8> &frame, Request &out)
{
    FrameReader r(frame);
    u8 op = 0;
    if (!decodePreamble(r) || !r.get(op))
        return false;
    switch (static_cast<Op>(op)) {
      case Op::Ping:
      case Op::Stats:
      case Op::Shutdown:
        out.op = static_cast<Op>(op);
        return r.exhausted();
      case Op::Ensure:
        out.op = Op::Ensure;
        return r.getString(out.benchmark) && r.get(out.kind) &&
               r.get(out.configHash) && r.get(out.scale) &&
               r.getBlob(out.config) && r.exhausted();
      case Op::Evict:
        out.op = Op::Evict;
        return r.get(out.evictBytes) && r.exhausted();
    }
    return false;
}

std::vector<u8>
encodeResponseHeader(const ResponseHeader &h)
{
    FrameWriter w;
    encodePreamble(w);
    w.put<u8>(static_cast<u8>(h.status));
    if (h.status == Status::Ok)
        w.put<u64>(h.payloadBytes);
    else
        w.putString(h.error);
    return w.take();
}

bool
decodeResponseHeader(const std::vector<u8> &frame,
                     ResponseHeader &out)
{
    FrameReader r(frame);
    u8 status = 0;
    if (!decodePreamble(r) || !r.get(status))
        return false;
    switch (static_cast<Status>(status)) {
      case Status::Ok:
        out.status = Status::Ok;
        return r.get(out.payloadBytes) && r.exhausted();
      case Status::Error:
        out.status = Status::Error;
        return r.getString(out.error) && r.exhausted();
    }
    return false;
}

namespace
{

bool
writeAll(int fd, const void *data, std::size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    while (n > 0) {
        ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (w == 0)
            return false;
        p += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

bool
readAll(int fd, void *data, std::size_t n)
{
    u8 *p = static_cast<u8 *>(data);
    while (n > 0) {
        ssize_t r = ::recv(fd, p, n, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false; // peer closed mid-frame
        p += r;
        n -= static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace

bool
sendFrame(int fd, const void *data, std::size_t n)
{
    if (n > kMaxFrameBytes)
        return false;
    u32 len = static_cast<u32>(n);
    return writeAll(fd, &len, sizeof(len)) && writeAll(fd, data, n);
}

bool
recvFrame(int fd, std::vector<u8> &out)
{
    u32 len = 0;
    if (!readAll(fd, &len, sizeof(len)))
        return false;
    if (len > kMaxFrameBytes)
        return false;
    out.resize(len);
    return len == 0 || readAll(fd, out.data(), len);
}

} // namespace service
} // namespace splab
