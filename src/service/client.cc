#include "client.hh"

#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "obs/counters.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace splab
{
namespace service
{

namespace
{

/** Connected socket with close-on-scope-exit; fd() < 0 on failure. */
class Connection
{
  public:
    explicit Connection(const std::string &path)
    {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (path.size() >= sizeof(addr.sun_path))
            return; // longer than the AF_UNIX limit: can't exist
        std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
        sock = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (sock < 0)
            return;
        if (::connect(sock, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(sock);
            sock = -1;
        }
    }

    ~Connection()
    {
        if (sock >= 0)
            ::close(sock);
    }

    Connection(const Connection &) = delete;
    Connection &operator=(const Connection &) = delete;

    int fd() const { return sock; }

  private:
    int sock = -1;
};

} // namespace

bool
ServiceClient::roundTrip(const Request &req, ResponseHeader &header,
                         std::vector<u8> *payload) const
{
    static obs::Counter &requests =
        obs::counter("service.client.requests",
                     "requests sent to the splabd daemon");

    Connection conn(sock);
    if (conn.fd() < 0)
        return false;
    requests.add();
    std::vector<u8> frame = encodeRequest(req);
    if (!sendFrame(conn.fd(), frame.data(), frame.size()))
        return false;
    std::vector<u8> headerFrame;
    if (!recvFrame(conn.fd(), headerFrame) ||
        !decodeResponseHeader(headerFrame, header))
        return false;
    if (header.status != Status::Ok || !payload)
        return true;
    payload->clear();
    payload->reserve(header.payloadBytes);
    std::vector<u8> chunk;
    while (payload->size() < header.payloadBytes) {
        if (!recvFrame(conn.fd(), chunk) || chunk.empty() ||
            payload->size() + chunk.size() > header.payloadBytes)
            return false;
        payload->insert(payload->end(), chunk.begin(), chunk.end());
    }
    return true;
}

bool
ServiceClient::ping() const
{
    Request req;
    req.op = Op::Ping;
    ResponseHeader h;
    return roundTrip(req, h, nullptr) && h.status == Status::Ok;
}

std::optional<std::vector<u8>>
ServiceClient::ensureArtifact(const std::string &benchmark, u8 kind,
                              u64 configHash,
                              const std::vector<u8> &config) const
{
    Request req;
    req.op = Op::Ensure;
    req.benchmark = benchmark;
    req.kind = kind;
    req.configHash = configHash;
    req.scale = workloadScale();
    req.config = config;
    ResponseHeader h;
    std::vector<u8> payload;
    if (!roundTrip(req, h, &payload))
        return std::nullopt;
    if (h.status != Status::Ok) {
        SPLAB_WARN("splabd refused ", benchmark, " artifact kind ",
                   static_cast<int>(kind), ": ", h.error);
        return std::nullopt;
    }
    return payload;
}

std::optional<std::map<std::string, u64>>
ServiceClient::stats() const
{
    Request req;
    req.op = Op::Stats;
    ResponseHeader h;
    std::vector<u8> payload;
    if (!roundTrip(req, h, &payload) || h.status != Status::Ok)
        return std::nullopt;
    // Payload: u32 count, then (string name, u64 value) pairs —
    // decoded defensively like any other wire data.
    std::map<std::string, u64> out;
    std::size_t pos = 0;
    auto need = [&](std::size_t n) {
        return payload.size() - pos >= n;
    };
    u32 count = 0;
    if (!need(sizeof(count)))
        return std::nullopt;
    std::memcpy(&count, payload.data() + pos, sizeof(count));
    pos += sizeof(count);
    for (u32 i = 0; i < count; ++i) {
        u32 len = 0;
        if (!need(sizeof(len)))
            return std::nullopt;
        std::memcpy(&len, payload.data() + pos, sizeof(len));
        pos += sizeof(len);
        if (!need(len))
            return std::nullopt;
        std::string name(
            reinterpret_cast<const char *>(payload.data() + pos),
            len);
        pos += len;
        u64 value = 0;
        if (!need(sizeof(value)))
            return std::nullopt;
        std::memcpy(&value, payload.data() + pos, sizeof(value));
        pos += sizeof(value);
        out[name] = value;
    }
    return out;
}

std::optional<ServiceClient::EvictOutcome>
ServiceClient::evict(u64 targetBytes) const
{
    Request req;
    req.op = Op::Evict;
    req.evictBytes = targetBytes;
    ResponseHeader h;
    std::vector<u8> payload;
    if (!roundTrip(req, h, &payload) || h.status != Status::Ok)
        return std::nullopt;
    // Payload: four u64s (before, after, artifacts, shared) —
    // decoded defensively like any other wire data.
    EvictOutcome out;
    u64 fields[4] = {0, 0, 0, 0};
    if (payload.size() != sizeof(fields))
        return std::nullopt;
    std::memcpy(fields, payload.data(), sizeof(fields));
    out.residentBefore = fields[0];
    out.residentAfter = fields[1];
    out.artifacts = fields[2];
    out.sharedBlobs = fields[3];
    return out;
}

bool
ServiceClient::requestShutdown() const
{
    Request req;
    req.op = Op::Shutdown;
    ResponseHeader h;
    return roundTrip(req, h, nullptr) && h.status == Status::Ok;
}

} // namespace service
} // namespace splab
