/**
 * @file
 * splabd — the artifact-graph service daemon.
 *
 * Usage:
 *     splabd <socket-path>              serve requests
 *     splabd --stats <socket-path>      print a running daemon's
 *                                       counter snapshot
 *     splabd --shutdown <socket-path>   ask a running daemon to stop
 *     splabd --evict <socket-path> <bytes>
 *                                       LRU-evict the daemon's cache
 *                                       down to <bytes> resident
 *                                       bytes (0 = everything)
 *
 * Serve mode answers artifact requests on <socket-path> from the
 * cache named by SPLAB_CACHE (budgeted by SPLAB_CACHE_MAX_BYTES),
 * until SIGINT / SIGTERM or a client Shutdown request.  Point bench
 * clients at it with SPLAB_SERVICE=<socket-path>.  The admin
 * subcommands are plain service clients — they talk the same wire
 * protocol as any bench and exit nonzero when no daemon answers.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/client.hh"
#include "service/daemon.hh"
#include "support/logging.hh"

namespace
{

std::atomic<bool> gInterrupted{false};

void
onSignal(int)
{
    gInterrupted.store(true);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <socket-path>\n"
                 "       %s --stats <socket-path>\n"
                 "       %s --shutdown <socket-path>\n"
                 "       %s --evict <socket-path> <bytes>\n",
                 argv0, argv0, argv0, argv0);
    return 2;
}

/** splabd --stats: pretty-print the daemon's counter snapshot. */
int
runStats(const std::string &socketPath)
{
    splab::service::ServiceClient client(socketPath);
    auto stats = client.stats();
    if (!stats) {
        std::fprintf(stderr,
                     "splabd: no daemon answering on %s\n",
                     socketPath.c_str());
        return 1;
    }
    std::size_t width = 0;
    for (const auto &kv : *stats)
        width = std::max(width, kv.first.size());
    std::printf("daemon @ %s (%zu counters)\n", socketPath.c_str(),
                stats->size());
    for (const auto &kv : *stats)
        std::printf("  %-*s %llu\n", static_cast<int>(width),
                    kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second));
    return 0;
}

/** splabd --evict: LRU-evict the daemon's cache to a byte budget. */
int
runEvict(const std::string &socketPath, const char *bytesArg)
{
    char *end = nullptr;
    unsigned long long target = std::strtoull(bytesArg, &end, 10);
    if (end == bytesArg || *end != '\0') {
        std::fprintf(stderr, "splabd: --evict needs a byte count, "
                             "got '%s'\n",
                     bytesArg);
        return 2;
    }
    splab::service::ServiceClient client(socketPath);
    auto outcome = client.evict(static_cast<splab::u64>(target));
    if (!outcome) {
        std::fprintf(stderr,
                     "splabd: no daemon answering on %s\n",
                     socketPath.c_str());
        return 1;
    }
    std::printf("evicted %llu bytes (%llu -> %llu resident, "
                "%llu artifacts, %llu shared blobs remain)\n",
                static_cast<unsigned long long>(
                    outcome->residentBefore - outcome->residentAfter),
                static_cast<unsigned long long>(
                    outcome->residentBefore),
                static_cast<unsigned long long>(
                    outcome->residentAfter),
                static_cast<unsigned long long>(outcome->artifacts),
                static_cast<unsigned long long>(
                    outcome->sharedBlobs));
    return 0;
}

/** splabd --shutdown: ask the daemon to stop. */
int
runShutdown(const std::string &socketPath)
{
    splab::service::ServiceClient client(socketPath);
    if (!client.requestShutdown()) {
        std::fprintf(stderr,
                     "splabd: no daemon answering on %s\n",
                     socketPath.c_str());
        return 1;
    }
    std::printf("splabd: shutdown acknowledged by %s\n",
                socketPath.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::strcmp(argv[1], "--stats") == 0)
        return runStats(argv[2]);
    if (argc == 3 && std::strcmp(argv[1], "--shutdown") == 0)
        return runShutdown(argv[2]);
    if (argc == 4 && std::strcmp(argv[1], "--evict") == 0)
        return runEvict(argv[2], argv[3]);
    if (argc != 2 || argv[1][0] == '-')
        return usage(argv[0]);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    splab::service::ServiceDaemon daemon(argv[1]);
    if (!daemon.start())
        return 1;
    while (!gInterrupted.load() && !daemon.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    daemon.stop();
    SPLAB_INFORM("splabd: stopped");
    return 0;
}
