/**
 * @file
 * splabd — the artifact-graph service daemon.
 *
 * Usage:
 *     splabd <socket-path>
 *
 * Serves artifact requests on <socket-path> from the cache named by
 * SPLAB_CACHE (budgeted by SPLAB_CACHE_MAX_BYTES), until SIGINT /
 * SIGTERM or a client Shutdown request.  Point bench clients at it
 * with SPLAB_SERVICE=<socket-path>.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "service/daemon.hh"
#include "support/logging.hh"

namespace
{

std::atomic<bool> gInterrupted{false};

void
onSignal(int)
{
    gInterrupted.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <socket-path>\n", argv[0]);
        return 2;
    }
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    splab::service::ServiceDaemon daemon(argv[1]);
    if (!daemon.start())
        return 1;
    while (!gInterrupted.load() && !daemon.shutdownRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    daemon.stop();
    SPLAB_INFORM("splabd: stopped");
    return 0;
}
