/**
 * @file
 * Compatibility shim for the pre-graph experiment driver.
 *
 * The experiment core now lives in artifact_graph.hh: ArtifactGraph
 * replaces SuiteRunner's per-benchmark boolean-flag slots with a
 * typed, content-addressed artifact DAG and a cross-benchmark
 * parallel scheduler (runSuite).  SuiteRunner remains as a thin
 * alias so out-of-tree users keep compiling; it adds nothing over
 * ArtifactGraph except the historical reduceToQuantile spelling
 * (now free functions in metrics.hh).  New code should use
 * ArtifactGraph directly.
 */

#ifndef SPLAB_CORE_EXPERIMENTS_HH
#define SPLAB_CORE_EXPERIMENTS_HH

#include "artifact_graph.hh"

namespace splab
{

/** Deprecated name for ArtifactGraph; see file comment. */
class SuiteRunner : public ArtifactGraph
{
  public:
    using ArtifactGraph::ArtifactGraph;

    /** Historical spelling of splab::reduceToQuantile. */
    static std::vector<PointCacheMetrics>
    reduceToQuantile(const std::vector<PointCacheMetrics> &points,
                     double quantile)
    {
        return splab::reduceToQuantile(points, quantile);
    }
    static std::vector<PointTimingMetrics>
    reduceToQuantile(const std::vector<PointTimingMetrics> &points,
                     double quantile)
    {
        return splab::reduceToQuantile(points, quantile);
    }
};

} // namespace splab

#endif // SPLAB_CORE_EXPERIMENTS_HH
