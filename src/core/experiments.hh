/**
 * @file
 * Shared experiment driver for the bench harness.
 *
 * Every figure/table bench needs some subset of: SimPoint selections,
 * whole-run cache metrics, per-point cache metrics (cold and warmed),
 * whole-run timing, per-point timing and native perf counters — for
 * each benchmark of the suite.  SuiteRunner computes them lazily and
 * caches them both in memory and on disk, so running all benches
 * costs one suite sweep, not ten.
 */

#ifndef SPLAB_CORE_EXPERIMENTS_HH
#define SPLAB_CORE_EXPERIMENTS_HH

#include <map>
#include <string>

#include "costmodel.hh"
#include "obs/manifest.hh"
#include "pipeline.hh"
#include "runs.hh"
#include "scale.hh"
#include "workload/suite.hh"

namespace splab
{

/**
 * Everything a suite-wide experiment can be configured with.
 *
 * Build configurations with the fluent interface:
 *
 *     SuiteRunner runner(ExperimentConfig::paperDefaults()
 *                            .withWarmupChunks(60)
 *                            .withMaxK(20));
 *
 * The public fields remain for existing code (aggregate
 * initialization, direct pokes) but are a deprecated spelling; new
 * code should go through paperDefaults() + with*().
 */
struct ExperimentConfig
{
    SimPointConfig simpoint;                      ///< MaxK 35, 30M-eq
    /** Table I hierarchy at model scale (far caches scaled with the
     *  slice length; see scaleFarCaches()). */
    HierarchyConfig allcache =
        scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
    /** Table III machine at model scale. */
    MachineConfig machine = [] {
        MachineConfig m = tableIIIMachine();
        m.caches =
            scaleFarCaches(m.caches, scale::kFarCacheDivisor);
        return m;
    }();
    /**
     * Functional warm-up before each simulation point for the
     * Warmup Regional Runs, in chunks.  120 chunks = 12 slices ~
     * the paper's 500M warm-up cycles at paper scale.
     */
    u64 warmupChunks = 120;
    ReplayCostModel cost;

    /** The paper's operating point (Table I/III at model scale). */
    static ExperimentConfig paperDefaults() { return {}; }

    /// @name Fluent setters; each returns *this for chaining.
    /// @{
    ExperimentConfig &
    withSimPoint(SimPointConfig c)
    {
        simpoint = c;
        return *this;
    }
    ExperimentConfig &
    withMaxK(u32 k)
    {
        simpoint.maxK = k;
        return *this;
    }
    ExperimentConfig &
    withSliceInstrs(ICount n)
    {
        simpoint.sliceInstrs = n;
        return *this;
    }
    ExperimentConfig &
    withSeed(u64 s)
    {
        simpoint.seed = s;
        return *this;
    }
    ExperimentConfig &
    withAllcache(HierarchyConfig h)
    {
        allcache = h;
        return *this;
    }
    ExperimentConfig &
    withMachine(MachineConfig m)
    {
        machine = m;
        return *this;
    }
    ExperimentConfig &
    withWarmupChunks(u64 n)
    {
        warmupChunks = n;
        return *this;
    }
    ExperimentConfig &
    withCost(ReplayCostModel c)
    {
        cost = c;
        return *this;
    }
    /// @}

    /** Dump the configuration into a run manifest. */
    void describe(obs::RunManifest &m) const;
};

/** Lazy, cached access to per-benchmark experiment artifacts. */
class SuiteRunner
{
  public:
    explicit SuiteRunner(ExperimentConfig cfg = ExperimentConfig());

    const ExperimentConfig &config() const { return cfg; }
    const PinPointsPipeline &pipeline() const { return pipe; }

    /** Executable spec (scaled by SPLAB_SCALE). */
    const BenchmarkSpec &spec(const std::string &name);

    /** SimPoint selection at the configured operating point. */
    const SimPointResult &simpoints(const std::string &name);

    /** Whole Run under ldstmix + allcache (Table I). */
    const CacheRunMetrics &wholeCache(const std::string &name);

    /** Per-point cold replays (Regional / Reduced Regional). */
    const std::vector<PointCacheMetrics> &
    pointsCacheCold(const std::string &name);

    /** Per-point replays with functional cache warm-up. */
    const std::vector<PointCacheMetrics> &
    pointsCacheWarm(const std::string &name);

    /** Whole run under the timing model (Table III machine). */
    const TimingRunMetrics &wholeTiming(const std::string &name);

    /** Native-hardware perf counters (full run + noise model). */
    const PerfCounters &native(const std::string &name);

    /** Per-point cold timing replays (Sniper with SimPoints). */
    const std::vector<PointTimingMetrics> &
    pointsTiming(const std::string &name);

    /**
     * Reduce per-point metrics to the heaviest points covering
     * @p quantile of the weight (0.9 = Reduced Regional Run).
     */
    static std::vector<PointCacheMetrics>
    reduceToQuantile(const std::vector<PointCacheMetrics> &points,
                     double quantile);
    static std::vector<PointTimingMetrics>
    reduceToQuantile(const std::vector<PointTimingMetrics> &points,
                     double quantile);

  private:
    struct PerBench
    {
        bool haveSpec = false;
        BenchmarkSpec spec;
        bool haveSimpoints = false;
        SimPointResult simpoints;
        bool haveWholeCache = false;
        CacheRunMetrics wholeCache;
        bool havePointsCold = false;
        std::vector<PointCacheMetrics> pointsCold;
        bool havePointsWarm = false;
        std::vector<PointCacheMetrics> pointsWarm;
        bool haveWholeTiming = false;
        TimingRunMetrics wholeTiming;
        bool haveNative = false;
        PerfCounters nativeCounters;
        bool havePointsTiming = false;
        std::vector<PointTimingMetrics> pointsTiming;
    };

    PerBench &slot(const std::string &name);
    u64 benchKey(const std::string &name, u64 extra);

    ExperimentConfig cfg;
    ArtifactCache cache;
    PinPointsPipeline pipe;
    std::map<std::string, PerBench> slots;
};

} // namespace splab

#endif // SPLAB_CORE_EXPERIMENTS_HH
