/**
 * @file
 * Pluggable artifact resolution backends for the artifact graph.
 *
 * ArtifactGraph::ensure() needs two operations against persistent
 * storage: "give me the serialized bytes of (benchmark, kind, key)"
 * and "here are freshly computed bytes, keep them".  This seam
 * abstracts *where* those bytes live:
 *
 *  - LocalBackend (makeLocalBackend): today's path — the on-disk
 *    ArtifactCache, including assembly of shared-kind artifacts from
 *    their content-addressed sub-blobs (and the recompute-and-heal
 *    fallback when a sub-blob is missing or corrupt).
 *  - RemoteBackend: a splabd service client.  fetch() asks the
 *    daemon to materialize the artifact (the daemon computes on a
 *    cold cache, coalescing identical requests from *all* clients
 *    through its per-node single-flight) and streams the serialized
 *    bytes back; publish() stays local, so a client without a
 *    reachable daemon behaves exactly like LocalBackend.
 *
 * makeBackend() picks the implementation from SPLAB_SERVICE: unset or
 * empty means local; a socket path means remote with a one-time ping
 * probe at construction — an unreachable daemon degrades to local
 * with a single warning, never an error (transparent fallback).
 *
 * Determinism: backends move serialized bytes, never values, and a
 * daemon computes artifacts with the same pure compute functions and
 * Merkle keys as any client would locally, so a daemon-served run is
 * byte-identical to a local one.
 */

#ifndef SPLAB_CORE_ARTIFACT_BACKEND_HH
#define SPLAB_CORE_ARTIFACT_BACKEND_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "artifact_graph.hh"

namespace splab
{

/** One persisted-artifact resolution request. */
struct ArtifactRequest
{
    std::string benchmark; ///< benchmark name ("620.omnetpp_s")
    ArtifactKind kind = ArtifactKind::Spec;
    std::string family;    ///< blob family, strategy-qualified
    u64 key = 0;           ///< Merkle disk-cache key
    bool shared = false;   ///< persisted as a shared-sub-blob ref
};

/** Where persisted artifacts are fetched from / published to. */
class ArtifactBackend
{
  public:
    virtual ~ArtifactBackend() = default;

    /** Stable implementation name ("local", "remote"). */
    virtual const char *name() const = 0;

    /** Whether fetch/publish can do anything at all; when false the
     *  graph skips key computation entirely (disabled-cache path). */
    virtual bool active() const = 0;

    /**
     * Try to materialize the *serialized artifact payload* (the
     * bytes serializeArtifact produced, after any shared-sub-blob
     * assembly — never a raw ref blob) into @p out.
     * @return true on success; false means "compute it yourself".
     */
    virtual bool fetch(const ArtifactRequest &req,
                       std::vector<u8> &out) = 0;

    /**
     * Persist freshly computed serialized bytes.  @p sharedRanges
     * lists the (offset, length) shareable components for shared
     * kinds (empty for inline kinds); the backend stores each range
     * as a content-addressed sub-blob plus a ref blob naming them.
     */
    virtual void
    publish(const ArtifactRequest &req, const std::vector<u8> &bytes,
            const std::vector<std::pair<std::size_t, std::size_t>>
                &sharedRanges) = 0;
};

/** Today's behaviour: resolve against @p cache only. */
std::unique_ptr<ArtifactBackend>
makeLocalBackend(std::shared_ptr<const ArtifactCache> cache);

/**
 * Backend for a graph with configuration @p cfg: remote when
 * SPLAB_SERVICE names a daemon socket (with local fallback),
 * local otherwise.
 */
std::unique_ptr<ArtifactBackend>
makeBackend(std::shared_ptr<const ArtifactCache> cache,
            const ExperimentConfig &cfg);

} // namespace splab

#endif // SPLAB_CORE_ARTIFACT_BACKEND_HH
