/**
 * @file
 * The artifact graph: the experiment core as a typed,
 * content-addressed stage DAG.
 *
 * Every figure/table bench needs some subset of twelve artifact
 * kinds per benchmark — executable spec, BBV profile, SimPoint
 * selection, the strategy-selected region set, fused whole-run
 * measurement, whole-run cache metrics, whole-run timing, the
 * regional pinball, cold/warm per-point cache replays, native perf
 * counters, per-point timing replays.  Each kind is a declared node
 * with:
 *
 *  - typed dependencies on upstream kinds (a static DAG),
 *  - a compute function (pure given its inputs and the config),
 *  - a (de)serializer for the on-disk artifact cache, and
 *  - a per-node version salt, bumped when the producing algorithm
 *    or the serialized layout changes.
 *
 * Keying rule (Merkle-style): a node's disk-cache key is
 *
 *     key = H(salt, configSlice, key(dep_0), key(dep_1), ...)
 *
 * where configSlice hashes exactly the configuration fields the
 * node's compute function reads (full CacheParams/MachineConfig
 * content hashes — never hand-picked field subsets), and the source
 * node's key is the content hash of the serialized benchmark spec.
 * Keys are therefore cheap pure functions of the configuration: a
 * warm lookup never computes upstream *values*, yet any change to
 * an upstream definition, a config field or a version salt changes
 * every downstream key.
 *
 * Projection nodes: a node's declared deps and config slice describe
 * what its *value* depends on, not how the compute function happens
 * to route.  WholeCache and WholeTiming are computed by projecting
 * the fused WholeFused traversal, but their values are byte-
 * identical to the dedicated single-tool passes (tools are passive
 * observers of one deterministic stream — tested), so their keys
 * keep the original narrow slices: an allcache change still leaves
 * WholeTiming's key (and cached blob) untouched.  Regions is the
 * same shape: its value depends only on the BBV profile and the
 * active SamplingStrategy's knobs (strategy-salted via
 * SamplingConfig::activeHash), so its deps are {BbvProfile} even
 * though the simpoint strategy's compute routes through the cached
 * SimPoints node.  Each strategy persists into its own blob family
 * ("regions_simpoint", "regions_smarts", ...), so per-strategy
 * selections coexist in one cache directory.
 *
 * Blob sharing: the fused node and both projections persist as small
 * *ref blobs* naming content-addressed shared sub-blobs (the fused
 * serialization is the exact concatenation of the two projection
 * serializations, so all three address the same two sub-blob files —
 * no metric byte is stored twice).  A warm run therefore serves
 * WholeFused from disk and skips the fused traversal entirely; a
 * missing or corrupt sub-blob degrades to recompute-and-heal, never
 * a crash.  SPLAB_FUSED_PERSIST=0 keeps the fused node
 * memory-resident.  See DESIGN.md section 10.
 *
 * Scheduling: accessors compute lazily with single-flight per node
 * (concurrent requests for the same node block until the one
 * computation finishes).  runSuite() fans (benchmark x target) tasks
 * over the global thread pool in topological kind order, so
 * cross-benchmark parallelism is the default for suite-wide benches
 * — while one benchmark's replays run, another's profile is being
 * collected.  Determinism contract: node values are pure functions
 * of (spec, config), tasks write only node-local state, and result
 * collection is by (benchmark, kind) — never by completion order —
 * so every artifact, CSV and deterministic manifest section is
 * byte-identical at any SPLAB_THREADS setting and across cold/warm
 * artifact-cache runs.
 */

#ifndef SPLAB_CORE_ARTIFACT_GRAPH_HH
#define SPLAB_CORE_ARTIFACT_GRAPH_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <variant>
#include <vector>

#include "costmodel.hh"
#include "obs/manifest.hh"
#include "pipeline.hh"
#include "runs.hh"
#include "sampling/strategy.hh"
#include "scale.hh"
#include "workload/suite.hh"

namespace splab
{

/**
 * Everything a suite-wide experiment can be configured with.
 *
 * Build configurations with the fluent interface:
 *
 *     ArtifactGraph graph(ExperimentConfig::paperDefaults()
 *                             .withWarmupChunks(60)
 *                             .withMaxK(20));
 *
 * The public fields remain for existing code (aggregate
 * initialization, direct pokes) but are a deprecated spelling; new
 * code should go through paperDefaults() + with*().
 */
struct ExperimentConfig
{
    SimPointConfig simpoint;                      ///< MaxK 35, 30M-eq
    /** Region-selection strategy axis: which SamplingStrategy picks
     *  simulation regions, plus every strategy's knobs.  The
     *  SimPoint strategy's knobs are the `simpoint` member above. */
    SamplingConfig sampling;
    /** Table I hierarchy at model scale (far caches scaled with the
     *  slice length; see scaleFarCaches()). */
    HierarchyConfig allcache =
        scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
    /** Table III machine at model scale. */
    MachineConfig machine = [] {
        MachineConfig m = tableIIIMachine();
        m.caches =
            scaleFarCaches(m.caches, scale::kFarCacheDivisor);
        return m;
    }();
    /**
     * Functional warm-up before each simulation point for the
     * Warmup Regional Runs, in chunks.  120 chunks = 12 slices ~
     * the paper's 500M warm-up cycles at paper scale.
     */
    u64 warmupChunks = 120;
    ReplayCostModel cost;

    /** The paper's operating point (Table I/III at model scale). */
    static ExperimentConfig paperDefaults() { return {}; }

    /// @name Fluent setters; each returns *this for chaining.
    /// @{
    ExperimentConfig &
    withSimPoint(SimPointConfig c)
    {
        simpoint = c;
        return *this;
    }
    ExperimentConfig &
    withMaxK(u32 k)
    {
        simpoint.maxK = k;
        return *this;
    }
    ExperimentConfig &
    withSliceInstrs(ICount n)
    {
        simpoint.sliceInstrs = n;
        return *this;
    }
    ExperimentConfig &
    withSeed(u64 s)
    {
        simpoint.seed = s;
        return *this;
    }
    ExperimentConfig &
    withSampling(SamplingConfig c)
    {
        sampling = c;
        return *this;
    }
    /** Select the region-selection strategy by registry name
     *  ("simpoint", "smarts", "stratified", "ranked_set", "random",
     *  "stride"); fatal on an unknown name. */
    ExperimentConfig &
    withStrategy(const std::string &name)
    {
        sampling.strategy = strategyByName(name);
        return *this;
    }
    ExperimentConfig &
    withStrategy(StrategyKind k)
    {
        sampling.strategy = k;
        return *this;
    }
    ExperimentConfig &
    withAllcache(HierarchyConfig h)
    {
        allcache = h;
        return *this;
    }
    ExperimentConfig &
    withMachine(MachineConfig m)
    {
        machine = m;
        return *this;
    }
    ExperimentConfig &
    withWarmupChunks(u64 n)
    {
        warmupChunks = n;
        return *this;
    }
    ExperimentConfig &
    withCost(ReplayCostModel c)
    {
        cost = c;
        return *this;
    }
    /// @}

    /**
     * Stable hash over *every* configuration field, including those
     * (like the replay cost model) that only shape derived report
     * columns: the one-line answer to "were these the same
     * experiment?".  Per-node cache keys use the narrower per-node
     * config slices instead, so e.g. a warmupChunks change does not
     * invalidate cold-replay artifacts.
     */
    u64 contentHash() const;

    /** Dump the configuration into a run manifest. */
    void describe(obs::RunManifest &m) const;

    /**
     * Field-wise wire serialization (leading format version), so a
     * service client can ship its exact experiment configuration to
     * the daemon.  deserialize() is defensive — bounds-checked,
     * false on truncation or a version mismatch, never fatal — as
     * the bytes arrive over a socket.
     */
    void serialize(ByteWriter &w) const;
    static bool deserialize(ByteReader &r, ExperimentConfig &out);
};

/** The artifact kinds, in topological (dependency) order. */
enum class ArtifactKind : u8
{
    Spec = 0,        ///< executable benchmark spec (source node)
    BbvProfile,      ///< one BBV per slice of the whole execution
    SimPoints,       ///< SimPoint selection (BIC-chosen k)
    Regions,         ///< strategy-selected simulation regions
    WholeFused,      ///< one fused traversal: cache + timing views
    WholeCache,      ///< Whole Run under ldstmix + allcache
    WholeTiming,     ///< Whole Run under the timing model
    RegionalPinball, ///< shared simulation-point pinball capture
    PointsCacheCold, ///< per-point cold cache replays
    PointsCacheWarm, ///< per-point replays with functional warm-up
    Native,          ///< native-hardware perf counters
    PointsTiming,    ///< per-point timing replays
};

constexpr std::size_t kNumArtifactKinds = 12;

/** Stable artifact-kind name ("simpoints", "points_cache_cold"). */
const char *artifactKindName(ArtifactKind k);

/** Typed upstream dependencies of @p k (static DAG edges). */
const std::vector<ArtifactKind> &artifactKindDeps(ArtifactKind k);

/** Whether this kind is persisted in the on-disk artifact cache
 *  (cheap or upstream-only kinds stay memory-resident). */
bool artifactKindPersisted(ArtifactKind k);

/** Whether this kind persists as a ref blob over content-addressed
 *  shared sub-blobs (WholeFused and its two projections, which all
 *  address the same metric bytes) rather than inline bytes. */
bool artifactKindShared(ArtifactKind k);

/** Per-node version salt (bump on algorithm/layout change). */
u64 artifactKindSalt(ArtifactKind k);

/** One artifact's value; the alternative is determined by the kind. */
using ArtifactValue =
    std::variant<BenchmarkSpec,                    // Spec
                 std::vector<FrequencyVector>,     // BbvProfile
                 SimPointResult,                   // SimPoints
                 RegionSelection,                  // Regions
                 FusedWholeMetrics,                // WholeFused
                 CacheRunMetrics,                  // WholeCache
                 TimingRunMetrics,                 // WholeTiming
                 Pinball,                          // RegionalPinball
                 std::vector<PointCacheMetrics>,   // PointsCache*
                 PerfCounters,                     // Native
                 std::vector<PointTimingMetrics>>; // PointsTiming

/// @name Artifact (de)serialization for the on-disk cache
/// @{
void serializeArtifact(ByteWriter &w, const ArtifactValue &v);
ArtifactValue deserializeArtifact(ArtifactKind k, ByteReader &r);
/// @}

class ArtifactBackend; // see artifact_backend.hh

/**
 * Content-addressed, cross-benchmark-parallel experiment core.
 *
 * Thread-safe: accessors may be called concurrently (from inside
 * runSuite() tasks or from user code); each node computes exactly
 * once per process (single-flight) and at most once per cache
 * lifetime on disk.
 */
class ArtifactGraph
{
  public:
    explicit ArtifactGraph(ExperimentConfig cfg = ExperimentConfig());

    /** Share an externally owned cache (see PinPointsPipeline). */
    ArtifactGraph(ExperimentConfig cfg,
                  std::shared_ptr<const ArtifactCache> cache);

    /**
     * Additionally pin the artifact backend instead of deriving it
     * from SPLAB_SERVICE (artifact_backend.hh: the splabd daemon
     * passes makeLocalBackend so its own graphs never try to
     * connect back to the daemon's socket).
     */
    ArtifactGraph(ExperimentConfig cfg,
                  std::shared_ptr<const ArtifactCache> cache,
                  std::unique_ptr<ArtifactBackend> backend);

    ~ArtifactGraph(); // out-of-line: Node is incomplete here

    const ExperimentConfig &config() const { return cfg; }
    const PinPointsPipeline &pipeline() const { return pipe; }
    const ArtifactCache &artifactCache() const { return *cache; }

    /** Shared handle for wiring ad-hoc pipelines to this graph's
     *  cache instance instead of constructing parallel ones. */
    std::shared_ptr<const ArtifactCache> cacheHandle() const
    {
        return cache;
    }

    /// @name Typed artifact accessors (lazy, cached, thread-safe)
    /// @{
    /** Executable spec (scaled by SPLAB_SCALE). */
    const BenchmarkSpec &spec(const std::string &name);

    /** One BBV per slice of the whole execution. */
    const std::vector<FrequencyVector> &
    bbvProfile(const std::string &name);

    /** SimPoint selection at the configured operating point. */
    const SimPointResult &simpoints(const std::string &name);

    /** Simulation regions selected by the configured
     *  SamplingStrategy (cfg.sampling.strategy). */
    const RegionSelection &regions(const std::string &name);

    /** Both whole-run views from one fused traversal; WholeCache
     *  and WholeTiming are projections of this node. */
    const FusedWholeMetrics &wholeFused(const std::string &name);

    /** Whole Run under ldstmix + allcache (Table I). */
    const CacheRunMetrics &wholeCache(const std::string &name);

    /** Regional pinball (capture shared by all per-point replays). */
    const Pinball &regionalPinball(const std::string &name);

    /** Per-point cold replays (Regional / Reduced Regional). */
    const std::vector<PointCacheMetrics> &
    pointsCacheCold(const std::string &name);

    /** Per-point replays with functional cache warm-up. */
    const std::vector<PointCacheMetrics> &
    pointsCacheWarm(const std::string &name);

    /** Whole run under the timing model (Table III machine). */
    const TimingRunMetrics &wholeTiming(const std::string &name);

    /** Native-hardware perf counters (full run + noise model). */
    const PerfCounters &native(const std::string &name);

    /** Per-point cold timing replays (Sniper with SimPoints). */
    const std::vector<PointTimingMetrics> &
    pointsTiming(const std::string &name);
    /// @}

    /**
     * Content-addressed disk-cache key of (benchmark, kind): the
     * Merkle hash over the node's salt, its config slice and its
     * upstream keys.  Cheap — never computes artifact values.
     */
    u64 artifactKey(const std::string &name, ArtifactKind kind);

    /**
     * ensure() + serializeArtifact: the artifact's cache-blob payload
     * bytes.  This is what the splabd daemon streams to clients (and
     * what a RemoteBackend fetch returns), so daemon-served and
     * locally computed artifacts are byte-identical by construction.
     */
    std::vector<u8> ensureSerialized(const std::string &name,
                                     ArtifactKind kind);

    /**
     * Compute @p targets for every benchmark in @p benchmarks,
     * fanning (benchmark x artifact) tasks over the global thread
     * pool (SPLAB_THREADS).  Tasks are issued in topological kind
     * order with no stage barriers: a benchmark's replays start as
     * soon as *its* upstream artifacts exist, regardless of how far
     * other benchmarks have progressed.  After this returns, the
     * accessors above are in-memory hits.  Byte-identical results at
     * any thread count.
     */
    void runSuite(const std::vector<std::string> &benchmarks,
                  const std::vector<ArtifactKind> &targets);

    /**
     * Record the content-addressed key of every (benchmark, kind) in
     * the dependency closure of @p targets into the manifest's
     * "artifacts" section — deterministic across thread counts and
     * cache states, so two manifests disagree exactly where the
     * experiments did.
     */
    void recordArtifacts(obs::RunManifest &m,
                         const std::vector<std::string> &benchmarks,
                         const std::vector<ArtifactKind> &targets);

  private:
    struct Node;

    Node &nodeFor(const std::string &name, ArtifactKind kind);
    const ArtifactValue &ensure(const std::string &name,
                                ArtifactKind kind);
    ArtifactValue computeValue(const std::string &name,
                               ArtifactKind kind);
    u64 configSliceHash(ArtifactKind kind) const;

    ExperimentConfig cfg;
    std::shared_ptr<const ArtifactCache> cache;
    std::unique_ptr<ArtifactBackend> backend; ///< never null
    PinPointsPipeline pipe;

    std::mutex registryMtx; ///< guards the node map only
    std::map<std::pair<std::string, u8>, std::unique_ptr<Node>>
        nodes;
};

} // namespace splab

#endif // SPLAB_CORE_ARTIFACT_GRAPH_HH
