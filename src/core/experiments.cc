#include "experiments.hh"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hh"
#include "support/logging.hh"

namespace splab
{

namespace
{

template <typename T>
void
storePods(const ArtifactCache &cache, const std::string &kind, u64 key,
          const std::vector<T> &v)
{
    ByteWriter w;
    w.putVector(v);
    cache.store(kind, key, w);
}

template <typename T>
bool
loadPods(const ArtifactCache &cache, const std::string &kind, u64 key,
         std::vector<T> &out)
{
    CacheOutcome r = cache.load(kind, key);
    if (!r.hit())
        return false;
    out = r->getVector<T>();
    return true;
}

template <typename T>
void
storePod(const ArtifactCache &cache, const std::string &kind, u64 key,
         const T &v)
{
    ByteWriter w;
    w.put(v);
    cache.store(kind, key, w);
}

template <typename T>
bool
loadPod(const ArtifactCache &cache, const std::string &kind, u64 key,
        T &out)
{
    CacheOutcome r = cache.load(kind, key);
    if (!r.hit())
        return false;
    out = r->get<T>();
    return true;
}

} // namespace

void
ExperimentConfig::describe(obs::RunManifest &m) const
{
    m.setConfig("simpoint.max_k", simpoint.maxK);
    m.setConfig("simpoint.slice_instrs", u64{simpoint.sliceInstrs});
    m.setConfig("simpoint.projection_dim", simpoint.projectionDim);
    m.setConfig("simpoint.bic_fraction", simpoint.bicFraction);
    m.setConfig("simpoint.restarts", simpoint.restarts);
    m.setConfig("simpoint.max_iters", simpoint.maxIters);
    m.setConfig("simpoint.sample_cap", simpoint.sampleCap);
    m.setConfig("simpoint.merge_threshold", simpoint.mergeThreshold);
    m.setConfig("simpoint.seed", simpoint.seed);
    m.setConfig("warmup_chunks", warmupChunks);
    auto level = [&](const char *name, const CacheParams &p) {
        std::string base = std::string("allcache.") + name;
        m.setConfig(base + ".size_bytes", p.sizeBytes);
        m.setConfig(base + ".ways", p.ways);
        m.setConfig(base + ".line_bytes", p.lineBytes);
    };
    level("l1i", allcache.l1i);
    level("l1d", allcache.l1d);
    level("l2", allcache.l2);
    level("l3", allcache.l3);
    m.setConfig("machine.model", machine.model);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(
                      machine.contentHash()));
    m.setConfig("machine.content_hash", hex);
}

SuiteRunner::SuiteRunner(ExperimentConfig cfg)
    : cfg(cfg), cache(ArtifactCache::fromEnv()),
      pipe(cfg.simpoint, ArtifactCache::fromEnv())
{
}

SuiteRunner::PerBench &
SuiteRunner::slot(const std::string &name)
{
    return slots[name];
}

u64
SuiteRunner::benchKey(const std::string &name, u64 extra)
{
    u64 k = spec(name).contentHash();
    k = hashCombine(k, cfg.simpoint.contentHash());
    k = hashCombine(k, cfg.machine.contentHash());
    for (const CacheParams *p :
         {&cfg.allcache.l1i, &cfg.allcache.l1d, &cfg.allcache.l2,
          &cfg.allcache.l3}) {
        k = hashCombine(k, p->sizeBytes);
        k = hashCombine(k, p->ways);
        k = hashCombine(k, p->lineBytes);
    }
    k = hashCombine(k, cfg.warmupChunks);
    return hashCombine(k, extra);
}

const BenchmarkSpec &
SuiteRunner::spec(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.haveSpec) {
        s.spec = benchmarkByName(name);
        s.haveSpec = true;
    }
    return s.spec;
}

const SimPointResult &
SuiteRunner::simpoints(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.haveSimpoints) {
        obs::TraceSpan span("suite.simpoints");
        s.simpoints = pipe.simpoints(spec(name));
        s.haveSimpoints = true;
    }
    return s.simpoints;
}

const CacheRunMetrics &
SuiteRunner::wholeCache(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.haveWholeCache) {
        obs::TraceSpan span("suite.whole_cache");
        u64 key = benchKey(name, 0xca11ULL);
        if (!loadPod(cache, "wholecache", key, s.wholeCache)) {
            SPLAB_INFORM("whole-run cache simulation: ", name);
            s.wholeCache = measureWholeCache(spec(name), cfg.allcache);
            storePod(cache, "wholecache", key, s.wholeCache);
        }
        s.haveWholeCache = true;
    }
    return s.wholeCache;
}

const std::vector<PointCacheMetrics> &
SuiteRunner::pointsCacheCold(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.havePointsCold) {
        obs::TraceSpan span("suite.points_cache_cold");
        u64 key = benchKey(name, 0xc01dULL);
        if (!loadPods(cache, "pointscold", key, s.pointsCold)) {
            SPLAB_INFORM("regional cache replays (cold): ", name);
            s.pointsCold = measurePointsCache(
                spec(name), simpoints(name), cfg.allcache, 0);
            storePods(cache, "pointscold", key, s.pointsCold);
        }
        s.havePointsCold = true;
    }
    return s.pointsCold;
}

const std::vector<PointCacheMetrics> &
SuiteRunner::pointsCacheWarm(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.havePointsWarm) {
        obs::TraceSpan span("suite.points_cache_warm");
        u64 key = benchKey(name, 0x3a73ULL);
        if (!loadPods(cache, "pointswarm", key, s.pointsWarm)) {
            SPLAB_INFORM("regional cache replays (warmup): ", name);
            s.pointsWarm = measurePointsCache(
                spec(name), simpoints(name), cfg.allcache,
                cfg.warmupChunks);
            storePods(cache, "pointswarm", key, s.pointsWarm);
        }
        s.havePointsWarm = true;
    }
    return s.pointsWarm;
}

const TimingRunMetrics &
SuiteRunner::wholeTiming(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.haveWholeTiming) {
        obs::TraceSpan span("suite.whole_timing");
        u64 key = benchKey(name, 0x71113ULL);
        if (!loadPod(cache, "wholetiming", key, s.wholeTiming)) {
            SPLAB_INFORM("whole-run timing simulation: ", name);
            s.wholeTiming = measureWholeTiming(spec(name), cfg.machine);
            storePod(cache, "wholetiming", key, s.wholeTiming);
        }
        s.haveWholeTiming = true;
    }
    return s.wholeTiming;
}

const PerfCounters &
SuiteRunner::native(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.haveNative) {
        obs::TraceSpan span("suite.native");
        u64 key = benchKey(name, 0x9e2fULL);
        if (!loadPod(cache, "native", key, s.nativeCounters)) {
            SPLAB_INFORM("native (perf) run: ", name);
            SyntheticWorkload wl(spec(name));
            NativeMachine hw(cfg.machine);
            s.nativeCounters = hw.run(wl);
            storePod(cache, "native", key, s.nativeCounters);
        }
        s.haveNative = true;
    }
    return s.nativeCounters;
}

const std::vector<PointTimingMetrics> &
SuiteRunner::pointsTiming(const std::string &name)
{
    PerBench &s = slot(name);
    if (!s.havePointsTiming) {
        obs::TraceSpan span("suite.points_timing");
        u64 key = benchKey(name, 0x5a1b3ULL);
        if (!loadPods(cache, "pointstiming", key, s.pointsTiming)) {
            SPLAB_INFORM("regional timing replays: ", name);
            s.pointsTiming = measurePointsTiming(
                spec(name), simpoints(name), cfg.machine,
                cfg.warmupChunks);
            storePods(cache, "pointstiming", key, s.pointsTiming);
        }
        s.havePointsTiming = true;
    }
    return s.pointsTiming;
}

namespace
{

template <typename P>
std::vector<P>
reduceImpl(const std::vector<P> &points, double quantile)
{
    std::vector<const P *> sorted;
    sorted.reserve(points.size());
    for (const auto &p : points)
        sorted.push_back(&p);
    std::sort(sorted.begin(), sorted.end(),
              [](const P *a, const P *b) {
                  return a->weight > b->weight;
              });
    double total = 0.0;
    for (const auto &p : points)
        total += p.weight;
    std::vector<P> kept;
    double acc = 0.0;
    for (const P *p : sorted) {
        kept.push_back(*p);
        acc += p->weight;
        if (acc >= quantile * total - 1e-12)
            break;
    }
    return kept;
}

} // namespace

std::vector<PointCacheMetrics>
SuiteRunner::reduceToQuantile(
    const std::vector<PointCacheMetrics> &points, double quantile)
{
    return reduceImpl(points, quantile);
}

std::vector<PointTimingMetrics>
SuiteRunner::reduceToQuantile(
    const std::vector<PointTimingMetrics> &points, double quantile)
{
    return reduceImpl(points, quantile);
}

} // namespace splab
