#include "metrics.hh"

#include <algorithm>

#include "support/logging.hh"

namespace splab
{

AggregateCacheMetrics
aggregateCache(const std::vector<PointCacheMetrics> &points)
{
    AggregateCacheMetrics agg;
    if (points.empty())
        return agg;

    double wTotal = 0.0;
    for (const auto &p : points)
        wTotal += p.weight;
    SPLAB_ASSERT(wTotal > 0.0, "aggregate: zero total weight");

    // Weighted per-instruction rates.
    std::array<double, kNumMemClasses> mix{};
    double accPI[4] = {}; // l1i, l1d, l2, l3 accesses per instr
    double misPI[4] = {};
    for (const auto &p : points) {
        double w = p.weight / wTotal;
        double inv =
            p.m.instrs ? 1.0 / static_cast<double>(p.m.instrs) : 0.0;
        for (std::size_t c = 0; c < kNumMemClasses; ++c)
            mix[c] += w * p.m.mixFrac[c];
        const LevelCounts *lvls[4] = {&p.m.l1i, &p.m.l1d, &p.m.l2,
                                      &p.m.l3};
        for (int l = 0; l < 4; ++l) {
            accPI[l] += w * static_cast<double>(lvls[l]->accesses) *
                        inv;
            misPI[l] += w * static_cast<double>(lvls[l]->misses) * inv;
        }
        agg.executedInstrs += p.m.instrs;
        agg.l3Accesses += p.m.l3.accesses;
        agg.wallSeconds += p.m.wallSeconds;
    }
    agg.mixFrac = mix;
    auto rate = [](double mis, double acc) {
        return acc > 0.0 ? mis / acc : 0.0;
    };
    agg.l1iMissRate = rate(misPI[0], accPI[0]);
    agg.l1dMissRate = rate(misPI[1], accPI[1]);
    agg.l2MissRate = rate(misPI[2], accPI[2]);
    agg.l3MissRate = rate(misPI[3], accPI[3]);
    return agg;
}

AggregateTimingMetrics
aggregateTiming(const std::vector<PointTimingMetrics> &points)
{
    AggregateTimingMetrics agg;
    if (points.empty())
        return agg;

    double wTotal = 0.0;
    for (const auto &p : points)
        wTotal += p.weight;
    SPLAB_ASSERT(wTotal > 0.0, "aggregate: zero total weight");

    double cpiAcc = 0.0;
    double brPI = 0.0, misPI = 0.0;
    for (const auto &p : points) {
        double w = p.weight / wTotal;
        double inv =
            p.m.instrs ? 1.0 / static_cast<double>(p.m.instrs) : 0.0;
        cpiAcc += w * p.m.cpi();
        brPI += w * static_cast<double>(p.m.branches) * inv;
        misPI += w * static_cast<double>(p.m.mispredicts) * inv;
        agg.executedInstrs += p.m.instrs;
        agg.wallSeconds += p.m.wallSeconds;
    }
    agg.cpi = cpiAcc;
    agg.mispredictRate = brPI > 0.0 ? misPI / brPI : 0.0;
    return agg;
}

AggregateCacheMetrics
wholeAsAggregate(const CacheRunMetrics &whole)
{
    AggregateCacheMetrics agg;
    agg.executedInstrs = whole.instrs;
    agg.mixFrac = whole.mixFrac;
    agg.l1iMissRate = whole.l1i.missRate();
    agg.l1dMissRate = whole.l1d.missRate();
    agg.l2MissRate = whole.l2.missRate();
    agg.l3MissRate = whole.l3.missRate();
    agg.l3Accesses = whole.l3.accesses;
    agg.wallSeconds = whole.wallSeconds;
    return agg;
}

namespace
{

template <typename P>
std::vector<P>
reduceImpl(const std::vector<P> &points, double quantile)
{
    std::vector<const P *> sorted;
    sorted.reserve(points.size());
    for (const auto &p : points)
        sorted.push_back(&p);
    std::sort(sorted.begin(), sorted.end(),
              [](const P *a, const P *b) {
                  return a->weight > b->weight;
              });
    double total = 0.0;
    for (const auto &p : points)
        total += p.weight;
    std::vector<P> kept;
    double acc = 0.0;
    for (const P *p : sorted) {
        kept.push_back(*p);
        acc += p->weight;
        if (acc >= quantile * total - 1e-12)
            break;
    }
    return kept;
}

} // namespace

std::vector<PointCacheMetrics>
reduceToQuantile(const std::vector<PointCacheMetrics> &points,
                 double quantile)
{
    return reduceImpl(points, quantile);
}

std::vector<PointTimingMetrics>
reduceToQuantile(const std::vector<PointTimingMetrics> &points,
                 double quantile)
{
    return reduceImpl(points, quantile);
}

} // namespace splab
