#include "artifact_cache.hh"

#include <cstdio>
#include <filesystem>

#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

ArtifactCache::ArtifactCache(std::string dir) : root(std::move(dir))
{
    if (root.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        SPLAB_WARN("cannot create cache dir ", root, ": ",
                   ec.message(), "; caching disabled");
        root.clear();
    }
}

ArtifactCache
ArtifactCache::fromEnv()
{
    return ArtifactCache(artifactCacheDir());
}

std::string
ArtifactCache::path(const std::string &kind, u64 key) const
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      hashCombine(key, kVersionSalt)));
    return root + "/" + kind + "-" + hex + ".bin";
}

std::optional<ByteReader>
ArtifactCache::load(const std::string &kind, u64 key) const
{
    if (!enabled())
        return std::nullopt;
    std::string p = path(kind, key);
    if (!ByteReader::probeFile(p))
        return std::nullopt;
    return ByteReader::loadFile(p);
}

void
ArtifactCache::store(const std::string &kind, u64 key,
                     const ByteWriter &blob) const
{
    if (!enabled())
        return;
    std::string p = path(kind, key);
    if (!blob.saveFile(p))
        SPLAB_WARN("cannot write cache artifact ", p);
}

} // namespace splab
