#include "artifact_cache.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include "obs/counters.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

namespace
{

constexpr u64 kIndexMagic = 0x53504c4142494458ULL; // "SPLABIDX"
constexpr u32 kIndexVersion = 1;

/**
 * True when @p dir accepts new files.  std::filesystem permission
 * bits are not enough (root, ACLs, read-only mounts), so probe by
 * actually creating and removing a scratch file.
 */
bool
dirIsWritable(const std::string &dir)
{
    std::string probe = dir + "/.splab-write-probe";
    std::FILE *f = std::fopen(probe.c_str(), "wb");
    if (!f)
        return false;
    std::fclose(f);
    std::error_code ec;
    std::filesystem::remove(probe, ec);
    return true;
}

/** Warn about an unusable cache dir only once per directory. */
void
warnOnce(const std::string &dir, const char *why)
{
    static std::mutex mtx;
    static std::set<std::string> warned;
    std::lock_guard<std::mutex> g(mtx);
    if (!warned.insert(dir).second)
        return;
    SPLAB_WARN("cache dir ", dir, ": ", why, "; caching disabled");
}

/**
 * Exclusive flock over "<root>/index.lock" serializing index
 * read-modify-write cycles across processes.  Advisory, so only
 * ArtifactCache instances contend; blob reads never take it.
 */
class FileLock
{
  public:
    explicit FileLock(const std::string &path)
        : fd(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644))
    {
        if (fd < 0)
            return;
        while (::flock(fd, LOCK_EX) != 0) {
            if (errno != EINTR) {
                ::close(fd);
                fd = -1;
                return;
            }
        }
    }

    ~FileLock()
    {
        if (fd >= 0)
            ::close(fd); // closing drops the flock
    }

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

  private:
    int fd;
};

u64
fileSizeOr0(const std::string &p)
{
    std::error_code ec;
    auto n = std::filesystem::file_size(p, ec);
    return ec ? 0 : static_cast<u64>(n);
}

obs::Counter &
evictionsCounter()
{
    return obs::counter("artifact_cache.evictions",
                        "artifact blobs evicted by the size budget");
}

obs::Counter &
bytesEvictedCounter()
{
    return obs::counter("artifact_cache.bytes_evicted",
                        "bytes reclaimed by cache eviction");
}

obs::Counter &
sharedReclaimedCounter()
{
    return obs::counter("artifact_cache.shared_blobs_reclaimed",
                        "shared sub-blobs reclaimed after their last "
                        "referencing artifact was evicted");
}

obs::Gauge &
residentGauge()
{
    return obs::gauge("artifact_cache.resident_bytes",
                      "indexed artifact + shared sub-blob bytes");
}

} // namespace

/**
 * In-memory mirror of index.bin.  Disk is authoritative: every
 * mutation reloads under the file lock before applying, so the
 * mirror only exists to answer usage() without touching the disk.
 */
struct ArtifactCache::IndexState
{
    struct Entry
    {
        u64 size = 0;    ///< blob file bytes (payload + checksum)
        u64 lastUse = 0; ///< logical stamp, bumped on load/store
        std::vector<std::string> refFiles; ///< shared files referenced
    };

    std::mutex mtx;
    std::map<std::string, Entry> entries; ///< artifact blobs, by name
    std::map<std::string, u64> shared;    ///< shared sub-blob sizes
    u64 stamp = 0; ///< logical clock for last-use ordering

    u64
    residentBytes() const
    {
        u64 total = 0;
        for (const auto &kv : entries)
            total += kv.second.size;
        for (const auto &kv : shared)
            total += kv.second;
        return total;
    }
};

const char *
cacheStatusName(CacheStatus s)
{
    switch (s) {
      case CacheStatus::Hit:
        return "hit";
      case CacheStatus::Miss:
        return "miss";
      case CacheStatus::Corrupt:
        return "corrupt";
      case CacheStatus::Disabled:
        return "disabled";
    }
    return "unknown";
}

ArtifactCache::ArtifactCache(std::string dir, u64 maxBytes)
    : root(std::move(dir)), budget(maxBytes)
{
    // Register the whole counter family eagerly so every run
    // manifest carries it even when the counts stay zero.
    obs::counter("artifact_cache.hits", "cache lookups served");
    obs::counter("artifact_cache.misses",
                 "cache lookups with no blob");
    obs::counter("artifact_cache.corrupt",
                 "cache blobs failing checksum validation");
    obs::counter("artifact_cache.disabled_lookups",
                 "cache lookups while disabled");
    obs::counter("artifact_cache.bytes_read",
                 "bytes loaded from cache blobs");
    obs::counter("artifact_cache.bytes_written",
                 "bytes stored into cache blobs");
    obs::counter("artifact_cache.blob_share_hits",
                 "shared sub-blob stores satisfied by an existing "
                 "identical blob");
    evictionsCounter();
    bytesEvictedCounter();
    sharedReclaimedCounter();
    residentGauge();

    if (root.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        warnOnce(root, "cannot create");
        root.clear();
        return;
    }
    if (!dirIsWritable(root)) {
        warnOnce(root, "not writable");
        root.clear();
        return;
    }
    idx = std::make_unique<IndexState>();
    // Populate the mirror (and heal a missing/corrupt index) so
    // usage() is meaningful before the first store.
    indexMutate([](IndexState &) {});
}

ArtifactCache::ArtifactCache(ArtifactCache &&) noexcept = default;
ArtifactCache &
ArtifactCache::operator=(ArtifactCache &&) noexcept = default;
ArtifactCache::~ArtifactCache() = default;

ArtifactCache
ArtifactCache::fromEnv()
{
    return ArtifactCache(artifactCacheDir(), cacheMaxBytes());
}

std::string
ArtifactCache::path(const std::string &kind, u64 key) const
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      hashCombine(key, kVersionSalt)));
    return root + "/" + kind + "-" + hex + ".bin";
}

std::string
ArtifactCache::sharedFileName(u64 contentHash) const
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      hashCombine(contentHash, kVersionSalt)));
    return std::string("shared-") + hex + ".bin";
}

// --- persistent index ------------------------------------------------

void
ArtifactCache::indexSaveLocked(const IndexState &st) const
{
    ByteWriter w;
    w.put<u64>(kIndexMagic);
    w.put<u32>(kIndexVersion);
    w.put<u64>(st.stamp);
    w.put<u32>(static_cast<u32>(st.entries.size()));
    for (const auto &kv : st.entries) {
        w.putString(kv.first);
        w.put<u64>(kv.second.size);
        w.put<u64>(kv.second.lastUse);
        w.put<u32>(static_cast<u32>(kv.second.refFiles.size()));
        for (const auto &ref : kv.second.refFiles)
            w.putString(ref);
    }
    w.put<u32>(static_cast<u32>(st.shared.size()));
    for (const auto &kv : st.shared) {
        w.putString(kv.first);
        w.put<u64>(kv.second);
    }

    // tmp + rename so a reader (or a crash) never sees a torn index.
    std::string p = root + "/index.bin";
    std::string tmp =
        p + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    if (!w.saveFile(tmp)) {
        SPLAB_WARN("cannot write cache index ", tmp);
        return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, p, ec);
    if (ec) {
        SPLAB_WARN("cannot publish cache index ", p, ": ",
                   ec.message());
        std::filesystem::remove(tmp, ec);
    }
}

void
ArtifactCache::indexRebuildLocked(IndexState &st) const
{
    st.entries.clear();
    st.shared.clear();
    st.stamp = 0;
    std::error_code ec;
    std::filesystem::directory_iterator it(root, ec), end;
    for (; !ec && it != end; it.increment(ec)) {
        if (!it->is_regular_file(ec))
            continue;
        std::string name = it->path().filename().string();
        // Skip the index's own files and unpublished temporaries.
        if (name.rfind("index.", 0) == 0 ||
            name.find(".tmp.") != std::string::npos ||
            name.rfind(".", 0) == 0)
            continue;
        u64 size = fileSizeOr0(it->path().string());
        if (name.rfind("shared-", 0) == 0) {
            st.shared[name] = size;
        } else {
            // Shared references are unknowable without decoding the
            // blob, so leave them empty: after a rebuild, shared
            // sub-blobs are conservatively never reclaimed.
            st.entries[name] =
                IndexState::Entry{size, ++st.stamp, {}};
        }
    }
}

void
ArtifactCache::indexLoadLocked(IndexState &st) const
{
    std::string p = root + "/index.bin";
    if (!ByteReader::probeFile(p)) {
        indexRebuildLocked(st);
        return;
    }
    ByteReader r = ByteReader::loadFile(p);
    if (r.remaining() < sizeof(u64) + sizeof(u32) ||
        r.get<u64>() != kIndexMagic ||
        r.get<u32>() != kIndexVersion) {
        indexRebuildLocked(st);
        return;
    }
    st.entries.clear();
    st.shared.clear();
    st.stamp = r.get<u64>();
    u32 nEntries = r.get<u32>();
    for (u32 i = 0; i < nEntries; ++i) {
        std::string name = r.getString();
        IndexState::Entry e;
        e.size = r.get<u64>();
        e.lastUse = r.get<u64>();
        u32 nRefs = r.get<u32>();
        e.refFiles.reserve(nRefs);
        for (u32 j = 0; j < nRefs; ++j)
            e.refFiles.push_back(r.getString());
        st.entries.emplace(std::move(name), std::move(e));
    }
    u32 nShared = r.get<u32>();
    for (u32 i = 0; i < nShared; ++i) {
        std::string name = r.getString();
        st.shared[name] = r.get<u64>();
    }
}

void
ArtifactCache::evictLocked(IndexState &st,
                           const std::string &protect,
                           u64 evictBudget) const
{
    u64 resident = st.residentBytes();
    while (resident > evictBudget) {
        // Oldest last-use stamp wins; never the blob being stored.
        auto victim = st.entries.end();
        for (auto it = st.entries.begin(); it != st.entries.end();
             ++it) {
            if (it->first == protect)
                continue;
            if (victim == st.entries.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == st.entries.end())
            break; // nothing evictable (only the protected blob)
        std::vector<std::string> refs =
            std::move(victim->second.refFiles);
        u64 freed = victim->second.size;
        std::error_code ec;
        std::filesystem::remove(root + "/" + victim->first, ec);
        st.entries.erase(victim);
        evictionsCounter().add();
        // Release the victim's shared references: a sub-blob goes
        // only when no surviving artifact still lists it.
        for (const auto &ref : refs) {
            bool stillReferenced = false;
            for (const auto &kv : st.entries) {
                for (const auto &other : kv.second.refFiles) {
                    if (other == ref) {
                        stillReferenced = true;
                        break;
                    }
                }
                if (stillReferenced)
                    break;
            }
            if (stillReferenced)
                continue;
            auto sh = st.shared.find(ref);
            if (sh == st.shared.end())
                continue;
            freed += sh->second;
            std::filesystem::remove(root + "/" + sh->first, ec);
            st.shared.erase(sh);
            sharedReclaimedCounter().add();
        }
        bytesEvictedCounter().add(freed);
        resident = resident > freed ? resident - freed : 0;
    }
}

void
ArtifactCache::indexMutate(
    const std::function<void(IndexState &)> &apply,
    const std::string &protect) const
{
    if (!enabled() || !idx)
        return;
    std::lock_guard<std::mutex> g(idx->mtx);
    FileLock lock(root + "/index.lock");
    indexLoadLocked(*idx);
    apply(*idx);
    if (budget != 0)
        evictLocked(*idx, protect, budget);
    indexSaveLocked(*idx);
    residentGauge().set(idx->residentBytes());
}

CacheUsage
ArtifactCache::evictToBytes(u64 targetBytes) const
{
    CacheUsage u;
    if (!enabled() || !idx)
        return u;
    std::lock_guard<std::mutex> g(idx->mtx);
    FileLock lock(root + "/index.lock");
    indexLoadLocked(*idx);
    evictLocked(*idx, "", targetBytes);
    indexSaveLocked(*idx);
    residentGauge().set(idx->residentBytes());
    u.artifacts = idx->entries.size();
    u.sharedBlobs = idx->shared.size();
    u.residentBytes = idx->residentBytes();
    return u;
}

CacheUsage
ArtifactCache::usage() const
{
    CacheUsage u;
    if (!enabled() || !idx)
        return u;
    std::lock_guard<std::mutex> g(idx->mtx);
    u.artifacts = idx->entries.size();
    u.sharedBlobs = idx->shared.size();
    u.residentBytes = idx->residentBytes();
    return u;
}

// --- blob operations -------------------------------------------------

CacheOutcome
ArtifactCache::load(const std::string &kind, u64 key) const
{
    static obs::Counter &hits = obs::counter("artifact_cache.hits");
    static obs::Counter &misses =
        obs::counter("artifact_cache.misses");
    static obs::Counter &corrupt =
        obs::counter("artifact_cache.corrupt");
    static obs::Counter &disabled =
        obs::counter("artifact_cache.disabled_lookups");
    static obs::Counter &bytesRead =
        obs::counter("artifact_cache.bytes_read");

    CacheOutcome out;
    if (!enabled()) {
        disabled.add();
        out.status = CacheStatus::Disabled;
        return out;
    }
    std::string p = path(kind, key);
    if (!ByteReader::probeFile(p)) {
        std::error_code ec;
        if (std::filesystem::exists(p, ec) && !ec) {
            corrupt.add();
            SPLAB_WARN("corrupt cache blob ", p,
                       "; recomputing artifact");
            out.status = CacheStatus::Corrupt;
        } else {
            misses.add();
            out.status = CacheStatus::Miss;
        }
        return out;
    }
    out.blob = ByteReader::loadFile(p);
    hits.add();
    bytesRead.add(out.blob->remaining());
    out.status = CacheStatus::Hit;
    // Refresh the last-use stamp so LRU eviction sees live blobs.
    // Shared sub-blobs are governed by ref-counts, not recency.
    if (kind != "shared") {
        std::string name =
            std::filesystem::path(p).filename().string();
        u64 size = fileSizeOr0(p);
        indexMutate([&](IndexState &st) {
            auto it = st.entries.find(name);
            if (it == st.entries.end())
                it = st.entries
                         .emplace(name,
                                  IndexState::Entry{size, 0, {}})
                         .first;
            it->second.lastUse = ++st.stamp;
        });
    }
    return out;
}

void
ArtifactCache::store(const std::string &kind, u64 key,
                     const ByteWriter &blob,
                     const std::vector<u64> &sharedRefs) const
{
    if (!enabled())
        return;
    std::string p = path(kind, key);
    if (!blob.saveFile(p)) {
        SPLAB_WARN("cannot write cache artifact ", p);
        return;
    }
    obs::counter("artifact_cache.bytes_written")
        .add(blob.bytes().size());
    std::string name = std::filesystem::path(p).filename().string();
    u64 size = fileSizeOr0(p);
    std::vector<std::string> refs;
    refs.reserve(sharedRefs.size());
    for (u64 h : sharedRefs)
        refs.push_back(sharedFileName(h));
    indexMutate(
        [&](IndexState &st) {
            st.entries[name] =
                IndexState::Entry{size, ++st.stamp,
                                  std::move(refs)};
        },
        name);
}

u64
ArtifactCache::storeShared(const u8 *data, std::size_t size) const
{
    static obs::Counter &shareHits =
        obs::counter("artifact_cache.blob_share_hits");

    u64 h = hashBytes(data, size);
    if (!enabled())
        return h;
    std::string p = root + "/" + sharedFileName(h);
    if (ByteReader::probeFile(p)) {
        shareHits.add();
        return h;
    }
    // Either absent or corrupt; (re)write through a unique temp file
    // + rename so a concurrent reader or writer of the same content
    // never observes a torn blob.  saveFile itself is not atomic.
    static std::atomic<u64> seq{0};
    std::string tmp = p + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) +
                      "." + std::to_string(seq.fetch_add(1));
    ByteWriter w;
    w.putRaw(data, size);
    if (!w.saveFile(tmp)) {
        SPLAB_WARN("cannot write shared cache blob ", tmp);
        return h;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, p, ec);
    if (ec) {
        SPLAB_WARN("cannot publish shared cache blob ", p, ": ",
                   ec.message());
        std::filesystem::remove(tmp, ec);
        return h;
    }
    obs::counter("artifact_cache.bytes_written").add(size);
    std::string name = std::filesystem::path(p).filename().string();
    u64 fsize = fileSizeOr0(p);
    indexMutate([&](IndexState &st) { st.shared[name] = fsize; });
    return h;
}

CacheOutcome
ArtifactCache::loadShared(u64 contentHash) const
{
    static obs::Counter &hits = obs::counter("artifact_cache.hits");
    static obs::Counter &misses =
        obs::counter("artifact_cache.misses");
    static obs::Counter &corrupt =
        obs::counter("artifact_cache.corrupt");
    static obs::Counter &disabled =
        obs::counter("artifact_cache.disabled_lookups");
    static obs::Counter &bytesRead =
        obs::counter("artifact_cache.bytes_read");

    CacheOutcome out;
    if (!enabled()) {
        disabled.add();
        out.status = CacheStatus::Disabled;
        return out;
    }
    std::string p = root + "/" + sharedFileName(contentHash);
    if (!ByteReader::probeFile(p)) {
        std::error_code ec;
        if (std::filesystem::exists(p, ec) && !ec) {
            corrupt.add();
            SPLAB_WARN("corrupt cache blob ", p,
                       "; recomputing artifact");
            out.status = CacheStatus::Corrupt;
        } else {
            misses.add();
            out.status = CacheStatus::Miss;
        }
        return out;
    }
    out.blob = ByteReader::loadFile(p);
    hits.add();
    bytesRead.add(out.blob->remaining());
    out.status = CacheStatus::Hit;
    return out;
}

} // namespace splab
