#include "artifact_cache.hh"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>

#include <unistd.h>

#include "obs/counters.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

namespace
{

/**
 * True when @p dir accepts new files.  std::filesystem permission
 * bits are not enough (root, ACLs, read-only mounts), so probe by
 * actually creating and removing a scratch file.
 */
bool
dirIsWritable(const std::string &dir)
{
    std::string probe = dir + "/.splab-write-probe";
    std::FILE *f = std::fopen(probe.c_str(), "wb");
    if (!f)
        return false;
    std::fclose(f);
    std::error_code ec;
    std::filesystem::remove(probe, ec);
    return true;
}

/** Warn about an unusable cache dir only once per directory. */
void
warnOnce(const std::string &dir, const char *why)
{
    static std::mutex mtx;
    static std::set<std::string> warned;
    std::lock_guard<std::mutex> g(mtx);
    if (!warned.insert(dir).second)
        return;
    SPLAB_WARN("cache dir ", dir, ": ", why, "; caching disabled");
}

} // namespace

const char *
cacheStatusName(CacheStatus s)
{
    switch (s) {
      case CacheStatus::Hit:
        return "hit";
      case CacheStatus::Miss:
        return "miss";
      case CacheStatus::Corrupt:
        return "corrupt";
      case CacheStatus::Disabled:
        return "disabled";
    }
    return "unknown";
}

ArtifactCache::ArtifactCache(std::string dir) : root(std::move(dir))
{
    if (root.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    if (ec) {
        warnOnce(root, "cannot create");
        root.clear();
        return;
    }
    if (!dirIsWritable(root)) {
        warnOnce(root, "not writable");
        root.clear();
    }
}

ArtifactCache
ArtifactCache::fromEnv()
{
    return ArtifactCache(artifactCacheDir());
}

std::string
ArtifactCache::path(const std::string &kind, u64 key) const
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                      hashCombine(key, kVersionSalt)));
    return root + "/" + kind + "-" + hex + ".bin";
}

CacheOutcome
ArtifactCache::load(const std::string &kind, u64 key) const
{
    static obs::Counter &hits =
        obs::counter("artifact_cache.hits", "cache lookups served");
    static obs::Counter &misses =
        obs::counter("artifact_cache.misses",
                     "cache lookups with no blob");
    static obs::Counter &corrupt =
        obs::counter("artifact_cache.corrupt",
                     "cache blobs failing checksum validation");
    static obs::Counter &disabled =
        obs::counter("artifact_cache.disabled_lookups",
                     "cache lookups while disabled");
    static obs::Counter &bytesRead =
        obs::counter("artifact_cache.bytes_read",
                     "bytes loaded from cache blobs");

    CacheOutcome out;
    if (!enabled()) {
        disabled.add();
        out.status = CacheStatus::Disabled;
        return out;
    }
    std::string p = path(kind, key);
    if (!ByteReader::probeFile(p)) {
        std::error_code ec;
        if (std::filesystem::exists(p, ec) && !ec) {
            corrupt.add();
            SPLAB_WARN("corrupt cache blob ", p,
                       "; recomputing artifact");
            out.status = CacheStatus::Corrupt;
        } else {
            misses.add();
            out.status = CacheStatus::Miss;
        }
        return out;
    }
    out.blob = ByteReader::loadFile(p);
    hits.add();
    bytesRead.add(out.blob->remaining());
    out.status = CacheStatus::Hit;
    return out;
}

void
ArtifactCache::store(const std::string &kind, u64 key,
                     const ByteWriter &blob) const
{
    if (!enabled())
        return;
    std::string p = path(kind, key);
    if (!blob.saveFile(p)) {
        SPLAB_WARN("cannot write cache artifact ", p);
        return;
    }
    obs::counter("artifact_cache.bytes_written",
                 "bytes stored into cache blobs")
        .add(blob.bytes().size());
}

u64
ArtifactCache::storeShared(const u8 *data, std::size_t size) const
{
    static obs::Counter &shareHits =
        obs::counter("artifact_cache.blob_share_hits",
                     "shared sub-blob stores satisfied by an "
                     "existing identical blob");

    u64 h = hashBytes(data, size);
    if (!enabled())
        return h;
    std::string p = path("shared", h);
    if (ByteReader::probeFile(p)) {
        shareHits.add();
        return h;
    }
    // Either absent or corrupt; (re)write through a unique temp file
    // + rename so a concurrent reader or writer of the same content
    // never observes a torn blob.  saveFile itself is not atomic.
    static std::atomic<u64> seq{0};
    std::string tmp = p + ".tmp." +
                      std::to_string(static_cast<long>(::getpid())) +
                      "." + std::to_string(seq.fetch_add(1));
    ByteWriter w;
    w.putRaw(data, size);
    if (!w.saveFile(tmp)) {
        SPLAB_WARN("cannot write shared cache blob ", tmp);
        return h;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, p, ec);
    if (ec) {
        SPLAB_WARN("cannot publish shared cache blob ", p, ": ",
                   ec.message());
        std::filesystem::remove(tmp, ec);
        return h;
    }
    obs::counter("artifact_cache.bytes_written",
                 "bytes stored into cache blobs")
        .add(size);
    return h;
}

CacheOutcome
ArtifactCache::loadShared(u64 contentHash) const
{
    return load("shared", contentHash);
}

} // namespace splab
