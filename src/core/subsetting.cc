#include "subsetting.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/logging.hh"
#include "support/stats_util.hh"

namespace splab
{

BenchmarkFeatures
makeFeatures(const std::string &name, const CacheRunMetrics &cache,
             const TimingRunMetrics &timing)
{
    BenchmarkFeatures f;
    f.name = name;
    f.values = {cache.mixFrac[0],
                cache.mixFrac[1],
                cache.mixFrac[2],
                cache.mixFrac[3],
                cache.l1d.missRate(),
                cache.l2.missRate(),
                cache.l3.missRate(),
                timing.cpi(),
                timing.branches
                    ? static_cast<double>(timing.mispredicts) /
                          static_cast<double>(timing.branches)
                    : 0.0};
    return f;
}

namespace
{

/** Z-score-normalize columns; constant columns become zeros. */
std::vector<std::vector<double>>
normalize(const std::vector<BenchmarkFeatures> &features)
{
    std::size_t n = features.size();
    std::size_t dim = features[0].values.size();
    std::vector<std::vector<double>> rows(n,
                                          std::vector<double>(dim));
    for (std::size_t d = 0; d < dim; ++d) {
        std::vector<double> col(n);
        for (std::size_t i = 0; i < n; ++i)
            col[i] = features[i].values[d];
        double m = mean(col), s = stddev(col);
        for (std::size_t i = 0; i < n; ++i)
            rows[i][d] = s > 1e-12 ? (col[i] - m) / s : 0.0;
    }
    return rows;
}

double
dist2(const std::vector<double> &a, const std::vector<double> &b)
{
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

} // namespace

SuiteSubset
subsetSuite(const std::vector<BenchmarkFeatures> &features,
            std::size_t clusters)
{
    SPLAB_ASSERT(!features.empty(), "subsetSuite: no benchmarks");
    for (const auto &f : features)
        SPLAB_ASSERT(f.values.size() == features[0].values.size(),
                     "subsetSuite: inconsistent feature dims");
    std::size_t n = features.size();
    if (clusters < 1)
        clusters = 1;
    if (clusters > n)
        clusters = n;

    auto rows = normalize(features);

    // Agglomerative average-linkage: start from singletons, merge
    // the closest pair until `clusters` groups remain.  n is small
    // (a suite), so the O(n^3) textbook algorithm is fine.
    std::vector<std::vector<u32>> groups(n);
    for (u32 i = 0; i < n; ++i)
        groups[i] = {i};

    auto linkage = [&](const std::vector<u32> &a,
                       const std::vector<u32> &b) {
        double s = 0.0;
        for (u32 i : a)
            for (u32 j : b)
                s += std::sqrt(dist2(rows[i], rows[j]));
        return s / (static_cast<double>(a.size()) *
                    static_cast<double>(b.size()));
    };

    while (groups.size() > clusters) {
        double best = std::numeric_limits<double>::max();
        std::size_t bi = 0, bj = 1;
        for (std::size_t i = 0; i < groups.size(); ++i) {
            for (std::size_t j = i + 1; j < groups.size(); ++j) {
                double d = linkage(groups[i], groups[j]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }
        groups[bi].insert(groups[bi].end(), groups[bj].begin(),
                          groups[bj].end());
        groups.erase(groups.begin() +
                     static_cast<std::ptrdiff_t>(bj));
    }

    SuiteSubset out;
    out.assignment.assign(n, 0);
    for (u32 c = 0; c < groups.size(); ++c) {
        for (u32 i : groups[c])
            out.assignment[i] = c;
        // Medoid: member minimizing the summed distance to the rest.
        double best = std::numeric_limits<double>::max();
        u32 medoid = groups[c].front();
        for (u32 i : groups[c]) {
            double s = 0.0;
            for (u32 j : groups[c])
                s += std::sqrt(dist2(rows[i], rows[j]));
            if (s < best) {
                best = s;
                medoid = i;
            }
        }
        out.representatives.push_back(medoid);
    }
    std::sort(out.representatives.begin(), out.representatives.end());
    return out;
}

double
subsetRepresentationError(
    const std::vector<BenchmarkFeatures> &features,
    const SuiteSubset &subset)
{
    SPLAB_ASSERT(subset.assignment.size() == features.size(),
                 "subset does not match feature set");
    auto rows = normalize(features);
    // Map cluster -> representative row index.
    std::vector<u32> repOf(subset.representatives.size());
    for (u32 r : subset.representatives)
        repOf[subset.assignment[r]] = r;
    double s = 0.0;
    for (std::size_t i = 0; i < rows.size(); ++i)
        s += std::sqrt(
            dist2(rows[i], rows[repOf[subset.assignment[i]]]));
    return s / static_cast<double>(rows.size());
}

} // namespace splab
