#include "artifact_graph.hh"

#include <array>
#include <condition_variable>
#include <cstddef>
#include <cstdio>

#include "artifact_backend.hh"
#include "obs/counters.hh"
#include "obs/trace.hh"
#include "pinball/logger.hh"
#include "sampling/strategies.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "workload/synthetic.hh"

namespace splab
{

namespace
{

// Artifact blobs are written as raw struct bytes (putVector / put),
// so the structs must be padding-free or cached blobs would embed
// uninitialized bytes and break byte-level reproducibility (see the
// SimPoint field-wise serializer for the one type that is not).
static_assert(sizeof(LevelCounts) == 16);
static_assert(sizeof(CacheRunMetrics) == 120);
static_assert(sizeof(TimingRunMetrics) == 64);
static_assert(sizeof(FusedWholeMetrics) == 184);
// The blob-sharing scheme (see sharedRanges below) depends on the
// fused struct being the exact byte-wise concatenation of its two
// views, with no padding between or after them.
static_assert(sizeof(FusedWholeMetrics) ==
              sizeof(CacheRunMetrics) + sizeof(TimingRunMetrics));
static_assert(offsetof(FusedWholeMetrics, timing) ==
              sizeof(CacheRunMetrics));
static_assert(sizeof(PointCacheMetrics) == 128);
static_assert(sizeof(PointTimingMetrics) == 72);
static_assert(sizeof(PerfCounters) == 48);

/** Static description of one artifact kind. */
struct KindInfo
{
    const char *name;     ///< cache-blob family + manifest key
    const char *spanName; ///< trace span around load/compute
    /** Version salt: bump the low digits when the producing
     *  algorithm or serialized layout of this kind changes. */
    u64 salt;
    bool persisted;
    /** Persisted as a *ref blob* over content-addressed shared
     *  sub-blobs instead of inline bytes (see ensure()). */
    bool shared;
    std::vector<ArtifactKind> deps;
};

const KindInfo &
kindInfo(ArtifactKind k)
{
    static const std::array<KindInfo, kNumArtifactKinds> table = {{
        {"spec", "graph.spec", 0x7370656300000001ULL, false, false,
         {}},
        {"bbvprofile", "graph.bbv_profile", 0x6262767000000001ULL,
         false, false, {ArtifactKind::Spec}},
        {"simpoints", "graph.simpoints", 0x73696d7000000001ULL,
         true, false, {ArtifactKind::BbvProfile}},
        // Strategy-selected regions.  Deps are {BbvProfile} even
        // though the simpoint strategy's compute routes through the
        // SimPoints node: the *value* is a pure function of the BBV
        // profile plus the active strategy's knobs, which enter the
        // key through the strategy-salted config slice
        // (SamplingConfig::activeHash).  The blob family is
        // per-strategy ("regions_smarts", ...) — see blobFamily().
        {"regions", "graph.regions", 0x7267696f00000001ULL, true,
         false, {ArtifactKind::BbvProfile}},
        // Persisted via shared sub-blobs: the fused value is the
        // byte-wise concatenation of the cache and timing views, and
        // the projection ref-blobs point at those same sub-blobs, so
        // persisting it costs one small ref blob — no double-stored
        // metric bytes — and a warm bench run skips the fused
        // traversal entirely.  Salt bumped (..01 -> ..02) when the
        // node became persisted/shared.  SPLAB_FUSED_PERSIST=0
        // restores the memory-resident behaviour.
        {"wholefused", "graph.whole_fused", 0x7766757300000002ULL,
         true, true, {ArtifactKind::Spec}},
        // Salts bumped (..01 -> ..02) with the fused-traversal
        // rewrite so pre-fusion blobs are never mixed with
        // post-fusion ones, then (..02 -> ..03) when the persisted
        // layout changed from inline metric bytes to a shared-blob
        // ref.
        {"wholecache", "graph.whole_cache", 0x7763616300000003ULL,
         true, true, {ArtifactKind::Spec}},
        {"wholetiming", "graph.whole_timing", 0x7774696d00000003ULL,
         true, true, {ArtifactKind::Spec}},
        // Salt bumped (..01 -> ..02) when the capture moved from the
        // SimPoints selection to the strategy-generic Regions node
        // (regions gained lengths and warm-up prescriptions).
        {"regionalpinball", "graph.regional_pinball",
         0x7270696e00000002ULL, false, false,
         {ArtifactKind::Spec, ArtifactKind::Regions}},
        {"pointscold", "graph.points_cache_cold",
         0x70636f6c00000001ULL, true, false,
         {ArtifactKind::RegionalPinball}},
        {"pointswarm", "graph.points_cache_warm",
         0x7077726d00000001ULL, true, false,
         {ArtifactKind::RegionalPinball}},
        {"native", "graph.native", 0x6e61746900000001ULL, true,
         false, {ArtifactKind::Spec}},
        {"pointstiming", "graph.points_timing",
         0x7074696d00000001ULL, true, false,
         {ArtifactKind::RegionalPinball}},
    }};
    return table[static_cast<u8>(k)];
}

/**
 * Cache-blob family (and manifest key prefix) of one kind.  Regions
 * qualifies by the active strategy ("regions_smarts", ...): each
 * strategy is its own cached node family, so per-strategy selections
 * coexist in one cache directory and the manifest says which
 * strategy produced each recorded key.
 */
std::string
blobFamily(ArtifactKind kind, const ExperimentConfig &cfg)
{
    std::string family = kindInfo(kind).name;
    if (kind == ArtifactKind::Regions) {
        family += '_';
        family += strategyName(cfg.sampling.strategy);
    }
    return family;
}

/**
 * Byte ranges of the shareable components of one serialized shared
 * artifact.  FusedWholeMetrics is serialized as raw struct bytes and
 * is (statically asserted) the padding-free concatenation of
 * CacheRunMetrics and TimingRunMetrics, so splitting it at the
 * member boundary yields exactly the projections' serialized bytes —
 * the fused node and both projections address the same two
 * sub-blobs.
 */
std::vector<std::pair<std::size_t, std::size_t>>
sharedRanges(ArtifactKind k, std::size_t totalSize)
{
    if (k == ArtifactKind::WholeFused) {
        SPLAB_ASSERT(totalSize == sizeof(FusedWholeMetrics),
                     "unexpected fused blob size ", totalSize);
        return {{0, sizeof(CacheRunMetrics)},
                {sizeof(CacheRunMetrics), sizeof(TimingRunMetrics)}};
    }
    return {{0, totalSize}};
}

} // namespace

const char *
artifactKindName(ArtifactKind k)
{
    return kindInfo(k).name;
}

const std::vector<ArtifactKind> &
artifactKindDeps(ArtifactKind k)
{
    return kindInfo(k).deps;
}

bool
artifactKindPersisted(ArtifactKind k)
{
    return kindInfo(k).persisted;
}

bool
artifactKindShared(ArtifactKind k)
{
    return kindInfo(k).shared;
}

u64
artifactKindSalt(ArtifactKind k)
{
    return kindInfo(k).salt;
}

void
serializeArtifact(ByteWriter &w, const ArtifactValue &v)
{
    struct Visitor
    {
        ByteWriter &w;

        void
        operator()(const BenchmarkSpec &s)
        {
            s.serialize(w);
        }
        void
        operator()(const std::vector<FrequencyVector> &bbvs)
        {
            w.put<u64>(bbvs.size());
            for (const FrequencyVector &fv : bbvs)
                w.putVector(fv.entries);
        }
        void
        operator()(const SimPointResult &r)
        {
            serializeSimPoints(w, r);
        }
        void
        operator()(const RegionSelection &s)
        {
            serializeRegions(w, s);
        }
        void
        operator()(const FusedWholeMetrics &m)
        {
            w.put(m);
        }
        void
        operator()(const CacheRunMetrics &m)
        {
            w.put(m);
        }
        void
        operator()(const Pinball &p)
        {
            p.serialize(w);
        }
        void
        operator()(const std::vector<PointCacheMetrics> &pts)
        {
            w.putVector(pts);
        }
        void
        operator()(const TimingRunMetrics &m)
        {
            w.put(m);
        }
        void
        operator()(const PerfCounters &c)
        {
            w.put(c);
        }
        void
        operator()(const std::vector<PointTimingMetrics> &pts)
        {
            w.putVector(pts);
        }
    };
    std::visit(Visitor{w}, v);
}

ArtifactValue
deserializeArtifact(ArtifactKind k, ByteReader &r)
{
    switch (k) {
      case ArtifactKind::Spec:
        return BenchmarkSpec::deserialize(r);
      case ArtifactKind::BbvProfile: {
        std::vector<FrequencyVector> bbvs(r.get<u64>());
        for (FrequencyVector &fv : bbvs)
            fv.entries = r.getVector<BbvEntry>();
        return bbvs;
      }
      case ArtifactKind::SimPoints:
        return deserializeSimPoints(r);
      case ArtifactKind::Regions:
        return deserializeRegions(r);
      case ArtifactKind::WholeFused:
        return r.get<FusedWholeMetrics>();
      case ArtifactKind::WholeCache:
        return r.get<CacheRunMetrics>();
      case ArtifactKind::WholeTiming:
        return r.get<TimingRunMetrics>();
      case ArtifactKind::RegionalPinball:
        return Pinball::deserialize(r);
      case ArtifactKind::PointsCacheCold:
      case ArtifactKind::PointsCacheWarm:
        return r.getVector<PointCacheMetrics>();
      case ArtifactKind::Native:
        return r.get<PerfCounters>();
      case ArtifactKind::PointsTiming:
        return r.getVector<PointTimingMetrics>();
    }
    SPLAB_FATAL("unknown artifact kind ",
                static_cast<int>(static_cast<u8>(k)));
}

u64
ExperimentConfig::contentHash() const
{
    ByteWriter w;
    w.put<u64>(simpoint.contentHash());
    w.put<u8>(static_cast<u8>(sampling.strategy));
    w.put<u64>(sampling.smarts.contentHash());
    w.put<u64>(sampling.stratified.contentHash());
    w.put<u64>(sampling.rankedSet.contentHash());
    w.put<u64>(sampling.random.contentHash());
    w.put<u64>(sampling.stride.contentHash());
    w.put<u64>(allcache.contentHash());
    w.put<u64>(machine.contentHash());
    w.put<u64>(warmupChunks);
    w.put<double>(cost.wholeRate);
    w.put<double>(cost.regionalRate);
    w.put<double>(cost.pinballStartup);
    w.put<double>(cost.loggerSlowdown);
    w.put<double>(cost.nativeRate);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

void
ExperimentConfig::describe(obs::RunManifest &m) const
{
    m.setConfig("simpoint.max_k", simpoint.maxK);
    m.setConfig("simpoint.slice_instrs", u64{simpoint.sliceInstrs});
    m.setConfig("simpoint.projection_dim", simpoint.projectionDim);
    m.setConfig("simpoint.bic_fraction", simpoint.bicFraction);
    m.setConfig("simpoint.restarts", simpoint.restarts);
    m.setConfig("simpoint.max_iters", simpoint.maxIters);
    m.setConfig("simpoint.sample_cap", simpoint.sampleCap);
    m.setConfig("simpoint.merge_threshold", simpoint.mergeThreshold);
    m.setConfig("simpoint.seed", simpoint.seed);
    // The active strategy records "sampling.strategy" plus its own
    // "sampling.<strategy>.<knob>" keys.
    makeStrategy(sampling, simpoint)->describe(m);
    m.setConfig("warmup_chunks", warmupChunks);
    auto level = [&](const char *name, const CacheParams &p) {
        std::string base = std::string("allcache.") + name;
        m.setConfig(base + ".size_bytes", p.sizeBytes);
        m.setConfig(base + ".ways", p.ways);
        m.setConfig(base + ".line_bytes", p.lineBytes);
        m.setConfig(base + ".replacement",
                    replacementPolicyName(p.replacement));
    };
    level("l1i", allcache.l1i);
    level("l1d", allcache.l1d);
    level("l2", allcache.l2);
    level("l3", allcache.l3);
    m.setConfig("machine.model", machine.model);
    auto hashHex = [](u64 h) {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "0x%016llx",
                      static_cast<unsigned long long>(h));
        return std::string(hex);
    };
    m.setConfig("machine.content_hash",
                hashHex(machine.contentHash()));
    m.setConfig("experiment.content_hash", hashHex(contentHash()));
}

namespace
{

/** Wire-format version of ExperimentConfig::serialize. */
constexpr u32 kConfigWireVersion = 1;

/// @name Defensive wire readers (false on truncation, never fatal)
/// @{
template <typename T>
bool
rdGet(ByteReader &r, T &out)
{
    if (r.remaining() < sizeof(T))
        return false;
    out = r.get<T>();
    return true;
}

bool
rdString(ByteReader &r, std::string &out)
{
    u32 n = 0;
    if (!rdGet(r, n) || r.remaining() < n)
        return false;
    std::vector<u8> raw = r.getRaw(n);
    out.assign(raw.begin(), raw.end());
    return true;
}
/// @}

void
wrString(ByteWriter &w, const std::string &s)
{
    w.put<u32>(static_cast<u32>(s.size()));
    w.putRaw(reinterpret_cast<const u8 *>(s.data()), s.size());
}

void
wrCacheParams(ByteWriter &w, const CacheParams &p)
{
    wrString(w, p.name);
    w.put<u64>(p.sizeBytes);
    w.put<u32>(p.ways);
    w.put<u32>(p.lineBytes);
    w.put<u8>(static_cast<u8>(p.replacement));
}

bool
rdCacheParams(ByteReader &r, CacheParams &p)
{
    u8 replacement = 0;
    if (!rdString(r, p.name) || !rdGet(r, p.sizeBytes) ||
        !rdGet(r, p.ways) || !rdGet(r, p.lineBytes) ||
        !rdGet(r, replacement) || replacement > 1)
        return false;
    p.replacement = static_cast<ReplacementPolicy>(replacement);
    return true;
}

} // namespace

void
ExperimentConfig::serialize(ByteWriter &w) const
{
    w.put<u32>(kConfigWireVersion);

    w.put<u32>(simpoint.maxK);
    w.put<u64>(u64{simpoint.sliceInstrs});
    w.put<u32>(simpoint.projectionDim);
    w.put<double>(simpoint.bicFraction);
    w.put<i32>(static_cast<i32>(simpoint.restarts));
    w.put<i32>(static_cast<i32>(simpoint.maxIters));
    w.put<u32>(simpoint.sampleCap);
    w.put<double>(simpoint.mergeThreshold);
    w.put<u64>(simpoint.seed);

    w.put<u8>(static_cast<u8>(sampling.strategy));
    w.put<u64>(sampling.smarts.k);
    w.put<u64>(sampling.smarts.munit);
    w.put<u64>(sampling.smarts.wunit);
    w.put<u8>(sampling.smarts.allwarm ? 1 : 0);
    w.put<u32>(sampling.stratified.strata);
    w.put<u32>(sampling.stratified.budget);
    w.put<u32>(sampling.stratified.pilotStride);
    w.put<u64>(sampling.stratified.seed);
    w.put<u32>(sampling.rankedSet.setSize);
    w.put<u32>(sampling.rankedSet.cycles);
    w.put<u32>(sampling.rankedSet.subsamples);
    w.put<u64>(sampling.rankedSet.seed);
    w.put<u32>(sampling.random.n);
    w.put<u64>(sampling.random.seed);
    w.put<u32>(sampling.stride.n);

    wrCacheParams(w, allcache.l1i);
    wrCacheParams(w, allcache.l1d);
    wrCacheParams(w, allcache.l2);
    wrCacheParams(w, allcache.l3);

    wrString(w, machine.model);
    w.put<double>(machine.frequencyGHz);
    w.put<u32>(machine.dispatchWidth);
    w.put<u32>(machine.robEntries);
    w.put<u32>(machine.branchMispredictPenalty);
    w.put<u32>(machine.l1LatencyCycles);
    w.put<u32>(machine.l2LatencyCycles);
    w.put<u32>(machine.l3LatencyCycles);
    w.put<u32>(machine.memLatencyCycles);
    w.put<u32>(machine.predictorHistoryBits);
    wrCacheParams(w, machine.caches.l1i);
    wrCacheParams(w, machine.caches.l1d);
    wrCacheParams(w, machine.caches.l2);
    wrCacheParams(w, machine.caches.l3);

    w.put<u64>(warmupChunks);
    w.put<double>(cost.wholeRate);
    w.put<double>(cost.regionalRate);
    w.put<double>(cost.pinballStartup);
    w.put<double>(cost.loggerSlowdown);
    w.put<double>(cost.nativeRate);
}

bool
ExperimentConfig::deserialize(ByteReader &r, ExperimentConfig &out)
{
    u32 version = 0;
    if (!rdGet(r, version) || version != kConfigWireVersion)
        return false;

    u64 sliceInstrs = 0;
    i32 restarts = 0, maxIters = 0;
    if (!rdGet(r, out.simpoint.maxK) || !rdGet(r, sliceInstrs) ||
        !rdGet(r, out.simpoint.projectionDim) ||
        !rdGet(r, out.simpoint.bicFraction) ||
        !rdGet(r, restarts) || !rdGet(r, maxIters) ||
        !rdGet(r, out.simpoint.sampleCap) ||
        !rdGet(r, out.simpoint.mergeThreshold) ||
        !rdGet(r, out.simpoint.seed))
        return false;
    out.simpoint.sliceInstrs = sliceInstrs;
    out.simpoint.restarts = restarts;
    out.simpoint.maxIters = maxIters;

    u8 strategy = 0, allwarm = 0;
    if (!rdGet(r, strategy) || strategy >= kNumStrategies ||
        !rdGet(r, out.sampling.smarts.k) ||
        !rdGet(r, out.sampling.smarts.munit) ||
        !rdGet(r, out.sampling.smarts.wunit) || !rdGet(r, allwarm))
        return false;
    out.sampling.strategy = static_cast<StrategyKind>(strategy);
    out.sampling.smarts.allwarm = allwarm != 0;
    if (!rdGet(r, out.sampling.stratified.strata) ||
        !rdGet(r, out.sampling.stratified.budget) ||
        !rdGet(r, out.sampling.stratified.pilotStride) ||
        !rdGet(r, out.sampling.stratified.seed) ||
        !rdGet(r, out.sampling.rankedSet.setSize) ||
        !rdGet(r, out.sampling.rankedSet.cycles) ||
        !rdGet(r, out.sampling.rankedSet.subsamples) ||
        !rdGet(r, out.sampling.rankedSet.seed) ||
        !rdGet(r, out.sampling.random.n) ||
        !rdGet(r, out.sampling.random.seed) ||
        !rdGet(r, out.sampling.stride.n))
        return false;

    if (!rdCacheParams(r, out.allcache.l1i) ||
        !rdCacheParams(r, out.allcache.l1d) ||
        !rdCacheParams(r, out.allcache.l2) ||
        !rdCacheParams(r, out.allcache.l3))
        return false;

    if (!rdString(r, out.machine.model) ||
        !rdGet(r, out.machine.frequencyGHz) ||
        !rdGet(r, out.machine.dispatchWidth) ||
        !rdGet(r, out.machine.robEntries) ||
        !rdGet(r, out.machine.branchMispredictPenalty) ||
        !rdGet(r, out.machine.l1LatencyCycles) ||
        !rdGet(r, out.machine.l2LatencyCycles) ||
        !rdGet(r, out.machine.l3LatencyCycles) ||
        !rdGet(r, out.machine.memLatencyCycles) ||
        !rdGet(r, out.machine.predictorHistoryBits) ||
        !rdCacheParams(r, out.machine.caches.l1i) ||
        !rdCacheParams(r, out.machine.caches.l1d) ||
        !rdCacheParams(r, out.machine.caches.l2) ||
        !rdCacheParams(r, out.machine.caches.l3))
        return false;

    if (!rdGet(r, out.warmupChunks) ||
        !rdGet(r, out.cost.wholeRate) ||
        !rdGet(r, out.cost.regionalRate) ||
        !rdGet(r, out.cost.pinballStartup) ||
        !rdGet(r, out.cost.loggerSlowdown) ||
        !rdGet(r, out.cost.nativeRate))
        return false;
    return r.atEnd();
}

/** Single-flight state of one (benchmark, kind) node. */
struct ArtifactGraph::Node
{
    std::mutex mtx;
    std::condition_variable cv;
    enum State : u8
    {
        Empty,   ///< never requested
        Busy,    ///< one thread is loading/computing
        Ready,   ///< value valid; immutable from here on
    } state = Empty;
    ArtifactValue value;
};

ArtifactGraph::ArtifactGraph(ExperimentConfig cfg)
    : ArtifactGraph(std::move(cfg),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache::fromEnv()))
{
}

ArtifactGraph::ArtifactGraph(
    ExperimentConfig cfg, std::shared_ptr<const ArtifactCache> cache)
    : ArtifactGraph(std::move(cfg), std::move(cache), nullptr)
{
}

ArtifactGraph::ArtifactGraph(
    ExperimentConfig cfg, std::shared_ptr<const ArtifactCache> cache,
    std::unique_ptr<ArtifactBackend> backend)
    : cfg(std::move(cfg)), cache(std::move(cache)),
      backend(std::move(backend)),
      pipe(this->cfg.simpoint, this->cache)
{
    SPLAB_ASSERT(this->cache != nullptr,
                 "artifact graph needs a cache instance (may be "
                 "disabled, not null)");
    // Default backend from the environment: a service client when
    // SPLAB_SERVICE names a daemon socket, local otherwise.
    if (!this->backend)
        this->backend = makeBackend(this->cache, this->cfg);
}

ArtifactGraph::~ArtifactGraph() = default;

ArtifactGraph::Node &
ArtifactGraph::nodeFor(const std::string &name, ArtifactKind kind)
{
    std::lock_guard<std::mutex> g(registryMtx);
    auto &slot = nodes[{name, static_cast<u8>(kind)}];
    if (!slot)
        slot = std::make_unique<Node>();
    return *slot;
}

u64
ArtifactGraph::configSliceHash(ArtifactKind kind) const
{
    switch (kind) {
      case ArtifactKind::Spec:
        return 0; // the spec's own content hash is the key
      case ArtifactKind::BbvProfile:
        return hashCombine(0, u64{cfg.simpoint.sliceInstrs});
      case ArtifactKind::SimPoints:
        return cfg.simpoint.contentHash();
      case ArtifactKind::Regions:
        // Strategy-salted slice over exactly the active strategy's
        // knobs: switching strategies or turning an *active* knob
        // moves the key; an inactive strategy's knob never does.
        return cfg.sampling.activeHash(cfg.simpoint);
      case ArtifactKind::WholeFused:
        // The fused value carries both views, so its key covers
        // both config surfaces.
        return hashCombine(cfg.allcache.contentHash(),
                           cfg.machine.contentHash());
      case ArtifactKind::RegionalPinball:
        // Pure function of (spec, simpoints); no config of its own.
        return 0;
      case ArtifactKind::WholeCache:
      case ArtifactKind::PointsCacheCold:
        return cfg.allcache.contentHash();
      case ArtifactKind::PointsCacheWarm:
        return hashCombine(cfg.allcache.contentHash(),
                           cfg.warmupChunks);
      case ArtifactKind::WholeTiming:
      case ArtifactKind::Native:
        return cfg.machine.contentHash();
      case ArtifactKind::PointsTiming:
        return hashCombine(cfg.machine.contentHash(),
                           cfg.warmupChunks);
    }
    SPLAB_FATAL("unknown artifact kind ",
                static_cast<int>(static_cast<u8>(kind)));
}

u64
ArtifactGraph::artifactKey(const std::string &name,
                           ArtifactKind kind)
{
    if (kind == ArtifactKind::Spec)
        return hashCombine(artifactKindSalt(kind),
                           spec(name).contentHash());
    u64 k = hashCombine(artifactKindSalt(kind),
                        configSliceHash(kind));
    for (ArtifactKind d : artifactKindDeps(kind))
        k = hashCombine(k, artifactKey(name, d));
    return k;
}

ArtifactValue
ArtifactGraph::computeValue(const std::string &name,
                            ArtifactKind kind)
{
    switch (kind) {
      case ArtifactKind::Spec:
        return benchmarkByName(name);
      case ArtifactKind::BbvProfile:
        return pipe.profileBbvs(spec(name));
      case ArtifactKind::SimPoints:
        SPLAB_VERBOSE("simpoint selection: ", name);
        return SimpointStrategy(cfg.simpoint).pick(bbvProfile(name));
      case ArtifactKind::Regions: {
        SPLAB_VERBOSE("region selection (",
                      strategyName(cfg.sampling.strategy),
                      "): ", name);
        if (cfg.sampling.strategy == StrategyKind::Simpoint) {
            // Route through the cached SimPoints node instead of
            // re-clustering; the value is the same pure function of
            // the BBV profile either way (projection-node rule).
            RegionSelection sel =
                regionsFromSimPoints(simpoints(name));
            accountSelection(StrategyKind::Simpoint, sel);
            return sel;
        }
        const std::vector<FrequencyVector> &bbvs = bbvProfile(name);
        StrategyInputs in{&bbvs, bbvs.size(),
                          cfg.simpoint.sliceInstrs};
        return makeStrategy(cfg.sampling, cfg.simpoint)->select(in);
      }
      case ArtifactKind::WholeFused: {
        SPLAB_INFORM("fused whole-run simulation: ", name);
        FusedWholeResult r =
            measureWholeFused(spec(name), cfg.allcache, cfg.machine);
        return FusedWholeMetrics{r.cache, r.timing};
      }
      case ArtifactKind::WholeCache:
        return wholeFused(name).cache;
      case ArtifactKind::WholeTiming:
        return wholeFused(name).timing;
      case ArtifactKind::RegionalPinball: {
        SPLAB_VERBOSE("regional pinball capture: ", name);
        SyntheticWorkload wl(spec(name));
        Pinball whole = Logger::captureWhole(wl);
        return Logger::makeRegional(whole, regions(name));
      }
      case ArtifactKind::PointsCacheCold:
        SPLAB_INFORM("regional cache replays (cold): ", name);
        return measurePointsCache(regionalPinball(name),
                                  cfg.allcache, 0);
      case ArtifactKind::PointsCacheWarm:
        SPLAB_INFORM("regional cache replays (warmup): ", name);
        return measurePointsCache(regionalPinball(name),
                                  cfg.allcache, cfg.warmupChunks);
      case ArtifactKind::Native: {
        SPLAB_INFORM("native (perf) run: ", name);
        SyntheticWorkload wl(spec(name));
        NativeMachine hw(cfg.machine);
        return hw.run(wl);
      }
      case ArtifactKind::PointsTiming:
        SPLAB_INFORM("regional timing replays: ", name);
        return measurePointsTiming(regionalPinball(name),
                                   cfg.machine, cfg.warmupChunks);
    }
    SPLAB_FATAL("unknown artifact kind ",
                static_cast<int>(static_cast<u8>(kind)));
}

const ArtifactValue &
ArtifactGraph::ensure(const std::string &name, ArtifactKind kind)
{
    static obs::Counter &hits =
        obs::counter("graph.cache_hits",
                     "artifact nodes served from the disk cache");
    static obs::Counter &computed =
        obs::counter("graph.nodes_computed",
                     "artifact nodes computed fresh");

    Node &n = nodeFor(name, kind);
    std::unique_lock<std::mutex> lock(n.mtx);
    if (n.state == Node::Ready)
        return n.value;
    if (n.state == Node::Busy) {
        // Single-flight: another thread owns the computation; wait
        // for its result instead of duplicating the work.
        n.cv.wait(lock, [&] { return n.state == Node::Ready; });
        return n.value;
    }
    n.state = Node::Busy;
    lock.unlock();

    const KindInfo &info = kindInfo(kind);
    ArtifactValue v;
    try {
        obs::TraceSpan span(info.spanName);
        // SPLAB_FUSED_PERSIST=0 keeps the fused node memory-resident
        // (pre-sharing behaviour); the projections persist either way.
        bool persist = info.persisted &&
                       (kind != ArtifactKind::WholeFused ||
                        fusedPersistEnabled());
        bool loaded = false;
        ArtifactRequest req{name, kind, blobFamily(kind, cfg), 0,
                            info.shared};
        // The backend seam (artifact_backend.hh) decides *where*
        // persisted bytes come from: the local ArtifactCache
        // (including shared-sub-blob assembly) or a splabd daemon
        // with local fallback.  Either way fetch yields exactly the
        // serializeArtifact payload, so the value round-trips
        // identically.
        if (persist && backend->active()) {
            req.key = artifactKey(name, kind);
            std::vector<u8> bytes;
            if (backend->fetch(req, bytes)) {
                ByteReader r(std::move(bytes));
                v = deserializeArtifact(kind, r);
                loaded = true;
                hits.add();
            }
        }
        if (!loaded) {
            v = computeValue(name, kind);
            computed.add();
            if (persist && backend->active()) {
                ByteWriter w;
                serializeArtifact(w, v);
                backend->publish(
                    req, w.bytes(),
                    info.shared
                        ? sharedRanges(kind, w.bytes().size())
                        : std::vector<
                              std::pair<std::size_t,
                                        std::size_t>>{});
            }
        }
    } catch (...) {
        // Re-open the node so a later request can retry, and wake
        // current waiters into the retry path.
        lock.lock();
        n.state = Node::Empty;
        n.cv.notify_all();
        throw;
    }

    lock.lock();
    n.value = std::move(v);
    n.state = Node::Ready;
    n.cv.notify_all();
    return n.value;
}

std::vector<u8>
ArtifactGraph::ensureSerialized(const std::string &name,
                                ArtifactKind kind)
{
    const ArtifactValue &v = ensure(name, kind);
    ByteWriter w;
    serializeArtifact(w, v);
    return w.bytes();
}

const BenchmarkSpec &
ArtifactGraph::spec(const std::string &name)
{
    return std::get<BenchmarkSpec>(ensure(name, ArtifactKind::Spec));
}

const std::vector<FrequencyVector> &
ArtifactGraph::bbvProfile(const std::string &name)
{
    return std::get<std::vector<FrequencyVector>>(
        ensure(name, ArtifactKind::BbvProfile));
}

const SimPointResult &
ArtifactGraph::simpoints(const std::string &name)
{
    return std::get<SimPointResult>(
        ensure(name, ArtifactKind::SimPoints));
}

const RegionSelection &
ArtifactGraph::regions(const std::string &name)
{
    return std::get<RegionSelection>(
        ensure(name, ArtifactKind::Regions));
}

const FusedWholeMetrics &
ArtifactGraph::wholeFused(const std::string &name)
{
    return std::get<FusedWholeMetrics>(
        ensure(name, ArtifactKind::WholeFused));
}

const CacheRunMetrics &
ArtifactGraph::wholeCache(const std::string &name)
{
    return std::get<CacheRunMetrics>(
        ensure(name, ArtifactKind::WholeCache));
}

const Pinball &
ArtifactGraph::regionalPinball(const std::string &name)
{
    return std::get<Pinball>(
        ensure(name, ArtifactKind::RegionalPinball));
}

const std::vector<PointCacheMetrics> &
ArtifactGraph::pointsCacheCold(const std::string &name)
{
    return std::get<std::vector<PointCacheMetrics>>(
        ensure(name, ArtifactKind::PointsCacheCold));
}

const std::vector<PointCacheMetrics> &
ArtifactGraph::pointsCacheWarm(const std::string &name)
{
    return std::get<std::vector<PointCacheMetrics>>(
        ensure(name, ArtifactKind::PointsCacheWarm));
}

const TimingRunMetrics &
ArtifactGraph::wholeTiming(const std::string &name)
{
    return std::get<TimingRunMetrics>(
        ensure(name, ArtifactKind::WholeTiming));
}

const PerfCounters &
ArtifactGraph::native(const std::string &name)
{
    return std::get<PerfCounters>(
        ensure(name, ArtifactKind::Native));
}

const std::vector<PointTimingMetrics> &
ArtifactGraph::pointsTiming(const std::string &name)
{
    return std::get<std::vector<PointTimingMetrics>>(
        ensure(name, ArtifactKind::PointsTiming));
}

void
ArtifactGraph::runSuite(const std::vector<std::string> &benchmarks,
                        const std::vector<ArtifactKind> &targets)
{
    obs::TraceSpan span("graph.run_suite");

    std::array<bool, kNumArtifactKinds> wanted{};
    for (ArtifactKind t : targets)
        wanted[static_cast<u8>(t)] = true;

    // Only the requested targets fan out as tasks; dependencies
    // resolve lazily inside ensure(), so a disk-cached downstream
    // artifact never forces an upstream recompute.  Kind-major task
    // order (kinds are declared in topological order) keeps
    // concurrently claimed tasks on *different* benchmarks, which
    // minimizes single-flight collisions, and lets a benchmark's
    // dependents start the moment its own upstreams exist — no
    // stage barriers anywhere.
    std::vector<std::pair<std::size_t, ArtifactKind>> tasks;
    for (std::size_t k = 0; k < kNumArtifactKinds; ++k)
        if (wanted[k])
            for (std::size_t b = 0; b < benchmarks.size(); ++b)
                tasks.emplace_back(b, static_cast<ArtifactKind>(k));

    static obs::Counter &scheduled =
        obs::counter("graph.tasks_scheduled",
                     "suite tasks fanned out by runSuite");
    scheduled.add(tasks.size());

    parallelFor(tasks.size(), [&](std::size_t i) {
        ensure(benchmarks[tasks[i].first], tasks[i].second);
    });
}

void
ArtifactGraph::recordArtifacts(
    obs::RunManifest &m, const std::vector<std::string> &benchmarks,
    const std::vector<ArtifactKind> &targets)
{
    std::array<bool, kNumArtifactKinds> inClosure{};
    // The kinds enum is in topological order, so one reverse pass
    // suffices to close over transitive dependencies.
    for (ArtifactKind t : targets)
        inClosure[static_cast<u8>(t)] = true;
    for (std::size_t k = kNumArtifactKinds; k-- > 0;)
        if (inClosure[k])
            for (ArtifactKind d :
                 artifactKindDeps(static_cast<ArtifactKind>(k)))
                inClosure[static_cast<u8>(d)] = true;

    for (const std::string &b : benchmarks)
        for (std::size_t k = 0; k < kNumArtifactKinds; ++k)
            if (inClosure[k]) {
                ArtifactKind kind = static_cast<ArtifactKind>(k);
                m.addArtifact(blobFamily(kind, cfg) + "/" + b,
                              artifactKey(b, kind));
            }
}

} // namespace splab
