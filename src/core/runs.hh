/**
 * @file
 * Measurement drivers: Whole, Regional and Warmup-Regional runs
 * under the ldstmix/allcache tools and under the timing model.
 */

#ifndef SPLAB_CORE_RUNS_HH
#define SPLAB_CORE_RUNS_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "metrics.hh"
#include "perf/native.hh"
#include "pinball/pinball.hh"
#include "simpoint/bbv.hh"
#include "simpoint/simpoint.hh"
#include "timing/machine_config.hh"
#include "workload/benchmark_spec.hh"

namespace splab
{

/**
 * Whole Run: replay the entire workload under ldstmix + allcache.
 */
CacheRunMetrics measureWholeCache(const BenchmarkSpec &spec,
                                  const HierarchyConfig &caches);

/**
 * Everything measureWholeFused() can produce from one traversal.
 * The bbvs member is populated only when a nonzero slice length was
 * requested.
 */
struct FusedWholeResult
{
    CacheRunMetrics cache;
    TimingRunMetrics timing;
    std::vector<FrequencyVector> bbvs;
};

/**
 * Fused Whole Run: one traversal of the workload with the allcache,
 * ldstmix, branchprofile and timing tools all attached (plus a BBV
 * tool when @p bbvSliceInstrs is nonzero).  Produces byte-identical
 * metrics to the separate measureWholeCache() / measureWholeTiming()
 * / BBV-profiling passes — tools are passive observers of the same
 * deterministic stream — for one generation of that stream instead
 * of three.  Both wallSeconds fields record the single fused wall
 * time.
 */
FusedWholeResult measureWholeFused(const BenchmarkSpec &spec,
                                   const HierarchyConfig &caches,
                                   const MachineConfig &machine,
                                   ICount bbvSliceInstrs = 0);

/**
 * Regional Run: replay each simulation point individually under
 * ldstmix + allcache, starting from cold microarchitectural state
 * (plus @p warmupChunks of functional cache warming when nonzero),
 * exactly as the paper replays each Regional Pinball.
 *
 * @return per-point metrics with SimPoint weights attached; feed to
 *         aggregateCache() for Regional / Reduced Regional numbers.
 */
std::vector<PointCacheMetrics> measurePointsCache(
    const BenchmarkSpec &spec, const SimPointResult &simpoints,
    const HierarchyConfig &caches, u64 warmupChunks = 0);

/**
 * Regional Run against an already-captured regional pinball.  The
 * spec-based overload is capture + this; the artifact graph shares
 * one RegionalPinball capture across the cache and timing replays.
 */
std::vector<PointCacheMetrics> measurePointsCache(
    const Pinball &regional, const HierarchyConfig &caches,
    u64 warmupChunks = 0);

/** Whole run under the timing model (full-detail simulation). */
TimingRunMetrics measureWholeTiming(const BenchmarkSpec &spec,
                                    const MachineConfig &machine);

/**
 * Per-simulation-point timing runs (cold core per point, plus
 * optional warm-up), the "Sniper with SimPoints" configuration of
 * Figure 12.
 */
std::vector<PointTimingMetrics> measurePointsTiming(
    const BenchmarkSpec &spec, const SimPointResult &simpoints,
    const MachineConfig &machine, u64 warmupChunks = 0);

/** Timing Regional Run against an already-captured regional pinball. */
std::vector<PointTimingMetrics> measurePointsTiming(
    const Pinball &regional, const MachineConfig &machine,
    u64 warmupChunks = 0);

} // namespace splab

#endif // SPLAB_CORE_RUNS_HH
