/**
 * @file
 * Measurement drivers: Whole, Regional and Warmup-Regional runs
 * under the ldstmix/allcache tools and under the timing model.
 */

#ifndef SPLAB_CORE_RUNS_HH
#define SPLAB_CORE_RUNS_HH

#include <vector>

#include "cache/hierarchy.hh"
#include "metrics.hh"
#include "perf/native.hh"
#include "simpoint/simpoint.hh"
#include "timing/machine_config.hh"
#include "workload/benchmark_spec.hh"

namespace splab
{

/**
 * Whole Run: replay the entire workload under ldstmix + allcache.
 */
CacheRunMetrics measureWholeCache(const BenchmarkSpec &spec,
                                  const HierarchyConfig &caches);

/**
 * Regional Run: replay each simulation point individually under
 * ldstmix + allcache, starting from cold microarchitectural state
 * (plus @p warmupChunks of functional cache warming when nonzero),
 * exactly as the paper replays each Regional Pinball.
 *
 * @return per-point metrics with SimPoint weights attached; feed to
 *         aggregateCache() for Regional / Reduced Regional numbers.
 */
std::vector<PointCacheMetrics> measurePointsCache(
    const BenchmarkSpec &spec, const SimPointResult &simpoints,
    const HierarchyConfig &caches, u64 warmupChunks = 0);

/** Whole run under the timing model (full-detail simulation). */
TimingRunMetrics measureWholeTiming(const BenchmarkSpec &spec,
                                    const MachineConfig &machine);

/**
 * Per-simulation-point timing runs (cold core per point, plus
 * optional warm-up), the "Sniper with SimPoints" configuration of
 * Figure 12.
 */
std::vector<PointTimingMetrics> measurePointsTiming(
    const BenchmarkSpec &spec, const SimPointResult &simpoints,
    const MachineConfig &machine, u64 warmupChunks = 0);

} // namespace splab

#endif // SPLAB_CORE_RUNS_HH
