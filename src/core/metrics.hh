/**
 * @file
 * Run metrics and weighted aggregation across simulation points.
 *
 * All per-run structures are trivially copyable so they can be
 * serialized into the artifact cache as flat byte vectors.
 */

#ifndef SPLAB_CORE_METRICS_HH
#define SPLAB_CORE_METRICS_HH

#include <array>
#include <vector>

#include "isa/instr.hh"
#include "support/types.hh"

namespace splab
{

/** Access/miss counters of one cache level. */
struct LevelCounts
{
    u64 accesses = 0;
    u64 misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/** ldstmix + allcache statistics of one run window. */
struct CacheRunMetrics
{
    u64 instrs = 0;
    /** Instruction-mix fractions: NO_MEM, MEM_R, MEM_W, MEM_RW. */
    std::array<double, kNumMemClasses> mixFrac{};
    LevelCounts l1i;
    LevelCounts l1d;
    LevelCounts l2;
    LevelCounts l3;
    u64 branches = 0;
    double wallSeconds = 0.0;
};
static_assert(std::is_trivially_copyable_v<CacheRunMetrics>);

/** Timing-model statistics of one run window. */
struct TimingRunMetrics
{
    u64 instrs = 0;
    double cycles = 0.0;
    u64 branches = 0;
    u64 mispredicts = 0;
    u64 l2Hits = 0;
    u64 l3Hits = 0;
    u64 memAccesses = 0;
    double wallSeconds = 0.0;

    double
    cpi() const
    {
        return instrs ? cycles / static_cast<double>(instrs) : 0.0;
    }
};
static_assert(std::is_trivially_copyable_v<TimingRunMetrics>);

/**
 * Both whole-run views measured by one fused traversal: the cache
 * (ldstmix + allcache + branchprofile) metrics and the timing-model
 * metrics of the same instruction stream.  WholeCache / WholeTiming
 * artifacts are projections of this.
 */
struct FusedWholeMetrics
{
    CacheRunMetrics cache;
    TimingRunMetrics timing;
};
static_assert(std::is_trivially_copyable_v<FusedWholeMetrics>);

/** One simulation point's metrics plus its SimPoint weight. */
struct PointCacheMetrics
{
    double weight = 0.0;
    CacheRunMetrics m;
};
static_assert(std::is_trivially_copyable_v<PointCacheMetrics>);

/** One simulation point's timing metrics plus its weight. */
struct PointTimingMetrics
{
    double weight = 0.0;
    TimingRunMetrics m;
};
static_assert(std::is_trivially_copyable_v<PointTimingMetrics>);

/**
 * Weighted aggregate over a set of simulation points, as the paper
 * prescribes: per-instruction-normalized statistics are combined by
 * cluster weight (renormalized over the included points), and raw
 * executed-work counters are summed.
 */
struct AggregateCacheMetrics
{
    u64 executedInstrs = 0; ///< raw instructions actually replayed
    std::array<double, kNumMemClasses> mixFrac{};
    double l1iMissRate = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    double l3MissRate = 0.0;
    u64 l3Accesses = 0;     ///< raw L3 accesses actually performed
    double wallSeconds = 0.0;
};

/** Weighted CPI aggregate over simulation points. */
struct AggregateTimingMetrics
{
    u64 executedInstrs = 0;
    double cpi = 0.0;
    double mispredictRate = 0.0;
    double wallSeconds = 0.0;
};

/**
 * Aggregate cache metrics over @p points (weights renormalized).
 * Miss rates combine as weighted misses-per-instruction over
 * weighted accesses-per-instruction — the ratio estimator implied by
 * weighting instruction-normalized statistics.
 */
AggregateCacheMetrics aggregateCache(
    const std::vector<PointCacheMetrics> &points);

/** Aggregate timing metrics over @p points (weighted CPI). */
AggregateTimingMetrics aggregateTiming(
    const std::vector<PointTimingMetrics> &points);

/** View a whole run's metrics in the aggregate shape. */
AggregateCacheMetrics wholeAsAggregate(const CacheRunMetrics &whole);

/**
 * Reduce per-point metrics to the heaviest points covering
 * @p quantile of the weight (0.9 = Reduced Regional Run).
 */
std::vector<PointCacheMetrics>
reduceToQuantile(const std::vector<PointCacheMetrics> &points,
                 double quantile);
std::vector<PointTimingMetrics>
reduceToQuantile(const std::vector<PointTimingMetrics> &points,
                 double quantile);

} // namespace splab

#endif // SPLAB_CORE_METRICS_HH
