/**
 * @file
 * The PinPoints pipeline: workload -> whole pinball -> BBV profile
 * -> SimPoint selection -> regional pinball.
 *
 * This is the primary public entry point of the library: give it a
 * benchmark specification and a SimPointConfig, get back weighted
 * simulation points and replayable checkpoints.
 */

#ifndef SPLAB_CORE_PIPELINE_HH
#define SPLAB_CORE_PIPELINE_HH

#include <memory>

#include "artifact_cache.hh"
#include "pinball/pinball.hh"
#include "simpoint/simpoint.hh"
#include "workload/benchmark_spec.hh"

namespace splab
{

/** Orchestrates profiling and SimPoint selection, with caching. */
class PinPointsPipeline
{
  public:
    explicit PinPointsPipeline(
        SimPointConfig cfg = SimPointConfig(),
        ArtifactCache cache = ArtifactCache::fromEnv());

    /**
     * Share an existing cache instance instead of owning one.  The
     * experiment driver (ArtifactGraph) constructs a
     * single ArtifactCache and hand it to every component, so there
     * is one writability probe, one warn-once state and one counter
     * stream per process — never parallel instances drifting apart.
     */
    PinPointsPipeline(SimPointConfig cfg,
                      std::shared_ptr<const ArtifactCache> cache);

    const SimPointConfig &config() const { return cfg; }

    /** Collect one BBV per slice of the whole execution. */
    std::vector<FrequencyVector>
    profileBbvs(const BenchmarkSpec &spec) const;

    /** Full SimPoint selection (BIC-chosen k); disk-cached. */
    SimPointResult simpoints(const BenchmarkSpec &spec) const;

    /** SimPoint selection with a forced cluster count; disk-cached. */
    SimPointResult simpointsForcedK(const BenchmarkSpec &spec,
                                    u32 k) const;

    /** Capture the whole execution as a pinball. */
    Pinball makeWholePinball(const BenchmarkSpec &spec) const;

    /** Whole pinball -> regional pinball of the BIC selection. */
    Pinball makeRegionalPinball(const BenchmarkSpec &spec) const;

  private:
    SimPointResult computeOrLoad(const BenchmarkSpec &spec,
                                 u32 forcedK) const;

    SimPointConfig cfg;
    std::shared_ptr<const ArtifactCache> cache;
};

/// @name SimPointResult (de)serialization for the artifact cache
/// @{
void serializeSimPoints(ByteWriter &w, const SimPointResult &r);
SimPointResult deserializeSimPoints(ByteReader &r);
/// @}

} // namespace splab

#endif // SPLAB_CORE_PIPELINE_HH
