#include "artifact_backend.hh"

#include "obs/counters.hh"
#include "service/client.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace splab
{

namespace
{

/** Resolve against the on-disk ArtifactCache (today's path). */
class LocalBackend : public ArtifactBackend
{
  public:
    explicit LocalBackend(std::shared_ptr<const ArtifactCache> c)
        : cache(std::move(c))
    {
        SPLAB_ASSERT(cache != nullptr,
                     "local backend needs a cache instance");
    }

    const char *name() const override { return "local"; }

    bool active() const override { return cache->enabled(); }

    bool
    fetch(const ArtifactRequest &req, std::vector<u8> &out) override
    {
        CacheOutcome got = cache->load(req.family, req.key);
        if (!got.hit())
            return false;
        if (!req.shared) {
            out = got->getRaw(got->remaining());
            return true;
        }
        return assembleShared(*got, out);
    }

    void
    publish(const ArtifactRequest &req, const std::vector<u8> &bytes,
            const std::vector<std::pair<std::size_t, std::size_t>>
                &sharedRanges) override
    {
        if (!req.shared) {
            ByteWriter w;
            w.putRaw(bytes.data(), bytes.size());
            cache->store(req.family, req.key, w);
            return;
        }
        // Ref blob: sub-blob count + content hashes.  The sub-blobs
        // dedup against any already-stored identical bytes (the
        // fused node and its projections address the same ones), and
        // the hash list rides into the cache index so eviction can
        // ref-count them.
        ByteWriter ref;
        std::vector<u64> hashes;
        hashes.reserve(sharedRanges.size());
        ref.put<u64>(sharedRanges.size());
        for (auto [off, len] : sharedRanges) {
            u64 h = cache->storeShared(bytes.data() + off, len);
            ref.put<u64>(h);
            hashes.push_back(h);
        }
        cache->store(req.family, req.key, ref, hashes);
    }

  private:
    /**
     * Materialize a shared-kind artifact from its ref blob: read the
     * sub-blob content hashes, load each shared sub-blob and
     * concatenate their raw bytes.  Returns false (after bumping
     * "graph.shared_blob_fallbacks") when any sub-blob is missing or
     * corrupt — the caller then recomputes and re-publishes, which
     * heals the damaged sub-blob file.
     */
    bool
    assembleShared(ByteReader &ref, std::vector<u8> &out)
    {
        static obs::Counter &fallbacks = obs::counter(
            "graph.shared_blob_fallbacks",
            "shared-blob refs with a missing or corrupt sub-blob "
            "(artifact recomputed)");

        u64 n = ref.get<u64>();
        out.clear();
        for (u64 i = 0; i < n; ++i) {
            u64 h = ref.get<u64>();
            CacheOutcome sub = cache->loadShared(h);
            if (!sub.hit()) {
                fallbacks.add();
                return false;
            }
            std::vector<u8> bytes = sub->getRaw(sub->remaining());
            out.insert(out.end(), bytes.begin(), bytes.end());
        }
        return true;
    }

    std::shared_ptr<const ArtifactCache> cache;
};

/**
 * Resolve through a splabd daemon, falling back to (and publishing
 * through) the local path.  An unreachable daemon at construction
 * degrades the backend to purely-local behaviour with one warning;
 * a daemon that dies later degrades per request, silently, at the
 * cost of one failed connect each time.
 */
class RemoteBackend : public ArtifactBackend
{
  public:
    RemoteBackend(std::shared_ptr<const ArtifactCache> cache,
                  std::string socketPath, std::vector<u8> configBlob,
                  u64 configHash)
        : local(std::make_unique<LocalBackend>(std::move(cache))),
          client(std::move(socketPath)),
          config(std::move(configBlob)), cfgHash(configHash)
    {
        // Register the family eagerly so every client manifest
        // carries it, hit or not.
        remoteHits();
        remoteFailures();
        bytesFetched();
        degraded = !client.ping();
        if (degraded)
            SPLAB_WARN("SPLAB_SERVICE=", client.path(),
                       ": no daemon answering; using local artifact "
                       "resolution");
    }

    const char *
    name() const override
    {
        return degraded ? "remote-degraded" : "remote";
    }

    bool
    active() const override
    {
        // A reachable daemon can always serve, even when the local
        // cache is disabled; once degraded only the local path
        // remains.
        return degraded ? local->active() : true;
    }

    bool
    fetch(const ArtifactRequest &req, std::vector<u8> &out) override
    {
        if (!degraded) {
            auto got = client.ensureArtifact(
                req.benchmark, static_cast<u8>(req.kind), cfgHash,
                config);
            if (got) {
                remoteHits().add();
                bytesFetched().add(got->size());
                out = std::move(*got);
                return true;
            }
            remoteFailures().add();
        }
        return local->fetch(req, out);
    }

    void
    publish(const ArtifactRequest &req, const std::vector<u8> &bytes,
            const std::vector<std::pair<std::size_t, std::size_t>>
                &sharedRanges) override
    {
        // The daemon persists its own computations; a client only
        // publishes into its local cache (a no-op when disabled).
        local->publish(req, bytes, sharedRanges);
    }

  private:
    static obs::Counter &
    remoteHits()
    {
        return obs::counter("service.client.remote_hits",
                            "artifacts served by the splabd daemon");
    }
    static obs::Counter &
    remoteFailures()
    {
        return obs::counter(
            "service.client.remote_failures",
            "daemon fetches that fell back to local resolution");
    }
    static obs::Counter &
    bytesFetched()
    {
        return obs::counter(
            "service.client.bytes_fetched",
            "artifact bytes streamed from the splabd daemon");
    }

    std::unique_ptr<LocalBackend> local;
    service::ServiceClient client;
    std::vector<u8> config;
    u64 cfgHash;
    bool degraded = false;
};

} // namespace

std::unique_ptr<ArtifactBackend>
makeLocalBackend(std::shared_ptr<const ArtifactCache> cache)
{
    return std::make_unique<LocalBackend>(std::move(cache));
}

std::unique_ptr<ArtifactBackend>
makeBackend(std::shared_ptr<const ArtifactCache> cache,
            const ExperimentConfig &cfg)
{
    std::string sockPath = servicePath();
    if (sockPath.empty())
        return makeLocalBackend(std::move(cache));
    ByteWriter w;
    cfg.serialize(w);
    return std::make_unique<RemoteBackend>(
        std::move(cache), std::move(sockPath), w.bytes(),
        cfg.contentHash());
}

} // namespace splab
