#include "runs.hh"

#include <chrono>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "pin/engine.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/branch_profile.hh"
#include "pin/tools/ldstmix.hh"
#include "pin/tools/bbv_tool.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "timing/interval_core.hh"

namespace splab
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

CacheRunMetrics
harvestCache(const AllCacheTool &cache, const LdStMixTool &mix,
             const BranchProfileTool &branches, ICount instrs,
             double wallSeconds)
{
    CacheRunMetrics m;
    m.instrs = instrs;
    m.mixFrac = mix.mix().fractions();
    auto fill = [](LevelCounts &dst, const CacheStats &src) {
        dst.accesses = src.accesses;
        dst.misses = src.misses;
    };
    const CacheHierarchy &h = cache.hierarchy();
    fill(m.l1i, h.levelStats(CacheLevel::L1I));
    fill(m.l1d, h.levelStats(CacheLevel::L1D));
    fill(m.l2, h.levelStats(CacheLevel::L2));
    fill(m.l3, h.levelStats(CacheLevel::L3));
    m.branches = branches.branchCount();
    m.wallSeconds = wallSeconds;
    return m;
}

TimingRunMetrics
harvestTiming(const IntervalCoreTool &core, double wallSeconds)
{
    const TimingStats &t = core.stats();
    TimingRunMetrics m;
    m.instrs = t.instrs;
    m.cycles = t.cycles;
    m.branches = t.branches;
    m.mispredicts = t.mispredicts;
    m.l2Hits = t.l2Hits;
    m.l3Hits = t.l3Hits;
    m.memAccesses = t.memAccesses;
    m.wallSeconds = wallSeconds;
    return m;
}

} // namespace

CacheRunMetrics
measureWholeCache(const BenchmarkSpec &spec,
                  const HierarchyConfig &caches)
{
    obs::TraceSpan span("runs.whole_cache");
    auto t0 = std::chrono::steady_clock::now();
    SyntheticWorkload wl(spec);
    AllCacheTool cache(caches);
    LdStMixTool mix;
    BranchProfileTool branches;
    Engine engine;
    engine.attach(&cache);
    engine.attach(&mix);
    engine.attach(&branches);
    ICount instrs = engine.runWhole(wl);
    return harvestCache(cache, mix, branches, instrs,
                        secondsSince(t0));
}

FusedWholeResult
measureWholeFused(const BenchmarkSpec &spec,
                  const HierarchyConfig &caches,
                  const MachineConfig &machine, ICount bbvSliceInstrs)
{
    obs::TraceSpan span("runs.whole_fused");
    auto t0 = std::chrono::steady_clock::now();
    SyntheticWorkload wl(spec);
    AllCacheTool cache(caches);
    LdStMixTool mix;
    BranchProfileTool branches;
    IntervalCoreTool core(machine);
    std::unique_ptr<BbvTool> bbv;
    Engine engine;
    engine.attach(&cache);
    engine.attach(&mix);
    engine.attach(&branches);
    engine.attach(&core);
    if (bbvSliceInstrs > 0) {
        bbv = std::make_unique<BbvTool>(bbvSliceInstrs);
        engine.attach(bbv.get());
    }
    // This top-level whole-run pass is where the engine's generation
    // pipeline engages (SPLAB_GEN_PIPELINE, pin/engine.hh): chunk
    // generation overlaps tool dispatch across the pool, and with
    // several tools attached the consumer side further splits into
    // per-tool lanes (SPLAB_TOOL_LANES) — cache, mix, branch, core
    // and BBV each consume on their own worker.  The regional
    // replays below run inside a parallelFor and therefore take the
    // serial generation path on their own workers.
    ICount instrs = engine.runWhole(wl);

    double wall = secondsSince(t0);
    FusedWholeResult r;
    r.cache = harvestCache(cache, mix, branches, instrs, wall);
    r.timing = harvestTiming(core, wall);
    if (bbv)
        r.bbvs = bbv->vectors();
    return r;
}

std::vector<PointCacheMetrics>
measurePointsCache(const BenchmarkSpec &spec,
                   const SimPointResult &simpoints,
                   const HierarchyConfig &caches, u64 warmupChunks)
{
    SyntheticWorkload wl(spec);
    Pinball whole = Logger::captureWhole(wl);
    Pinball regional = Logger::makeRegional(whole, simpoints);
    return measurePointsCache(regional, caches, warmupChunks);
}

std::vector<PointCacheMetrics>
measurePointsCache(const Pinball &regional,
                   const HierarchyConfig &caches, u64 warmupChunks)
{
    obs::TraceSpan span("runs.points_cache");

    // Each regional pinball replays in a fresh process: cold caches
    // unless explicitly warmed.  Replays are mutually independent,
    // so they fan out across the pool — every task owns its
    // replayer, workload and tool stack, and results land in
    // index-addressed slots.
    std::vector<PointCacheMetrics> out(regional.regions().size());
    static obs::Counter &points =
        obs::counter("runs.points_replayed",
                     "simulation points replayed (cache + timing)");
    parallelFor(regional.regions().size(), [&](std::size_t i) {
        obs::TraceSpan pointSpan("runs.replay_point");
        points.add();
        auto tp = std::chrono::steady_clock::now();
        Replayer replayer(regional);
        AllCacheTool cache(caches);
        LdStMixTool mix;
        BranchProfileTool branches;
        Engine engine;

        // A strategy's per-region warm-up prescription (e.g. SMARTS
        // wunit/allwarm) overrides the experiment-wide parameter —
        // but only for warm runs: warmupChunks == 0 stays truly cold.
        u64 regionWarmup = regional.regions()[i].warmupChunks;
        u64 warm = warmupChunks > 0 && regionWarmup > 0
                       ? regionWarmup
                       : warmupChunks;
        if (warm > 0) {
            cache.setWarmup(true);
            engine.attach(&cache);
            replayer.replayWarmup(i, warm, engine);
            cache.setWarmup(false);
            engine.clearTools();
        }

        engine.attach(&cache);
        engine.attach(&mix);
        engine.attach(&branches);
        ICount instrs = replayer.replayRegion(i, engine);

        PointCacheMetrics pm;
        pm.weight = regional.regions()[i].weight;
        pm.m = harvestCache(cache, mix, branches, instrs,
                            secondsSince(tp));
        out[i] = pm;
    });
    return out;
}

TimingRunMetrics
measureWholeTiming(const BenchmarkSpec &spec,
                   const MachineConfig &machine)
{
    obs::TraceSpan span("runs.whole_timing");
    auto t0 = std::chrono::steady_clock::now();
    SyntheticWorkload wl(spec);
    IntervalCoreTool core(machine);
    Engine engine;
    engine.attach(&core);
    engine.runWhole(wl);
    return harvestTiming(core, secondsSince(t0));
}

std::vector<PointTimingMetrics>
measurePointsTiming(const BenchmarkSpec &spec,
                    const SimPointResult &simpoints,
                    const MachineConfig &machine, u64 warmupChunks)
{
    SyntheticWorkload wl(spec);
    Pinball whole = Logger::captureWhole(wl);
    Pinball regional = Logger::makeRegional(whole, simpoints);
    return measurePointsTiming(regional, machine, warmupChunks);
}

std::vector<PointTimingMetrics>
measurePointsTiming(const Pinball &regional,
                    const MachineConfig &machine, u64 warmupChunks)
{
    obs::TraceSpan span("runs.points_timing");

    // Cold core per point; see measurePointsCache for the
    // parallel-replay invariants.
    std::vector<PointTimingMetrics> out(regional.regions().size());
    static obs::Counter &points =
        obs::counter("runs.points_replayed",
                     "simulation points replayed (cache + timing)");
    parallelFor(regional.regions().size(), [&](std::size_t i) {
        obs::TraceSpan pointSpan("runs.replay_point");
        points.add();
        auto tp = std::chrono::steady_clock::now();
        Replayer replayer(regional);
        IntervalCoreTool core(machine);
        Engine engine;
        engine.attach(&core);

        // Same per-region override as measurePointsCache.
        u64 regionWarmup = regional.regions()[i].warmupChunks;
        u64 warm = warmupChunks > 0 && regionWarmup > 0
                       ? regionWarmup
                       : warmupChunks;
        if (warm > 0) {
            core.setWarmup(true);
            replayer.replayWarmup(i, warm, engine);
            core.setWarmup(false);
        }

        replayer.replayRegion(i, engine);

        PointTimingMetrics pm;
        pm.weight = regional.regions()[i].weight;
        pm.m = harvestTiming(core, secondsSince(tp));
        out[i] = pm;
    });
    return out;
}

} // namespace splab
