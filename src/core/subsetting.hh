/**
 * @file
 * Benchmark-suite subsetting (extension).
 *
 * The paper's related work (Limaye & Adegbija; Panda et al.) selects
 * representative *subsets of the suite* by clustering benchmarks on
 * architecture-level feature vectors — a complementary axis of
 * statistical sampling to SimPoint's within-benchmark phases.  This
 * module implements that methodology: z-score-normalized feature
 * vectors, average-linkage hierarchical clustering, and medoid
 * selection per cluster.
 */

#ifndef SPLAB_CORE_SUBSETTING_HH
#define SPLAB_CORE_SUBSETTING_HH

#include <string>
#include <vector>

#include "metrics.hh"

namespace splab
{

/** Feature vector describing one benchmark's behaviour. */
struct BenchmarkFeatures
{
    std::string name;
    /** Raw features: mix fractions, miss rates, CPI, mispredict
     *  rate...; all comparable across benchmarks. */
    std::vector<double> values;
};

/** Result of clustering the suite. */
struct SuiteSubset
{
    /** Cluster id per input benchmark (input order). */
    std::vector<u32> assignment;
    /** Index of the representative (medoid) of each cluster. */
    std::vector<u32> representatives;

    std::size_t clusterCount() const { return representatives.size(); }
};

/**
 * Build the standard feature vector from a benchmark's whole-run
 * metrics: 4 mix fractions, 3 data-side miss rates, CPI and branch
 * misprediction rate.
 */
BenchmarkFeatures makeFeatures(const std::string &name,
                               const CacheRunMetrics &cache,
                               const TimingRunMetrics &timing);

/**
 * Agglomerative (average-linkage) clustering of z-score-normalized
 * feature vectors into @p clusters groups, with the medoid of each
 * group as its representative.
 *
 * @param features one entry per benchmark (all same dimensionality)
 * @param clusters target subset size (clamped to features.size())
 */
SuiteSubset subsetSuite(const std::vector<BenchmarkFeatures> &features,
                        std::size_t clusters);

/**
 * Weighted average error of representing every benchmark by its
 * cluster representative, in normalized feature space (lower is a
 * better subset).
 */
double subsetRepresentationError(
    const std::vector<BenchmarkFeatures> &features,
    const SuiteSubset &subset);

} // namespace splab

#endif // SPLAB_CORE_SUBSETTING_HH
