/**
 * @file
 * On-disk artifact cache.
 *
 * Bench binaries share expensive intermediates (SimPoint selections,
 * whole-run cache simulations, timing runs) across processes through
 * checksummed blobs keyed by content hashes.  Set SPLAB_CACHE="" to
 * disable, or point it at a directory of your choice.
 */

#ifndef SPLAB_CORE_ARTIFACT_CACHE_HH
#define SPLAB_CORE_ARTIFACT_CACHE_HH

#include <optional>
#include <string>

#include "support/serialize.hh"

namespace splab
{

/** Content-addressed blob store under one directory. */
class ArtifactCache
{
  public:
    /** @param dir cache directory; empty disables the cache. */
    explicit ArtifactCache(std::string dir);

    /** Cache honouring $SPLAB_CACHE. */
    static ArtifactCache fromEnv();

    bool enabled() const { return !root.empty(); }

    /**
     * Look up a blob.
     * @param kind artifact family, e.g. "simpoints"
     * @param key  content hash of everything the artifact depends on
     */
    std::optional<ByteReader> load(const std::string &kind,
                                   u64 key) const;

    /** Store a blob (no-op when disabled). */
    void store(const std::string &kind, u64 key,
               const ByteWriter &blob) const;

    /**
     * Version salt mixed into every key; bump when serialized
     * layouts or producing algorithms change.
     */
    static constexpr u64 kVersionSalt = 0x53504c41422d7633ULL;

  private:
    std::string path(const std::string &kind, u64 key) const;

    std::string root;
};

} // namespace splab

#endif // SPLAB_CORE_ARTIFACT_CACHE_HH
