/**
 * @file
 * On-disk artifact cache.
 *
 * Bench binaries share expensive intermediates (SimPoint selections,
 * whole-run cache simulations, timing runs) across processes through
 * checksummed blobs keyed by content hashes.  Set SPLAB_CACHE="" to
 * disable, or point it at a directory of your choice.
 *
 * Lookups return a typed CacheOutcome so callers (and the obs
 * counters) can distinguish a genuine miss from a corrupt blob or a
 * disabled cache.  A directory that exists but cannot be written is
 * detected up front, warned about once, and degrades the cache to
 * disabled instead of silently failing every store.
 */

#ifndef SPLAB_CORE_ARTIFACT_CACHE_HH
#define SPLAB_CORE_ARTIFACT_CACHE_HH

#include <optional>
#include <string>

#include "support/serialize.hh"

namespace splab
{

/** What a cache lookup found. */
enum class CacheStatus
{
    Hit,      ///< blob present and checksum-valid
    Miss,     ///< no blob under this key
    Corrupt,  ///< blob present but truncated or checksum-invalid
    Disabled, ///< cache off (SPLAB_CACHE empty or dir unusable)
};

/** Stable lower-case name ("hit", "miss", ...). */
const char *cacheStatusName(CacheStatus s);

/** Result of ArtifactCache::load: a status plus the blob on a hit. */
struct CacheOutcome
{
    CacheStatus status = CacheStatus::Disabled;
    std::optional<ByteReader> blob;

    bool hit() const { return status == CacheStatus::Hit; }
    explicit operator bool() const { return hit(); }
    ByteReader &operator*() { return *blob; }
    ByteReader *operator->() { return &*blob; }
};

/** Content-addressed blob store under one directory. */
class ArtifactCache
{
  public:
    /** @param dir cache directory; empty disables the cache. */
    explicit ArtifactCache(std::string dir);

    /** Cache honouring $SPLAB_CACHE. */
    static ArtifactCache fromEnv();

    bool enabled() const { return !root.empty(); }

    /**
     * Look up a blob.
     * @param kind artifact family, e.g. "simpoints"
     * @param key  content hash of everything the artifact depends on
     */
    CacheOutcome load(const std::string &kind, u64 key) const;

    /** Store a blob (no-op when disabled). */
    void store(const std::string &kind, u64 key,
               const ByteWriter &blob) const;

    /**
     * Store @p size bytes as a content-addressed *shared sub-blob*
     * (file "shared-<hex>.bin", named by the content hash alone) and
     * return that content hash.  If a checksum-valid blob with the
     * same content already exists the write is skipped and the
     * "artifact_cache.blob_share_hits" counter bumped — this is how
     * artifacts that embed identical byte ranges (the fused whole-run
     * node and its cache/timing projections) share storage instead of
     * double-storing.  A present-but-corrupt file is rewritten
     * (healing).  Writes go through a temp file + atomic rename so
     * concurrent writers of the same content can never expose a torn
     * blob.  No-op (but still returns the hash) when disabled.
     */
    u64 storeShared(const u8 *data, std::size_t size) const;

    /** Look up the shared sub-blob with content hash @p contentHash;
     *  outcome semantics identical to load(). */
    CacheOutcome loadShared(u64 contentHash) const;

    /**
     * Version salt mixed into every key; bump when serialized
     * layouts or producing algorithms change.
     */
    static constexpr u64 kVersionSalt = 0x53504c41422d7634ULL;

  private:
    std::string path(const std::string &kind, u64 key) const;

    std::string root;
};

} // namespace splab

#endif // SPLAB_CORE_ARTIFACT_CACHE_HH
