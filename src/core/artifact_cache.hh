/**
 * @file
 * On-disk artifact cache.
 *
 * Bench binaries share expensive intermediates (SimPoint selections,
 * whole-run cache simulations, timing runs) across processes through
 * checksummed blobs keyed by content hashes.  Set SPLAB_CACHE="" to
 * disable, or point it at a directory of your choice.
 *
 * Lookups return a typed CacheOutcome so callers (and the obs
 * counters) can distinguish a genuine miss from a corrupt blob or a
 * disabled cache.  A directory that exists but cannot be written is
 * detected up front, warned about once, and degrades the cache to
 * disabled instead of silently failing every store.
 *
 * Cache hygiene (the part that matters at fleet scale):
 *
 *  - A persistent index ("index.bin": per-blob size, logical
 *    last-use stamp and shared-blob references) is maintained
 *    incrementally on every load/store, so size accounting and
 *    eviction decisions never scan the directory.  A missing or
 *    corrupt index is rebuilt from one directory scan (last-use
 *    stamps reset, shared references conservatively unknown).
 *    Cross-process index mutations serialize through an flock'd
 *    read-modify-write with an atomic tmp+rename publish.
 *  - When SPLAB_CACHE_MAX_BYTES (or the maxBytes constructor
 *    argument) is non-zero, stores that push the resident bytes
 *    (artifact blobs + shared sub-blobs) over the budget evict
 *    least-recently-used artifacts until the budget holds.
 *  - Shared sub-blobs ("shared-<hash>.bin", see storeShared) are
 *    ref-counted through the index: evicting an artifact releases
 *    its references, and a sub-blob file is reclaimed only when the
 *    last artifact referencing it goes — never while a surviving
 *    ref blob still points at it.
 *  - Hit/miss/eviction/byte counters ("artifact_cache.*") register
 *    eagerly at construction so every run manifest carries the full
 *    family even when a count is zero.
 */

#ifndef SPLAB_CORE_ARTIFACT_CACHE_HH
#define SPLAB_CORE_ARTIFACT_CACHE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/serialize.hh"

namespace splab
{

/** What a cache lookup found. */
enum class CacheStatus
{
    Hit,      ///< blob present and checksum-valid
    Miss,     ///< no blob under this key
    Corrupt,  ///< blob present but truncated or checksum-invalid
    Disabled, ///< cache off (SPLAB_CACHE empty or dir unusable)
};

/** Stable lower-case name ("hit", "miss", ...). */
const char *cacheStatusName(CacheStatus s);

/** Result of ArtifactCache::load: a status plus the blob on a hit. */
struct CacheOutcome
{
    CacheStatus status = CacheStatus::Disabled;
    std::optional<ByteReader> blob;

    bool hit() const { return status == CacheStatus::Hit; }
    explicit operator bool() const { return hit(); }
    ByteReader &operator*() { return *blob; }
    ByteReader *operator->() { return &*blob; }
};

/** Index-derived occupancy snapshot (advisory across processes). */
struct CacheUsage
{
    u64 artifacts = 0;     ///< indexed artifact blobs
    u64 sharedBlobs = 0;   ///< indexed shared sub-blobs
    u64 residentBytes = 0; ///< artifact + shared payload bytes
};

/** Content-addressed blob store under one directory. */
class ArtifactCache
{
  public:
    /**
     * @param dir cache directory; empty disables the cache.
     * @param maxBytes eviction budget; 0 = unbounded.
     */
    explicit ArtifactCache(std::string dir, u64 maxBytes = 0);

    /** Cache honouring $SPLAB_CACHE and $SPLAB_CACHE_MAX_BYTES. */
    static ArtifactCache fromEnv();

    ArtifactCache(ArtifactCache &&) noexcept;
    ArtifactCache &operator=(ArtifactCache &&) noexcept;
    ~ArtifactCache();

    bool enabled() const { return !root.empty(); }

    /** Eviction budget in bytes (0 = unbounded). */
    u64 maxBytes() const { return budget; }

    /** Cache directory ("" when disabled). */
    const std::string &dir() const { return root; }

    /**
     * Look up a blob.
     * @param kind artifact family, e.g. "simpoints"
     * @param key  content hash of everything the artifact depends on
     */
    CacheOutcome load(const std::string &kind, u64 key) const;

    /** Store a blob (no-op when disabled).  @p sharedRefs lists the
     *  content hashes of the shared sub-blobs a ref blob points at
     *  (empty for inline artifacts); the index ref-counts them so
     *  eviction can reclaim a sub-blob exactly when its last
     *  referencing artifact goes. */
    void store(const std::string &kind, u64 key,
               const ByteWriter &blob,
               const std::vector<u64> &sharedRefs = {}) const;

    /**
     * Store @p size bytes as a content-addressed *shared sub-blob*
     * (file "shared-<hex>.bin", named by the content hash alone) and
     * return that content hash.  If a checksum-valid blob with the
     * same content already exists the write is skipped and the
     * "artifact_cache.blob_share_hits" counter bumped — this is how
     * artifacts that embed identical byte ranges (the fused whole-run
     * node and its cache/timing projections) share storage instead of
     * double-storing.  A present-but-corrupt file is rewritten
     * (healing).  Writes go through a temp file + atomic rename so
     * concurrent writers of the same content can never expose a torn
     * blob.  No-op (but still returns the hash) when disabled.
     */
    u64 storeShared(const u8 *data, std::size_t size) const;

    /** Look up the shared sub-blob with content hash @p contentHash;
     *  outcome semantics identical to load(). */
    CacheOutcome loadShared(u64 contentHash) const;

    /** Occupancy according to the in-memory index view. */
    CacheUsage usage() const;

    /**
     * Evict least-recently-used artifacts until the resident bytes
     * (artifact blobs + shared sub-blobs) fit @p targetBytes,
     * regardless of the construction-time budget; 0 evicts
     * everything evictable.  This is the admin hook behind
     * `splabd --evict`.  Runs under the same in-process mutex and
     * cross-process file lock as any index mutation.
     * @return post-eviction occupancy.
     */
    CacheUsage evictToBytes(u64 targetBytes) const;

    /**
     * Version salt mixed into every key; bump when serialized
     * layouts or producing algorithms change.
     */
    static constexpr u64 kVersionSalt = 0x53504c41422d7634ULL;

  private:
    struct IndexState; // index + mutex; lives behind a unique_ptr
                       // so the cache stays movable

    std::string path(const std::string &kind, u64 key) const;
    std::string sharedFileName(u64 contentHash) const;

    /** Run @p apply on the index under the in-process mutex and the
     *  cross-process file lock: reload the on-disk index (disk is
     *  authoritative), apply, evict down to the budget (sparing
     *  @p protect), publish atomically.  No-op when disabled. */
    void indexMutate(const std::function<void(IndexState &)> &apply,
                     const std::string &protect = "") const;
    void indexLoadLocked(IndexState &st) const;
    void indexSaveLocked(const IndexState &st) const;
    void indexRebuildLocked(IndexState &st) const;

    /** Evict LRU artifacts (sparing @p protect) until the resident
     *  bytes fit @p evictBudget.  Caller holds both locks. */
    void evictLocked(IndexState &st, const std::string &protect,
                     u64 evictBudget) const;

    std::string root;
    u64 budget = 0;
    std::unique_ptr<IndexState> idx;
};

} // namespace splab

#endif // SPLAB_CORE_ARTIFACT_CACHE_HH
