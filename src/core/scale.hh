/**
 * @file
 * The model <-> paper scale mapping.
 *
 * Slice equivalence is 1:3000 — one paper slice of 30M instructions
 * corresponds to one model slice of 10,000 instructions.  Run-length
 * equivalence is set per benchmark by the suite table (so that the
 * whole/regional reduction ratios land in the paper's regime); the
 * paper-scale instruction counts used for time reporting come from
 * SuiteEntry::paperInstrsB.
 */

#ifndef SPLAB_CORE_SCALE_HH
#define SPLAB_CORE_SCALE_HH

#include "support/types.hh"

namespace splab
{
namespace scale
{

/** Model instructions per paper-equivalent 1M instructions. */
constexpr double kModelPerPaperMillion = 10000.0 / 30.0;

/** Default model slice = the paper's 30M-instruction slice. */
constexpr ICount kDefaultSliceInstrs = 10000;

/** Model chunk length (atomic replay unit). */
constexpr ICount kChunkInstrs = 1000;

/** Model slice length for a paper slice of @p millions Minstrs. */
constexpr ICount
sliceForPaperMillions(double millions)
{
    double raw = millions * kModelPerPaperMillion;
    // Round to a whole number of chunks.
    u64 chunks =
        static_cast<u64>(raw / static_cast<double>(kChunkInstrs) + 0.5);
    if (chunks == 0)
        chunks = 1;
    return chunks * kChunkInstrs;
}

/** The paper's slice-size sweep {15, 25, 30, 50, 100}M. */
constexpr double kPaperSliceSweepM[] = {15, 25, 30, 50, 100};

/** The paper's MaxK sweep {15, 20, 25, 30, 35}. */
constexpr u32 kMaxKSweep[] = {15, 20, 25, 30, 35};

/** The paper's chosen operating point. */
constexpr u32 kChosenMaxK = 35;
constexpr double kChosenSliceM = 30;

/**
 * Far-cache (L2/L3) capacity divisor at model scale; preserves the
 * region-size : cache-capacity ratio that governs cold-start
 * behaviour (see scaleFarCaches()).
 */
constexpr u64 kFarCacheDivisor = 128;

} // namespace scale
} // namespace splab

#endif // SPLAB_CORE_SCALE_HH
