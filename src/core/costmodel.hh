/**
 * @file
 * Paper-equivalent execution-time accounting.
 *
 * The paper's Figure 5(b) reports hours-scale Whole Run times and
 * minutes-scale Regional Run times measured on their testbed.  Our
 * model runs complete in seconds, so for paper-style time reporting
 * we model the replay cost of the paper's toolchain: pintool replay
 * proceeds at a few MIPS, each pinball pays a start-up cost, and
 * whole runs replay slightly slower per instruction than regional
 * ones (bigger footprints thrash the instrumentation caches).
 * Constants are calibrated to the paper's averages: 6,873.9B instrs
 * in 213.2h (whole) and 10.4B instrs in 17.17min (regional).
 */

#ifndef SPLAB_CORE_COSTMODEL_HH
#define SPLAB_CORE_COSTMODEL_HH

#include "support/types.hh"

namespace splab
{

/** Replay-cost model of the paper's toolchain. */
struct ReplayCostModel
{
    /** Effective whole-run replay rate (instructions/second). */
    double wholeRate = 8.96e6;
    /** Effective regional replay rate (instructions/second). */
    double regionalRate = 10.2e6;
    /** Fixed start-up cost per replayed pinball (seconds). */
    double pinballStartup = 2.0;
    /** Logger capture slowdown vs native execution (the paper cites
     *  100-200x; used for capture-cost reporting only). */
    double loggerSlowdown = 150.0;
    /** Native execution rate of the testbed (instructions/second). */
    double nativeRate = 2.0e9;

    /** Whole-run replay time for @p paperInstrs instructions. */
    double
    wholeSeconds(double paperInstrs) const
    {
        return pinballStartup + paperInstrs / wholeRate;
    }

    /** Regional replay time for @p regions pinballs totalling
     *  @p paperInstrs instructions. */
    double
    regionalSeconds(double paperInstrs, u64 regions) const
    {
        return static_cast<double>(regions) * pinballStartup +
               paperInstrs / regionalRate;
    }

    /** One-time logger capture cost for the whole run. */
    double
    captureSeconds(double paperInstrs) const
    {
        return paperInstrs / nativeRate * loggerSlowdown;
    }
};

} // namespace splab

#endif // SPLAB_CORE_COSTMODEL_HH
