#include "pipeline.hh"

#include "pin/engine.hh"
#include "pin/tools/bbv_tool.hh"
#include "pinball/logger.hh"
#include "support/logging.hh"
#include "workload/synthetic.hh"

namespace splab
{

void
serializeSimPoints(ByteWriter &w, const SimPointResult &r)
{
    w.put<u32>(r.chosenK);
    w.put<u64>(r.totalSlices);
    w.put<u64>(r.sliceInstrs);
    w.putVector(r.points);
    w.putVector(r.sliceToCluster);
    w.putVector(r.sweep);
}

SimPointResult
deserializeSimPoints(ByteReader &r)
{
    SimPointResult res;
    res.chosenK = r.get<u32>();
    res.totalSlices = r.get<u64>();
    res.sliceInstrs = r.get<u64>();
    res.points = r.getVector<SimPoint>();
    res.sliceToCluster = r.getVector<u32>();
    res.sweep = r.getVector<KSweepEntry>();
    return res;
}

PinPointsPipeline::PinPointsPipeline(SimPointConfig cfg,
                                     ArtifactCache cache)
    : cfg(cfg), cache(std::move(cache))
{
}

std::vector<FrequencyVector>
PinPointsPipeline::profileBbvs(const BenchmarkSpec &spec) const
{
    SyntheticWorkload wl(spec);
    BbvTool bbv(cfg.sliceInstrs);
    Engine engine;
    engine.attach(&bbv);
    engine.runWhole(wl);
    return bbv.vectors();
}

SimPointResult
PinPointsPipeline::computeOrLoad(const BenchmarkSpec &spec,
                                 u32 forcedK) const
{
    u64 key = hashCombine(
        hashCombine(spec.contentHash(), cfg.contentHash()), forcedK);
    if (auto blob = cache.load("simpoints", key))
        return deserializeSimPoints(*blob);

    SPLAB_VERBOSE("profiling + clustering ", spec.name,
                  forcedK ? " (forced k)" : "");
    auto bbvs = profileBbvs(spec);
    SimPointResult res =
        forcedK == 0 ? pickSimPoints(bbvs, cfg)
                     : pickSimPointsForcedK(bbvs, cfg, forcedK);

    ByteWriter w;
    serializeSimPoints(w, res);
    cache.store("simpoints", key, w);
    return res;
}

SimPointResult
PinPointsPipeline::simpoints(const BenchmarkSpec &spec) const
{
    return computeOrLoad(spec, 0);
}

SimPointResult
PinPointsPipeline::simpointsForcedK(const BenchmarkSpec &spec,
                                    u32 k) const
{
    SPLAB_ASSERT(k >= 1, "forced k must be >= 1");
    return computeOrLoad(spec, k);
}

Pinball
PinPointsPipeline::makeWholePinball(const BenchmarkSpec &spec) const
{
    SyntheticWorkload wl(spec);
    return Logger::captureWhole(wl);
}

Pinball
PinPointsPipeline::makeRegionalPinball(const BenchmarkSpec &spec) const
{
    SyntheticWorkload wl(spec);
    Pinball whole = Logger::captureWhole(wl);
    return Logger::makeRegional(whole, simpoints(spec));
}

} // namespace splab
