#include "pipeline.hh"

#include "obs/trace.hh"
#include "pin/engine.hh"
#include "pin/tools/bbv_tool.hh"
#include "pinball/logger.hh"
#include "sampling/strategies.hh"
#include "support/logging.hh"
#include "workload/synthetic.hh"

namespace splab
{

// SimPoint and KSweepEntry carry internal padding (a u32 member
// followed by an 8-byte one), so they must be serialized field by
// field: memcpying the whole struct (putVector) would emit the
// uninitialized padding bytes and break byte-level reproducibility
// of cached blobs and manifests.

void
serializeSimPoints(ByteWriter &w, const SimPointResult &r)
{
    w.put<u32>(r.chosenK);
    w.put<u64>(r.totalSlices);
    w.put<u64>(r.sliceInstrs);
    w.put<u64>(r.points.size());
    for (const SimPoint &p : r.points) {
        w.put<u64>(p.slice);
        w.put<double>(p.weight);
        w.put<u32>(p.cluster);
        w.put<u64>(p.clusterSize);
        w.put<double>(p.variance);
    }
    w.putVector(r.sliceToCluster);
    w.put<u64>(r.sweep.size());
    for (const KSweepEntry &e : r.sweep) {
        w.put<u32>(e.k);
        w.put<double>(e.bic);
        w.put<double>(e.distortion);
        w.put<double>(e.avgClusterVariance);
    }
}

SimPointResult
deserializeSimPoints(ByteReader &r)
{
    SimPointResult res;
    res.chosenK = r.get<u32>();
    res.totalSlices = r.get<u64>();
    res.sliceInstrs = r.get<u64>();
    res.points.resize(r.get<u64>());
    for (SimPoint &p : res.points) {
        p.slice = r.get<u64>();
        p.weight = r.get<double>();
        p.cluster = r.get<u32>();
        p.clusterSize = r.get<u64>();
        p.variance = r.get<double>();
    }
    res.sliceToCluster = r.getVector<u32>();
    res.sweep.resize(r.get<u64>());
    for (KSweepEntry &e : res.sweep) {
        e.k = r.get<u32>();
        e.bic = r.get<double>();
        e.distortion = r.get<double>();
        e.avgClusterVariance = r.get<double>();
    }
    return res;
}

PinPointsPipeline::PinPointsPipeline(SimPointConfig cfg,
                                     ArtifactCache cache)
    : cfg(cfg),
      cache(std::make_shared<const ArtifactCache>(std::move(cache)))
{
}

PinPointsPipeline::PinPointsPipeline(
    SimPointConfig cfg, std::shared_ptr<const ArtifactCache> cache)
    : cfg(cfg), cache(std::move(cache))
{
    SPLAB_ASSERT(this->cache != nullptr,
                 "pipeline needs a cache instance (may be disabled, "
                 "not null)");
}

std::vector<FrequencyVector>
PinPointsPipeline::profileBbvs(const BenchmarkSpec &spec) const
{
    obs::TraceSpan span("pipeline.profile_bbvs");
    SyntheticWorkload wl(spec);
    BbvTool bbv(cfg.sliceInstrs);
    Engine engine;
    engine.attach(&bbv);
    engine.runWhole(wl);
    return bbv.vectors();
}

SimPointResult
PinPointsPipeline::computeOrLoad(const BenchmarkSpec &spec,
                                 u32 forcedK) const
{
    u64 key = hashCombine(
        hashCombine(spec.contentHash(), cfg.contentHash()), forcedK);
    CacheOutcome cached = cache->load("simpoints", key);
    if (cached.hit())
        return deserializeSimPoints(*cached);

    SPLAB_VERBOSE("profiling + clustering ", spec.name,
                  forcedK ? " (forced k)" : "");
    auto bbvs = profileBbvs(spec);
    SimpointStrategy strat(cfg);
    SimPointResult res = forcedK == 0 ? strat.pick(bbvs)
                                      : strat.pickForcedK(bbvs, forcedK);

    ByteWriter w;
    serializeSimPoints(w, res);
    cache->store("simpoints", key, w);
    return res;
}

SimPointResult
PinPointsPipeline::simpoints(const BenchmarkSpec &spec) const
{
    return computeOrLoad(spec, 0);
}

SimPointResult
PinPointsPipeline::simpointsForcedK(const BenchmarkSpec &spec,
                                    u32 k) const
{
    SPLAB_ASSERT(k >= 1, "forced k must be >= 1");
    return computeOrLoad(spec, k);
}

Pinball
PinPointsPipeline::makeWholePinball(const BenchmarkSpec &spec) const
{
    SyntheticWorkload wl(spec);
    return Logger::captureWhole(wl);
}

Pinball
PinPointsPipeline::makeRegionalPinball(const BenchmarkSpec &spec) const
{
    SyntheticWorkload wl(spec);
    Pinball whole = Logger::captureWhole(wl);
    return Logger::makeRegional(whole, simpoints(spec));
}

} // namespace splab
