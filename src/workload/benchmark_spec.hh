/**
 * @file
 * Top-level description of one synthetic benchmark.
 */

#ifndef SPLAB_WORKLOAD_BENCHMARK_SPEC_HH
#define SPLAB_WORKLOAD_BENCHMARK_SPEC_HH

#include <string>
#include <vector>

#include "phase.hh"
#include "schedule.hh"

namespace splab
{

/**
 * A benchmark is a set of phases plus a schedule over a fixed number
 * of execution chunks.  One chunk is the atomic unit of deterministic
 * replay (default 1,000 instructions); profiling slice sizes must be
 * whole multiples of the chunk length.
 */
struct BenchmarkSpec
{
    std::string name = "benchmark";
    u64 seed = 1;

    /** Run length in chunks; total instructions = chunks * chunkLen. */
    u64 totalChunks = 10000;
    /** Instructions per chunk (exact; blocks are truncated to fit). */
    ICount chunkLen = 1000;

    std::vector<PhaseSpec> phases;
    ScheduleKind schedule = ScheduleKind::Markov;
    /** Mean chunks per schedule segment (Interleaved/Markov). */
    u64 dwellChunks = 120;

    /** Total dynamic instructions. */
    ICount totalInstrs() const { return totalChunks * chunkLen; }

    /**
     * Stable content hash over every field that affects execution;
     * used as the artifact-cache key.
     */
    u64 contentHash() const;

    /** Panic on an inconsistent specification. */
    void validate() const;

    /** Append a complete encoding to @p w (pinball payload). */
    void serialize(class ByteWriter &w) const;

    /** Decode a spec previously written by serialize(). */
    static BenchmarkSpec deserialize(class ByteReader &r);
};

} // namespace splab

#endif // SPLAB_WORKLOAD_BENCHMARK_SPEC_HH
