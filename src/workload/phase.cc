#include "phase.hh"

#include <cmath>

#include "support/logging.hh"

namespace splab
{

PhaseModel::PhaseModel(const PhaseSpec &spec, u64 seed, u32 phaseIndex,
                       BlockId idBase, Addr pcBase, Addr dataBase)
    : phaseSpec(spec), seed(hashCombine(seed, phaseIndex)),
      index(phaseIndex), idBase(idBase)
{
    SPLAB_ASSERT(phaseSpec.numBlocks > 0, "phase needs >= 1 block");
    SPLAB_ASSERT(phaseSpec.avgBlockLen >= 4 &&
                 phaseSpec.avgBlockLen <= 240,
                 "avgBlockLen out of range: ", phaseSpec.avgBlockLen);
    phaseSpec.mix.normalize();

    KernelConfig kc;
    kc.kind = phaseSpec.kernel;
    kc.base = dataBase;
    kc.workingSet = phaseSpec.workingSetBytes;
    kc.stride = phaseSpec.stride;
    kc.hotFraction = phaseSpec.hotFraction;
    kc.hotProbability = phaseSpec.hotProbability;
    kc.tileBytes = phaseSpec.tileBytes;
    kernel = makeKernel(kc, hashCombine(this->seed, 0xfeedULL));
    // The stack/locals region sits far above the heap segment.
    stackBase = dataBase + (1ULL << 32);

    buildBlocks(pcBase);
}

void
PhaseModel::buildBlocks(Addr pcBase)
{
    statics.resize(phaseSpec.numBlocks);
    baseWeight.resize(phaseSpec.numBlocks);
    chunkCdf.resize(phaseSpec.numBlocks);
    takenBias.resize(phaseSpec.numBlocks);

    Rng build(seed, 0xb10cULL);
    Addr pc = pcBase;
    auto cdf = phaseSpec.mix.cdf();

    for (u32 b = 0; b < phaseSpec.numBlocks; ++b) {
        StaticBlock &blk = statics[b];
        blk.id = idBase + b;
        blk.pc = pc;

        // Length varies across blocks so BBVs are weighted unevenly.
        double lenScale = build.uniform(0.6, 1.4);
        blk.instrs = static_cast<u32>(
            static_cast<double>(phaseSpec.avgBlockLen) * lenScale);
        if (blk.instrs < 4)
            blk.instrs = 4;

        // Per-block mix: jitter the phase profile so blocks are
        // distinguishable, then draw integer counts.
        std::array<double, kNumMemClasses> f = {
            phaseSpec.mix.noMem, phaseSpec.mix.memR,
            phaseSpec.mix.memW, phaseSpec.mix.memRW};
        double s = 0.0;
        for (auto &x : f) {
            x *= std::exp(0.25 * build.gaussian());
            s += x;
        }
        u32 assigned = 0;
        for (std::size_t c = 1; c < kNumMemClasses; ++c) {
            blk.mix[c] = static_cast<u32>(
                f[c] / s * static_cast<double>(blk.instrs));
            assigned += blk.mix[c];
        }
        SPLAB_ASSERT(assigned < blk.instrs,
                     "memory ops exceed block length");
        blk.mix[0] = blk.instrs - assigned;
        blk.fpInstrs = static_cast<u32>(
            phaseSpec.fpFraction * static_cast<double>(blk.mix[0]));
        blk.endsInBranch = true;

        // Stationary popularity: lognormal spread, so each phase has
        // a few dominant blocks and a tail, like real code.
        baseWeight[b] = std::exp(0.7 * build.gaussian());

        // Strongly-biased directions for most static branches.
        takenBias[b] = build.chance(0.5) ? build.uniform(0.02, 0.15)
                                         : build.uniform(0.85, 0.98);

        pc += static_cast<Addr>(blk.instrs) *
              code_layout::kBytesPerInstr;
        (void)cdf;
    }
    codeSize = pc - pcBase;
}

void
PhaseModel::rebuildChunkCdf(u64 chunk)
{
    Rng jitter(seed, chunk, 0xcdfULL);
    double driftArg =
        phaseSpec.drift > 0.0
            ? std::sin(static_cast<double>(chunk) * 0.00045)
            : 0.0;
    double acc = 0.0;
    for (u32 b = 0; b < phaseSpec.numBlocks; ++b) {
        double w = baseWeight[b];
        if (phaseSpec.blockNoise > 0.0) {
            w *= 1.0 + phaseSpec.blockNoise *
                           (jitter.uniform() * 2.0 - 1.0);
        }
        if (phaseSpec.drift > 0.0) {
            // Alternate blocks swing in opposite directions so the
            // distribution (not just the scale) drifts.
            double dir = (b & 1) ? 1.0 : -1.0;
            w *= 1.0 + phaseSpec.drift * dir * driftArg;
        }
        chunkCdf[b] = (w < 1e-9 ? 1e-9 : w) + acc;
        acc = chunkCdf[b];
    }
    for (auto &c : chunkCdf)
        c /= acc;
    pickPhase = jitter.uniform();
    pickIndex = 0;
}

void
PhaseModel::beginChunk(u64 chunk)
{
    rng = Rng(seed, chunk, 0xe7e7ULL);
    memRng = Rng(seed, chunk, 0x3e3eULL);
    kernel->beginChunk(chunk);
    rebuildChunkCdf(chunk);
    stackCursor = 0;
    // Branch direction runs restart lazily (kRunUninit) so the
    // first execution in a chunk lands mid-run, not at a run break.
    brDir.assign(phaseSpec.numBlocks, 0);
    brRun.assign(phaseSpec.numBlocks, kRunUninit);
}

const StaticBlock &
PhaseModel::pickBlock()
{
    // Systematic (quasirandom) sampling: successive picks walk the
    // block CDF on a golden-ratio sequence, so per-chunk block
    // counts stay within O(1) of their expectation — blocks recur
    // with loop-like regularity.  (I.i.d. sampling would make slice
    // BBVs noisy multinomial draws, blurring the phase structure
    // SimPoint keys on; stateful round-robin would break the
    // chunk-addressable determinism needed for replay.)
    constexpr double kGolden = 0.6180339887498949;
    double u = pickPhase +
               static_cast<double>(pickIndex) * kGolden;
    u -= static_cast<double>(static_cast<u64>(u)); // frac
    ++pickIndex;
    std::size_t i =
        sampleCdf(chunkCdf.data(), chunkCdf.size(), u);
    return statics[i];
}

void
PhaseModel::emit(const StaticBlock &block, u32 maxInstrs,
                 bool genAddresses, BlockRecord &rec, MemAccess *accs,
                 std::size_t &nAccs, BranchRecord &br, bool &hasBranch)
{
    u32 instrs = block.instrs;
    std::array<u32, kNumMemClasses> mix = block.mix;
    u32 fp = block.fpInstrs;

    // Per-execution length jitter (early loop exits, shortcut
    // paths): up to -20%, continuous.  Besides realism, this keeps
    // slice BBVs continuous — with rigid block lengths, rarely-
    // executed blocks quantize the vectors into discrete modes that
    // the clustering mistakes for distinct phases.
    u32 target = static_cast<u32>(static_cast<double>(instrs) *
                                  rng.uniform(0.8, 1.0));
    if (target < 4)
        target = 4;
    bool cutByBudget = target > maxInstrs;
    u32 effective = cutByBudget ? maxInstrs : target;

    if (instrs > effective) {
        // Scale proportionally, preserving the exact total.
        double scale = static_cast<double>(effective) /
                       static_cast<double>(instrs);
        u32 assigned = 0;
        for (std::size_t c = 1; c < kNumMemClasses; ++c) {
            mix[c] = static_cast<u32>(
                static_cast<double>(mix[c]) * scale);
            assigned += mix[c];
        }
        instrs = effective;
        SPLAB_ASSERT(assigned <= instrs, "truncation overflow");
        mix[0] = instrs - assigned;
        fp = static_cast<u32>(static_cast<double>(fp) * scale);
    }

    rec.bb = block.id;
    rec.pc = block.pc;
    rec.instrs = instrs;
    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        rec.mix.count[c] = mix[c];
    rec.fpInstrs = fp;
    // Jitter-shortened executions still end in their branch; only a
    // chunk-budget cut interrupts the block mid-body.
    rec.endsInBranch = block.endsInBranch && !cutByBudget;

    nAccs = 0;
    if (genAddresses) {
        u32 reads = mix[1] + mix[3];
        u32 writes = mix[2] + mix[3];
        SPLAB_ASSERT(reads + writes <= kMaxAccessesPerBlock,
                     "block emits too many accesses");
        // Interleave reads and writes in a deterministic round-robin
        // proportional to their counts.
        u32 r = 0, w = 0;
        while (r < reads || w < writes) {
            bool doRead =
                w >= writes ||
                (r < reads &&
                 static_cast<u64>(r) * writes <=
                     static_cast<u64>(w) * reads);
            MemAccess &a = accs[nAccs++];
            bool local = memRng.chance(phaseSpec.localFraction);
            if (doRead) {
                a.addr = local ? nextLocal() : kernel->nextRead();
                a.isWrite = false;
                ++r;
            } else {
                a.addr = local ? nextLocal() : kernel->nextWrite();
                a.isWrite = true;
                ++w;
            }
            a.size = 8;
        }
    }

    hasBranch = rec.endsInBranch;
    if (hasBranch) {
        br.pc = block.pc +
                static_cast<Addr>(instrs - 1) *
                    code_layout::kBytesPerInstr;
        br.dataDependent = rng.chance(phaseSpec.dataDepBranchFraction);
        u32 b = block.id - idBase;
        if (br.dataDependent) {
            // Data-dependent direction: effectively unpredictable.
            br.taken = rng.chance(0.5);
        } else {
            // Run-length direction model: branches execute in runs of
            // their majority direction with single-iteration breaks,
            // like loop back-edges.  The long-run taken fraction is
            // takenBias, and the outcome stream is learnable by a
            // history-based predictor (i.i.d. coin flips would not
            // be, which is unrepresentative of real code).
            double bias = takenBias[b];
            bool majority = bias >= 0.5;
            double majShare = majority ? bias : 1.0 - bias;
            double meanMajRun = majShare / (1.0 - majShare);
            if (brRun[b] == kRunUninit) {
                // Enter the chunk mid-run in the majority direction.
                brDir[b] = majority;
                brRun[b] = static_cast<u32>(
                    rng.burst(meanMajRun, 4096));
            }
            if (brRun[b] == 0) {
                if (brDir[b] == static_cast<u8>(majority)) {
                    // Majority run ended: one minority iteration.
                    brDir[b] = !majority;
                    brRun[b] = 1;
                } else {
                    // Back to a geometric majority run whose mean
                    // preserves the long-run bias.
                    brDir[b] = majority;
                    brRun[b] = static_cast<u32>(
                        rng.burst(meanMajRun, 4096));
                }
            }
            --brRun[b];
            br.taken = brDir[b] != 0;
        }
    }
}

} // namespace splab
