#include "schedule.hh"

#include <array>
#include <cmath>

#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

const std::string &
scheduleKindName(ScheduleKind k)
{
    static const std::array<std::string, 3> names = {
        "contiguous", "interleaved", "markov"};
    return names[static_cast<u8>(k)];
}

PhaseSchedule::PhaseSchedule(ScheduleKind kind,
                             const std::vector<double> &weights,
                             u64 totalChunks, u64 dwellChunks, u64 seed,
                             const std::vector<double> &dwellScale)
    : total(totalChunks)
{
    SPLAB_ASSERT(dwellScale.empty() ||
                     dwellScale.size() == weights.size(),
                 "dwellScale size mismatch");
    SPLAB_ASSERT(!weights.empty(), "schedule needs >= 1 phase");
    SPLAB_ASSERT(totalChunks > 0, "schedule needs >= 1 chunk");

    std::vector<double> w = weights;
    double s = 0.0;
    for (double x : w) {
        SPLAB_ASSERT(x >= 0.0, "negative phase weight");
        s += x;
    }
    SPLAB_ASSERT(s > 0.0, "all phase weights are zero");
    for (double &x : w)
        x /= s;

    if (dwellChunks == 0)
        dwellChunks = 64;

    switch (kind) {
      case ScheduleKind::Contiguous:
        buildContiguous(w);
        break;
      case ScheduleKind::Interleaved:
        buildInterleaved(w, dwellChunks);
        break;
      case ScheduleKind::Markov:
        buildMarkov(w, dwellChunks, seed, dwellScale);
        break;
    }
    SPLAB_ASSERT(!segs.empty() && segs.front().firstChunk == 0,
                 "schedule must cover chunk 0");
}

void
PhaseSchedule::buildContiguous(const std::vector<double> &w)
{
    u64 cursor = 0;
    double carried = 0.0;
    for (u32 p = 0; p < w.size(); ++p) {
        double want = w[p] * static_cast<double>(total) + carried;
        u64 len = static_cast<u64>(want + 0.5);
        carried = want - static_cast<double>(len);
        if (p + 1 == w.size())
            len = total - cursor; // absorb rounding in the last phase
        if (len == 0)
            continue;
        segs.push_back({cursor, p});
        cursor += len;
        if (cursor >= total)
            break;
    }
    if (segs.empty())
        segs.push_back({0, 0});
}

void
PhaseSchedule::buildInterleaved(const std::vector<double> &w, u64 dwell)
{
    // One rotation gives every nonzero phase at least one segment of
    // roughly weight-proportional length.
    u64 period = 0;
    std::vector<u64> lens(w.size());
    for (std::size_t p = 0; p < w.size(); ++p) {
        lens[p] = w[p] <= 0.0
                      ? 0
                      : static_cast<u64>(
                            w[p] * static_cast<double>(dwell) *
                                static_cast<double>(w.size()) +
                            0.5);
        if (w[p] > 0.0 && lens[p] == 0)
            lens[p] = 1;
        period += lens[p];
    }
    SPLAB_ASSERT(period > 0, "interleaved schedule has empty period");

    u64 cursor = 0;
    while (cursor < total) {
        for (u32 p = 0; p < w.size() && cursor < total; ++p) {
            if (lens[p] == 0)
                continue;
            segs.push_back({cursor, p});
            cursor += lens[p];
        }
    }
}

void
PhaseSchedule::buildMarkov(const std::vector<double> &w, u64 dwell,
                           u64 seed,
                           const std::vector<double> &dwellScale)
{
    Rng rng(seed, 0x5cedULL);

    // Per-phase mean segment lengths; a phase's *run share* must
    // stay w[p], so selection frequency is w[p] / length[p].
    std::vector<double> segLen(w.size());
    std::vector<double> sel(w.size());
    double selSum = 0.0;
    for (std::size_t p = 0; p < w.size(); ++p) {
        double scale =
            dwellScale.empty() ? 1.0 : dwellScale[p];
        SPLAB_ASSERT(scale > 0.0, "dwellScale must be positive");
        segLen[p] = static_cast<double>(dwell) * scale;
        sel[p] = w[p] / segLen[p];
        selSum += sel[p];
    }
    for (auto &s : sel)
        s /= selSum;

    // Stratified weighted selection: per-segment credits accumulate
    // by selection frequency and the richest phase (with a random
    // perturbation) runs next.  Every phase is guaranteed a
    // near-proportional number of segments — i.i.d. sampling would
    // starve sub-percent phases on realistic run lengths — while
    // random dwell lengths and perturbed ordering keep the sequence
    // irregular.
    std::vector<double> credit(w.size());
    for (auto &c : credit)
        c = rng.uniform() * 0.25;

    u64 cursor = 0;
    while (cursor < total) {
        std::size_t best = 0;
        double bestCredit = -1e300;
        for (std::size_t p = 0; p < w.size(); ++p) {
            credit[p] += sel[p];
            double perturbed =
                credit[p] + 0.35 * sel[p] * rng.gaussian();
            if (perturbed > bestCredit) {
                bestCredit = perturbed;
                best = p;
            }
        }
        credit[best] -= 1.0;
        u64 len = rng.burst(segLen[best],
                            static_cast<u64>(segLen[best]) * 8 + 8);
        segs.push_back({cursor, static_cast<u32>(best)});
        cursor += len;
    }
}

u32
PhaseSchedule::phaseOf(u64 chunk) const
{
    SPLAB_ASSERT(chunk < total, "chunk ", chunk, " beyond schedule");
    // Binary search for the last segment starting at or before chunk.
    std::size_t lo = 0, hi = segs.size();
    while (lo + 1 < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (segs[mid].firstChunk <= chunk)
            lo = mid;
        else
            hi = mid;
    }
    return segs[lo].phase;
}

std::vector<double>
PhaseSchedule::realizedWeights() const
{
    u32 maxPhase = 0;
    for (const auto &s : segs)
        maxPhase = s.phase > maxPhase ? s.phase : maxPhase;
    std::vector<double> w(maxPhase + 1, 0.0);
    for (std::size_t i = 0; i < segs.size(); ++i) {
        u64 end = i + 1 < segs.size() ? segs[i + 1].firstChunk : total;
        if (end > total)
            end = total;
        if (end > segs[i].firstChunk)
            w[segs[i].phase] +=
                static_cast<double>(end - segs[i].firstChunk);
    }
    for (double &x : w)
        x /= static_cast<double>(total);
    return w;
}

} // namespace splab
