/**
 * @file
 * Synthetic models of the 29 SPEC CPU2017 benchmarks studied in the
 * paper (Table II).
 *
 * SPEC CPU2017 is proprietary, so each benchmark is modelled as a
 * synthetic phase-structured program whose *observable structure*
 * matches what the paper reports: the number of phases, the phase
 * weight profile (how many phases cover 90% of execution), the
 * instruction mix regime (INT vs FP) and the memory-access character
 * of the domain.  Everything else (exact kernels, working sets) is
 * generated deterministically from the benchmark name.
 */

#ifndef SPLAB_WORKLOAD_SUITE_HH
#define SPLAB_WORKLOAD_SUITE_HH

#include <string>
#include <vector>

#include "benchmark_spec.hh"

namespace splab
{

/** Sub-suite a benchmark belongs to. */
enum class SuiteDomain : u8
{
    IntRate = 0,
    IntSpeed = 1,
    FpRate = 2,
};

const std::string &suiteDomainName(SuiteDomain d);

/** One row of the paper's Table II plus sizing metadata. */
struct SuiteEntry
{
    const char *name;      ///< e.g. "623.xalancbmk_s"
    int simPoints;         ///< Table II: number of simulation points
    int points90;          ///< Table II: 90th-percentile points
    u64 slices;            ///< whole-run length in default slices
    SuiteDomain domain;
    double paperInstrsB;   ///< paper-scale dynamic instrs (billions)
};

/** The 29 benchmarks of Table II, in the paper's order. */
const std::vector<SuiteEntry> &suiteTable();

/** Look up a table entry; fatal() if unknown. */
const SuiteEntry &suiteEntry(const std::string &name);

/**
 * Build the executable spec for one benchmark.  Honors the global
 * SPLAB_SCALE factor (lengths scale, structure does not).
 */
BenchmarkSpec makeBenchmark(const SuiteEntry &entry);

/** Convenience: makeBenchmark(suiteEntry(name)). */
BenchmarkSpec benchmarkByName(const std::string &name);

/** Specs for the whole suite, in Table II order. */
std::vector<BenchmarkSpec> spec2017Suite();

/** Names of the whole suite, in Table II order (the benchmark axis
 *  of ArtifactGraph::runSuite). */
std::vector<std::string> suiteNames();

/**
 * Design a phase-weight vector with @p n phases such that exactly
 * @p m90 phases (by descending weight) are needed to reach 90% of
 * the total weight.  Weights follow a geometric decay whose ratio is
 * solved numerically; all weights are floored at @p floor so every
 * phase occupies a visible share of the schedule.
 */
std::vector<double> designWeights(int n, int m90, double floor = 0.01);

/**
 * Number of leading weights (sorted descending) needed to reach
 * @p quantile of the total mass.
 */
int coverageCount(std::vector<double> weights, double quantile);

} // namespace splab

#endif // SPLAB_WORKLOAD_SUITE_HH
