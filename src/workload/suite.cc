#include "suite.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

const std::string &
suiteDomainName(SuiteDomain d)
{
    static const std::array<std::string, 3> names = {
        "SPECrate INT", "SPECspeed INT", "SPECrate FP"};
    return names[static_cast<u8>(d)];
}

const std::vector<SuiteEntry> &
suiteTable()
{
    // Columns 2 and 3 are the paper's Table II.  `slices` sets the
    // whole-run length at model scale (one slice = 10,000 model
    // instructions = one paper-equivalent 30M-instruction slice);
    // `paperInstrsB` carries the paper-scale dynamic instruction
    // count used for paper-equivalent time reporting.
    static const std::vector<SuiteEntry> table = {
        {"500.perlbench_r", 18, 11, 12000, SuiteDomain::IntRate, 6000},
        {"502.gcc_r", 27, 15, 17000, SuiteDomain::IntRate, 8500},
        {"505.mcf_r", 18, 9, 14000, SuiteDomain::IntRate, 7000},
        {"520.omnetpp_r", 4, 3, 6000, SuiteDomain::IntRate, 3000},
        {"525.x264_r", 23, 15, 15000, SuiteDomain::IntRate, 7500},
        {"531.deepsjeng_r", 20, 15, 12000, SuiteDomain::IntRate, 6000},
        {"541.leela_r", 19, 12, 12000, SuiteDomain::IntRate, 6000},
        {"548.exchange2_r", 21, 16, 13000, SuiteDomain::IntRate, 6500},
        {"557.xz_r", 13, 7, 10000, SuiteDomain::IntRate, 5000},
        {"600.perlbench_s", 21, 13, 14000, SuiteDomain::IntSpeed, 7000},
        {"602.gcc_s", 15, 5, 11000, SuiteDomain::IntSpeed, 5500},
        {"605.mcf_s", 28, 14, 18000, SuiteDomain::IntSpeed, 9000},
        {"620.omnetpp_s", 3, 2, 5000, SuiteDomain::IntSpeed, 2500},
        {"623.xalancbmk_s", 25, 19, 16000, SuiteDomain::IntSpeed, 8000},
        {"625.x264_s", 19, 13, 13000, SuiteDomain::IntSpeed, 6500},
        {"631.deepsjeng_s", 12, 10, 9000, SuiteDomain::IntSpeed, 4500},
        {"641.leela_s", 20, 13, 12000, SuiteDomain::IntSpeed, 6000},
        {"648.exchange2_s", 19, 15, 12000, SuiteDomain::IntSpeed, 6000},
        {"657.xz_s", 18, 10, 13000, SuiteDomain::IntSpeed, 6500},
        {"503.bwaves_r", 26, 7, 26000, SuiteDomain::FpRate, 13000},
        {"507.cactuBSSN_r", 25, 4, 18000, SuiteDomain::FpRate, 9000},
        {"508.namd_r", 26, 17, 16000, SuiteDomain::FpRate, 8000},
        {"510.parest_r", 23, 14, 15000, SuiteDomain::FpRate, 7500},
        {"511.povray_r", 23, 19, 11000, SuiteDomain::FpRate, 5500},
        {"519.lbm_r", 22, 8, 20000, SuiteDomain::FpRate, 10000},
        {"526.blender_r", 22, 14, 14000, SuiteDomain::FpRate, 7000},
        {"538.imagick_r", 14, 7, 12000, SuiteDomain::FpRate, 6000},
        {"544.nab_r", 22, 10, 14000, SuiteDomain::FpRate, 7000},
        {"549.fotonik3d_r", 27, 11, 19000, SuiteDomain::FpRate, 9500},
    };
    return table;
}

const SuiteEntry &
suiteEntry(const std::string &name)
{
    for (const auto &e : suiteTable())
        if (name == e.name)
            return e;
    SPLAB_FATAL("unknown benchmark: ", name);
}

int
coverageCount(std::vector<double> weights, double quantile)
{
    std::sort(weights.begin(), weights.end(), std::greater<>());
    double total = 0.0;
    for (double w : weights)
        total += w;
    if (total <= 0.0)
        return 0;
    double acc = 0.0;
    int n = 0;
    for (double w : weights) {
        acc += w;
        ++n;
        if (acc >= quantile * total - 1e-12)
            return n;
    }
    return n;
}

namespace
{

/** Floored, normalized geometric weight vector with ratio @p r. */
std::vector<double>
flooredGeometric(int n, double r, double floor)
{
    std::vector<double> w(n);
    double x = 1.0, s = 0.0;
    for (int i = 0; i < n; ++i) {
        w[i] = x;
        s += x;
        x *= r;
    }
    for (auto &v : w)
        v /= s;
    // Apply the floor, then renormalize.
    s = 0.0;
    for (auto &v : w) {
        if (v < floor)
            v = floor;
        s += v;
    }
    for (auto &v : w)
        v /= s;
    return w;
}

} // namespace

std::vector<double>
designWeights(int n, int m90, double floor)
{
    SPLAB_ASSERT(n >= 1, "designWeights: need n >= 1");
    SPLAB_ASSERT(m90 >= 1 && m90 <= n, "designWeights: bad m90 ", m90);
    if (n == 1)
        return {1.0};

    // The (n - m90) lightest phases must jointly fit in the top
    // 10% tail, or the coverage target is unreachable; shrink the
    // floor for very skewed profiles.
    if (m90 < n) {
        double cap = 0.08 / static_cast<double>(n - m90);
        if (floor > cap)
            floor = cap;
    }

    // coverageCount is nondecreasing in r.  Find the admissible
    // interval of ratios producing exactly m90 and take its middle,
    // so small clustering perturbations do not flip the count.
    auto m90Of = [&](double r) {
        return coverageCount(flooredGeometric(n, r, floor), 0.9);
    };

    double loBound = 0.02, hiBound = 0.99999;
    if (m90Of(hiBound) < m90) {
        SPLAB_WARN("designWeights(", n, ", ", m90,
                   "): target unreachable; using uniform");
        return flooredGeometric(n, 1.0, floor);
    }
    if (m90Of(loBound) > m90)
        return flooredGeometric(n, loBound, floor);

    // Smallest r with coverage >= m90.
    double lo = loBound, hi = hiBound;
    for (int it = 0; it < 60; ++it) {
        double mid = 0.5 * (lo + hi);
        if (m90Of(mid) >= m90)
            hi = mid;
        else
            lo = mid;
    }
    double rLo = hi;
    // Largest r with coverage <= m90.
    lo = rLo;
    hi = hiBound;
    for (int it = 0; it < 60; ++it) {
        double mid = 0.5 * (lo + hi);
        if (m90Of(mid) <= m90)
            lo = mid;
        else
            hi = mid;
    }
    double rHi = lo;
    double r = 0.5 * (rLo + rHi);
    if (m90Of(r) != m90)
        r = rLo; // plateau may be tiny; fall back to its left edge
    return flooredGeometric(n, r, floor);
}

namespace
{

/** Weight profile for 503.bwaves_r per Section IV-C: one dominant
 *  60% phase, top three cover 80%, long insignificant tail. */
std::vector<double>
bwavesWeights(int n)
{
    SPLAB_ASSERT(n >= 4, "bwaves profile needs >= 4 phases");
    std::vector<double> w(n);
    w[0] = 0.60;
    w[1] = 0.12;
    w[2] = 0.08;
    double rest = 0.20;
    double r = 0.8, x = 1.0, s = 0.0;
    for (int i = 3; i < n; ++i) {
        s += x;
        x *= r;
    }
    x = 1.0;
    for (int i = 3; i < n; ++i) {
        w[i] = rest * x / s;
        x *= r;
    }
    // Floor the insignificant tail so every phase is actually
    // scheduled (a few segments each), then rescale the tail to
    // keep the 60/12/8 head intact.
    double tail = 0.0;
    for (int i = 3; i < n; ++i) {
        if (w[i] < 0.006)
            w[i] = 0.006;
        tail += w[i];
    }
    for (int i = 3; i < n; ++i)
        w[i] *= rest / tail;
    return w;
}

struct DomainProfile
{
    MixProfile baseMix;
    double fpLo, fpHi;
    double dataDepLo, dataDepHi;
    u64 wsLo, wsHi;
    u32 blockLenLo, blockLenHi;
    std::vector<KernelKind> palette;
};

const DomainProfile &
domainProfile(SuiteDomain d)
{
    static const DomainProfile intProfile = {
        {0.47, 0.375, 0.135, 0.02, 0.16},
        0.0, 0.1,
        0.04, 0.16,
        32 * 1024, 8ULL << 20,
        50, 110,
        {KernelKind::PointerChase, KernelKind::ZipfHotCold,
         KernelKind::RandomUniform, KernelKind::Blocked,
         KernelKind::Stream},
    };
    static const DomainProfile fpProfile = {
        {0.53, 0.345, 0.11, 0.015, 0.06},
        0.35, 0.7,
        0.01, 0.05,
        128 * 1024, 24ULL << 20,
        80, 170,
        {KernelKind::Stream, KernelKind::Stencil, KernelKind::Strided,
         KernelKind::Blocked, KernelKind::ZipfHotCold},
    };
    return d == SuiteDomain::FpRate ? fpProfile : intProfile;
}

/** Log-uniform draw in [lo, hi]. */
u64
logUniform(Rng &rng, u64 lo, u64 hi)
{
    double x = rng.uniform(std::log(static_cast<double>(lo)),
                           std::log(static_cast<double>(hi)));
    return static_cast<u64>(std::exp(x));
}

} // namespace

BenchmarkSpec
makeBenchmark(const SuiteEntry &entry)
{
    const DomainProfile &dom = domainProfile(entry.domain);
    u64 nameSeed =
        hashBytes(entry.name, std::string(entry.name).size());
    Rng rng(nameSeed, 0x5017ULL);

    BenchmarkSpec spec;
    spec.name = entry.name;
    spec.seed = nameSeed;
    spec.chunkLen = 1000;

    double scale = workloadScale();
    u64 slices = static_cast<u64>(
        static_cast<double>(entry.slices) * scale);
    if (slices < 200)
        slices = 200;
    spec.totalChunks = slices * 10; // default slice = 10 chunks

    std::vector<double> weights =
        std::string(entry.name) == "503.bwaves_r"
            ? bwavesWeights(entry.simPoints)
            : designWeights(entry.simPoints, entry.points90);

    for (int i = 0; i < entry.simPoints; ++i) {
        PhaseSpec p;
        p.name = "phase" + std::to_string(i);
        p.weight = weights[i];

        p.mix = dom.baseMix;
        p.mix.noMem *= std::exp(0.10 * rng.gaussian());
        p.mix.memR *= std::exp(0.12 * rng.gaussian());
        p.mix.memW *= std::exp(0.15 * rng.gaussian());
        p.mix.memRW *= std::exp(0.30 * rng.gaussian());
        p.mix.normalize();
        p.mix.branch = dom.baseMix.branch *
                       std::exp(0.2 * rng.gaussian());

        p.numBlocks = 8 + static_cast<u32>(rng.below(28));
        p.avgBlockLen =
            dom.blockLenLo +
            static_cast<u32>(rng.below(dom.blockLenHi -
                                       dom.blockLenLo + 1));
        p.fpFraction = rng.uniform(dom.fpLo, dom.fpHi);
        p.dataDepBranchFraction =
            rng.uniform(dom.dataDepLo, dom.dataDepHi);

        p.kernel = dom.palette[rng.below(dom.palette.size())];
        p.workingSetBytes = logUniform(rng, dom.wsLo, dom.wsHi);
        p.localFraction = entry.domain == SuiteDomain::FpRate
                              ? rng.uniform(0.45, 0.65)
                              : rng.uniform(0.55, 0.72);
        p.stride = 64u << rng.below(4); // 64..512
        p.hotFraction = rng.uniform(0.02, 0.2);
        p.hotProbability = rng.uniform(0.6, 0.95);
        p.tileBytes = 2048u << rng.below(3); // 2K..8K
        p.blockNoise = rng.uniform(0.12, 0.30);
        // Dominant phases are single homogeneous kernels (a bwaves
        // style loop nest): internally tight, or BIC justifiably
        // splits their wide, highly-populated cluster.
        if (weights[i] > 0.3)
            p.blockNoise *= 0.15;
        p.drift = 0.0;

        spec.phases.push_back(std::move(p));
    }

    // Temporal structure: mostly input-driven alternation, with some
    // frame-periodic and stage-like programs.
    double u = rng.uniform();
    spec.schedule = u < 0.6 ? ScheduleKind::Markov
                   : u < 0.85 ? ScheduleKind::Interleaved
                              : ScheduleKind::Contiguous;
    // Mean phase-segment length.  Slices straddling a segment
    // boundary mix two phases and can surface as spurious clusters;
    // benchmarks with few, long phases (omnetpp-like) dwell much
    // longer, keeping the boundary share negligible.
    spec.dwellChunks = 160 + rng.below(160);
    if (spec.phases.size() < 8)
        spec.dwellChunks *= 5;
    spec.validate();
    return spec;
}

BenchmarkSpec
benchmarkByName(const std::string &name)
{
    return makeBenchmark(suiteEntry(name));
}

std::vector<BenchmarkSpec>
spec2017Suite()
{
    std::vector<BenchmarkSpec> specs;
    specs.reserve(suiteTable().size());
    for (const auto &e : suiteTable())
        specs.push_back(makeBenchmark(e));
    return specs;
}

std::vector<std::string>
suiteNames()
{
    std::vector<std::string> names;
    names.reserve(suiteTable().size());
    for (const auto &e : suiteTable())
        names.emplace_back(e.name);
    return names;
}

} // namespace splab
