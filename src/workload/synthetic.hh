/**
 * @file
 * Executable synthetic workload: turns a BenchmarkSpec into a dynamic
 * event stream, addressable at chunk granularity.
 */

#ifndef SPLAB_WORKLOAD_SYNTHETIC_HH
#define SPLAB_WORKLOAD_SYNTHETIC_HH

#include <memory>
#include <vector>

#include "benchmark_spec.hh"

namespace splab
{

/**
 * Receiver of dynamic execution events.
 *
 * The workload delivers one EventBatch per chunk (structure-of-arrays,
 * see isa/events.hh); the default onBatch() unpacks it into the
 * per-block onBlock() callback in stream order, so block-granular
 * sinks observe exactly the pre-batching event sequence.  Sinks on
 * the hot path override onBatch() instead and skip the per-block
 * virtual dispatch entirely.
 */
class EventSink
{
  public:
    virtual ~EventSink() = default;

    /**
     * @param rec    dynamic block record
     * @param accs   memory accesses performed by the block (may be
     *               null when address generation is disabled)
     * @param nAccs  number of accesses
     * @param br     terminating branch, or null if none
     */
    virtual void onBlock(const BlockRecord &rec, const MemAccess *accs,
                         std::size_t nAccs,
                         const BranchRecord *br) = 0;

    /**
     * One chunk's worth of events.  Default: unpack to onBlock() in
     * order.  Overriders observe the identical event content.
     */
    virtual void
    onBatch(const EventBatch &batch)
    {
        const std::size_t n = batch.numBlocks();
        for (std::size_t i = 0; i < n; ++i)
            onBlock(batch.block(i), batch.accs(i), batch.accCount(i),
                    batch.branch(i));
    }
};

/**
 * Deterministic synthetic program.
 *
 * Replay contract: run(first, n, ...) produces a byte-identical event
 * stream regardless of what was or was not executed before — chunk
 * state is derived from (seed, chunk index) alone.  Microarchitectural
 * state (caches, predictors) is *not* part of this contract; starting
 * cold at a region boundary is exactly the cold-start artefact the
 * paper studies.
 */
class SyntheticWorkload
{
  public:
    explicit SyntheticWorkload(BenchmarkSpec spec);

    const BenchmarkSpec &spec() const { return benchSpec; }

    u64 totalChunks() const { return benchSpec.totalChunks; }
    ICount chunkLen() const { return benchSpec.chunkLen; }
    ICount totalInstrs() const { return benchSpec.totalInstrs(); }

    /** All static blocks across phases, in BlockId order. */
    const std::vector<StaticBlock> &staticBlocks() const
    {
        return allBlocks;
    }

    /** Number of distinct static blocks (the BBV dimensionality). */
    std::size_t numStaticBlocks() const { return allBlocks.size(); }

    const PhaseSchedule &schedule() const { return *phaseSchedule; }

    /** Phase index executing at @p chunk. */
    u32 phaseAt(u64 chunk) const
    {
        return phaseSchedule->phaseOf(chunk);
    }

    /**
     * Execute chunks [firstChunk, firstChunk + numChunks), delivering
     * events to @p sink.
     *
     * @param genAddresses when false, memory addresses are not
     *        generated (2-4x faster); accs is null in callbacks.
     */
    void run(u64 firstChunk, u64 numChunks, EventSink &sink,
             bool genAddresses = true);

  private:
    friend class GenContext;

    /** Construction bases of one phase, kept so GenContext can
     *  build byte-identical PhaseModel replicas. */
    struct PhaseLayout
    {
        BlockId idBase = 0;
        Addr pcBase = 0;
        Addr dataBase = 0;
    };

    BenchmarkSpec benchSpec;
    std::vector<std::unique_ptr<PhaseModel>> phaseModels;
    std::vector<PhaseLayout> phaseLayouts;
    std::unique_ptr<PhaseSchedule> phaseSchedule;
    std::vector<StaticBlock> allBlocks;
    /** Reusable batch arena: one chunk is built here, delivered,
     *  cleared.  Lives on the workload so per-region replays reuse
     *  the high-water capacity across run() calls. */
    EventBatch batchArena;
};

/**
 * Per-worker generation context: owns private PhaseModel replicas of
 * a workload, so any chunk can be generated concurrently with other
 * contexts (and with the workload's own run()) without sharing
 * mutable phase state.
 *
 * The replicas are rebuilt from the same (spec, seed, layout)
 * inputs, and chunk state is a pure function of (seed, chunk index)
 * — the counter-based-RNG property that makes regional pinballs
 * exact — so generateChunk(c) emits bytes identical to what a serial
 * run() would deliver for chunk c, regardless of which chunks this
 * context generated before.  The engine's generation pipeline keeps
 * one context per producer worker (see pin/engine.cc).
 */
class GenContext
{
  public:
    explicit GenContext(const SyntheticWorkload &workload);

    /**
     * Generate chunk @p chunk into @p batch (cleared first) and
     * finalize its aggregates.  Resolves the owning schedule segment
     * from scratch — parallel chunks have no forward-scan state to
     * share.
     */
    void generateChunk(u64 chunk, EventBatch &batch,
                       bool genAddresses);

  private:
    const SyntheticWorkload &wl;
    std::vector<std::unique_ptr<PhaseModel>> models;
};

} // namespace splab

#endif // SPLAB_WORKLOAD_SYNTHETIC_HH
