#include "benchmark_spec.hh"

#include "support/logging.hh"
#include "support/serialize.hh"

namespace splab
{

void
BenchmarkSpec::serialize(ByteWriter &w) const
{
    w.putString(name);
    w.put<u64>(seed);
    w.put<u64>(totalChunks);
    w.put<u64>(chunkLen);
    w.put<u8>(static_cast<u8>(schedule));
    w.put<u64>(dwellChunks);
    w.put<u64>(phases.size());
    for (const auto &p : phases) {
        w.putString(p.name);
        w.put<double>(p.weight);
        w.put<double>(p.mix.noMem);
        w.put<double>(p.mix.memR);
        w.put<double>(p.mix.memW);
        w.put<double>(p.mix.memRW);
        w.put<double>(p.mix.branch);
        w.put<u32>(p.numBlocks);
        w.put<u32>(p.avgBlockLen);
        w.put<double>(p.fpFraction);
        w.put<double>(p.dataDepBranchFraction);
        w.put<u8>(static_cast<u8>(p.kernel));
        w.put<u64>(p.workingSetBytes);
        w.put<double>(p.localFraction);
        w.put<u32>(p.stride);
        w.put<double>(p.hotFraction);
        w.put<double>(p.hotProbability);
        w.put<u32>(p.tileBytes);
        w.put<double>(p.blockNoise);
        w.put<double>(p.drift);
    }
}

BenchmarkSpec
BenchmarkSpec::deserialize(ByteReader &r)
{
    BenchmarkSpec s;
    s.name = r.getString();
    s.seed = r.get<u64>();
    s.totalChunks = r.get<u64>();
    s.chunkLen = r.get<u64>();
    s.schedule = static_cast<ScheduleKind>(r.get<u8>());
    s.dwellChunks = r.get<u64>();
    u64 n = r.get<u64>();
    s.phases.resize(n);
    for (auto &p : s.phases) {
        p.name = r.getString();
        p.weight = r.get<double>();
        p.mix.noMem = r.get<double>();
        p.mix.memR = r.get<double>();
        p.mix.memW = r.get<double>();
        p.mix.memRW = r.get<double>();
        p.mix.branch = r.get<double>();
        p.numBlocks = r.get<u32>();
        p.avgBlockLen = r.get<u32>();
        p.fpFraction = r.get<double>();
        p.dataDepBranchFraction = r.get<double>();
        p.kernel = static_cast<KernelKind>(r.get<u8>());
        p.workingSetBytes = r.get<u64>();
        p.localFraction = r.get<double>();
        p.stride = r.get<u32>();
        p.hotFraction = r.get<double>();
        p.hotProbability = r.get<double>();
        p.tileBytes = r.get<u32>();
        p.blockNoise = r.get<double>();
        p.drift = r.get<double>();
    }
    s.validate();
    return s;
}

u64
BenchmarkSpec::contentHash() const
{
    ByteWriter w;
    serialize(w);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

void
BenchmarkSpec::validate() const
{
    SPLAB_ASSERT(!phases.empty(), name, ": benchmark needs phases");
    SPLAB_ASSERT(totalChunks > 0, name, ": empty run");
    SPLAB_ASSERT(chunkLen >= 256 && chunkLen <= 65536,
                 name, ": chunkLen out of range: ", chunkLen);
    double s = 0.0;
    for (const auto &p : phases) {
        SPLAB_ASSERT(p.weight >= 0.0, name, ": negative weight");
        s += p.weight;
    }
    SPLAB_ASSERT(s > 0.0, name, ": zero total phase weight");
}

} // namespace splab
