/**
 * @file
 * Memory-address kernels for synthetic workload phases.
 *
 * A kernel turns an abstract "memory operation" into a concrete byte
 * address.  Each phase of a synthetic benchmark owns one kernel
 * parameterisation; the kernel family plus its working-set size is
 * what gives a phase its cache signature.
 *
 * Determinism contract: a kernel's address stream within a chunk is a
 * pure function of (workload seed, phase, chunk index) via
 * beginChunk().  This lets a regional pinball replay any chunk
 * without executing its predecessors.
 */

#ifndef SPLAB_WORKLOAD_KERNELS_HH
#define SPLAB_WORKLOAD_KERNELS_HH

#include <memory>
#include <string>

#include "support/rng.hh"
#include "support/types.hh"

namespace splab
{

/** Families of memory-access behaviour. */
enum class KernelKind : u8
{
    Stream = 0,      ///< unit-stride streaming over the working set
    Strided = 1,     ///< fixed non-unit stride (column walks)
    PointerChase = 2,///< dependent LCG walk (linked data structures)
    ZipfHotCold = 3, ///< hot subset reused + cold background
    Stencil = 4,     ///< neighbouring-row reads + centre write
    Blocked = 5,     ///< tile-local reuse (blocked dense kernels)
    RandomUniform = 6///< uniform random over the working set
};

constexpr std::size_t kNumKernelKinds = 7;

/** Display name, e.g. "pointer-chase". */
const std::string &kernelKindName(KernelKind k);

/** Static parameterisation of a kernel instance. */
struct KernelConfig
{
    KernelKind kind = KernelKind::Stream;
    Addr base = 0x100000000ULL;  ///< segment base address
    u64 workingSet = 1 << 20;    ///< bytes; rounded to a power of two
    u32 stride = 64;             ///< bytes (Strided)
    double hotFraction = 0.1;    ///< fraction of WS that is hot (Zipf)
    double hotProbability = 0.9; ///< P(access hits the hot set) (Zipf)
    u32 tileBytes = 4096;        ///< tile size (Blocked)
};

/**
 * Generates the address stream of one phase.
 *
 * Usage: beginChunk(chunk) once per execution chunk, then any
 * interleaving of nextRead()/nextWrite().
 */
class AddressKernel
{
  public:
    virtual ~AddressKernel() = default;

    /** Reset deterministic per-chunk state. */
    virtual void beginChunk(u64 chunk) = 0;

    /** Address of the next read access. */
    virtual Addr nextRead() = 0;

    /** Address of the next write access. */
    virtual Addr nextWrite() = 0;

    const KernelConfig &config() const { return cfg; }

    AddressKernel(const KernelConfig &config, u64 seed);

  protected:
    /** Working set size rounded down to a power of two. */
    u64 wsMask() const { return mask; }

    KernelConfig cfg;
    u64 seed;
    u64 mask; ///< workingSet rounded to pow2, minus 1

  private:
    static u64 floorPow2(u64 v);
};

/** Instantiate the kernel described by @p cfg. */
std::unique_ptr<AddressKernel> makeKernel(const KernelConfig &cfg,
                                          u64 seed);

} // namespace splab

#endif // SPLAB_WORKLOAD_KERNELS_HH
