#include "kernels.hh"

#include <array>

#include "support/logging.hh"

namespace splab
{

const std::string &
kernelKindName(KernelKind k)
{
    static const std::array<std::string, kNumKernelKinds> names = {
        "stream",       "strided",  "pointer-chase", "zipf-hot-cold",
        "stencil",      "blocked",  "random-uniform"};
    return names[static_cast<u8>(k)];
}

u64
AddressKernel::floorPow2(u64 v)
{
    u64 p = 1;
    while ((p << 1) && (p << 1) <= v)
        p <<= 1;
    return p;
}

AddressKernel::AddressKernel(const KernelConfig &config, u64 seed)
    : cfg(config), seed(seed)
{
    SPLAB_ASSERT(cfg.workingSet >= 4096,
                 "working set too small: ", cfg.workingSet);
    mask = floorPow2(cfg.workingSet) - 1;
}

namespace
{

/**
 * Unit-stride streaming.  Reads and writes advance separate cursors;
 * consecutive chunks of the same phase continue through the working
 * set so data is re-touched once per sweep.
 */
class StreamKernel : public AddressKernel
{
  public:
    using AddressKernel::AddressKernel;

    void
    beginChunk(u64 chunk) override
    {
        // ~400 accesses per 1000-instruction chunk at a typical mix;
        // advance the sweep position proportionally so the stream is
        // contiguous across consecutive chunks.
        u64 origin = (chunk * 512 * 8) & mask;
        readCursor = origin;
        writeCursor = (origin + ((mask + 1) >> 1)) & mask;
    }

    Addr
    nextRead() override
    {
        Addr a = cfg.base + readCursor;
        readCursor = (readCursor + 8) & mask;
        return a;
    }

    Addr
    nextWrite() override
    {
        Addr a = cfg.base + writeCursor;
        writeCursor = (writeCursor + 8) & mask;
        return a;
    }

  private:
    u64 readCursor = 0;
    u64 writeCursor = 0;
};

/** Fixed-stride walk: one access per line/column step. */
class StridedKernel : public AddressKernel
{
  public:
    using AddressKernel::AddressKernel;

    void
    beginChunk(u64 chunk) override
    {
        u64 origin = (chunk * 512 * cfg.stride) & mask;
        readCursor = origin;
        writeCursor = (origin + ((mask + 1) >> 1)) & mask;
    }

    Addr
    nextRead() override
    {
        Addr a = cfg.base + readCursor;
        readCursor = (readCursor + cfg.stride) & mask;
        return a;
    }

    Addr
    nextWrite() override
    {
        Addr a = cfg.base + writeCursor;
        writeCursor = (writeCursor + cfg.stride) & mask;
        return a;
    }

  private:
    u64 readCursor = 0;
    u64 writeCursor = 0;
};

/**
 * Dependent pointer chase.  A full-period LCG over line-granular
 * slots emulates walking a pseudo-random permutation (linked list /
 * tree traversal): every access depends on the previous one and the
 * whole working set is eventually visited.
 */
class PointerChaseKernel : public AddressKernel
{
  public:
    PointerChaseKernel(const KernelConfig &c, u64 s)
        : AddressKernel(c, s)
    {
        slots = (mask + 1) / kLine;
        if (slots < 2)
            slots = 2;
    }

    void
    beginChunk(u64 chunk) override
    {
        // Continue the global walk: the chain position is a pure
        // function of the chunk index, as if the traversal had been
        // running since the phase began.
        pos = mix64(hashCombine(seed, chunk)) % slots;
    }

    Addr
    nextRead() override
    {
        // Full-period LCG (m power of two: c odd, a % 4 == 1).
        pos = (pos * 5 + 12345) % slots;
        return cfg.base + pos * kLine;
    }

    Addr
    nextWrite() override
    {
        // Writes update the node just visited.
        return cfg.base + pos * kLine + 8;
    }

  private:
    static constexpr u64 kLine = 64;
    u64 slots = 2;
    u64 pos = 0;
};

/**
 * Hot/cold access: with probability hotProbability the access falls
 * uniformly in a small hot subset (re-used across the whole phase,
 * so it is resident in a warm cache and cold after a checkpoint);
 * the rest streams through the cold region.
 */
class ZipfHotColdKernel : public AddressKernel
{
  public:
    ZipfHotColdKernel(const KernelConfig &c, u64 s)
        : AddressKernel(c, s), rng(s)
    {
        hotMask = 4096 - 1;
        u64 hotBytes = static_cast<u64>(
            static_cast<double>(mask + 1) * cfg.hotFraction);
        while ((hotMask + 1) * 2 <= hotBytes)
            hotMask = (hotMask << 1) | 1;
    }

    void
    beginChunk(u64 chunk) override
    {
        rng = Rng(seed, chunk, 0x2f0f);
        coldCursor = (chunk * 512 * 8) & mask;
    }

    Addr
    nextRead() override
    {
        return next(false);
    }

    Addr
    nextWrite() override
    {
        return next(true);
    }

  private:
    Addr
    next(bool write)
    {
        if (rng.uniform() < cfg.hotProbability) {
            // Hot set lives at the bottom of the segment.
            return cfg.base + (rng.next() & hotMask & ~7ULL);
        }
        Addr a = cfg.base + coldCursor + (write ? 8 : 0);
        coldCursor = (coldCursor + 8) & mask;
        return a;
    }

    Rng rng;
    u64 hotMask = 4095;
    u64 coldCursor = 0;
};

/**
 * Three-row stencil: reads from row-1 / row / row+1 round-robin,
 * writes to the centre row of a result grid in the upper half of the
 * working set.
 */
class StencilKernel : public AddressKernel
{
  public:
    StencilKernel(const KernelConfig &c, u64 s) : AddressKernel(c, s)
    {
        half = (mask + 1) >> 1;
        // Row length: sqrt-ish of the grid, line aligned.
        row = 1024;
        while (row * row < half)
            row <<= 1;
    }

    void
    beginChunk(u64 chunk) override
    {
        col = (chunk * 512 * 8) % half;
        neighbour = 0;
    }

    Addr
    nextRead() override
    {
        // Cycle through the three source rows around the cursor.
        static constexpr i64 offs[3] = {-1, 0, 1};
        i64 r = offs[neighbour];
        neighbour = (neighbour + 1) % 3;
        u64 a = (col + static_cast<u64>(
                     static_cast<i64>(row) * r + static_cast<i64>(half)))
                % half;
        col = (col + (neighbour == 0 ? 8 : 0)) % half;
        return cfg.base + a;
    }

    Addr
    nextWrite() override
    {
        return cfg.base + half + col % half;
    }

  private:
    u64 half = 0;
    u64 row = 1024;
    u64 col = 0;
    int neighbour = 0;
};

/**
 * Tile-local reuse: accesses stay inside one tile for many
 * operations, then move to the next tile.  Models blocked dense
 * linear algebra (very cache friendly).
 */
class BlockedKernel : public AddressKernel
{
  public:
    BlockedKernel(const KernelConfig &c, u64 s)
        : AddressKernel(c, s), rng(s)
    {
        tileMask = cfg.tileBytes ? cfg.tileBytes - 1 : 4095;
        // Tile size must be a power of two within the working set.
        SPLAB_ASSERT((tileMask & (tileMask + 1)) == 0,
                     "tileBytes must be a power of two");
    }

    void
    beginChunk(u64 chunk) override
    {
        rng = Rng(seed, chunk, 0xb10c);
        // A new tile every few chunks: tile index advances slowly.
        tileBase = ((chunk / 4) * (tileMask + 1)) & mask;
        cursor = 0;
    }

    Addr
    nextRead() override
    {
        cursor = (cursor + 8) & tileMask;
        return cfg.base + tileBase + cursor;
    }

    Addr
    nextWrite() override
    {
        return cfg.base + tileBase + (rng.next() & tileMask & ~7ULL);
    }

  private:
    Rng rng;
    u64 tileMask = 4095;
    u64 tileBase = 0;
    u64 cursor = 0;
};

/** Uniform random over the whole working set (worst locality). */
class RandomUniformKernel : public AddressKernel
{
  public:
    RandomUniformKernel(const KernelConfig &c, u64 s)
        : AddressKernel(c, s), rng(s)
    {}

    void
    beginChunk(u64 chunk) override
    {
        rng = Rng(seed, chunk, 0x7a2d);
    }

    Addr
    nextRead() override
    {
        return cfg.base + (rng.next() & mask & ~7ULL);
    }

    Addr
    nextWrite() override
    {
        return cfg.base + (rng.next() & mask & ~7ULL);
    }

  private:
    Rng rng;
};

} // namespace

std::unique_ptr<AddressKernel>
makeKernel(const KernelConfig &cfg, u64 seed)
{
    switch (cfg.kind) {
      case KernelKind::Stream:
        return std::make_unique<StreamKernel>(cfg, seed);
      case KernelKind::Strided:
        return std::make_unique<StridedKernel>(cfg, seed);
      case KernelKind::PointerChase:
        return std::make_unique<PointerChaseKernel>(cfg, seed);
      case KernelKind::ZipfHotCold:
        return std::make_unique<ZipfHotColdKernel>(cfg, seed);
      case KernelKind::Stencil:
        return std::make_unique<StencilKernel>(cfg, seed);
      case KernelKind::Blocked:
        return std::make_unique<BlockedKernel>(cfg, seed);
      case KernelKind::RandomUniform:
        return std::make_unique<RandomUniformKernel>(cfg, seed);
    }
    SPLAB_PANIC("unknown kernel kind ",
                static_cast<int>(cfg.kind));
}

} // namespace splab
