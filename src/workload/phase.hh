/**
 * @file
 * Phase specification and runtime model for synthetic benchmarks.
 *
 * A phase is one long-lived behaviour of a program: a set of static
 * basic blocks with a characteristic instruction mix, branch
 * behaviour and memory-access kernel.  SimPoint's job is to discover
 * these phases from the dynamic basic-block stream; the workload
 * engine's job is to synthesise a stream that has them.
 */

#ifndef SPLAB_WORKLOAD_PHASE_HH
#define SPLAB_WORKLOAD_PHASE_HH

#include <string>
#include <vector>

#include "isa/basic_block.hh"
#include "isa/events.hh"
#include "kernels.hh"
#include "support/rng.hh"

namespace splab
{

/** User-facing description of one phase. */
struct PhaseSpec
{
    std::string name = "phase";
    /** Fraction of the whole run spent in this phase (need not be
     *  normalized across phases; the schedule normalizes). */
    double weight = 1.0;

    /// @name Code shape
    /// @{
    MixProfile mix;       ///< instruction-class fractions
    u32 numBlocks = 16;   ///< static basic blocks in this phase
    u32 avgBlockLen = 90; ///< mean instructions per block
    double fpFraction = 0.0; ///< FP share of the NO_MEM instructions
    /// @}

    /// @name Branch behaviour
    /// @{
    /** Fraction of dynamic branches whose direction is
     *  data-dependent (effectively unpredictable). */
    double dataDepBranchFraction = 0.05;
    /// @}

    /// @name Memory behaviour
    /// @{
    KernelKind kernel = KernelKind::Stream;
    u64 workingSetBytes = 1 << 20;
    /**
     * Fraction of memory accesses that hit the phase's stack/locals
     * region (a few KiB, effectively always L1-resident).  Real code
     * spends most of its references there; without this component
     * L1 miss rates are wildly unrealistic.
     */
    double localFraction = 0.6;
    u32 stride = 64;
    double hotFraction = 0.1;
    double hotProbability = 0.9;
    u32 tileBytes = 4096;
    /// @}

    /// @name Within-phase variation
    /// @{
    /** Relative jitter of per-chunk block frequencies; this is what
     *  creates nonzero intra-cluster variance (paper Fig. 4). */
    double blockNoise = 0.25;
    /** Amplitude of a slow sinusoidal drift of block frequencies
     *  across the phase (0 = stationary phase). */
    double drift = 0.0;
    /// @}
};

/**
 * Executable model of a phase: owns its static blocks and generates
 * dynamic events chunk by chunk.
 */
class PhaseModel
{
  public:
    /**
     * @param spec       phase description
     * @param seed       workload-level seed
     * @param phaseIndex index of this phase within the benchmark
     * @param idBase     first BlockId assigned to this phase
     * @param pcBase     code address of the phase's first block
     * @param dataBase   base address of the phase's data segment
     */
    PhaseModel(const PhaseSpec &spec, u64 seed, u32 phaseIndex,
               BlockId idBase, Addr pcBase, Addr dataBase);

    const std::vector<StaticBlock> &blocks() const { return statics; }
    const PhaseSpec &spec() const { return phaseSpec; }

    /** Bytes of code this phase occupies (for PC layout). */
    Addr codeBytes() const { return codeSize; }

    /** Reset deterministic state at a chunk boundary. */
    void beginChunk(u64 chunk);

    /** Sample the next basic block to execute within the chunk. */
    const StaticBlock &pickBlock();

    /**
     * Emit one dynamic execution of @p block, truncated to at most
     * @p maxInstrs instructions.
     *
     * @param block        static block to execute
     * @param maxInstrs    truncation limit (chunk budget)
     * @param genAddresses generate concrete memory addresses
     * @param rec          [out] dynamic block record
     * @param accs         [out] buffer for memory accesses
     * @param nAccs        [out] number of accesses written
     * @param br           [out] branch record (valid if hasBranch)
     * @param hasBranch    [out] block ended in a branch
     */
    void emit(const StaticBlock &block, u32 maxInstrs,
              bool genAddresses, BlockRecord &rec, MemAccess *accs,
              std::size_t &nAccs, BranchRecord &br, bool &hasBranch);

    /** Maximum memory accesses any single block can emit. */
    static constexpr std::size_t kMaxAccessesPerBlock = 1024;

    /** Sentinel: branch run state not yet drawn for this chunk. */
    static constexpr u32 kRunUninit = 0xffffffffu;

  private:
    void buildBlocks(Addr pcBase);
    void rebuildChunkCdf(u64 chunk);

    /** Next stack/locals address (rotating within kStackBytes). */
    Addr
    nextLocal()
    {
        Addr a = stackBase + (stackCursor & (kStackBytes - 1));
        stackCursor += 8;
        return a;
    }

    PhaseSpec phaseSpec;
    u64 seed;
    u32 index;
    BlockId idBase;
    Addr codeSize = 0;

    std::vector<StaticBlock> statics;
    std::vector<double> baseWeight;   ///< stationary block popularity
    std::vector<double> chunkCdf;     ///< per-chunk block CDF
    double pickPhase = 0.0;           ///< systematic-sampling offset
    u64 pickIndex = 0;                ///< picks made in this chunk
    std::vector<double> takenBias;    ///< per-block branch bias
    /** Run-length branch direction state (see emit()): current
     *  direction and remaining run per block. */
    std::vector<u8> brDir;
    std::vector<u32> brRun;

    std::unique_ptr<AddressKernel> kernel;
    Rng rng;    ///< control-stream randomness (lengths, branches)
    /** Separate stream for address decisions so the instruction
     *  stream is bit-identical whether or not addresses are
     *  generated (profiling vs measurement runs). */
    Rng memRng;

    Addr stackBase = 0;   ///< stack/locals region (L1-resident)
    u64 stackCursor = 0;  ///< rotating cursor within the region

    /** Bytes of the per-phase stack/locals region. */
    static constexpr u64 kStackBytes = 8 * 1024;
};

} // namespace splab

#endif // SPLAB_WORKLOAD_PHASE_HH
