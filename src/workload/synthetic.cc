#include "synthetic.hh"

#include "support/logging.hh"

namespace splab
{

namespace
{

/**
 * Generate one chunk's events into @p batch (not cleared here).
 * @p phase must already be positioned with beginChunk(); the fill is
 * a pure function of that state, so the serial run() loop and the
 * parallel GenContext produce identical bytes for the same chunk.
 */
void
fillChunk(PhaseModel &phase, ICount chunkLen, EventBatch &batch,
          bool genAddresses)
{
    BlockRecord rec;
    BranchRecord br;
    ICount budget = chunkLen;
    while (budget > 0) {
        const StaticBlock &blk = phase.pickBlock();
        MemAccess *accBuf =
            batch.reserveAccs(PhaseModel::kMaxAccessesPerBlock);
        std::size_t nAccs = 0;
        bool hasBranch = false;
        phase.emit(blk, static_cast<u32>(budget), genAddresses, rec,
                   accBuf, nAccs, br, hasBranch);
        SPLAB_ASSERT(rec.instrs > 0 && rec.instrs <= budget,
                     "chunk budget violation");
        budget -= rec.instrs;
        batch.push(rec, nAccs, br, hasBranch);
    }
}

} // namespace

SyntheticWorkload::SyntheticWorkload(BenchmarkSpec spec)
    : benchSpec(std::move(spec))
{
    benchSpec.validate();

    // Lay out code and data segments, assign BlockId ranges.
    BlockId idCursor = 0;
    Addr pcCursor = code_layout::kTextBase;
    constexpr Addr kDataSegmentStride = 1ULL << 33; // 8 GiB apart
    Addr dataCursor = 0x100000000ULL;

    std::vector<double> weights;
    for (u32 p = 0; p < benchSpec.phases.size(); ++p) {
        const PhaseSpec &ps = benchSpec.phases[p];
        phaseLayouts.push_back({idCursor, pcCursor, dataCursor});
        auto model = std::make_unique<PhaseModel>(
            ps, benchSpec.seed, p, idCursor, pcCursor, dataCursor);
        idCursor += ps.numBlocks;
        pcCursor += model->codeBytes();
        dataCursor += kDataSegmentStride;
        weights.push_back(ps.weight);
        for (const auto &b : model->blocks())
            allBlocks.push_back(b);
        phaseModels.push_back(std::move(model));
    }

    // Dominant phases (a bwaves-like 60%+ kernel) execute in long
    // stretches, tiny phases in short bursts; scaling the per-phase
    // dwell keeps the boundary-slice share of a dominant phase low
    // without starving sub-percent phases of schedule segments.
    double maxWeight = 0.0, weightSum = 0.0;
    for (double w : weights) {
        maxWeight = w > maxWeight ? w : maxWeight;
        weightSum += w;
    }
    std::vector<double> dwellScale;
    if (weightSum > 0.0 && maxWeight / weightSum > 0.3) {
        for (double w : weights)
            dwellScale.push_back(0.75 + 6.0 * w / weightSum);
    }

    phaseSchedule = std::make_unique<PhaseSchedule>(
        benchSpec.schedule, weights, benchSpec.totalChunks,
        benchSpec.dwellChunks, benchSpec.seed, dwellScale);
}

void
SyntheticWorkload::run(u64 firstChunk, u64 numChunks, EventSink &sink,
                       bool genAddresses)
{
    SPLAB_ASSERT(firstChunk + numChunks <= benchSpec.totalChunks,
                 benchSpec.name, ": chunk window [", firstChunk, ", ",
                 firstChunk + numChunks, ") beyond run of ",
                 benchSpec.totalChunks, " chunks");

    // Binary-search the owning segment once, then scan forward as
    // consecutive chunks walk the segment table.
    const auto &segs = phaseSchedule->segments();
    std::size_t seg = 0;
    {
        std::size_t lo = 0, hi = segs.size();
        while (lo + 1 < hi) {
            std::size_t mid = (lo + hi) / 2;
            if (segs[mid].firstChunk <= firstChunk)
                lo = mid;
            else
                hi = mid;
        }
        seg = lo;
    }

    EventBatch &batch = batchArena;

    for (u64 chunk = firstChunk; chunk < firstChunk + numChunks;
         ++chunk) {
        while (seg + 1 < segs.size() &&
               segs[seg + 1].firstChunk <= chunk)
            ++seg;
        PhaseModel &phase = *phaseModels[segs[seg].phase];
        phase.beginChunk(chunk);

        // Fill one batch per chunk, then deliver it with a single
        // sink call; the accesses of each block are emitted straight
        // into the batch's flattened pool.
        batch.clear();
        fillChunk(phase, benchSpec.chunkLen, batch, genAddresses);
        sink.onBatch(batch);
    }
}

GenContext::GenContext(const SyntheticWorkload &workload)
    : wl(workload)
{
    const BenchmarkSpec &spec = wl.benchSpec;
    models.reserve(spec.phases.size());
    for (u32 p = 0; p < spec.phases.size(); ++p) {
        const SyntheticWorkload::PhaseLayout &lay = wl.phaseLayouts[p];
        models.push_back(std::make_unique<PhaseModel>(
            spec.phases[p], spec.seed, p, lay.idBase, lay.pcBase,
            lay.dataBase));
    }
}

void
GenContext::generateChunk(u64 chunk, EventBatch &batch,
                          bool genAddresses)
{
    SPLAB_ASSERT(chunk < wl.benchSpec.totalChunks,
                 wl.benchSpec.name, ": chunk ", chunk,
                 " beyond run of ", wl.benchSpec.totalChunks);
    // Each chunk resolves its own segment from scratch (a pure
    // binary search over the shared, immutable schedule) — there is
    // no forward-scan cursor to share between parallel workers.
    PhaseModel &phase = *models[wl.phaseSchedule->phaseOf(chunk)];
    phase.beginChunk(chunk);
    batch.clear();
    fillChunk(phase, wl.benchSpec.chunkLen, batch, genAddresses);
    batch.finalizeAggregates();
}

} // namespace splab
