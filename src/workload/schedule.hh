/**
 * @file
 * Phase schedules: which phase is live at each execution chunk.
 *
 * The schedule determines the large-scale temporal structure of a
 * benchmark: whether phases run once each (program stages), recur
 * periodically (outer loops) or alternate irregularly (input-driven
 * behaviour).  SimPoint is agnostic to this structure, but it shapes
 * how many slices land in each cluster.
 */

#ifndef SPLAB_WORKLOAD_SCHEDULE_HH
#define SPLAB_WORKLOAD_SCHEDULE_HH

#include <string>
#include <vector>

#include "support/types.hh"

namespace splab
{

/** Temporal arrangement of phases over the run. */
enum class ScheduleKind : u8
{
    Contiguous = 0, ///< each phase once, in order (program stages)
    Interleaved = 1,///< periodic rotation through the phases
    Markov = 2      ///< random walk with geometric dwell times
};

const std::string &scheduleKindName(ScheduleKind k);

/** A maximal run of chunks executing a single phase. */
struct ScheduleSegment
{
    u64 firstChunk = 0;
    u32 phase = 0;
};

/**
 * Precomputed chunk -> phase mapping.
 *
 * Deterministic in (seed, kind, weights, totalChunks, dwell); lookup
 * is O(log segments) from a cold start and O(1) when scanning
 * forward.
 */
class PhaseSchedule
{
  public:
    /**
     * @param kind        temporal arrangement
     * @param weights     per-phase share of the run (unnormalized)
     * @param totalChunks run length in chunks
     * @param dwellChunks mean chunks per segment (Interleaved/Markov)
     * @param seed        determinism seed
     * @param dwellScale  optional per-phase dwell multiplier
     *        (Markov): phase p's segments average
     *        dwellChunks * dwellScale[p] while its run share stays
     *        weights[p] — dominant phases run in long kernels, tiny
     *        phases in short bursts.  Empty = all 1.0.
     */
    PhaseSchedule(ScheduleKind kind, const std::vector<double> &weights,
                  u64 totalChunks, u64 dwellChunks, u64 seed,
                  const std::vector<double> &dwellScale = {});

    /** Phase live at @p chunk. */
    u32 phaseOf(u64 chunk) const;

    const std::vector<ScheduleSegment> &segments() const
    {
        return segs;
    }

    u64 totalChunks() const { return total; }

    /** Realized fraction of chunks spent in each phase. */
    std::vector<double> realizedWeights() const;

  private:
    void buildContiguous(const std::vector<double> &w);
    void buildInterleaved(const std::vector<double> &w, u64 dwell);
    void buildMarkov(const std::vector<double> &w, u64 dwell, u64 seed,
                     const std::vector<double> &dwellScale);

    std::vector<ScheduleSegment> segs;
    u64 total;
};

} // namespace splab

#endif // SPLAB_WORKLOAD_SCHEDULE_HH
