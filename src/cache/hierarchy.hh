/**
 * @file
 * Four-level cache hierarchy (L1I, L1D, unified L2, unified L3).
 */

#ifndef SPLAB_CACHE_HIERARCHY_HH
#define SPLAB_CACHE_HIERARCHY_HH

#include <array>
#include <memory>
#include <string>

#include "cache.hh"

namespace splab
{

/** Where in the hierarchy a request was satisfied. */
enum class HitLevel : u8
{
    L1 = 0,
    L2 = 1,
    L3 = 2,
    Memory = 3
};

/** Named index of a cache level within the hierarchy. */
enum class CacheLevel : u8
{
    L1I = 0,
    L1D = 1,
    L2 = 2,
    L3 = 3
};

constexpr std::size_t kNumCacheLevels = 4;

const std::string &cacheLevelName(CacheLevel l);

/** Geometry of the whole hierarchy. */
struct HierarchyConfig
{
    CacheParams l1i;
    CacheParams l1d;
    CacheParams l2;
    CacheParams l3;

    /** Combined CacheParams::contentHash() over all four levels. */
    u64 contentHash() const;
};

/**
 * The cache configuration of the paper's Table I, used by the
 * `allcache` pintool experiments (Figures 3 and 8).
 */
HierarchyConfig tableIConfig();

/**
 * The i7-3770 cache geometry from Table III, used by the Sniper
 * timing experiments (Figure 12).
 */
HierarchyConfig tableIIIConfig();

/**
 * Scale the far-cache (L2/L3) capacities down by @p divisor,
 * clamping at one line per set/way.
 *
 * Model-scale experiments replay regions 3000x shorter than the
 * paper's 30M-instruction slices, so full-size far caches could
 * never warm within a region and every sampled replay would be
 * 100% cold — unlike the paper's setup, where regions are large
 * relative to the caches.  Scaling L2/L3 with the region length
 * preserves the region-size : capacity ratio that governs the
 * cold-start effect.  L1 is left untouched: its working set (stack
 * and hot lines) does not shrink with run length.
 */
HierarchyConfig scaleFarCaches(HierarchyConfig cfg, u64 divisor);

/**
 * Inclusive-lookup hierarchy: a miss at level N looks up level N+1.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig &config);

    /** Data reference; walks L1D -> L2 -> L3.  Inline: one call per
     *  dynamic memory access is the hottest edge of the timing
     *  simulator, and the L1 hit case must not pay a call.
     *
     *  An absent-line memo sits in front of the L1D probe: a small
     *  direct-mapped table of line numbers *proven absent* from L1D
     *  (inserted when L1D evicts them, cleared the moment such a
     *  line is re-allocated).  A memo hit means the access is a
     *  guaranteed L1D miss, so the way scan is skipped entirely and
     *  the line is filled probe-free — a large win for repeating
     *  miss lines in the 32-way Table I L1D.  Collisions simply
     *  overwrite (lossy): a missing entry only costs a probe, and a
     *  present entry is always true, so hit/miss counts, replacement
     *  state and downstream traffic are bit-for-bit unchanged.  The
     *  memo is maintained only here — all L1D data traffic must flow
     *  through accessData()/descendData(), never through
     *  levelRef(CacheLevel::L1D).access(). */
    HitLevel
    accessData(Addr addr, bool isWrite)
    {
        u64 line = addr >> l1dLineShift;
        u64 &slot = absentL1d[line & kMemoMask];
        if (slot == line) {
            // Proven absent: clear the entry *before* inserting the
            // eviction's victim (both may map to this very slot),
            // then fill as a counted, probe-free miss.
            slot = SetAssocCache::kNoLine;
            level[1]->fillOnMiss(line, isWrite);
            memoAbsent(level[1]->lastEvictedLine());
            return descendData(addr, isWrite);
        }
        if (level[1]->access(addr, isWrite))
            return HitLevel::L1;
        memoAbsent(level[1]->lastEvictedLine());
        return descendData(addr, isWrite);
    }

    /** Instruction fetch; walks L1I -> L2 -> L3. */
    HitLevel
    accessInstr(Addr pc)
    {
        if (level[0]->access(pc, false))
            return HitLevel::L1;
        if (level[2]->access(pc, false))
            return HitLevel::L2;
        if (level[3]->access(pc, false))
            return HitLevel::L3;
        return HitLevel::Memory;
    }

    /**
     * Continue a data reference past an L1D miss: walks L2 -> L3.
     * Callers that probe L1D directly (via levelRef) use this for the
     * miss-only descent; accessData() == L1D probe + descendData().
     */
    HitLevel descendData(Addr addr, bool isWrite);

    /** Direct access to one level, for batch-mode L1 probe loops. */
    SetAssocCache &levelRef(CacheLevel l)
    {
        return *level[static_cast<u8>(l)];
    }

    /** Enable/disable warm-up (state updates, counters frozen). */
    void setWarmup(bool on);

    /** Drop all cached lines (cold start). */
    void flush();

    /** Zero all counters. */
    void resetStats();

    const CacheStats &levelStats(CacheLevel l) const;
    const CacheParams &levelParams(CacheLevel l) const;

  private:
    /** Record @p line as absent from L1D (it was just evicted). */
    void
    memoAbsent(u64 line)
    {
        if (line != SetAssocCache::kNoLine)
            absentL1d[line & kMemoMask] = line;
    }

    std::array<std::unique_ptr<SetAssocCache>, kNumCacheLevels> level;

    /** Absent-from-L1D memo: direct-mapped, slots hold full line
     *  numbers (kNoLine = empty).  See accessData(). */
    static constexpr u64 kMemoSlots = 8192;
    static constexpr u64 kMemoMask = kMemoSlots - 1;
    std::vector<u64> absentL1d;
    /** Cached L1D bytes-to-line shift for the memo lookup. */
    u32 l1dLineShift;
};

} // namespace splab

#endif // SPLAB_CACHE_HIERARCHY_HH
