/**
 * @file
 * Functional set-associative cache model.
 *
 * This is the substrate behind the paper's `allcache` pintool
 * (functional I+D cache hierarchy simulator): it tracks hits and
 * misses, not timing.  The timing simulator reuses the same model
 * and adds latency on top.
 */

#ifndef SPLAB_CACHE_CACHE_HH
#define SPLAB_CACHE_CACHE_HH

#include <cstring>
#include <string>
#include <vector>

#include "support/types.hh"

namespace splab
{

/** Within-set victim selection policy. */
enum class ReplacementPolicy : u8
{
    LRU = 0,  ///< true LRU (move-to-front recency order)
    FIFO = 1, ///< insertion order; hits do not refresh
};

const char *replacementPolicyName(ReplacementPolicy p);

/** Geometry of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 32 * 1024;
    u32 ways = 8;        ///< 1 = direct-mapped
    u32 lineBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;

    u64 numSets() const { return sizeBytes / (static_cast<u64>(ways) * lineBytes); }

    /**
     * Stable hash of *every* configuration field (geometry and
     * replacement policy alike).  Artifact-cache keys must use this
     * — never a hand-picked subset of fields — so that any config
     * change invalidates dependent cached artifacts.
     */
    u64 contentHash() const;
};

/** Hit/miss counters of one cache level. */
struct CacheStats
{
    u64 accesses = 0;
    u64 misses = 0;
    u64 readAccesses = 0;
    u64 readMisses = 0;
    u64 writeAccesses = 0;
    u64 writeMisses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }

    CacheStats &operator+=(const CacheStats &o);
};

/**
 * One cache level with configurable replacement (true LRU or FIFO
 * insertion order within each set).  Write misses allocate.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up (and on miss, allocate) the line containing @p addr.
     * @return true on hit.
     *
     * Inline fast paths, checked in order:
     *
     * 1. Same line as the previous access.  Every access leaves its
     *    line resident (hits keep it, misses allocate it), so a
     *    repeat is a guaranteed hit — and one that changes no
     *    replacement state under either policy (an LRU hit already
     *    moved the line to the front; FIFO hits never reorder).
     *    Counters only, no probe.
     * 2. Way-0 probe: way 0 holds the most recently used line under
     *    LRU and the newest insertion under FIFO, and a hit there
     *    changes no replacement state under either policy.
     *
     * The full way scan and reordering live out of line.
     */
    bool
    access(Addr addr, bool isWrite)
    {
        u64 line = addr >> lineShift;
        if (line == lastLine) {
            countAccess(isWrite, true);
            return true;
        }
        // accessSlow() allocates on miss, so the line is resident
        // once either branch below returns.
        lastLine = line;
        u64 set = line & setMask;
        u64 tag = line >> tagShift;
        std::size_t base = static_cast<std::size_t>(set) * ways;
        if (tags[base] == tag) {
            countAccess(isWrite, true);
            return true;
        }
        return accessSlow(base, set, tag, isWrite);
    }

    /**
     * Line number of the victim evicted by the most recent miss
     * (kNoLine when the filled way was empty).  Only meaningful
     * immediately after an access() or fillOnMiss() that missed;
     * hits leave it stale.  CacheHierarchy reads it to maintain its
     * absent-from-L1D memo.
     */
    u64 lastEvictedLine() const { return evicted; }

    /**
     * Allocate @p line as a counted miss *without probing the set* —
     * the caller guarantees the line is not resident (see
     * CacheHierarchy's absent-line memo).  State transition, counter
     * effect and victim choice are exactly those of a missing
     * access(); the evicted line is reported via lastEvictedLine().
     */
    void
    fillOnMiss(u64 line, bool isWrite)
    {
        lastLine = line;
        u64 set = line & setMask;
        u64 tag = line >> tagShift;
        u64 *t = &tags[static_cast<std::size_t>(set) * ways];
        u64 victim = t[ways - 1];
        evicted = victim == kNoLine ? kNoLine
                                    : (victim << tagShift) | set;
        std::memmove(t + 1, t, (ways - 1) * sizeof(u64));
        t[0] = tag;
        countAccess(isWrite, false);
    }

    /** Bytes-to-line shift, for callers that key on line numbers. */
    u32 lineBits() const { return lineShift; }

    /** Sentinel no real line number or tag reaches (both are
     *  addresses shifted right, so their top bits are always zero). */
    static constexpr u64 kNoLine = ~u64{0};

    /** When warming, state updates but counters do not. */
    void setWarmup(bool on) { warming = on; }
    bool warmup() const { return warming; }

    /** Invalidate all lines (cold restart); stats are kept. */
    void flush();

    /** Zero the counters; contents are kept. */
    void
    resetStats()
    {
        for (u64 &c : cnt)
            c = 0;
    }

    /** Counters, materialized from the internal 2x2 (write, hit)
     *  matrix (one increment per access on the hot path). */
    const CacheStats &
    statsRef() const
    {
        statsCache.readMisses = cnt[0];
        statsCache.readAccesses = cnt[0] + cnt[1];
        statsCache.writeMisses = cnt[2];
        statsCache.writeAccesses = cnt[2] + cnt[3];
        statsCache.misses = cnt[0] + cnt[2];
        statsCache.accesses = statsCache.readAccesses +
                              statsCache.writeAccesses;
        return statsCache;
    }
    const CacheParams &params() const { return cacheParams; }

  private:
    /** Probe ways [base+1, base+ways) and apply replacement; the
     *  way-0 hit case is handled inline by access(). */
    bool accessSlow(std::size_t base, u64 set, u64 tag,
                    bool isWrite);

    /** One branchless increment into the (write, hit) matrix; the
     *  public CacheStats shape is derived in statsRef(). */
    void
    countAccess(bool isWrite, bool hit)
    {
        if (warming)
            return;
        ++cnt[(static_cast<u32>(isWrite) << 1) |
              static_cast<u32>(hit)];
    }

    CacheParams cacheParams;
    u64 setMask;
    u32 lineShift;
    /** Right-shift turning a line number into a tag: log2(numSets),
     *  precomputed once (recomputing it per access costs a loop on
     *  the hottest path of the whole simulator). */
    u32 tagShift;
    u32 ways;

    /** Line number of the previous access; kNoLine after a flush.
     *  See access() fast path 1. */
    u64 lastLine;
    /** Victim line of the most recent miss; see lastEvictedLine(). */
    u64 evicted = kNoLine;

    /** tags[set * ways + i], most recently used first; empty ways
     *  hold kNoLine, so the probe is one equality scan with no
     *  separate validity array. */
    std::vector<u64> tags;

    /** cnt[write*2 + hit]: read-miss, read-hit, write-miss,
     *  write-hit. */
    u64 cnt[4] = {0, 0, 0, 0};
    /** Scratch for statsRef()'s materialized view. */
    mutable CacheStats statsCache;
    bool warming = false;
};

} // namespace splab

#endif // SPLAB_CACHE_CACHE_HH
