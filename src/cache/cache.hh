/**
 * @file
 * Functional set-associative cache model.
 *
 * This is the substrate behind the paper's `allcache` pintool
 * (functional I+D cache hierarchy simulator): it tracks hits and
 * misses, not timing.  The timing simulator reuses the same model
 * and adds latency on top.
 */

#ifndef SPLAB_CACHE_CACHE_HH
#define SPLAB_CACHE_CACHE_HH

#include <string>
#include <vector>

#include "support/types.hh"

namespace splab
{

/** Within-set victim selection policy. */
enum class ReplacementPolicy : u8
{
    LRU = 0,  ///< true LRU (move-to-front recency order)
    FIFO = 1, ///< insertion order; hits do not refresh
};

const char *replacementPolicyName(ReplacementPolicy p);

/** Geometry of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 32 * 1024;
    u32 ways = 8;        ///< 1 = direct-mapped
    u32 lineBytes = 64;
    ReplacementPolicy replacement = ReplacementPolicy::LRU;

    u64 numSets() const { return sizeBytes / (static_cast<u64>(ways) * lineBytes); }

    /**
     * Stable hash of *every* configuration field (geometry and
     * replacement policy alike).  Artifact-cache keys must use this
     * — never a hand-picked subset of fields — so that any config
     * change invalidates dependent cached artifacts.
     */
    u64 contentHash() const;
};

/** Hit/miss counters of one cache level. */
struct CacheStats
{
    u64 accesses = 0;
    u64 misses = 0;
    u64 readAccesses = 0;
    u64 readMisses = 0;
    u64 writeAccesses = 0;
    u64 writeMisses = 0;

    double
    missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }

    CacheStats &operator+=(const CacheStats &o);
};

/**
 * One cache level with configurable replacement (true LRU or FIFO
 * insertion order within each set).  Write misses allocate.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Look up (and on miss, allocate) the line containing @p addr.
     * @return true on hit.
     */
    bool access(Addr addr, bool isWrite);

    /** When warming, state updates but counters do not. */
    void setWarmup(bool on) { warming = on; }
    bool warmup() const { return warming; }

    /** Invalidate all lines (cold restart); stats are kept. */
    void flush();

    /** Zero the counters; contents are kept. */
    void resetStats() { stats = CacheStats(); }

    const CacheStats &statsRef() const { return stats; }
    const CacheParams &params() const { return cacheParams; }

  private:
    CacheParams cacheParams;
    u64 setMask;
    u32 lineShift;
    u32 ways;

    /** tags[set * ways + i], most recently used first. */
    std::vector<u64> tags;
    std::vector<u8> valid;

    CacheStats stats;
    bool warming = false;
};

} // namespace splab

#endif // SPLAB_CACHE_CACHE_HH
