#include "cache.hh"

#include <cstring>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/serialize.hh"

namespace splab
{

const char *
replacementPolicyName(ReplacementPolicy p)
{
    switch (p) {
      case ReplacementPolicy::LRU:
        return "lru";
      case ReplacementPolicy::FIFO:
        return "fifo";
    }
    return "unknown";
}

u64
CacheParams::contentHash() const
{
    ByteWriter w;
    w.putString(name);
    w.put<u64>(sizeBytes);
    w.put<u32>(ways);
    w.put<u32>(lineBytes);
    w.put<u8>(static_cast<u8>(replacement));
    return hashBytes(w.bytes().data(), w.bytes().size());
}

CacheStats &
CacheStats::operator+=(const CacheStats &o)
{
    accesses += o.accesses;
    misses += o.misses;
    readAccesses += o.readAccesses;
    readMisses += o.readMisses;
    writeAccesses += o.writeAccesses;
    writeMisses += o.writeMisses;
    return *this;
}

namespace
{

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

u32
log2u(u64 v)
{
    u32 n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheParams &params)
    : cacheParams(params), ways(params.ways), lastLine(kNoLine)
{
    SPLAB_ASSERT(params.ways >= 1, params.name, ": ways must be >= 1");
    SPLAB_ASSERT(isPow2(params.lineBytes),
                 params.name, ": line size must be a power of two");
    u64 sets = params.numSets();
    SPLAB_ASSERT(sets >= 1 && isPow2(sets),
                 params.name, ": set count ", sets,
                 " must be a nonzero power of two");
    setMask = sets - 1;
    lineShift = log2u(params.lineBytes);
    tagShift = log2u(sets);
    tags.assign(sets * ways, kNoLine);
}

bool
SetAssocCache::accessSlow(std::size_t base, u64 set, u64 tag,
                          bool isWrite)
{
    u64 *t = &tags[base];

    // Way 0 was already probed (and missed) by the inline fast path.
    // Empty ways hold kNoLine, which no real tag equals, so the scan
    // needs no validity checks.
    bool hit = false;
    u32 pos = 0;
    for (u32 i = 1; i < ways; ++i) {
        if (t[i] == tag) {
            hit = true;
            pos = i;
            break;
        }
    }

    if (hit) {
        // LRU refreshes recency by moving the line to the front;
        // FIFO keeps insertion order, so a hit changes nothing.
        if (cacheParams.replacement == ReplacementPolicy::LRU) {
            std::memmove(t + 1, t, pos * sizeof(u64));
            t[0] = tag;
        }
    } else {
        // Both policies fill at the front and evict the last slot:
        // under LRU that is the least recently used line, under FIFO
        // the oldest insertion.
        u64 victim = t[ways - 1];
        evicted = victim == kNoLine ? kNoLine
                                    : (victim << tagShift) | set;
        std::memmove(t + 1, t, (ways - 1) * sizeof(u64));
        t[0] = tag;
    }

    countAccess(isWrite, hit);
    return hit;
}

void
SetAssocCache::flush()
{
    tags.assign(tags.size(), kNoLine);
    lastLine = kNoLine; // the memoized line is no longer resident
    evicted = kNoLine;
}

} // namespace splab
