#include "hierarchy.hh"

#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

u64
HierarchyConfig::contentHash() const
{
    u64 k = l1i.contentHash();
    k = hashCombine(k, l1d.contentHash());
    k = hashCombine(k, l2.contentHash());
    k = hashCombine(k, l3.contentHash());
    return k;
}

const std::string &
cacheLevelName(CacheLevel l)
{
    static const std::array<std::string, kNumCacheLevels> names = {
        "L1I", "L1D", "L2", "L3"};
    return names[static_cast<u8>(l)];
}

HierarchyConfig
tableIConfig()
{
    // Table I: ALLCACHE SIMULATOR CONFIGURATION.
    HierarchyConfig c;
    c.l1i = {"L1I", 32 * 1024, 32, 32};
    c.l1d = {"L1D", 32 * 1024, 32, 32};
    c.l2 = {"L2", 2 * 1024 * 1024, 1, 32};   // direct-mapped
    c.l3 = {"L3", 16 * 1024 * 1024, 1, 32};  // direct-mapped
    return c;
}

HierarchyConfig
tableIIIConfig()
{
    // Table III: cache geometry of the modelled i7-3770.
    HierarchyConfig c;
    c.l1i = {"L1I", 32 * 1024, 8, 64};
    c.l1d = {"L1D", 32 * 1024, 8, 64};
    c.l2 = {"L2", 256 * 1024, 8, 64};
    c.l3 = {"L3", 8 * 1024 * 1024, 16, 64};
    return c;
}

HierarchyConfig
scaleFarCaches(HierarchyConfig cfg, u64 divisor)
{
    SPLAB_ASSERT(divisor >= 1, "cache scale divisor must be >= 1");
    for (CacheParams *p : {&cfg.l2, &cfg.l3}) {
        u64 minSize = static_cast<u64>(p->ways) * p->lineBytes;
        u64 scaled = p->sizeBytes / divisor;
        // Keep the set count a power of two.
        u64 size = minSize;
        while (size * 2 <= scaled)
            size *= 2;
        p->sizeBytes = size;
    }
    return cfg;
}

CacheHierarchy::CacheHierarchy(const HierarchyConfig &config)
{
    level[0] = std::make_unique<SetAssocCache>(config.l1i);
    level[1] = std::make_unique<SetAssocCache>(config.l1d);
    level[2] = std::make_unique<SetAssocCache>(config.l2);
    level[3] = std::make_unique<SetAssocCache>(config.l3);
    absentL1d.assign(kMemoSlots, SetAssocCache::kNoLine);
    l1dLineShift = level[1]->lineBits();
}

HitLevel
CacheHierarchy::descendData(Addr addr, bool isWrite)
{
    if (level[2]->access(addr, isWrite))
        return HitLevel::L2;
    if (level[3]->access(addr, isWrite))
        return HitLevel::L3;
    return HitLevel::Memory;
}

void
CacheHierarchy::setWarmup(bool on)
{
    for (auto &c : level)
        c->setWarmup(on);
}

void
CacheHierarchy::flush()
{
    for (auto &c : level)
        c->flush();
    // Every line is now absent, so the memo entries are all still
    // true — but a flush marks a cold restart, so start the memo
    // cold as well rather than carry warmth across runs.
    absentL1d.assign(kMemoSlots, SetAssocCache::kNoLine);
}

void
CacheHierarchy::resetStats()
{
    for (auto &c : level)
        c->resetStats();
}

const CacheStats &
CacheHierarchy::levelStats(CacheLevel l) const
{
    return level[static_cast<u8>(l)]->statsRef();
}

const CacheParams &
CacheHierarchy::levelParams(CacheLevel l) const
{
    return level[static_cast<u8>(l)]->params();
}

} // namespace splab
