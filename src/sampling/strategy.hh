/**
 * @file
 * The SamplingStrategy contract: region selection as a pluggable,
 * artifact-graph-keyable stage.
 *
 * A strategy consumes the per-slice observables the fused pass
 * already produces (the BBV profile; run shape) and returns a
 * RegionSelection.  The contract (see DESIGN.md section 11):
 *
 *  - select() is a pure function of (inputs, knobs): byte-identical
 *    at any SPLAB_THREADS and across processes;
 *  - regions come back sorted by startSlice with normalize()d
 *    weights (one shared rational normalization — see region.hh);
 *  - configHash() covers exactly the knobs select() reads, so the
 *    artifact graph's Regions node key is strategy-salted and
 *    config-slice-hashed: changing an *inactive* strategy's knob
 *    never invalidates cached selections;
 *  - per-strategy counters ("sampling.<name>.regions_selected",
 *    ".pilot_slices", ".warmup_slices_budgeted") accumulate work
 *    performed, never scheduling, so manifests stay thread-count
 *    invariant.
 *
 * Strategies are named ("simpoint", "smarts", "stratified",
 * "ranked_set", "random", "stride") and built through the
 * string-keyed registry (makeStrategy); ExperimentConfig
 * .withStrategy("smarts") is the config-level spelling.
 */

#ifndef SPLAB_SAMPLING_STRATEGY_HH
#define SPLAB_SAMPLING_STRATEGY_HH

#include <memory>
#include <string>
#include <vector>

#include "region.hh"
#include "simpoint/simpoint.hh"

namespace splab
{

namespace obs
{
class RunManifest;
}

/** The six region-selection strategies. */
enum class StrategyKind : u8
{
    Simpoint = 0, ///< BBV clustering (the paper's methodology)
    Smarts,       ///< SMARTS-style systematic unit sampling
    Stratified,   ///< Ekman two-phase stratified sampling
    RankedSet,    ///< ranked-set sampling w/ repeated subsampling
    Random,       ///< uniform random slices (behaviour-oblivious)
    Stride,       ///< evenly spaced slices (behaviour-oblivious)
};

constexpr std::size_t kNumStrategies = 6;

/** Stable strategy name ("simpoint", "ranked_set", ...). */
const char *strategyName(StrategyKind k);

/** Inverse of strategyName(); fatal() on an unknown name. */
StrategyKind strategyByName(const std::string &name);

/** All strategy names, in enum order (bench/table iteration). */
const std::vector<std::string> &strategyNames();

/** Per-strategy version salt folded into the Regions artifact key
 *  (bump when a strategy's selection algorithm changes). */
u64 strategySalt(StrategyKind k);

/** SMARTS-style systematic sampling knobs (cf. SMARTSim's
 *  sampling_k / sampling_munit / sampling_wunit / sampling_allwarm,
 *  scaled from instructions to model slices). */
struct SmartsConfig
{
    /** Sampling interval: measure one unit out of every k. */
    u64 k = 30;
    /** Measurement-unit length in slices. */
    u64 munit = 1;
    /** Detailed warm-up unit: slices functionally warmed
     *  immediately before each measurement unit. */
    u64 wunit = 2;
    /** Warm the whole gap between consecutive measurement units
     *  (continuous functional warming) instead of just wunit. */
    bool allwarm = false;

    u64 contentHash() const;
};

/** Ekman-style two-phase stratified sampling knobs. */
struct StratifiedConfig
{
    /** Number of strata over the pilot observable. */
    u32 strata = 8;
    /** Total second-phase regions, allocated across strata
     *  proportionally to stratum population. */
    u32 budget = 32;
    /** Pilot pass measures every pilotStride-th slice. */
    u32 pilotStride = 4;
    /** Observable-projection seed. */
    u64 seed = 42;

    u64 contentHash() const;
};

/** Ranked-set sampling with repeated subsampling knobs. */
struct RankedSetConfig
{
    /** Set size r: r random candidates ranked per selection, and r
     *  rank positions cycled through. */
    u32 setSize = 5;
    /** Ranked-set cycles per subsample (r selections each). */
    u32 cycles = 6;
    /** Repeated-subsampling rounds; selections pool with
     *  multiplicity. */
    u32 subsamples = 4;
    u64 seed = 42;

    u64 contentHash() const;
};

/** Uniform random sampling knobs. */
struct RandomConfig
{
    u32 n = 30; ///< regions (slices) to draw
    u64 seed = 42;

    u64 contentHash() const;
};

/** Evenly-spaced (stride) sampling knobs. */
struct StrideConfig
{
    u32 n = 30; ///< regions (slices) to place

    u64 contentHash() const;
};

/**
 * The strategy axis of an ExperimentConfig: which strategy is
 * active, plus every strategy's knobs.  Only the active strategy's
 * knobs enter activeHash() — the Regions artifact key must not move
 * when an inactive strategy's knob does.  The SimPoint strategy's
 * knobs live in ExperimentConfig::simpoint (SimPointConfig), not
 * here, to keep one source of truth.
 */
struct SamplingConfig
{
    StrategyKind strategy = StrategyKind::Simpoint;
    SmartsConfig smarts;
    StratifiedConfig stratified;
    RankedSetConfig rankedSet;
    RandomConfig random;
    StrideConfig stride;

    /** Strategy-salted hash of the *active* strategy's knobs
     *  (simpoint knobs supplied by the caller). */
    u64 activeHash(const SimPointConfig &simpoint) const;
};

/** What a strategy selects from. */
struct StrategyInputs
{
    /** Per-slice BBVs (null for behaviour-oblivious strategies
     *  invoked without a profile). */
    const std::vector<FrequencyVector> *bbvs = nullptr;
    u64 totalSlices = 0;
    ICount sliceInstrs = 0;
};

/** Abstract region-selection strategy; see the file comment for the
 *  contract. */
class SamplingStrategy
{
  public:
    virtual ~SamplingStrategy() = default;

    virtual StrategyKind kind() const = 0;
    const char *name() const { return strategyName(kind()); }

    /** Hash of exactly the knobs select() reads. */
    virtual u64 configHash() const = 0;

    /** Select regions; sorted, normalized, deterministic. */
    virtual RegionSelection select(const StrategyInputs &in) const
        = 0;

    /** Dump the active knobs into a run manifest
     *  ("sampling.<knob>" keys). */
    virtual void describe(obs::RunManifest &m) const = 0;
};

/**
 * String-keyed registry: build the strategy selected by @p cfg.
 * @p simpoint supplies the SimPoint strategy's knobs (and the slice
 * length every strategy inherits).
 */
std::unique_ptr<SamplingStrategy>
makeStrategy(const SamplingConfig &cfg,
             const SimPointConfig &simpoint);

/** Registry lookup by name; every other field of @p cfg supplies
 *  the knobs.  Fatal on an unknown name. */
std::unique_ptr<SamplingStrategy>
makeStrategy(const std::string &name, const SamplingConfig &cfg,
             const SimPointConfig &simpoint);

/**
 * Account a finished selection to the per-strategy counters.
 * Called exactly once per select() (strategies do this themselves;
 * the artifact graph's projection path for the SimPoints node calls
 * it directly).
 */
void accountSelection(StrategyKind k, const RegionSelection &sel);

/// @name SimPointResult bridging
/// @{
/**
 * View a SimPoint selection as a RegionSelection: one single-slice
 * region per point, count = cluster population, weight copied
 * verbatim (SimPoint weights are already the rational
 * count/totalSlices — no re-normalization, so subset selections
 * with deliberately unnormalized weights pass through unchanged).
 */
RegionSelection regionsFromSimPoints(const SimPointResult &sp);

/**
 * Compatibility shim for SimPointResult-shaped consumers: slice =
 * startSlice, clusterSize = count, weight copied verbatim.  Region
 * lengths and warm-up prescriptions do not survive this view — the
 * pinball path (Logger::makeRegional on the RegionSelection) is the
 * lossless one.
 */
SimPointResult simPointsFromRegions(const RegionSelection &sel);
/// @}

/// @name RegionSelection (de)serialization for the artifact cache
/// @{
class ByteReader;
class ByteWriter;
void serializeRegions(ByteWriter &w, const RegionSelection &sel);
RegionSelection deserializeRegions(ByteReader &r);
/// @}

} // namespace splab

#endif // SPLAB_SAMPLING_STRATEGY_HH
