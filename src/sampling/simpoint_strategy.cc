#include "strategies.hh"

#include "obs/manifest.hh"
#include "support/env.hh"
#include "support/logging.hh"

namespace splab
{

SimPointResult
SimpointStrategy::pick(const std::vector<FrequencyVector> &bbvs) const
{
    return pickSimPoints(bbvs, cfg);
}

SimPointResult
SimpointStrategy::pickForcedK(
    const std::vector<FrequencyVector> &bbvs, u32 k) const
{
    return pickSimPointsForcedK(bbvs, cfg, k);
}

RegionSelection
SimpointStrategy::select(const StrategyInputs &in) const
{
    SPLAB_ASSERT(in.bbvs != nullptr,
                 "simpoint strategy needs a BBV profile");
    RegionSelection sel = regionsFromSimPoints(pick(*in.bbvs));
    accountSelection(kind(), sel);
    return sel;
}

void
SimpointStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.simpoint.max_k", cfg.maxK);
    m.setConfig("sampling.simpoint.seed", cfg.seed);
    // Recorded for provenance only: accel on/off yields bit-identical
    // clustering output, so this never participates in artifact keys.
    m.setConfig("sampling.simpoint.kmeans_accel",
                kmeansAccelEnabled() ? 1 : 0);
}

} // namespace splab
