#include <algorithm>
#include <numeric>

#include "obs/manifest.hh"
#include "observable.hh"
#include "strategies.hh"
#include "support/logging.hh"

namespace splab
{

/**
 * Ekman-style two-phase stratified sampling.
 *
 * Phase 1 (pilot): measure every pilotStride-th slice's observable
 * (here the 1-D BBV projection — the pilot cost is still charged to
 * the reduction factor as pilotSlices) and place equal-frequency
 * stratum boundaries at the pilot quantiles.
 *
 * Phase 2: assign every slice to its stratum, allocate the region
 * budget across strata proportionally to stratum population
 * (largest-remainder rounding, at least one region per non-empty
 * stratum), and within each stratum pick the middle slice of each
 * of m_s equal contiguous spans of the stratum's member list.
 * Region counts are the exact span populations, so counts sum to
 * totalSlices and normalize() reconstructs the stratified estimator
 * weights exactly.
 */
RegionSelection
StratifiedStrategy::select(const StrategyInputs &in) const
{
    SPLAB_ASSERT(in.bbvs != nullptr,
                 "stratified strategy needs a BBV profile");
    SPLAB_ASSERT(in.totalSlices == in.bbvs->size(),
                 "stratified: BBV profile does not cover the run");
    const u64 n = in.totalSlices;
    std::vector<double> obs = sliceObservable(*in.bbvs, cfg.seed);

    RegionSelection sel;
    sel.totalSlices = n;
    sel.sliceInstrs = in.sliceInstrs;

    // Phase 1: strided pilot pass -> quantile stratum boundaries.
    u64 stride = std::max<u32>(1, cfg.pilotStride);
    std::vector<double> pilot;
    for (u64 i = 0; i < n; i += stride)
        pilot.push_back(obs[i]);
    sel.pilotSlices = pilot.size();
    std::sort(pilot.begin(), pilot.end());

    u32 strata = std::max<u32>(1, cfg.strata);
    std::vector<double> bounds;
    for (u32 j = 1; j < strata; ++j)
        bounds.push_back(
            pilot[static_cast<std::size_t>(j) * pilot.size() /
                  strata]);

    // Phase 2: full assignment + proportional allocation.
    std::vector<std::vector<SliceIndex>> members(strata);
    for (u64 i = 0; i < n; ++i) {
        auto it = std::upper_bound(bounds.begin(), bounds.end(),
                                   obs[i]);
        members[static_cast<std::size_t>(it - bounds.begin())]
            .push_back(i);
    }

    u32 nonEmpty = 0;
    for (const auto &m : members)
        nonEmpty += !m.empty();
    u64 budget = std::max<u64>(cfg.budget, nonEmpty);
    budget = std::min<u64>(budget, n);

    // Largest-remainder apportionment of the budget by population,
    // then clamp into [1, population] per non-empty stratum.
    std::vector<u64> alloc(strata, 0), rem(strata, 0);
    u64 given = 0;
    for (u32 s = 0; s < strata; ++s) {
        if (members[s].empty())
            continue;
        u64 exact = members[s].size() * budget;
        alloc[s] = exact / n;
        rem[s] = exact % n;
        given += alloc[s];
    }
    std::vector<u32> order;
    for (u32 s = 0; s < strata; ++s)
        if (!members[s].empty())
            order.push_back(s);
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        if (rem[a] != rem[b])
            return rem[a] > rem[b];
        return a < b;
    });
    for (std::size_t i = 0; given < budget; ++i)
        ++alloc[order[i % order.size()]], ++given;
    for (u32 s : order)
        alloc[s] = std::clamp<u64>(alloc[s], 1, members[s].size());

    // One region per allocation span: the middle member represents
    // the span, the span population is its exact weight numerator.
    for (u32 s = 0; s < strata; ++s) {
        const auto &mem = members[s];
        u64 m = alloc[s];
        if (mem.empty() || m == 0)
            continue;
        u64 base = mem.size() / m, extra = mem.size() % m;
        u64 pos = 0;
        for (u64 seg = 0; seg < m; ++seg) {
            u64 len = base + (seg < extra ? 1 : 0);
            Region r;
            r.startSlice = mem[pos + len / 2];
            r.lengthSlices = 1;
            r.count = len;
            r.cluster = s;
            sel.regions.push_back(r);
            pos += len;
        }
    }
    sel.sortByStart();
    sel.normalize();
    accountSelection(kind(), sel);
    return sel;
}

void
StratifiedStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.stratified.strata", cfg.strata);
    m.setConfig("sampling.stratified.budget", cfg.budget);
    m.setConfig("sampling.stratified.pilot_stride",
                cfg.pilotStride);
    m.setConfig("sampling.stratified.seed", cfg.seed);
}

} // namespace splab
