/**
 * @file
 * Thin forwarding shim keeping the legacy simpoint/baselines.hh
 * entry points alive: the implementations moved behind the
 * SamplingStrategy interface (baseline_strategies.cc), and these
 * wrappers reproduce the historical SimPointResult shape
 * bit-for-bit (weights 1/n, clusterSize totalSlices/n).
 */

#include "simpoint/baselines.hh"
#include "strategies.hh"

namespace splab
{

SimPointResult
systematicSample(u64 totalSlices, ICount sliceInstrs, u32 n)
{
    StrategyInputs in{nullptr, totalSlices, sliceInstrs};
    StrideConfig cfg;
    cfg.n = n;
    return simPointsFromRegions(StrideStrategy(cfg).select(in));
}

SimPointResult
randomSample(u64 totalSlices, ICount sliceInstrs, u32 n, u64 seed)
{
    StrategyInputs in{nullptr, totalSlices, sliceInstrs};
    RandomConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    return simPointsFromRegions(RandomStrategy(cfg).select(in));
}

} // namespace splab
