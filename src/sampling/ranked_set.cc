#include <algorithm>
#include <map>

#include "obs/manifest.hh"
#include "observable.hh"
#include "strategies.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

/**
 * Ranked-set sampling with repeated subsampling.
 *
 * One ranked-set cycle draws r sets of r candidate slices; the j-th
 * set contributes its j-th order statistic under the 1-D observable
 * (ranking is cheap — it never simulates — so each selection costs
 * one measured slice but spreads over the observable's
 * distribution).  A subsample is m such cycles; the whole selection
 * pools B independent subsamples, merging repeated slices by
 * multiplicity, so counts sum to exactly B*m*r and normalize()
 * yields the repeated-subsampling mean estimator's weights.
 */
RegionSelection
RankedSetStrategy::select(const StrategyInputs &in) const
{
    SPLAB_ASSERT(in.bbvs != nullptr,
                 "ranked_set strategy needs a BBV profile");
    SPLAB_ASSERT(in.totalSlices == in.bbvs->size(),
                 "ranked_set: BBV profile does not cover the run");
    const u64 n = in.totalSlices;
    std::vector<double> obs = sliceObservable(*in.bbvs, cfg.seed);

    u32 r = std::max<u32>(1, cfg.setSize);
    if (r > n)
        r = static_cast<u32>(n);
    u32 cycles = std::max<u32>(1, cfg.cycles);
    u32 subs = std::max<u32>(1, cfg.subsamples);

    // slice -> (multiplicity, rank label of first selection);
    // std::map keeps the merged selection in slice order.
    std::map<SliceIndex, std::pair<u64, u32>> picked;
    std::vector<SliceIndex> set(r);
    for (u32 b = 0; b < subs; ++b) {
        Rng rng(cfg.seed, hashCombine(0x72735362ULL, b));
        for (u32 c = 0; c < cycles; ++c) {
            for (u32 j = 0; j < r; ++j) {
                // r distinct candidates per set (rejection; r << n
                // in realistic uses).
                for (u32 i = 0; i < r; ++i) {
                    SliceIndex s;
                    do {
                        s = rng.below(n);
                    } while (std::find(set.begin(),
                                       set.begin() + i, s) !=
                             set.begin() + i);
                    set[i] = s;
                }
                // j-th order statistic of the observable (ties by
                // slice index — total, deterministic order).
                std::sort(set.begin(), set.end(),
                          [&](SliceIndex a, SliceIndex c2) {
                              if (obs[a] != obs[c2])
                                  return obs[a] < obs[c2];
                              return a < c2;
                          });
                auto [it, fresh] =
                    picked.try_emplace(set[j], 0, j);
                ++it->second.first;
                (void)fresh;
            }
        }
    }

    RegionSelection sel;
    sel.totalSlices = n;
    sel.sliceInstrs = in.sliceInstrs;
    sel.regions.reserve(picked.size());
    for (const auto &[slice, cl] : picked) {
        Region reg;
        reg.startSlice = slice;
        reg.lengthSlices = 1;
        reg.count = cl.first;
        reg.cluster = cl.second;
        sel.regions.push_back(reg);
    }
    sel.normalize();
    accountSelection(kind(), sel);
    return sel;
}

void
RankedSetStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.ranked_set.set_size", cfg.setSize);
    m.setConfig("sampling.ranked_set.cycles", cfg.cycles);
    m.setConfig("sampling.ranked_set.subsamples", cfg.subsamples);
    m.setConfig("sampling.ranked_set.seed", cfg.seed);
}

} // namespace splab
