/**
 * @file
 * The uniform output of every sampling strategy: a RegionSelection.
 *
 * A Region names a contiguous run of slices to measure, how many
 * slices of the whole run it stands for (its integer count — the
 * exact numerator of its weight), and an optional functional warm-up
 * prefix.  RegionSelection::normalize() is the single shared
 * weight-normalization: weight_i = count_i / sum(count) as one
 * correctly-rounded double division per region, so every weight is
 * bit-equal to the rational reconstruction used by extrapolation
 * (no strategy re-normalizes on its own — the duplication this file
 * replaces drifted by ulps between SimPoint and the baselines).
 *
 * Header-only on purpose: only support/types.hh is needed, so
 * splab_simpoint can consume it without a link-time dependency on
 * splab_sampling (which links splab_simpoint).
 */

#ifndef SPLAB_SAMPLING_REGION_HH
#define SPLAB_SAMPLING_REGION_HH

#include <algorithm>
#include <vector>

#include "support/types.hh"

namespace splab
{

/** One selected region: a contiguous run of slices plus weight. */
struct Region
{
    SliceIndex startSlice = 0; ///< first measured slice
    u64 lengthSlices = 1;      ///< measured length in slices
    /** How many whole-run slices this region stands for — the exact
     *  integer numerator of its weight (cluster population for
     *  behaviour-aware strategies, selection multiplicity for
     *  ranked-set, stratum share for stratified). */
    u64 count = 1;
    double weight = 0.0; ///< count / sum(count); see normalize()
    u32 cluster = 0;     ///< cluster / stratum / rank label
    /** Functional warm-up prefix prescribed by the strategy, in
     *  slices immediately preceding startSlice (0 = use the
     *  experiment-wide warm-up budget on warm replays). */
    u64 warmupSlices = 0;
};

/** What a SamplingStrategy returns: the regions plus run shape. */
struct RegionSelection
{
    std::vector<Region> regions; ///< sorted by startSlice
    u64 totalSlices = 0;         ///< slices in the whole run
    ICount sliceInstrs = 0;      ///< slice length (model instrs)
    /** Slices the strategy itself executed to decide (pilot pass of
     *  stratified sampling); charged to the reduction factor. */
    u64 pilotSlices = 0;

    /** Sum of the integer weight numerators. */
    u64
    countTotal() const
    {
        u64 t = 0;
        for (const Region &r : regions)
            t += r.count;
        return t;
    }

    /** Slices actually measured (sum of region lengths). */
    u64
    measuredSlices() const
    {
        u64 t = 0;
        for (const Region &r : regions)
            t += r.lengthSlices;
        return t;
    }

    /**
     * Warm-up slices budgeted across all regions: each region's own
     * prescription, or @p fallbackSlices where it has none (the
     * experiment-wide budget), clamped to the slices actually
     * available before the region.
     */
    u64
    warmupSlicesTotal(u64 fallbackSlices) const
    {
        u64 t = 0;
        for (const Region &r : regions) {
            u64 w = r.warmupSlices > 0 ? r.warmupSlices
                                       : fallbackSlices;
            t += std::min<u64>(w, r.startSlice);
        }
        return t;
    }

    /** Sum of (already normalized) weights. */
    double
    totalWeight() const
    {
        double s = 0.0;
        for (const Region &r : regions)
            s += r.weight;
        return s;
    }

    /**
     * The shared weight normalization: weight_i = count_i / total
     * where total = sum(count), one correctly-rounded division per
     * region.  Equal real operands give equal doubles, so any caller
     * reconstructing count_i / total independently lands on the same
     * bits (0 ulp) — the exact-sum contract tested in
     * test_sampling.cc.
     */
    void
    normalize()
    {
        u64 total = countTotal();
        if (total == 0)
            return;
        double denom = static_cast<double>(total);
        for (Region &r : regions)
            r.weight = static_cast<double>(r.count) / denom;
    }

    /** Sort regions by start slice (ties by cluster label) — the
     *  ordering guarantee of the SamplingStrategy contract. */
    void
    sortByStart()
    {
        std::sort(regions.begin(), regions.end(),
                  [](const Region &a, const Region &b) {
                      if (a.startSlice != b.startSlice)
                          return a.startSlice < b.startSlice;
                      return a.cluster < b.cluster;
                  });
    }

    /**
     * Strategy-aware reduction factor: whole-run slices over every
     * slice the methodology executes — measured regions, warm-up
     * prefixes (@p fallbackWarmupSlices where not prescribed) and
     * the pilot pass.
     */
    double
    reductionFactor(u64 fallbackWarmupSlices) const
    {
        u64 spent = measuredSlices() +
                    warmupSlicesTotal(fallbackWarmupSlices) +
                    pilotSlices;
        if (spent == 0)
            return 0.0;
        return static_cast<double>(totalSlices) /
               static_cast<double>(spent);
    }
};

} // namespace splab

#endif // SPLAB_SAMPLING_REGION_HH
