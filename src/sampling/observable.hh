/**
 * @file
 * The scalar per-slice observable the distribution-based strategies
 * (stratified, ranked-set) stratify and rank on: a 1-dimensional
 * random projection of the L1-normalized BBV.  One dimension keeps
 * ranking and quantile strata well-defined while still separating
 * program phases (Johnson-Lindenstrauss at D=1 is lossy, but phase
 * separation only needs a consistent ordering, not distances).
 */

#ifndef SPLAB_SAMPLING_OBSERVABLE_HH
#define SPLAB_SAMPLING_OBSERVABLE_HH

#include <vector>

#include "simpoint/bbv.hh"

namespace splab
{

/** One scalar per slice; deterministic in (bbvs, seed). */
std::vector<double>
sliceObservable(const std::vector<FrequencyVector> &bbvs, u64 seed);

} // namespace splab

#endif // SPLAB_SAMPLING_OBSERVABLE_HH
