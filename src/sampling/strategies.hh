/**
 * @file
 * The six concrete SamplingStrategy implementations.  Construction
 * normally goes through the registry (makeStrategy in strategy.hh);
 * the concrete types are exposed for tests and for callers that
 * need strategy-specific entry points (SimpointStrategy::pick keeps
 * the k-sweep diagnostics a plain RegionSelection cannot carry).
 */

#ifndef SPLAB_SAMPLING_STRATEGIES_HH
#define SPLAB_SAMPLING_STRATEGIES_HH

#include "strategy.hh"

namespace splab
{

/** The paper's methodology behind the common interface: BBV
 *  clustering with BIC model selection (src/simpoint). */
class SimpointStrategy : public SamplingStrategy
{
  public:
    explicit SimpointStrategy(SimPointConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::Simpoint;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

    /** Full selection including the k-sweep diagnostics. */
    SimPointResult
    pick(const std::vector<FrequencyVector> &bbvs) const;

    /** Forced-k variant (sensitivity sweeps; no BIC). */
    SimPointResult
    pickForcedK(const std::vector<FrequencyVector> &bbvs,
                u32 k) const;

  private:
    SimPointConfig cfg;
};

/** SMARTS-style systematic sampling over measurement units. */
class SmartsStrategy : public SamplingStrategy
{
  public:
    explicit SmartsStrategy(SmartsConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::Smarts;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

  private:
    SmartsConfig cfg;
};

/** Ekman two-phase stratified sampling: strided pilot pass ->
 *  equal-frequency strata over a 1-D observable -> proportional
 *  second-phase allocation. */
class StratifiedStrategy : public SamplingStrategy
{
  public:
    explicit StratifiedStrategy(StratifiedConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::Stratified;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

  private:
    StratifiedConfig cfg;
};

/** Ranked-set sampling with repeated subsampling: rank r random
 *  candidates per draw, keep the cycling order statistic, pool
 *  subsample rounds with multiplicity. */
class RankedSetStrategy : public SamplingStrategy
{
  public:
    explicit RankedSetStrategy(RankedSetConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::RankedSet;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

  private:
    RankedSetConfig cfg;
};

/** Uniform random slice sampling (behaviour-oblivious baseline). */
class RandomStrategy : public SamplingStrategy
{
  public:
    explicit RandomStrategy(RandomConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::Random;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

  private:
    RandomConfig cfg;
};

/** Evenly-spaced slice sampling (behaviour-oblivious baseline,
 *  first sample at stride/2, SMARTS-style). */
class StrideStrategy : public SamplingStrategy
{
  public:
    explicit StrideStrategy(StrideConfig cfg) : cfg(cfg) {}

    StrategyKind kind() const override
    {
        return StrategyKind::Stride;
    }
    u64 configHash() const override { return cfg.contentHash(); }
    RegionSelection select(const StrategyInputs &in) const override;
    void describe(obs::RunManifest &m) const override;

  private:
    StrideConfig cfg;
};

} // namespace splab

#endif // SPLAB_SAMPLING_STRATEGIES_HH
