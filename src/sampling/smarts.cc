#include <algorithm>

#include "obs/manifest.hh"
#include "strategies.hh"
#include "support/logging.hh"

namespace splab
{

/**
 * SMARTS systematic sampling: carve the run into measurement units
 * of munit slices, measure every k-th unit starting mid-interval
 * (offset k/2), and prescribe per-region functional warm-up — a
 * wunit-slice prefix, or the whole inter-unit gap when allwarm is
 * set (SMARTSim's continuous functional warming).  Units are
 * weighted by measured length, which equals equal-unit weighting
 * except for a clamped tail unit.
 */
RegionSelection
SmartsStrategy::select(const StrategyInputs &in) const
{
    SPLAB_ASSERT(in.totalSlices > 0, "smarts: empty run");
    u64 munit = std::max<u64>(1, cfg.munit);
    u64 k = std::max<u64>(1, cfg.k);
    u64 totalUnits = std::max<u64>(1, in.totalSlices / munit);
    u64 offset = std::min<u64>(k / 2, totalUnits - 1);

    RegionSelection sel;
    sel.totalSlices = in.totalSlices;
    sel.sliceInstrs = in.sliceInstrs;

    u64 prevEnd = 0;
    u32 unitIdx = 0;
    for (u64 u = offset; u < totalUnits; u += k) {
        Region r;
        r.startSlice = u * munit;
        r.lengthSlices =
            std::min<u64>(munit, in.totalSlices - r.startSlice);
        r.count = r.lengthSlices;
        r.cluster = unitIdx++;
        r.warmupSlices = cfg.allwarm ? r.startSlice - prevEnd
                                     : std::min<u64>(cfg.wunit,
                                                     r.startSlice);
        prevEnd = r.startSlice + r.lengthSlices;
        sel.regions.push_back(r);
    }
    sel.normalize();
    accountSelection(kind(), sel);
    return sel;
}

void
SmartsStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.smarts.k", cfg.k);
    m.setConfig("sampling.smarts.munit", cfg.munit);
    m.setConfig("sampling.smarts.wunit", cfg.wunit);
    m.setConfig("sampling.smarts.allwarm", cfg.allwarm);
}

} // namespace splab
