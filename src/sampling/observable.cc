#include "observable.hh"

#include "simpoint/projection.hh"
#include "support/rng.hh"

namespace splab
{

std::vector<double>
sliceObservable(const std::vector<FrequencyVector> &bbvs, u64 seed)
{
    RandomProjection proj(1, hashCombine(seed, 0x0b5eULL));
    DenseMatrix m = proj.projectAllNormalized(bbvs);
    std::vector<double> out(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i)
        out[i] = m.row(i)[0];
    return out;
}

} // namespace splab
