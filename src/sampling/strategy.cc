#include "strategy.hh"

#include <array>

#include "obs/counters.hh"
#include "strategies.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/serialize.hh"

namespace splab
{

namespace
{

constexpr std::array<const char *, kNumStrategies> kNames = {
    "simpoint", "smarts", "stratified", "ranked_set",
    "random",   "stride",
};

/** Per-strategy version salts ("rsel" + strategy id + revision);
 *  bump the low digits when a strategy's algorithm changes. */
constexpr std::array<u64, kNumStrategies> kSalts = {
    0x7273656c'73700001ULL, // simpoint
    0x7273656c'736d0001ULL, // smarts
    0x7273656c'73740001ULL, // stratified
    0x7273656c'726b0001ULL, // ranked_set
    0x7273656c'726e0001ULL, // random
    0x7273656c'73720001ULL, // stride
};

} // namespace

const char *
strategyName(StrategyKind k)
{
    return kNames[static_cast<u8>(k)];
}

StrategyKind
strategyByName(const std::string &name)
{
    for (std::size_t i = 0; i < kNumStrategies; ++i)
        if (name == kNames[i])
            return static_cast<StrategyKind>(i);
    SPLAB_FATAL("unknown sampling strategy \"", name,
                "\" (expected simpoint|smarts|stratified|"
                "ranked_set|random|stride)");
}

const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names(kNames.begin(),
                                                kNames.end());
    return names;
}

u64
strategySalt(StrategyKind k)
{
    return kSalts[static_cast<u8>(k)];
}

u64
SmartsConfig::contentHash() const
{
    ByteWriter w;
    w.put<u64>(k);
    w.put<u64>(munit);
    w.put<u64>(wunit);
    w.put<u8>(allwarm ? 1 : 0);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

u64
StratifiedConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(strata);
    w.put<u32>(budget);
    w.put<u32>(pilotStride);
    w.put<u64>(seed);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

u64
RankedSetConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(setSize);
    w.put<u32>(cycles);
    w.put<u32>(subsamples);
    w.put<u64>(seed);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

u64
RandomConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(n);
    w.put<u64>(seed);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

u64
StrideConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(n);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

u64
SamplingConfig::activeHash(const SimPointConfig &simpoint) const
{
    u64 knobs = 0;
    switch (strategy) {
      case StrategyKind::Simpoint:
        knobs = simpoint.contentHash();
        break;
      case StrategyKind::Smarts:
        knobs = smarts.contentHash();
        break;
      case StrategyKind::Stratified:
        knobs = stratified.contentHash();
        break;
      case StrategyKind::RankedSet:
        knobs = rankedSet.contentHash();
        break;
      case StrategyKind::Random:
        knobs = random.contentHash();
        break;
      case StrategyKind::Stride:
        knobs = stride.contentHash();
        break;
    }
    return hashCombine(strategySalt(strategy), knobs);
}

std::unique_ptr<SamplingStrategy>
makeStrategy(const SamplingConfig &cfg,
             const SimPointConfig &simpoint)
{
    switch (cfg.strategy) {
      case StrategyKind::Simpoint:
        return std::make_unique<SimpointStrategy>(simpoint);
      case StrategyKind::Smarts:
        return std::make_unique<SmartsStrategy>(cfg.smarts);
      case StrategyKind::Stratified:
        return std::make_unique<StratifiedStrategy>(cfg.stratified);
      case StrategyKind::RankedSet:
        return std::make_unique<RankedSetStrategy>(cfg.rankedSet);
      case StrategyKind::Random:
        return std::make_unique<RandomStrategy>(cfg.random);
      case StrategyKind::Stride:
        return std::make_unique<StrideStrategy>(cfg.stride);
    }
    SPLAB_FATAL("unknown strategy kind ",
                static_cast<int>(static_cast<u8>(cfg.strategy)));
}

std::unique_ptr<SamplingStrategy>
makeStrategy(const std::string &name, const SamplingConfig &cfg,
             const SimPointConfig &simpoint)
{
    SamplingConfig named = cfg;
    named.strategy = strategyByName(name);
    return makeStrategy(named, simpoint);
}

void
accountSelection(StrategyKind k, const RegionSelection &sel)
{
    std::string base = std::string("sampling.") + strategyName(k);
    obs::counter(base + ".regions_selected",
                 "regions selected by this strategy")
        .add(sel.regions.size());
    if (sel.pilotSlices > 0)
        obs::counter(base + ".pilot_instrs",
                     "pilot-pass instructions charged to the "
                     "reduction factor")
            .add(sel.pilotSlices * sel.sliceInstrs);
    u64 warm = 0;
    for (const Region &r : sel.regions)
        warm += std::min<u64>(r.warmupSlices, r.startSlice);
    if (warm > 0)
        obs::counter(base + ".warmup_instrs_budgeted",
                     "strategy-prescribed warm-up instructions")
            .add(warm * sel.sliceInstrs);
}

RegionSelection
regionsFromSimPoints(const SimPointResult &sp)
{
    RegionSelection sel;
    sel.totalSlices = sp.totalSlices;
    sel.sliceInstrs = sp.sliceInstrs;
    sel.regions.reserve(sp.points.size());
    for (const SimPoint &p : sp.points) {
        Region r;
        r.startSlice = p.slice;
        r.lengthSlices = 1;
        r.count = p.clusterSize;
        r.weight = p.weight; // verbatim; see strategy.hh
        r.cluster = p.cluster;
        sel.regions.push_back(r);
    }
    return sel;
}

SimPointResult
simPointsFromRegions(const RegionSelection &sel)
{
    SimPointResult sp;
    sp.totalSlices = sel.totalSlices;
    sp.sliceInstrs = sel.sliceInstrs;
    sp.chosenK = static_cast<u32>(sel.regions.size());
    sp.points.reserve(sel.regions.size());
    for (const Region &r : sel.regions) {
        SimPoint p;
        p.slice = r.startSlice;
        p.weight = r.weight;
        p.cluster = r.cluster;
        p.clusterSize = r.count;
        sp.points.push_back(p);
    }
    return sp;
}

// Region carries internal padding (u32 cluster before a u64), so
// selections serialize field by field like SimPoints do — memcpying
// the struct would embed uninitialized padding bytes in cached
// blobs.

void
serializeRegions(ByteWriter &w, const RegionSelection &sel)
{
    w.put<u64>(sel.totalSlices);
    w.put<u64>(sel.sliceInstrs);
    w.put<u64>(sel.pilotSlices);
    w.put<u64>(sel.regions.size());
    for (const Region &r : sel.regions) {
        w.put<u64>(r.startSlice);
        w.put<u64>(r.lengthSlices);
        w.put<u64>(r.count);
        w.put<double>(r.weight);
        w.put<u32>(r.cluster);
        w.put<u64>(r.warmupSlices);
    }
}

RegionSelection
deserializeRegions(ByteReader &r)
{
    RegionSelection sel;
    sel.totalSlices = r.get<u64>();
    sel.sliceInstrs = r.get<u64>();
    sel.pilotSlices = r.get<u64>();
    sel.regions.resize(r.get<u64>());
    for (Region &reg : sel.regions) {
        reg.startSlice = r.get<u64>();
        reg.lengthSlices = r.get<u64>();
        reg.count = r.get<u64>();
        reg.weight = r.get<double>();
        reg.cluster = r.get<u32>();
        reg.warmupSlices = r.get<u64>();
    }
    return sel;
}

} // namespace splab
