#include <algorithm>

#include "obs/manifest.hh"
#include "strategies.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

namespace
{

/**
 * Shared tail of the behaviour-oblivious baselines: sorted distinct
 * slices become single-slice regions with equal counts.  The count
 * is totalSlices / n (the per-region share the old baselines
 * reported as clusterSize), so normalize() yields exactly the old
 * 1/n weights: count / (n * count) is the same real number, hence
 * the same correctly-rounded double.
 */
RegionSelection
fromSlices(std::vector<SliceIndex> slices, const StrategyInputs &in)
{
    std::sort(slices.begin(), slices.end());
    slices.erase(std::unique(slices.begin(), slices.end()),
                 slices.end());
    RegionSelection sel;
    sel.totalSlices = in.totalSlices;
    sel.sliceInstrs = in.sliceInstrs;
    u64 share = in.totalSlices / slices.size();
    for (u32 i = 0; i < slices.size(); ++i) {
        Region r;
        r.startSlice = slices[i];
        r.lengthSlices = 1;
        r.count = share;
        r.cluster = i;
        sel.regions.push_back(r);
    }
    sel.normalize();
    return sel;
}

u32
clampBudget(u32 n, u64 totalSlices, const char *who)
{
    SPLAB_ASSERT(totalSlices > 0, who, ": empty run");
    SPLAB_ASSERT(n > 0, who, ": need n >= 1");
    if (n > totalSlices)
        n = static_cast<u32>(totalSlices);
    return n;
}

} // namespace

RegionSelection
StrideStrategy::select(const StrategyInputs &in) const
{
    u32 n = clampBudget(cfg.n, in.totalSlices, "stride");
    std::vector<SliceIndex> slices;
    double stride = static_cast<double>(in.totalSlices) /
                    static_cast<double>(n);
    for (u32 i = 0; i < n; ++i) {
        auto s = static_cast<SliceIndex>(
            (static_cast<double>(i) + 0.5) * stride);
        if (s >= in.totalSlices)
            s = in.totalSlices - 1;
        slices.push_back(s);
    }
    RegionSelection sel = fromSlices(std::move(slices), in);
    accountSelection(kind(), sel);
    return sel;
}

void
StrideStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.stride.n", cfg.n);
}

RegionSelection
RandomStrategy::select(const StrategyInputs &in) const
{
    u32 n = clampBudget(cfg.n, in.totalSlices, "random");
    Rng rng(cfg.seed, 0x5a3eULL);
    std::vector<SliceIndex> slices;
    // Rejection sampling without replacement; n << totalSlices in
    // all realistic uses, so this terminates quickly.
    while (slices.size() < n) {
        SliceIndex s = rng.below(in.totalSlices);
        if (std::find(slices.begin(), slices.end(), s) ==
            slices.end())
            slices.push_back(s);
    }
    RegionSelection sel = fromSlices(std::move(slices), in);
    accountSelection(kind(), sel);
    return sel;
}

void
RandomStrategy::describe(obs::RunManifest &m) const
{
    m.setConfig("sampling.strategy", name());
    m.setConfig("sampling.random.n", cfg.n);
    m.setConfig("sampling.random.seed", cfg.seed);
}

} // namespace splab
