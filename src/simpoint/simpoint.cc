#include "simpoint.hh"

#include <algorithm>
#include <limits>

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/serialize.hh"

namespace splab
{

u64
SimPointConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(maxK);
    w.put<u64>(sliceInstrs);
    w.put<u32>(projectionDim);
    w.put<double>(bicFraction);
    w.put<int>(restarts);
    w.put<int>(maxIters);
    w.put<u32>(sampleCap);
    w.put<double>(mergeThreshold);
    w.put<u64>(seed);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

double
SimPointResult::totalWeight() const
{
    double s = 0.0;
    for (const auto &p : points)
        s += p.weight;
    return s;
}

std::vector<SimPoint>
SimPointResult::byDescendingWeight() const
{
    std::vector<SimPoint> sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.slice < b.slice;
              });
    return sorted;
}

std::vector<SimPoint>
SimPointResult::topByWeight(double quantile) const
{
    std::vector<SimPoint> sorted = byDescendingWeight();
    double total = totalWeight();
    std::vector<SimPoint> kept;
    double acc = 0.0;
    for (const auto &p : sorted) {
        kept.push_back(p);
        acc += p.weight;
        if (acc >= quantile * total - 1e-12)
            break;
    }
    return kept;
}

namespace
{

/** Strided deterministic sub-sample of [0, n). */
std::vector<u32>
strideSample(std::size_t n, u32 cap)
{
    std::vector<u32> idx;
    if (n <= cap) {
        idx.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = static_cast<u32>(i);
        return idx;
    }
    idx.reserve(cap);
    double step = static_cast<double>(n) / static_cast<double>(cap);
    for (u32 i = 0; i < cap; ++i)
        idx.push_back(static_cast<u32>(
            static_cast<double>(i) * step));
    return idx;
}

/** Union-find with path halving. */
u32
findRoot(std::vector<u32> &parent, u32 x)
{
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

/** Build the final result from a fit over the sample. */
SimPointResult
finalize(const KMeansResult &fit,
         const std::vector<std::vector<double>> &allProjected,
         const std::vector<std::vector<double>> &samplePoints,
         const SimPointConfig &cfg)
{
    SimPointResult res;
    res.totalSlices = allProjected.size();
    res.sliceInstrs = cfg.sliceInstrs;

    const std::size_t dim = allProjected[0].size();

    // Pass 1: assign every slice (not just the sample) to its
    // nearest k-means centroid.
    std::vector<u32> rawAssign(allProjected.size(), 0);
    std::vector<u64> population(fit.k, 0);
    std::vector<std::vector<double>> distances(fit.k);
    for (std::size_t i = 0; i < allProjected.size(); ++i) {
        double best = std::numeric_limits<double>::max();
        u32 bestC = 0;
        for (u32 c = 0; c < fit.k; ++c) {
            double d = squaredDistance(allProjected[i],
                                       fit.centroids[c]);
            if (d < best) {
                best = d;
                bestC = c;
            }
        }
        rawAssign[i] = bestC;
        ++population[bestC];
        distances[bestC].push_back(best);
    }

    // Merge clusters whose centroids overlap within their own
    // spread (see SimPointConfig::mergeThreshold).  Spread is the
    // *core* (20%-trimmed) variance: a tight cluster stays tight
    // even when a few phase-boundary mixture slices were assigned
    // to it, so genuinely distinct small phases do not merge.
    std::vector<u32> parent(fit.k);
    for (u32 c = 0; c < fit.k; ++c)
        parent[c] = c;
    if (cfg.mergeThreshold > 0.0) {
        std::vector<double> variance(fit.k, 0.0);
        for (u32 c = 0; c < fit.k; ++c) {
            if (population[c] == 0)
                continue;
            std::sort(distances[c].begin(), distances[c].end());
            std::size_t keep =
                std::max<std::size_t>(1, distances[c].size() * 8 / 10);
            double s = 0.0;
            for (std::size_t i = 0; i < keep; ++i)
                s += distances[c][i];
            variance[c] = s / static_cast<double>(keep);
        }
        for (u32 i = 0; i < fit.k; ++i) {
            if (population[i] == 0)
                continue;
            for (u32 j = i + 1; j < fit.k; ++j) {
                if (population[j] == 0)
                    continue;
                double sep = squaredDistance(fit.centroids[i],
                                             fit.centroids[j]);
                if (sep < cfg.mergeThreshold *
                              (variance[i] + variance[j]))
                    parent[findRoot(parent, j)] =
                        findRoot(parent, i);
            }
        }
    }

    // Compact group ids and compute merged centroids
    // (population-weighted averages of the k-means centroids).
    std::vector<u32> groupOf(fit.k, 0);
    std::vector<std::vector<double>> groupCentroid;
    std::vector<u64> groupPop;
    std::vector<i64> groupIdOfRoot(fit.k, -1);
    for (u32 c = 0; c < fit.k; ++c) {
        if (population[c] == 0)
            continue;
        u32 root = findRoot(parent, c);
        if (groupIdOfRoot[root] < 0) {
            groupIdOfRoot[root] =
                static_cast<i64>(groupCentroid.size());
            groupCentroid.emplace_back(dim, 0.0);
            groupPop.push_back(0);
        }
        u32 g = static_cast<u32>(groupIdOfRoot[root]);
        groupOf[c] = g;
        double w = static_cast<double>(population[c]);
        for (std::size_t d = 0; d < dim; ++d)
            groupCentroid[g][d] += w * fit.centroids[c][d];
        groupPop[g] += population[c];
    }
    for (std::size_t g = 0; g < groupCentroid.size(); ++g)
        for (std::size_t d = 0; d < dim; ++d)
            groupCentroid[g][d] /=
                static_cast<double>(groupPop[g]);

    // Pass 2: relabel slices, pick the representative (closest to
    // the merged centroid) and the within-group variance.
    std::size_t nGroups = groupCentroid.size();
    res.chosenK = static_cast<u32>(nGroups);
    res.sliceToCluster.assign(allProjected.size(), 0);
    std::vector<double> bestDist(
        nGroups, std::numeric_limits<double>::max());
    std::vector<SliceIndex> representative(nGroups, 0);
    std::vector<double> groupSumDist(nGroups, 0.0);
    for (std::size_t i = 0; i < allProjected.size(); ++i) {
        u32 g = groupOf[rawAssign[i]];
        res.sliceToCluster[i] = g;
        double d =
            squaredDistance(allProjected[i], groupCentroid[g]);
        groupSumDist[g] += d;
        if (d < bestDist[g]) {
            bestDist[g] = d;
            representative[g] = i;
        }
    }

    double total = static_cast<double>(allProjected.size());
    for (u32 g = 0; g < nGroups; ++g) {
        SimPoint p;
        p.slice = representative[g];
        p.cluster = g;
        p.clusterSize = groupPop[g];
        p.weight = static_cast<double>(groupPop[g]) / total;
        p.variance =
            groupSumDist[g] / static_cast<double>(groupPop[g]);
        res.points.push_back(p);
    }
    std::sort(res.points.begin(), res.points.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  return a.slice < b.slice;
              });
    // Cluster ids in points must track the sorted order's identity;
    // they already name the group labels used in sliceToCluster.
    (void)samplePoints;
    return res;
}

} // namespace

SimPointResult
pickSimPoints(const std::vector<FrequencyVector> &bbvs,
              const SimPointConfig &cfg)
{
    SPLAB_ASSERT(!bbvs.empty(), "simpoint: no slices");

    // Normalize + project every slice.
    std::vector<FrequencyVector> norm = bbvs;
    for (auto &v : norm)
        v.normalize();
    RandomProjection proj(cfg.projectionDim,
                          hashCombine(cfg.seed, 0x9e37ULL));
    auto projected = proj.projectAll(norm);

    // Cluster on a strided sub-sample for tractability.
    auto sampleIdx = strideSample(projected.size(), cfg.sampleCap);
    std::vector<std::vector<double>> sample;
    sample.reserve(sampleIdx.size());
    for (u32 i : sampleIdx)
        sample.push_back(projected[i]);

    u32 maxK = cfg.maxK;
    if (maxK > sample.size())
        maxK = static_cast<u32>(sample.size());

    std::vector<KMeansResult> fits;
    std::vector<double> scores;
    SimPointResult res;
    fits.reserve(maxK);
    for (u32 k = 1; k <= maxK; ++k) {
        KMeansResult fit =
            kmeansBestOf(sample, k, hashCombine(cfg.seed, k),
                         cfg.restarts, cfg.maxIters);
        double bic = bicScore(fit, sample);
        res.sweep.push_back({k, bic, fit.distortion,
                             fit.avgClusterVariance(sample)});
        scores.push_back(bic);
        fits.push_back(std::move(fit));
    }

    std::size_t pick = pickByBicFraction(scores, cfg.bicFraction);
    SimPointResult out =
        finalize(fits[pick], projected, sample, cfg);
    out.sweep = std::move(res.sweep);
    return out;
}

SimPointResult
pickSimPointsForcedK(const std::vector<FrequencyVector> &bbvs,
                     const SimPointConfig &cfg, u32 k)
{
    SPLAB_ASSERT(!bbvs.empty(), "simpoint: no slices");
    SPLAB_ASSERT(k >= 1, "simpoint: forced k must be >= 1");

    std::vector<FrequencyVector> norm = bbvs;
    for (auto &v : norm)
        v.normalize();
    RandomProjection proj(cfg.projectionDim,
                          hashCombine(cfg.seed, 0x9e37ULL));
    auto projected = proj.projectAll(norm);

    auto sampleIdx = strideSample(projected.size(), cfg.sampleCap);
    std::vector<std::vector<double>> sample;
    sample.reserve(sampleIdx.size());
    for (u32 i : sampleIdx)
        sample.push_back(projected[i]);

    KMeansResult fit =
        kmeansBestOf(sample, k, hashCombine(cfg.seed, k),
                     cfg.restarts, cfg.maxIters);
    SimPointResult out = finalize(fit, projected, sample, cfg);
    out.sweep.push_back({fit.k, bicScore(fit, sample),
                         fit.distortion,
                         fit.avgClusterVariance(sample)});
    return out;
}

} // namespace splab
