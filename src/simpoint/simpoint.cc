#include "simpoint.hh"

#include <algorithm>
#include <limits>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "sampling/region.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"

namespace splab
{

u64
SimPointConfig::contentHash() const
{
    ByteWriter w;
    w.put<u32>(maxK);
    w.put<u64>(sliceInstrs);
    w.put<u32>(projectionDim);
    w.put<double>(bicFraction);
    w.put<int>(restarts);
    w.put<int>(maxIters);
    w.put<u32>(sampleCap);
    w.put<double>(mergeThreshold);
    w.put<u64>(seed);
    return hashBytes(w.bytes().data(), w.bytes().size());
}

double
SimPointResult::totalWeight() const
{
    double s = 0.0;
    for (const auto &p : points)
        s += p.weight;
    return s;
}

std::vector<SimPoint>
SimPointResult::byDescendingWeight() const
{
    std::vector<SimPoint> sorted = points;
    std::sort(sorted.begin(), sorted.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  if (a.weight != b.weight)
                      return a.weight > b.weight;
                  return a.slice < b.slice;
              });
    return sorted;
}

std::vector<SimPoint>
SimPointResult::topByWeight(double quantile) const
{
    std::vector<SimPoint> sorted = byDescendingWeight();
    double total = totalWeight();
    std::vector<SimPoint> kept;
    double acc = 0.0;
    for (const auto &p : sorted) {
        kept.push_back(p);
        acc += p.weight;
        if (acc >= quantile * total - 1e-12)
            break;
    }
    return kept;
}

namespace
{

/** Slices per finalize-pass chunk; a pure constant so the reduction
 *  order never depends on the thread count. */
constexpr std::size_t kSliceChunk = 1024;

/**
 * Strided deterministic sub-sample of [0, n): strictly increasing
 * indices, at most cap of them.  When cap is close to n the
 * floating-point stride rounds several slots onto the same index;
 * such collisions are bumped to the next free index instead of
 * duplicating sample rows.
 */
std::vector<u32>
strideSample(std::size_t n, u32 cap)
{
    std::vector<u32> idx;
    // A zero cap would return an empty sample and trip the
    // downstream "kmeans: no points" assert; one representative
    // slice is the smallest meaningful clustering input.
    if (cap == 0)
        cap = 1;
    if (n <= cap) {
        idx.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = static_cast<u32>(i);
        return idx;
    }
    idx.reserve(cap);
    double step = static_cast<double>(n) / static_cast<double>(cap);
    for (u32 i = 0; i < cap; ++i) {
        u32 v = static_cast<u32>(static_cast<double>(i) * step);
        if (!idx.empty() && v <= idx.back())
            v = idx.back() + 1;
        if (v >= n)
            break;
        idx.push_back(v);
    }
    return idx;
}

/** Normalized + projected slices, and the clustering sub-sample. */
struct ClusterInputs
{
    DenseMatrix projected; ///< one row per slice
    DenseMatrix sample;    ///< strided sub-sample of the rows
};

/**
 * The shared preamble of SimPoint selection: L1-normalize every BBV
 * during projection (no normalized copy is materialised), then carve
 * out the strided clustering sample.
 */
ClusterInputs
prepareClusterInputs(const std::vector<FrequencyVector> &bbvs,
                     const SimPointConfig &cfg)
{
    ClusterInputs in;
    RandomProjection proj(cfg.projectionDim,
                          hashCombine(cfg.seed, 0x9e37ULL));
    in.projected = proj.projectAllNormalized(bbvs);

    auto sampleIdx = strideSample(in.projected.rows(), cfg.sampleCap);
    in.sample.reset(sampleIdx.size(), in.projected.cols());
    for (std::size_t i = 0; i < sampleIdx.size(); ++i)
        in.sample.setRow(i, in.projected.row(sampleIdx[i]));
    return in;
}

/** Union-find with path halving. */
u32
findRoot(std::vector<u32> &parent, u32 x)
{
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    return x;
}

/** Build the final result from a fit over the sample. */
SimPointResult
finalize(const KMeansResult &fit, const DenseMatrix &allProjected,
         const SimPointConfig &cfg)
{
    obs::TraceSpan span("simpoint.finalize");
    SimPointResult res;
    res.totalSlices = allProjected.rows();
    res.sliceInstrs = cfg.sliceInstrs;

    const std::size_t n = allProjected.rows();
    const std::size_t dim = allProjected.cols();

    // Pass 1: assign every slice (not just the sample) to its
    // nearest k-means centroid.  The centroids are fixed here, so
    // the scan goes through the pruned NearestCentroids kernel
    // (results bit-identical to the brute scan; see kmeans.hh).
    // Chunks accumulate private population counts and per-cluster
    // distance lists; the chunk-order reduction below concatenates
    // the lists in slice order, exactly as a serial scan would.
    struct Pass1Accum
    {
        std::vector<u64> population;
        std::vector<std::vector<double>> distances;
        DistanceKernelStats stats;
    };
    DistanceKernelStats pass1Stats;
    NearestCentroids nearest(fit.centroids, kmeansAccelEnabled(),
                             &pass1Stats);
    std::vector<u32> rawAssign(n, 0);
    auto pass1 = parallelChunkApply<Pass1Accum>(
        n, kSliceChunk, [&](Pass1Accum &a, const ChunkRange &r) {
            a.population.assign(fit.k, 0);
            a.distances.assign(fit.k, {});
            for (std::size_t i = r.begin; i < r.end; ++i) {
                double best = 0.0;
                u32 bestC = nearest.nearest(allProjected.row(i),
                                            best, a.stats);
                rawAssign[i] = bestC;
                ++a.population[bestC];
                a.distances[bestC].push_back(best);
            }
        });
    std::vector<u64> population(fit.k, 0);
    std::vector<std::vector<double>> distances(fit.k);
    for (const Pass1Accum &a : pass1) {
        pass1Stats.merge(a.stats);
        for (u32 c = 0; c < fit.k; ++c) {
            population[c] += a.population[c];
            distances[c].insert(distances[c].end(),
                                a.distances[c].begin(),
                                a.distances[c].end());
        }
    }
    accountDistanceKernel(pass1Stats);

    // Merge clusters whose centroids overlap within their own
    // spread (see SimPointConfig::mergeThreshold).  Spread is the
    // *core* (20%-trimmed) variance: a tight cluster stays tight
    // even when a few phase-boundary mixture slices were assigned
    // to it, so genuinely distinct small phases do not merge.
    std::vector<u32> parent(fit.k);
    for (u32 c = 0; c < fit.k; ++c)
        parent[c] = c;
    if (cfg.mergeThreshold > 0.0) {
        std::vector<double> variance(fit.k, 0.0);
        for (u32 c = 0; c < fit.k; ++c) {
            if (population[c] == 0)
                continue;
            std::sort(distances[c].begin(), distances[c].end());
            std::size_t keep =
                std::max<std::size_t>(1, distances[c].size() * 8 / 10);
            double s = 0.0;
            for (std::size_t i = 0; i < keep; ++i)
                s += distances[c][i];
            variance[c] = s / static_cast<double>(keep);
        }
        for (u32 i = 0; i < fit.k; ++i) {
            if (population[i] == 0)
                continue;
            for (u32 j = i + 1; j < fit.k; ++j) {
                if (population[j] == 0)
                    continue;
                double sep = squaredDistance(fit.centroids.row(i),
                                             fit.centroids.row(j),
                                             dim);
                if (sep < cfg.mergeThreshold *
                              (variance[i] + variance[j]))
                    parent[findRoot(parent, j)] =
                        findRoot(parent, i);
            }
        }
    }

    // Compact group ids and compute merged centroids
    // (population-weighted averages of the k-means centroids).
    std::vector<u32> groupOf(fit.k, 0);
    std::vector<std::vector<double>> groupCentroid;
    std::vector<u64> groupPop;
    std::vector<i64> groupIdOfRoot(fit.k, -1);
    for (u32 c = 0; c < fit.k; ++c) {
        if (population[c] == 0)
            continue;
        u32 root = findRoot(parent, c);
        if (groupIdOfRoot[root] < 0) {
            groupIdOfRoot[root] =
                static_cast<i64>(groupCentroid.size());
            groupCentroid.emplace_back(dim, 0.0);
            groupPop.push_back(0);
        }
        u32 g = static_cast<u32>(groupIdOfRoot[root]);
        groupOf[c] = g;
        double w = static_cast<double>(population[c]);
        const double *cent = fit.centroids.row(c);
        for (std::size_t d = 0; d < dim; ++d)
            groupCentroid[g][d] += w * cent[d];
        groupPop[g] += population[c];
    }
    for (std::size_t g = 0; g < groupCentroid.size(); ++g)
        for (std::size_t d = 0; d < dim; ++d)
            groupCentroid[g][d] /=
                static_cast<double>(groupPop[g]);

    // Pass 2: relabel slices, pick the representative (closest to
    // the merged centroid) and the within-group variance.  Again
    // chunked with an ordered reduction: strict < comparisons keep
    // the earliest-slice representative on ties, matching the
    // serial scan.
    std::size_t nGroups = groupCentroid.size();
    res.chosenK = static_cast<u32>(nGroups);
    res.sliceToCluster.assign(n, 0);
    struct Pass2Accum
    {
        std::vector<double> bestDist;
        std::vector<SliceIndex> representative;
        std::vector<double> sumDist;
    };
    auto pass2 = parallelChunkApply<Pass2Accum>(
        n, kSliceChunk, [&](Pass2Accum &a, const ChunkRange &r) {
            a.bestDist.assign(nGroups,
                              std::numeric_limits<double>::max());
            a.representative.assign(nGroups, 0);
            a.sumDist.assign(nGroups, 0.0);
            for (std::size_t i = r.begin; i < r.end; ++i) {
                u32 g = groupOf[rawAssign[i]];
                res.sliceToCluster[i] = g;
                double d =
                    squaredDistance(allProjected.row(i),
                                    groupCentroid[g].data(), dim);
                a.sumDist[g] += d;
                if (d < a.bestDist[g]) {
                    a.bestDist[g] = d;
                    a.representative[g] = i;
                }
            }
        });
    std::vector<double> bestDist(
        nGroups, std::numeric_limits<double>::max());
    std::vector<SliceIndex> representative(nGroups, 0);
    std::vector<double> groupSumDist(nGroups, 0.0);
    for (const Pass2Accum &a : pass2)
        for (std::size_t g = 0; g < nGroups; ++g) {
            groupSumDist[g] += a.sumDist[g];
            if (a.bestDist[g] < bestDist[g]) {
                bestDist[g] = a.bestDist[g];
                representative[g] = a.representative[g];
            }
        }

    // Weights go through the one shared rational normalization
    // (RegionSelection::normalize): count_g / sum(count).  The
    // group populations sum to n, so this is the same correctly-
    // rounded division as the historical groupPop / n — bit-equal —
    // but now every strategy normalizes identically.
    RegionSelection norm;
    norm.regions.resize(nGroups);
    for (u32 g = 0; g < nGroups; ++g)
        norm.regions[g].count = groupPop[g];
    norm.normalize();
    for (u32 g = 0; g < nGroups; ++g) {
        SimPoint p;
        p.slice = representative[g];
        p.cluster = g;
        p.clusterSize = groupPop[g];
        p.weight = norm.regions[g].weight;
        p.variance =
            groupSumDist[g] / static_cast<double>(groupPop[g]);
        res.points.push_back(p);
    }
    std::sort(res.points.begin(), res.points.end(),
              [](const SimPoint &a, const SimPoint &b) {
                  return a.slice < b.slice;
              });
    // Cluster ids in points must track the sorted order's identity;
    // they already name the group labels used in sliceToCluster.
    return res;
}

} // namespace

SimPointResult
pickSimPoints(const std::vector<FrequencyVector> &bbvs,
              const SimPointConfig &cfg)
{
    obs::TraceSpan span("simpoint.pick");
    static obs::Counter &selections =
        obs::counter("simpoint.selections",
                     "SimPoint selections performed");
    selections.add();
    SPLAB_ASSERT(!bbvs.empty(), "simpoint: no slices");

    ClusterInputs in = prepareClusterInputs(bbvs, cfg);

    u32 maxK = cfg.maxK;
    if (maxK > in.sample.rows())
        maxK = static_cast<u32>(in.sample.rows());

    // The BIC model-selection sweep: every k is an independent fit
    // seeded by hashCombine(seed, k), so the sweep fans out across
    // the pool and results are collected by index.
    struct SweepFit
    {
        KMeansResult fit;
        KSweepEntry entry;
    };
    obs::TraceSpan sweepSpan("simpoint.ksweep");
    auto sweep = parallelMap<SweepFit>(maxK, [&](std::size_t ki) {
        u32 k = static_cast<u32>(ki) + 1;
        SweepFit s;
        s.fit = kmeansBestOf(in.sample, k, hashCombine(cfg.seed, k),
                             cfg.restarts, cfg.maxIters);
        s.entry = {k, bicScore(s.fit, in.sample), s.fit.distortion,
                   s.fit.avgClusterVariance(in.sample)};
        return s;
    });
    sweepSpan.close();

    std::vector<double> scores;
    scores.reserve(sweep.size());
    for (const SweepFit &s : sweep)
        scores.push_back(s.entry.bic);

    std::size_t pick = pickByBicFraction(scores, cfg.bicFraction);
    SimPointResult out = finalize(sweep[pick].fit, in.projected, cfg);
    out.sweep.reserve(sweep.size());
    for (const SweepFit &s : sweep)
        out.sweep.push_back(s.entry);
    return out;
}

SimPointResult
pickSimPointsForcedK(const std::vector<FrequencyVector> &bbvs,
                     const SimPointConfig &cfg, u32 k)
{
    SPLAB_ASSERT(!bbvs.empty(), "simpoint: no slices");
    SPLAB_ASSERT(k >= 1, "simpoint: forced k must be >= 1");

    ClusterInputs in = prepareClusterInputs(bbvs, cfg);

    KMeansResult fit =
        kmeansBestOf(in.sample, k, hashCombine(cfg.seed, k),
                     cfg.restarts, cfg.maxIters);
    SimPointResult out = finalize(fit, in.projected, cfg);
    out.sweep.push_back({fit.k, bicScore(fit, in.sample),
                         fit.distortion,
                         fit.avgClusterVariance(in.sample)});
    return out;
}

} // namespace splab
