#include "kmeans.hh"

#include <limits>

#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

double
squaredDistance(const std::vector<double> &a,
                const std::vector<double> &b)
{
    SPLAB_ASSERT(a.size() == b.size(), "dimension mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

double
KMeansResult::avgClusterVariance(
    const std::vector<std::vector<double>> &points) const
{
    if (k == 0 || points.empty())
        return 0.0;
    std::vector<double> sum(k, 0.0);
    for (std::size_t i = 0; i < points.size(); ++i)
        sum[assignment[i]] +=
            squaredDistance(points[i], centroids[assignment[i]]);
    double acc = 0.0;
    u32 live = 0;
    for (u32 c = 0; c < k; ++c) {
        if (clusterSize[c] == 0)
            continue;
        acc += sum[c] / static_cast<double>(clusterSize[c]);
        ++live;
    }
    return live ? acc / static_cast<double>(live) : 0.0;
}

namespace
{

/** k-means++ initial centroid selection. */
std::vector<std::vector<double>>
seedCentroids(const std::vector<std::vector<double>> &points, u32 k,
              Rng &rng)
{
    std::vector<std::vector<double>> centroids;
    centroids.reserve(k);
    centroids.push_back(points[rng.below(points.size())]);

    std::vector<double> d2(points.size(),
                           std::numeric_limits<double>::max());
    while (centroids.size() < k) {
        double total = 0.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
            double d = squaredDistance(points[i], centroids.back());
            if (d < d2[i])
                d2[i] = d;
            total += d2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; pad
            // with duplicates (clusters will come back empty).
            centroids.push_back(points[rng.below(points.size())]);
            continue;
        }
        double u = rng.uniform() * total;
        double acc = 0.0;
        std::size_t pick = points.size() - 1;
        for (std::size_t i = 0; i < points.size(); ++i) {
            acc += d2[i];
            if (acc >= u) {
                pick = i;
                break;
            }
        }
        centroids.push_back(points[pick]);
    }
    return centroids;
}

} // namespace

KMeansResult
kmeansFit(const std::vector<std::vector<double>> &points, u32 k,
          u64 seed, int maxIters)
{
    SPLAB_ASSERT(!points.empty(), "kmeans: no points");
    if (k > points.size())
        k = static_cast<u32>(points.size());
    SPLAB_ASSERT(k >= 1, "kmeans: k must be >= 1");

    const std::size_t n = points.size();
    const std::size_t dim = points[0].size();

    Rng rng(seed, 0x63a5ULL);
    KMeansResult res;
    res.k = k;
    res.centroids = seedCentroids(points, k, rng);
    res.assignment.assign(n, 0);
    res.clusterSize.assign(k, 0);

    std::vector<std::vector<double>> sums(
        k, std::vector<double>(dim, 0.0));

    for (int iter = 0; iter < maxIters; ++iter) {
        bool changed = false;
        res.distortion = 0.0;
        for (auto &s : sums)
            s.assign(dim, 0.0);
        std::fill(res.clusterSize.begin(), res.clusterSize.end(), 0);

        for (std::size_t i = 0; i < n; ++i) {
            double best = std::numeric_limits<double>::max();
            u32 bestC = 0;
            for (u32 c = 0; c < k; ++c) {
                double d = squaredDistance(points[i],
                                           res.centroids[c]);
                if (d < best) {
                    best = d;
                    bestC = c;
                }
            }
            if (res.assignment[i] != bestC) {
                res.assignment[i] = bestC;
                changed = true;
            }
            res.distortion += best;
            ++res.clusterSize[bestC];
            const auto &p = points[i];
            auto &s = sums[bestC];
            for (std::size_t d = 0; d < dim; ++d)
                s[d] += p[d];
        }

        for (u32 c = 0; c < k; ++c) {
            if (res.clusterSize[c] == 0) {
                // Re-seed an empty cluster at a random point.
                res.centroids[c] = points[rng.below(n)];
                changed = true;
                continue;
            }
            for (std::size_t d = 0; d < dim; ++d)
                res.centroids[c][d] =
                    sums[c][d] /
                    static_cast<double>(res.clusterSize[c]);
        }

        res.iterations = iter + 1;
        if (!changed) {
            res.converged = true;
            break;
        }
    }
    return res;
}

KMeansResult
kmeansBestOf(const std::vector<std::vector<double>> &points, u32 k,
             u64 seed, int restarts, int maxIters)
{
    SPLAB_ASSERT(restarts >= 1, "kmeans: restarts must be >= 1");
    KMeansResult best;
    bool first = true;
    for (int r = 0; r < restarts; ++r) {
        KMeansResult cur =
            kmeansFit(points, k, hashCombine(seed, r), maxIters);
        if (first || cur.distortion < best.distortion) {
            best = std::move(cur);
            first = false;
        }
    }
    return best;
}

} // namespace splab
