#include "kmeans.hh"

#include <limits>
#include <utility>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace splab
{

double
squaredDistance(const double *a, const double *b, std::size_t n)
{
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

double
squaredDistance(const std::vector<double> &a,
                const std::vector<double> &b)
{
    SPLAB_ASSERT(a.size() == b.size(), "dimension mismatch");
    return squaredDistance(a.data(), b.data(), a.size());
}

double
KMeansResult::avgClusterVariance(const DenseMatrix &points) const
{
    if (k == 0 || points.empty())
        return 0.0;
    std::vector<double> sum(k, 0.0);
    for (std::size_t i = 0; i < points.rows(); ++i)
        sum[assignment[i]] +=
            squaredDistance(points.row(i),
                            centroids.row(assignment[i]),
                            points.cols());
    double acc = 0.0;
    u32 live = 0;
    for (u32 c = 0; c < k; ++c) {
        if (clusterSize[c] == 0)
            continue;
        acc += sum[c] / static_cast<double>(clusterSize[c]);
        ++live;
    }
    return live ? acc / static_cast<double>(live) : 0.0;
}

namespace
{

/** Points per assignment-pass chunk.  A pure constant: the chunk
 *  decomposition (and hence the floating-point reduction order) must
 *  never depend on the thread count. */
constexpr std::size_t kAssignChunk = 256;

/** Per-chunk partials of one Lloyd assignment pass. */
struct AssignAccum
{
    std::vector<double> sums; ///< k * dim centroid numerators
    std::vector<u64> counts;  ///< k populations
    double distortion = 0.0;
    bool changed = false;
};

/** k-means++ initial centroid selection (sequential: each draw
 *  conditions on the previous centroid). */
DenseMatrix
seedCentroids(const DenseMatrix &points, u32 k, Rng &rng)
{
    const std::size_t dim = points.cols();
    DenseMatrix centroids(k, dim);
    u32 placed = 0;
    centroids.setRow(placed++, points.row(rng.below(points.rows())));

    std::vector<double> d2(points.rows(),
                           std::numeric_limits<double>::max());
    while (placed < k) {
        double total = 0.0;
        const double *last = centroids.row(placed - 1);
        for (std::size_t i = 0; i < points.rows(); ++i) {
            double d = squaredDistance(points.row(i), last, dim);
            if (d < d2[i])
                d2[i] = d;
            total += d2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; pad
            // with duplicates (clusters will come back empty).
            centroids.setRow(placed++,
                             points.row(rng.below(points.rows())));
            continue;
        }
        double u = rng.uniform() * total;
        double acc = 0.0;
        std::size_t pick = points.rows() - 1;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            acc += d2[i];
            if (acc >= u) {
                pick = i;
                break;
            }
        }
        centroids.setRow(placed++, points.row(pick));
    }
    return centroids;
}

} // namespace

KMeansResult
kmeansFit(const DenseMatrix &points, u32 k, u64 seed, int maxIters)
{
    obs::TraceSpan span("kmeans.fit");
    static obs::Counter &fits =
        obs::counter("kmeans.fits", "k-means fits performed");
    static obs::Counter &iters =
        obs::counter("kmeans.iterations",
                     "Lloyd iterations across all fits");
    fits.add();
    SPLAB_ASSERT(!points.empty(), "kmeans: no points");
    if (k > points.rows())
        k = static_cast<u32>(points.rows());
    SPLAB_ASSERT(k >= 1, "kmeans: k must be >= 1");

    const std::size_t n = points.rows();
    const std::size_t dim = points.cols();

    Rng rng(seed, 0x63a5ULL);
    KMeansResult res;
    res.k = k;
    res.centroids = seedCentroids(points, k, rng);
    res.assignment.assign(n, 0);
    res.clusterSize.assign(k, 0);

    const auto chunks = fixedChunks(n, kAssignChunk);
    std::vector<AssignAccum> accums(chunks.size());
    std::vector<double> sums(k * dim, 0.0);

    for (int iter = 0; iter < maxIters; ++iter) {
        // Assignment pass: each chunk accumulates private partial
        // sums; res.assignment is written index-wise, so chunks
        // never contend.
        parallelFor(chunks.size(), [&](std::size_t ci) {
            AssignAccum &a = accums[ci];
            a.sums.assign(k * dim, 0.0);
            a.counts.assign(k, 0);
            a.distortion = 0.0;
            a.changed = false;
            for (std::size_t i = chunks[ci].begin;
                 i < chunks[ci].end; ++i) {
                const double *p = points.row(i);
                double best = std::numeric_limits<double>::max();
                u32 bestC = 0;
                for (u32 c = 0; c < k; ++c) {
                    double d = squaredDistance(
                        p, res.centroids.row(c), dim);
                    if (d < best) {
                        best = d;
                        bestC = c;
                    }
                }
                if (res.assignment[i] != bestC) {
                    res.assignment[i] = bestC;
                    a.changed = true;
                }
                a.distortion += best;
                ++a.counts[bestC];
                double *s = a.sums.data() + bestC * dim;
                for (std::size_t d = 0; d < dim; ++d)
                    s[d] += p[d];
            }
        });

        // Reduce in chunk order — fixed regardless of thread count.
        bool changed = false;
        res.distortion = 0.0;
        std::fill(res.clusterSize.begin(), res.clusterSize.end(), 0);
        std::fill(sums.begin(), sums.end(), 0.0);
        for (const AssignAccum &a : accums) {
            res.distortion += a.distortion;
            changed = changed || a.changed;
            for (u32 c = 0; c < k; ++c)
                res.clusterSize[c] += a.counts[c];
            for (std::size_t j = 0; j < sums.size(); ++j)
                sums[j] += a.sums[j];
        }

        for (u32 c = 0; c < k; ++c) {
            if (res.clusterSize[c] == 0) {
                // Re-seed an empty cluster at a random point.
                res.centroids.setRow(c, points.row(rng.below(n)));
                changed = true;
                continue;
            }
            const double *s = sums.data() + c * dim;
            double *cent = res.centroids.row(c);
            for (std::size_t d = 0; d < dim; ++d)
                cent[d] =
                    s[d] / static_cast<double>(res.clusterSize[c]);
        }

        res.iterations = iter + 1;
        if (!changed) {
            res.converged = true;
            break;
        }
    }
    iters.add(res.iterations);
    return res;
}

KMeansResult
kmeansBestOf(const DenseMatrix &points, u32 k, u64 seed,
             int restarts, int maxIters)
{
    SPLAB_ASSERT(restarts >= 1, "kmeans: restarts must be >= 1");
    auto fits = parallelMap<KMeansResult>(
        static_cast<std::size_t>(restarts), [&](std::size_t r) {
            return kmeansFit(points, k, hashCombine(seed, r),
                             maxIters);
        });
    // Index-order reduction: the earliest restart wins ties, exactly
    // as the serial loop did.
    std::size_t best = 0;
    for (std::size_t r = 1; r < fits.size(); ++r)
        if (fits[r].distortion < fits[best].distortion)
            best = r;
    return std::move(fits[best]);
}

} // namespace splab
