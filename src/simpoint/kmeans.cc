#include "kmeans.hh"

#include <cmath>
#include <limits>
#include <utility>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace splab
{

double
squaredDistance(const double *a, const double *b, std::size_t n)
{
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

double
squaredDistance(const std::vector<double> &a,
                const std::vector<double> &b)
{
    SPLAB_ASSERT(a.size() == b.size(), "dimension mismatch");
    return squaredDistance(a.data(), b.data(), a.size());
}

double
KMeansResult::avgClusterVariance(const DenseMatrix &points) const
{
    if (k == 0 || points.empty())
        return 0.0;
    std::vector<double> sum(k, 0.0);
    for (std::size_t i = 0; i < points.rows(); ++i)
        sum[assignment[i]] +=
            squaredDistance(points.row(i),
                            centroids.row(assignment[i]),
                            points.cols());
    double acc = 0.0;
    u32 live = 0;
    for (u32 c = 0; c < k; ++c) {
        if (clusterSize[c] == 0)
            continue;
        acc += sum[c] / static_cast<double>(clusterSize[c]);
        ++live;
    }
    return live ? acc / static_cast<double>(live) : 0.0;
}

void
accountDistanceKernel(const DistanceKernelStats &s)
{
    static obs::Counter &computed =
        obs::counter("kmeans.distances_computed",
                     "exact distance evaluations in the clustering "
                     "kernels");
    static obs::Counter &pruned =
        obs::counter("kmeans.distances_pruned",
                     "candidate distances skipped via "
                     "triangle-inequality bounds");
    static obs::Counter &fallbacks =
        obs::counter("kmeans.bound_fallbacks",
                     "inconclusive point bounds that fell back to a "
                     "full centroid scan");
    computed.add(s.computed);
    pruned.add(s.pruned);
    fallbacks.add(s.fallbacks);
}

namespace
{

constexpr double kMaxD = std::numeric_limits<double>::max();

/**
 * Conservative bound margins.  The rule that makes pruning *safe*
 * rather than approximate: every stored lower bound is deflated by
 * kDistShrink / kSqShrink, every upper bound inflated by kDistGrow /
 * kSqGrow, and every pruning test demands one further margin factor
 * plus an absolute slack in its favor.  The relative margin (1e-6)
 * exceeds the distance kernel's worst-case relative rounding error
 * (~1e-13 at these dimensionalities) by seven orders of magnitude,
 * so a passed test is a *proof* about the computed (not just the
 * true) distances; the absolute slack keeps denormal-range
 * arithmetic, where relative-error reasoning breaks down, from ever
 * licensing a skip.  The cost is a sliver of pruning power on
 * near-ties — which must fall back to the exact scan anyway to
 * reproduce brute-force tie-breaking bit-for-bit.
 */
constexpr double kBoundMargin = 1e-6;
constexpr double kDistGrow = 1.0 + kBoundMargin;   // distance space
constexpr double kDistShrink = 1.0 - kBoundMargin; // distance space
constexpr double kSqGrow = 1.0 + kBoundMargin;     // squared space
constexpr double kSqShrink = 1.0 - kBoundMargin;   // squared space
constexpr double kAbsSlackDist = 1e-140;
constexpr double kAbsSlackSq = 1e-280;

/** Sentinel for "no cached centroid distance" in scanPoint. */
constexpr u32 kNoCached = ~static_cast<u32>(0);

/** Conservative lower bound on the runner-up distance from a scan's
 *  second-best computed squared distance.  second2 stays kMaxD when
 *  k == 1 (vacuously valid: there is no other centroid) and can be
 *  +inf when a distance overflowed (clamping to kMaxD stays valid:
 *  an overflowed computed distance proves the true one exceeds
 *  sqrt(DBL_MAX)). */
double
lowerBoundFromSecond(double second2)
{
    return std::sqrt(std::min(second2, kMaxD)) * kDistShrink;
}

/**
 * Index-order nearest-centroid scan tracking best and second-best
 * computed squared distances.  Bit-equivalent to the brute scan for
 * (best, bestC): with @p geo, a candidate is skipped only when the
 * triangle inequality proves its computed distance strictly exceeds
 * the current *second*-best — which also proves the brute scan's
 * `d < best` comparison false.  The final second2 remains a valid
 * input for a runner-up lower bound: every skipped candidate was
 * proven farther than the second-best at skip time, and second2
 * only shrinks afterwards.
 *
 * @param cachedC centroid whose exact distance the caller already
 *                computed this iteration (kNoCached = none); reused
 *                bit-for-bit instead of re-evaluating.
 */
void
scanPoint(const double *p, std::size_t dim, const DenseMatrix &cents,
          const NearestCentroids *geo, u32 cachedC, double cachedD2,
          double &best, u32 &bestC, double &second2,
          DistanceKernelStats &st)
{
    const u32 k = static_cast<u32>(cents.rows());
    best = kMaxD;
    second2 = kMaxD;
    bestC = 0;
    double ubNow = 0.0;  // inflated sqrt(best) once best is set
    double slbNow = 0.0; // deflated sqrt(second2), +inf until set
    const double inf = std::numeric_limits<double>::infinity();
    for (u32 c = 0; c < k; ++c) {
        if (geo && best < kMaxD &&
            2.0 * geo->halfLowAt(bestC, c) - ubNow >
                slbNow + kAbsSlackDist) {
            ++st.pruned;
            continue;
        }
        double d;
        if (c == cachedC) {
            d = cachedD2;
        } else {
            d = squaredDistance(p, cents.row(c), dim);
            ++st.computed;
        }
        if (d < best) {
            second2 = best;
            best = d;
            bestC = c;
            if (geo) {
                ubNow = std::sqrt(best) * kDistGrow;
                slbNow = second2 < kMaxD
                             ? std::sqrt(second2) * kDistShrink
                             : inf;
            }
        } else if (d < second2) {
            second2 = d;
            if (geo)
                slbNow = std::sqrt(second2) * kDistShrink;
        }
    }
}

/** Points per assignment-pass chunk.  A pure constant: the chunk
 *  decomposition (and hence the floating-point reduction order) must
 *  never depend on the thread count. */
constexpr std::size_t kAssignChunk = 256;

/** Per-chunk partials of one Lloyd assignment pass. */
struct AssignAccum
{
    std::vector<double> sums; ///< k * dim centroid numerators
    std::vector<u64> counts;  ///< k populations
    double distortion = 0.0;
    bool changed = false;
    DistanceKernelStats stats;
};

/**
 * k-means++ initial centroid selection (sequential: each draw
 * conditions on the previous centroid).  d2[i] tracks the exact
 * squared distance from point i to its closest placed centroid, and
 * bestIdx[i] which centroid achieves it; with @p accel, a point
 * skips the distance to the newest centroid when a quarter of the
 * (deflated) squared centroid-to-centroid distance provably exceeds
 * d2[i] — by the triangle inequality the newest centroid is then
 * strictly farther, so d2, the sampling weights, and every RNG draw
 * stay bit-identical to the brute pass.
 */
DenseMatrix
seedCentroids(const DenseMatrix &points, u32 k, Rng &rng, bool accel,
              DistanceKernelStats &st)
{
    const std::size_t dim = points.cols();
    DenseMatrix centroids(k, dim);
    u32 placed = 0;
    centroids.setRow(placed++, points.row(rng.below(points.rows())));

    std::vector<double> d2(points.rows(), kMaxD);
    std::vector<u32> bestIdx(points.rows(), 0);
    std::vector<double> quarterLow;
    while (placed < k) {
        double total = 0.0;
        const u32 lastIdx = placed - 1;
        const double *last = centroids.row(lastIdx);
        const bool prune = accel && lastIdx >= 1;
        if (prune) {
            quarterLow.assign(lastIdx, 0.0);
            for (u32 j = 0; j < lastIdx; ++j)
                quarterLow[j] = 0.25 *
                                squaredDistance(centroids.row(j),
                                                last, dim) *
                                kSqShrink;
            st.computed += lastIdx;
        }
        for (std::size_t i = 0; i < points.rows(); ++i) {
            if (prune && quarterLow[bestIdx[i]] >
                             d2[i] * kSqGrow + kAbsSlackSq) {
                ++st.pruned;
                total += d2[i];
                continue;
            }
            double d = squaredDistance(points.row(i), last, dim);
            ++st.computed;
            if (d < d2[i]) {
                d2[i] = d;
                bestIdx[i] = lastIdx;
            }
            total += d2[i];
        }
        if (total <= 0.0) {
            // All remaining points coincide with a centroid; pad
            // with duplicates (clusters will come back empty).
            centroids.setRow(placed++,
                             points.row(rng.below(points.rows())));
            continue;
        }
        double u = rng.uniform() * total;
        double acc = 0.0;
        std::size_t pick = points.rows() - 1;
        for (std::size_t i = 0; i < points.rows(); ++i) {
            acc += d2[i];
            if (acc >= u) {
                pick = i;
                break;
            }
        }
        centroids.setRow(placed++, points.row(pick));
    }
    return centroids;
}

} // namespace

NearestCentroids::NearestCentroids(const DenseMatrix &centroids,
                                   bool accel,
                                   DistanceKernelStats *stats)
    : cents(centroids), k(static_cast<u32>(centroids.rows())),
      usePruning(accel && centroids.rows() >= 2)
{
    if (!usePruning) {
        sLow.assign(k, std::numeric_limits<double>::infinity());
        return;
    }
    const std::size_t dim = cents.cols();
    halfLow.assign(static_cast<std::size_t>(k) * k, 0.0);
    sLow.assign(k, std::numeric_limits<double>::infinity());
    for (u32 a = 0; a < k; ++a) {
        for (u32 b = a + 1; b < k; ++b) {
            double d2 = squaredDistance(cents.row(a), cents.row(b),
                                        dim);
            if (stats)
                ++stats->computed;
            // An overflowed distance collapses to 0 — that entry
            // then never licenses a skip (lower bounds may only
            // shrink when arithmetic gives out).
            double h = std::isfinite(d2)
                           ? 0.5 * std::sqrt(d2) * kDistShrink
                           : 0.0;
            halfLow[static_cast<std::size_t>(a) * k + b] = h;
            halfLow[static_cast<std::size_t>(b) * k + a] = h;
            if (h < sLow[a])
                sLow[a] = h;
            if (h < sLow[b])
                sLow[b] = h;
        }
    }
}

u32
NearestCentroids::nearest(const double *p, double &bestD2,
                          DistanceKernelStats &stats) const
{
    const std::size_t dim = cents.cols();
    double best = kMaxD;
    u32 bestC = 0;
    double ubNow = 0.0;
    for (u32 c = 0; c < k; ++c) {
        // Skip when half the distance from the current best centroid
        // to c provably exceeds the distance to the current best: by
        // the triangle inequality c is then strictly farther, so the
        // brute scan's strict-< could not have selected it.
        if (usePruning && best < kMaxD &&
            halfLowAt(bestC, c) > ubNow + kAbsSlackDist) {
            ++stats.pruned;
            continue;
        }
        double d = squaredDistance(p, cents.row(c), dim);
        ++stats.computed;
        if (d < best) {
            best = d;
            bestC = c;
            ubNow = std::sqrt(best) * kDistGrow;
        }
    }
    bestD2 = best;
    return bestC;
}

KMeansResult
kmeansFit(const DenseMatrix &points, u32 k, u64 seed, int maxIters)
{
    obs::TraceSpan span("kmeans.fit");
    static obs::Counter &fits =
        obs::counter("kmeans.fits", "k-means fits performed");
    static obs::Counter &iters =
        obs::counter("kmeans.iterations",
                     "Lloyd iterations across all fits");
    fits.add();
    SPLAB_ASSERT(!points.empty(), "kmeans: no points");
    if (k > points.rows())
        k = static_cast<u32>(points.rows());
    SPLAB_ASSERT(k >= 1, "kmeans: k must be >= 1");

    const std::size_t n = points.rows();
    const std::size_t dim = points.cols();
    const bool accel = kmeansAccelEnabled();
    DistanceKernelStats stats;

    Rng rng(seed, 0x63a5ULL);
    KMeansResult res;
    res.k = k;
    res.centroids = seedCentroids(points, k, rng, accel, stats);
    res.assignment.assign(n, 0);
    res.clusterSize.assign(k, 0);

    std::vector<double> sums(k * dim, 0.0);

    // Hamerly bound state (accel only).  lb[i] under-estimates the
    // distance from point i to every centroid other than its
    // assigned one; it decays by the largest centroid drift between
    // iterations.  The matching upper bound needs no storage: the
    // exact distance to the incumbent is recomputed every iteration
    // anyway (the distortion bytes require it), which is the
    // tightest upper bound there is.
    std::vector<double> lb;
    DenseMatrix prevCents;
    double maxDrift = 0.0, maxDrift2 = 0.0;
    u32 maxDriftC = 0;
    if (accel) {
        lb.assign(n, 0.0);
        prevCents.reset(k, dim);
    }

    for (int iter = 0; iter < maxIters; ++iter) {
        // Conservative inter-centroid half-distances for this
        // iteration's centroids, shared by every chunk below.
        NearestCentroids geo(res.centroids, accel, &stats);

        // Assignment pass: each chunk accumulates private partial
        // sums; res.assignment and lb are written index-wise, so
        // chunks never contend.
        auto accums = parallelChunkApply<AssignAccum>(
            n, kAssignChunk,
            [&](AssignAccum &a, const ChunkRange &r) {
                a.sums.assign(k * dim, 0.0);
                a.counts.assign(k, 0);
                for (std::size_t i = r.begin; i < r.end; ++i) {
                    const double *p = points.row(i);
                    double best;
                    u32 bestC;
                    double second2;
                    if (accel && iter > 0) {
                        const u32 prev = res.assignment[i];
                        // Decay the carried runner-up bound by the
                        // largest drift among the *other* centroids,
                        // then compute the exact incumbent distance.
                        double l =
                            lb[i] - (maxDriftC == prev ? maxDrift2
                                                       : maxDrift);
                        l = l <= 0.0 ? 0.0 : l * kDistShrink;
                        double d2a = squaredDistance(
                            p, res.centroids.row(prev), dim);
                        ++a.stats.computed;
                        double ubT = std::sqrt(d2a) * kDistGrow;
                        double z = std::max(l, geo.sLowAt(prev));
                        if (ubT * kDistGrow + kAbsSlackDist < z) {
                            // Every other centroid is provably
                            // strictly farther: keep the incumbent.
                            best = d2a;
                            bestC = prev;
                            a.stats.pruned += k - 1;
                            lb[i] = l;
                        } else {
                            ++a.stats.fallbacks;
                            scanPoint(p, dim, res.centroids, &geo,
                                      prev, d2a, best, bestC,
                                      second2, a.stats);
                            lb[i] = lowerBoundFromSecond(second2);
                        }
                    } else if (accel) {
                        // First iteration: no carried bounds yet;
                        // full (still second-pruned) scan seeds them.
                        scanPoint(p, dim, res.centroids, &geo,
                                  kNoCached, 0.0, best, bestC,
                                  second2, a.stats);
                        lb[i] = lowerBoundFromSecond(second2);
                    } else {
                        scanPoint(p, dim, res.centroids, nullptr,
                                  kNoCached, 0.0, best, bestC,
                                  second2, a.stats);
                    }
                    if (res.assignment[i] != bestC) {
                        res.assignment[i] = bestC;
                        a.changed = true;
                    }
                    a.distortion += best;
                    ++a.counts[bestC];
                    double *s = a.sums.data() + bestC * dim;
                    for (std::size_t d = 0; d < dim; ++d)
                        s[d] += p[d];
                }
            });

        // Reduce in chunk order — fixed regardless of thread count.
        bool changed = false;
        res.distortion = 0.0;
        std::fill(res.clusterSize.begin(), res.clusterSize.end(), 0);
        std::fill(sums.begin(), sums.end(), 0.0);
        for (const AssignAccum &a : accums) {
            res.distortion += a.distortion;
            changed = changed || a.changed;
            stats.merge(a.stats);
            for (u32 c = 0; c < k; ++c)
                res.clusterSize[c] += a.counts[c];
            for (std::size_t j = 0; j < sums.size(); ++j)
                sums[j] += a.sums[j];
        }

        // Double-buffer the centroids so the drift (old -> new) can
        // be measured after the update; every row is rewritten below.
        if (accel)
            prevCents.swap(res.centroids);
        for (u32 c = 0; c < k; ++c) {
            if (res.clusterSize[c] == 0) {
                // Re-seed an empty cluster at a random point.
                res.centroids.setRow(c, points.row(rng.below(n)));
                changed = true;
                continue;
            }
            const double *s = sums.data() + c * dim;
            double *cent = res.centroids.row(c);
            for (std::size_t d = 0; d < dim; ++d)
                cent[d] =
                    s[d] / static_cast<double>(res.clusterSize[c]);
        }
        if (accel) {
            maxDrift = maxDrift2 = 0.0;
            maxDriftC = 0;
            for (u32 c = 0; c < k; ++c) {
                double dd2 = squaredDistance(prevCents.row(c),
                                             res.centroids.row(c),
                                             dim);
                ++stats.computed;
                double dr = std::sqrt(dd2) * kDistGrow;
                if (dr > maxDrift) {
                    maxDrift2 = maxDrift;
                    maxDrift = dr;
                    maxDriftC = c;
                } else if (dr > maxDrift2) {
                    maxDrift2 = dr;
                }
            }
        }

        res.iterations = iter + 1;
        if (!changed) {
            res.converged = true;
            break;
        }
    }
    iters.add(res.iterations);
    accountDistanceKernel(stats);
    return res;
}

KMeansResult
kmeansBestOf(const DenseMatrix &points, u32 k, u64 seed,
             int restarts, int maxIters)
{
    SPLAB_ASSERT(restarts >= 1, "kmeans: restarts must be >= 1");
    auto fits = parallelMap<KMeansResult>(
        static_cast<std::size_t>(restarts), [&](std::size_t r) {
            return kmeansFit(points, k, hashCombine(seed, r),
                             maxIters);
        });
    // Index-order reduction: the earliest restart wins ties, exactly
    // as the serial loop did.
    std::size_t best = 0;
    for (std::size_t r = 1; r < fits.size(); ++r)
        if (fits[r].distortion < fits[best].distortion)
            best = r;
    return std::move(fits[best]);
}

} // namespace splab
