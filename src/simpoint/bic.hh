/**
 * @file
 * Bayesian Information Criterion scoring of k-means fits, used by
 * SimPoint to pick the number of clusters.
 */

#ifndef SPLAB_SIMPOINT_BIC_HH
#define SPLAB_SIMPOINT_BIC_HH

#include "kmeans.hh"

namespace splab
{

/**
 * BIC of a k-means clustering under the identical-spherical-Gaussian
 * model (Pelleg & Moore, X-means): log-likelihood of the data minus
 * a complexity penalty of (p/2) log R with p = K*(D+1) free
 * parameters.  Larger is better.  Only the point/dimension counts of
 * the data enter; the fit carries the distortion.
 */
double bicScore(const KMeansResult &fit, std::size_t numPoints,
                std::size_t dims);

inline double
bicScore(const KMeansResult &fit, const DenseMatrix &points)
{
    return bicScore(fit, points.rows(), points.cols());
}

inline double
bicScore(const KMeansResult &fit,
         const std::vector<std::vector<double>> &points)
{
    return bicScore(fit, points.size(),
                    points.empty() ? 0 : points[0].size());
}

/**
 * SimPoint's model-selection rule: given BIC scores for increasing
 * k, pick the index of the smallest k whose range-normalized score
 * reaches @p fraction (default 0.9) of the best.
 *
 * @return index into @p scores.
 */
std::size_t pickByBicFraction(const std::vector<double> &scores,
                              double fraction);

} // namespace splab

#endif // SPLAB_SIMPOINT_BIC_HH
