/**
 * @file
 * Baseline statistical-sampling strategies to compare SimPoint
 * against (cf. SimFlex/SMARTS-style systematic sampling, Section V-B
 * of the paper).
 *
 * Both baselines pick regions without looking at program behaviour:
 * systematic sampling spaces them evenly through the run; random
 * sampling draws them uniformly.  Each selected slice carries equal
 * weight.  They produce SimPointResult-shaped outputs so the whole
 * measurement stack (regional pinballs, replay, aggregation) can be
 * reused unchanged.
 */

#ifndef SPLAB_SIMPOINT_BASELINES_HH
#define SPLAB_SIMPOINT_BASELINES_HH

#include "simpoint.hh"

namespace splab
{

/**
 * Evenly-spaced sampling: @p n slices at a fixed stride through the
 * run (first at stride/2, SMARTS-style).
 *
 * @param totalSlices slices in the whole run
 * @param sliceInstrs slice length (model instructions)
 * @param n           number of samples (clamped to totalSlices)
 */
SimPointResult systematicSample(u64 totalSlices, ICount sliceInstrs,
                                u32 n);

/**
 * Uniform random sampling without replacement of @p n slices.
 */
SimPointResult randomSample(u64 totalSlices, ICount sliceInstrs,
                            u32 n, u64 seed);

} // namespace splab

#endif // SPLAB_SIMPOINT_BASELINES_HH
