/**
 * @file
 * DEPRECATED forwarding shim: the behaviour-oblivious baselines
 * (SimFlex/SMARTS-style systematic sampling and uniform random
 * sampling, Section V-B of the paper) now live behind the
 * SamplingStrategy interface as the "stride" and "random"
 * strategies (src/sampling/strategies.hh).  These free functions
 * forward there and reproduce the historical SimPointResult shape
 * bit-for-bit; new code should go through makeStrategy() /
 * ExperimentConfig::withStrategy() instead.
 */

#ifndef SPLAB_SIMPOINT_BASELINES_HH
#define SPLAB_SIMPOINT_BASELINES_HH

#include "simpoint.hh"

namespace splab
{

/**
 * Evenly-spaced sampling: @p n slices at a fixed stride through the
 * run (first at stride/2, SMARTS-style).
 *
 * @param totalSlices slices in the whole run
 * @param sliceInstrs slice length (model instructions)
 * @param n           number of samples (clamped to totalSlices)
 */
SimPointResult systematicSample(u64 totalSlices, ICount sliceInstrs,
                                u32 n);

/**
 * Uniform random sampling without replacement of @p n slices.
 */
SimPointResult randomSample(u64 totalSlices, ICount sliceInstrs,
                            u32 n, u64 seed);

} // namespace splab

#endif // SPLAB_SIMPOINT_BASELINES_HH
