#include "baselines.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

namespace
{

SimPointResult
fromSlices(std::vector<SliceIndex> slices, u64 totalSlices,
           ICount sliceInstrs)
{
    std::sort(slices.begin(), slices.end());
    slices.erase(std::unique(slices.begin(), slices.end()),
                 slices.end());
    SimPointResult res;
    res.totalSlices = totalSlices;
    res.sliceInstrs = sliceInstrs;
    res.chosenK = static_cast<u32>(slices.size());
    double w = 1.0 / static_cast<double>(slices.size());
    for (u32 i = 0; i < slices.size(); ++i) {
        SimPoint p;
        p.slice = slices[i];
        p.weight = w;
        p.cluster = i;
        p.clusterSize = totalSlices / slices.size();
        res.points.push_back(p);
    }
    return res;
}

} // namespace

SimPointResult
systematicSample(u64 totalSlices, ICount sliceInstrs, u32 n)
{
    SPLAB_ASSERT(totalSlices > 0, "systematicSample: empty run");
    SPLAB_ASSERT(n > 0, "systematicSample: need n >= 1");
    if (n > totalSlices)
        n = static_cast<u32>(totalSlices);
    std::vector<SliceIndex> slices;
    double stride = static_cast<double>(totalSlices) /
                    static_cast<double>(n);
    for (u32 i = 0; i < n; ++i) {
        auto s = static_cast<SliceIndex>(
            (static_cast<double>(i) + 0.5) * stride);
        if (s >= totalSlices)
            s = totalSlices - 1;
        slices.push_back(s);
    }
    return fromSlices(std::move(slices), totalSlices, sliceInstrs);
}

SimPointResult
randomSample(u64 totalSlices, ICount sliceInstrs, u32 n, u64 seed)
{
    SPLAB_ASSERT(totalSlices > 0, "randomSample: empty run");
    SPLAB_ASSERT(n > 0, "randomSample: need n >= 1");
    if (n > totalSlices)
        n = static_cast<u32>(totalSlices);
    Rng rng(seed, 0x5a3eULL);
    std::vector<SliceIndex> slices;
    // Rejection sampling without replacement; n << totalSlices in
    // all realistic uses, so this terminates quickly.
    std::vector<SliceIndex> sorted;
    while (slices.size() < n) {
        SliceIndex s = rng.below(totalSlices);
        if (std::find(slices.begin(), slices.end(), s) ==
            slices.end())
            slices.push_back(s);
    }
    return fromSlices(std::move(slices), totalSlices, sliceInstrs);
}

} // namespace splab
