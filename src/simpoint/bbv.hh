/**
 * @file
 * Basic Block Vectors (BBVs).
 *
 * A BBV summarises one execution slice: for every static basic block,
 * how many instructions the slice spent in it (execution count
 * weighted by block size, as in SimPoint).  Slices whose BBVs are
 * close executed similar code and are expected to behave similarly —
 * the foundational assumption of the SimPoint methodology.
 */

#ifndef SPLAB_SIMPOINT_BBV_HH
#define SPLAB_SIMPOINT_BBV_HH

#include <vector>

#include "support/types.hh"

namespace splab
{

/** One (block, instruction-weight) coordinate of a sparse BBV. */
struct BbvEntry
{
    u32 block = 0;
    float weight = 0.0f;
};

/** Sparse instruction-weighted basic-block vector of one slice. */
struct FrequencyVector
{
    std::vector<BbvEntry> entries;

    /** Sum of weights (total instructions in the slice). */
    double l1Norm() const;

    /** Scale so the L1 norm is 1; no-op on an empty vector. */
    void normalize();
};

/**
 * Accumulates one slice's BBV against a dense scratch array, then
 * extracts the sparse vector.  Reused across slices to avoid
 * allocation churn.
 */
class BbvAccumulator
{
  public:
    /** @param dimensions number of distinct static blocks. */
    explicit BbvAccumulator(std::size_t dimensions);

    /** Add @p instrs instructions of block @p b to the current slice. */
    void
    add(u32 b, double instrs)
    {
        if (scratch[b] == 0.0)
            touched.push_back(b);
        scratch[b] += instrs;
    }

    /** Finish the slice: emit its sparse BBV and reset. */
    FrequencyVector harvest();

    bool empty() const { return touched.empty(); }

  private:
    std::vector<double> scratch;
    std::vector<u32> touched;
};

} // namespace splab

#endif // SPLAB_SIMPOINT_BBV_HH
