/**
 * @file
 * Random projection of BBVs to a low-dimensional space.
 *
 * SimPoint 3.0 projects basic-block vectors down to 15 dimensions
 * before clustering; random projection approximately preserves
 * pairwise distances (Johnson-Lindenstrauss) at a fraction of the
 * cost.  The projection matrix is never materialised: entry (b, d)
 * is derived from a counter-based hash, so rows project
 * independently and the batch entry points fan out across the
 * thread pool.
 */

#ifndef SPLAB_SIMPOINT_PROJECTION_HH
#define SPLAB_SIMPOINT_PROJECTION_HH

#include <vector>

#include "bbv.hh"
#include "support/matrix.hh"

namespace splab
{

/** Projects sparse BBVs into a dense D-dimensional space. */
class RandomProjection
{
  public:
    /**
     * @param dims target dimensionality (SimPoint default: 15)
     * @param seed projection-matrix seed
     */
    RandomProjection(u32 dims, u64 seed);

    u32 dims() const { return numDims; }

    /**
     * Project an (L1-normalized) BBV.
     * @param v   sparse input vector
     * @param out dense output, resized to dims()
     */
    void project(const FrequencyVector &v,
                 std::vector<double> &out) const;

    /**
     * Project @p v scaled by @p scale into @p out (dims() doubles).
     * Passing scale = 1/l1Norm L1-normalizes on the fly, which lets
     * callers skip materialising a normalized copy of the BBVs.
     */
    void projectScaled(const FrequencyVector &v, double scale,
                       double *out) const;

    /** Project a batch; rows of the result align with @p vs. */
    DenseMatrix projectAll(const std::vector<FrequencyVector> &vs)
        const;

    /**
     * Project a batch with per-row L1 normalization, without copying
     * or mutating the inputs.  Rows align with @p vs.
     */
    DenseMatrix projectAllNormalized(
        const std::vector<FrequencyVector> &vs) const;

  private:
    u32 numDims;
    u64 seed;
};

} // namespace splab

#endif // SPLAB_SIMPOINT_PROJECTION_HH
