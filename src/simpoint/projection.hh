/**
 * @file
 * Random projection of BBVs to a low-dimensional space.
 *
 * SimPoint 3.0 projects basic-block vectors down to 15 dimensions
 * before clustering; random projection approximately preserves
 * pairwise distances (Johnson-Lindenstrauss) at a fraction of the
 * cost.  The projection matrix is never materialised: entry (b, d)
 * is derived from a counter-based hash.
 */

#ifndef SPLAB_SIMPOINT_PROJECTION_HH
#define SPLAB_SIMPOINT_PROJECTION_HH

#include <vector>

#include "bbv.hh"

namespace splab
{

/** Projects sparse BBVs into a dense D-dimensional space. */
class RandomProjection
{
  public:
    /**
     * @param dims target dimensionality (SimPoint default: 15)
     * @param seed projection-matrix seed
     */
    RandomProjection(u32 dims, u64 seed);

    u32 dims() const { return numDims; }

    /**
     * Project an (L1-normalized) BBV.
     * @param v   sparse input vector
     * @param out dense output, resized to dims()
     */
    void project(const FrequencyVector &v,
                 std::vector<double> &out) const;

    /** Project a batch; rows of the result align with @p vs. */
    std::vector<std::vector<double>>
    projectAll(const std::vector<FrequencyVector> &vs) const;

  private:
    u32 numDims;
    u64 seed;
};

} // namespace splab

#endif // SPLAB_SIMPOINT_PROJECTION_HH
