#include "projection.hh"

#include "support/logging.hh"
#include "support/rng.hh"

namespace splab
{

RandomProjection::RandomProjection(u32 dims, u64 seed)
    : numDims(dims), seed(seed)
{
    SPLAB_ASSERT(dims >= 1 && dims <= 256,
                 "projection dims out of range: ", dims);
}

void
RandomProjection::project(const FrequencyVector &v,
                          std::vector<double> &out) const
{
    out.assign(numDims, 0.0);
    for (const auto &e : v.entries) {
        u64 h = hashCombine(seed, e.block);
        double w = static_cast<double>(e.weight);
        for (u32 d = 0; d < numDims; ++d) {
            // Uniform in [-1, 1), deterministic per (block, dim).
            u64 r = mix64(h + d);
            double coef = static_cast<double>(r >> 11) * 0x1.0p-52 -
                          1.0;
            out[d] += w * coef;
        }
    }
}

std::vector<std::vector<double>>
RandomProjection::projectAll(
    const std::vector<FrequencyVector> &vs) const
{
    std::vector<std::vector<double>> rows(vs.size());
    for (std::size_t i = 0; i < vs.size(); ++i)
        project(vs[i], rows[i]);
    return rows;
}

} // namespace splab
