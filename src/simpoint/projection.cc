#include "projection.hh"

#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"

namespace splab
{

RandomProjection::RandomProjection(u32 dims, u64 seed)
    : numDims(dims), seed(seed)
{
    SPLAB_ASSERT(dims >= 1 && dims <= 256,
                 "projection dims out of range: ", dims);
}

void
RandomProjection::projectScaled(const FrequencyVector &v,
                                double scale, double *out) const
{
    std::fill(out, out + numDims, 0.0);
    for (const auto &e : v.entries) {
        u64 h = hashCombine(seed, e.block);
        double w = scale * static_cast<double>(e.weight);
        for (u32 d = 0; d < numDims; ++d) {
            // Uniform in [-1, 1), deterministic per (block, dim).
            u64 r = mix64(h + d);
            double coef = static_cast<double>(r >> 11) * 0x1.0p-52 -
                          1.0;
            out[d] += w * coef;
        }
    }
}

void
RandomProjection::project(const FrequencyVector &v,
                          std::vector<double> &out) const
{
    out.assign(numDims, 0.0);
    projectScaled(v, 1.0, out.data());
}

DenseMatrix
RandomProjection::projectAll(
    const std::vector<FrequencyVector> &vs) const
{
    DenseMatrix rows(vs.size(), numDims);
    parallelFor(vs.size(), [&](std::size_t i) {
        projectScaled(vs[i], 1.0, rows.row(i));
    });
    return rows;
}

DenseMatrix
RandomProjection::projectAllNormalized(
    const std::vector<FrequencyVector> &vs) const
{
    DenseMatrix rows(vs.size(), numDims);
    parallelFor(vs.size(), [&](std::size_t i) {
        double l1 = vs[i].l1Norm();
        projectScaled(vs[i], l1 > 0.0 ? 1.0 / l1 : 1.0,
                      rows.row(i));
    });
    return rows;
}

} // namespace splab
