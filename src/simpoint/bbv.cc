#include "bbv.hh"

#include <algorithm>

#include "support/logging.hh"

namespace splab
{

double
FrequencyVector::l1Norm() const
{
    double s = 0.0;
    for (const auto &e : entries)
        s += e.weight;
    return s;
}

void
FrequencyVector::normalize()
{
    double n = l1Norm();
    if (n <= 0.0)
        return;
    for (auto &e : entries)
        e.weight = static_cast<float>(e.weight / n);
}

BbvAccumulator::BbvAccumulator(std::size_t dimensions)
    : scratch(dimensions, 0.0)
{
    touched.reserve(256);
}

FrequencyVector
BbvAccumulator::harvest()
{
    FrequencyVector v;
    std::sort(touched.begin(), touched.end());
    v.entries.reserve(touched.size());
    for (u32 b : touched) {
        SPLAB_ASSERT(b < scratch.size(), "block id out of range");
        v.entries.push_back({b, static_cast<float>(scratch[b])});
        scratch[b] = 0.0;
    }
    touched.clear();
    return v;
}

} // namespace splab
