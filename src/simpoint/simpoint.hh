/**
 * @file
 * SimPoint selection: from per-slice BBVs to weighted simulation
 * points.
 *
 * Pipeline (SimPoint 3.0): normalize BBVs -> random-project to 15
 * dims -> k-means for k = 1..MaxK (sub-sampling large runs) -> BIC
 * model selection -> for the chosen clustering, emit one simulation
 * point per cluster (the slice nearest the centroid) with weight
 * proportional to the cluster population.
 */

#ifndef SPLAB_SIMPOINT_SIMPOINT_HH
#define SPLAB_SIMPOINT_SIMPOINT_HH

#include <vector>

#include "bbv.hh"
#include "bic.hh"
#include "projection.hh"

namespace splab
{

/** Knobs of the SimPoint methodology. */
struct SimPointConfig
{
    /** Maximum number of clusters (the paper settles on 35). */
    u32 maxK = 35;
    /** Slice length in model instructions (10,000 model instructions
     *  correspond to the paper's 30M-instruction slices). */
    ICount sliceInstrs = 10000;
    /** Random-projection dimensionality (SimPoint default 15). */
    u32 projectionDim = 15;
    /** Range-normalized BIC threshold for picking k. */
    double bicFraction = 0.9;
    /** k-means restarts per k. */
    int restarts = 2;
    /** Lloyd iteration cap. */
    int maxIters = 40;
    /** Cluster on at most this many slices (strided sub-sample). */
    u32 sampleCap = 3000;
    /**
     * Post-selection merge of overlapping clusters: clusters i, j
     * merge when the squared distance between their centroids is
     * below mergeThreshold * (var_i + var_j).  This undoes the
     * well-known BIC pathology of carving one wide, highly-populated
     * cluster (a dominant program phase) into slivers; genuinely
     * distinct phases sit many variances apart and never merge.
     * 0 disables.
     */
    double mergeThreshold = 0.6;
    /** Determinism seed for projection/clustering. */
    u64 seed = 42;

    u64 contentHash() const;
};

/** One simulation point. */
struct SimPoint
{
    SliceIndex slice = 0;  ///< representative slice index
    double weight = 0.0;   ///< cluster share of the whole run
    u32 cluster = 0;
    u64 clusterSize = 0;   ///< slices in the cluster
    double variance = 0.0; ///< mean sq. distance within the cluster
};

/** One entry of the k sweep (drives Fig. 4 and diagnostics). */
struct KSweepEntry
{
    u32 k = 0;
    double bic = 0.0;
    double distortion = 0.0;
    double avgClusterVariance = 0.0;
};

/** Complete outcome of SimPoint selection for one run. */
struct SimPointResult
{
    std::vector<SimPoint> points;    ///< one per non-empty cluster
    u32 chosenK = 0;                 ///< clusters picked by BIC
    u64 totalSlices = 0;
    ICount sliceInstrs = 0;
    std::vector<u32> sliceToCluster; ///< full per-slice assignment
    std::vector<KSweepEntry> sweep;  ///< per-k diagnostics

    /** Sum of point weights (should be ~1). */
    double totalWeight() const;

    /** Points sorted by descending weight. */
    std::vector<SimPoint> byDescendingWeight() const;

    /**
     * The paper's percentile reduction: smallest set of heaviest
     * points whose cumulative weight reaches @p quantile (0.9 for
     * "Reduced Regional").  Weights are kept unnormalized; weighted
     * aggregation renormalizes.
     */
    std::vector<SimPoint> topByWeight(double quantile) const;
};

/**
 * Run the full SimPoint selection over per-slice BBVs.
 *
 * @param bbvs one BBV per slice, in slice order
 * @param cfg  methodology knobs
 */
SimPointResult pickSimPoints(const std::vector<FrequencyVector> &bbvs,
                             const SimPointConfig &cfg);

/**
 * Cluster with a forced k (no BIC selection); used for sensitivity
 * studies that sweep k directly.
 */
SimPointResult pickSimPointsForcedK(
    const std::vector<FrequencyVector> &bbvs, const SimPointConfig &cfg,
    u32 k);

} // namespace splab

#endif // SPLAB_SIMPOINT_SIMPOINT_HH
