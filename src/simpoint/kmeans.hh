/**
 * @file
 * Lloyd's k-means with k-means++ seeding, the clustering engine of
 * the SimPoint methodology.
 *
 * Points live in a contiguous row-major DenseMatrix so the
 * nearest-centroid scans stream cache lines instead of chasing
 * per-row pointers.  The assignment pass and the restart loop run on
 * the global thread pool; per-chunk partial sums are reduced in
 * fixed chunk order, so fits are bit-identical at any SPLAB_THREADS.
 */

#ifndef SPLAB_SIMPOINT_KMEANS_HH
#define SPLAB_SIMPOINT_KMEANS_HH

#include <vector>

#include "support/matrix.hh"
#include "support/types.hh"

namespace splab
{

/** Outcome of one k-means fit. */
struct KMeansResult
{
    u32 k = 0;
    std::vector<u32> assignment;  ///< point -> cluster
    DenseMatrix centroids;        ///< k rows of dim columns
    std::vector<u64> clusterSize;
    double distortion = 0.0; ///< sum of squared distances
    int iterations = 0;
    bool converged = false;

    /** Mean over clusters of the within-cluster mean squared
     *  distance (the paper's Figure 4 "variance"). */
    double avgClusterVariance(const DenseMatrix &points) const;
};

/** Squared Euclidean distance between two dense rows of length n. */
double squaredDistance(const double *a, const double *b,
                       std::size_t n);

/** Squared Euclidean distance between two dense vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

/**
 * Fit k-means to @p points.
 *
 * @param points   dense row-major point matrix
 * @param k        number of clusters (clamped to points.rows())
 * @param seed     seeding determinism
 * @param maxIters Lloyd iteration cap
 */
KMeansResult kmeansFit(const DenseMatrix &points, u32 k, u64 seed,
                       int maxIters = 40);

/**
 * Best of @p restarts fits (lowest distortion, earliest restart on
 * ties), varying the seed.  Restarts run in parallel.
 */
KMeansResult kmeansBestOf(const DenseMatrix &points, u32 k, u64 seed,
                          int restarts, int maxIters = 40);

/// @name Row-vector conveniences (tests, benches, external callers)
/// @{

inline KMeansResult
kmeansFit(const std::vector<std::vector<double>> &points, u32 k,
          u64 seed, int maxIters = 40)
{
    return kmeansFit(DenseMatrix::fromRows(points), k, seed,
                     maxIters);
}

inline KMeansResult
kmeansBestOf(const std::vector<std::vector<double>> &points, u32 k,
             u64 seed, int restarts, int maxIters = 40)
{
    return kmeansBestOf(DenseMatrix::fromRows(points), k, seed,
                        restarts, maxIters);
}

/// @}

} // namespace splab

#endif // SPLAB_SIMPOINT_KMEANS_HH
