/**
 * @file
 * Lloyd's k-means with k-means++ seeding, the clustering engine of
 * the SimPoint methodology.
 *
 * Points live in a contiguous row-major DenseMatrix so the
 * nearest-centroid scans stream cache lines instead of chasing
 * per-row pointers.  The assignment pass and the restart loop run on
 * the global thread pool; per-chunk partial sums are reduced in
 * fixed chunk order, so fits are bit-identical at any SPLAB_THREADS.
 *
 * Triangle-inequality acceleration (SPLAB_KMEANS_ACCEL, default on):
 * Lloyd iterations keep Hamerly-style per-point bounds — an upper
 * bound on the distance to the assigned centroid and a single lower
 * bound on the second-closest — maintained across iterations via
 * per-centroid drift, and the fixed-centroid scans (whole-run slice
 * assignment, k-means++ d2 maintenance) prune candidates through
 * inter-centroid half-distances.  The contract is *exact equality*,
 * not approximation: a centroid is skipped only when conservative
 * bound arithmetic (lower bounds deflated, upper bounds inflated by
 * a relative margin that dwarfs the distance kernel's rounding
 * error) proves the brute-force scan's strict-`<` comparison could
 * not have selected it; whenever bounds are inconclusive the code
 * falls back to the exact scan.  Assignments, tie-breaks,
 * distortion, and centroid bytes are therefore bit-identical to the
 * brute-force path at any SPLAB_THREADS, and cached artifact bytes
 * never move (no version-salt bump).  Work is tallied in the
 * deterministic counters kmeans.distances_computed /
 * kmeans.distances_pruned / kmeans.bound_fallbacks.
 */

#ifndef SPLAB_SIMPOINT_KMEANS_HH
#define SPLAB_SIMPOINT_KMEANS_HH

#include <vector>

#include "support/matrix.hh"
#include "support/types.hh"

namespace splab
{

/** Outcome of one k-means fit. */
struct KMeansResult
{
    u32 k = 0;
    std::vector<u32> assignment;  ///< point -> cluster
    DenseMatrix centroids;        ///< k rows of dim columns
    std::vector<u64> clusterSize;
    double distortion = 0.0; ///< sum of squared distances
    int iterations = 0;
    bool converged = false;

    /** Mean over clusters of the within-cluster mean squared
     *  distance (the paper's Figure 4 "variance"). */
    double avgClusterVariance(const DenseMatrix &points) const;
};

/** Squared Euclidean distance between two dense rows of length n. */
double squaredDistance(const double *a, const double *b,
                       std::size_t n);

/** Squared Euclidean distance between two dense vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

/**
 * Tally of nearest-centroid kernel work.  Deterministic: every field
 * is a pure function of the data and the bound state, never of
 * scheduling, so totals are identical at any SPLAB_THREADS.
 */
struct DistanceKernelStats
{
    u64 computed = 0;  ///< exact squaredDistance evaluations
    u64 pruned = 0;    ///< candidate distances skipped via bounds
    u64 fallbacks = 0; ///< inconclusive point bounds -> full scan

    void
    merge(const DistanceKernelStats &o)
    {
        computed += o.computed;
        pruned += o.pruned;
        fallbacks += o.fallbacks;
    }
};

/** Flush @p s into the kmeans.distances_computed /
 *  kmeans.distances_pruned / kmeans.bound_fallbacks counters. */
void accountDistanceKernel(const DistanceKernelStats &s);

/**
 * Pruned nearest-centroid search over a FIXED centroid set (the
 * whole-run slice assignment of SimPoint finalize, k-means++ seeding
 * maintenance).  Construction precomputes conservative lower bounds
 * on half the inter-centroid distances; nearest() then skips a
 * candidate c only when half the distance from the current best
 * centroid to c provably exceeds the distance to the current best —
 * by the triangle inequality c is then strictly farther, so the
 * brute-force strict-`<` scan could not have picked it.  Results
 * (index and exact squared distance) are bit-identical to the brute
 * scan whether pruning is enabled or not.
 */
class NearestCentroids
{
  public:
    /** @param centroids fixed centroid rows (must outlive this)
     *  @param accel     false = plain brute scans (no table)
     *  @param stats     when non-null, receives the table build's
     *                   distance evaluations */
    NearestCentroids(const DenseMatrix &centroids, bool accel,
                     DistanceKernelStats *stats = nullptr);

    /** Nearest centroid of @p p (dim = centroids.cols()) under the
     *  brute scan's index-order strict-`<` semantics.  @p bestD2
     *  receives the exact squared distance to the winner. */
    u32 nearest(const double *p, double &bestD2,
                DistanceKernelStats &stats) const;

    bool pruning() const { return usePruning; }

    /** Conservative lower bound on half the distance from centroid
     *  @p a to centroid @p b (distance space, not squared). */
    double
    halfLowAt(u32 a, u32 b) const
    {
        return halfLow[a * k + b];
    }

    /** Conservative lower bound on half the distance from centroid
     *  @p c to its nearest other centroid (+inf when k == 1). */
    double sLowAt(u32 c) const { return sLow[c]; }

  private:
    const DenseMatrix &cents;
    u32 k = 0;
    std::vector<double> halfLow; ///< k*k half-distance lower bounds
    std::vector<double> sLow;    ///< per-centroid row minimum
    bool usePruning = false;
};

/**
 * Fit k-means to @p points.
 *
 * @param points   dense row-major point matrix
 * @param k        number of clusters (clamped to points.rows())
 * @param seed     seeding determinism
 * @param maxIters Lloyd iteration cap
 */
KMeansResult kmeansFit(const DenseMatrix &points, u32 k, u64 seed,
                       int maxIters = 40);

/**
 * Best of @p restarts fits (lowest distortion, earliest restart on
 * ties), varying the seed.  Restarts run in parallel.
 */
KMeansResult kmeansBestOf(const DenseMatrix &points, u32 k, u64 seed,
                          int restarts, int maxIters = 40);

/// @name Row-vector conveniences (tests, benches, external callers)
/// @{

inline KMeansResult
kmeansFit(const std::vector<std::vector<double>> &points, u32 k,
          u64 seed, int maxIters = 40)
{
    return kmeansFit(DenseMatrix::fromRows(points), k, seed,
                     maxIters);
}

inline KMeansResult
kmeansBestOf(const std::vector<std::vector<double>> &points, u32 k,
             u64 seed, int restarts, int maxIters = 40)
{
    return kmeansBestOf(DenseMatrix::fromRows(points), k, seed,
                        restarts, maxIters);
}

/// @}

} // namespace splab

#endif // SPLAB_SIMPOINT_KMEANS_HH
