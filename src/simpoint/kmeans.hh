/**
 * @file
 * Lloyd's k-means with k-means++ seeding, the clustering engine of
 * the SimPoint methodology.
 */

#ifndef SPLAB_SIMPOINT_KMEANS_HH
#define SPLAB_SIMPOINT_KMEANS_HH

#include <vector>

#include "support/types.hh"

namespace splab
{

/** Outcome of one k-means fit. */
struct KMeansResult
{
    u32 k = 0;
    std::vector<u32> assignment;              ///< point -> cluster
    std::vector<std::vector<double>> centroids;
    std::vector<u64> clusterSize;
    double distortion = 0.0; ///< sum of squared distances
    int iterations = 0;
    bool converged = false;

    /** Mean over clusters of the within-cluster mean squared
     *  distance (the paper's Figure 4 "variance"). */
    double avgClusterVariance(const
        std::vector<std::vector<double>> &points) const;
};

/** Squared Euclidean distance between two dense vectors. */
double squaredDistance(const std::vector<double> &a,
                       const std::vector<double> &b);

/**
 * Fit k-means to @p points.
 *
 * @param points   dense row vectors (all the same dimensionality)
 * @param k        number of clusters (clamped to points.size())
 * @param seed     seeding determinism
 * @param maxIters Lloyd iteration cap
 */
KMeansResult kmeansFit(const std::vector<std::vector<double>> &points,
                       u32 k, u64 seed, int maxIters = 40);

/**
 * Best of @p restarts fits (lowest distortion), varying the seed.
 */
KMeansResult kmeansBestOf(
    const std::vector<std::vector<double>> &points, u32 k, u64 seed,
    int restarts, int maxIters = 40);

} // namespace splab

#endif // SPLAB_SIMPOINT_KMEANS_HH
