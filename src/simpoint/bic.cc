#include "bic.hh"

#include <cmath>

#include "support/logging.hh"

namespace splab
{

double
bicScore(const KMeansResult &fit, std::size_t numPoints,
         std::size_t dims)
{
    const double r = static_cast<double>(numPoints);
    const double m = static_cast<double>(dims);
    const double k = static_cast<double>(fit.k);
    SPLAB_ASSERT(r >= 1.0, "bic: no points");

    // Pooled spherical variance estimate.
    double denom = (r - k) * m;
    double sigma2 = denom > 0.0 ? fit.distortion / denom : 0.0;
    if (sigma2 < 1e-12)
        sigma2 = 1e-12; // degenerate fits: every point on a centroid

    double logL = 0.0;
    for (u32 c = 0; c < fit.k; ++c) {
        double rc = static_cast<double>(fit.clusterSize[c]);
        if (rc <= 0.0)
            continue;
        logL += rc * std::log(rc / r);
    }
    logL -= r * m / 2.0 * std::log(2.0 * M_PI * sigma2);
    logL -= (r - k) * m / 2.0;

    double params = k * (m + 1.0);
    return logL - params / 2.0 * std::log(r);
}

std::size_t
pickByBicFraction(const std::vector<double> &scores, double fraction)
{
    SPLAB_ASSERT(!scores.empty(), "bic: no scores to pick from");
    double lo = scores[0], hi = scores[0];
    for (double s : scores) {
        lo = s < lo ? s : lo;
        hi = s > hi ? s : hi;
    }
    if (hi <= lo)
        return 0; // flat curve: smallest k wins

    // SimPoint's rule: the smallest k scoring at least `fraction`
    // of the best BIC.  The raw ratio only makes sense for positive
    // scores; otherwise fall back to range normalization.
    double threshold =
        hi > 0.0 ? fraction * hi : hi - (1.0 - fraction) * (hi - lo);
    for (std::size_t i = 0; i < scores.size(); ++i)
        if (scores[i] >= threshold)
            return i;
    return scores.size() - 1;
}

} // namespace splab
