#include "manifest.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "counters.hh"
#include "trace.hh"

namespace splab
{
namespace obs
{

bool
manifestEnabled()
{
    const char *v = std::getenv("SPLAB_MANIFEST");
    if (!v || !*v)
        return true; // default: on
    return !(v[0] == '0' && v[1] == '\0');
}

RunManifest::RunManifest(std::string tool) : toolName(std::move(tool))
{
}

void
RunManifest::setConfig(const std::string &key,
                       const std::string &value)
{
    config.set(key, JsonValue::string(value));
}

void
RunManifest::setConfig(const std::string &key, const char *value)
{
    config.set(key, JsonValue::string(value));
}

void
RunManifest::setConfig(const std::string &key, double value)
{
    config.set(key, JsonValue::number(value));
}

void
RunManifest::setConfig(const std::string &key, u64 value)
{
    config.set(key, JsonValue::number(value));
}

void
RunManifest::setConfig(const std::string &key, u32 value)
{
    config.set(key, JsonValue::number(u64{value}));
}

void
RunManifest::setConfig(const std::string &key, int value)
{
    config.set(key, JsonValue::number(i64{value}));
}

void
RunManifest::setConfig(const std::string &key, bool value)
{
    config.set(key, JsonValue::boolean(value));
}

void
RunManifest::recordEnv(const char *name)
{
    const char *v = std::getenv(name);
    env.set(name, JsonValue::string(v ? v : ""));
}

bool
RunManifest::addOutput(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::vector<unsigned char> bytes;
    unsigned char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);

    std::size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos
                           ? path
                           : path.substr(slash + 1);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(
                      fnv1a64(bytes.data(), bytes.size())));

    JsonValue out = JsonValue::object();
    out.set("file", JsonValue::string(base));
    out.set("bytes", JsonValue::number(u64{bytes.size()}));
    out.set("fnv64", JsonValue::string(hex));
    outputs.push(std::move(out));
    return true;
}

void
RunManifest::addOutputDigest(const std::string &path, u64 digest)
{
    std::size_t slash = path.find_last_of('/');
    std::string base = slash == std::string::npos
                           ? path
                           : path.substr(slash + 1);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    JsonValue out = JsonValue::object();
    out.set("file", JsonValue::string(base));
    out.set("fnv64_det", JsonValue::string(hex));
    outputs.push(std::move(out));
}

void
RunManifest::addArtifact(const std::string &name, u64 key)
{
    char hex[32];
    std::snprintf(hex, sizeof(hex), "0x%016llx",
                  static_cast<unsigned long long>(key));
    artifacts.set(name, JsonValue::string(hex));
}

void
RunManifest::setTimingNote(const std::string &key, double value)
{
    timingNotes.set(key, JsonValue::number(value));
}

JsonValue
RunManifest::build(bool includeTiming) const
{
    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue::string("splab-manifest-v1"));
    root.set("tool", JsonValue::string(toolName));
    root.set("config", config);
    root.set("env", env);

    JsonValue counters = JsonValue::object();
    for (const auto &kv : counterSnapshot())
        counters.set(kv.first, JsonValue::number(kv.second));
    root.set("counters", std::move(counters));

    auto stats = spanStats();
    JsonValue stages = JsonValue::array();
    for (const auto &s : stats) {
        JsonValue st = JsonValue::object();
        st.set("path", JsonValue::string(s.path));
        st.set("count", JsonValue::number(s.count));
        stages.push(std::move(st));
    }
    root.set("stages", std::move(stages));
    root.set("artifacts", artifacts);
    root.set("outputs", outputs);

    if (includeTiming) {
        JsonValue timing = JsonValue::object();
        JsonValue gauges = JsonValue::object();
        for (const auto &kv : gaugeSnapshot())
            gauges.set(kv.first, JsonValue::number(kv.second));
        timing.set("gauges", std::move(gauges));
        JsonValue tstages = JsonValue::array();
        for (const auto &s : stats) {
            JsonValue st = JsonValue::object();
            st.set("path", JsonValue::string(s.path));
            st.set("wall_s", JsonValue::number(s.wallSeconds));
            st.set("cpu_s", JsonValue::number(s.cpuSeconds));
            tstages.push(std::move(st));
        }
        timing.set("stages", std::move(tstages));
        for (const auto &kv : timingNotes.members())
            timing.set(kv.first, kv.second);
        root.set("timing", std::move(timing));
    }
    return root;
}

std::string
RunManifest::render() const
{
    return build(true).render();
}

std::string
RunManifest::renderDeterministic() const
{
    return build(false).render();
}

bool
RunManifest::write(const std::string &path) const
{
    std::string text = render();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    int rc = std::fclose(f);
    return n == text.size() && rc == 0;
}

} // namespace obs
} // namespace splab
