#include "trace.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <mutex>

#include "json.hh"

namespace splab
{
namespace obs
{

namespace
{

using Clock = std::chrono::steady_clock;

double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return 0.0;
}

/** One completed span, recorded only when tracing is enabled. */
struct TraceEvent
{
    std::string name; ///< leaf label
    std::string path; ///< full slash-joined path
    u32 tid = 0;
    double startUs = 0.0; ///< since process trace epoch
    double durUs = 0.0;
    double cpuUs = 0.0;
};

struct Aggregate
{
    u64 count = 0;
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
};

struct Global
{
    std::mutex mtx;
    std::map<std::string, Aggregate> aggregates;
    std::vector<TraceEvent> events;
    Clock::time_point epoch = Clock::now();
    std::atomic<bool> tracing{false};
    std::atomic<u32> nextTid{0};
};

Global &
global()
{
    static Global *g = new Global(); // leaked: outlives statics
    return *g;
}

bool
envTracing()
{
    const char *v = std::getenv("SPLAB_TRACE");
    return v && *v && !(v[0] == '0' && v[1] == '\0');
}

struct OpenSpan
{
    const char *name;
    std::string path;
    Clock::time_point wall0;
    double cpu0;
};

struct ThreadState
{
    std::vector<OpenSpan> open;
    std::string contextBase;
    u32 tid = 0;
    bool haveTid = false;
};

ThreadState &
threadState()
{
    thread_local ThreadState ts;
    return ts;
}

u32
threadTid(ThreadState &ts)
{
    if (!ts.haveTid) {
        ts.tid = global().nextTid.fetch_add(
            1, std::memory_order_relaxed);
        ts.haveTid = true;
    }
    return ts.tid;
}

std::atomic<bool> &
tracingFlag()
{
    static std::atomic<bool> *flag = [] {
        auto *f = &global().tracing;
        f->store(envTracing(), std::memory_order_relaxed);
        return f;
    }();
    return *flag;
}

} // namespace

bool
tracingEnabled()
{
    return tracingFlag().load(std::memory_order_relaxed);
}

void
setTracingEnabled(bool on)
{
    tracingFlag().store(on, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char *name)
{
    ThreadState &ts = threadState();
    OpenSpan s;
    s.name = name;
    if (!ts.open.empty())
        s.path = ts.open.back().path + "/" + name;
    else if (!ts.contextBase.empty())
        s.path = ts.contextBase + "/" + name;
    else
        s.path = name;
    s.wall0 = Clock::now();
    s.cpu0 = threadCpuSeconds();
    ts.open.push_back(std::move(s));
}

TraceSpan::~TraceSpan()
{
    close();
}

void
TraceSpan::close()
{
    if (closed)
        return;
    closed = true;
    ThreadState &ts = threadState();
    if (ts.open.empty())
        return; // unbalanced; never raise from a destructor
    OpenSpan s = std::move(ts.open.back());
    ts.open.pop_back();

    double wall = std::chrono::duration<double>(Clock::now() -
                                                s.wall0)
                      .count();
    double cpu = threadCpuSeconds() - s.cpu0;

    Global &g = global();
    bool record = tracingEnabled();
    double startUs = 0.0;
    if (record)
        startUs = std::chrono::duration<double, std::micro>(
                      s.wall0 - g.epoch)
                      .count();

    std::lock_guard<std::mutex> lock(g.mtx);
    Aggregate &a = g.aggregates[s.path];
    a.count += 1;
    a.wallSeconds += wall;
    a.cpuSeconds += cpu;
    if (record) {
        TraceEvent e;
        e.name = s.name;
        e.path = std::move(s.path);
        e.tid = threadTid(ts);
        e.startUs = startUs;
        e.durUs = wall * 1e6;
        e.cpuUs = cpu * 1e6;
        g.events.push_back(std::move(e));
    }
}

std::string
traceContext()
{
    ThreadState &ts = threadState();
    if (!ts.open.empty())
        return ts.open.back().path;
    return ts.contextBase;
}

TraceContextGuard::TraceContextGuard(std::string basePath)
{
    ThreadState &ts = threadState();
    saved = std::move(ts.contextBase);
    ts.contextBase = std::move(basePath);
}

TraceContextGuard::~TraceContextGuard()
{
    threadState().contextBase = std::move(saved);
}

std::vector<SpanStat>
spanStats()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mtx);
    std::vector<SpanStat> out;
    out.reserve(g.aggregates.size());
    for (const auto &kv : g.aggregates) {
        SpanStat s;
        s.path = kv.first;
        s.count = kv.second.count;
        s.wallSeconds = kv.second.wallSeconds;
        s.cpuSeconds = kv.second.cpuSeconds;
        out.push_back(std::move(s));
    }
    return out; // std::map iteration: already sorted by path
}

std::string
renderSpanTree()
{
    auto stats = spanStats();
    std::string out = "trace spans (count, wall s, cpu s)\n";
    for (const auto &s : stats) {
        std::size_t depth = 0;
        std::size_t lastSlash = std::string::npos;
        for (std::size_t i = 0; i < s.path.size(); ++i) {
            if (s.path[i] == '/') {
                ++depth;
                lastSlash = i;
            }
        }
        std::string leaf = lastSlash == std::string::npos
                               ? s.path
                               : s.path.substr(lastSlash + 1);
        char line[192];
        std::snprintf(line, sizeof(line),
                      "%*s%-*s %8llu  %10.4f  %10.4f\n",
                      static_cast<int>(depth * 2), "",
                      static_cast<int>(40 - depth * 2), leaf.c_str(),
                      static_cast<unsigned long long>(s.count),
                      s.wallSeconds, s.cpuSeconds);
        out += line;
    }
    return out;
}

bool
writeChromeTrace(const std::string &path)
{
    Global &g = global();
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(g.mtx);
        events = g.events;
    }
    if (events.empty())
        return false;

    JsonValue root = JsonValue::object();
    JsonValue arr = JsonValue::array();
    for (const auto &e : events) {
        JsonValue ev = JsonValue::object();
        ev.set("name", JsonValue::string(e.name));
        ev.set("cat", JsonValue::string("splab"));
        ev.set("ph", JsonValue::string("X"));
        ev.set("ts", JsonValue::number(e.startUs));
        ev.set("dur", JsonValue::number(e.durUs));
        ev.set("pid", JsonValue::number(u64{1}));
        ev.set("tid", JsonValue::number(u64{e.tid}));
        JsonValue args = JsonValue::object();
        args.set("path", JsonValue::string(e.path));
        args.set("cpu_us", JsonValue::number(e.cpuUs));
        ev.set("args", std::move(args));
        arr.push(std::move(ev));
    }
    root.set("traceEvents", std::move(arr));
    root.set("displayTimeUnit", JsonValue::string("ms"));

    std::string text = root.render();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = (n == text.size()) && std::fclose(f) == 0;
    if (n != text.size())
        std::fclose(f);
    return ok;
}

std::size_t
traceEventCount()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mtx);
    return g.events.size();
}

void
clearSpans()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mtx);
    g.aggregates.clear();
    g.events.clear();
    g.epoch = Clock::now();
}

} // namespace obs
} // namespace splab
