/**
 * @file
 * Minimal JSON document model for the observability layer.
 *
 * Run manifests and Chrome trace files are JSON; the tests round-trip
 * them.  This is deliberately tiny: ordered objects (insertion order
 * is preserved so rendering is deterministic), raw-text numbers (what
 * you wrote is what you read back, byte for byte), and a strict
 * recursive-descent parser.  No external dependencies.
 */

#ifndef SPLAB_OBS_JSON_HH
#define SPLAB_OBS_JSON_HH

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/types.hh"

namespace splab
{
namespace obs
{

/** One JSON value; objects keep keys in insertion order. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    JsonValue() : valueKind(Kind::Null) {}

    /// @name Factories
    /// @{
    static JsonValue null() { return JsonValue(); }
    static JsonValue boolean(bool b);
    static JsonValue number(double v);
    static JsonValue number(u64 v);
    static JsonValue number(i64 v);
    /** A number from its exact textual form (kept verbatim). */
    static JsonValue rawNumber(std::string text);
    static JsonValue string(std::string s);
    static JsonValue array();
    static JsonValue object();
    /// @}

    Kind kind() const { return valueKind; }
    bool isNull() const { return valueKind == Kind::Null; }
    bool isObject() const { return valueKind == Kind::Object; }
    bool isArray() const { return valueKind == Kind::Array; }

    bool asBool() const;
    double asDouble() const;
    u64 asU64() const;
    const std::string &asString() const;
    /** Exact number token as written/parsed. */
    const std::string &numberText() const;

    /// @name Arrays
    /// @{
    void push(JsonValue v);
    std::size_t size() const;
    const JsonValue &at(std::size_t i) const;
    /// @}

    /// @name Objects
    /// @{
    /** Insert or overwrite; insertion order is preserved. */
    void set(const std::string &key, JsonValue v);
    /** @return member or nullptr when absent / not an object. */
    const JsonValue *find(const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return obj;
    }
    /// @}

    /**
     * Pretty-print with two-space indentation.  Deterministic: the
     * output depends only on the value (insertion order included).
     */
    std::string render() const;

  private:
    Kind valueKind;
    bool boolVal = false;
    std::string text; ///< number token or string payload
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    void renderTo(std::string &out, int depth) const;
};

/** Escape a string for embedding between JSON quotes. */
std::string jsonEscape(const std::string &s);

/**
 * Shortest round-trip decimal rendering of a double (tries %.15g,
 * widens to %.17g when lossy).  Deterministic.
 */
std::string formatDouble(double v);

/** Parse a complete JSON document; nullopt on any syntax error. */
std::optional<JsonValue> parseJson(const std::string &text);

/** FNV-1a 64-bit hash (content hashes in manifests). */
u64 fnv1a64(const void *data, std::size_t len);

} // namespace obs
} // namespace splab

#endif // SPLAB_OBS_JSON_HH
