/**
 * @file
 * Process-wide registry of named statistics in the gem5 stats idiom:
 * dotted hierarchical names ("pinball.instrs_replayed"), registered
 * once, sampled at report time.
 *
 * Two kinds:
 *  - Counter: monotonic, incremented from any thread (relaxed
 *    atomics).  Every counter in the library accumulates a quantity
 *    that is a pure function of the work performed — never of
 *    scheduling — so snapshots are byte-identical at any
 *    SPLAB_THREADS setting.  This is what lets run manifests act as
 *    cross-machine diffable records.
 *  - Gauge: last-write-wins level (thread count, cache dir state).
 *    Gauges MAY be scheduling- or environment-dependent, so
 *    manifests report them only in the volatile section.  Pipeline
 *    health families (`genpipe.*`, `toollanes.*` — stall episodes,
 *    reorder-window footprints) are gauges for exactly this reason:
 *    identical results, scheduling-dependent stall counts.
 *
 * Hot call sites cache the reference:
 *     static obs::Counter &c = obs::counter("pin.windows");
 *     c.add();
 */

#ifndef SPLAB_OBS_COUNTERS_HH
#define SPLAB_OBS_COUNTERS_HH

#include <atomic>
#include <map>
#include <string>

#include "support/types.hh"

namespace splab
{
namespace obs
{

/** Monotonic event counter; add() is wait-free. */
class Counter
{
  public:
    void
    add(u64 delta = 1)
    {
        val.fetch_add(delta, std::memory_order_relaxed);
    }

    u64 value() const { return val.load(std::memory_order_relaxed); }

    void reset() { val.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<u64> val{0};
};

/** Last-write-wins level indicator. */
class Gauge
{
  public:
    void
    set(u64 v)
    {
        val.store(v, std::memory_order_relaxed);
    }

    u64 value() const { return val.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> val{0};
};

/**
 * Look up (registering on first use) the counter @p name.
 * References stay valid for the process lifetime.
 * @param desc one-line description recorded at registration; later
 *             calls may omit it.
 */
Counter &counter(const std::string &name,
                 const std::string &desc = "");

/** Look up (registering on first use) the gauge @p name. */
Gauge &gauge(const std::string &name, const std::string &desc = "");

/** Name -> value of every registered counter, sorted by name. */
std::map<std::string, u64> counterSnapshot();

/** Name -> value of every registered gauge, sorted by name. */
std::map<std::string, u64> gaugeSnapshot();

/** Description registered for a counter/gauge ("" if none). */
std::string statDescription(const std::string &name);

/** Zero every registered counter (tests and benches). */
void resetCounters();

} // namespace obs
} // namespace splab

#endif // SPLAB_OBS_COUNTERS_HH
