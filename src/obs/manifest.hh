/**
 * @file
 * Per-run manifests: a machine-readable record of what a bench ran.
 *
 * A manifest captures (1) the full experiment configuration, (2) the
 * observability-relevant environment (SPLAB_SCALE, SPLAB_CACHE, ...;
 * SPLAB_THREADS deliberately excluded, see below), (3) the counter
 * registry snapshot, (4) per-stage span counts, and (5) content
 * hashes of every emitted output file — enough to tell whether two
 * runs of a figure were the same experiment, and to diff them when
 * they were not.
 *
 * Determinism contract: everything outside the "timing" section is a
 * pure function of the configuration and the work performed.  Two
 * runs at different SPLAB_THREADS (and identical artifact-cache
 * state) render byte-identical deterministic content; wall-clock
 * stage timings, thread counts and gauges live under "timing" and
 * are excluded by renderDeterministic().
 */

#ifndef SPLAB_OBS_MANIFEST_HH
#define SPLAB_OBS_MANIFEST_HH

#include <string>

#include "json.hh"

namespace splab
{
namespace obs
{

/** True unless SPLAB_MANIFEST=0 disables manifest emission. */
bool manifestEnabled();

/** Accumulates one run's record; render()/write() snapshot the
 *  counter and span registries at call time. */
class RunManifest
{
  public:
    /** @param tool bench/binary name, e.g. "fig5_reduction". */
    explicit RunManifest(std::string tool);

    /// @name Configuration key/values (dotted keys, e.g.
    /// "simpoint.max_k"); insertion order is preserved.
    /// @{
    void setConfig(const std::string &key, const std::string &value);
    void setConfig(const std::string &key, const char *value);
    void setConfig(const std::string &key, double value);
    void setConfig(const std::string &key, u64 value);
    void setConfig(const std::string &key, u32 value);
    void setConfig(const std::string &key, int value);
    void setConfig(const std::string &key, bool value);
    /// @}

    /** Record an environment variable's value ("" when unset). */
    void recordEnv(const char *name);

    /**
     * Record an output file: basename, size and FNV-1a content hash.
     * @return false when the file cannot be read.
     */
    bool addOutput(const std::string &path);

    /**
     * Record an output file whose raw bytes are volatile (it embeds
     * wall-clock measurements) by a caller-computed digest of its
     * deterministic content instead of the file hash.
     */
    void addOutputDigest(const std::string &path, u64 digest);

    /**
     * Record one content-addressed artifact key (the "artifacts"
     * section; deterministic).  @p name is "kind/benchmark", e.g.
     * "simpoints/perlbench_r"; see ArtifactGraph::recordArtifacts.
     */
    void addArtifact(const std::string &name, u64 key);

    /** Volatile session note (lands in the "timing" section). */
    void setTimingNote(const std::string &key, double value);

    /**
     * Full manifest JSON, including the volatile "timing" section
     * (wall-clock stage timings, thread count, gauges).
     */
    std::string render() const;

    /** Manifest JSON without the volatile "timing" section. */
    std::string renderDeterministic() const;

    /** Write render() to @p path. @return success. */
    bool write(const std::string &path) const;

  private:
    JsonValue build(bool includeTiming) const;

    std::string toolName;
    JsonValue config = JsonValue::object();
    JsonValue env = JsonValue::object();
    JsonValue artifacts = JsonValue::object();
    JsonValue outputs = JsonValue::array();
    JsonValue timingNotes = JsonValue::object();
};

} // namespace obs
} // namespace splab

#endif // SPLAB_OBS_MANIFEST_HH
