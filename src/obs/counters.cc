#include "counters.hh"

#include <memory>
#include <mutex>

namespace splab
{
namespace obs
{

namespace
{

/**
 * The registry maps are append-only and guarded by one mutex; the
 * Counter/Gauge objects themselves are lock-free, so only the first
 * lookup of each name pays for the lock (call sites cache the
 * reference in a function-local static).
 */
struct Registry
{
    std::mutex mtx;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::string> descriptions;
};

Registry &
registry()
{
    static Registry *r = new Registry(); // leaked: outlives statics
    return *r;
}

} // namespace

Counter &
counter(const std::string &name, const std::string &desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    auto &slot = r.counters[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
        if (!desc.empty())
            r.descriptions[name] = desc;
    }
    return *slot;
}

Gauge &
gauge(const std::string &name, const std::string &desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    auto &slot = r.gauges[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
        if (!desc.empty())
            r.descriptions[name] = desc;
    }
    return *slot;
}

std::map<std::string, u64>
counterSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    std::map<std::string, u64> snap;
    for (const auto &kv : r.counters)
        snap[kv.first] = kv.second->value();
    return snap;
}

std::map<std::string, u64>
gaugeSnapshot()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    std::map<std::string, u64> snap;
    for (const auto &kv : r.gauges)
        snap[kv.first] = kv.second->value();
    return snap;
}

std::string
statDescription(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    auto it = r.descriptions.find(name);
    return it == r.descriptions.end() ? std::string() : it->second;
}

void
resetCounters()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> g(r.mtx);
    for (auto &kv : r.counters)
        kv.second->reset();
}

} // namespace obs
} // namespace splab
