/**
 * @file
 * Hierarchical scoped tracing for the experiment pipeline.
 *
 * A TraceSpan marks one stage of work ("suite.whole_cache",
 * "kmeans.fit").  Spans nest: a span opened while another is open on
 * the same thread becomes its child, and its *path* is the
 * slash-joined chain ("simpoint.pick/simpoint.ksweep/kmeans.fit").
 * The thread pool propagates the submitting thread's path into its
 * workers (see TraceContextGuard), so work fanned out across the
 * pool is attributed to the stage that spawned it — span paths and
 * counts are identical at any SPLAB_THREADS setting.
 *
 * Two consumers:
 *  - Aggregated per-path statistics (count, wall, CPU) are always
 *    collected — they feed the per-stage timing section of run
 *    manifests (obs/manifest.hh).  Spans are coarse (per run window,
 *    per fit, per replay), so the cost is noise.
 *  - With SPLAB_TRACE=1 every span is additionally recorded as an
 *    event and can be dumped as a Chrome trace_event JSON
 *    (chrome://tracing, Perfetto) plus a human-readable tree.
 */

#ifndef SPLAB_OBS_TRACE_HH
#define SPLAB_OBS_TRACE_HH

#include <string>
#include <vector>

#include "support/types.hh"

namespace splab
{
namespace obs
{

/** True when SPLAB_TRACE requests full event recording. */
bool tracingEnabled();

/** Override SPLAB_TRACE (tests, benches). */
void setTracingEnabled(bool on);

/** RAII scope marking one stage of work.  Cheap; never throws. */
class TraceSpan
{
  public:
    /** @param name stage label; must not contain '/'. */
    explicit TraceSpan(const char *name);
    ~TraceSpan();

    /** End the span before scope exit; idempotent. */
    void close();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool closed = false;
};

/**
 * Full span path of the calling thread: the innermost open span's
 * path, else the inherited pool context, else "".
 */
std::string traceContext();

/**
 * Install an inherited base path on this thread for the guard's
 * lifetime: spans opened while no local span is open become children
 * of @p basePath.  The thread pool wraps worker tasks in one of
 * these so fanned-out work keeps its submitting stage's attribution.
 */
class TraceContextGuard
{
  public:
    explicit TraceContextGuard(std::string basePath);
    ~TraceContextGuard();

    TraceContextGuard(const TraceContextGuard &) = delete;
    TraceContextGuard &operator=(const TraceContextGuard &) = delete;

  private:
    std::string saved;
};

/** Aggregated statistics of one span path. */
struct SpanStat
{
    std::string path;   ///< slash-joined span chain
    u64 count = 0;      ///< completed spans on this path
    double wallSeconds = 0.0;
    double cpuSeconds = 0.0;
};

/** Per-path aggregates, sorted by path.  Always available. */
std::vector<SpanStat> spanStats();

/** Human-readable tree of the aggregated spans. */
std::string renderSpanTree();

/**
 * Dump recorded events (SPLAB_TRACE=1 runs) as Chrome trace_event
 * JSON.  @return false when nothing was recorded or I/O failed.
 */
bool writeChromeTrace(const std::string &path);

/** Recorded event count (0 unless tracing was enabled). */
std::size_t traceEventCount();

/** Drop all aggregates and recorded events (tests). */
void clearSpans();

} // namespace obs
} // namespace splab

#endif // SPLAB_OBS_TRACE_HH
