#include "json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace splab
{
namespace obs
{

JsonValue
JsonValue::boolean(bool b)
{
    JsonValue v;
    v.valueKind = Kind::Bool;
    v.boolVal = b;
    return v;
}

JsonValue
JsonValue::number(double d)
{
    return rawNumber(formatDouble(d));
}

JsonValue
JsonValue::number(u64 n)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(n));
    return rawNumber(buf);
}

JsonValue
JsonValue::number(i64 n)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(n));
    return rawNumber(buf);
}

JsonValue
JsonValue::rawNumber(std::string text)
{
    JsonValue v;
    v.valueKind = Kind::Number;
    v.text = std::move(text);
    return v;
}

JsonValue
JsonValue::string(std::string s)
{
    JsonValue v;
    v.valueKind = Kind::String;
    v.text = std::move(s);
    return v;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.valueKind = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.valueKind = Kind::Object;
    return v;
}

bool
JsonValue::asBool() const
{
    return valueKind == Kind::Bool && boolVal;
}

double
JsonValue::asDouble() const
{
    if (valueKind != Kind::Number)
        return 0.0;
    return std::strtod(text.c_str(), nullptr);
}

u64
JsonValue::asU64() const
{
    if (valueKind != Kind::Number)
        return 0;
    return std::strtoull(text.c_str(), nullptr, 10);
}

const std::string &
JsonValue::asString() const
{
    static const std::string empty;
    return valueKind == Kind::String ? text : empty;
}

const std::string &
JsonValue::numberText() const
{
    static const std::string zero = "0";
    return valueKind == Kind::Number ? text : zero;
}

void
JsonValue::push(JsonValue v)
{
    arr.push_back(std::move(v));
}

std::size_t
JsonValue::size() const
{
    return valueKind == Kind::Array ? arr.size() : obj.size();
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    static const JsonValue nil;
    return i < arr.size() ? arr[i] : nil;
}

void
JsonValue::set(const std::string &key, JsonValue v)
{
    for (auto &kv : obj) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    obj.emplace_back(key, std::move(v));
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &kv : obj)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
formatDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.15g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Keep the token a valid JSON number (no inf/nan).
    if (std::strchr(buf, 'i') || std::strchr(buf, 'n'))
        return "0";
    return buf;
}

void
JsonValue::renderTo(std::string &out, int depth) const
{
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    const std::string padIn(static_cast<std::size_t>(depth + 1) * 2,
                            ' ');
    switch (valueKind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += boolVal ? "true" : "false";
        break;
      case Kind::Number:
        out += text;
        break;
      case Kind::String:
        out += '"';
        out += jsonEscape(text);
        out += '"';
        break;
      case Kind::Array:
        if (arr.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < arr.size(); ++i) {
            out += padIn;
            arr[i].renderTo(out, depth + 1);
            if (i + 1 < arr.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += ']';
        break;
      case Kind::Object:
        if (obj.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < obj.size(); ++i) {
            out += padIn;
            out += '"';
            out += jsonEscape(obj[i].first);
            out += "\": ";
            obj[i].second.renderTo(out, depth + 1);
            if (i + 1 < obj.size())
                out += ',';
            out += '\n';
        }
        out += pad;
        out += '}';
        break;
    }
}

std::string
JsonValue::render() const
{
    std::string out;
    renderTo(out, 0);
    out += '\n';
    return out;
}

namespace
{

/** Strict recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &s) : src(s) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out))
            return false;
        skipWs();
        return pos == src.size();
    }

  private:
    const std::string &src;
    std::size_t pos = 0;

    void
    skipWs()
    {
        while (pos < src.size() &&
               (src[pos] == ' ' || src[pos] == '\t' ||
                src[pos] == '\n' || src[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t len = std::strlen(word);
        if (src.compare(pos, len, word) != 0)
            return false;
        pos += len;
        return true;
    }

    bool
    value(JsonValue &out)
    {
        if (pos >= src.size())
            return false;
        switch (src[pos]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': return string(out);
          case 't':
            out = JsonValue::boolean(true);
            return literal("true");
          case 'f':
            out = JsonValue::boolean(false);
            return literal("false");
          case 'n':
            out = JsonValue::null();
            return literal("null");
          default: return number(out);
        }
    }

    bool
    number(JsonValue &out)
    {
        std::size_t start = pos;
        if (pos < src.size() && src[pos] == '-')
            ++pos;
        if (pos >= src.size() || !std::isdigit(
                static_cast<unsigned char>(src[pos])))
            return false;
        while (pos < src.size() &&
               (std::isdigit(static_cast<unsigned char>(src[pos])) ||
                src[pos] == '.' || src[pos] == 'e' ||
                src[pos] == 'E' || src[pos] == '+' ||
                src[pos] == '-'))
            ++pos;
        out = JsonValue::rawNumber(src.substr(start, pos - start));
        return true;
    }

    bool
    string(JsonValue &out)
    {
        std::string s;
        if (!rawString(s))
            return false;
        out = JsonValue::string(std::move(s));
        return true;
    }

    bool
    rawString(std::string &s)
    {
        if (pos >= src.size() || src[pos] != '"')
            return false;
        ++pos;
        while (pos < src.size()) {
            char c = src[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                if (++pos >= src.size())
                    return false;
                switch (src[pos]) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'b': s += '\b'; break;
                  case 'f': s += '\f'; break;
                  case 'n': s += '\n'; break;
                  case 'r': s += '\r'; break;
                  case 't': s += '\t'; break;
                  case 'u': {
                    if (pos + 4 >= src.size())
                        return false;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = src[pos + 1 + i];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return false;
                    }
                    pos += 4;
                    // UTF-8 encode the BMP code point.
                    if (cp < 0x80) {
                        s += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        s += static_cast<char>(0xc0 | (cp >> 6));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    } else {
                        s += static_cast<char>(0xe0 | (cp >> 12));
                        s += static_cast<char>(0x80 |
                                               ((cp >> 6) & 0x3f));
                        s += static_cast<char>(0x80 | (cp & 0x3f));
                    }
                    break;
                  }
                  default: return false;
                }
                ++pos;
            } else {
                s += c;
                ++pos;
            }
        }
        return false; // unterminated
    }

    bool
    array(JsonValue &out)
    {
        out = JsonValue::array();
        ++pos; // '['
        skipWs();
        if (pos < src.size() && src[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            JsonValue v;
            skipWs();
            if (!value(v))
                return false;
            out.push(std::move(v));
            skipWs();
            if (pos >= src.size())
                return false;
            if (src[pos] == ',') {
                ++pos;
                continue;
            }
            if (src[pos] == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object(JsonValue &out)
    {
        out = JsonValue::object();
        ++pos; // '{'
        skipWs();
        if (pos < src.size() && src[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!rawString(key))
                return false;
            skipWs();
            if (pos >= src.size() || src[pos] != ':')
                return false;
            ++pos;
            skipWs();
            JsonValue v;
            if (!value(v))
                return false;
            out.set(key, std::move(v));
            skipWs();
            if (pos >= src.size())
                return false;
            if (src[pos] == ',') {
                ++pos;
                continue;
            }
            if (src[pos] == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }
};

} // namespace

std::optional<JsonValue>
parseJson(const std::string &text)
{
    Parser p(text);
    JsonValue v;
    if (!p.parse(v))
        return std::nullopt;
    return v;
}

u64
fnv1a64(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    u64 h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace obs
} // namespace splab
