#include "native.hh"

#include "pin/engine.hh"
#include "support/rng.hh"
#include "timing/interval_core.hh"

namespace splab
{

NativeMachine::NativeMachine(const MachineConfig &hw, double biasSigma,
                             double jitterSigma)
    : hwConfig(hw), biasSigma(biasSigma), jitterSigma(jitterSigma)
{
}

PerfCounters
NativeMachine::run(SyntheticWorkload &workload, u64 runIndex)
{
    IntervalCoreTool core(hwConfig);
    Engine engine;
    engine.attach(&core);
    engine.runWhole(workload);

    const TimingStats &t = core.stats();

    // Hardware-effects model: systematic per-benchmark bias plus
    // per-run jitter.
    u64 benchKey = workload.spec().contentHash();
    Rng biasRng(benchKey, 0xb1a5ULL);
    Rng jitterRng(benchKey, runIndex, 0x11f7ULL);
    double factor = 1.0 + biasSigma * biasRng.gaussian() +
                    jitterSigma * jitterRng.gaussian();
    if (factor < 0.5)
        factor = 0.5;

    PerfCounters c;
    c.instructions = t.instrs;
    c.cpuCycles = static_cast<u64>(t.cycles * factor);
    c.branches = t.branches;
    c.branchMisses = t.mispredicts;
    const CacheStats &l3 =
        core.hierarchy().levelStats(CacheLevel::L3);
    c.cacheReferences = l3.accesses;
    c.cacheMisses = l3.misses;
    return c;
}

} // namespace splab
