/**
 * @file
 * The "real hardware" reference: native execution measured with
 * perf-style counters.
 *
 * Substitution note (see DESIGN.md): we cannot run on a physical
 * i7-3770, so the native machine is the same interval timing model
 * run over the *full* workload, perturbed by a hardware-effects
 * model: a small per-benchmark systematic bias (microarchitectural
 * effects the simulator does not capture) plus per-run jitter
 * (non-determinism).  This preserves the structure of the paper's
 * Figure 12 comparison: sampled-simulation error = sampling error +
 * model-vs-hardware error + noise.
 */

#ifndef SPLAB_PERF_NATIVE_HH
#define SPLAB_PERF_NATIVE_HH

#include "timing/machine_config.hh"
#include "workload/synthetic.hh"

namespace splab
{

/** Values read from perf's hardware event counters. */
struct PerfCounters
{
    u64 instructions = 0;
    u64 cpuCycles = 0;
    u64 branches = 0;
    u64 branchMisses = 0;
    u64 cacheReferences = 0; ///< LLC references
    u64 cacheMisses = 0;     ///< LLC misses

    /** The paper's metric: cpu-cycles / instructions. */
    double
    cpi() const
    {
        return instructions ? static_cast<double>(cpuCycles) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }
};

/** Runs workloads natively and reports perf counters. */
class NativeMachine
{
  public:
    /**
     * @param hw        hardware being modelled (Table III)
     * @param biasSigma std-dev of the per-benchmark systematic
     *                  model-vs-hardware bias (fraction of cycles)
     * @param jitterSigma std-dev of per-run noise
     */
    explicit NativeMachine(const MachineConfig &hw,
                           double biasSigma = 0.02,
                           double jitterSigma = 0.005);

    /**
     * Execute the whole workload "natively" and read the counters.
     * @param runIndex distinguishes repeated timed runs (affects
     *        jitter only, like re-running perf).
     */
    PerfCounters run(SyntheticWorkload &workload, u64 runIndex = 0);

    const MachineConfig &config() const { return hwConfig; }

  private:
    MachineConfig hwConfig;
    double biasSigma;
    double jitterSigma;
};

} // namespace splab

#endif // SPLAB_PERF_NATIVE_HH
