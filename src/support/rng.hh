/**
 * @file
 * Counter-based pseudo-random number generation.
 *
 * Every random decision in the library is derived from a pure
 * function of (seed, stream, counter).  This is the property that
 * makes regional pinballs exact: replaying slice k of a workload
 * regenerates the identical event stream without executing slices
 * 0..k-1 first.
 */

#ifndef SPLAB_SUPPORT_RNG_HH
#define SPLAB_SUPPORT_RNG_HH

#include <cmath>

#include "types.hh"

namespace splab
{

/** SplitMix64 finalizer: a high-quality 64-bit mixing function. */
constexpr u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into a new well-mixed seed. */
constexpr u64
hashCombine(u64 a, u64 b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/** Stable 64-bit hash of a byte string (FNV-1a). */
u64 hashBytes(const void *data, std::size_t len);

/**
 * A stateful generator seeded from a (seed, stream) pair.
 *
 * Internally a SplitMix64 sequence; construction is O(1), so it is
 * cheap to create one per slice / per phase / per kernel, which is
 * how slice-addressable determinism is achieved.
 */
class Rng
{
  public:
    Rng() : state(0x853c49e6748fea9bULL) {}

    /** Seed from an arbitrary number of stream components. */
    template <typename... Parts>
    explicit Rng(u64 seed, Parts... parts) : state(mix64(seed))
    {
        ((state = hashCombine(state, static_cast<u64>(parts))), ...);
    }

    /** Next raw 64-bit value. */
    u64
    next()
    {
        state += 0x9e3779b97f4a7c15ULL;
        u64 z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Multiply-shift rejection-free mapping; bias is negligible
        // for the bounds used here (all far below 2^48).
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal deviate (Box-Muller, one value per call). */
    double
    gaussian()
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.283185307179586 * u2);
    }

    /** Bernoulli trial with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Geometric-ish burst length in [1, cap]. */
    u64
    burst(double mean, u64 cap)
    {
        if (mean <= 1.0)
            return 1;
        double x = -mean * std::log(1.0 - uniform());
        u64 n = static_cast<u64>(x) + 1;
        return n > cap ? cap : n;
    }

  private:
    u64 state;
};

/**
 * Sample an index from a discrete distribution given cumulative
 * weights (cdf must be nondecreasing with cdf.back() ~ 1.0).
 */
std::size_t sampleCdf(const double *cdf, std::size_t n, double u);

} // namespace splab

#endif // SPLAB_SUPPORT_RNG_HH
