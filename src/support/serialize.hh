/**
 * @file
 * Minimal byte-oriented serialization used by the pinball format and
 * the on-disk artifact cache.
 *
 * The format is little-endian, length-prefixed, and versioned by the
 * callers (each file type writes its own magic + version).  A trailing
 * FNV checksum catches truncation and corruption on load.
 */

#ifndef SPLAB_SUPPORT_SERIALIZE_HH
#define SPLAB_SUPPORT_SERIALIZE_HH

#include <cstring>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace splab
{

/** Accumulates primitive values into a byte buffer. */
class ByteWriter
{
  public:
    /** Append a trivially-copyable scalar. */
    template <typename T>
    void
    put(T value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        const auto *p = reinterpret_cast<const u8 *>(&value);
        buf.insert(buf.end(), p, p + sizeof(T));
    }

    /** Append a length-prefixed string. */
    void putString(const std::string &s);

    /** Append @p n raw bytes verbatim (no length prefix); used to
     *  reassemble artifacts from shared sub-blobs. */
    void
    putRaw(const u8 *data, std::size_t n)
    {
        buf.insert(buf.end(), data, data + n);
    }

    /** Append a length-prefixed vector of scalars. */
    template <typename T>
    void
    putVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        put<u64>(v.size());
        const auto *p = reinterpret_cast<const u8 *>(v.data());
        buf.insert(buf.end(), p, p + v.size() * sizeof(T));
    }

    const std::vector<u8> &bytes() const { return buf; }

    /** Write buffer to a file with a trailing checksum. @return ok. */
    bool saveFile(const std::string &path) const;

  private:
    std::vector<u8> buf;
};

/** Reads primitive values back out of a byte buffer. */
class ByteReader
{
  public:
    explicit ByteReader(std::vector<u8> data)
        : buf(std::move(data)), pos(0)
    {}

    /** Load a checksummed file; fatal() on mismatch or I/O error. */
    static ByteReader loadFile(const std::string &path);

    /** True if a file exists and its checksum validates. */
    static bool probeFile(const std::string &path);

    template <typename T>
    T
    get()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value;
        SPLAB_ASSERT(pos + sizeof(T) <= buf.size(),
                     "serialized data truncated");
        std::memcpy(&value, buf.data() + pos, sizeof(T));
        pos += sizeof(T);
        return value;
    }

    std::string getString();

    template <typename T>
    std::vector<T>
    getVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        u64 n = get<u64>();
        SPLAB_ASSERT(pos + n * sizeof(T) <= buf.size(),
                     "serialized vector truncated");
        std::vector<T> v(n);
        std::memcpy(v.data(), buf.data() + pos, n * sizeof(T));
        pos += n * sizeof(T);
        return v;
    }

    /** Consume @p n raw bytes (no length prefix); the counterpart of
     *  ByteWriter::putRaw. */
    std::vector<u8>
    getRaw(std::size_t n)
    {
        SPLAB_ASSERT(pos + n <= buf.size(),
                     "serialized data truncated");
        std::vector<u8> v(buf.begin() + pos, buf.begin() + pos + n);
        pos += n;
        return v;
    }

    bool atEnd() const { return pos >= buf.size(); }
    std::size_t remaining() const { return buf.size() - pos; }

  private:
    std::vector<u8> buf;
    std::size_t pos;
};

} // namespace splab

#endif // SPLAB_SUPPORT_SERIALIZE_HH
