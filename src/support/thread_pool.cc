#include "thread_pool.hh"

#include <memory>

#include "env.hh"
#include "logging.hh"
#include "obs/counters.hh"
#include "obs/trace.hh"

namespace splab
{

namespace
{

/** Set while this thread executes pool tasks or submits a job; a
 *  nested forEach sees it and degrades to an inline serial loop. */
thread_local bool inParallelRegion = false;

std::size_t
defaultThreadCount()
{
    long env = envLong("SPLAB_THREADS", 0);
    if (env < 0) {
        SPLAB_WARN("SPLAB_THREADS must be >= 0; using hardware "
                   "concurrency");
        env = 0;
    }
    if (env > 0)
        return static_cast<std::size_t>(env);
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::mutex &
globalPoolMutex()
{
    static std::mutex m;
    return m;
}

std::unique_ptr<ThreadPool> &
globalPoolSlot()
{
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}

} // namespace

ThreadPool::ThreadPool(std::size_t nThreads)
{
    SPLAB_ASSERT(nThreads >= 1, "thread pool needs >= 1 thread");
    obs::gauge("pool.threads",
               "total parallelism of the most recent pool")
        .set(nThreads);
    workers.reserve(nThreads - 1);
    for (std::size_t t = 0; t + 1 < nThreads; ++t)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> g(mtx);
        stopping = true;
    }
    wake.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::runIndices(const std::function<void(std::size_t)> &fn,
                       std::size_t n)
{
    for (;;) {
        std::size_t i =
            nextIndex.fetch_add(1, std::memory_order_relaxed);
        if (i >= n)
            return;
        std::exception_ptr err;
        try {
            fn(i);
        } catch (...) {
            err = std::current_exception();
        }
        std::lock_guard<std::mutex> g(mtx);
        if (err && (!firstError || i < firstErrorIndex)) {
            firstError = err;
            firstErrorIndex = i;
        }
        if (++completed == jobSize)
            idle.notify_all();
    }
}

void
ThreadPool::workerLoop()
{
    inParallelRegion = true;
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *fn = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> g(mtx);
            wake.wait(g, [&] {
                return stopping || (jobFn && generation != seen);
            });
            if (stopping)
                return;
            seen = generation;
            fn = jobFn;
            n = jobSize;
            ++claimers;
        }
        runIndices(*fn, n);
        {
            std::lock_guard<std::mutex> g(mtx);
            // The submitter must not recycle the claim counter while
            // any worker could still fetch_add on it (see forEach).
            if (--claimers == 0 && completed == jobSize)
                idle.notify_all();
        }
    }
}

void
ThreadPool::forEach(std::size_t n,
                    const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    {
        // Counted work, not scheduling: jobs and task totals are a
        // pure function of the call structure, so they stay
        // deterministic at any thread count (manifest contract).
        static obs::Counter &jobs =
            obs::counter("pool.jobs", "parallelFor invocations");
        static obs::Counter &tasks =
            obs::counter("pool.tasks", "parallelFor indices run");
        jobs.add();
        tasks.add(n);
    }
    if (workers.empty() || inParallelRegion || n == 1) {
        // Inline execution.  The algorithmic structure (who computes
        // what) is identical to the parallel path, so results cannot
        // depend on which path ran; like the pool path, every index
        // runs and the lowest-index exception is rethrown.
        std::exception_ptr err;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!err)
                    err = std::current_exception();
            }
        }
        if (err)
            std::rethrow_exception(err);
        return;
    }

    // Thread-pool-aware trace attribution: workers inherit the
    // submitting thread's span path, so spans opened inside tasks
    // keep the same full path ("stage/sub.stage") the inline serial
    // path would produce — span statistics are thread-count
    // invariant.  Only wrapped when there is a context to carry.
    std::function<void(std::size_t)> traced;
    const std::function<void(std::size_t)> *job = &fn;
    std::string ctx = obs::traceContext();
    if (!ctx.empty()) {
        traced = [&fn, ctx](std::size_t i) {
            obs::TraceContextGuard guard(ctx);
            fn(i);
        };
        job = &traced;
    }

    inParallelRegion = true;
    {
        std::lock_guard<std::mutex> g(mtx);
        jobFn = job;
        jobSize = n;
        completed = 0;
        firstError = nullptr;
        firstErrorIndex = n;
        nextIndex.store(0, std::memory_order_relaxed);
        ++generation;
    }
    wake.notify_all();

    runIndices(fn, n);

    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> g(mtx);
        idle.wait(g, [&] {
            return completed == jobSize && claimers == 0;
        });
        jobFn = nullptr;
        err = firstError;
        firstError = nullptr;
    }
    inParallelRegion = false;
    if (err)
        std::rethrow_exception(err);
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> g(globalPoolMutex());
    auto &slot = globalPoolSlot();
    if (!slot)
        slot = std::make_unique<ThreadPool>(defaultThreadCount());
    return *slot;
}

void
ThreadPool::setGlobalThreads(std::size_t n)
{
    std::lock_guard<std::mutex> g(globalPoolMutex());
    globalPoolSlot() = std::make_unique<ThreadPool>(
        n ? n : defaultThreadCount());
}

std::size_t
parallelThreads()
{
    return ThreadPool::global().threads();
}

bool
parallelRegionActive()
{
    return inParallelRegion;
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    ThreadPool::global().forEach(n, fn);
}

std::vector<ChunkRange>
fixedChunks(std::size_t n, std::size_t chunkSize)
{
    SPLAB_ASSERT(chunkSize >= 1, "chunk size must be >= 1");
    std::vector<ChunkRange> chunks;
    chunks.reserve((n + chunkSize - 1) / chunkSize);
    for (std::size_t b = 0; b < n; b += chunkSize) {
        std::size_t e = b + chunkSize < n ? b + chunkSize : n;
        chunks.push_back({b, e});
    }
    return chunks;
}

} // namespace splab
