#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace splab
{

namespace
{

LogLevel globalLevel = [] {
    if (const char *env = std::getenv("SPLAB_LOG")) {
        switch (env[0]) {
          case '0': case 'q': case 'Q': return LogLevel::Quiet;
          case '2': case 'v': case 'V': return LogLevel::Verbose;
          default: break;
        }
    }
    return LogLevel::Normal;
}();

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Normal)
        std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
verboseImpl(const std::string &msg)
{
    if (globalLevel >= LogLevel::Verbose)
        std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace detail

} // namespace splab
