/**
 * @file
 * Environment-variable configuration knobs.
 *
 * The bench harness honours:
 *  - SPLAB_SCALE   : multiply all workload lengths by this factor
 *                    (default 1.0; use e.g. 0.1 for a quick smoke run)
 *  - SPLAB_CACHE   : directory for the on-disk artifact cache
 *                    (default "splab_cache" under the CWD; empty
 *                    string disables caching)
 *  - SPLAB_THREADS : worker threads for the parallel stages (k-sweep,
 *                    k-means, regional replays); 0 or unset = all
 *                    hardware threads.  Changes wall time only —
 *                    results are bit-identical at any thread count
 *                    (see support/thread_pool.hh).
 *  - SPLAB_TRACE   : 1 = record every trace span and have benches
 *                    dump "<binary>.trace.json" (Chrome trace_event
 *                    format) plus a span tree on stdout.  Aggregated
 *                    span statistics are collected regardless (see
 *                    obs/trace.hh).
 *  - SPLAB_MANIFEST: 0 = suppress the "<binary>.manifest.json" run
 *                    manifest benches write by default (see
 *                    obs/manifest.hh).
 *  - SPLAB_FUSED_PERSIST: 0 = keep the fused whole-run artifact
 *                    memory-resident instead of persisting it to the
 *                    artifact cache as shared sub-blobs (see
 *                    core/artifact_graph.hh).  Default on; the
 *                    projection artifacts persist either way.
 */

#ifndef SPLAB_SUPPORT_ENV_HH
#define SPLAB_SUPPORT_ENV_HH

#include <string>

namespace splab
{

/** Read a double from the environment, falling back to @p fallback. */
double envDouble(const char *name, double fallback);

/** Read an integer from the environment. */
long envLong(const char *name, long fallback);

/** Read a string from the environment. */
std::string envString(const char *name, const std::string &fallback);

/** Global workload scale factor (SPLAB_SCALE). */
double workloadScale();

/** Artifact cache directory (SPLAB_CACHE); empty = disabled. */
std::string artifactCacheDir();

/** Whether the fused whole-run artifact is persisted to the disk
 *  cache (SPLAB_FUSED_PERSIST; default on). */
bool fusedPersistEnabled();

} // namespace splab

#endif // SPLAB_SUPPORT_ENV_HH
