/**
 * @file
 * Environment-variable configuration knobs.
 *
 * The bench harness honours:
 *  - SPLAB_SCALE   : multiply all workload lengths by this factor
 *                    (default 1.0; use e.g. 0.1 for a quick smoke run)
 *  - SPLAB_CACHE   : directory for the on-disk artifact cache
 *                    (default "splab_cache" under the CWD; empty
 *                    string disables caching)
 *  - SPLAB_THREADS : worker threads for the parallel stages (k-sweep,
 *                    k-means, regional replays); 0 or unset = all
 *                    hardware threads.  Changes wall time only —
 *                    results are bit-identical at any thread count
 *                    (see support/thread_pool.hh).
 *  - SPLAB_TRACE   : 1 = record every trace span and have benches
 *                    dump "<binary>.trace.json" (Chrome trace_event
 *                    format) plus a span tree on stdout.  Aggregated
 *                    span statistics are collected regardless (see
 *                    obs/trace.hh).
 *  - SPLAB_MANIFEST: 0 = suppress the "<binary>.manifest.json" run
 *                    manifest benches write by default (see
 *                    obs/manifest.hh).
 *  - SPLAB_FUSED_PERSIST: 0 = keep the fused whole-run artifact
 *                    memory-resident instead of persisting it to the
 *                    artifact cache as shared sub-blobs (see
 *                    core/artifact_graph.hh).  Default on; the
 *                    projection artifacts persist either way.
 *  - SPLAB_GEN_PIPELINE: 0 = disable the parallel chunk-generation
 *                    pipeline inside a single engine run (see
 *                    pin/engine.hh); generation then runs serial on
 *                    the calling thread.  Default on; the pipeline
 *                    engages only when the thread pool has workers
 *                    to spare, and results are byte-identical either
 *                    way.
 *  - SPLAB_SIMD    : 0 = force the scalar reference implementation
 *                    of the batch accumulate kernels (see
 *                    isa/accumulate.hh).  Default on; scalar and
 *                    SIMD results are bit-identical.
 *  - SPLAB_TOOL_LANES: 0 = keep the generation pipeline's single
 *                    consumer, which delivers each finalized batch
 *                    to all attached tools serially (see
 *                    pin/engine.hh).  Default on: when the thread
 *                    pool has workers to spare, each tool consumes
 *                    batches on its own in-chunk-order lane.  A pure
 *                    scheduling change — per-tool state is disjoint,
 *                    so results are byte-identical either way.
 *  - SPLAB_KMEANS_ACCEL: 0 = force brute-force nearest-centroid
 *                    scans in the clustering stack (see
 *                    simpoint/kmeans.hh).  Default on: Lloyd
 *                    iterations keep Hamerly-style distance bounds
 *                    and the whole-run slice assignment prunes via
 *                    inter-centroid half-distances.  Skips happen
 *                    only when a centroid is provably strictly
 *                    farther under conservative bound arithmetic, so
 *                    assignments, distortion and centroid bytes are
 *                    bit-identical either way.
 *  - SPLAB_SERVICE : path of a splabd artifact-service Unix-domain
 *                    socket.  When set, every ArtifactGraph becomes
 *                    a service client: persisted artifacts are
 *                    requested from the shared daemon instead of
 *                    computed locally, with transparent fallback to
 *                    the local path when no daemon answers (see
 *                    core/artifact_backend.hh).  Unset/empty =
 *                    local-only (today's behaviour).
 *  - SPLAB_CACHE_MAX_BYTES: size budget for the on-disk artifact
 *                    cache.  When the resident bytes (artifact blobs
 *                    plus shared sub-blobs) exceed the budget after
 *                    a store, least-recently-used artifacts are
 *                    evicted; shared sub-blobs are ref-counted and
 *                    reclaimed only when their last referencing
 *                    artifact goes.  0 or unset = unbounded.
 */

#ifndef SPLAB_SUPPORT_ENV_HH
#define SPLAB_SUPPORT_ENV_HH

#include <string>

#include "types.hh"

namespace splab
{

/** Read a double from the environment, falling back to @p fallback. */
double envDouble(const char *name, double fallback);

/** Read an integer from the environment. */
long envLong(const char *name, long fallback);

/** Read a string from the environment. */
std::string envString(const char *name, const std::string &fallback);

/** Global workload scale factor (SPLAB_SCALE). */
double workloadScale();

/** Artifact cache directory (SPLAB_CACHE); empty = disabled. */
std::string artifactCacheDir();

/** Artifact-cache size budget in bytes (SPLAB_CACHE_MAX_BYTES);
 *  0 = unbounded.  Re-read per call so tests can toggle it. */
u64 cacheMaxBytes();

/** Artifact-service daemon socket path (SPLAB_SERVICE); empty =
 *  no daemon, local-only artifact resolution.  Re-read per call so
 *  tests can point individual graphs at scratch daemons. */
std::string servicePath();

/** Whether the fused whole-run artifact is persisted to the disk
 *  cache (SPLAB_FUSED_PERSIST; default on). */
bool fusedPersistEnabled();

/** Whether the parallel chunk-generation pipeline may engage
 *  (SPLAB_GEN_PIPELINE; default on).  Re-read per run so tests can
 *  toggle it within one process. */
bool genPipelineEnabled();

/** Whether the SIMD batch-accumulate kernels may be used
 *  (SPLAB_SIMD; default on).  Re-read per call so tests can toggle
 *  it within one process. */
bool simdKernelsEnabled();

/** Whether the generation pipeline may split its consumer into
 *  per-tool lanes (SPLAB_TOOL_LANES; default on).  Re-read per run
 *  so tests can toggle it within one process. */
bool toolLanesEnabled();

/** Whether the triangle-inequality-pruned clustering kernels may be
 *  used (SPLAB_KMEANS_ACCEL; default on).  Re-read per fit so tests
 *  can toggle it within one process. */
bool kmeansAccelEnabled();

} // namespace splab

#endif // SPLAB_SUPPORT_ENV_HH
