#include "table.hh"

#include <cstdio>
#include <cstdlib>

#include "logging.hh"

namespace splab
{

void
TableWriter::header(std::vector<std::string> cols)
{
    SPLAB_ASSERT(rows.empty(), "header must precede rows");
    head = std::move(cols);
}

void
TableWriter::row(std::vector<std::string> cells)
{
    SPLAB_ASSERT(!head.empty(), "define a header first");
    SPLAB_ASSERT(cells.size() == head.size(),
                 "row width ", cells.size(), " != header width ",
                 head.size());
    rows.push_back(std::move(cells));
}

void
TableWriter::separator()
{
    rows.emplace_back(); // sentinel
}

std::string
TableWriter::render() const
{
    std::vector<std::size_t> width(head.size());
    for (std::size_t c = 0; c < head.size(); ++c)
        width[c] = head[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            if (r[c].size() > width[c])
                width[c] = r[c].size();

    auto hline = [&] {
        std::string s = "+";
        for (auto w : width)
            s += std::string(w + 2, '-') + "+";
        s += "\n";
        return s;
    };
    auto line = [&](const std::vector<std::string> &cells) {
        std::string s = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            s += " " + cells[c] +
                 std::string(width[c] - cells[c].size(), ' ') + " |";
        }
        s += "\n";
        return s;
    };

    std::string out;
    if (!tableTitle.empty())
        out += "== " + tableTitle + " ==\n";
    out += hline();
    out += line(head);
    out += hline();
    for (const auto &r : rows)
        out += r.empty() ? hline() : line(r);
    out += hline();
    return out;
}

void
TableWriter::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

void
CsvWriter::emit(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const std::string &c = cells[i];
        bool quote = c.find_first_of(",\"\n") != std::string::npos;
        if (i)
            out += ',';
        if (quote) {
            out += '"';
            for (char ch : c) {
                if (ch == '"')
                    out += '"';
                out += ch;
            }
            out += '"';
        } else {
            out += c;
        }
    }
    out += '\n';
}

void
CsvWriter::header(const std::vector<std::string> &cols)
{
    emit(cols);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    emit(cells);
}

bool
CsvWriter::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtPct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

std::string
fmtCount(unsigned long long v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int lead = static_cast<int>(raw.size()) % 3;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (i && static_cast<int>(i) % 3 == lead % 3 &&
            (lead || i % 3 == 0))
            out += ',';
        out += raw[i];
    }
    return out;
}

std::string
fmtSi(double v, int digits)
{
    static const char *suffix[] = {"", " K", " M", " B", " T"};
    int s = 0;
    double a = v < 0 ? -v : v;
    while (a >= 1000.0 && s < 4) {
        a /= 1000.0;
        v /= 1000.0;
        ++s;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%s", digits, v, suffix[s]);
    return buf;
}

std::string
fmtX(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", digits, v);
    return buf;
}

} // namespace splab
