#include "stats_util.hh"

#include <cmath>

#include "logging.hh"

namespace splab
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
weightedMean(const std::vector<double> &xs, const std::vector<double> &ws)
{
    SPLAB_ASSERT(xs.size() == ws.size(),
                 "weightedMean: size mismatch ", xs.size(), " vs ",
                 ws.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        num += xs[i] * ws[i];
        den += ws[i];
    }
    return den == 0.0 ? 0.0 : num / den;
}

double
relativeError(double measured, double reference)
{
    if (reference == 0.0)
        return std::fabs(measured);
    return std::fabs(measured - reference) / std::fabs(reference);
}

double
absPointError(double measured, double reference)
{
    return std::fabs(measured - reference);
}

double
meanRelativeError(const std::vector<double> &measured,
                  const std::vector<double> &reference)
{
    SPLAB_ASSERT(measured.size() == reference.size(),
                 "meanRelativeError: size mismatch");
    if (measured.empty())
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < measured.size(); ++i)
        s += relativeError(measured[i], reference[i]);
    return s / static_cast<double>(measured.size());
}

double
clamp(double v, double lo, double hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    SPLAB_ASSERT(xs.size() == ys.size(), "pearson: size mismatch");
    if (xs.size() < 2)
        return 0.0;
    double mx = mean(xs), my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        double dx = xs[i] - mx, dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

} // namespace splab
