#include "rng.hh"

namespace splab
{

u64
hashBytes(const void *data, std::size_t len)
{
    const u8 *p = static_cast<const u8 *>(data);
    u64 h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    // Final avalanche so short strings spread across the word.
    return mix64(h);
}

std::size_t
sampleCdf(const double *cdf, std::size_t n, double u)
{
    // Binary search for the first entry >= u.
    std::size_t lo = 0, hi = n;
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (cdf[mid] < u)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo < n ? lo : n - 1;
}

} // namespace splab
