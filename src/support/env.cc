#include "env.hh"

#include <cstdlib>

#include "logging.hh"

namespace splab
{

double
envDouble(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    double x = std::strtod(v, &end);
    if (end == v) {
        SPLAB_WARN("ignoring non-numeric ", name, "=", v);
        return fallback;
    }
    return x;
}

long
envLong(const char *name, long fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    long x = std::strtol(v, &end, 10);
    if (end == v) {
        SPLAB_WARN("ignoring non-numeric ", name, "=", v);
        return fallback;
    }
    return x;
}

std::string
envString(const char *name, const std::string &fallback)
{
    const char *v = std::getenv(name);
    return v ? std::string(v) : fallback;
}

double
workloadScale()
{
    static const double scale = [] {
        double s = envDouble("SPLAB_SCALE", 1.0);
        if (s <= 0.0) {
            SPLAB_WARN("SPLAB_SCALE must be positive; using 1.0");
            s = 1.0;
        }
        return s;
    }();
    return scale;
}

std::string
artifactCacheDir()
{
    return envString("SPLAB_CACHE", "splab_cache");
}

u64
cacheMaxBytes()
{
    long v = envLong("SPLAB_CACHE_MAX_BYTES", 0);
    if (v < 0) {
        SPLAB_WARN("SPLAB_CACHE_MAX_BYTES must be >= 0; "
                   "treating as unbounded");
        return 0;
    }
    return static_cast<u64>(v);
}

std::string
servicePath()
{
    return envString("SPLAB_SERVICE", "");
}

bool
fusedPersistEnabled()
{
    return envLong("SPLAB_FUSED_PERSIST", 1) != 0;
}

bool
genPipelineEnabled()
{
    return envLong("SPLAB_GEN_PIPELINE", 1) != 0;
}

bool
simdKernelsEnabled()
{
    return envLong("SPLAB_SIMD", 1) != 0;
}

bool
toolLanesEnabled()
{
    return envLong("SPLAB_TOOL_LANES", 1) != 0;
}

bool
kmeansAccelEnabled()
{
    return envLong("SPLAB_KMEANS_ACCEL", 1) != 0;
}

} // namespace splab
