#include "serialize.hh"

#include <cstdio>

#include "rng.hh"

namespace splab
{

namespace
{

u64
rawChecksum(const std::vector<u8> &buf)
{
    return hashBytes(buf.data(), buf.size());
}

/** Read a whole file into memory. @return false on I/O error. */
bool
slurp(const std::string &path, std::vector<u8> &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
        std::fclose(f);
        return false;
    }
    out.resize(static_cast<std::size_t>(size));
    std::size_t got = size ? std::fread(out.data(), 1, out.size(), f) : 0;
    std::fclose(f);
    return got == out.size();
}

} // namespace

void
ByteWriter::putString(const std::string &s)
{
    put<u64>(s.size());
    const auto *p = reinterpret_cast<const u8 *>(s.data());
    buf.insert(buf.end(), p, p + s.size());
}

bool
ByteWriter::saveFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    u64 csum = rawChecksum(buf);
    bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size() &&
              std::fwrite(&csum, 1, sizeof(csum), f) == sizeof(csum);
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

ByteReader
ByteReader::loadFile(const std::string &path)
{
    std::vector<u8> data;
    if (!slurp(path, data))
        SPLAB_FATAL("cannot read file: ", path);
    if (data.size() < sizeof(u64))
        SPLAB_FATAL("file too small to be valid: ", path);
    u64 stored;
    std::memcpy(&stored, data.data() + data.size() - sizeof(u64),
                sizeof(u64));
    data.resize(data.size() - sizeof(u64));
    if (stored != rawChecksum(data))
        SPLAB_FATAL("checksum mismatch (corrupt file): ", path);
    return ByteReader(std::move(data));
}

bool
ByteReader::probeFile(const std::string &path)
{
    std::vector<u8> data;
    if (!slurp(path, data) || data.size() < sizeof(u64))
        return false;
    u64 stored;
    std::memcpy(&stored, data.data() + data.size() - sizeof(u64),
                sizeof(u64));
    data.resize(data.size() - sizeof(u64));
    return stored == rawChecksum(data);
}

std::string
ByteReader::getString()
{
    u64 n = get<u64>();
    SPLAB_ASSERT(pos + n <= buf.size(), "serialized string truncated");
    std::string s(reinterpret_cast<const char *>(buf.data() + pos), n);
    pos += n;
    return s;
}

} // namespace splab
