/**
 * @file
 * Deterministic fork-join parallelism.
 *
 * Every parallel stage in the library must produce bit-identical
 * results at any thread count.  The contract that makes that hold:
 *
 *  - parallelFor(n, fn) invokes fn(i) exactly once per index, on
 *    unspecified threads in unspecified order.  Tasks therefore
 *    write only to index-addressed slots (out[i]), never to shared
 *    accumulators.
 *  - Floating-point reductions happen *after* the parallel region,
 *    in a fixed order: either index order (parallelMap results) or
 *    chunk order over a fixedChunks() decomposition, which is a pure
 *    function of (n, chunkSize) and independent of thread count.
 *  - Every unit of work owns its seed (hashCombine(seed, i)), so no
 *    RNG state is shared across tasks.
 *
 * The worker count comes from SPLAB_THREADS (0 or unset = all
 * hardware threads) and may change wall time only, never results.
 * Nested parallelFor calls run inline on the calling worker, so
 * composed parallel stages (a parallel k-sweep whose per-k restarts
 * are themselves parallelMap calls) neither deadlock nor
 * oversubscribe.
 *
 * Pipelines that park roles on workers (the engine's generation
 * producers and per-tool consumer lanes, pin/engine.cc) rely on a
 * further property of forEach: each thread runs one index at a time
 * to completion, so as long as the number of mutually-blocking
 * roles does not exceed the pool size, every role gets its own
 * thread and cross-role waits cannot deadlock.
 */

#ifndef SPLAB_SUPPORT_THREAD_POOL_HH
#define SPLAB_SUPPORT_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace splab
{

/**
 * A persistent pool of worker threads executing index-space jobs.
 * The submitting thread participates, so a pool of size T uses T-1
 * hidden workers; size 1 never spawns a thread and runs inline.
 */
class ThreadPool
{
  public:
    /** @param nThreads total parallelism including the caller (>=1). */
    explicit ThreadPool(std::size_t nThreads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the submitting thread). */
    std::size_t threads() const { return workers.size() + 1; }

    /**
     * Run fn(0..n-1) to completion across the pool.  Blocks until
     * every index finished.  If tasks throw, the exception raised by
     * the *lowest* index is rethrown here (deterministically) after
     * all indices have run.  Calls from inside a pool task run the
     * whole range inline on the calling thread.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /** Process-wide pool, sized from SPLAB_THREADS on first use. */
    static ThreadPool &global();

    /**
     * Replace the global pool (test/bench hook).  @p n = 0 restores
     * the SPLAB_THREADS / hardware default.  Must not be called while
     * a parallel region is active.
     */
    static void setGlobalThreads(std::size_t n);

  private:
    void workerLoop();
    void runIndices(const std::function<void(std::size_t)> &fn,
                    std::size_t n);

    std::vector<std::thread> workers;

    std::mutex mtx;
    std::condition_variable wake; ///< workers: a job was posted
    std::condition_variable idle; ///< submitter: all indices done
    bool stopping = false;

    // Current job (guarded by mtx except the claim counter).
    const std::function<void(std::size_t)> *jobFn = nullptr;
    std::size_t jobSize = 0;
    std::uint64_t generation = 0;
    std::atomic<std::size_t> nextIndex{0};
    std::size_t completed = 0;
    std::size_t claimers = 0; ///< workers inside runIndices
    std::exception_ptr firstError;
    std::size_t firstErrorIndex = 0;
};

/** Pool parallelism actually in use (>=1). */
std::size_t parallelThreads();

/**
 * True while the calling thread is inside a parallel region (a pool
 * worker, or a submitter with a job in flight).  A parallelFor
 * issued now would run inline and serial; producer/consumer
 * pipelines use this to fall back to their serial paths instead of
 * deadlocking on roles that would never run concurrently.
 */
bool parallelRegionActive();

/** Run fn(0..n-1) on the global pool (see ThreadPool::forEach). */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

/**
 * Map an index space through @p fn, collecting results by index —
 * never by completion order — so the output is independent of
 * scheduling.  T must be default-constructible.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(std::size_t n, Fn &&fn)
{
    std::vector<T> out(n);
    parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
}

/** Half-open index range [begin, end). */
struct ChunkRange
{
    std::size_t begin = 0;
    std::size_t end = 0;

    std::size_t size() const { return end - begin; }
};

/**
 * Split [0, n) into fixed chunks of @p chunkSize (last one ragged).
 * The decomposition depends only on (n, chunkSize) — never on the
 * thread count — so per-chunk partial sums reduced in chunk order
 * yield bit-identical floating-point results at any parallelism.
 */
std::vector<ChunkRange> fixedChunks(std::size_t n,
                                    std::size_t chunkSize);

/**
 * The chunked-accumulate idiom in one helper: split [0, n) with
 * fixedChunks, default-construct one Acc per chunk, and run
 * body(acc, range) for every chunk across the pool.  The returned
 * accumulators are in chunk order — reduce them serially in that
 * order to keep floating-point results thread-count invariant.
 */
template <typename Acc, typename Fn>
std::vector<Acc>
parallelChunkApply(std::size_t n, std::size_t chunkSize, Fn &&body)
{
    const auto chunks = fixedChunks(n, chunkSize);
    std::vector<Acc> accs(chunks.size());
    parallelFor(chunks.size(),
                [&](std::size_t ci) { body(accs[ci], chunks[ci]); });
    return accs;
}

} // namespace splab

#endif // SPLAB_SUPPORT_THREAD_POOL_HH
