/**
 * @file
 * Dense row-major matrix of doubles.
 *
 * The clustering hot paths (nearest-centroid scans in k-means and
 * SimPoint finalization) stream every point against every centroid.
 * A vector-of-vectors layout chases one pointer per row; this type
 * keeps all rows in one contiguous allocation so the scans walk
 * cache lines linearly and the prefetcher can keep up.
 */

#ifndef SPLAB_SUPPORT_MATRIX_HH
#define SPLAB_SUPPORT_MATRIX_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "logging.hh"

namespace splab
{

/** Contiguous row-major matrix of doubles. */
class DenseMatrix
{
  public:
    DenseMatrix() = default;

    DenseMatrix(std::size_t rows, std::size_t cols)
        : nRows(rows), nCols(cols), buf(rows * cols, 0.0)
    {
    }

    std::size_t rows() const { return nRows; }
    std::size_t cols() const { return nCols; }
    bool empty() const { return nRows == 0; }

    double *row(std::size_t r) { return buf.data() + r * nCols; }

    const double *
    row(std::size_t r) const
    {
        return buf.data() + r * nCols;
    }

    double &
    at(std::size_t r, std::size_t c)
    {
        return buf[r * nCols + c];
    }

    double
    at(std::size_t r, std::size_t c) const
    {
        return buf[r * nCols + c];
    }

    /** Overwrite row @p r with @p src (must hold cols() doubles). */
    void
    setRow(std::size_t r, const double *src)
    {
        std::copy(src, src + nCols, row(r));
    }

    /** Copy of row @p r as an owning vector (test convenience). */
    std::vector<double>
    rowCopy(std::size_t r) const
    {
        return std::vector<double>(row(r), row(r) + nCols);
    }

    /** Reshape to rows x cols, zero-filled. */
    void
    reset(std::size_t rows, std::size_t cols)
    {
        nRows = rows;
        nCols = cols;
        buf.assign(rows * cols, 0.0);
    }

    /** O(1) buffer exchange with @p other.  The k-means drift
     *  bookkeeping double-buffers previous/current centroids with
     *  this instead of copying every iteration. */
    void
    swap(DenseMatrix &other)
    {
        std::swap(nRows, other.nRows);
        std::swap(nCols, other.nCols);
        buf.swap(other.buf);
    }

    /** Build from equally-sized row vectors. */
    static DenseMatrix
    fromRows(const std::vector<std::vector<double>> &rows)
    {
        DenseMatrix m;
        if (rows.empty())
            return m;
        m.reset(rows.size(), rows[0].size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
            SPLAB_ASSERT(rows[r].size() == m.nCols,
                         "matrix: ragged input rows");
            m.setRow(r, rows[r].data());
        }
        return m;
    }

  private:
    std::size_t nRows = 0;
    std::size_t nCols = 0;
    std::vector<double> buf;
};

} // namespace splab

#endif // SPLAB_SUPPORT_MATRIX_HH
