/**
 * @file
 * Small numeric helpers used throughout metric aggregation.
 */

#ifndef SPLAB_SUPPORT_STATS_UTIL_HH
#define SPLAB_SUPPORT_STATS_UTIL_HH

#include <cstddef>
#include <vector>

namespace splab
{

/** Arithmetic mean; 0 for an empty range. */
double mean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Weighted mean; weights need not be normalized. */
double weightedMean(const std::vector<double> &xs,
                    const std::vector<double> &ws);

/**
 * Relative error of @p measured against @p reference as a fraction
 * (0.25 == 25% off).  Returns |measured| when the reference is 0.
 */
double relativeError(double measured, double reference);

/** Absolute difference in percentage points between two fractions. */
double absPointError(double measured, double reference);

/** Mean of per-element relative errors over two equal-size vectors. */
double meanRelativeError(const std::vector<double> &measured,
                         const std::vector<double> &reference);

/** Clamp helper. */
double clamp(double v, double lo, double hi);

/** Pearson correlation coefficient; 0 if either side is constant. */
double pearson(const std::vector<double> &xs,
               const std::vector<double> &ys);

} // namespace splab

#endif // SPLAB_SUPPORT_STATS_UTIL_HH
