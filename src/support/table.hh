/**
 * @file
 * ASCII table and CSV emission for bench/example report output.
 *
 * Every bench binary prints a paper-style table to stdout via
 * TableWriter and mirrors the raw series to a CSV file via CsvWriter
 * so results can be re-plotted.
 */

#ifndef SPLAB_SUPPORT_TABLE_HH
#define SPLAB_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace splab
{

/** Column-aligned ASCII table with a header row and separators. */
class TableWriter
{
  public:
    /** @param title caption printed above the table. */
    explicit TableWriter(std::string title) : tableTitle(std::move(title)) {}

    /** Define the header; must be called before any row. */
    void header(std::vector<std::string> cols);

    /** Append a fully-formatted row (cells as strings). */
    void row(std::vector<std::string> cells);

    /** Append a horizontal separator between row groups. */
    void separator();

    /** Render to a string. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    std::size_t rowCount() const { return rows.size(); }

  private:
    std::string tableTitle;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows; // empty vec = separator
};

/** Comma-separated value writer; quotes cells when needed. */
class CsvWriter
{
  public:
    void header(const std::vector<std::string> &cols);
    void row(const std::vector<std::string> &cells);

    const std::string &content() const { return out; }

    /** @return true when the file was written successfully. */
    bool save(const std::string &path) const;

  private:
    void emit(const std::vector<std::string> &cells);

    std::string out;
};

/// @name Numeric cell formatting helpers
/// @{

/** Fixed-point with @p digits decimals, e.g. 12.35. */
std::string fmt(double v, int digits = 2);

/** Percentage with sign preserved, e.g. "25.16%". */
std::string fmtPct(double fraction, int digits = 2);

/** Large counts with thousands separators, e.g. "6,873,900". */
std::string fmtCount(unsigned long long v);

/** Engineering notation with suffix, e.g. "6.87 B", "10.4 M". */
std::string fmtSi(double v, int digits = 2);

/** Multiplicative factor, e.g. "750.3x". */
std::string fmtX(double v, int digits = 1);

/// @}

} // namespace splab

#endif // SPLAB_SUPPORT_TABLE_HH
