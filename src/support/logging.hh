/**
 * @file
 * Status and error reporting in the gem5 idiom.
 *
 * panic()  - an internal invariant was violated (a simpoint-lab bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  - the user asked for something impossible (bad config,
 *            bad file); exits with status 1.
 * warn()   - something is probably fine but worth telling the user.
 * inform() - plain status output.
 */

#ifndef SPLAB_SUPPORT_LOGGING_HH
#define SPLAB_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace splab
{

/** Verbosity levels for runtime status output. */
enum class LogLevel
{
    Quiet = 0,  ///< only warnings and errors
    Normal = 1, ///< inform() visible
    Verbose = 2 ///< debug chatter visible
};

/** Set the global verbosity (default: Normal, or $SPLAB_LOG). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void verboseImpl(const std::string &msg);

/** Fold a mixed argument pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort on an internal invariant violation. */
#define SPLAB_PANIC(...) \
    ::splab::detail::panicImpl(__FILE__, __LINE__, \
                               ::splab::detail::concat(__VA_ARGS__))

/** Exit(1) on an unrecoverable user error. */
#define SPLAB_FATAL(...) \
    ::splab::detail::fatalImpl(__FILE__, __LINE__, \
                               ::splab::detail::concat(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define SPLAB_WARN(...) \
    ::splab::detail::warnImpl(::splab::detail::concat(__VA_ARGS__))

/** Status message to stderr (suppressed when Quiet). */
#define SPLAB_INFORM(...) \
    ::splab::detail::informImpl(::splab::detail::concat(__VA_ARGS__))

/** Debug chatter (visible only when Verbose). */
#define SPLAB_VERBOSE(...) \
    ::splab::detail::verboseImpl(::splab::detail::concat(__VA_ARGS__))

/** Panic unless a condition holds; cheap enough to keep in release. */
#define SPLAB_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            SPLAB_PANIC("assertion failed: " #cond " ", ##__VA_ARGS__); \
        } \
    } while (0)

} // namespace splab

#endif // SPLAB_SUPPORT_LOGGING_HH
