/**
 * @file
 * Fundamental integer typedefs shared across the library.
 */

#ifndef SPLAB_SUPPORT_TYPES_HH
#define SPLAB_SUPPORT_TYPES_HH

#include <cstdint>

namespace splab
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Byte address in the simulated address space. */
using Addr = u64;

/** Count of dynamic instructions. */
using ICount = u64;

/** Count of simulated cycles. */
using Cycles = u64;

/** Index of a fixed-size execution slice within a run. */
using SliceIndex = u64;

/** Identifier of a static basic block. */
using BlockId = u32;

} // namespace splab

#endif // SPLAB_SUPPORT_TYPES_HH
