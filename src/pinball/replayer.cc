#include "replayer.hh"

#include "logger.hh"
#include "obs/counters.hh"
#include "support/logging.hh"

namespace splab
{

Replayer::Replayer(Pinball pinball) : ball(std::move(pinball))
{
    wl = std::make_unique<SyntheticWorkload>(ball.spec());
}

ICount
Replayer::replayRegion(std::size_t index, Engine &engine)
{
    SPLAB_ASSERT(index < ball.regions().size(),
                 "replay: region ", index, " out of range");
    static obs::Counter &regions =
        obs::counter("pinball.regions_replayed",
                     "regional pinball regions replayed");
    static obs::Counter &instrs =
        obs::counter("pinball.instrs_replayed",
                     "instructions replayed from pinballs");
    const RegionDesc &r = ball.regions()[index];
    ICount ran = engine.run(*wl, r.firstChunk, r.numChunks);
    regions.add();
    instrs.add(ran);
    return ran;
}

ICount
Replayer::replayWarmup(std::size_t index, u64 warmupChunks,
                       Engine &engine)
{
    SPLAB_ASSERT(index < ball.regions().size(),
                 "warmup: region ", index, " out of range");
    const RegionDesc &r = ball.regions()[index];
    u64 available = r.firstChunk;
    u64 n = warmupChunks < available ? warmupChunks : available;
    if (n == 0)
        return 0;
    static obs::Counter &warmup =
        obs::counter("pinball.warmup_chunks_replayed",
                     "chunks replayed for functional warm-up");
    warmup.add(n);
    return engine.run(*wl, r.firstChunk - n, n);
}

ICount
Replayer::replayAll(Engine &engine)
{
    ICount total = 0;
    for (std::size_t i = 0; i < ball.regions().size(); ++i)
        total += replayRegion(i, engine);
    return total;
}

bool
Replayer::verifyChecksum()
{
    if (ball.streamChecksum() == 0 ||
        ball.kind() != PinballKind::Whole)
        return true;
    u64 fresh =
        Logger::streamChecksum(*wl, 0, wl->totalChunks());
    return fresh == ball.streamChecksum();
}

} // namespace splab
