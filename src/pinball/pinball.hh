/**
 * @file
 * Pinballs: self-contained, replayable checkpoints of a workload
 * execution (the PinPlay analogue).
 *
 * A Whole Pinball captures the entire run; a Regional Pinball
 * captures the set of simulation-point regions plus their weights.
 * A pinball file embeds the complete benchmark specification, so
 * replay needs neither the "binary" (suite tables) nor "inputs" —
 * mirroring PinPlay's property that pinballs replay without the
 * original program, inputs or licenses.
 */

#ifndef SPLAB_PINBALL_PINBALL_HH
#define SPLAB_PINBALL_PINBALL_HH

#include <string>
#include <vector>

#include "workload/benchmark_spec.hh"

namespace splab
{

class ByteReader;
class ByteWriter;

/** Whole-execution vs regional checkpoint. */
enum class PinballKind : u8
{
    Whole = 0,
    Regional = 1
};

/** One replayable region (a simulation point). */
struct RegionDesc
{
    u64 firstChunk = 0;
    u64 numChunks = 0;
    double weight = 1.0;   ///< cluster share of the whole run
    u32 cluster = 0;
    SliceIndex slice = 0;  ///< slice index this region represents
    /** Per-region functional warm-up prescription (chunks replayed
     *  immediately before the region), from strategies that budget
     *  their own warm-up (SMARTS wunit/allwarm).  0 = no
     *  prescription: warm replays fall back to the experiment-wide
     *  warmupChunks parameter. */
    u64 warmupChunks = 0;
};

/** An in-memory pinball; save()/load() move it to/from disk. */
class Pinball
{
  public:
    Pinball() = default;
    Pinball(PinballKind kind, BenchmarkSpec spec,
            std::vector<RegionDesc> regions);

    PinballKind kind() const { return pinballKind; }
    const BenchmarkSpec &spec() const { return benchSpec; }
    const std::vector<RegionDesc> &regions() const { return regs; }

    /** Total instructions covered by the regions. */
    ICount coveredInstrs() const;

    /** Stream checksum captured by the logger (0 if not verified). */
    u64 streamChecksum() const { return checksum; }
    void setStreamChecksum(u64 c) { checksum = c; }

    /** Persist to @p path; fatal() on I/O failure. */
    void save(const std::string &path) const;

    /** Load a pinball; fatal() on corruption or bad magic. */
    static Pinball load(const std::string &path);

    /** Append the on-disk representation (magic, version, payload)
     *  to @p w; save() is this plus the file write. */
    void serialize(ByteWriter &w) const;

    /** Inverse of serialize(); fatal() on bad magic or version. */
    static Pinball deserialize(ByteReader &r);

  private:
    PinballKind pinballKind = PinballKind::Whole;
    BenchmarkSpec benchSpec;
    std::vector<RegionDesc> regs;
    u64 checksum = 0;
};

} // namespace splab

#endif // SPLAB_PINBALL_PINBALL_HH
