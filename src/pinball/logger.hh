/**
 * @file
 * The PinPlay logger: captures executions as pinballs.
 */

#ifndef SPLAB_PINBALL_LOGGER_HH
#define SPLAB_PINBALL_LOGGER_HH

#include "pinball.hh"
#include "sampling/region.hh"
#include "simpoint/simpoint.hh"

namespace splab
{

class SyntheticWorkload;

/**
 * Creates Whole Pinballs from live executions and extracts Regional
 * Pinballs from Whole Pinballs given a region selection.
 */
class Logger
{
  public:
    /**
     * Capture the whole execution of @p workload.
     *
     * @param verify when true, the logger actually executes the
     *        workload and embeds a checksum of the dynamic stream,
     *        which the replayer can re-verify (slow, like real
     *        PinPlay logging; off by default).
     */
    static Pinball captureWhole(SyntheticWorkload &workload,
                                bool verify = false);

    /**
     * Derive the Regional Pinball of a strategy's @p selection from
     * a Whole Pinball.  Each region becomes lengthSlices slices of
     * chunks with the region weight attached; a strategy's
     * per-region warm-up prescription carries through as
     * RegionDesc::warmupChunks (clamped to the available history).
     */
    static Pinball makeRegional(const Pinball &whole,
                                const RegionSelection &selection);

    /**
     * SimPoint-selection spelling: equivalent to viewing
     * @p simpoints through regionsFromSimPoints() — one slice per
     * point, cluster weight attached, no warm-up prescription.
     */
    static Pinball makeRegional(const Pinball &whole,
                                const SimPointResult &simpoints);

    /**
     * Checksum of the dynamic event stream of a chunk window; pure
     * function of the workload content (used by verify/replay).
     */
    static u64 streamChecksum(SyntheticWorkload &workload,
                              u64 firstChunk, u64 numChunks);
};

} // namespace splab

#endif // SPLAB_PINBALL_LOGGER_HH
