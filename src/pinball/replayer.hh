/**
 * @file
 * The PinPlay replayer: re-executes pinballs under analysis tools.
 */

#ifndef SPLAB_PINBALL_REPLAYER_HH
#define SPLAB_PINBALL_REPLAYER_HH

#include <memory>

#include "pin/engine.hh"
#include "pinball.hh"

namespace splab
{

/**
 * Reconstructs the workload embedded in a pinball and replays its
 * regions.  The replayer owns the reconstructed workload; engines
 * and tools are supplied by the caller so the same pinball can be
 * replayed under different tool stacks (ldstmix, allcache, timing).
 */
class Replayer
{
  public:
    explicit Replayer(Pinball pinball);

    const Pinball &pinball() const { return ball; }
    SyntheticWorkload &workload() { return *wl; }

    /** Number of replayable regions. */
    std::size_t regionCount() const
    {
        return ball.regions().size();
    }

    /**
     * Replay region @p index under @p engine.
     * @return instructions executed.
     */
    ICount replayRegion(std::size_t index, Engine &engine);

    /**
     * Replay up to @p warmupChunks chunks immediately preceding
     * region @p index (fewer if the region starts near chunk 0).
     * Tools should be switched to warm-up mode by the caller first.
     * @return instructions executed.
     */
    ICount replayWarmup(std::size_t index, u64 warmupChunks,
                        Engine &engine);

    /** Replay every region in order. @return instructions executed. */
    ICount replayAll(Engine &engine);

    /**
     * Re-verify the stream checksum captured by the logger (whole
     * pinballs only). @return true when it matches or none stored.
     */
    bool verifyChecksum();

  private:
    Pinball ball;
    std::unique_ptr<SyntheticWorkload> wl;
};

} // namespace splab

#endif // SPLAB_PINBALL_REPLAYER_HH
