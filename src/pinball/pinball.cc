#include "pinball.hh"

#include "obs/counters.hh"
#include "support/logging.hh"
#include "support/serialize.hh"

namespace splab
{

namespace
{
constexpr u64 kMagic = 0x53504c42'50494e31ULL; // "SPLBPIN1"
// v3: regions carry a per-region warm-up prescription
// (RegionDesc::warmupChunks).
constexpr u32 kVersion = 3;
} // namespace

Pinball::Pinball(PinballKind kind, BenchmarkSpec spec,
                 std::vector<RegionDesc> regions)
    : pinballKind(kind), benchSpec(std::move(spec)),
      regs(std::move(regions))
{
    for (const auto &r : regs) {
        SPLAB_ASSERT(r.numChunks > 0, "empty pinball region");
        SPLAB_ASSERT(r.firstChunk + r.numChunks <=
                         benchSpec.totalChunks,
                     "pinball region beyond the captured run");
    }
}

ICount
Pinball::coveredInstrs() const
{
    ICount total = 0;
    for (const auto &r : regs)
        total += r.numChunks * benchSpec.chunkLen;
    return total;
}

void
Pinball::serialize(ByteWriter &w) const
{
    w.put<u64>(kMagic);
    w.put<u32>(kVersion);
    w.put<u8>(static_cast<u8>(pinballKind));
    w.put<u64>(checksum);
    benchSpec.serialize(w);
    w.put<u64>(regs.size());
    for (const auto &r : regs) {
        w.put<u64>(r.firstChunk);
        w.put<u64>(r.numChunks);
        w.put<double>(r.weight);
        w.put<u32>(r.cluster);
        w.put<u64>(r.slice);
        w.put<u64>(r.warmupChunks);
    }
}

Pinball
Pinball::deserialize(ByteReader &r)
{
    if (r.get<u64>() != kMagic)
        SPLAB_FATAL("not a pinball byte stream");
    u32 version = r.get<u32>();
    if (version != kVersion)
        SPLAB_FATAL("unsupported pinball version ", version);
    Pinball p;
    p.pinballKind = static_cast<PinballKind>(r.get<u8>());
    p.checksum = r.get<u64>();
    p.benchSpec = BenchmarkSpec::deserialize(r);
    u64 n = r.get<u64>();
    p.regs.resize(n);
    for (auto &reg : p.regs) {
        reg.firstChunk = r.get<u64>();
        reg.numChunks = r.get<u64>();
        reg.weight = r.get<double>();
        reg.cluster = r.get<u32>();
        reg.slice = r.get<u64>();
        reg.warmupChunks = r.get<u64>();
    }
    return p;
}

void
Pinball::save(const std::string &path) const
{
    ByteWriter w;
    serialize(w);
    if (!w.saveFile(path))
        SPLAB_FATAL("cannot write pinball: ", path);
    obs::counter("pinball.bytes_saved",
                 "pinball bytes written to disk")
        .add(w.bytes().size());
}

Pinball
Pinball::load(const std::string &path)
{
    ByteReader r = ByteReader::loadFile(path);
    obs::counter("pinball.bytes_loaded",
                 "pinball bytes read from disk")
        .add(r.remaining());
    return deserialize(r);
}

} // namespace splab
