#include "logger.hh"

#include <algorithm>

#include "obs/counters.hh"
#include "obs/trace.hh"
#include "sampling/strategy.hh"
#include "support/logging.hh"
#include "workload/synthetic.hh"

namespace splab
{

namespace
{

/** Accumulates an order-sensitive checksum of the event stream. */
class ChecksumSink : public EventSink
{
  public:
    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *br) override
    {
        sum = hashCombine(sum, rec.bb);
        sum = hashCombine(sum, rec.instrs);
        for (std::size_t i = 0; i < nAccs; ++i) {
            sum = hashCombine(
                sum, accs[i].addr ^ (accs[i].isWrite ? 1ULL : 0ULL));
        }
        if (br)
            sum = hashCombine(sum, br->pc ^ (br->taken ? 2ULL : 0ULL));
    }

    u64 value() const { return sum; }

  private:
    u64 sum = 0x600dC0DEULL;
};

} // namespace

u64
Logger::streamChecksum(SyntheticWorkload &workload, u64 firstChunk,
                       u64 numChunks)
{
    ChecksumSink sink;
    workload.run(firstChunk, numChunks, sink, true);
    return sink.value();
}

Pinball
Logger::captureWhole(SyntheticWorkload &workload, bool verify)
{
    obs::TraceSpan span("logger.capture_whole");
    static obs::Counter &captured =
        obs::counter("pinball.whole_captured",
                     "whole pinballs logged");
    static obs::Counter &chunksLogged =
        obs::counter("pinball.chunks_logged",
                     "chunks covered by logged whole pinballs");
    captured.add();
    chunksLogged.add(workload.totalChunks());

    RegionDesc whole;
    whole.firstChunk = 0;
    whole.numChunks = workload.totalChunks();
    whole.weight = 1.0;

    Pinball p(PinballKind::Whole, workload.spec(), {whole});
    if (verify)
        p.setStreamChecksum(
            streamChecksum(workload, 0, workload.totalChunks()));
    return p;
}

Pinball
Logger::makeRegional(const Pinball &whole,
                     const RegionSelection &selection)
{
    obs::TraceSpan span("logger.make_regional");
    static obs::Counter &regionsLogged =
        obs::counter("pinball.regions_logged",
                     "regions extracted into regional pinballs");
    regionsLogged.add(selection.regions.size());
    SPLAB_ASSERT(whole.kind() == PinballKind::Whole,
                 "regional pinballs derive from whole pinballs");
    const BenchmarkSpec &spec = whole.spec();
    SPLAB_ASSERT(selection.sliceInstrs % spec.chunkLen == 0,
                 "slice length not chunk aligned");
    u64 sliceChunks = selection.sliceInstrs / spec.chunkLen;

    std::vector<RegionDesc> regions;
    regions.reserve(selection.regions.size());
    for (const Region &sr : selection.regions) {
        RegionDesc r;
        r.firstChunk = sr.startSlice * sliceChunks;
        r.numChunks = sr.lengthSlices * sliceChunks;
        if (r.firstChunk >= spec.totalChunks)
            SPLAB_PANIC("simulation region beyond the captured run");
        if (r.firstChunk + r.numChunks > spec.totalChunks)
            r.numChunks = spec.totalChunks - r.firstChunk;
        r.weight = sr.weight;
        r.cluster = sr.cluster;
        r.slice = sr.startSlice;
        r.warmupChunks = std::min<u64>(sr.warmupSlices * sliceChunks,
                                       r.firstChunk);
        regions.push_back(r);
    }
    return Pinball(PinballKind::Regional, spec, std::move(regions));
}

Pinball
Logger::makeRegional(const Pinball &whole,
                     const SimPointResult &simpoints)
{
    return makeRegional(whole, regionsFromSimPoints(simpoints));
}

} // namespace splab
