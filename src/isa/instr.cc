#include "instr.hh"

#include "support/logging.hh"

namespace splab
{

const std::string &
memClassName(MemClass c)
{
    static const std::array<std::string, kNumMemClasses> names = {
        "NO_MEM", "MEM_R", "MEM_W", "MEM_RW"};
    return names[static_cast<u8>(c)];
}

std::array<double, kNumMemClasses>
InstrMix::fractions() const
{
    std::array<double, kNumMemClasses> f{};
    ICount t = total();
    if (t == 0)
        return f;
    for (std::size_t i = 0; i < kNumMemClasses; ++i)
        f[i] = static_cast<double>(count[i]) / static_cast<double>(t);
    return f;
}

void
MixProfile::normalize()
{
    double s = noMem + memR + memW + memRW;
    SPLAB_ASSERT(s > 0.0, "MixProfile has zero mass");
    noMem /= s;
    memR /= s;
    memW /= s;
    memRW /= s;
}

std::array<double, kNumMemClasses>
MixProfile::cdf() const
{
    std::array<double, kNumMemClasses> c{};
    c[0] = noMem;
    c[1] = c[0] + memR;
    c[2] = c[1] + memW;
    c[3] = c[2] + memRW;
    return c;
}

} // namespace splab
