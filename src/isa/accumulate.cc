#include "accumulate.hh"

#include "support/env.hh"

#if defined(__SSE2__)
#include <emmintrin.h>
#define SPLAB_HAVE_SIMD_ACCUMULATE 1
#else
#define SPLAB_HAVE_SIMD_ACCUMULATE 0
#endif

namespace splab
{

BatchAggregates
accumulateScalar(const BlockRecord *blocks, std::size_t n,
                 const u8 *branchValid, const u8 *takenFlag,
                 const u8 *dataDepFlag)
{
    BatchAggregates a;
    for (std::size_t i = 0; i < n; ++i) {
        const BlockRecord &rec = blocks[i];
        a.mix += rec.mix;
        a.instrs += rec.instrs;
        a.fp += rec.fpInstrs;
    }
    a.branches = sumBytesScalar(branchValid, n);
    a.taken = sumBytesScalar(takenFlag, n);
    a.dataDep = sumBytesScalar(dataDepFlag, n);
    return a;
}

u64
sumBytesScalar(const u8 *p, std::size_t n)
{
    u64 s = 0;
    for (std::size_t i = 0; i < n; ++i)
        s += p[i];
    return s;
}

#if SPLAB_HAVE_SIMD_ACCUMULATE

u64
sumBytesSimd(const u8 *p, std::size_t n)
{
    // psadbw against zero sums 8 bytes into each 64-bit half; the
    // flags are 0/1 so the per-vector partials cannot overflow and
    // the running u64 lanes are exact.
    __m128i acc = _mm_setzero_si128();
    const __m128i zero = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(p + i));
        acc = _mm_add_epi64(acc, _mm_sad_epu8(v, zero));
    }
    alignas(16) u64 lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(lanes), acc);
    u64 s = lanes[0] + lanes[1];
    for (; i < n; ++i)
        s += p[i];
    return s;
}

BatchAggregates
accumulateSimd(const BlockRecord *blocks, std::size_t n,
               const u8 *branchValid, const u8 *takenFlag,
               const u8 *dataDepFlag)
{
    // The four u64 mix lanes of each record are contiguous: two
    // 128-bit adds accumulate all of them per block.  Integer sums
    // reassociate exactly, so this matches the scalar reference
    // bit-for-bit.
    __m128i mix01 = _mm_setzero_si128();
    __m128i mix23 = _mm_setzero_si128();
    u64 instrs = 0, fp = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const BlockRecord &rec = blocks[i];
        const __m128i *lanes =
            reinterpret_cast<const __m128i *>(rec.mix.count.data());
        mix01 = _mm_add_epi64(mix01, _mm_loadu_si128(lanes));
        mix23 = _mm_add_epi64(mix23, _mm_loadu_si128(lanes + 1));
        instrs += rec.instrs;
        fp += rec.fpInstrs;
    }

    BatchAggregates a;
    alignas(16) u64 out[2];
    _mm_store_si128(reinterpret_cast<__m128i *>(out), mix01);
    a.mix.count[0] = out[0];
    a.mix.count[1] = out[1];
    _mm_store_si128(reinterpret_cast<__m128i *>(out), mix23);
    a.mix.count[2] = out[0];
    a.mix.count[3] = out[1];
    a.instrs = instrs;
    a.fp = fp;
    a.branches = sumBytesSimd(branchValid, n);
    a.taken = sumBytesSimd(takenFlag, n);
    a.dataDep = sumBytesSimd(dataDepFlag, n);
    return a;
}

#else // !SPLAB_HAVE_SIMD_ACCUMULATE

u64
sumBytesSimd(const u8 *p, std::size_t n)
{
    return sumBytesScalar(p, n);
}

BatchAggregates
accumulateSimd(const BlockRecord *blocks, std::size_t n,
               const u8 *branchValid, const u8 *takenFlag,
               const u8 *dataDepFlag)
{
    return accumulateScalar(blocks, n, branchValid, takenFlag,
                            dataDepFlag);
}

#endif // SPLAB_HAVE_SIMD_ACCUMULATE

bool
simdAccumulateCompiled()
{
    return SPLAB_HAVE_SIMD_ACCUMULATE != 0;
}

bool
simdAccumulateEnabled()
{
    return simdAccumulateCompiled() && simdKernelsEnabled();
}

BatchAggregates
accumulateBatch(const BlockRecord *blocks, std::size_t n,
                const u8 *branchValid, const u8 *takenFlag,
                const u8 *dataDepFlag)
{
    if (simdAccumulateEnabled())
        return accumulateSimd(blocks, n, branchValid, takenFlag,
                              dataDepFlag);
    return accumulateScalar(blocks, n, branchValid, takenFlag,
                            dataDepFlag);
}

} // namespace splab
