/**
 * @file
 * Dynamic events delivered by the instrumentation engine to tools.
 *
 * The engine executes a workload at basic-block granularity: each
 * dynamic basic block produces one BlockRecord, zero or more
 * MemAccess events and at most one BranchRecord (for the terminating
 * control instruction).
 */

#ifndef SPLAB_ISA_EVENTS_HH
#define SPLAB_ISA_EVENTS_HH

#include <cstddef>
#include <vector>

#include "instr.hh"
#include "support/types.hh"

namespace splab
{

/** One dynamic memory reference. */
struct MemAccess
{
    Addr addr = 0;      ///< byte address
    u8 size = 8;        ///< access size in bytes
    bool isWrite = false;
};

/** Outcome of a dynamic branch instruction. */
struct BranchRecord
{
    Addr pc = 0;        ///< address of the branch instruction
    bool taken = false;
    /**
     * True when the workload model marks this dynamic branch as hard
     * to predict (data-dependent direction).  The timing model still
     * runs its own predictor; this flag steers the synthetic
     * direction stream, not the predictor.
     */
    bool dataDependent = false;
};

/** One dynamic execution of a static basic block. */
struct BlockRecord
{
    BlockId bb = 0;          ///< static basic-block identifier
    Addr pc = 0;             ///< virtual address of the block start
    u32 instrs = 0;          ///< total instructions in this execution
    InstrMix mix;            ///< per-MemClass breakdown (sums to instrs)
    u32 fpInstrs = 0;        ///< floating-point subset (informational)
    bool endsInBranch = false;
};

/**
 * A batch of dynamic events in structure-of-arrays layout: one
 * BlockRecord per dynamic block, all memory accesses flattened into
 * one pool addressed by per-block offsets, and the terminating
 * branches in a parallel array with a validity flag.
 *
 * The workload fills one batch per chunk and delivers it with a
 * single sink callback, so engine dispatch costs ~(chunks x tools)
 * virtual calls instead of ~(blocks x tools).  The arena is reusable:
 * clear() keeps capacity, so steady-state batch construction does not
 * allocate.
 *
 * Event content and order are exactly those of the per-block
 * callbacks — batching is a pure delivery reordering, never a
 * semantic change.
 *
 * Chunk-grained aggregates: the batch carries whole-chunk totals —
 * the summed InstrMix, fp-instruction count, branch outcome totals
 * and per-static-block instruction sums — so tools that only need
 * reductions (ldstmix, inscount, branchprofile, BBV accumulation)
 * consume O(1) (or O(touched blocks)) per chunk instead of walking
 * the block array.  They are computed lazily by a single
 * finalizeAggregates() pass over the filled SoA arrays (vectorized —
 * see isa/accumulate.hh; push() itself stays lean for the
 * generation inner loop) and cached until the next push/clear.  The
 * aggregates are pure integer sums of the same per-block fields, so
 * consuming them is observationally identical to the per-block
 * reduction in stream order.  In the parallel generation pipeline
 * the producing worker finalizes before handing the batch over, so
 * consumers only ever read.
 */
class EventBatch
{
  public:
    /** Drop all events; capacity is kept for reuse. */
    void
    clear()
    {
        blockRecs.clear();
        accOff.assign(1, 0);
        accUsed = 0;
        branchRecs.clear();
        branchFlag.clear();
        takenFlag.clear();
        dataDepFlag.clear();
        totalInstrs = 0;
        aggMix = InstrMix();
        aggFp = 0;
        aggBranches = 0;
        aggTaken = 0;
        aggDataDep = 0;
        // Zero only the touched slots of the dense block-sum array;
        // a full clear would be O(static blocks) per chunk.
        for (u32 b : touchedIds)
            blockSums[b] = 0;
        touchedIds.clear();
        aggValid = true; // an empty batch's aggregates are all zero
    }

    /**
     * Scratch space for the next block's accesses: guarantees
     * @p maxN writable slots at the pool tail and returns them.
     * The pool only ever grows to its high-water mark, so repeated
     * reservations are free after warm-up.
     */
    MemAccess *
    reserveAccs(std::size_t maxN)
    {
        if (accPool.size() < accUsed + maxN)
            accPool.resize(accUsed + maxN);
        return accPool.data() + accUsed;
    }

    /**
     * Append one block: @p rec, the first @p nAccs entries of the
     * last reserveAccs() scratch, and its terminating branch
     * (@p br ignored unless @p hasBranch).
     */
    void
    push(const BlockRecord &rec, std::size_t nAccs,
         const BranchRecord &br, bool hasBranch)
    {
        blockRecs.push_back(rec);
        accUsed += static_cast<u32>(nAccs);
        accOff.push_back(accUsed);
        branchRecs.push_back(hasBranch ? br : BranchRecord{});
        branchFlag.push_back(hasBranch ? 1 : 0);
        takenFlag.push_back(hasBranch && br.taken ? 1 : 0);
        dataDepFlag.push_back(hasBranch && br.dataDependent ? 1 : 0);
        aggValid = false;
    }

    /**
     * Compute the chunk-grained aggregates from the filled arrays
     * (no-op if already current).  Called implicitly by the
     * aggregate accessors; the generation pipeline calls it
     * explicitly on the producing worker so the finalize pass
     * parallelizes with generation and consumers only read.
     */
    void finalizeAggregates() const;

    std::size_t numBlocks() const { return blockRecs.size(); }
    bool empty() const { return blockRecs.empty(); }

    /** Total instructions across the batch. */
    ICount
    instrs() const
    {
        finalizeAggregates();
        return totalInstrs;
    }

    /// @name Per-block element access (the onBlock-compatible view)
    /// @{
    const BlockRecord &block(std::size_t i) const
    {
        return blockRecs[i];
    }

    std::size_t accCount(std::size_t i) const
    {
        return accOff[i + 1] - accOff[i];
    }

    /** Accesses of block @p i; null when it performed none. */
    const MemAccess *
    accs(std::size_t i) const
    {
        return accOff[i + 1] == accOff[i] ? nullptr
                                          : accPool.data() + accOff[i];
    }

    /** Terminating branch of block @p i, or null. */
    const BranchRecord *
    branch(std::size_t i) const
    {
        return branchFlag[i] ? &branchRecs[i] : nullptr;
    }
    /// @}

    /// @name Raw SoA views for batch-optimized tools
    /// @{
    const std::vector<BlockRecord> &blocks() const
    {
        return blockRecs;
    }
    /** Flattened access pool; block i owns [offsets()[i],
     *  offsets()[i+1]). */
    const std::vector<MemAccess> &accessPool() const
    {
        return accPool;
    }
    /** numBlocks() + 1 prefix offsets into accessPool(). */
    const std::vector<u32> &offsets() const { return accOff; }
    const std::vector<BranchRecord> &branches() const
    {
        return branchRecs;
    }
    /** 1 where block i ends in a branch, else 0. */
    const std::vector<u8> &branchValid() const { return branchFlag; }
    /// @}

    /// @name Chunk-grained aggregates (see class comment)
    /// @{
    /** Summed InstrMix of every block in the batch. */
    const InstrMix &
    mixTotal() const
    {
        finalizeAggregates();
        return aggMix;
    }
    /** Summed fp-instruction count. */
    ICount
    fpTotal() const
    {
        finalizeAggregates();
        return aggFp;
    }
    /** Terminating branches in the batch. */
    u64
    branchTotal() const
    {
        finalizeAggregates();
        return aggBranches;
    }
    /** ... of which taken. */
    u64
    takenTotal() const
    {
        finalizeAggregates();
        return aggTaken;
    }
    /** ... of which data-dependent (hard to predict). */
    u64
    dataDependentTotal() const
    {
        finalizeAggregates();
        return aggDataDep;
    }
    /**
     * Static blocks executed at least once in this batch, in
     * first-touch (stream) order.  blockInstrSum() of every other
     * block is zero.
     */
    const std::vector<u32> &
    touchedBlocks() const
    {
        finalizeAggregates();
        return touchedIds;
    }
    /** Total instructions block @p bb contributed to this batch. */
    u64
    blockInstrSum(u32 bb) const
    {
        finalizeAggregates();
        return blockSums[bb];
    }
    /// @}

    /**
     * Bytes currently reserved by every internal array (the arena
     * high-water footprint); feeds the genpipe.peak_arena_bytes
     * gauge.
     */
    std::size_t capacityBytes() const;

  private:
    std::vector<BlockRecord> blockRecs;
    std::vector<MemAccess> accPool;
    std::vector<u32> accOff{0};
    u32 accUsed = 0;
    std::vector<BranchRecord> branchRecs;
    std::vector<u8> branchFlag;
    std::vector<u8> takenFlag;
    std::vector<u8> dataDepFlag;

    // Aggregates: computed by finalizeAggregates() from the arrays
    // above, cached until the next push/clear.  Mutable so the const
    // accessors can finalize lazily; only ever touched by the single
    // thread that owns the batch at that point in the pipeline.
    mutable bool aggValid = true;
    mutable ICount totalInstrs = 0;
    mutable InstrMix aggMix;
    mutable ICount aggFp = 0;
    mutable u64 aggBranches = 0;
    mutable u64 aggTaken = 0;
    mutable u64 aggDataDep = 0;
    /** blockSums[bb] = instructions of static block bb in this
     *  batch; dense, grown to the highest BlockId seen, reset via
     *  the touched list. */
    mutable std::vector<u64> blockSums;
    mutable std::vector<u32> touchedIds;
};

} // namespace splab

#endif // SPLAB_ISA_EVENTS_HH
