/**
 * @file
 * Dynamic events delivered by the instrumentation engine to tools.
 *
 * The engine executes a workload at basic-block granularity: each
 * dynamic basic block produces one BlockRecord, zero or more
 * MemAccess events and at most one BranchRecord (for the terminating
 * control instruction).
 */

#ifndef SPLAB_ISA_EVENTS_HH
#define SPLAB_ISA_EVENTS_HH

#include "instr.hh"
#include "support/types.hh"

namespace splab
{

/** One dynamic memory reference. */
struct MemAccess
{
    Addr addr = 0;      ///< byte address
    u8 size = 8;        ///< access size in bytes
    bool isWrite = false;
};

/** Outcome of a dynamic branch instruction. */
struct BranchRecord
{
    Addr pc = 0;        ///< address of the branch instruction
    bool taken = false;
    /**
     * True when the workload model marks this dynamic branch as hard
     * to predict (data-dependent direction).  The timing model still
     * runs its own predictor; this flag steers the synthetic
     * direction stream, not the predictor.
     */
    bool dataDependent = false;
};

/** One dynamic execution of a static basic block. */
struct BlockRecord
{
    BlockId bb = 0;          ///< static basic-block identifier
    Addr pc = 0;             ///< virtual address of the block start
    u32 instrs = 0;          ///< total instructions in this execution
    InstrMix mix;            ///< per-MemClass breakdown (sums to instrs)
    u32 fpInstrs = 0;        ///< floating-point subset (informational)
    bool endsInBranch = false;
};

} // namespace splab

#endif // SPLAB_ISA_EVENTS_HH
