#include "events.hh"

#include "accumulate.hh"

namespace splab
{

void
EventBatch::finalizeAggregates() const
{
    if (aggValid)
        return;

    // Whole-batch totals via the vectorized accumulate kernels
    // (isa/accumulate.hh); integer sums, so bit-identical to the
    // per-block reduction in stream order.
    BatchAggregates a = accumulateBatch(
        blockRecs.data(), blockRecs.size(), branchFlag.data(),
        takenFlag.data(), dataDepFlag.data());
    aggMix = a.mix;
    totalInstrs = a.instrs;
    aggFp = a.fp;
    aggBranches = a.branches;
    aggTaken = a.taken;
    aggDataDep = a.dataDep;

    // Per-static-block sums and the first-touch order of touchedIds
    // are a scatter over BlockIds; recomputed from scratch so a
    // finalize after further pushes never double-counts.
    for (u32 b : touchedIds)
        blockSums[b] = 0;
    touchedIds.clear();
    for (const BlockRecord &rec : blockRecs) {
        if (rec.bb >= blockSums.size())
            blockSums.resize(rec.bb + 1, 0);
        u64 &sum = blockSums[rec.bb];
        if (sum == 0)
            touchedIds.push_back(rec.bb);
        sum += rec.instrs;
    }
    aggValid = true;
}

std::size_t
EventBatch::capacityBytes() const
{
    return blockRecs.capacity() * sizeof(BlockRecord) +
           accPool.capacity() * sizeof(MemAccess) +
           accOff.capacity() * sizeof(u32) +
           branchRecs.capacity() * sizeof(BranchRecord) +
           (branchFlag.capacity() + takenFlag.capacity() +
            dataDepFlag.capacity()) *
               sizeof(u8) +
           blockSums.capacity() * sizeof(u64) +
           touchedIds.capacity() * sizeof(u32);
}

} // namespace splab
