/**
 * @file
 * Static basic-block descriptors for synthetic programs.
 *
 * A synthetic phase owns a set of static basic blocks.  Block
 * identities are what the BBV profiler counts, so two phases with
 * disjoint block sets are maximally distant in BBV space, exactly as
 * two disjoint code regions would be under Pin.
 */

#ifndef SPLAB_ISA_BASIC_BLOCK_HH
#define SPLAB_ISA_BASIC_BLOCK_HH

#include <vector>

#include "instr.hh"
#include "support/types.hh"

namespace splab
{

/** Static description of one basic block of a synthetic program. */
struct StaticBlock
{
    BlockId id = 0;     ///< globally unique within a workload
    Addr pc = 0;        ///< code address (drives the L1I stream)
    u32 instrs = 0;     ///< instructions per execution
    /** Per-execution breakdown by MemClass; sums to instrs. */
    std::array<u32, kNumMemClasses> mix{};
    u32 fpInstrs = 0;   ///< floating-point subset
    bool endsInBranch = true;

    /** Number of memory references one execution performs. */
    u32
    memOps() const
    {
        // MEM_RW instructions touch memory twice (read + write).
        return mix[1] + mix[2] + 2 * mix[3];
    }
};

/** Code layout constants for synthetic programs. */
namespace code_layout
{
/** Base of the synthetic text segment. */
constexpr Addr kTextBase = 0x400000;
/** Bytes of code per static instruction (x86-ish average). */
constexpr Addr kBytesPerInstr = 4;
} // namespace code_layout

} // namespace splab

#endif // SPLAB_ISA_BASIC_BLOCK_HH
