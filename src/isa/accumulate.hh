/**
 * @file
 * Accumulate kernels over the EventBatch SoA arrays.
 *
 * Batched per-chunk delivery (DESIGN.md §10) turned the per-block
 * aggregate reductions — instruction-mix totals, fp counts, branch
 * outcome totals — into tight loops over contiguous arrays, which
 * makes them vectorizable.  This header provides both a scalar
 * reference implementation and an explicitly SIMD one (SSE2 on
 * x86-64; the scalar path everywhere else), plus the dispatch the
 * EventBatch uses.
 *
 * Equivalence contract: every total is an integer sum, so the SIMD
 * reassociation is exact — both implementations return bit-identical
 * results on any input (asserted in tests/test_gen_pipeline.cc and
 * re-measured every micro_engine run).  SPLAB_SIMD=0 forces the
 * scalar path at runtime.
 */

#ifndef SPLAB_ISA_ACCUMULATE_HH
#define SPLAB_ISA_ACCUMULATE_HH

#include <cstddef>

#include "events.hh"

namespace splab
{

/** Whole-batch reductions of the per-block event fields. */
struct BatchAggregates
{
    InstrMix mix;        ///< summed per-MemClass instruction counts
    ICount instrs = 0;   ///< summed rec.instrs (== mix total)
    ICount fp = 0;       ///< summed fp-instruction counts
    u64 branches = 0;    ///< blocks ending in a branch
    u64 taken = 0;       ///< ... of which taken
    u64 dataDep = 0;     ///< ... of which data-dependent

    bool
    operator==(const BatchAggregates &o) const
    {
        for (std::size_t c = 0; c < kNumMemClasses; ++c)
            if (mix.count[c] != o.mix.count[c])
                return false;
        return instrs == o.instrs && fp == o.fp &&
               branches == o.branches && taken == o.taken &&
               dataDep == o.dataDep;
    }
};

/**
 * Scalar reference: one pass over @p n blocks, summing the mix
 * lanes, instruction/fp counts and the three 0/1 branch-flag arrays
 * (@p branchValid / @p takenFlag / @p dataDepFlag, each @p n long).
 */
BatchAggregates accumulateScalar(const BlockRecord *blocks,
                                 std::size_t n, const u8 *branchValid,
                                 const u8 *takenFlag,
                                 const u8 *dataDepFlag);

/**
 * SIMD implementation: 128-bit lane-parallel adds over the mix
 * counts and psadbw byte-sums over the flag arrays.  Compiles to the
 * scalar reference where no SIMD ISA is available.
 */
BatchAggregates accumulateSimd(const BlockRecord *blocks,
                               std::size_t n, const u8 *branchValid,
                               const u8 *takenFlag,
                               const u8 *dataDepFlag);

/** Dispatch: SIMD when compiled in and not disabled via SPLAB_SIMD=0. */
BatchAggregates accumulateBatch(const BlockRecord *blocks,
                                std::size_t n, const u8 *branchValid,
                                const u8 *takenFlag,
                                const u8 *dataDepFlag);

/** True when the SIMD path was compiled in (SSE2 present). */
bool simdAccumulateCompiled();

/** True when accumulateBatch() will take the SIMD path. */
bool simdAccumulateEnabled();

/** Sum of a 0/1 byte array (exposed for tests and benches). */
u64 sumBytesScalar(const u8 *p, std::size_t n);
u64 sumBytesSimd(const u8 *p, std::size_t n);

} // namespace splab

#endif // SPLAB_ISA_ACCUMULATE_HH
