/**
 * @file
 * Instruction categories used by the instrumentation tools.
 *
 * The paper's ldstmix pintool splits the dynamic instruction stream
 * into four classes: NO_MEM (no memory operand), MEM_R (source in
 * memory), MEM_W (destination in memory) and MEM_RW (both, e.g. x86
 * movs).  We keep the same taxonomy, plus a branch flag used by the
 * timing model.
 */

#ifndef SPLAB_ISA_INSTR_HH
#define SPLAB_ISA_INSTR_HH

#include <array>
#include <string>

#include "support/types.hh"

namespace splab
{

/** Memory behaviour of an instruction (the ldstmix taxonomy). */
enum class MemClass : u8
{
    NoMem = 0, ///< no memory operand (compute / control)
    MemR = 1,  ///< at least one source operand in memory
    MemW = 2,  ///< destination operand in memory
    MemRW = 3, ///< both source and destination in memory (e.g. movs)
};

/** Number of MemClass categories. */
constexpr std::size_t kNumMemClasses = 4;

/** Display name matching the paper's figures (e.g. "MEM_R"). */
const std::string &memClassName(MemClass c);

/**
 * Dynamic instruction counts broken down by MemClass.
 *
 * This is the quantity the ldstmix tool reports and the quantity
 * Figures 3 and 7 compare between Whole and Regional runs.
 */
struct InstrMix
{
    std::array<ICount, kNumMemClasses> count{};

    ICount
    total() const
    {
        ICount t = 0;
        for (auto c : count)
            t += c;
        return t;
    }

    ICount &operator[](MemClass c) { return count[static_cast<u8>(c)]; }
    ICount operator[](MemClass c) const
    {
        return count[static_cast<u8>(c)];
    }

    InstrMix &
    operator+=(const InstrMix &o)
    {
        for (std::size_t i = 0; i < kNumMemClasses; ++i)
            count[i] += o.count[i];
        return *this;
    }

    /** Fraction of each category; all zeros for an empty mix. */
    std::array<double, kNumMemClasses> fractions() const;
};

/**
 * Fractional instruction mix (sums to ~1), the static description a
 * workload phase is configured with.
 */
struct MixProfile
{
    double noMem = 0.50;
    double memR = 0.35;
    double memW = 0.13;
    double memRW = 0.02;
    /** Fraction of all instructions that are branches (subset of
     *  noMem). */
    double branch = 0.08;

    /** Renormalize the four memory classes to sum to one. */
    void normalize();

    /** Cumulative distribution over the four classes, for sampling. */
    std::array<double, kNumMemClasses> cdf() const;
};

} // namespace splab

#endif // SPLAB_ISA_INSTR_HH
