/**
 * @file
 * Building a custom phase-structured workload from scratch, and
 * working with pinballs on disk: capture a Whole Pinball, derive the
 * Regional Pinball of its simulation points, save both, reload the
 * regional one and replay it under analysis tools — exactly the
 * PinPlay logger/replayer flow of the paper's Figure 2.
 *
 * Usage: custom_workload [output-dir]
 */

#include <cstdio>
#include <string>

#include "core/pipeline.hh"
#include "pin/tools/inscount.hh"
#include "pin/tools/ldstmix.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "support/table.hh"

using namespace splab;

int
main(int argc, char **argv)
{
    std::string dir = argc > 1 ? argv[1] : ".";

    // A four-phase "video encoder": per-frame motion search (hot
    // tables), DCT-like blocked compute, entropy coding (pointer
    // heavy) and a rare scene-change rescan.
    BenchmarkSpec spec;
    spec.name = "toy-encoder";
    spec.seed = 264;
    spec.totalChunks = 30000;

    PhaseSpec motion;
    motion.name = "motion-search";
    motion.weight = 0.45;
    motion.kernel = KernelKind::ZipfHotCold;
    motion.workingSetBytes = 4 << 20;
    motion.hotFraction = 0.05;
    motion.hotProbability = 0.9;

    PhaseSpec dct;
    dct.name = "dct";
    dct.weight = 0.3;
    dct.kernel = KernelKind::Blocked;
    dct.workingSetBytes = 1 << 20;
    dct.fpFraction = 0.5;
    dct.mix.branch = 0.04;

    PhaseSpec entropy;
    entropy.name = "entropy";
    entropy.weight = 0.2;
    entropy.kernel = KernelKind::PointerChase;
    entropy.workingSetBytes = 2 << 20;
    entropy.dataDepBranchFraction = 0.25;

    PhaseSpec rescan;
    rescan.name = "scene-change";
    rescan.weight = 0.05;
    rescan.kernel = KernelKind::Stream;
    rescan.workingSetBytes = 16 << 20;

    spec.phases = {motion, dct, entropy, rescan};
    spec.schedule = ScheduleKind::Interleaved; // frame-periodic
    spec.dwellChunks = 250;

    // Capture the whole execution (with stream checksum) and derive
    // the regional pinball from the SimPoint selection.
    SyntheticWorkload workload(spec);
    Pinball whole = Logger::captureWhole(workload, /*verify=*/true);

    PinPointsPipeline pipeline;
    SimPointResult points = pipeline.simpoints(spec);
    Pinball regional = Logger::makeRegional(whole, points);

    std::string wholePath = dir + "/toy-encoder.whole.pinball";
    std::string regionalPath = dir + "/toy-encoder.region.pinball";
    whole.save(wholePath);
    regional.save(regionalPath);
    std::printf("captured %s (%llu instrs) -> %zu regions in %s\n\n",
                wholePath.c_str(),
                static_cast<unsigned long long>(whole.coveredInstrs()),
                regional.regions().size(), regionalPath.c_str());

    // A different process would start here: reload and replay.
    Replayer replayer(Pinball::load(regionalPath));
    if (!replayer.verifyChecksum())
        SPLAB_FATAL("replay does not match the captured stream");

    TableWriter t("per-region replay of " + regionalPath);
    t.header({"Region", "Slice", "Weight", "Instrs", "NO_MEM",
              "MEM_R"});
    for (std::size_t i = 0; i < replayer.regionCount(); ++i) {
        InsCountTool count;
        LdStMixTool mix;
        Engine engine;
        engine.attach(&count);
        engine.attach(&mix);
        replayer.replayRegion(i, engine);
        auto f = mix.mix().fractions();
        const RegionDesc &r = replayer.pinball().regions()[i];
        t.row({std::to_string(i),
               std::to_string(r.slice), fmtPct(r.weight, 1),
               fmtCount(count.instructions()), fmtPct(f[0], 1),
               fmtPct(f[1], 1)});
    }
    t.print();

    std::printf("\nEach region is self-contained: the pinball file "
                "embeds the full workload\nspecification, so replay "
                "needed neither the suite tables nor the original\n"
                "spec object (PinPlay's portability property).\n");
    std::remove(wholePath.c_str());
    std::remove(regionalPath.c_str());
    return 0;
}
