/**
 * @file
 * The paper's cautionary tale, reproduced as a runnable experiment:
 * exploring a memory hierarchy with SimPoints and *no* cache
 * warm-up can invert design conclusions.
 *
 * We compare two candidate L3 designs (8 MiB vs 16 MiB) three ways:
 *   - ground truth: full-run simulation,
 *   - naive sampling: cold-start regional replays,
 *   - careful sampling: regional replays with warm-up.
 * The interesting output is the *relative benefit* of the bigger L3
 * under each methodology.
 *
 * Usage: cache_warmup_study [benchmark]
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/scale.hh"
#include "core/runs.hh"
#include "support/table.hh"
#include "workload/suite.hh"

using namespace splab;

namespace
{

HierarchyConfig
withL3(u64 megabytes)
{
    HierarchyConfig cfg = tableIConfig();
    cfg.l3.sizeBytes = megabytes << 20;
    // Model scale: far-cache capacities track the slice length.
    return scaleFarCaches(cfg, scale::kFarCacheDivisor);
}

struct Study
{
    double whole;
    double cold;
    double warm;
};

Study
l3MissRates(const BenchmarkSpec &spec, const SimPointResult &sp,
            const HierarchyConfig &caches, u64 warmupChunks)
{
    Study s{};
    s.whole = measureWholeCache(spec, caches).l3.missRate();
    s.cold = aggregateCache(
                 measurePointsCache(spec, sp, caches, 0))
                 .l3MissRate;
    s.warm = aggregateCache(
                 measurePointsCache(spec, sp, caches, warmupChunks))
                 .l3MissRate;
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "505.mcf_r";
    BenchmarkSpec spec = benchmarkByName(name);

    PinPointsPipeline pipe;
    SimPointResult sp = pipe.simpoints(spec);
    std::printf("%s: %zu simulation points\n\n", name.c_str(),
                sp.points.size());

    constexpr u64 kWarmupChunks = 120; // ~ paper's 500M cycles
    Study small = l3MissRates(spec, sp, withL3(8), kWarmupChunks);
    Study big = l3MissRates(spec, sp, withL3(16), kWarmupChunks);

    TableWriter t("L3 miss rate under three methodologies - " + name);
    t.header({"Methodology", "8 MiB L3", "16 MiB L3",
              "benefit of 16 MiB"});
    auto benefit = [](double a, double b) {
        return a > 0.0 ? (a - b) / a : 0.0;
    };
    t.row({"full run (ground truth)", fmtPct(small.whole),
           fmtPct(big.whole), fmtPct(benefit(small.whole, big.whole))});
    t.row({"SimPoints, cold (naive)", fmtPct(small.cold),
           fmtPct(big.cold), fmtPct(benefit(small.cold, big.cold))});
    t.row({"SimPoints + warm-up", fmtPct(small.warm),
           fmtPct(big.warm), fmtPct(benefit(small.warm, big.warm))});
    t.print();

    double truth = benefit(small.whole, big.whole);
    double naive = benefit(small.cold, big.cold);
    double careful = benefit(small.warm, big.warm);
    std::printf("\nGround-truth benefit of doubling the L3: %.1f%%\n"
                "Naive cold sampling estimates:          %.1f%%\n"
                "Warmed sampling estimates:              %.1f%%\n\n",
                truth * 100, naive * 100, careful * 100);
    std::printf("The paper's warning (Section IV-D): without "
                "warm-up, cold-start misses\ndilute the difference "
                "between hierarchy designs, and size/latency "
                "trade-offs\nevaluated this way can pick the wrong "
                "design.\n");
    return 0;
}
