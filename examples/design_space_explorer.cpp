/**
 * @file
 * Design-space explorer: the paper's Section IV-A methodology as a
 * reusable command-line tool.  Sweeps MaxK and slice size for any
 * suite benchmark and reports how far each sampling configuration
 * lands from the full run.
 *
 * Usage:
 *   design_space_explorer [benchmark] [maxk...]
 *   e.g. design_space_explorer 605.mcf_s 10 20 35
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/pipeline.hh"
#include "core/runs.hh"
#include "core/scale.hh"
#include "support/stats_util.hh"
#include "support/table.hh"
#include "workload/suite.hh"

using namespace splab;

namespace
{

void
reportRow(TableWriter &t, const std::string &label,
          const AggregateCacheMetrics &m,
          const AggregateCacheMetrics &ref)
{
    double mixErr = 0.0;
    for (int c = 0; c < 4; ++c)
        mixErr = std::max(mixErr,
                          std::fabs(m.mixFrac[c] - ref.mixFrac[c]));
    t.row({label, fmtPct(m.mixFrac[0]), fmtPct(m.mixFrac[1]),
           fmtPct(m.l1dMissRate), fmtPct(m.l3MissRate),
           fmtPct(mixErr),
           fmtPct(relativeError(m.l3MissRate, ref.l3MissRate))});
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "623.xalancbmk_s";
    std::vector<u32> maxKs;
    for (int i = 2; i < argc; ++i)
        maxKs.push_back(static_cast<u32>(std::atoi(argv[i])));
    if (maxKs.empty())
        maxKs = {10, 15, 25, 35};

    BenchmarkSpec spec = benchmarkByName(name);
    HierarchyConfig caches =
        scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
    std::printf("exploring %s: %zu phases, %llu slices\n\n",
                name.c_str(), spec.phases.size(),
                static_cast<unsigned long long>(
                    spec.totalChunks / 10));

    CacheRunMetrics wholeRaw = measureWholeCache(spec, caches);
    AggregateCacheMetrics whole = wholeAsAggregate(wholeRaw);

    TableWriter t("sampling error vs full run - " + name);
    t.header({"Config", "NO_MEM", "MEM_R", "L1D miss", "L3 miss",
              "mix err", "L3 rel err"});
    reportRow(t, "full run", whole, whole);
    t.separator();

    for (u32 maxK : maxKs) {
        SimPointConfig cfg;
        cfg.maxK = maxK;
        PinPointsPipeline pipe(cfg);
        SimPointResult sp = pipe.simpoints(spec);
        auto agg = aggregateCache(
            measurePointsCache(spec, sp, caches, 0));
        reportRow(t,
                  "MaxK=" + std::to_string(maxK) + " (" +
                      std::to_string(sp.points.size()) + " pts)",
                  agg, whole);
    }
    t.separator();
    for (double sliceM : {15.0, 30.0, 100.0}) {
        SimPointConfig cfg;
        cfg.sliceInstrs = scale::sliceForPaperMillions(sliceM);
        PinPointsPipeline pipe(cfg);
        SimPointResult sp = pipe.simpoints(spec);
        auto agg = aggregateCache(
            measurePointsCache(spec, sp, caches, 0));
        reportRow(t,
                  "slice=" + fmt(sliceM, 0) + "M (" +
                      std::to_string(sp.points.size()) + " pts)",
                  agg, whole);
    }
    t.print();

    std::printf("\nReading the table: instruction-mix error should "
                "fall as MaxK rises; the\nL3 error falls as the "
                "slice grows (more accesses amortise the cold "
                "start).\n");
    return 0;
}
