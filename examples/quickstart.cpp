/**
 * @file
 * Quickstart: the whole PinPoints flow on a small synthetic
 * benchmark in ~60 lines of user code.
 *
 *   1. describe a phase-structured workload (BenchmarkSpec)
 *   2. pick simulation points (PinPointsPipeline)
 *   3. replay only the simulation points under analysis tools
 *   4. compare the weighted estimate against the full run
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/scale.hh"
#include "core/runs.hh"
#include "support/table.hh"

using namespace splab;

int
main()
{
    // 1. A two-phase program: a cache-hostile pointer chase and a
    //    streaming scan, alternating irregularly.
    BenchmarkSpec spec;
    spec.name = "quickstart";
    spec.seed = 2017;
    spec.totalChunks = 20000; // 20M instructions
    PhaseSpec chase;
    chase.name = "chase";
    chase.weight = 0.65;
    chase.kernel = KernelKind::PointerChase;
    chase.workingSetBytes = 2 << 20;
    PhaseSpec scan;
    scan.name = "scan";
    scan.weight = 0.35;
    scan.kernel = KernelKind::Stream;
    scan.workingSetBytes = 8 << 20;
    spec.phases = {chase, scan};
    spec.schedule = ScheduleKind::Markov;
    spec.dwellChunks = 200;

    // 2. SimPoint selection (MaxK = 35, 30M-equivalent slices).
    PinPointsPipeline pipeline;
    SimPointResult points = pipeline.simpoints(spec);
    std::printf("found %zu simulation points over %llu slices:\n",
                points.points.size(),
                static_cast<unsigned long long>(points.totalSlices));
    for (const auto &p : points.byDescendingWeight())
        std::printf("  slice %6llu  weight %5.1f%%  (cluster %u)\n",
                    static_cast<unsigned long long>(p.slice),
                    p.weight * 100.0, p.cluster);

    // 3. Replay: whole run vs weighted simulation points, under
    //    the Table I hierarchy at model scale.
    HierarchyConfig caches =
        scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
    CacheRunMetrics whole = measureWholeCache(spec, caches);
    auto perPoint =
        measurePointsCache(spec, points, caches, 0);
    AggregateCacheMetrics sampled = aggregateCache(perPoint);

    // 4. Compare.
    TableWriter t("whole run vs weighted simulation points");
    t.header({"Metric", "Whole", "Sampled", "note"});
    t.row({"instructions", fmtSi(double(whole.instrs), 1),
           fmtSi(double(sampled.executedInstrs), 1),
           fmtX(double(whole.instrs) /
                double(sampled.executedInstrs), 0) + " fewer"});
    const char *mixName[] = {"NO_MEM", "MEM_R", "MEM_W", "MEM_RW"};
    for (int c = 0; c < 4; ++c)
        t.row({mixName[c], fmtPct(whole.mixFrac[c]),
               fmtPct(sampled.mixFrac[c]), "should match closely"});
    t.row({"L1D miss rate", fmtPct(whole.l1d.missRate()),
           fmtPct(sampled.l1dMissRate), ""});
    t.row({"L3 miss rate", fmtPct(whole.l3.missRate()),
           fmtPct(sampled.l3MissRate),
           "inflated: cold caches (see cache_warmup_study)"});
    t.print();
    return 0;
}
