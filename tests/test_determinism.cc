/**
 * @file
 * Determinism guarantees across the stack: identical streams across
 * instances, windows, pinball round trips and suite constructions.
 * These properties are what make regional pinballs exact and every
 * bench byte-reproducible.
 */

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "pin/tools/ldstmix.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

TEST(Determinism, SuiteSpecsStableAcrossProcessLifetime)
{
    // Hashes must derive from content only (no pointers, no time).
    auto a = spec2017Suite();
    auto b = spec2017Suite();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].contentHash(), b[i].contentHash()) << a[i].name;
}

TEST(Determinism, SuiteStreamChecksumsAreStable)
{
    // A golden-value style regression net: if workload generation
    // changes, these change, and every cached artifact must be
    // invalidated.  Checked against a second evaluation rather than
    // literals so the test documents the *property*.
    for (const char *name : {"505.mcf_r", "519.lbm_r"}) {
        SyntheticWorkload w1(benchmarkByName(name));
        SyntheticWorkload w2(benchmarkByName(name));
        EXPECT_EQ(Logger::streamChecksum(w1, 100, 20),
                  Logger::streamChecksum(w2, 100, 20))
            << name;
    }
}

TEST(Determinism, SimPointSelectionIsReproducible)
{
    BenchmarkSpec spec = benchmarkByName("620.omnetpp_s");
    spec.totalChunks = 4000; // keep the test fast
    SimPointConfig cfg;
    cfg.maxK = 10;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult a = pipe.simpoints(spec);
    SimPointResult b = pipe.simpoints(spec);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].slice, b.points[i].slice);
        EXPECT_DOUBLE_EQ(a.points[i].weight, b.points[i].weight);
    }
    EXPECT_EQ(a.sliceToCluster, b.sliceToCluster);
}

TEST(Determinism, PinballRoundTripPreservesExecution)
{
    BenchmarkSpec spec = benchmarkByName("557.xz_r");
    spec.totalChunks = 2000;
    SyntheticWorkload original(spec);
    Pinball whole = Logger::captureWhole(original, true);

    std::string path = testing::TempDir() + "/det.pinball";
    whole.save(path);
    Replayer rep(Pinball::load(path));
    EXPECT_TRUE(rep.verifyChecksum());
    std::remove(path.c_str());
}

TEST(Determinism, WindowSplitMatchesContiguousRun)
{
    // Running [0, 100) in one engine call equals [0, 40) + [40, 100)
    // for every attached tool.
    BenchmarkSpec spec = benchmarkByName("541.leela_r");
    spec.totalChunks = 2000;

    SyntheticWorkload one(spec);
    LdStMixTool mixOne;
    Engine engineOne;
    engineOne.attach(&mixOne);
    engineOne.run(one, 0, 100);

    SyntheticWorkload two(spec);
    LdStMixTool mixTwo;
    Engine engineTwo;
    engineTwo.attach(&mixTwo);
    engineTwo.run(two, 0, 40);
    engineTwo.run(two, 40, 60);

    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_EQ(mixOne.mix().count[c], mixTwo.mix().count[c]);
}

TEST(Determinism, MidStreamAttachSeesSameSuffix)
{
    // A tool attached for the suffix only sees exactly the suffix
    // stream of a full run (Pin semantics: instrumentation does not
    // perturb execution).
    BenchmarkSpec spec = benchmarkByName("508.namd_r");
    spec.totalChunks = 1000;

    SyntheticWorkload full(spec);
    u64 direct = Logger::streamChecksum(full, 600, 50);

    SyntheticWorkload resumed(spec);
    // Execute a prefix with different tooling first.
    LdStMixTool mix;
    Engine engine;
    engine.attach(&mix);
    engine.run(resumed, 0, 600);
    u64 suffix = Logger::streamChecksum(resumed, 600, 50);
    EXPECT_EQ(direct, suffix);
}

TEST(Determinism, ScaledWorkloadKeepsStructure)
{
    // SPLAB_SCALE shortens runs but must not change the phase
    // structure (phases, weights, kernels).
    BenchmarkSpec full = benchmarkByName("625.x264_s");
    ASSERT_EQ(setenv("SPLAB_SCALE", "0.25", 1), 0);
    // workloadScale() caches on first use; emulate by constructing
    // the entry at a reduced length directly instead.
    unsetenv("SPLAB_SCALE");
    SuiteEntry entry = suiteEntry("625.x264_s");
    entry.slices /= 4;
    BenchmarkSpec quarter = makeBenchmark(entry);
    ASSERT_EQ(quarter.phases.size(), full.phases.size());
    for (std::size_t p = 0; p < full.phases.size(); ++p) {
        EXPECT_DOUBLE_EQ(quarter.phases[p].weight,
                         full.phases[p].weight);
        EXPECT_EQ(quarter.phases[p].kernel, full.phases[p].kernel);
    }
    EXPECT_EQ(quarter.totalChunks, full.totalChunks / 4);
}

} // namespace
} // namespace splab
