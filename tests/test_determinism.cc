/**
 * @file
 * Determinism guarantees across the stack: identical streams across
 * instances, windows, pinball round trips and suite constructions.
 * These properties are what make regional pinballs exact and every
 * bench byte-reproducible.
 */

#include <gtest/gtest.h>

#include "core/artifact_graph.hh"
#include "core/pipeline.hh"
#include "obs/json.hh"
#include "core/runs.hh"
#include "pin/tools/ldstmix.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "support/thread_pool.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

TEST(Determinism, SuiteSpecsStableAcrossProcessLifetime)
{
    // Hashes must derive from content only (no pointers, no time).
    auto a = spec2017Suite();
    auto b = spec2017Suite();
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].contentHash(), b[i].contentHash()) << a[i].name;
}

TEST(Determinism, SuiteStreamChecksumsAreStable)
{
    // A golden-value style regression net: if workload generation
    // changes, these change, and every cached artifact must be
    // invalidated.  Checked against a second evaluation rather than
    // literals so the test documents the *property*.
    for (const char *name : {"505.mcf_r", "519.lbm_r"}) {
        SyntheticWorkload w1(benchmarkByName(name));
        SyntheticWorkload w2(benchmarkByName(name));
        EXPECT_EQ(Logger::streamChecksum(w1, 100, 20),
                  Logger::streamChecksum(w2, 100, 20))
            << name;
    }
}

TEST(Determinism, SimPointSelectionIsReproducible)
{
    BenchmarkSpec spec = benchmarkByName("620.omnetpp_s");
    spec.totalChunks = 4000; // keep the test fast
    SimPointConfig cfg;
    cfg.maxK = 10;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult a = pipe.simpoints(spec);
    SimPointResult b = pipe.simpoints(spec);
    ASSERT_EQ(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < a.points.size(); ++i) {
        EXPECT_EQ(a.points[i].slice, b.points[i].slice);
        EXPECT_DOUBLE_EQ(a.points[i].weight, b.points[i].weight);
    }
    EXPECT_EQ(a.sliceToCluster, b.sliceToCluster);
}

/** Serialize a SimPointResult to comparable bytes. */
std::vector<u8>
simpointBytes(const SimPointResult &r)
{
    ByteWriter w;
    serializeSimPoints(w, r);
    return w.bytes();
}

/** Serialize per-point cache metrics, excluding wall time (the only
 *  field allowed to vary run to run). */
std::vector<u8>
cachePointBytes(const std::vector<PointCacheMetrics> &pts)
{
    ByteWriter w;
    for (const auto &p : pts) {
        w.put<double>(p.weight);
        w.put<u64>(p.m.instrs);
        for (double f : p.m.mixFrac)
            w.put<double>(f);
        for (const LevelCounts *lc :
             {&p.m.l1i, &p.m.l1d, &p.m.l2, &p.m.l3}) {
            w.put<u64>(lc->accesses);
            w.put<u64>(lc->misses);
        }
        w.put<u64>(p.m.branches);
    }
    return w.bytes();
}

/** Serialize per-point timing metrics, excluding wall time. */
std::vector<u8>
timingPointBytes(const std::vector<PointTimingMetrics> &pts)
{
    ByteWriter w;
    for (const auto &p : pts) {
        w.put<double>(p.weight);
        w.put<u64>(p.m.instrs);
        w.put<double>(p.m.cycles);
        w.put<u64>(p.m.branches);
        w.put<u64>(p.m.mispredicts);
        w.put<u64>(p.m.l2Hits);
        w.put<u64>(p.m.l3Hits);
        w.put<u64>(p.m.memAccesses);
    }
    return w.bytes();
}

TEST(Determinism, SimPointSelectionThreadCountInvariant)
{
    // The determinism contract of support/thread_pool.hh, end to
    // end: the serialized SimPoint selection must be byte-identical
    // for SPLAB_THREADS = 1, 2 and 8.
    BenchmarkSpec spec = benchmarkByName("620.omnetpp_s");
    spec.totalChunks = 3000;
    SimPointConfig cfg;
    cfg.maxK = 8;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    auto bbvs = pipe.profileBbvs(spec);

    std::vector<std::vector<u8>> blobs;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        blobs.push_back(simpointBytes(pickSimPoints(bbvs, cfg)));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(blobs[0].empty());
    EXPECT_EQ(blobs[0], blobs[1]);
    EXPECT_EQ(blobs[0], blobs[2]);
}

TEST(Determinism, RegionalReplayThreadCountInvariant)
{
    // Per-point cache and timing metrics must not depend on how the
    // regional replays were scheduled across threads.
    BenchmarkSpec spec = benchmarkByName("557.xz_r");
    spec.totalChunks = 2000;
    SimPointConfig cfg;
    cfg.maxK = 6;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult sp = pipe.simpoints(spec);

    std::vector<std::vector<u8>> cacheBlobs, timingBlobs;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        cacheBlobs.push_back(cachePointBytes(
            measurePointsCache(spec, sp, tableIConfig(), 2)));
        timingBlobs.push_back(timingPointBytes(
            measurePointsTiming(spec, sp, tableIIIMachine(), 2)));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(cacheBlobs[0].empty());
    EXPECT_EQ(cacheBlobs[0], cacheBlobs[1]);
    EXPECT_EQ(cacheBlobs[0], cacheBlobs[2]);
    ASSERT_FALSE(timingBlobs[0].empty());
    EXPECT_EQ(timingBlobs[0], timingBlobs[1]);
    EXPECT_EQ(timingBlobs[0], timingBlobs[2]);
}

/** Whole-run cache metrics as comparable bytes, excluding wall
 *  time. */
std::vector<u8>
wholeCacheBytes(const CacheRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    for (double f : m.mixFrac)
        w.put<double>(f);
    for (const LevelCounts *lc : {&m.l1i, &m.l1d, &m.l2, &m.l3}) {
        w.put<u64>(lc->accesses);
        w.put<u64>(lc->misses);
    }
    w.put<u64>(m.branches);
    return w.bytes();
}

/** Whole-run timing metrics as comparable bytes, excluding wall
 *  time. */
std::vector<u8>
wholeTimingBytes(const TimingRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    w.put<double>(m.cycles);
    w.put<u64>(m.branches);
    w.put<u64>(m.mispredicts);
    w.put<u64>(m.l2Hits);
    w.put<u64>(m.l3Hits);
    w.put<u64>(m.memAccesses);
    return w.bytes();
}

TEST(Determinism, FusedWholeRunThreadCountInvariant)
{
    // The fused single-pass measurement must be byte-identical to
    // the separate passes it replaces, at every thread-pool size —
    // fusion and batching are observer changes, never stream
    // changes.
    BenchmarkSpec spec = benchmarkByName("505.mcf_r");
    spec.totalChunks = 1500;
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();

    std::vector<u8> separateCache =
        wholeCacheBytes(measureWholeCache(spec, caches));
    std::vector<u8> separateTiming =
        wholeTimingBytes(measureWholeTiming(spec, machine));

    std::vector<std::vector<u8>> cacheBlobs, timingBlobs;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        FusedWholeResult fused =
            measureWholeFused(spec, caches, machine);
        cacheBlobs.push_back(wholeCacheBytes(fused.cache));
        timingBlobs.push_back(wholeTimingBytes(fused.timing));
    }
    ThreadPool::setGlobalThreads(0);

    for (std::size_t i = 0; i < cacheBlobs.size(); ++i) {
        EXPECT_EQ(cacheBlobs[i], separateCache) << "threads run " << i;
        EXPECT_EQ(timingBlobs[i], separateTiming)
            << "threads run " << i;
    }
}

TEST(Determinism, ArtifactManifestSectionThreadCountInvariant)
{
    // Artifact keys are pure functions of (spec, config, salts), so
    // the manifest's config + artifacts sections must render
    // byte-identically at any SPLAB_THREADS setting — that is what
    // makes run manifests diffable across machines.
    const std::vector<std::string> benches = {"620.omnetpp_s",
                                              "557.xz_r"};
    std::vector<ArtifactKind> allKinds;
    for (std::size_t k = 0; k < kNumArtifactKinds; ++k)
        allKinds.push_back(static_cast<ArtifactKind>(k));

    // Process-global counters/stages accumulate across iterations;
    // the contract under test is the config + artifacts sections.
    std::vector<std::string> renders;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        ArtifactGraph g(ExperimentConfig::paperDefaults(),
                        std::make_shared<const ArtifactCache>(
                            ArtifactCache("")));
        obs::RunManifest m("determinism-test");
        g.config().describe(m);
        g.recordArtifacts(m, benches, allKinds);
        auto parsed = obs::parseJson(m.renderDeterministic());
        ASSERT_TRUE(parsed.has_value());
        const obs::JsonValue *config = parsed->find("config");
        const obs::JsonValue *artifacts = parsed->find("artifacts");
        ASSERT_NE(config, nullptr);
        ASSERT_NE(artifacts, nullptr);
        EXPECT_EQ(artifacts->members().size(),
                  benches.size() * kNumArtifactKinds);
        renders.push_back(config->render() + artifacts->render());
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(renders[0].empty());
    EXPECT_EQ(renders[0], renders[1]);
    EXPECT_EQ(renders[0], renders[2]);
}

TEST(Determinism, PinballRoundTripPreservesExecution)
{
    BenchmarkSpec spec = benchmarkByName("557.xz_r");
    spec.totalChunks = 2000;
    SyntheticWorkload original(spec);
    Pinball whole = Logger::captureWhole(original, true);

    std::string path = testing::TempDir() + "/det.pinball";
    whole.save(path);
    Replayer rep(Pinball::load(path));
    EXPECT_TRUE(rep.verifyChecksum());
    std::remove(path.c_str());
}

TEST(Determinism, WindowSplitMatchesContiguousRun)
{
    // Running [0, 100) in one engine call equals [0, 40) + [40, 100)
    // for every attached tool.
    BenchmarkSpec spec = benchmarkByName("541.leela_r");
    spec.totalChunks = 2000;

    SyntheticWorkload one(spec);
    LdStMixTool mixOne;
    Engine engineOne;
    engineOne.attach(&mixOne);
    engineOne.run(one, 0, 100);

    SyntheticWorkload two(spec);
    LdStMixTool mixTwo;
    Engine engineTwo;
    engineTwo.attach(&mixTwo);
    engineTwo.run(two, 0, 40);
    engineTwo.run(two, 40, 60);

    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_EQ(mixOne.mix().count[c], mixTwo.mix().count[c]);
}

TEST(Determinism, MidStreamAttachSeesSameSuffix)
{
    // A tool attached for the suffix only sees exactly the suffix
    // stream of a full run (Pin semantics: instrumentation does not
    // perturb execution).
    BenchmarkSpec spec = benchmarkByName("508.namd_r");
    spec.totalChunks = 1000;

    SyntheticWorkload full(spec);
    u64 direct = Logger::streamChecksum(full, 600, 50);

    SyntheticWorkload resumed(spec);
    // Execute a prefix with different tooling first.
    LdStMixTool mix;
    Engine engine;
    engine.attach(&mix);
    engine.run(resumed, 0, 600);
    u64 suffix = Logger::streamChecksum(resumed, 600, 50);
    EXPECT_EQ(direct, suffix);
}

TEST(Determinism, ScaledWorkloadKeepsStructure)
{
    // SPLAB_SCALE shortens runs but must not change the phase
    // structure (phases, weights, kernels).
    BenchmarkSpec full = benchmarkByName("625.x264_s");
    ASSERT_EQ(setenv("SPLAB_SCALE", "0.25", 1), 0);
    // workloadScale() caches on first use; emulate by constructing
    // the entry at a reduced length directly instead.
    unsetenv("SPLAB_SCALE");
    SuiteEntry entry = suiteEntry("625.x264_s");
    entry.slices /= 4;
    BenchmarkSpec quarter = makeBenchmark(entry);
    ASSERT_EQ(quarter.phases.size(), full.phases.size());
    for (std::size_t p = 0; p < full.phases.size(); ++p) {
        EXPECT_DOUBLE_EQ(quarter.phases[p].weight,
                         full.phases[p].weight);
        EXPECT_EQ(quarter.phases[p].kernel, full.phases[p].kernel);
    }
    EXPECT_EQ(quarter.totalChunks, full.totalChunks / 4);
}

} // namespace
} // namespace splab
