/**
 * @file
 * ArtifactCache hygiene tests: the persistent index (incremental
 * maintenance, reopen without a scan, rebuild from a corrupt or
 * missing index), size-bounded LRU eviction, ref-counted reclamation
 * of shared sub-blobs, and the multi-process torn-blob safety of
 * storeShared (N forked writers racing on one content hash must
 * leave exactly one healthy blob).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/artifact_cache.hh"
#include "obs/counters.hh"
#include "support/serialize.hh"

namespace splab
{
namespace
{

namespace fs = std::filesystem;

/** Fresh cache directory under the gtest scratch root. */
std::string
freshDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "/splab-cache-" + tag;
    fs::remove_all(dir);
    return dir;
}

std::vector<u8>
patternBytes(std::size_t n, u8 seed)
{
    std::vector<u8> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<u8>(seed + i * 7);
    return v;
}

/** Blob files on disk (index bookkeeping excluded). */
std::set<std::string>
blobFiles(const std::string &dir, const std::string &prefix = "")
{
    std::set<std::string> names;
    for (const auto &e : fs::directory_iterator(dir)) {
        std::string name = e.path().filename().string();
        if (name.rfind("index.", 0) == 0)
            continue;
        if (name.rfind(prefix, 0) == 0)
            names.insert(name);
    }
    return names;
}

u64
counterValue(const std::string &name)
{
    return obs::counter(name).value();
}

TEST(CacheIndex, PersistsAcrossReopenAndTracksUsage)
{
    std::string dir = freshDir("index-reopen");
    ByteWriter blob;
    blob.putRaw(patternBytes(256, 3).data(), 256);
    {
        ArtifactCache cache(dir);
        cache.store("simpoints", 1, blob);
        cache.store("simpoints", 2, blob);
        cache.storeShared(patternBytes(128, 9).data(), 128);
        CacheUsage u = cache.usage();
        EXPECT_EQ(u.artifacts, 2u);
        EXPECT_EQ(u.sharedBlobs, 1u);
        EXPECT_GE(u.residentBytes, 2 * 256 + 128u);
    }
    // A second cache over the same directory serves lookups and
    // usage from the persisted index alone.
    ArtifactCache reopened(dir);
    CacheUsage u = reopened.usage();
    EXPECT_EQ(u.artifacts, 2u);
    EXPECT_EQ(u.sharedBlobs, 1u);
    EXPECT_TRUE(reopened.load("simpoints", 1).hit());
    EXPECT_TRUE(reopened.load("simpoints", 2).hit());
}

TEST(CacheIndex, RebuildsFromCorruptOrMissingIndex)
{
    std::string dir = freshDir("index-rebuild");
    ByteWriter blob;
    blob.putRaw(patternBytes(64, 1).data(), 64);
    u64 shared = 0;
    {
        ArtifactCache cache(dir);
        cache.store("regions", 7, blob);
        shared = cache.storeShared(patternBytes(96, 2).data(), 96);
    }
    // Corrupt the index: the next open must fall back to a directory
    // scan and still see both blobs.
    {
        std::ofstream out(dir + "/index.bin",
                          std::ios::binary | std::ios::trunc);
        out << "not an index";
    }
    {
        ArtifactCache cache(dir);
        CacheUsage u = cache.usage();
        EXPECT_EQ(u.artifacts, 1u);
        EXPECT_EQ(u.sharedBlobs, 1u);
        EXPECT_TRUE(cache.load("regions", 7).hit());
        EXPECT_TRUE(cache.loadShared(shared).hit());
    }
    // Same story with the index deleted outright.
    fs::remove(dir + "/index.bin");
    ArtifactCache cache(dir);
    EXPECT_EQ(cache.usage().artifacts, 1u);
    EXPECT_TRUE(cache.load("regions", 7).hit());
}

TEST(CacheIndex, CountersRegisterEagerly)
{
    ArtifactCache cache(freshDir("counters"));
    std::map<std::string, u64> snap = obs::counterSnapshot();
    for (const char *name :
         {"artifact_cache.hits", "artifact_cache.misses",
          "artifact_cache.evictions", "artifact_cache.bytes_evicted",
          "artifact_cache.bytes_read", "artifact_cache.bytes_written",
          "artifact_cache.blob_share_hits",
          "artifact_cache.shared_blobs_reclaimed"})
        EXPECT_TRUE(snap.count(name)) << name;
}

TEST(CacheEviction, LruRespectsBudgetAndProtectsNewestStore)
{
    std::string dir = freshDir("evict-lru");
    ByteWriter blob;
    blob.putRaw(patternBytes(512, 5).data(), 512);
    u64 perBlobBytes = 0;
    {
        ArtifactCache cache(dir);
        cache.store("whole", 1, blob);
        perBlobBytes = cache.usage().residentBytes;
        cache.store("whole", 2, blob);
        cache.store("whole", 3, blob);
        ASSERT_EQ(cache.usage().artifacts, 3u);
    }
    u64 evictionsBefore = counterValue("artifact_cache.evictions");
    // Budget fits two blobs: storing a third must evict exactly the
    // least-recently-used one, never the blob just stored.
    ArtifactCache bounded(dir, 2 * perBlobBytes + perBlobBytes / 2);
    bounded.store("whole", 4, blob);
    EXPECT_GE(counterValue("artifact_cache.evictions"),
              evictionsBefore + 2);
    CacheUsage u = bounded.usage();
    EXPECT_LE(u.residentBytes, bounded.maxBytes());
    EXPECT_TRUE(bounded.load("whole", 4).hit());
    EXPECT_FALSE(bounded.load("whole", 1).hit());
}

TEST(CacheEviction, SharedBlobSurvivesWhileReferencedThenReclaimed)
{
    std::string dir = freshDir("evict-shared");
    std::vector<u8> payload = patternBytes(900, 11);
    u64 hash = 0;
    u64 setupBytes = 0;
    {
        ArtifactCache cache(dir);
        hash = cache.storeShared(payload.data(), payload.size());
        ByteWriter ref;
        ref.put<u64>(1);
        ref.put<u64>(hash);
        cache.store("fused", 1, ref, {hash});
        cache.store("fused", 2, ref, {hash});
        setupBytes = cache.usage().residentBytes;
    }
    ByteWriter filler;
    filler.putRaw(patternBytes(100, 13).data(), 100);

    // Phase 1: budget forces out the older ref blob only.  The shared
    // sub-blob must survive because "fused"/2 still references it.
    u64 reclaimedBefore =
        counterValue("artifact_cache.shared_blobs_reclaimed");
    {
        ArtifactCache cache(dir, setupBytes + 100);
        cache.store("filler", 1, filler);
        EXPECT_FALSE(cache.load("fused", 1).hit());
        EXPECT_TRUE(cache.load("fused", 2).hit());
        EXPECT_TRUE(cache.loadShared(hash).hit());
        EXPECT_EQ(counterValue("artifact_cache.shared_blobs_reclaimed"),
                  reclaimedBefore);
        EXPECT_EQ(blobFiles(dir, "shared-").size(), 1u);
        setupBytes = cache.usage().residentBytes;
    }

    // Phase 2: squeeze out the last referencing artifact — now the
    // sub-blob is unreferenced and must be reclaimed with it.
    ByteWriter bigFiller;
    bigFiller.putRaw(patternBytes(400, 17).data(), 400);
    ArtifactCache cache(dir, setupBytes - 500);
    cache.store("filler", 2, bigFiller);
    EXPECT_FALSE(cache.load("fused", 2).hit());
    EXPECT_FALSE(cache.loadShared(hash).hit());
    EXPECT_GT(counterValue("artifact_cache.shared_blobs_reclaimed"),
              reclaimedBefore);
    EXPECT_TRUE(blobFiles(dir, "shared-").empty());
}

TEST(CacheStress, ForkedWritersNeverExposeATornSharedBlob)
{
    std::string dir = freshDir("fork-shared");
    std::vector<u8> payload = patternBytes(64 * 1024, 23);
    u64 expected = 0;
    {
        // Learn the content hash up front (disabled cache still
        // hashes), so children can verify what they compute.
        ArtifactCache probe("");
        expected = probe.storeShared(payload.data(), payload.size());
    }

    constexpr int kWriters = 8;
    constexpr int kRounds = 16;
    std::vector<pid_t> kids;
    for (int w = 0; w < kWriters; ++w) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: hammer storeShared with the same content and
            // verify every load sees healthy, full-length bytes.
            ArtifactCache cache(dir);
            for (int i = 0; i < kRounds; ++i) {
                if (cache.storeShared(payload.data(),
                                      payload.size()) != expected)
                    _exit(2);
                CacheOutcome got = cache.loadShared(expected);
                if (!got.hit())
                    _exit(3);
                if (got->remaining() != payload.size())
                    _exit(4);
            }
            _exit(0);
        }
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status));
        EXPECT_EQ(WEXITSTATUS(status), 0)
            << "writer " << pid << " failed";
    }

    // Exactly one healthy blob, no leftover temp files, and a sane
    // index (one shared entry, no phantom artifacts).
    EXPECT_EQ(blobFiles(dir).size(), 1u);
    EXPECT_EQ(blobFiles(dir, "shared-").size(), 1u);
    ArtifactCache after(dir);
    CacheOutcome got = after.loadShared(expected);
    ASSERT_TRUE(got.hit());
    ASSERT_EQ(got->remaining(), payload.size());
    std::vector<u8> bytes = got->getRaw(payload.size());
    EXPECT_EQ(bytes, payload);
    CacheUsage u = after.usage();
    EXPECT_EQ(u.artifacts, 0u);
    EXPECT_EQ(u.sharedBlobs, 1u);
    // Re-storing the same content from this process must count as a
    // share hit against the healthy blob the writers raced to
    // publish (counters are per-process, so the children's hits are
    // invisible here — this replays one deliberately).
    u64 shareHitsBefore = counterValue("artifact_cache.blob_share_hits");
    EXPECT_EQ(after.storeShared(payload.data(), payload.size()),
              expected);
    EXPECT_EQ(counterValue("artifact_cache.blob_share_hits"),
              shareHitsBefore + 1);
}

TEST(CacheStress, ForkedStoresKeepIndexConsistent)
{
    std::string dir = freshDir("fork-index");
    constexpr int kWriters = 6;
    std::vector<pid_t> kids;
    for (int w = 0; w < kWriters; ++w) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            ArtifactCache cache(dir);
            ByteWriter blob;
            std::vector<u8> bytes = patternBytes(256, u8(40 + w));
            blob.putRaw(bytes.data(), bytes.size());
            cache.store("stress", u64(w), blob);
            _exit(cache.load("stress", u64(w)).hit() ? 0 : 5);
        }
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int status = 0;
        ASSERT_EQ(waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }
    // Every writer's entry survived the concurrent flock'd
    // read-modify-write cycles on the index.
    ArtifactCache after(dir);
    EXPECT_EQ(after.usage().artifacts, u64(kWriters));
    for (int w = 0; w < kWriters; ++w)
        EXPECT_TRUE(after.load("stress", u64(w)).hit()) << w;
}

} // namespace
} // namespace splab
