/**
 * @file
 * The splabd artifact service's contracts: defensive wire-protocol
 * encode/decode, ExperimentConfig wire round-trips, a daemon that
 * serves byte-identical artifact payloads and survives malformed or
 * invalid requests, transparent RemoteBackend operation through
 * SPLAB_SERVICE (including local fallback when no daemon answers),
 * per-config graph isolation, and global coalescing of concurrent
 * cold requests across client connections.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact_graph.hh"
#include "obs/counters.hh"
#include "service/client.hh"
#include "service/daemon.hh"
#include "service/protocol.hh"
#include "support/env.hh"
#include "support/serialize.hh"

namespace splab
{
namespace
{

namespace fs = std::filesystem;
using service::Op;
using service::Request;
using service::ResponseHeader;
using service::ServiceClient;
using service::ServiceDaemon;
using service::Status;

// Miniature workloads everywhere (see test_artifact_graph.cc).
[[maybe_unused]] const bool kScaleSet = [] {
    setenv("SPLAB_SCALE", "0.05", 1);
    return true;
}();

/** Smallest whole-run benchmark (fewest slices). */
const std::string kBench = "620.omnetpp_s";

ExperimentConfig
fastConfig()
{
    return ExperimentConfig::paperDefaults().withMaxK(6);
}

/** Short socket path (AF_UNIX limit): /tmp/splab-<pid>-<tag>.sock */
std::string
sockPath(const std::string &tag)
{
    std::string p = "/tmp/splab-" + std::to_string(getpid()) + "-" +
                    tag + ".sock";
    fs::remove(p);
    return p;
}

std::string
freshDir(const std::string &tag)
{
    std::string dir = testing::TempDir() + "/splab-service-" + tag;
    fs::remove_all(dir);
    return dir;
}

std::vector<u8>
wireConfig(const ExperimentConfig &cfg)
{
    ByteWriter w;
    cfg.serialize(w);
    return w.bytes();
}

Request
ensureRequest(const ExperimentConfig &cfg, const std::string &bench,
              ArtifactKind kind)
{
    Request r;
    r.op = Op::Ensure;
    r.benchmark = bench;
    r.kind = static_cast<u8>(kind);
    r.configHash = cfg.contentHash();
    r.scale = workloadScale();
    r.config = wireConfig(cfg);
    return r;
}

/** One raw request/response exchange on a fresh connection. */
bool
rawExchange(const std::string &sockPath, const Request &req,
            ResponseHeader &header)
{
    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sockPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    bool ok = connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0;
    std::vector<u8> frame = service::encodeRequest(req);
    ok = ok && service::sendFrame(fd, frame.data(), frame.size());
    std::vector<u8> reply;
    ok = ok && service::recvFrame(fd, reply) &&
         service::decodeResponseHeader(reply, header);
    close(fd);
    return ok;
}

TEST(Protocol, RequestRoundTripsEveryOp)
{
    for (Op op : {Op::Ping, Op::Stats, Op::Shutdown}) {
        Request in;
        in.op = op;
        Request out;
        ASSERT_TRUE(
            service::decodeRequest(service::encodeRequest(in), out));
        EXPECT_EQ(out.op, op);
    }

    Request in = ensureRequest(fastConfig(), kBench,
                               ArtifactKind::SimPoints);
    Request out;
    ASSERT_TRUE(
        service::decodeRequest(service::encodeRequest(in), out));
    EXPECT_EQ(out.op, Op::Ensure);
    EXPECT_EQ(out.benchmark, kBench);
    EXPECT_EQ(out.kind, in.kind);
    EXPECT_EQ(out.configHash, in.configHash);
    EXPECT_DOUBLE_EQ(out.scale, in.scale);
    EXPECT_EQ(out.config, in.config);
}

TEST(Protocol, EvictRoundTripsAndRejectsTruncation)
{
    Request in;
    in.op = Op::Evict;
    in.evictBytes = 0x1234567890abcdefULL;
    Request out;
    ASSERT_TRUE(
        service::decodeRequest(service::encodeRequest(in), out));
    EXPECT_EQ(out.op, Op::Evict);
    EXPECT_EQ(out.evictBytes, in.evictBytes);

    // Every truncation of a valid Evict frame must be rejected.
    std::vector<u8> good = service::encodeRequest(in);
    for (std::size_t n = 0; n < good.size(); ++n) {
        std::vector<u8> cut(good.begin(), good.begin() + n);
        EXPECT_FALSE(service::decodeRequest(cut, out)) << n;
    }
}

TEST(Protocol, DecodeRejectsMalformedFrames)
{
    Request out;
    // Empty, garbage, wrong magic, wrong version.
    EXPECT_FALSE(service::decodeRequest({}, out));
    EXPECT_FALSE(service::decodeRequest({1, 2, 3}, out));
    std::vector<u8> good =
        service::encodeRequest(ensureRequest(fastConfig(), kBench,
                                             ArtifactKind::SimPoints));
    std::vector<u8> bad = good;
    bad[0] ^= 0xff; // magic
    EXPECT_FALSE(service::decodeRequest(bad, out));
    bad = good;
    bad[4] ^= 0xff; // version
    EXPECT_FALSE(service::decodeRequest(bad, out));
    // Every possible truncation of a valid Ensure frame must be
    // rejected, never crash or accept.
    for (std::size_t n = 0; n < good.size(); ++n) {
        std::vector<u8> cut(good.begin(), good.begin() + n);
        EXPECT_FALSE(service::decodeRequest(cut, out)) << n;
    }
}

TEST(Protocol, ResponseHeaderRoundTripsAndRejectsGarbage)
{
    ResponseHeader ok;
    ok.status = Status::Ok;
    ok.payloadBytes = 123456789;
    ResponseHeader out;
    ASSERT_TRUE(service::decodeResponseHeader(
        service::encodeResponseHeader(ok), out));
    EXPECT_EQ(out.status, Status::Ok);
    EXPECT_EQ(out.payloadBytes, 123456789u);

    ResponseHeader err;
    err.status = Status::Error;
    err.error = "unknown benchmark";
    ASSERT_TRUE(service::decodeResponseHeader(
        service::encodeResponseHeader(err), out));
    EXPECT_EQ(out.status, Status::Error);
    EXPECT_EQ(out.error, "unknown benchmark");

    EXPECT_FALSE(service::decodeResponseHeader({}, out));
    EXPECT_FALSE(service::decodeResponseHeader({9, 9, 9, 9}, out));
}

TEST(ConfigWire, RoundTripPreservesContentHash)
{
    ExperimentConfig cfg = fastConfig();
    cfg.sampling.strategy = StrategyKind::Stratified;
    cfg.sampling.stratified.strata = 5;
    std::vector<u8> bytes = wireConfig(cfg);

    ExperimentConfig back;
    ByteReader r(bytes);
    ASSERT_TRUE(ExperimentConfig::deserialize(r, back));
    EXPECT_EQ(back.contentHash(), cfg.contentHash());
    EXPECT_EQ(back.sampling.strategy, StrategyKind::Stratified);
}

TEST(ConfigWire, DeserializeIsDefensive)
{
    std::vector<u8> bytes = wireConfig(fastConfig());
    ExperimentConfig out;
    // Truncations at a few interesting depths.
    for (std::size_t n :
         {std::size_t(0), std::size_t(1), bytes.size() / 4,
          bytes.size() / 2, bytes.size() - 1}) {
        std::vector<u8> cut(bytes.begin(), bytes.begin() + n);
        ByteReader r(cut);
        EXPECT_FALSE(ExperimentConfig::deserialize(r, out)) << n;
    }
    // Wrong wire version.
    std::vector<u8> bad = bytes;
    bad[0] ^= 0xff;
    ByteReader r(bad);
    EXPECT_FALSE(ExperimentConfig::deserialize(r, out));
    // Trailing garbage (atEnd is part of the contract).
    std::vector<u8> longer = bytes;
    longer.push_back(0);
    ByteReader r2(longer);
    EXPECT_FALSE(ExperimentConfig::deserialize(r2, out));
}

TEST(Daemon, ServesBytesIdenticalToLocalAndAnswersStats)
{
    ExperimentConfig cfg = fastConfig();
    ServiceDaemon daemon(sockPath("serve"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("serve"))));
    ASSERT_TRUE(daemon.start());
    ServiceClient client(daemon.path());
    EXPECT_TRUE(client.ping());

    auto remote = client.ensureArtifact(
        kBench, static_cast<u8>(ArtifactKind::SimPoints),
        cfg.contentHash(), wireConfig(cfg));
    ASSERT_TRUE(remote.has_value());

    ArtifactGraph local(cfg, std::make_shared<const ArtifactCache>(
                                 ArtifactCache("")));
    EXPECT_EQ(*remote,
              local.ensureSerialized(kBench, ArtifactKind::SimPoints));

    auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_TRUE(stats->count("graph.nodes_computed"));
    EXPECT_TRUE(stats->count("artifact_cache.hits"));
    EXPECT_EQ(daemon.graphCount(), 1u);
    daemon.stop();
    EXPECT_FALSE(client.ping());
}

TEST(Daemon, RejectsInvalidRequestsAndSurvives)
{
    ExperimentConfig cfg = fastConfig();
    ServiceDaemon daemon(sockPath("reject"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("reject"))));
    ASSERT_TRUE(daemon.start());
    ServiceClient client(daemon.path());

    // Unknown benchmark, out-of-range kind, config-hash mismatch,
    // undecodable config blob: all must come back as clean errors.
    EXPECT_FALSE(client
                     .ensureArtifact("999.nonesuch_s", 2,
                                     cfg.contentHash(),
                                     wireConfig(cfg))
                     .has_value());
    EXPECT_FALSE(client
                     .ensureArtifact(kBench, 250, cfg.contentHash(),
                                     wireConfig(cfg))
                     .has_value());
    EXPECT_FALSE(client
                     .ensureArtifact(kBench, 2,
                                     cfg.contentHash() ^ 1,
                                     wireConfig(cfg))
                     .has_value());
    EXPECT_FALSE(
        client.ensureArtifact(kBench, 2, cfg.contentHash(), {1, 2, 3})
            .has_value());
    EXPECT_EQ(daemon.graphCount(), 0u);
    EXPECT_TRUE(client.ping());
    daemon.stop();
}

TEST(Daemon, RefusesWorkloadScaleMismatch)
{
    // SPLAB_SCALE is process environment, not ExperimentConfig: a
    // daemon at a different scale holds differently-sized workloads
    // and must refuse rather than serve mismatched bytes (the
    // client's RemoteBackend then falls back to local).
    ExperimentConfig cfg = fastConfig();
    ServiceDaemon daemon(sockPath("scale"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("scale"))));
    ASSERT_TRUE(daemon.start());

    Request req = ensureRequest(cfg, kBench,
                                ArtifactKind::SimPoints);
    req.scale = workloadScale() * 2;
    ResponseHeader h;
    ASSERT_TRUE(rawExchange(daemon.path(), req, h));
    EXPECT_EQ(h.status, Status::Error);
    EXPECT_NE(h.error.find("scale"), std::string::npos) << h.error;
    EXPECT_EQ(daemon.graphCount(), 0u);
    EXPECT_TRUE(ServiceClient(daemon.path()).ping());
    daemon.stop();
}

TEST(Daemon, SurvivesRawMalformedFrame)
{
    ServiceDaemon daemon(sockPath("raw"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    ASSERT_TRUE(daemon.start());

    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, daemon.path().c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)),
              0);
    const char junk[] = "this is not a request frame";
    ASSERT_TRUE(service::sendFrame(fd, junk, sizeof(junk)));
    // The daemon answers with an error header and drops the
    // connection — and keeps serving afterwards.
    std::vector<u8> frame;
    if (service::recvFrame(fd, frame)) {
        ResponseHeader h;
        ASSERT_TRUE(service::decodeResponseHeader(frame, h));
        EXPECT_EQ(h.status, Status::Error);
    }
    close(fd);
    EXPECT_TRUE(ServiceClient(daemon.path()).ping());
    daemon.stop();
}

TEST(Daemon, EvictsCacheToBudgetAndReportsOutcome)
{
    ExperimentConfig cfg = fastConfig();
    ServiceDaemon daemon(sockPath("evict"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("evict"))));
    ASSERT_TRUE(daemon.start());
    ServiceClient client(daemon.path());

    // Populate the daemon's cache, then evict everything (budget 0).
    ASSERT_TRUE(client
                    .ensureArtifact(
                        kBench,
                        static_cast<u8>(ArtifactKind::SimPoints),
                        cfg.contentHash(), wireConfig(cfg))
                    .has_value());
    u64 resident = daemon.artifactCache().usage().residentBytes;
    ASSERT_GT(resident, 0u);

    // A generous budget evicts nothing.
    auto noop = client.evict(resident);
    ASSERT_TRUE(noop.has_value());
    EXPECT_EQ(noop->residentBefore, resident);
    EXPECT_EQ(noop->residentAfter, resident);

    auto all = client.evict(0);
    ASSERT_TRUE(all.has_value());
    EXPECT_EQ(all->residentBefore, resident);
    EXPECT_EQ(all->residentAfter, 0u);
    EXPECT_EQ(all->artifacts, 0u);
    EXPECT_EQ(all->sharedBlobs, 0u);
    EXPECT_EQ(daemon.artifactCache().usage().residentBytes, 0u);

    // The admin op is tallied and the daemon keeps serving.
    auto stats = client.stats();
    ASSERT_TRUE(stats.has_value());
    EXPECT_GE((*stats)["service.evict_requests"], 2u);
    EXPECT_TRUE(client.ping());
    daemon.stop();
}

TEST(Daemon, EvictOnDisabledCacheIsCleanError)
{
    ServiceDaemon daemon(sockPath("evictoff"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    ASSERT_TRUE(daemon.start());
    ServiceClient client(daemon.path());
    EXPECT_FALSE(client.evict(0).has_value());
    EXPECT_TRUE(client.ping());
    daemon.stop();
}

TEST(ServiceClientApi, EvictWithoutDaemonIsNullopt)
{
    EXPECT_FALSE(ServiceClient("/tmp/splab-no-such-daemon.sock")
                     .evict(0)
                     .has_value());
}

TEST(Daemon, ShutdownRequestIsSurfacedToOwner)
{
    ServiceDaemon daemon(sockPath("shutdown"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    ASSERT_TRUE(daemon.start());
    EXPECT_FALSE(daemon.shutdownRequested());
    EXPECT_TRUE(ServiceClient(daemon.path()).requestShutdown());
    EXPECT_TRUE(daemon.shutdownRequested());
    daemon.stop();
}

TEST(Daemon, IsolatesGraphsPerConfig)
{
    ExperimentConfig a = fastConfig();
    ExperimentConfig b = fastConfig().withMaxK(7);
    ServiceDaemon daemon(sockPath("isolate"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("isolate"))));
    ASSERT_TRUE(daemon.start());
    ServiceClient client(daemon.path());

    auto pa = client.ensureArtifact(
        kBench, static_cast<u8>(ArtifactKind::SimPoints),
        a.contentHash(), wireConfig(a));
    auto pb = client.ensureArtifact(
        kBench, static_cast<u8>(ArtifactKind::SimPoints),
        b.contentHash(), wireConfig(b));
    ASSERT_TRUE(pa.has_value());
    ASSERT_TRUE(pb.has_value());
    EXPECT_EQ(daemon.graphCount(), 2u);
    daemon.stop();
}

TEST(Daemon, CoalescesConcurrentColdRequestsGlobally)
{
    ExperimentConfig cfg = fastConfig();
    obs::Counter &computed = obs::counter("graph.nodes_computed");

    // Reference: one cold request against a fresh daemon.
    u64 single = 0;
    {
        ServiceDaemon daemon(
            sockPath("coal1"),
            std::make_shared<const ArtifactCache>(
                ArtifactCache(freshDir("coal1"))));
        ASSERT_TRUE(daemon.start());
        u64 before = computed.value();
        auto payload = ServiceClient(daemon.path())
                           .ensureArtifact(
                               kBench,
                               static_cast<u8>(ArtifactKind::SimPoints),
                               cfg.contentHash(), wireConfig(cfg));
        ASSERT_TRUE(payload.has_value());
        single = computed.value() - before;
        ASSERT_GT(single, 0u);
        daemon.stop();
    }

    // Two clients racing on the same cold artifact through a second
    // fresh daemon: the per-node single-flight inside the shared
    // graph must coalesce them into exactly the same amount of
    // computation one client causes.
    ServiceDaemon daemon(sockPath("coal2"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("coal2"))));
    ASSERT_TRUE(daemon.start());
    u64 before = computed.value();
    std::vector<u8> got[2];
    std::thread clients[2];
    for (int i = 0; i < 2; ++i)
        clients[i] = std::thread([&, i] {
            auto payload =
                ServiceClient(daemon.path())
                    .ensureArtifact(
                        kBench,
                        static_cast<u8>(ArtifactKind::SimPoints),
                        cfg.contentHash(), wireConfig(cfg));
            if (payload)
                got[i] = std::move(*payload);
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(computed.value() - before, single);
    ASSERT_FALSE(got[0].empty());
    EXPECT_EQ(got[0], got[1]);
    daemon.stop();
}

TEST(RemoteBackend, TransparentThroughSplabService)
{
    ExperimentConfig cfg = fastConfig();
    ServiceDaemon daemon(sockPath("remote"),
                         std::make_shared<const ArtifactCache>(
                             ArtifactCache(freshDir("remote"))));
    ASSERT_TRUE(daemon.start());

    ArtifactGraph local(cfg, std::make_shared<const ArtifactCache>(
                                 ArtifactCache("")));
    std::vector<u8> want =
        local.ensureSerialized(kBench, ArtifactKind::SimPoints);

    obs::Counter &remoteHits =
        obs::counter("service.client.remote_hits");
    u64 before = remoteHits.value();
    setenv("SPLAB_SERVICE", daemon.path().c_str(), 1);
    ArtifactGraph remote(cfg, std::make_shared<const ArtifactCache>(
                                  ArtifactCache("")));
    unsetenv("SPLAB_SERVICE");

    EXPECT_EQ(remote.ensureSerialized(kBench, ArtifactKind::SimPoints),
              want);
    EXPECT_GT(remoteHits.value(), before);
    daemon.stop();
}

TEST(RemoteBackend, FallsBackToLocalWhenNoDaemonAnswers)
{
    ExperimentConfig cfg = fastConfig();
    ArtifactGraph local(cfg, std::make_shared<const ArtifactCache>(
                                 ArtifactCache("")));
    std::vector<u8> want =
        local.ensureSerialized(kBench, ArtifactKind::SimPoints);

    setenv("SPLAB_SERVICE", "/tmp/splab-no-such-daemon.sock", 1);
    ArtifactGraph orphan(cfg, std::make_shared<const ArtifactCache>(
                                  ArtifactCache("")));
    unsetenv("SPLAB_SERVICE");
    EXPECT_EQ(orphan.ensureSerialized(kBench, ArtifactKind::SimPoints),
              want);
}

} // namespace
} // namespace splab
