/**
 * @file
 * Edge cases and failure handling across modules: degenerate
 * clustering inputs, boundary cache geometries, invalid pinball
 * regions, empty aggregations, configuration validation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cache/hierarchy.hh"
#include "core/metrics.hh"
#include "core/pipeline.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "simpoint/simpoint.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

// ---------------------------------------------------------------
// k-means / BIC degeneracies

TEST(Robustness, KMeansSinglePoint)
{
    std::vector<std::vector<double>> pts = {{1.0, 2.0}};
    KMeansResult r = kmeansFit(pts, 3, 1);
    EXPECT_EQ(r.k, 1u);
    EXPECT_EQ(r.clusterSize[0], 1u);
    EXPECT_DOUBLE_EQ(r.distortion, 0.0);
}

TEST(Robustness, KMeansAllIdenticalPoints)
{
    std::vector<std::vector<double>> pts(50, {3.0, 3.0, 3.0});
    KMeansResult r = kmeansFit(pts, 4, 1);
    EXPECT_DOUBLE_EQ(r.distortion, 0.0);
    u64 total = 0;
    for (u64 c : r.clusterSize)
        total += c;
    EXPECT_EQ(total, 50u);
    // BIC must not blow up on zero variance.
    double bic = bicScore(r, pts);
    EXPECT_TRUE(std::isfinite(bic));
}

TEST(Robustness, KMeansKEqualsN)
{
    std::vector<std::vector<double>> pts;
    Rng rng(9);
    for (int i = 0; i < 12; ++i)
        pts.push_back({rng.uniform(), rng.uniform()});
    KMeansResult r = kmeansBestOf(pts, 12, 1, 2);
    EXPECT_LE(r.distortion, 1e-9);
}

TEST(Robustness, SimPointsOnSingleSlice)
{
    FrequencyVector v;
    v.entries = {{0, 100.0f}};
    SimPointConfig cfg;
    SimPointResult r = pickSimPoints({v}, cfg);
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].slice, 0u);
    EXPECT_DOUBLE_EQ(r.points[0].weight, 1.0);
}

TEST(Robustness, SimPointsOnUniformStream)
{
    // All slices identical: one cluster, one point, weight 1.
    std::vector<FrequencyVector> bbvs(100);
    for (auto &v : bbvs)
        v.entries = {{3, 50.0f}, {7, 50.0f}};
    SimPointConfig cfg;
    cfg.maxK = 10;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    EXPECT_EQ(r.points.size(), 1u);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
}

TEST(Robustness, TopByWeightQuantileEdges)
{
    SimPointResult r;
    r.points = {{0, 0.5, 0, 5}, {1, 0.3, 1, 3}, {2, 0.2, 2, 2}};
    EXPECT_EQ(r.topByWeight(0.0).size(), 1u); // at least one point
    EXPECT_EQ(r.topByWeight(1.0).size(), 3u);
    EXPECT_EQ(r.topByWeight(0.5).size(), 1u);
    EXPECT_EQ(r.topByWeight(0.51).size(), 2u);
}

// ---------------------------------------------------------------
// Cache geometry edges

TEST(Robustness, SingleSetCache)
{
    SetAssocCache c({"one-set", 256, 4, 64});
    EXPECT_EQ(c.params().numSets(), 1u);
    for (Addr a = 0; a < 4 * 64; a += 64)
        c.access(a, false);
    EXPECT_TRUE(c.access(0, false));
    EXPECT_FALSE(c.access(4 * 64, false));
}

TEST(Robustness, BadGeometryPanics)
{
    CacheParams bad{"bad", 3000, 4, 64}; // sets not a power of two
    EXPECT_DEATH(SetAssocCache cache(bad), "power of two");
}

TEST(Robustness, ScaleFarCachesClampsAtMinimum)
{
    HierarchyConfig cfg = tableIConfig();
    HierarchyConfig tiny = scaleFarCaches(cfg, 1u << 30);
    // Clamped to one line per way and still a valid geometry.
    EXPECT_EQ(tiny.l2.sizeBytes,
              static_cast<u64>(tiny.l2.ways) * tiny.l2.lineBytes);
    CacheHierarchy h(tiny); // must construct without panicking
    h.accessData(0x1234, false);
    // L1 untouched.
    EXPECT_EQ(tiny.l1d.sizeBytes, cfg.l1d.sizeBytes);
}

TEST(Robustness, ScaleFarCachesIdentityDivisor)
{
    HierarchyConfig cfg = scaleFarCaches(tableIConfig(), 1);
    EXPECT_EQ(cfg.l2.sizeBytes, tableIConfig().l2.sizeBytes);
    EXPECT_EQ(cfg.l3.sizeBytes, tableIConfig().l3.sizeBytes);
}

// ---------------------------------------------------------------
// Aggregation edges

TEST(Robustness, AggregateEmptyPointSet)
{
    AggregateCacheMetrics agg = aggregateCache({});
    EXPECT_EQ(agg.executedInstrs, 0u);
    EXPECT_DOUBLE_EQ(agg.l3MissRate, 0.0);
    AggregateTimingMetrics t = aggregateTiming({});
    EXPECT_DOUBLE_EQ(t.cpi, 0.0);
}

TEST(Robustness, AggregateSinglePointIsIdentity)
{
    PointCacheMetrics p;
    p.weight = 0.37; // arbitrary unnormalized weight
    p.m.instrs = 1000;
    p.m.mixFrac = {0.5, 0.3, 0.15, 0.05};
    p.m.l1d = {400, 40};
    p.m.l2 = {40, 20};
    p.m.l3 = {20, 15};
    AggregateCacheMetrics agg = aggregateCache({p});
    EXPECT_DOUBLE_EQ(agg.mixFrac[0], 0.5);
    EXPECT_DOUBLE_EQ(agg.l1dMissRate, 0.1);
    EXPECT_DOUBLE_EQ(agg.l2MissRate, 0.5);
    EXPECT_DOUBLE_EQ(agg.l3MissRate, 0.75);
}

TEST(Robustness, AggregateZeroInstructionPoint)
{
    // A zero-length point must not poison the aggregate with NaNs.
    PointCacheMetrics good, empty;
    good.weight = 0.5;
    good.m.instrs = 100;
    good.m.mixFrac = {1.0, 0, 0, 0};
    good.m.l3 = {10, 5};
    empty.weight = 0.5;
    empty.m.instrs = 0;
    AggregateCacheMetrics agg = aggregateCache({good, empty});
    EXPECT_TRUE(std::isfinite(agg.l3MissRate));
    EXPECT_DOUBLE_EQ(agg.l3MissRate, 0.5);
}

// ---------------------------------------------------------------
// Pinball / replayer misuse

TEST(Robustness, RegionBeyondRunPanics)
{
    BenchmarkSpec spec;
    spec.name = "tiny";
    spec.totalChunks = 100;
    PhaseSpec a;
    spec.phases = {a};
    EXPECT_DEATH(Pinball(PinballKind::Regional, spec,
                         {{90, 20, 1.0, 0, 9}}),
                 "beyond the captured run");
}

TEST(Robustness, ReplayerRegionIndexOutOfRange)
{
    BenchmarkSpec spec;
    spec.name = "tiny";
    spec.totalChunks = 100;
    PhaseSpec a;
    spec.phases = {a};
    Pinball p(PinballKind::Regional, spec, {{0, 10, 1.0, 0, 0}});
    Replayer rep(p);
    Engine engine;
    EXPECT_DEATH(rep.replayRegion(5, engine), "out of range");
}

// ---------------------------------------------------------------
// Spec validation

TEST(Robustness, SpecValidationCatchesBadInput)
{
    BenchmarkSpec spec;
    spec.name = "bad";
    EXPECT_DEATH(spec.validate(), "needs phases");

    spec.phases.emplace_back();
    spec.chunkLen = 10; // out of range
    EXPECT_DEATH(spec.validate(), "chunkLen");

    spec.chunkLen = 1000;
    spec.phases[0].weight = -1.0;
    EXPECT_DEATH(spec.validate(), "negative");
}

TEST(Robustness, WorkloadRejectsOutOfRangeWindow)
{
    BenchmarkSpec spec;
    spec.name = "tiny";
    spec.totalChunks = 50;
    PhaseSpec a;
    spec.phases = {a};
    SyntheticWorkload wl(spec);
    class Null : public EventSink
    {
        void onBlock(const BlockRecord &, const MemAccess *,
                     std::size_t, const BranchRecord *) override
        {
        }
    } sink;
    EXPECT_DEATH(wl.run(40, 20, sink), "beyond run");
}

} // namespace
} // namespace splab
