/**
 * @file
 * The observability layer: JSON model, trace spans (nesting and
 * thread-pool attribution), counter determinism, run manifests, the
 * typed artifact-cache outcomes and the fluent experiment builder.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/artifact_graph.hh"
#include "core/pipeline.hh"
#include "obs/counters.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/trace.hh"
#include "simpoint/simpoint.hh"
#include "support/thread_pool.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

TEST(ObsJson, RenderParseRoundTrip)
{
    obs::JsonValue root = obs::JsonValue::object();
    root.set("name", obs::JsonValue::string("fig5 \"quoted\"\n"));
    root.set("count", obs::JsonValue::number(u64{42}));
    root.set("ratio", obs::JsonValue::number(0.30000000000000004));
    root.set("on", obs::JsonValue::boolean(true));
    obs::JsonValue arr = obs::JsonValue::array();
    arr.push(obs::JsonValue::number(i64{-7}));
    arr.push(obs::JsonValue::null());
    root.set("items", std::move(arr));

    std::string text = root.render();
    auto parsed = obs::parseJson(text);
    ASSERT_TRUE(parsed.has_value());
    // Idempotent rendering: parse(render(x)) renders identically.
    EXPECT_EQ(parsed->render(), text);

    const obs::JsonValue *name = parsed->find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(name->asString(), "fig5 \"quoted\"\n");
    EXPECT_EQ(parsed->find("count")->asU64(), 42u);
    EXPECT_DOUBLE_EQ(parsed->find("ratio")->asDouble(),
                     0.30000000000000004);
    EXPECT_EQ(parsed->find("items")->size(), 2u);
    EXPECT_TRUE(parsed->find("items")->at(1).isNull());
}

TEST(ObsJson, RejectsMalformedDocuments)
{
    EXPECT_FALSE(obs::parseJson("{").has_value());
    EXPECT_FALSE(obs::parseJson("{\"a\": }").has_value());
    EXPECT_FALSE(obs::parseJson("[1, 2,]").has_value());
    EXPECT_FALSE(obs::parseJson("{} trailing").has_value());
    EXPECT_FALSE(obs::parseJson("\"unterminated").has_value());
}

TEST(ObsJson, FormatDoubleRoundTrips)
{
    for (double v : {0.0, 1.0, -1.5, 0.1, 1.0 / 3.0, 1e-300, 2.5e17,
                     0.30000000000000004}) {
        std::string s = obs::formatDouble(v);
        EXPECT_EQ(std::stod(s), v) << s;
    }
}

TEST(ObsTrace, SpansNestIntoPaths)
{
    obs::clearSpans();
    {
        obs::TraceSpan outer("outer");
        {
            obs::TraceSpan inner("inner");
        }
        {
            obs::TraceSpan inner("inner");
        }
    }
    auto stats = obs::spanStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].path, "outer");
    EXPECT_EQ(stats[0].count, 1u);
    EXPECT_EQ(stats[1].path, "outer/inner");
    EXPECT_EQ(stats[1].count, 2u);
}

TEST(ObsTrace, CloseIsIdempotentAndEndsTheSpanEarly)
{
    obs::clearSpans();
    {
        obs::TraceSpan a("a");
        a.close();
        a.close(); // second close must be a no-op
        obs::TraceSpan b("b");
        // "a" closed before "b" opened, so "b" is NOT a child of "a".
    }
    auto stats = obs::spanStats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].path, "a");
    EXPECT_EQ(stats[1].path, "b");
}

TEST(ObsTrace, PoolWorkersInheritTheSubmittersPath)
{
    // Spans opened inside parallelFor tasks must aggregate under the
    // submitting stage's path — identically at every thread count.
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        obs::clearSpans();
        {
            obs::TraceSpan stage("stage");
            parallelFor(16, [&](std::size_t) {
                obs::TraceSpan work("work");
            });
        }
        auto stats = obs::spanStats();
        ASSERT_EQ(stats.size(), 2u) << "threads=" << threads;
        EXPECT_EQ(stats[0].path, "stage");
        EXPECT_EQ(stats[1].path, "stage/work");
        EXPECT_EQ(stats[1].count, 16u) << "threads=" << threads;
    }
    ThreadPool::setGlobalThreads(0);
    obs::clearSpans();
}

TEST(ObsTrace, ChromeTraceIsParseableJson)
{
    obs::clearSpans();
    obs::setTracingEnabled(true);
    {
        obs::TraceSpan outer("outer");
        obs::TraceSpan inner("inner");
    }
    obs::setTracingEnabled(false);
    EXPECT_GE(obs::traceEventCount(), 2u);

    std::string path = testing::TempDir() + "/obs_trace.json";
    ASSERT_TRUE(obs::writeChromeTrace(path));

    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    auto doc = obs::parseJson(text);
    ASSERT_TRUE(doc.has_value());
    const obs::JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_GE(events->size(), 2u);
    bool sawInner = false;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const obs::JsonValue &e = events->at(i);
        ASSERT_NE(e.find("name"), nullptr);
        ASSERT_NE(e.find("ph"), nullptr);
        ASSERT_NE(e.find("ts"), nullptr);
        ASSERT_NE(e.find("dur"), nullptr);
        if (e.find("name")->asString() == "inner")
            sawInner = true;
    }
    EXPECT_TRUE(sawInner);
    obs::clearSpans();
}

TEST(ObsCounters, RegistryAccumulatesAndSnapshots)
{
    obs::Counter &c =
        obs::counter("test_obs.widget", "widgets processed");
    c.reset();
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);
    // Same name -> same counter.
    EXPECT_EQ(&obs::counter("test_obs.widget"), &c);
    EXPECT_EQ(obs::counterSnapshot().at("test_obs.widget"), 5u);
    EXPECT_EQ(obs::statDescription("test_obs.widget"),
              "widgets processed");
    c.reset();
}

TEST(ObsCounters, DeterministicAcrossThreadCounts)
{
    // The manifest contract: after identical work, the counter
    // snapshot and the deterministic manifest rendering must be
    // byte-identical at SPLAB_THREADS = 1, 2 and 8.
    BenchmarkSpec spec = benchmarkByName("541.leela_r");
    spec.totalChunks = 1200;
    SimPointConfig cfg;
    cfg.maxK = 4;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    auto bbvs = pipe.profileBbvs(spec);

    std::map<std::string, u64> snapshots[3];
    std::string manifests[3];
    std::size_t round = 0;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        obs::resetCounters();
        obs::clearSpans();
        (void)pickSimPoints(bbvs, cfg);
        snapshots[round] = obs::counterSnapshot();

        obs::RunManifest m("test_obs");
        m.setConfig("simpoint.max_k", cfg.maxK);
        manifests[round] = m.renderDeterministic();
        ++round;
    }
    ThreadPool::setGlobalThreads(0);

    EXPECT_EQ(snapshots[0], snapshots[1]);
    EXPECT_EQ(snapshots[0], snapshots[2]);
    EXPECT_EQ(manifests[0], manifests[1]);
    EXPECT_EQ(manifests[0], manifests[2]);
    EXPECT_GT(snapshots[0].at("kmeans.fits"), 0u);
    obs::resetCounters();
    obs::clearSpans();
}

TEST(ObsManifest, SchemaRoundTrips)
{
    obs::clearSpans();
    {
        obs::TraceSpan span("manifest_stage");
    }
    std::string outPath = testing::TempDir() + "/obs_out.csv";
    std::FILE *f = std::fopen(outPath.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("a,b\n1,2\n", f);
    std::fclose(f);

    obs::RunManifest m("test_tool");
    m.setConfig("simpoint.max_k", u32{35});
    m.setConfig("machine.model", "tableIII");
    m.setConfig("bic_fraction", 0.9);
    m.recordEnv("SPLAB_SCALE");
    ASSERT_TRUE(m.addOutput(outPath));
    m.setTimingNote("wall_s", 1.25);
    std::remove(outPath.c_str());

    auto doc = obs::parseJson(m.render());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("schema")->asString(), "splab-manifest-v1");
    EXPECT_EQ(doc->find("tool")->asString(), "test_tool");
    EXPECT_EQ(doc->find("config")->find("simpoint.max_k")->asU64(),
              35u);
    EXPECT_DOUBLE_EQ(
        doc->find("config")->find("bic_fraction")->asDouble(), 0.9);
    ASSERT_NE(doc->find("env")->find("SPLAB_SCALE"), nullptr);
    ASSERT_NE(doc->find("counters"), nullptr);
    const obs::JsonValue *outs = doc->find("outputs");
    ASSERT_NE(outs, nullptr);
    ASSERT_EQ(outs->size(), 1u);
    EXPECT_EQ(outs->at(0).find("file")->asString(), "obs_out.csv");
    EXPECT_EQ(outs->at(0).find("bytes")->asU64(), 8u);
    ASSERT_NE(doc->find("timing"), nullptr);
    ASSERT_NE(doc->find("timing")->find("wall_s"), nullptr);

    // Span aggregation surfaced in the stages section.
    const obs::JsonValue *stages = doc->find("stages");
    ASSERT_NE(stages, nullptr);
    bool sawStage = false;
    for (std::size_t i = 0; i < stages->size(); ++i)
        if (stages->at(i).find("path")->asString() ==
            "manifest_stage")
            sawStage = true;
    EXPECT_TRUE(sawStage);

    // The deterministic rendering drops the volatile section.
    auto det = obs::parseJson(m.renderDeterministic());
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(det->find("timing"), nullptr);
    obs::clearSpans();
}

TEST(ObsManifest, CarriesArtifactCacheCounterFamily)
{
    // Constructing a cache registers the full hygiene counter family
    // eagerly, so every run manifest's deterministic section carries
    // the counts (zeros included) — cross-run diffs and the service
    // smoke test key off them.
    std::string dir = testing::TempDir() + "/obs_manifest_cache";
    std::filesystem::remove_all(dir);
    ArtifactCache cache(dir);

    obs::RunManifest m("test_obs");
    auto det = obs::parseJson(m.renderDeterministic());
    ASSERT_TRUE(det.has_value());
    const obs::JsonValue *counters = det->find("counters");
    ASSERT_NE(counters, nullptr);
    for (const char *name :
         {"artifact_cache.hits", "artifact_cache.misses",
          "artifact_cache.corrupt", "artifact_cache.evictions",
          "artifact_cache.bytes_read", "artifact_cache.bytes_written",
          "artifact_cache.bytes_evicted",
          "artifact_cache.blob_share_hits",
          "artifact_cache.shared_blobs_reclaimed"})
        EXPECT_NE(counters->find(name), nullptr) << name;
}

TEST(ObsCache, OutcomeDistinguishesHitMissCorruptDisabled)
{
    std::string dir = testing::TempDir() + "/obs_cache_test";
    std::filesystem::remove_all(dir);
    ArtifactCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    EXPECT_EQ(cache.load("simpoints", 7).status, CacheStatus::Miss);

    ByteWriter w;
    w.put<u64>(0xfeedULL);
    cache.store("simpoints", 7, w);
    CacheOutcome hit = cache.load("simpoints", 7);
    EXPECT_EQ(hit.status, CacheStatus::Hit);
    ASSERT_TRUE(hit.hit());
    EXPECT_EQ(hit->get<u64>(), 0xfeedULL);

    // Truncate the stored blob: the checksum no longer validates and
    // the lookup must say Corrupt, not Hit or Miss.  Skip the
    // cache's index files — only the artifact blob is the target.
    std::size_t corrupted = 0;
    for (const auto &ent : std::filesystem::directory_iterator(dir)) {
        if (ent.path().filename().string().rfind("index.", 0) == 0)
            continue;
        std::filesystem::resize_file(ent.path(), 3);
        ++corrupted;
    }
    ASSERT_EQ(corrupted, 1u);
    EXPECT_EQ(cache.load("simpoints", 7).status,
              CacheStatus::Corrupt);

    ArtifactCache off("");
    EXPECT_FALSE(off.enabled());
    EXPECT_EQ(off.load("simpoints", 7).status,
              CacheStatus::Disabled);
    std::filesystem::remove_all(dir);
}

TEST(ObsCache, UnusableCacheDirDegradesToDisabled)
{
    // A path that cannot become a directory (a regular file is in
    // the way) must disable the cache instead of failing every
    // store; loads then report Disabled.
    std::string file = testing::TempDir() + "/obs_cache_blocker";
    std::FILE *f = std::fopen(file.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);

    ArtifactCache cache(file + "/sub");
    EXPECT_FALSE(cache.enabled());
    EXPECT_EQ(cache.load("simpoints", 1).status,
              CacheStatus::Disabled);
    ByteWriter w;
    w.put<u32>(1);
    cache.store("simpoints", 1, w); // must be a silent no-op
    std::remove(file.c_str());
}

TEST(ObsConfig, FluentBuilderMatchesFieldPokes)
{
    ExperimentConfig cfg = ExperimentConfig::paperDefaults()
                               .withMaxK(12)
                               .withWarmupChunks(7)
                               .withSeed(99)
                               .withSliceInstrs(5000);
    EXPECT_EQ(cfg.simpoint.maxK, 12u);
    EXPECT_EQ(cfg.warmupChunks, 7u);
    EXPECT_EQ(cfg.simpoint.seed, 99u);
    EXPECT_EQ(cfg.simpoint.sliceInstrs, 5000u);

    // The deprecated spelling still works and agrees.
    ExperimentConfig legacy;
    legacy.simpoint.maxK = 12;
    legacy.warmupChunks = 7;
    legacy.simpoint.seed = 99;
    legacy.simpoint.sliceInstrs = 5000;
    EXPECT_EQ(legacy.simpoint.contentHash(),
              cfg.simpoint.contentHash());

    obs::RunManifest m("builder_test");
    cfg.describe(m);
    auto doc = obs::parseJson(m.renderDeterministic());
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->find("config")->find("simpoint.max_k")->asU64(),
              12u);
    EXPECT_EQ(doc->find("config")->find("warmup_chunks")->asU64(),
              7u);
}

TEST(ObsPipeline, SimPointBlobsHaveNoPaddingGarbage)
{
    // SimPoint/KSweepEntry carry internal struct padding; the
    // serializer must emit fields, not raw structs, so two
    // serializations of equal results are byte-identical even when
    // the structs were built on differently-dirtied stacks/heaps.
    SimPointResult r;
    r.chosenK = 2;
    r.totalSlices = 10;
    r.sliceInstrs = 10000;
    r.points.push_back({3, 0.4, 0, 4, 0.01});
    r.points.push_back({8, 0.6, 1, 6, 0.02});
    r.sliceToCluster = {0, 0, 0, 0, 1, 1, 1, 1, 1, 1};
    r.sweep.push_back({1, 10.0, 5.0, 0.5});
    r.sweep.push_back({2, 20.0, 2.0, 0.25});

    ByteWriter w1, w2;
    serializeSimPoints(w1, r);
    ByteReader rd(w1.bytes());
    SimPointResult back = deserializeSimPoints(rd);
    serializeSimPoints(w2, back);
    EXPECT_EQ(w1.bytes(), w2.bytes());
    EXPECT_EQ(back.chosenK, r.chosenK);
    ASSERT_EQ(back.points.size(), 2u);
    EXPECT_EQ(back.points[1].slice, 8u);
    EXPECT_DOUBLE_EQ(back.points[1].weight, 0.6);
    EXPECT_EQ(back.sliceToCluster, r.sliceToCluster);
    ASSERT_EQ(back.sweep.size(), 2u);
    EXPECT_DOUBLE_EQ(back.sweep[1].bic, 20.0);
}

} // namespace
} // namespace splab
