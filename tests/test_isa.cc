/**
 * @file
 * Unit tests for instruction taxonomy and mix handling.
 */

#include <gtest/gtest.h>

#include "isa/basic_block.hh"
#include "isa/instr.hh"

namespace splab
{
namespace
{

TEST(InstrMix, TotalsAndFractions)
{
    InstrMix m;
    m[MemClass::NoMem] = 50;
    m[MemClass::MemR] = 35;
    m[MemClass::MemW] = 13;
    m[MemClass::MemRW] = 2;
    EXPECT_EQ(m.total(), 100u);
    auto f = m.fractions();
    EXPECT_DOUBLE_EQ(f[0], 0.50);
    EXPECT_DOUBLE_EQ(f[1], 0.35);
    EXPECT_DOUBLE_EQ(f[2], 0.13);
    EXPECT_DOUBLE_EQ(f[3], 0.02);
}

TEST(InstrMix, EmptyFractionsAreZero)
{
    InstrMix m;
    auto f = m.fractions();
    for (double x : f)
        EXPECT_EQ(x, 0.0);
}

TEST(InstrMix, Accumulates)
{
    InstrMix a, b;
    a[MemClass::MemR] = 10;
    b[MemClass::MemR] = 5;
    b[MemClass::NoMem] = 7;
    a += b;
    EXPECT_EQ(a[MemClass::MemR], 15u);
    EXPECT_EQ(a[MemClass::NoMem], 7u);
    EXPECT_EQ(a.total(), 22u);
}

TEST(MemClass, NamesMatchPaper)
{
    EXPECT_EQ(memClassName(MemClass::NoMem), "NO_MEM");
    EXPECT_EQ(memClassName(MemClass::MemR), "MEM_R");
    EXPECT_EQ(memClassName(MemClass::MemW), "MEM_W");
    EXPECT_EQ(memClassName(MemClass::MemRW), "MEM_RW");
}

TEST(MixProfile, NormalizeSumsToOne)
{
    MixProfile p;
    p.noMem = 2.0;
    p.memR = 1.0;
    p.memW = 0.5;
    p.memRW = 0.5;
    p.normalize();
    EXPECT_NEAR(p.noMem + p.memR + p.memW + p.memRW, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(p.noMem, 0.5);
}

TEST(MixProfile, CdfIsMonotoneAndEndsAtOne)
{
    MixProfile p;
    p.normalize();
    auto c = p.cdf();
    EXPECT_GT(c[0], 0.0);
    for (std::size_t i = 1; i < kNumMemClasses; ++i)
        EXPECT_GE(c[i], c[i - 1]);
    EXPECT_NEAR(c[3], 1.0, 1e-12);
}

TEST(StaticBlock, MemOpsCountsRwTwice)
{
    StaticBlock b;
    b.instrs = 100;
    b.mix = {60, 25, 12, 3};
    // 25 reads + 12 writes + 3 read-write pairs = 25+12+6.
    EXPECT_EQ(b.memOps(), 25u + 12u + 6u);
}

} // namespace
} // namespace splab
