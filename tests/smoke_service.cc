/**
 * @file
 * CI smoke check for daemon mode: hosts a ServiceDaemon in-process,
 * runs a bench binary (argv[1]) against it as a client, and checks
 * the two service-mode guarantees end to end:
 *
 *  - daemon-off / daemon-on byte identity: a client run with
 *    SPLAB_SERVICE set emits exactly the CSV a plain local run does;
 *  - global request coalescing: two *concurrent* cold clients cause
 *    exactly the daemon-side computation one cold client causes
 *    (counter-asserted per artifact node), and both get identical
 *    bytes.
 *
 * Hosting the daemon in this process makes its graph.nodes_computed
 * counter directly observable; the bench clients are separate
 * processes, so their counters (asserted via their run manifests)
 * are cleanly client-side.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>

#include "obs/counters.hh"
#include "obs/json.hh"
#include "service/daemon.hh"

namespace
{

namespace fs = std::filesystem;

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "smoke_service: FAIL: %s\n", what);
        ++failures;
    }
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** counters.<name> of a parsed manifest, or 0 when absent. */
splab::u64
counterOf(const std::string &manifestText, const char *name)
{
    auto doc = splab::obs::parseJson(manifestText);
    if (!doc)
        return 0;
    const splab::obs::JsonValue *counters = doc->find("counters");
    if (!counters)
        return 0;
    const splab::obs::JsonValue *c = counters->find(name);
    return c ? c->asU64() : 0;
}

/** One bench-client run; @p service empty = plain local run. */
int
runBench(const std::string &bin, const std::string &service)
{
    std::string cmd = "SPLAB_MANIFEST=1 SPLAB_CACHE= SPLAB_LOG=0 "
                      "SPLAB_SCALE=0.05 SPLAB_THREADS=4 "
                      "SPLAB_SERVICE=\"" +
                      service + "\" \"" + bin + "\" > /dev/null";
    return std::system(cmd.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: smoke_service <bench-binary>\n");
        return 2;
    }
    // The daemon computes in this process: pin the same miniature
    // scale the clients run at before anything resolves a benchmark.
    setenv("SPLAB_SCALE", "0.05", 1);
    setenv("SPLAB_LOG", "0", 1);

    std::string bin = argv[1];
    std::string sock = "/tmp/splab-smoke-" +
                       std::to_string(getpid()) + ".sock";
    splab::obs::Counter &computed =
        splab::obs::counter("graph.nodes_computed");

    // Reference: plain local run, no daemon, no cache.
    check(runBench(bin, "") == 0, "local bench run exited non-zero");
    std::string refCsv = slurp(bin + ".csv");
    std::string refMani = slurp(bin + ".manifest.json");
    check(!refCsv.empty(), "local CSV missing or empty");

    // Phase 1: one cold client through a fresh daemon measures the
    // daemon-side cost of a single request stream.
    std::string dir1 = bin + ".smoke-service-cache1";
    fs::remove_all(dir1);
    splab::u64 single = 0;
    {
        splab::service::ServiceDaemon daemon(
            sock, std::make_shared<const splab::ArtifactCache>(
                      splab::ArtifactCache(dir1)));
        check(daemon.start(), "daemon failed to start");
        splab::u64 before = computed.value();
        check(runBench(bin, sock) == 0,
              "daemon-mode bench run exited non-zero");
        single = computed.value() - before;
        daemon.stop();
    }
    std::string daemonCsv = slurp(bin + ".csv");
    std::string daemonMani = slurp(bin + ".manifest.json");
    check(daemonCsv == refCsv,
          "daemon-mode CSV differs from plain local CSV");
    check(single > 0, "daemon computed nothing for a cold client");
    check(counterOf(daemonMani, "service.client.remote_hits") > 0,
          "client never fetched an artifact from the daemon");
    check(counterOf(daemonMani, "graph.nodes_computed") <
              counterOf(refMani, "graph.nodes_computed"),
          "daemon-mode client simulated as much as a local run");

    // Phase 2: two concurrent cold clients through a second fresh
    // daemon must coalesce into exactly one simulation per artifact
    // node — the same daemon-side computation phase 1 measured.
    std::string dir2 = bin + ".smoke-service-cache2";
    fs::remove_all(dir2);
    std::string binA = bin + "-smoke-a";
    std::string binB = bin + "-smoke-b";
    fs::copy_file(bin, binA, fs::copy_options::overwrite_existing);
    fs::copy_file(bin, binB, fs::copy_options::overwrite_existing);
    {
        splab::service::ServiceDaemon daemon(
            sock, std::make_shared<const splab::ArtifactCache>(
                      splab::ArtifactCache(dir2)));
        check(daemon.start(), "second daemon failed to start");
        splab::u64 before = computed.value();
        int rcA = -1, rcB = -1;
        std::thread a([&] { rcA = runBench(binA, sock); });
        std::thread b([&] { rcB = runBench(binB, sock); });
        a.join();
        b.join();
        check(rcA == 0 && rcB == 0,
              "concurrent daemon-mode bench run exited non-zero");
        check(computed.value() - before == single,
              "two concurrent cold clients were not coalesced into "
              "one simulation per artifact node");
        daemon.stop();
    }
    check(slurp(binA + ".csv") == refCsv,
          "first concurrent client CSV differs");
    check(slurp(binB + ".csv") == refCsv,
          "second concurrent client CSV differs");

    for (const std::string &p :
         {dir1, dir2, binA, binB, binA + ".csv", binB + ".csv",
          binA + ".manifest.json", binB + ".manifest.json", sock})
        fs::remove_all(p);

    if (failures == 0)
        std::printf("smoke_service: OK (%s)\n", bin.c_str());
    return failures == 0 ? 0 : 1;
}
