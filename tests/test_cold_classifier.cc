/**
 * @file
 * Tests for the CoolSim-style cold-start miss classifier: the
 * corrected miss-rate estimate from a *cold* replay should land
 * closer to the warmed ground truth than the raw cold miss rate.
 */

#include <gtest/gtest.h>

#include "core/runs.hh"
#include "core/scale.hh"
#include "pin/engine.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/cold_classifier.hh"
#include "pinball/logger.hh"
#include "pinball/replayer.hh"
#include "support/stats_util.hh"

namespace splab
{
namespace
{

BenchmarkSpec
hotSpec()
{
    BenchmarkSpec s;
    s.name = "cold-classify-test";
    s.seed = 77;
    s.totalChunks = 4000;
    PhaseSpec a;
    a.weight = 1.0;
    a.kernel = KernelKind::ZipfHotCold;
    a.workingSetBytes = 1 << 20;
    a.hotFraction = 0.05;
    a.hotProbability = 0.85;
    s.phases = {a};
    s.schedule = ScheduleKind::Contiguous;
    return s;
}

HierarchyConfig
caches()
{
    return scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
}

TEST(ColdClassifier, CountsAreConsistent)
{
    SyntheticWorkload wl(hotSpec());
    ColdClassifierTool tool(caches());
    Engine engine;
    engine.attach(&tool);
    tool.beginRegion();
    engine.run(wl, 100, 10);

    for (const ColdMissStats *s :
         {&tool.l1d(), &tool.l2(), &tool.l3()}) {
        EXPECT_LE(s->misses(), s->accesses);
        EXPECT_LE(s->correctedMissRate(), 1.0);
        EXPECT_GE(s->correctedMissRate(), 0.0);
        // Excluding first touches can only lower the estimate.
        EXPECT_LE(s->correctedMissRate(),
                  s->coldMissRate() + 1e-12);
    }
    // The hierarchy filters accesses downward.
    EXPECT_GE(tool.l1d().accesses, tool.l2().accesses);
    EXPECT_GE(tool.l2().accesses, tool.l3().accesses);
}

TEST(ColdClassifier, MatchesAllCacheMissCounts)
{
    // Classification must not change what the hierarchy does: total
    // misses equal a plain allcache replay of the same window.
    SyntheticWorkload wl1(hotSpec()), wl2(hotSpec());
    ColdClassifierTool classifier(caches());
    AllCacheTool plain(caches());
    Engine e1, e2;
    e1.attach(&classifier);
    e2.attach(&plain);
    classifier.beginRegion();
    e1.run(wl1, 50, 10);
    e2.run(wl2, 50, 10);

    // The data path must agree exactly.
    EXPECT_EQ(classifier.l1d().misses(),
              plain.hierarchy().levelStats(CacheLevel::L1D).misses);
    // Plain L2/L3 stats additionally contain instruction-fetch
    // traffic, which the classifier (a data-side tool) excludes;
    // the gap is bounded by the L1I misses that reached them.
    u64 l1iMisses =
        plain.hierarchy().levelStats(CacheLevel::L1I).misses;
    u64 plainL3 =
        plain.hierarchy().levelStats(CacheLevel::L3).misses;
    EXPECT_LE(classifier.l3().misses(), plainL3);
    EXPECT_GE(classifier.l3().misses() + l1iMisses, plainL3);
}

TEST(ColdClassifier, BeginRegionResets)
{
    SyntheticWorkload wl(hotSpec());
    ColdClassifierTool tool(caches());
    Engine engine;
    engine.attach(&tool);
    tool.beginRegion();
    engine.run(wl, 0, 10);
    EXPECT_GT(tool.l1d().accesses, 0u);
    tool.beginRegion();
    EXPECT_EQ(tool.l1d().accesses, 0u);
    EXPECT_EQ(tool.l3().firstTouchMisses, 0u);
}

TEST(ColdClassifier, FirstTouchDominatesColdMisses)
{
    // In a 10K-instruction cold region, most L3 misses are first
    // touches (the boundary artefact the paper's Fig. 8 is about).
    SyntheticWorkload wl(hotSpec());
    ColdClassifierTool tool(caches());
    Engine engine;
    engine.attach(&tool);
    tool.beginRegion();
    engine.run(wl, 200, 10);
    EXPECT_GT(tool.l3().firstTouchMisses, tool.l3().repeatMisses);
}

TEST(ColdClassifier, CorrectionBeatsRawColdEstimate)
{
    // Ground truth: miss rate of the same region measured after a
    // long functional warm-up.  The corrected cold estimate should
    // be at least as close to it as the raw cold number.
    BenchmarkSpec spec = hotSpec();
    SimPointResult sp;
    sp.totalSlices = 400;
    sp.sliceInstrs = 10000;
    sp.points = {{200, 1.0, 0, 400}};

    auto warm =
        aggregateCache(measurePointsCache(spec, sp, caches(), 160));
    double truthL3 = warm.l3MissRate;

    SyntheticWorkload wl(spec);
    ColdClassifierTool tool(caches());
    Engine engine;
    engine.attach(&tool);
    tool.beginRegion();
    engine.run(wl, 2000, 10); // slice 200, cold

    double rawErr =
        relativeError(tool.l3().coldMissRate(), truthL3);
    double correctedErr =
        relativeError(tool.l3().correctedMissRate(), truthL3);
    EXPECT_LT(correctedErr, rawErr);
}

} // namespace
} // namespace splab
