/**
 * @file
 * Unit and integration tests for the core pipeline: metrics
 * aggregation, the artifact cache, SimPoint pipeline and the run
 * drivers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/costmodel.hh"
#include "core/artifact_graph.hh"
#include "core/pipeline.hh"
#include "core/runs.hh"
#include "core/scale.hh"
#include "support/stats_util.hh"

namespace splab
{
namespace
{

BenchmarkSpec
twoPhaseSpec(u64 chunks = 2000)
{
    BenchmarkSpec s;
    s.name = "core-test";
    s.seed = 31337;
    s.totalChunks = chunks;
    s.chunkLen = 1000;
    PhaseSpec a;
    a.name = "chase";
    a.weight = 0.7;
    a.kernel = KernelKind::PointerChase;
    a.workingSetBytes = 8 << 20;
    a.numBlocks = 14;
    PhaseSpec b;
    b.name = "scan";
    b.weight = 0.3;
    b.kernel = KernelKind::Stream;
    b.workingSetBytes = 32 << 20;
    b.numBlocks = 10;
    s.phases = {a, b};
    s.schedule = ScheduleKind::Markov;
    s.dwellChunks = 60;
    return s;
}

TEST(Scale, SliceConversions)
{
    EXPECT_EQ(scale::sliceForPaperMillions(30), 10000u);
    EXPECT_EQ(scale::sliceForPaperMillions(15), 5000u);
    EXPECT_EQ(scale::sliceForPaperMillions(100), 33000u);
    // Always a whole number of chunks.
    for (double m : scale::kPaperSliceSweepM)
        EXPECT_EQ(scale::sliceForPaperMillions(m) %
                      scale::kChunkInstrs,
                  0u);
}

TEST(CostModel, ReproducesPaperScaleRatios)
{
    ReplayCostModel cost;
    // Paper averages: whole 6,873.9B instrs in ~213.2h; regional
    // 10.4B instrs over ~20 pinballs in ~17.17 min.
    double wholeH = cost.wholeSeconds(6873.9e9) / 3600.0;
    double regionalMin =
        cost.regionalSeconds(10.4e9, 20) / 60.0;
    EXPECT_NEAR(wholeH, 213.2, 10.0);
    EXPECT_NEAR(regionalMin, 17.17, 2.0);
    double speedup = (wholeH * 60.0) / regionalMin;
    EXPECT_GT(speedup, 600.0);
    EXPECT_LT(speedup, 900.0);
}

TEST(Metrics, AggregateCacheWeighting)
{
    PointCacheMetrics p1, p2;
    p1.weight = 0.75;
    p1.m.instrs = 1000;
    p1.m.mixFrac = {0.5, 0.3, 0.2, 0.0};
    p1.m.l3 = {100, 50};
    p1.m.l1d = {400, 4};
    p2.weight = 0.25;
    p2.m.instrs = 1000;
    p2.m.mixFrac = {0.7, 0.2, 0.1, 0.0};
    p2.m.l3 = {300, 30};
    p2.m.l1d = {400, 12};

    AggregateCacheMetrics agg = aggregateCache({p1, p2});
    EXPECT_NEAR(agg.mixFrac[0], 0.75 * 0.5 + 0.25 * 0.7, 1e-12);
    // L3: weighted misses-per-instr / weighted accesses-per-instr.
    double mis = 0.75 * 50 / 1000.0 + 0.25 * 30 / 1000.0;
    double acc = 0.75 * 100 / 1000.0 + 0.25 * 300 / 1000.0;
    EXPECT_NEAR(agg.l3MissRate, mis / acc, 1e-12);
    EXPECT_EQ(agg.l3Accesses, 400u);
    EXPECT_EQ(agg.executedInstrs, 2000u);
}

TEST(Metrics, AggregateWeightsNeedNotBeNormalized)
{
    PointCacheMetrics p1, p2;
    p1.weight = 3.0;
    p1.m.instrs = 100;
    p1.m.mixFrac = {1.0, 0, 0, 0};
    p2.weight = 1.0;
    p2.m.instrs = 100;
    p2.m.mixFrac = {0.0, 1.0, 0, 0};
    AggregateCacheMetrics agg = aggregateCache({p1, p2});
    EXPECT_NEAR(agg.mixFrac[0], 0.75, 1e-12);
    EXPECT_NEAR(agg.mixFrac[1], 0.25, 1e-12);
}

TEST(Metrics, AggregateTimingCpi)
{
    PointTimingMetrics p1, p2;
    p1.weight = 0.5;
    p1.m.instrs = 1000;
    p1.m.cycles = 1000.0; // CPI 1
    p2.weight = 0.5;
    p2.m.instrs = 1000;
    p2.m.cycles = 3000.0; // CPI 3
    AggregateTimingMetrics agg = aggregateTiming({p1, p2});
    EXPECT_NEAR(agg.cpi, 2.0, 1e-12);
    EXPECT_EQ(agg.executedInstrs, 2000u);
}

TEST(Metrics, WholeAsAggregateConsistency)
{
    CacheRunMetrics whole;
    whole.instrs = 5000;
    whole.mixFrac = {0.5, 0.35, 0.13, 0.02};
    whole.l3 = {1000, 250};
    AggregateCacheMetrics agg = wholeAsAggregate(whole);
    EXPECT_EQ(agg.executedInstrs, 5000u);
    EXPECT_NEAR(agg.l3MissRate, 0.25, 1e-12);
    EXPECT_EQ(agg.l3Accesses, 1000u);
}

TEST(ArtifactCache, StoreLoadRoundTrip)
{
    std::string dir = testing::TempDir() + "/splab_cache_test";
    ArtifactCache cache(dir);
    ASSERT_TRUE(cache.enabled());
    ByteWriter w;
    w.putString("cached payload");
    cache.store("unit", 0x1234, w);
    CacheOutcome r = cache.load("unit", 0x1234);
    ASSERT_TRUE(r.hit());
    EXPECT_EQ(r.status, CacheStatus::Hit);
    EXPECT_EQ(r->getString(), "cached payload");
    EXPECT_EQ(cache.load("unit", 0x9999).status, CacheStatus::Miss);
    EXPECT_EQ(cache.load("other", 0x1234).status, CacheStatus::Miss);
    std::filesystem::remove_all(dir);
}

TEST(ArtifactCache, DisabledCacheIsInert)
{
    ArtifactCache cache("");
    EXPECT_FALSE(cache.enabled());
    ByteWriter w;
    w.put<u64>(1);
    cache.store("unit", 1, w); // must not crash
    CacheOutcome r = cache.load("unit", 1);
    EXPECT_FALSE(r.hit());
    EXPECT_EQ(r.status, CacheStatus::Disabled);
}

TEST(Pipeline, SimPointsFindPhasesOfKnownWorkload)
{
    SimPointConfig cfg;
    cfg.maxK = 8;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    // Contiguous phases: a single boundary slice, so the clustering
    // must find exactly the two designed phases.
    BenchmarkSpec spec = twoPhaseSpec();
    spec.schedule = ScheduleKind::Contiguous;
    SimPointResult r = pipe.simpoints(spec);
    EXPECT_EQ(r.points.size(), 2u);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    auto sorted = r.byDescendingWeight();
    EXPECT_NEAR(sorted[0].weight, 0.7, 0.08);
    EXPECT_NEAR(sorted[1].weight, 0.3, 0.08);
}

TEST(Pipeline, SimPointsSerializationRoundTrip)
{
    SimPointConfig cfg;
    cfg.maxK = 6;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult r = pipe.simpoints(twoPhaseSpec(600));
    ByteWriter w;
    serializeSimPoints(w, r);
    ByteReader rd(w.bytes());
    SimPointResult s = deserializeSimPoints(rd);
    EXPECT_EQ(s.chosenK, r.chosenK);
    EXPECT_EQ(s.points.size(), r.points.size());
    EXPECT_EQ(s.sliceToCluster, r.sliceToCluster);
    EXPECT_EQ(s.sweep.size(), r.sweep.size());
}

TEST(Pipeline, DiskCacheHitsAreIdentical)
{
    std::string dir = testing::TempDir() + "/splab_pipe_cache";
    std::filesystem::remove_all(dir);
    SimPointConfig cfg;
    cfg.maxK = 6;
    BenchmarkSpec spec = twoPhaseSpec(600);
    PinPointsPipeline pipe(cfg, ArtifactCache(dir));
    SimPointResult fresh = pipe.simpoints(spec);
    SimPointResult cached = pipe.simpoints(spec);
    EXPECT_EQ(fresh.chosenK, cached.chosenK);
    ASSERT_EQ(fresh.points.size(), cached.points.size());
    for (std::size_t i = 0; i < fresh.points.size(); ++i) {
        EXPECT_EQ(fresh.points[i].slice, cached.points[i].slice);
        EXPECT_DOUBLE_EQ(fresh.points[i].weight,
                         cached.points[i].weight);
    }
    std::filesystem::remove_all(dir);
}

TEST(Pipeline, RegionalPinballMatchesSelection)
{
    SimPointConfig cfg;
    cfg.maxK = 6;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    BenchmarkSpec spec = twoPhaseSpec(600);
    Pinball regional = pipe.makeRegionalPinball(spec);
    SimPointResult r = pipe.simpoints(spec);
    ASSERT_EQ(regional.regions().size(), r.points.size());
    EXPECT_EQ(regional.coveredInstrs(),
              r.points.size() * cfg.sliceInstrs);
}

TEST(Runs, RegionalMixTracksWholeRun)
{
    // The paper's core claim at module scale: weighted regional
    // instruction mix matches the whole run within ~1%.
    BenchmarkSpec spec = twoPhaseSpec();
    SimPointConfig cfg;
    cfg.maxK = 8;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult sp = pipe.simpoints(spec);

    CacheRunMetrics whole = measureWholeCache(spec, tableIConfig());
    auto points =
        measurePointsCache(spec, sp, tableIConfig(), 0);
    AggregateCacheMetrics regional = aggregateCache(points);

    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_NEAR(regional.mixFrac[c], whole.mixFrac[c], 0.015)
            << memClassName(static_cast<MemClass>(c));
}

TEST(Runs, WarmupReducesL3MissRateError)
{
    BenchmarkSpec spec = twoPhaseSpec();
    SimPointConfig cfg;
    cfg.maxK = 8;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult sp = pipe.simpoints(spec);

    CacheRunMetrics whole = measureWholeCache(spec, tableIConfig());
    double wholeL3 = whole.l3.missRate();

    AggregateCacheMetrics cold = aggregateCache(
        measurePointsCache(spec, sp, tableIConfig(), 0));
    AggregateCacheMetrics warm = aggregateCache(
        measurePointsCache(spec, sp, tableIConfig(), 120));

    double errCold = relativeError(cold.l3MissRate, wholeL3);
    double errWarm = relativeError(warm.l3MissRate, wholeL3);
    EXPECT_LE(errWarm, errCold + 1e-9);
}

TEST(Runs, TimingPointsProduceFiniteCpi)
{
    BenchmarkSpec spec = twoPhaseSpec(800);
    SimPointConfig cfg;
    cfg.maxK = 6;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult sp = pipe.simpoints(spec);
    auto points =
        measurePointsTiming(spec, sp, tableIIIMachine(), 60);
    AggregateTimingMetrics agg = aggregateTiming(points);
    EXPECT_GT(agg.cpi, 0.25);
    EXPECT_LT(agg.cpi, 20.0);
    EXPECT_EQ(agg.executedInstrs,
              points.size() * cfg.sliceInstrs);
}

TEST(ReduceToQuantile, KeepsHeaviest)
{
    std::vector<PointCacheMetrics> pts(4);
    pts[0].weight = 0.4;
    pts[1].weight = 0.3;
    pts[2].weight = 0.2;
    pts[3].weight = 0.1;
    auto reduced = reduceToQuantile(pts, 0.9);
    ASSERT_EQ(reduced.size(), 3u);
    EXPECT_DOUBLE_EQ(reduced[0].weight, 0.4);
    EXPECT_DOUBLE_EQ(reduced[2].weight, 0.2);
    auto all = reduceToQuantile(pts, 1.0);
    EXPECT_EQ(all.size(), 4u);
}

} // namespace
} // namespace splab
