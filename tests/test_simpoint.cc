/**
 * @file
 * Unit tests for the SimPoint machinery: BBVs, projection, k-means,
 * BIC and the end-to-end selector.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "simpoint/simpoint.hh"
#include "support/rng.hh"

namespace splab
{
namespace
{

TEST(Bbv, AccumulatorHarvestsSortedSparse)
{
    BbvAccumulator acc(16);
    acc.add(5, 100);
    acc.add(2, 50);
    acc.add(5, 25);
    FrequencyVector v = acc.harvest();
    ASSERT_EQ(v.entries.size(), 2u);
    EXPECT_EQ(v.entries[0].block, 2u);
    EXPECT_FLOAT_EQ(v.entries[0].weight, 50.0f);
    EXPECT_EQ(v.entries[1].block, 5u);
    EXPECT_FLOAT_EQ(v.entries[1].weight, 125.0f);
    // Harvest resets the scratch.
    EXPECT_TRUE(acc.empty());
    acc.add(5, 7);
    FrequencyVector w = acc.harvest();
    ASSERT_EQ(w.entries.size(), 1u);
    EXPECT_FLOAT_EQ(w.entries[0].weight, 7.0f);
}

TEST(Bbv, NormalizeMakesUnitL1)
{
    FrequencyVector v;
    v.entries = {{0, 30.0f}, {3, 70.0f}};
    v.normalize();
    EXPECT_NEAR(v.l1Norm(), 1.0, 1e-6);
    EXPECT_NEAR(v.entries[1].weight, 0.7, 1e-6);
}

TEST(Projection, DeterministicAndLinearInWeight)
{
    RandomProjection p(15, 99);
    FrequencyVector v;
    v.entries = {{1, 1.0f}, {7, 2.0f}};
    std::vector<double> a, b;
    p.project(v, a);
    p.project(v, b);
    EXPECT_EQ(a, b);

    FrequencyVector v2;
    v2.entries = {{1, 2.0f}, {7, 4.0f}};
    p.project(v2, b);
    for (u32 d = 0; d < 15; ++d)
        EXPECT_NEAR(b[d], 2.0 * a[d], 1e-9);
}

TEST(Projection, PreservesRelativeDistances)
{
    // Two far-apart groups of sparse vectors must stay far apart
    // relative to within-group distances after projection.
    RandomProjection p(15, 5);
    Rng rng(3);
    auto makeVec = [&](u32 base) {
        FrequencyVector v;
        for (u32 i = 0; i < 10; ++i)
            v.entries.push_back(
                {base + i,
                 static_cast<float>(0.1 * (1.0 + 0.05 *
                                           rng.gaussian()))});
        v.normalize();
        return v;
    };
    std::vector<std::vector<double>> g1, g2;
    for (int i = 0; i < 10; ++i) {
        std::vector<double> out;
        p.project(makeVec(0), out);
        g1.push_back(out);
        p.project(makeVec(100), out);
        g2.push_back(out);
    }
    double within = squaredDistance(g1[0], g1[1]);
    double across = squaredDistance(g1[0], g2[0]);
    EXPECT_GT(across, 10.0 * within);
}

std::vector<std::vector<double>>
gaussianBlobs(u32 clusters, u32 perCluster, double spread, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> pts;
    for (u32 c = 0; c < clusters; ++c) {
        std::vector<double> centre(8);
        for (auto &x : centre)
            x = rng.uniform(-10.0, 10.0);
        for (u32 i = 0; i < perCluster; ++i) {
            std::vector<double> p(8);
            for (std::size_t d = 0; d < 8; ++d)
                p[d] = centre[d] + spread * rng.gaussian();
            pts.push_back(std::move(p));
        }
    }
    return pts;
}

TEST(KMeans, RecoversWellSeparatedBlobs)
{
    auto pts = gaussianBlobs(4, 50, 0.1, 17);
    KMeansResult r = kmeansBestOf(pts, 4, 1, 3);
    EXPECT_TRUE(r.converged);
    // Each true blob (50 consecutive points) maps to one cluster.
    for (u32 blob = 0; blob < 4; ++blob) {
        u32 c0 = r.assignment[blob * 50];
        for (u32 i = 0; i < 50; ++i)
            EXPECT_EQ(r.assignment[blob * 50 + i], c0);
    }
    for (u32 c = 0; c < 4; ++c)
        EXPECT_EQ(r.clusterSize[c], 50u);
}

TEST(KMeans, DistortionDecreasesWithK)
{
    auto pts = gaussianBlobs(6, 40, 0.8, 23);
    double prev = -1.0;
    for (u32 k : {1u, 2u, 4u, 8u}) {
        KMeansResult r = kmeansBestOf(pts, k, 1, 3);
        if (prev >= 0.0)
            EXPECT_LT(r.distortion, prev);
        prev = r.distortion;
    }
}

TEST(KMeans, KClampedToPointCount)
{
    auto pts = gaussianBlobs(1, 3, 0.1, 5);
    KMeansResult r = kmeansFit(pts, 10, 1);
    EXPECT_EQ(r.k, 3u);
}

TEST(KMeans, AssignmentsMatchNearestCentroid)
{
    auto pts = gaussianBlobs(3, 30, 1.0, 29);
    KMeansResult r = kmeansBestOf(pts, 3, 1, 2);
    for (std::size_t i = 0; i < pts.size(); ++i) {
        double assigned = squaredDistance(
            pts[i].data(), r.centroids.row(r.assignment[i]),
            r.centroids.cols());
        for (u32 c = 0; c < r.k; ++c)
            EXPECT_LE(assigned,
                      squaredDistance(pts[i].data(),
                                      r.centroids.row(c),
                                      r.centroids.cols()) +
                          1e-9);
    }
}

TEST(Bic, PeaksNearTrueClusterCount)
{
    auto pts = gaussianBlobs(5, 60, 0.15, 31);
    std::vector<double> scores;
    u32 bestK = 0;
    double bestScore = -1e300;
    for (u32 k = 1; k <= 10; ++k) {
        KMeansResult r = kmeansBestOf(pts, k, 7, 3);
        double s = bicScore(r, pts);
        scores.push_back(s);
        if (s > bestScore) {
            bestScore = s;
            bestK = k;
        }
    }
    EXPECT_GE(bestK, 4u);
    EXPECT_LE(bestK, 7u);
    // The fraction rule should not pick fewer clusters than exist.
    std::size_t idx = pickByBicFraction(scores, 0.9);
    EXPECT_GE(idx + 1, 4u);
}

TEST(Bic, FractionRulePicksSmallestQualifying)
{
    std::vector<double> scores = {0.0, 50.0, 95.0, 99.0, 100.0};
    EXPECT_EQ(pickByBicFraction(scores, 0.9), 2u);
    EXPECT_EQ(pickByBicFraction(scores, 1.0), 4u);
    EXPECT_EQ(pickByBicFraction({5.0, 5.0}, 0.9), 0u); // flat
}

/** Synthesize per-slice BBVs with a known phase structure. */
std::vector<FrequencyVector>
phasedBbvs(const std::vector<double> &weights, u32 slices, u64 seed,
           double noise = 0.05)
{
    Rng rng(seed);
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cdf[i] = acc;
    }
    for (auto &c : cdf)
        c /= acc;

    std::vector<FrequencyVector> out;
    for (u32 s = 0; s < slices; ++s) {
        auto phase = sampleCdf(cdf.data(), cdf.size(), rng.uniform());
        FrequencyVector v;
        for (u32 b = 0; b < 12; ++b) {
            double w = 1.0 + noise * rng.gaussian();
            v.entries.push_back(
                {static_cast<u32>(phase * 12 + b),
                 static_cast<float>(w < 0.01 ? 0.01 : w)});
        }
        out.push_back(std::move(v));
    }
    return out;
}

TEST(SimPointSelect, FindsThePhases)
{
    auto bbvs = phasedBbvs({0.4, 0.3, 0.2, 0.1}, 800, 77);
    SimPointConfig cfg;
    cfg.maxK = 10;
    cfg.sliceInstrs = 10000;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    EXPECT_EQ(r.points.size(), 4u);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    // Weights recover the schedule shares.
    auto sorted = r.byDescendingWeight();
    EXPECT_NEAR(sorted[0].weight, 0.4, 0.06);
    EXPECT_NEAR(sorted[3].weight, 0.1, 0.04);
}

TEST(SimPointSelect, WeightsSumToOneAndSlicesValid)
{
    auto bbvs = phasedBbvs({0.5, 0.25, 0.25}, 600, 13);
    SimPointConfig cfg;
    cfg.maxK = 8;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    for (const auto &p : r.points) {
        EXPECT_LT(p.slice, bbvs.size());
        EXPECT_GT(p.weight, 0.0);
        EXPECT_EQ(p.clusterSize,
                  static_cast<u64>(p.weight * 600.0 + 0.5));
    }
    EXPECT_EQ(r.sliceToCluster.size(), bbvs.size());
}

TEST(SimPointSelect, RepresentativeBelongsToItsCluster)
{
    auto bbvs = phasedBbvs({0.6, 0.4}, 300, 3);
    SimPointConfig cfg;
    cfg.maxK = 6;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    for (const auto &p : r.points)
        EXPECT_EQ(r.sliceToCluster[p.slice], p.cluster);
}

TEST(SimPointSelect, ForcedKHonored)
{
    auto bbvs = phasedBbvs({0.5, 0.3, 0.2}, 400, 9);
    SimPointConfig cfg;
    for (u32 k : {1u, 2u, 5u}) {
        SimPointResult r = pickSimPointsForcedK(bbvs, cfg, k);
        EXPECT_LE(r.points.size(), k);
        EXPECT_GE(r.points.size(), 1u);
        EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    }
}

TEST(SimPointSelect, VarianceDropsWithMoreClusters)
{
    // Fig. 4's monotone trend: forcing fewer clusters inflates the
    // within-cluster variance.
    auto bbvs = phasedBbvs({0.3, 0.3, 0.2, 0.1, 0.1}, 600, 21, 0.1);
    SimPointConfig cfg;
    double v2 = 0.0, v5 = 0.0;
    {
        SimPointResult r = pickSimPointsForcedK(bbvs, cfg, 2);
        v2 = r.sweep.back().avgClusterVariance;
    }
    {
        SimPointResult r = pickSimPointsForcedK(bbvs, cfg, 5);
        v5 = r.sweep.back().avgClusterVariance;
    }
    EXPECT_GT(v2, v5 * 2.0);
}

TEST(SimPointSelect, TopByWeightCoversQuantile)
{
    auto bbvs = phasedBbvs({0.5, 0.2, 0.1, 0.1, 0.05, 0.05}, 900, 41);
    SimPointConfig cfg;
    cfg.maxK = 12;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    auto reduced = r.topByWeight(0.9);
    double cum = 0.0;
    for (const auto &p : reduced)
        cum += p.weight;
    EXPECT_GE(cum, 0.9 - 1e-9);
    EXPECT_LE(reduced.size(), r.points.size());
    // Dropping the lightest point must fall below the quantile.
    if (reduced.size() > 1)
        EXPECT_LT(cum - reduced.back().weight, 0.9);
}

TEST(SimPointSelect, SweepCoversOneToMaxK)
{
    auto bbvs = phasedBbvs({0.7, 0.3}, 200, 55);
    SimPointConfig cfg;
    cfg.maxK = 7;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    ASSERT_EQ(r.sweep.size(), 7u);
    for (u32 i = 0; i < 7; ++i)
        EXPECT_EQ(r.sweep[i].k, i + 1);
    // Distortion is nonincreasing in k (best-of restarts, well
    // separated data).
    for (u32 i = 1; i < 7; ++i)
        EXPECT_LE(r.sweep[i].distortion,
                  r.sweep[i - 1].distortion * 1.05);
}

TEST(SimPointSelect, ZeroSampleCapClampsToOneSlice)
{
    // sampleCap = 0 used to produce an empty strided sub-sample and
    // trip the "kmeans: no points" assert; it now clamps to one
    // representative slice and degenerates to a single-cluster
    // selection instead of aborting.
    auto bbvs = phasedBbvs({0.7, 0.3}, 120, 61);
    SimPointConfig cfg;
    cfg.maxK = 5;
    cfg.sampleCap = 0;
    SimPointResult r = pickSimPoints(bbvs, cfg);
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    EXPECT_EQ(r.sliceToCluster.size(), bbvs.size());
}

TEST(SimPointConfig, HashChangesWithKnobs)
{
    SimPointConfig a, b;
    EXPECT_EQ(a.contentHash(), b.contentHash());
    b.maxK = 20;
    EXPECT_NE(a.contentHash(), b.contentHash());
    SimPointConfig c;
    c.sliceInstrs = 20000;
    EXPECT_NE(a.contentHash(), c.contentHash());
}

} // namespace
} // namespace splab
