/**
 * @file
 * Unit tests for the native-hardware (perf) model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "perf/native.hh"

namespace splab
{
namespace
{

double
relErr(double a, double b)
{
    return b == 0.0 ? a : std::abs(a - b) / std::abs(b);
}

BenchmarkSpec
spec(u64 seed = 11)
{
    BenchmarkSpec s;
    s.name = "perf-test";
    s.seed = seed;
    s.totalChunks = 150;
    s.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 1.0;
    a.kernel = KernelKind::ZipfHotCold;
    a.workingSetBytes = 4 << 20;
    s.phases = {a};
    s.schedule = ScheduleKind::Contiguous;
    return s;
}

TEST(Native, CountersArePopulated)
{
    SyntheticWorkload wl(spec());
    NativeMachine hw(tableIIIMachine());
    PerfCounters c = hw.run(wl);
    EXPECT_EQ(c.instructions, 150000u);
    EXPECT_GT(c.cpuCycles, c.instructions / 4);
    EXPECT_GT(c.branches, 0u);
    EXPECT_LE(c.branchMisses, c.branches);
    EXPECT_LE(c.cacheMisses, c.cacheReferences);
    EXPECT_GT(c.cpi(), 0.25);
    EXPECT_LT(c.cpi(), 20.0);
}

TEST(Native, RepeatedRunsJitterSlightly)
{
    SyntheticWorkload wl1(spec()), wl2(spec());
    NativeMachine hw(tableIIIMachine());
    PerfCounters a = hw.run(wl1, 0);
    PerfCounters b = hw.run(wl2, 1);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_NE(a.cpuCycles, b.cpuCycles); // non-determinism
    double rel = relErr(a.cpi(), b.cpi());
    EXPECT_LT(rel, 0.05);
}

TEST(Native, SameRunIndexIsReproducible)
{
    SyntheticWorkload wl1(spec()), wl2(spec());
    NativeMachine hw(tableIIIMachine());
    EXPECT_EQ(hw.run(wl1, 3).cpuCycles, hw.run(wl2, 3).cpuCycles);
}

TEST(Native, BiasIsPerBenchmark)
{
    // Two different benchmarks get different systematic biases.
    SyntheticWorkload wlA(spec(1)), wlB(spec(2));
    NativeMachine hw(tableIIIMachine(), 0.05, 0.0);
    double cpiA = hw.run(wlA).cpi();
    double cpiB = hw.run(wlB).cpi();
    // Same workload shape, different seeds -> CPI ratio reflects
    // the bias draw (and stream differences); must not be exactly
    // equal.
    EXPECT_NE(cpiA, cpiB);
}

TEST(Native, ZeroNoiseMatchesTimingModel)
{
    SyntheticWorkload wl(spec());
    NativeMachine clean(tableIIIMachine(), 0.0, 0.0);
    PerfCounters c = clean.run(wl);
    // With the hardware-effects model disabled, cycles equal the
    // timing model's output exactly (modulo u64 truncation).
    SyntheticWorkload wl2(spec());
    NativeMachine again(tableIIIMachine(), 0.0, 0.0);
    EXPECT_EQ(c.cpuCycles, again.run(wl2).cpuCycles);
}

} // namespace
} // namespace splab
