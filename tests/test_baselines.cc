/**
 * @file
 * Unit tests for the behaviour-oblivious sampling baselines, driven
 * through the SamplingStrategy registry ("stride" and "random",
 * src/sampling/strategies.hh).  The expectations are the historical
 * ones from the retired simpoint/baselines.hh free functions —
 * SMARTS-style first-sample-at-stride/2, equal 1/n weights, unique
 * in-range random slices — asserting that the registry strategies
 * reproduce those bytes exactly.
 */

#include <gtest/gtest.h>

#include <set>

#include "sampling/strategies.hh"

namespace splab
{
namespace
{

/** Evenly-spaced n-sample selection as a SimPointResult (the
 *  historical systematicSample shape). */
SimPointResult
strideSample(u64 totalSlices, ICount sliceInstrs, u32 n)
{
    StrategyInputs in{nullptr, totalSlices, sliceInstrs};
    StrideConfig cfg;
    cfg.n = n;
    return simPointsFromRegions(StrideStrategy(cfg).select(in));
}

/** Uniform random n-sample selection as a SimPointResult (the
 *  historical randomSample shape). */
SimPointResult
randomSampleViaRegistry(u64 totalSlices, ICount sliceInstrs, u32 n,
                        u64 seed)
{
    StrategyInputs in{nullptr, totalSlices, sliceInstrs};
    RandomConfig cfg;
    cfg.n = n;
    cfg.seed = seed;
    return simPointsFromRegions(RandomStrategy(cfg).select(in));
}

TEST(Systematic, EvenSpacingAndEqualWeights)
{
    SimPointResult r = strideSample(1000, 10000, 10);
    ASSERT_EQ(r.points.size(), 10u);
    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-12);
    // SMARTS-style offset: first sample at stride/2.
    EXPECT_EQ(r.points[0].slice, 50u);
    for (std::size_t i = 1; i < r.points.size(); ++i)
        EXPECT_EQ(r.points[i].slice - r.points[i - 1].slice, 100u);
    for (const auto &p : r.points)
        EXPECT_DOUBLE_EQ(p.weight, 0.1);
}

TEST(Systematic, ClampsToRunLength)
{
    SimPointResult r = strideSample(5, 10000, 10);
    EXPECT_EQ(r.points.size(), 5u);
    for (const auto &p : r.points)
        EXPECT_LT(p.slice, 5u);
}

TEST(Systematic, SingleSampleLandsMidRun)
{
    SimPointResult r = strideSample(1000, 10000, 1);
    ASSERT_EQ(r.points.size(), 1u);
    EXPECT_EQ(r.points[0].slice, 500u);
    EXPECT_DOUBLE_EQ(r.points[0].weight, 1.0);
}

TEST(Random, UniqueInRangeAndDeterministic)
{
    SimPointResult a = randomSampleViaRegistry(1000, 10000, 25, 7);
    SimPointResult b = randomSampleViaRegistry(1000, 10000, 25, 7);
    ASSERT_EQ(a.points.size(), 25u);
    std::set<SliceIndex> seen;
    for (const auto &p : a.points) {
        EXPECT_LT(p.slice, 1000u);
        seen.insert(p.slice);
    }
    EXPECT_EQ(seen.size(), 25u); // without replacement
    for (std::size_t i = 0; i < a.points.size(); ++i)
        EXPECT_EQ(a.points[i].slice, b.points[i].slice);
    EXPECT_NEAR(a.totalWeight(), 1.0, 1e-12);
}

TEST(Random, SeedChangesSelection)
{
    SimPointResult a = randomSampleViaRegistry(1000, 10000, 25, 7);
    SimPointResult b = randomSampleViaRegistry(1000, 10000, 25, 8);
    int same = 0;
    for (std::size_t i = 0; i < a.points.size(); ++i)
        same += a.points[i].slice == b.points[i].slice;
    EXPECT_LT(same, 5);
}

TEST(Random, FullCoverageWhenBudgetEqualsRun)
{
    SimPointResult r = randomSampleViaRegistry(20, 10000, 20, 3);
    EXPECT_EQ(r.points.size(), 20u);
    std::set<SliceIndex> seen;
    for (const auto &p : r.points)
        seen.insert(p.slice);
    EXPECT_EQ(seen.size(), 20u);
}

TEST(Baselines, PointsSortedBySlice)
{
    for (const SimPointResult &r :
         {strideSample(500, 10000, 7),
          randomSampleViaRegistry(500, 10000, 7, 42)}) {
        for (std::size_t i = 1; i < r.points.size(); ++i)
            EXPECT_LT(r.points[i - 1].slice, r.points[i].slice);
    }
}

} // namespace
} // namespace splab
