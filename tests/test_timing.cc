/**
 * @file
 * Unit tests for the branch predictor and interval timing model.
 */

#include <gtest/gtest.h>

#include "pin/engine.hh"
#include "support/rng.hh"
#include "timing/interval_core.hh"

namespace splab
{
namespace
{

TEST(Gshare, LearnsABiasedBranch)
{
    GsharePredictor p(12);
    Addr pc = 0x400100;
    // Always-taken branch: once the global history register fills
    // with taken outcomes, the indexed counter saturates and
    // predictions are correct.
    for (int i = 0; i < 50; ++i)
        p.update(pc, true);
    p.resetStats();
    for (int i = 0; i < 100; ++i)
        p.update(pc, true);
    EXPECT_EQ(p.mispredicts(), 0u);
    EXPECT_EQ(p.lookups(), 100u);
}

TEST(Gshare, LearnsAlternatingPatternViaHistory)
{
    GsharePredictor p(12);
    Addr pc = 0x400200;
    for (int i = 0; i < 64; ++i)
        p.update(pc, i % 2 == 0);
    p.resetStats();
    for (int i = 64; i < 164; ++i)
        p.update(pc, i % 2 == 0);
    // Global history disambiguates the alternation almost perfectly.
    EXPECT_LT(p.mispredicts(), 5u);
}

TEST(Gshare, RandomBranchMispredictsHalfTheTime)
{
    GsharePredictor p(12);
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        p.update(0x400300, rng.chance(0.5));
    p.resetStats();
    for (int i = 0; i < 2000; ++i)
        p.update(0x400300, rng.chance(0.5));
    double rate = static_cast<double>(p.mispredicts()) /
                  static_cast<double>(p.lookups());
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

TEST(Gshare, ResetForgets)
{
    GsharePredictor p(10);
    for (int i = 0; i < 50; ++i)
        p.update(0x400400, true);
    p.reset();
    // Cold counters are weakly not-taken.
    EXPECT_FALSE(p.predict(0x400400));
}

TEST(Gshare, WarmupFreezesCounters)
{
    GsharePredictor p(10);
    p.setWarmup(true);
    for (int i = 0; i < 50; ++i)
        p.update(0x400500, true);
    EXPECT_EQ(p.lookups(), 0u);
    p.setWarmup(false);
    p.update(0x400500, true);
    EXPECT_EQ(p.lookups(), 1u);
    EXPECT_EQ(p.mispredicts(), 0u); // trained during warm-up
}

TEST(Tournament, BimodalLearnsBiasWithoutUsableHistory)
{
    // Interleave many branches so the global history at any one
    // branch is effectively noise; the bimodal side must still
    // capture per-branch bias almost immediately.
    TournamentPredictor p(14);
    Rng rng(3);
    std::vector<Addr> pcs;
    for (int b = 0; b < 32; ++b)
        pcs.push_back(0x400000 + b * 24);
    // Block b is taken-biased iff b is even; directions are run
    // structured (runs of 16, one break).
    auto outcome = [&](int b, int n) {
        bool majority = b % 2 == 0;
        return n % 16 == 15 ? !majority : majority;
    };
    std::vector<int> execs(32, 0);
    for (int i = 0; i < 4000; ++i) {
        int b = static_cast<int>(rng.below(32));
        p.update(pcs[b], outcome(b, execs[b]++));
    }
    p.resetStats();
    for (int i = 0; i < 20000; ++i) {
        int b = static_cast<int>(rng.below(32));
        p.update(pcs[b], outcome(b, execs[b]++));
    }
    double rate = static_cast<double>(p.mispredicts()) /
                  static_cast<double>(p.lookups());
    // Far better than chance; at worst ~2 breaks per 16-run.
    EXPECT_LT(rate, 0.22);
}

TEST(Tournament, LearnsAlternationThroughGshareSide)
{
    TournamentPredictor p(12);
    for (int i = 0; i < 200; ++i)
        p.update(0x400700, i % 2 == 0);
    p.resetStats();
    for (int i = 200; i < 400; ++i)
        p.update(0x400700, i % 2 == 0);
    double rate = static_cast<double>(p.mispredicts()) /
                  static_cast<double>(p.lookups());
    EXPECT_LT(rate, 0.10);
}

TEST(Tournament, RandomBranchStaysNearChance)
{
    TournamentPredictor p(12);
    Rng rng(17);
    for (int i = 0; i < 4000; ++i)
        p.update(0x400800, rng.chance(0.5));
    p.resetStats();
    for (int i = 0; i < 4000; ++i)
        p.update(0x400800, rng.chance(0.5));
    double rate = static_cast<double>(p.mispredicts()) /
                  static_cast<double>(p.lookups());
    EXPECT_GT(rate, 0.35);
    EXPECT_LT(rate, 0.65);
}

TEST(Tournament, ResetAndWarmup)
{
    TournamentPredictor p(10);
    for (int i = 0; i < 10; ++i)
        p.update(0x400900, true);
    p.reset();
    p.resetStats();
    EXPECT_FALSE(p.predict(0x400900));
    p.setWarmup(true);
    for (int i = 0; i < 10; ++i)
        p.update(0x400900, true);
    EXPECT_EQ(p.lookups(), 0u);
    p.setWarmup(false);
    EXPECT_TRUE(p.predict(0x400900));
}

BenchmarkSpec
timingSpec(KernelKind kernel, u64 ws, double dataDep = 0.05)
{
    BenchmarkSpec s;
    s.name = "timing-test";
    s.seed = 99;
    s.totalChunks = 200;
    s.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 1.0;
    a.kernel = kernel;
    a.workingSetBytes = ws;
    a.dataDepBranchFraction = dataDep;
    a.localFraction = 0.0; // kernel behaviour only, no stack traffic
    s.phases = {a};
    s.schedule = ScheduleKind::Contiguous;
    return s;
}

TimingStats
runTiming(const BenchmarkSpec &spec,
          MachineConfig cfg = tableIIIMachine())
{
    SyntheticWorkload wl(spec);
    IntervalCoreTool core(cfg);
    Engine engine;
    engine.attach(&core);
    engine.runWhole(wl);
    return core.stats();
}

TEST(IntervalCore, CpiBoundedBelowByDispatchWidth)
{
    TimingStats t =
        runTiming(timingSpec(KernelKind::Blocked, 1 << 20, 0.0));
    EXPECT_GE(t.cpi(), 1.0 / 4.0);
    EXPECT_LT(t.cpi(), 10.0);
    EXPECT_EQ(t.instrs, 200000u);
}

TEST(IntervalCore, CacheMissesRaiseCpi)
{
    // L1-resident tiles vs a pointer chase through 64 MiB.
    TimingStats fast =
        runTiming(timingSpec(KernelKind::Blocked, 1 << 20, 0.0));
    TimingStats slow = runTiming(
        timingSpec(KernelKind::PointerChase, 64ULL << 20, 0.0));
    EXPECT_GT(slow.cpi(), fast.cpi() * 1.5);
    EXPECT_GT(slow.memAccesses, fast.memAccesses * 10);
}

TEST(IntervalCore, UnpredictableBranchesRaiseCpi)
{
    TimingStats predictable =
        runTiming(timingSpec(KernelKind::Blocked, 1 << 20, 0.0));
    TimingStats noisy =
        runTiming(timingSpec(KernelKind::Blocked, 1 << 20, 0.9));
    EXPECT_GT(noisy.mispredictRate(),
              predictable.mispredictRate() + 0.1);
    EXPECT_GT(noisy.cpi(), predictable.cpi());
}

TEST(IntervalCore, WarmupExcludedFromStats)
{
    BenchmarkSpec spec =
        timingSpec(KernelKind::ZipfHotCold, 8 << 20);
    SyntheticWorkload wl(spec);
    IntervalCoreTool core(tableIIIMachine());
    Engine engine;
    engine.attach(&core);
    core.setWarmup(true);
    engine.run(wl, 0, 100);
    EXPECT_EQ(core.stats().instrs, 0u);
    core.setWarmup(false);
    engine.run(wl, 100, 100);
    EXPECT_EQ(core.stats().instrs, 100000u);
}

TEST(IntervalCore, ColdRestartRaisesCpiOnHotData)
{
    // A hot working set measured twice: continuing warm vs after a
    // cold restart.  Cold must not be faster.
    BenchmarkSpec spec =
        timingSpec(KernelKind::ZipfHotCold, 8 << 20);
    SyntheticWorkload wl(spec);

    IntervalCoreTool warm(tableIIIMachine());
    {
        Engine e;
        e.attach(&warm);
        warm.setWarmup(true);
        e.run(wl, 0, 100);
        warm.setWarmup(false);
        e.run(wl, 100, 50);
    }
    IntervalCoreTool cold(tableIIIMachine());
    {
        Engine e;
        e.attach(&cold);
        e.run(wl, 100, 50);
    }
    EXPECT_GE(cold.stats().cpi(), warm.stats().cpi());
}

TEST(MachineConfig, TableIIIDefaults)
{
    MachineConfig cfg = tableIIIMachine();
    EXPECT_EQ(cfg.dispatchWidth, 4u);
    EXPECT_EQ(cfg.robEntries, 168u);
    EXPECT_EQ(cfg.branchMispredictPenalty, 8u);
    EXPECT_EQ(cfg.l1LatencyCycles, 4u);
    EXPECT_EQ(cfg.l2LatencyCycles, 10u);
    EXPECT_EQ(cfg.l3LatencyCycles, 30u);
    EXPECT_EQ(cfg.caches.l3.sizeBytes, 8u << 20);
    std::string desc = describeMachine(cfg);
    EXPECT_NE(desc.find("i7-3770"), std::string::npos);
    EXPECT_NE(desc.find("168 entries"), std::string::npos);
}

TEST(MachineConfig, HashTracksChanges)
{
    MachineConfig a = tableIIIMachine();
    MachineConfig b = a;
    EXPECT_EQ(a.contentHash(), b.contentHash());
    b.robEntries = 256;
    EXPECT_NE(a.contentHash(), b.contentHash());
}

} // namespace
} // namespace splab
