/**
 * @file
 * The SamplingStrategy contracts: exact rational weight
 * normalization, registry round-trips, per-strategy selection
 * shape, determinism and thread-count invariance through the
 * artifact graph, Regions
 * artifact-key field sensitivity for every new knob, and cold/warm
 * byte-equality of the per-strategy node families.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>

#include "core/artifact_graph.hh"
#include "obs/counters.hh"
#include "sampling/strategies.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"

namespace splab
{
namespace
{

// Miniature workloads everywhere (see test_artifact_graph.cc).
[[maybe_unused]] const bool kScaleSet = [] {
    setenv("SPLAB_SCALE", "0.05", 1);
    return true;
}();

/** Smallest whole-run benchmark (fewest slices). */
const std::string kBench = "620.omnetpp_s";

ExperimentConfig
fastConfig()
{
    return ExperimentConfig::paperDefaults().withMaxK(6);
}

/** Deterministic two-phase synthetic BBV profile. */
std::vector<FrequencyVector>
synthBbvs(u64 n)
{
    std::vector<FrequencyVector> bbvs(n);
    for (u64 i = 0; i < n; ++i) {
        u32 phase = i < n / 2 ? 0 : 1;
        bbvs[i].entries = {
            {phase * 7u, 0.6f},
            {phase * 7u + 3u, 0.4f},
            {static_cast<u32>(i % 5) + 20u, 0.2f},
        };
    }
    return bbvs;
}

std::vector<u8>
selectionBytes(const RegionSelection &sel)
{
    ByteWriter w;
    serializeRegions(w, sel);
    return w.bytes();
}

std::vector<u8>
simpointBytes(const SimPointResult &r)
{
    ByteWriter w;
    serializeSimPoints(w, r);
    return w.bytes();
}

u64
keyOf(const ExperimentConfig &cfg, ArtifactKind kind)
{
    ArtifactGraph g(cfg, std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    return g.artifactKey(kBench, kind);
}

TEST(RegionNormalize, WeightsAreExactRationalReconstructions)
{
    RegionSelection sel;
    for (u64 c : {3ull, 5ull, 7ull, 85ull}) {
        Region r;
        r.count = c;
        sel.regions.push_back(r);
    }
    sel.normalize();

    // Every weight is the one correctly-rounded division count /
    // total, bit-for-bit — the same value any caller reconstructing
    // the rational independently arrives at (0 ulp).
    u64 total = sel.countTotal();
    ASSERT_EQ(total, 100u);
    double recon = 0.0;
    for (const Region &r : sel.regions) {
        double expect = static_cast<double>(r.count) /
                        static_cast<double>(total);
        EXPECT_EQ(r.weight, expect);
        recon += expect;
    }
    // The sum equals the reconstructed sum bit-for-bit; it is also
    // 1.0 up to the usual FP-summation slack.
    EXPECT_EQ(sel.totalWeight(), recon);
    EXPECT_NEAR(sel.totalWeight(), 1.0, 1e-12);
}

TEST(RegionNormalize, EqualCountsBitEqualOneOverN)
{
    // c / (n*c) and 1/n round the same real number, so equal-share
    // selections carry exactly the historical 1/n weights.
    RegionSelection sel;
    sel.regions.resize(3);
    for (Region &r : sel.regions)
        r.count = 10;
    sel.normalize();
    for (const Region &r : sel.regions)
        EXPECT_EQ(r.weight, 1.0 / 3.0);
}

TEST(StrategyRegistry, NamesRoundTripAndSaltsAreDistinct)
{
    ASSERT_EQ(strategyNames().size(), kNumStrategies);
    std::set<u64> salts;
    for (const std::string &name : strategyNames()) {
        StrategyKind k = strategyByName(name);
        EXPECT_STREQ(strategyName(k), name.c_str());
        salts.insert(strategySalt(k));
    }
    EXPECT_EQ(salts.size(), kNumStrategies);
}

TEST(StrategyRegistry, MakeStrategyBuildsEveryKind)
{
    SamplingConfig cfg;
    SimPointConfig sp;
    for (const std::string &name : strategyNames()) {
        auto strat = makeStrategy(name, cfg, sp);
        ASSERT_NE(strat, nullptr) << name;
        EXPECT_STREQ(strat->name(), name.c_str());
    }
}

TEST(StrategyRegistry, ActiveHashSaltedPerStrategy)
{
    // Identical knob structs under different active strategies must
    // produce distinct Regions config slices (strategy salt).
    SamplingConfig cfg;
    SimPointConfig sp;
    std::set<u64> hashes;
    for (const std::string &name : strategyNames()) {
        cfg.strategy = strategyByName(name);
        hashes.insert(cfg.activeHash(sp));
    }
    EXPECT_EQ(hashes.size(), kNumStrategies);
}

TEST(SmartsShape, SystematicUnitsWithWarmupPrescription)
{
    SmartsConfig cfg;
    cfg.k = 10;
    cfg.munit = 2;
    cfg.wunit = 3;
    StrategyInputs in{nullptr, 100, 10000};
    RegionSelection sel = SmartsStrategy(cfg).select(in);

    // 50 units of 2 slices, every 10th starting mid-interval
    // (offset k/2 = unit 5): starts 10, 30, 50, 70, 90.
    ASSERT_EQ(sel.regions.size(), 5u);
    for (std::size_t i = 0; i < sel.regions.size(); ++i) {
        const Region &r = sel.regions[i];
        EXPECT_EQ(r.startSlice, 10 + 20 * i);
        EXPECT_EQ(r.lengthSlices, 2u);
        EXPECT_EQ(r.count, 2u);
        EXPECT_EQ(r.warmupSlices, 3u); // wunit (start >= wunit)
        EXPECT_EQ(r.weight, 2.0 / 10.0);
    }
    EXPECT_EQ(sel.measuredSlices(), 10u);
    EXPECT_EQ(sel.pilotSlices, 0u);
}

TEST(SmartsShape, AllwarmCoversTheWholeGap)
{
    SmartsConfig cfg;
    cfg.k = 10;
    cfg.munit = 2;
    cfg.allwarm = true;
    StrategyInputs in{nullptr, 100, 10000};
    RegionSelection sel = SmartsStrategy(cfg).select(in);

    ASSERT_EQ(sel.regions.size(), 5u);
    // First region warms from the run start; the rest warm the full
    // gap since the previous measurement unit ended.
    EXPECT_EQ(sel.regions[0].warmupSlices, 10u);
    for (std::size_t i = 1; i < sel.regions.size(); ++i)
        EXPECT_EQ(sel.regions[i].warmupSlices, 18u);
    // Continuous warming => every slice up to the last unit's end is
    // either warmed or measured.
    EXPECT_EQ(sel.measuredSlices() + sel.warmupSlicesTotal(0), 92u);
}

TEST(StratifiedShape, PilotPassAndExactStratumCounts)
{
    const u64 n = 200;
    auto bbvs = synthBbvs(n);
    StratifiedConfig cfg;
    cfg.strata = 4;
    cfg.budget = 16;
    cfg.pilotStride = 4;
    StrategyInputs in{&bbvs, n, 10000};
    RegionSelection sel = StratifiedStrategy(cfg).select(in);

    // Phase 1 cost is charged: every 4th slice piloted.
    EXPECT_EQ(sel.pilotSlices, 50u);
    // Counts are exact span populations, so they partition the run.
    EXPECT_EQ(sel.countTotal(), n);
    EXPECT_LE(sel.regions.size(), 16u);
    EXPECT_GE(sel.regions.size(), 1u);
    for (const Region &r : sel.regions) {
        EXPECT_LT(r.startSlice, n);
        EXPECT_LT(r.cluster, cfg.strata);
        EXPECT_EQ(r.weight, static_cast<double>(r.count) /
                                static_cast<double>(n));
    }
    for (std::size_t i = 1; i < sel.regions.size(); ++i)
        EXPECT_LT(sel.regions[i - 1].startSlice,
                  sel.regions[i].startSlice);
    // The pilot pass lowers the reduction factor below the
    // measured-slices-only figure.
    EXPECT_LT(sel.reductionFactor(0),
              static_cast<double>(n) /
                  static_cast<double>(sel.measuredSlices()));
}

TEST(RankedSetShape, MultiplicityPoolsToExactTotal)
{
    const u64 n = 120;
    auto bbvs = synthBbvs(n);
    RankedSetConfig cfg;
    cfg.setSize = 3;
    cfg.cycles = 4;
    cfg.subsamples = 5;
    StrategyInputs in{&bbvs, n, 10000};
    RegionSelection sel = RankedSetStrategy(cfg).select(in);

    // B subsamples x m cycles x r rank positions, merged by
    // multiplicity: counts sum to exactly B*m*r.
    EXPECT_EQ(sel.countTotal(), 5u * 4u * 3u);
    u64 total = sel.countTotal();
    std::set<SliceIndex> seen;
    for (const Region &r : sel.regions) {
        EXPECT_TRUE(seen.insert(r.startSlice).second);
        EXPECT_LT(r.startSlice, n);
        EXPECT_LT(r.cluster, cfg.setSize);
        EXPECT_GE(r.count, 1u);
        EXPECT_EQ(r.weight, static_cast<double>(r.count) /
                                static_cast<double>(total));
    }
    for (std::size_t i = 1; i < sel.regions.size(); ++i)
        EXPECT_LT(sel.regions[i - 1].startSlice,
                  sel.regions[i].startSlice);

    // Deterministic in the seed; a different seed reshuffles.
    EXPECT_EQ(selectionBytes(sel),
              selectionBytes(RankedSetStrategy(cfg).select(in)));
    RankedSetConfig other = cfg;
    other.seed += 1;
    EXPECT_NE(selectionBytes(sel),
              selectionBytes(RankedSetStrategy(other).select(in)));
}

TEST(StrategyDeterminism, ThreadCountInvariantThroughTheGraph)
{
    for (const std::string &name : strategyNames()) {
        std::vector<std::vector<u8>> blobs;
        std::vector<std::map<std::string, u64>> counters;
        for (std::size_t threads : {1u, 2u, 8u}) {
            ThreadPool::setGlobalThreads(threads);
            obs::resetCounters();
            ArtifactGraph g(fastConfig().withStrategy(name),
                            std::make_shared<const ArtifactCache>(
                                ArtifactCache("")));
            blobs.push_back(selectionBytes(g.regions(kBench)));

            std::map<std::string, u64> sampStats;
            for (const auto &kv : obs::counterSnapshot())
                if (kv.first.rfind("sampling.", 0) == 0)
                    sampStats[kv.first] = kv.second;
            counters.push_back(sampStats);
        }
        ThreadPool::setGlobalThreads(0);

        ASSERT_FALSE(blobs[0].empty()) << name;
        EXPECT_EQ(blobs[0], blobs[1]) << name;
        EXPECT_EQ(blobs[0], blobs[2]) << name;
        EXPECT_EQ(counters[0], counters[1]) << name;
        EXPECT_EQ(counters[0], counters[2]) << name;
        // The per-strategy work counters accumulated.
        EXPECT_GE(counters[0].at("sampling." + name +
                                 ".regions_selected"),
                  1u);
    }
}

TEST(RegionArtifactKeys, StrategySwitchMovesTheKey)
{
    std::set<u64> keys;
    for (const std::string &name : strategyNames())
        keys.insert(keyOf(fastConfig().withStrategy(name),
                          ArtifactKind::Regions));
    EXPECT_EQ(keys.size(), kNumStrategies);
}

TEST(RegionArtifactKeys, ActiveKnobsKeyTheSelection)
{
    // Every new knob moves its own strategy's Regions key (and
    // cascades to the replays through the Merkle chain).
    struct Case
    {
        const char *strategy;
        void (*mutate)(ExperimentConfig &);
    };
    const std::vector<Case> cases = {
        {"smarts", [](ExperimentConfig &c) { c.sampling.smarts.k += 1; }},
        {"smarts",
         [](ExperimentConfig &c) { c.sampling.smarts.munit += 1; }},
        {"smarts",
         [](ExperimentConfig &c) { c.sampling.smarts.wunit += 1; }},
        {"smarts",
         [](ExperimentConfig &c) { c.sampling.smarts.allwarm = true; }},
        {"stratified",
         [](ExperimentConfig &c) { c.sampling.stratified.strata += 1; }},
        {"stratified",
         [](ExperimentConfig &c) { c.sampling.stratified.budget += 1; }},
        {"stratified",
         [](ExperimentConfig &c) {
             c.sampling.stratified.pilotStride += 1;
         }},
        {"stratified",
         [](ExperimentConfig &c) { c.sampling.stratified.seed += 1; }},
        {"ranked_set",
         [](ExperimentConfig &c) { c.sampling.rankedSet.setSize += 1; }},
        {"ranked_set",
         [](ExperimentConfig &c) { c.sampling.rankedSet.cycles += 1; }},
        {"ranked_set",
         [](ExperimentConfig &c) {
             c.sampling.rankedSet.subsamples += 1;
         }},
        {"ranked_set",
         [](ExperimentConfig &c) { c.sampling.rankedSet.seed += 1; }},
        {"random",
         [](ExperimentConfig &c) { c.sampling.random.n += 1; }},
        {"random",
         [](ExperimentConfig &c) { c.sampling.random.seed += 1; }},
        {"stride",
         [](ExperimentConfig &c) { c.sampling.stride.n += 1; }},
        {"simpoint", [](ExperimentConfig &c) { c.simpoint.maxK += 1; }},
    };
    for (std::size_t i = 0; i < cases.size(); ++i) {
        ExperimentConfig base =
            fastConfig().withStrategy(cases[i].strategy);
        ExperimentConfig turned = base;
        cases[i].mutate(turned);
        EXPECT_NE(keyOf(base, ArtifactKind::Regions),
                  keyOf(turned, ArtifactKind::Regions))
            << "case " << i;
        EXPECT_NE(keyOf(base, ArtifactKind::RegionalPinball),
                  keyOf(turned, ArtifactKind::RegionalPinball))
            << "case " << i;
        EXPECT_NE(keyOf(base, ArtifactKind::PointsCacheCold),
                  keyOf(turned, ArtifactKind::PointsCacheCold))
            << "case " << i;
    }
}

TEST(RegionArtifactKeys, InactiveKnobsDoNotMoveAnyKey)
{
    // An inactive strategy's knob must not invalidate any cached
    // artifact: the active slice hashes only what select() reads.
    ExperimentConfig base = fastConfig().withStrategy("smarts");
    ExperimentConfig turned = base;
    turned.sampling.stratified.strata += 3;
    turned.sampling.rankedSet.subsamples += 2;
    turned.sampling.random.seed += 1;
    turned.sampling.stride.n += 5;
    turned.simpoint.maxK += 1; // simpoint knobs inactive under smarts
    for (std::size_t k = 0; k < kNumArtifactKinds; ++k) {
        ArtifactKind kind = static_cast<ArtifactKind>(k);
        if (kind == ArtifactKind::SimPoints)
            continue; // keyed by its own (unchanged-path) config
        EXPECT_EQ(keyOf(base, kind), keyOf(turned, kind))
            << artifactKindName(kind);
    }
    // ...except SimPoints itself, whose own slice saw maxK move.
    EXPECT_NE(keyOf(base, ArtifactKind::SimPoints),
              keyOf(turned, ArtifactKind::SimPoints));
}

TEST(RegionArtifactKeys, CacheConfigDoesNotKeySelections)
{
    ExperimentConfig base = fastConfig().withStrategy("smarts");
    ExperimentConfig bigger = base;
    bigger.allcache.l1d.sizeBytes *= 2;
    EXPECT_EQ(keyOf(base, ArtifactKind::Regions),
              keyOf(bigger, ArtifactKind::Regions));
    EXPECT_EQ(keyOf(base, ArtifactKind::RegionalPinball),
              keyOf(bigger, ArtifactKind::RegionalPinball));
    EXPECT_NE(keyOf(base, ArtifactKind::PointsCacheCold),
              keyOf(bigger, ArtifactKind::PointsCacheCold));
}

TEST(RegionColdWarm, EveryStrategyByteEqualFromItsOwnFamily)
{
    std::string dir = testing::TempDir() + "/splab-sampling-cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    for (const std::string &name : strategyNames()) {
        ExperimentConfig cfg = fastConfig().withStrategy(name);
        ArtifactGraph cold(cfg,
                           std::make_shared<const ArtifactCache>(
                               ArtifactCache(dir)));
        std::vector<u8> coldBytes =
            selectionBytes(cold.regions(kBench));

        obs::resetCounters();
        ArtifactGraph warm(cfg,
                           std::make_shared<const ArtifactCache>(
                               ArtifactCache(dir)));
        std::vector<u8> warmBytes =
            selectionBytes(warm.regions(kBench));

        EXPECT_EQ(coldBytes, warmBytes) << name;
        auto stats = obs::counterSnapshot();
        EXPECT_EQ(stats.at("graph.cache_hits"), 1u) << name;
        // Warm selections come from the strategy's own blob family
        // (flat "<family>-<key>.bin" layout); no re-selection
        // (counters stay registered process-wide, so check the
        // value, not the presence).
        bool familyOnDisk = false;
        for (const auto &e :
             std::filesystem::directory_iterator(dir))
            if (e.path().filename().string().rfind(
                    "regions_" + name + "-", 0) == 0)
                familyOnDisk = true;
        EXPECT_TRUE(familyOnDisk) << name;
        auto it = stats.find("sampling." + name +
                             ".regions_selected");
        EXPECT_EQ(it == stats.end() ? 0u : it->second, 0u) << name;
    }
}

TEST(RegionalPinballWarmup, PrescriptionCarriesThroughCapture)
{
    ExperimentConfig cfg = fastConfig().withStrategy("smarts");
    cfg.sampling.smarts.wunit = 2;
    ArtifactGraph g(cfg, std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    const Pinball &pin = g.regionalPinball(kBench);
    const RegionSelection &sel = g.regions(kBench);
    const BenchmarkSpec &spec = g.spec(kBench);
    u64 sliceChunks = cfg.simpoint.sliceInstrs / spec.chunkLen;

    ASSERT_EQ(pin.regions().size(), sel.regions.size());
    for (std::size_t i = 0; i < sel.regions.size(); ++i) {
        const RegionDesc &rd = pin.regions()[i];
        const Region &r = sel.regions[i];
        EXPECT_EQ(rd.firstChunk, r.startSlice * sliceChunks);
        EXPECT_EQ(rd.numChunks, r.lengthSlices * sliceChunks);
        EXPECT_EQ(rd.warmupChunks,
                  std::min<u64>(r.warmupSlices * sliceChunks,
                                rd.firstChunk));
        EXPECT_EQ(rd.weight, r.weight);
    }
    // SMARTS prescribes warm-up for every region past the run start.
    for (const RegionDesc &rd : pin.regions()) {
        if (rd.firstChunk > 0) {
            EXPECT_GT(rd.warmupChunks, 0u);
        }
    }
}

TEST(SimpointProjection, RegionsMatchSimPointSelection)
{
    // The simpoint strategy's Regions node is a projection of the
    // SimPoints node: same slices, clusters and verbatim weights.
    ArtifactGraph g(fastConfig(),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache("")));
    const SimPointResult &sp = g.simpoints(kBench);
    const RegionSelection &sel = g.regions(kBench);
    ASSERT_EQ(sel.regions.size(), sp.points.size());
    for (std::size_t i = 0; i < sp.points.size(); ++i) {
        EXPECT_EQ(sel.regions[i].startSlice, sp.points[i].slice);
        EXPECT_EQ(sel.regions[i].count, sp.points[i].clusterSize);
        EXPECT_EQ(sel.regions[i].weight, sp.points[i].weight);
        EXPECT_EQ(sel.regions[i].cluster, sp.points[i].cluster);
        EXPECT_EQ(sel.regions[i].lengthSlices, 1u);
        EXPECT_EQ(sel.regions[i].warmupSlices, 0u);
    }
    EXPECT_EQ(sel.totalSlices, sp.totalSlices);
    EXPECT_EQ(sel.sliceInstrs, sp.sliceInstrs);
}

} // namespace
} // namespace splab
