/**
 * @file
 * CI smoke check for the pluggable sampling strategies: runs the
 * strategy-comparison bench (argv[1]) twice against one fresh
 * artifact-cache directory — cold, then warm — and verifies that
 *
 *  - the comparison CSV carries the stable schema
 *    (strategy,benchmark,regions,reduction_factor,mix_err,l1d_err,
 *    l3_err,cpi_err),
 *  - every registered strategy produced rows,
 *  - the warm run is byte-identical to the cold run and was served
 *    from the per-strategy blob families (fewer nodes computed,
 *    more cache hits than cold — the cold run itself legitimately
 *    hits the cache, since all six strategy graphs share one
 *    whole-run reference through the same cache handle).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace
{

int failures = 0;

void
check(bool ok, const std::string &what)
{
    if (!ok) {
        std::fprintf(stderr, "smoke_strategies: FAIL: %s\n",
                     what.c_str());
        ++failures;
    }
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** counters.<name> as a u64, or 0 when absent. */
splab::u64
counterOf(const splab::obs::JsonValue &manifest, const char *name)
{
    const splab::obs::JsonValue *counters = manifest.find("counters");
    if (!counters)
        return 0;
    const splab::obs::JsonValue *c = counters->find(name);
    return c ? c->asU64() : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: smoke_strategies <strategy-bench>\n");
        return 2;
    }
    std::string bin = argv[1];
    std::string cacheDir = bin + ".smoke-cache";
    std::filesystem::remove_all(cacheDir);
    std::filesystem::create_directories(cacheDir);

    std::string cmd = "SPLAB_MANIFEST=1 SPLAB_CACHE=\"" + cacheDir +
                      "\" SPLAB_LOG=0 SPLAB_SCALE=0.05 "
                      "SPLAB_THREADS=4 \"" +
                      bin + "\" > /dev/null";

    check(std::system(cmd.c_str()) == 0,
          "cold bench run exited non-zero");
    std::string coldCsv = slurp(bin + ".csv");
    std::string coldMani = slurp(bin + ".manifest.json");

    check(std::system(cmd.c_str()) == 0,
          "warm bench run exited non-zero");
    std::string warmCsv = slurp(bin + ".csv");
    std::string warmMani = slurp(bin + ".manifest.json");

    check(!coldCsv.empty(), "cold CSV missing or empty");
    check(coldCsv == warmCsv,
          "warm-cache CSV differs from cold-cache CSV");

    // Schema: the stable header the comparison table promises.
    const std::string header = "strategy,benchmark,regions,"
                               "reduction_factor,mix_err,l1d_err,"
                               "l3_err,cpi_err";
    check(coldCsv.rfind(header + "\n", 0) == 0,
          "comparison CSV header is not the stable schema");

    // Every registered strategy reported rows.
    const std::vector<std::string> strategies = {
        "simpoint", "smarts",  "stratified",
        "ranked_set", "random", "stride"};
    for (const std::string &s : strategies)
        check(coldCsv.find("\n" + s + ",") != std::string::npos,
              "no CSV rows for strategy " + s);

    // Every per-strategy blob family landed on disk (flat
    // "<family>-<key>.bin" cache layout).
    for (const std::string &s : strategies) {
        bool onDisk = false;
        for (const auto &e :
             std::filesystem::directory_iterator(cacheDir))
            if (e.path().filename().string().rfind(
                    "regions_" + s + "-", 0) == 0)
                onDisk = true;
        check(onDisk, "missing blob family regions_" + s);
    }
    std::filesystem::remove_all(cacheDir);

    using splab::obs::parseJson;
    auto cold = parseJson(coldMani);
    auto warm = parseJson(warmMani);
    check(cold.has_value(), "cold manifest does not parse");
    check(warm.has_value(), "warm manifest does not parse");
    if (cold && warm) {
        check(counterOf(*warm, "graph.cache_hits") >
                  counterOf(*cold, "graph.cache_hits"),
              "warm run did not hit the cache more than cold");
        check(counterOf(*warm, "graph.nodes_computed") <
                  counterOf(*cold, "graph.nodes_computed"),
              "warm run recomputed as much as the cold run");
        // The per-strategy selection counters are part of the
        // observable surface: each strategy accounted its regions
        // in the cold run.
        for (const std::string &s : strategies)
            check(counterOf(*cold, ("sampling." + s +
                                    ".regions_selected")
                                       .c_str()) > 0,
                  "cold run missing sampling." + s +
                      ".regions_selected");
    }

    if (failures == 0)
        std::printf("smoke_strategies: OK (%s)\n", bin.c_str());
    return failures == 0 ? 0 : 1;
}
