/**
 * @file
 * Tests for the SPEC CPU2017 suite model: Table II encoding, weight
 * design and generated benchmark structure.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "workload/suite.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

TEST(SuiteTable, HasTheTwentyNineBenchmarksOfTableII)
{
    const auto &table = suiteTable();
    EXPECT_EQ(table.size(), 29u);
    std::set<std::string> names;
    for (const auto &e : table)
        names.insert(e.name);
    EXPECT_EQ(names.size(), 29u);
    EXPECT_TRUE(names.count("623.xalancbmk_s"));
    EXPECT_TRUE(names.count("503.bwaves_r"));
    EXPECT_TRUE(names.count("500.perlbench_r"));
}

TEST(SuiteTable, TableIIAveragesMatchPaper)
{
    // Paper Table II: averages 19.75 simulation points and 11.31
    // 90th-percentile points (rounded to 2 decimals over 29 rows...
    // the paper prints the column means).
    double sp = 0.0, p90 = 0.0;
    for (const auto &e : suiteTable()) {
        sp += e.simPoints;
        p90 += e.points90;
    }
    sp /= suiteTable().size();
    p90 /= suiteTable().size();
    EXPECT_NEAR(sp, 19.75, 0.5);
    EXPECT_NEAR(p90, 11.31, 0.5);
}

TEST(SuiteTable, PaperRowsSpotCheck)
{
    EXPECT_EQ(suiteEntry("623.xalancbmk_s").simPoints, 25);
    EXPECT_EQ(suiteEntry("623.xalancbmk_s").points90, 19);
    EXPECT_EQ(suiteEntry("620.omnetpp_s").simPoints, 3);
    EXPECT_EQ(suiteEntry("620.omnetpp_s").points90, 2);
    EXPECT_EQ(suiteEntry("503.bwaves_r").simPoints, 26);
    EXPECT_EQ(suiteEntry("503.bwaves_r").points90, 7);
}

TEST(SuiteTable, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH((void)suiteEntry("999.bogus_r"),
                 "unknown benchmark");
}

TEST(DesignWeights, HitsTheTargetCoverageCount)
{
    struct Case
    {
        int n, m90;
    };
    for (Case c : {Case{26, 7}, Case{25, 4}, Case{12, 10},
                   Case{23, 19}, Case{18, 11}, Case{15, 5},
                   Case{3, 2}, Case{21, 16}}) {
        auto w = designWeights(c.n, c.m90);
        ASSERT_EQ(static_cast<int>(w.size()), c.n);
        EXPECT_EQ(coverageCount(w, 0.9), c.m90)
            << "n=" << c.n << " m90=" << c.m90;
        double sum = 0.0;
        for (double x : w) {
            EXPECT_GT(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(DesignWeights, EveryTableIIRowIsRealizable)
{
    for (const auto &e : suiteTable()) {
        if (std::string(e.name) == "503.bwaves_r")
            continue; // custom profile
        auto w = designWeights(e.simPoints, e.points90);
        EXPECT_EQ(coverageCount(w, 0.9), e.points90) << e.name;
    }
}

TEST(CoverageCount, BasicBehaviour)
{
    EXPECT_EQ(coverageCount({0.6, 0.3, 0.1}, 0.9), 2);
    EXPECT_EQ(coverageCount({0.25, 0.25, 0.25, 0.25}, 0.9), 4);
    EXPECT_EQ(coverageCount({1.0}, 0.9), 1);
    // Order independence.
    EXPECT_EQ(coverageCount({0.1, 0.6, 0.3}, 0.9), 2);
}

TEST(MakeBenchmark, StructureMatchesEntry)
{
    const SuiteEntry &e = suiteEntry("623.xalancbmk_s");
    BenchmarkSpec spec = makeBenchmark(e);
    EXPECT_EQ(spec.name, "623.xalancbmk_s");
    EXPECT_EQ(static_cast<int>(spec.phases.size()), e.simPoints);
    EXPECT_EQ(spec.totalChunks, e.slices * 10);
    double sum = 0.0;
    for (const auto &p : spec.phases)
        sum += p.weight;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MakeBenchmark, DeterministicAcrossCalls)
{
    BenchmarkSpec a = benchmarkByName("505.mcf_r");
    BenchmarkSpec b = benchmarkByName("505.mcf_r");
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(MakeBenchmark, DistinctBenchmarksDiffer)
{
    EXPECT_NE(benchmarkByName("505.mcf_r").contentHash(),
              benchmarkByName("605.mcf_s").contentHash());
}

TEST(MakeBenchmark, BwavesHasDominantPhase)
{
    BenchmarkSpec spec = benchmarkByName("503.bwaves_r");
    double maxW = 0.0, top3 = 0.0;
    std::vector<double> ws;
    for (const auto &p : spec.phases)
        ws.push_back(p.weight);
    std::sort(ws.begin(), ws.end(), std::greater<>());
    maxW = ws[0];
    top3 = ws[0] + ws[1] + ws[2];
    // Section IV-C: one point ~60%, top three ~80%.
    EXPECT_NEAR(maxW, 0.60, 0.02);
    EXPECT_NEAR(top3, 0.80, 0.02);
}

TEST(MakeBenchmark, DomainsShapeTheMix)
{
    // FP benchmarks carry meaningful FP fractions; INT ones do not.
    BenchmarkSpec fp = benchmarkByName("519.lbm_r");
    BenchmarkSpec intb = benchmarkByName("541.leela_r");
    double fpShare = 0.0, intShare = 0.0;
    for (const auto &p : fp.phases)
        fpShare += p.fpFraction;
    for (const auto &p : intb.phases)
        intShare += p.fpFraction;
    fpShare /= fp.phases.size();
    intShare /= intb.phases.size();
    EXPECT_GT(fpShare, 0.3);
    EXPECT_LT(intShare, 0.12);
}

TEST(MakeBenchmark, SpecsAreExecutable)
{
    // Construct + run a short window of every suite benchmark.
    for (const auto &e : suiteTable()) {
        BenchmarkSpec spec = makeBenchmark(e);
        SyntheticWorkload wl(spec);
        class NullSink : public EventSink
        {
          public:
            void
            onBlock(const BlockRecord &r, const MemAccess *,
                    std::size_t, const BranchRecord *) override
            {
                instrs += r.instrs;
            }
            ICount instrs = 0;
        } sink;
        wl.run(0, 20, sink, true);
        EXPECT_EQ(sink.instrs, 20u * spec.chunkLen) << e.name;
    }
}

TEST(Spec2017Suite, ReturnsAllSpecsInOrder)
{
    auto suite = spec2017Suite();
    ASSERT_EQ(suite.size(), suiteTable().size());
    for (std::size_t i = 0; i < suite.size(); ++i)
        EXPECT_EQ(suite[i].name, suiteTable()[i].name);
}

} // namespace
} // namespace splab
