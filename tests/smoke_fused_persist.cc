/**
 * @file
 * CI smoke check for persisted fused-run blobs: runs a bench binary
 * (argv[1]) whose targets are the whole-run projections twice against
 * one fresh artifact-cache directory — cold, then warm — and verifies
 * that
 *
 *   - the cold run stored the fused measurement via blob sharing
 *     (artifact_cache.blob_share_hits > 0: the projections deduped
 *     against the fused node's sub-blobs),
 *   - the warm run performed NO fused traversal at all
 *     (pin.windows == 0 and pin.chunks_replayed == 0 — every
 *     whole-run view came back from disk),
 *   - and both runs emitted byte-identical CSVs and identical
 *     deterministic manifest sections.
 *
 * Counters outside the ones asserted are NOT compared: cache_hits vs
 * nodes_computed legitimately differ between the two runs.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "obs/json.hh"

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "smoke_fused_persist: FAIL: %s\n", what);
        ++failures;
    }
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** render() of one manifest section, or "" when absent. */
std::string
section(const splab::obs::JsonValue &manifest, const char *key)
{
    const splab::obs::JsonValue *v = manifest.find(key);
    return v ? v->render() : std::string();
}

/** counters.<name> as a u64, or 0 when absent. */
splab::u64
counterOf(const splab::obs::JsonValue &manifest, const char *name)
{
    const splab::obs::JsonValue *counters = manifest.find("counters");
    if (!counters)
        return 0;
    const splab::obs::JsonValue *c = counters->find(name);
    return c ? c->asU64() : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: smoke_fused_persist <bench-binary>\n");
        return 2;
    }
    std::string bin = argv[1];
    std::string cacheDir = bin + ".smoke-fused-cache";
    std::filesystem::remove_all(cacheDir);
    std::filesystem::create_directories(cacheDir);

    std::string cmd = "SPLAB_MANIFEST=1 SPLAB_CACHE=\"" + cacheDir +
                      "\" SPLAB_LOG=0 SPLAB_SCALE=0.05 "
                      "SPLAB_THREADS=4 \"" +
                      bin + "\" > /dev/null";

    check(std::system(cmd.c_str()) == 0,
          "cold bench run exited non-zero");
    std::string coldCsv = slurp(bin + ".csv");
    std::string coldMani = slurp(bin + ".manifest.json");

    check(std::system(cmd.c_str()) == 0,
          "warm bench run exited non-zero");
    std::string warmCsv = slurp(bin + ".csv");
    std::string warmMani = slurp(bin + ".manifest.json");
    std::filesystem::remove_all(cacheDir);

    check(!coldCsv.empty(), "cold CSV missing or empty");
    check(coldCsv == warmCsv,
          "warm-cache CSV differs from cold-cache CSV");

    using splab::obs::parseJson;
    auto cold = parseJson(coldMani);
    auto warm = parseJson(warmMani);
    check(cold.has_value(), "cold manifest does not parse");
    check(warm.has_value(), "warm manifest does not parse");
    if (cold && warm) {
        for (const char *key : {"config", "artifacts", "outputs"}) {
            check(!section(*cold, key).empty(),
                  "manifest section missing");
            check(section(*cold, key) == section(*warm, key),
                  "deterministic manifest section differs across "
                  "cache states");
        }
        check(counterOf(*cold, "pin.windows") > 0,
              "cold run never ran the fused traversal");
        check(counterOf(*cold, "artifact_cache.blob_share_hits") > 0,
              "cold run never deduped a projection against the fused "
              "sub-blobs");
        check(counterOf(*warm, "pin.windows") == 0,
              "warm run re-ran an instrumented window despite "
              "persisted fused blobs");
        check(counterOf(*warm, "pin.chunks_replayed") == 0,
              "warm run replayed workload chunks despite persisted "
              "fused blobs");
        check(counterOf(*warm, "graph.shared_blob_fallbacks") == 0,
              "warm run fell back past a shared sub-blob");
        check(counterOf(*warm, "graph.cache_hits") > 0,
              "warm run never hit the artifact cache");
    }

    if (failures == 0)
        std::printf("smoke_fused_persist: OK (%s)\n", bin.c_str());
    return failures == 0 ? 0 : 1;
}
