/**
 * @file
 * The parallel chunk-generation pipeline and the SIMD accumulate
 * kernels: both are pure performance changes, so every test here is
 * an equality test — pipeline on vs off, thread count vs thread
 * count, SIMD vs scalar — on the exact bytes tools observe.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "core/runs.hh"
#include "isa/accumulate.hh"
#include "isa/events.hh"
#include "obs/counters.hh"
#include "pin/engine.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

BenchmarkSpec
pipeSpec(u64 chunks = 400)
{
    BenchmarkSpec spec;
    spec.name = "genpipe-test";
    spec.seed = 1234;
    spec.totalChunks = chunks;
    spec.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.6;
    a.kernel = KernelKind::Stream;
    a.workingSetBytes = 4 << 20;
    PhaseSpec b;
    b.weight = 0.4;
    b.kernel = KernelKind::PointerChase;
    b.workingSetBytes = 1 << 20;
    spec.phases = {a, b};
    spec.schedule = ScheduleKind::Interleaved;
    spec.dwellChunks = 25;
    return spec;
}

/** Serialize a batch's full event content plus its aggregates. */
void
putBatch(ByteWriter &w, const EventBatch &batch)
{
    w.put<u64>(batch.numBlocks());
    for (std::size_t i = 0; i < batch.numBlocks(); ++i) {
        const BlockRecord &rec = batch.block(i);
        w.put<u32>(rec.bb);
        w.put<u64>(rec.pc);
        w.put<u32>(rec.instrs);
        for (ICount c : rec.mix.count)
            w.put<u64>(c);
        w.put<u32>(rec.fpInstrs);
        w.put<u8>(rec.endsInBranch ? 1 : 0);
        w.put<u64>(batch.accCount(i));
        const MemAccess *accs = batch.accs(i);
        for (std::size_t k = 0; k < batch.accCount(i); ++k) {
            w.put<u64>(accs[k].addr);
            w.put<u8>(accs[k].size);
            w.put<u8>(accs[k].isWrite ? 1 : 0);
        }
        const BranchRecord *br = batch.branch(i);
        w.put<u8>(br ? 1 : 0);
        if (br) {
            w.put<u64>(br->pc);
            w.put<u8>(br->taken ? 1 : 0);
            w.put<u8>(br->dataDependent ? 1 : 0);
        }
    }
    // Aggregates, exactly as chunk-grained tools consume them.
    w.put<u64>(batch.instrs());
    for (ICount c : batch.mixTotal().count)
        w.put<u64>(c);
    w.put<u64>(batch.fpTotal());
    w.put<u64>(batch.branchTotal());
    w.put<u64>(batch.takenTotal());
    w.put<u64>(batch.dataDependentTotal());
    w.put<u64>(batch.touchedBlocks().size());
    for (u32 bb : batch.touchedBlocks()) {
        w.put<u32>(bb);
        w.put<u64>(batch.blockInstrSum(bb));
    }
}

/** EventSink capturing each delivered chunk as comparable bytes. */
class ChunkCapture : public EventSink
{
  public:
    void
    onBlock(const BlockRecord &, const MemAccess *, std::size_t,
            const BranchRecord *) override
    {
        FAIL() << "batched delivery expected";
    }

    void
    onBatch(const EventBatch &batch) override
    {
        ByteWriter w;
        putBatch(w, batch);
        chunks.push_back(w.bytes());
    }

    std::vector<std::vector<u8>> chunks;
};

TEST(GenPipeline, GenContextMatchesSerialRunAnyOrder)
{
    // A GenContext must emit, for any chunk in any generation order,
    // the identical bytes the serial forward run() delivers — the
    // property that lets producers generate out of order.
    BenchmarkSpec spec = pipeSpec(120);
    SyntheticWorkload serial(spec);
    ChunkCapture capture;
    serial.run(0, spec.totalChunks, capture, true);
    ASSERT_EQ(capture.chunks.size(), spec.totalChunks);

    SyntheticWorkload parallel(spec);
    GenContext ctx(parallel);
    EventBatch batch;
    // Adversarial order: back to front, so every chunk is generated
    // with "wrong" predecessor state if any state leaked.
    for (u64 c = spec.totalChunks; c-- > 0;) {
        ctx.generateChunk(c, batch, true);
        ByteWriter w;
        putBatch(w, batch);
        EXPECT_EQ(w.bytes(), capture.chunks[c]) << "chunk " << c;
    }
}

/** Fused whole-run results as comparable bytes (wall time excluded,
 *  BBVs included). */
std::vector<u8>
fusedBytes(const FusedWholeResult &r)
{
    ByteWriter w;
    w.put<u64>(r.cache.instrs);
    for (double f : r.cache.mixFrac)
        w.put<double>(f);
    for (const LevelCounts *lc :
         {&r.cache.l1i, &r.cache.l1d, &r.cache.l2, &r.cache.l3}) {
        w.put<u64>(lc->accesses);
        w.put<u64>(lc->misses);
    }
    w.put<u64>(r.cache.branches);
    w.put<u64>(r.timing.instrs);
    w.put<double>(r.timing.cycles);
    w.put<u64>(r.timing.branches);
    w.put<u64>(r.timing.mispredicts);
    w.put<u64>(r.timing.l2Hits);
    w.put<u64>(r.timing.l3Hits);
    w.put<u64>(r.timing.memAccesses);
    w.put<u64>(r.bbvs.size());
    for (const FrequencyVector &fv : r.bbvs) {
        w.put<u64>(fv.entries.size());
        for (const BbvEntry &e : fv.entries) {
            w.put<u32>(e.block);
            w.put<float>(e.weight);
        }
    }
    return w.bytes();
}

/** RAII env toggle restoring the variable on scope exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *n, const char *v) : name(n)
    {
        const char *old = std::getenv(n);
        had = old != nullptr;
        if (had)
            saved = old;
        setenv(n, v, 1);
    }
    ~EnvGuard()
    {
        if (had)
            setenv(name, saved.c_str(), 1);
        else
            unsetenv(name);
    }

  private:
    const char *name;
    bool had = false;
    std::string saved;
};

TEST(GenPipeline, PipelineOffOnByteEquality)
{
    // The pipeline is a pure scheduling change: with the pool sized
    // so it engages, SPLAB_GEN_PIPELINE=0 and =1 must produce
    // byte-identical cache, timing and BBV results.
    BenchmarkSpec spec = pipeSpec(300);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    const ICount slice = 5 * spec.chunkLen;

    ThreadPool::setGlobalThreads(4);
    std::vector<u8> off, on;
    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "0");
        off = fusedBytes(measureWholeFused(spec, caches, machine,
                                           slice));
    }
    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "1");
        on = fusedBytes(measureWholeFused(spec, caches, machine,
                                          slice));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(off, on);
}

TEST(GenPipeline, ThreadCountInvariantWithPipelineForcedOn)
{
    // With the pipeline explicitly enabled, the fused pass must stay
    // byte-identical across SPLAB_THREADS = 1 (serial fallback), 2
    // (one producer) and 8 (many producers racing the window).
    BenchmarkSpec spec = pipeSpec(250);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    EnvGuard g("SPLAB_GEN_PIPELINE", "1");

    std::vector<std::vector<u8>> blobs;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        blobs.push_back(fusedBytes(
            measureWholeFused(spec, caches, machine,
                              6 * spec.chunkLen)));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(blobs[0].empty());
    EXPECT_EQ(blobs[0], blobs[1]);
    EXPECT_EQ(blobs[0], blobs[2]);
}

TEST(GenPipeline, SliverSliceBoundaryUnderReorderedCompletion)
{
    // The end-of-run sliver slice must come out identical when
    // chunks complete out of order in the pipeline: 101 chunks of
    // 1000 instrs in 2000-instr slices -> 50 full slices plus an
    // exactly-half-full sliver, which the BBV tool keeps (it drops
    // slivers under half).  The sliver's chunk is the last one
    // generated but may be far from the last one *completed*.
    BenchmarkSpec spec = pipeSpec(101);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    const ICount slice = 2 * spec.chunkLen;

    ThreadPool::setGlobalThreads(8);
    std::vector<u8> off, on;
    std::size_t nSlices = 0;
    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "0");
        FusedWholeResult r =
            measureWholeFused(spec, caches, machine, slice);
        nSlices = r.bbvs.size();
        off = fusedBytes(r);
    }
    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "1");
        on = fusedBytes(measureWholeFused(spec, caches, machine,
                                          slice));
    }
    ThreadPool::setGlobalThreads(0);
    EXPECT_EQ(nSlices, 51u) << "50 full slices + kept sliver";
    EXPECT_EQ(off, on);
}

TEST(GenPipeline, GaugesRecordPipelineHealth)
{
    // A pipelined run must leave the genpipe gauges populated (they
    // are gauges, not counters: stall counts depend on scheduling
    // and may not perturb the deterministic manifest section).
    BenchmarkSpec spec = pipeSpec(60);
    EnvGuard g("SPLAB_GEN_PIPELINE", "1");
    ThreadPool::setGlobalThreads(4);
    SyntheticWorkload wl(spec);
    Engine engine; // no tools: generation + ordered delivery only
    engine.runWhole(wl);
    ThreadPool::setGlobalThreads(0);

    auto gauges = obs::gaugeSnapshot();
    ASSERT_TRUE(gauges.count("genpipe.runs"));
    EXPECT_GE(gauges["genpipe.runs"], 1u);
    ASSERT_TRUE(gauges.count("genpipe.window"));
    EXPECT_GE(gauges["genpipe.window"], 4u);
    ASSERT_TRUE(gauges.count("genpipe.peak_arena_bytes"));
    EXPECT_GT(gauges["genpipe.peak_arena_bytes"], 0u);
    EXPECT_TRUE(gauges.count("genpipe.producer_stalls"));
    EXPECT_TRUE(gauges.count("genpipe.consumer_stalls"));
}

/** Random event arrays shaped like a generated chunk. */
struct RandomBatchArrays
{
    std::vector<BlockRecord> recs;
    std::vector<u8> valid, taken, dataDep;
};

RandomBatchArrays
randomArrays(std::size_t n, u64 seed)
{
    RandomBatchArrays a;
    std::mt19937_64 rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
        BlockRecord r;
        r.bb = static_cast<u32>(rng() % 500);
        r.pc = rng();
        r.instrs = 1 + static_cast<u32>(rng() % 40);
        for (std::size_t m = 0; m < r.mix.count.size(); ++m)
            r.mix.count[m] = rng() % 17;
        r.fpInstrs = static_cast<u32>(rng() % 9);
        bool hasBr = (rng() & 1) != 0;
        r.endsInBranch = hasBr;
        a.recs.push_back(r);
        a.valid.push_back(hasBr ? 1 : 0);
        a.taken.push_back(hasBr && (rng() & 1) ? 1 : 0);
        a.dataDep.push_back(hasBr && (rng() & 1) ? 1 : 0);
    }
    return a;
}

TEST(SimdAccumulate, MatchesScalarAtEveryLength)
{
    // Vector widths, tails, empty input: the SIMD kernels must be
    // bit-equal to the scalar reference at every length.
    for (std::size_t n : {0u, 1u, 2u, 7u, 15u, 16u, 17u, 333u, 4096u}) {
        RandomBatchArrays a = randomArrays(n, 77 + n);
        BatchAggregates s = accumulateScalar(
            a.recs.data(), n, a.valid.data(), a.taken.data(),
            a.dataDep.data());
        BatchAggregates v = accumulateSimd(
            a.recs.data(), n, a.valid.data(), a.taken.data(),
            a.dataDep.data());
        EXPECT_TRUE(s == v) << "n=" << n;
        EXPECT_EQ(sumBytesScalar(a.valid.data(), n),
                  sumBytesSimd(a.valid.data(), n))
            << "n=" << n;
    }
}

TEST(SimdAccumulate, EnvForcesScalarPath)
{
    RandomBatchArrays a = randomArrays(1000, 5);
    BatchAggregates ref = accumulateScalar(
        a.recs.data(), a.recs.size(), a.valid.data(),
        a.taken.data(), a.dataDep.data());
    EnvGuard g("SPLAB_SIMD", "0");
    EXPECT_FALSE(simdAccumulateEnabled());
    BatchAggregates got = accumulateBatch(
        a.recs.data(), a.recs.size(), a.valid.data(),
        a.taken.data(), a.dataDep.data());
    EXPECT_TRUE(ref == got);
}

TEST(SimdAccumulate, BatchAggregatesMatchPerBlockReduction)
{
    // End to end through EventBatch: lazy finalized aggregates ==
    // a straightforward per-block reduction over the same batch,
    // including after a clear()-refill reuse cycle.
    BenchmarkSpec spec = pipeSpec(40);
    SyntheticWorkload wl(spec);
    GenContext ctx(wl);
    EventBatch batch;
    for (u64 c : {0ull, 17ull, 39ull}) {
        ctx.generateChunk(c, batch, true);
        ICount instrs = 0, fp = 0;
        u64 branches = 0, takenN = 0, dataDepN = 0;
        InstrMix mix;
        for (std::size_t i = 0; i < batch.numBlocks(); ++i) {
            const BlockRecord &rec = batch.block(i);
            instrs += rec.instrs;
            fp += rec.fpInstrs;
            for (std::size_t m = 0; m < mix.count.size(); ++m)
                mix.count[m] += rec.mix.count[m];
            if (const BranchRecord *br = batch.branch(i)) {
                ++branches;
                takenN += br->taken ? 1 : 0;
                dataDepN += br->dataDependent ? 1 : 0;
            }
        }
        EXPECT_EQ(batch.instrs(), instrs) << "chunk " << c;
        EXPECT_EQ(batch.fpTotal(), fp);
        EXPECT_EQ(batch.branchTotal(), branches);
        EXPECT_EQ(batch.takenTotal(), takenN);
        EXPECT_EQ(batch.dataDependentTotal(), dataDepN);
        for (std::size_t m = 0; m < mix.count.size(); ++m)
            EXPECT_EQ(batch.mixTotal().count[m], mix.count[m]);
    }
}

} // namespace
} // namespace splab
