/**
 * @file
 * End-to-end integration: the paper's claims, asserted at test scale
 * on a miniature benchmark run through the full pipeline (profile ->
 * cluster -> regional pinballs -> replay -> weighted aggregation).
 */

#include <gtest/gtest.h>

#include "core/artifact_graph.hh"
#include "core/pipeline.hh"
#include "core/runs.hh"
#include "core/scale.hh"
#include "perf/native.hh"
#include "support/stats_util.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

/** A mini benchmark with known structure, shared by the tests. */
BenchmarkSpec
miniSpec()
{
    BenchmarkSpec spec;
    spec.name = "e2e-mini";
    spec.seed = 808;
    spec.totalChunks = 6000; // 6M instructions, 600 slices
    PhaseSpec hot;
    hot.name = "hot";
    hot.weight = 0.5;
    hot.kernel = KernelKind::ZipfHotCold;
    hot.workingSetBytes = 1 << 20;
    PhaseSpec scan;
    scan.name = "scan";
    scan.weight = 0.3;
    scan.kernel = KernelKind::Stream;
    scan.workingSetBytes = 2 << 20;
    scan.numBlocks = 9;
    PhaseSpec chase;
    chase.name = "chase";
    chase.weight = 0.2;
    chase.kernel = KernelKind::PointerChase;
    chase.workingSetBytes = 1 << 20;
    chase.numBlocks = 24;
    spec.phases = {hot, scan, chase};
    spec.schedule = ScheduleKind::Markov;
    spec.dwellChunks = 150;
    return spec;
}

HierarchyConfig
miniCaches()
{
    return scaleFarCaches(tableIConfig(), scale::kFarCacheDivisor);
}

class EndToEnd : public testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        spec = new BenchmarkSpec(miniSpec());
        SimPointConfig cfg;
        cfg.maxK = 12;
        PinPointsPipeline pipe(cfg, ArtifactCache(""));
        sp = new SimPointResult(pipe.simpoints(*spec));
        whole = new CacheRunMetrics(
            measureWholeCache(*spec, miniCaches()));
        cold = new std::vector<PointCacheMetrics>(
            measurePointsCache(*spec, *sp, miniCaches(), 0));
        warm = new std::vector<PointCacheMetrics>(
            measurePointsCache(*spec, *sp, miniCaches(), 120));
    }

    static void
    TearDownTestSuite()
    {
        delete spec;
        delete sp;
        delete whole;
        delete cold;
        delete warm;
    }

    static BenchmarkSpec *spec;
    static SimPointResult *sp;
    static CacheRunMetrics *whole;
    static std::vector<PointCacheMetrics> *cold;
    static std::vector<PointCacheMetrics> *warm;
};

BenchmarkSpec *EndToEnd::spec = nullptr;
SimPointResult *EndToEnd::sp = nullptr;
CacheRunMetrics *EndToEnd::whole = nullptr;
std::vector<PointCacheMetrics> *EndToEnd::cold = nullptr;
std::vector<PointCacheMetrics> *EndToEnd::warm = nullptr;

TEST_F(EndToEnd, RecoversThePhaseCount)
{
    EXPECT_GE(sp->points.size(), 3u);
    EXPECT_LE(sp->points.size(), 5u); // phases + maybe a boundary
}

TEST_F(EndToEnd, InstructionMixWithinOnePercent)
{
    // The paper's Figure 7 claim.
    AggregateCacheMetrics regional = aggregateCache(*cold);
    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_NEAR(regional.mixFrac[c], whole->mixFrac[c], 0.01)
            << memClassName(static_cast<MemClass>(c));
}

TEST_F(EndToEnd, ReducedRegionalStillTracksMix)
{
    auto reduced = reduceToQuantile(*cold, 0.9);
    AggregateCacheMetrics agg = aggregateCache(reduced);
    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_NEAR(agg.mixFrac[c], whole->mixFrac[c], 0.02);
}

TEST_F(EndToEnd, ColdErrorGrowsTowardTheLlc)
{
    // The paper's Figure 8 shape: relative error is worst at L3.
    AggregateCacheMetrics regional = aggregateCache(*cold);
    double e1 = relativeError(regional.l1dMissRate,
                              whole->l1d.missRate());
    double e3 = relativeError(regional.l3MissRate,
                              whole->l3.missRate());
    EXPECT_GT(e3, e1);
}

TEST_F(EndToEnd, WarmupShrinksTheLlcError)
{
    AggregateCacheMetrics regional = aggregateCache(*cold);
    AggregateCacheMetrics warmed = aggregateCache(*warm);
    double eCold =
        relativeError(regional.l3MissRate, whole->l3.missRate());
    double eWarm =
        relativeError(warmed.l3MissRate, whole->l3.missRate());
    EXPECT_LT(eWarm, eCold);
}

TEST_F(EndToEnd, InstructionReductionMatchesSliceRatio)
{
    // Reduction factor = slices / points, by construction.
    AggregateCacheMetrics regional = aggregateCache(*cold);
    double ratio = static_cast<double>(spec->totalInstrs()) /
                   static_cast<double>(regional.executedInstrs);
    double expected = 600.0 /
                      static_cast<double>(sp->points.size());
    EXPECT_NEAR(ratio, expected, expected * 0.01);
}

TEST_F(EndToEnd, L3AccessesCollapseUnderSampling)
{
    // Figure 10's effect.
    AggregateCacheMetrics regional = aggregateCache(*cold);
    EXPECT_LT(regional.l3Accesses * 20, whole->l3.accesses);
}

TEST_F(EndToEnd, SampledCpiTracksNative)
{
    MachineConfig machine = tableIIIMachine();
    machine.caches =
        scaleFarCaches(machine.caches, scale::kFarCacheDivisor);

    SyntheticWorkload wl(*spec);
    NativeMachine hw(machine, 0.0, 0.0); // no hardware noise
    double native = hw.run(wl).cpi();

    auto points = measurePointsTiming(*spec, *sp, machine, 120);
    double sampled = aggregateTiming(points).cpi;
    EXPECT_LT(relativeError(sampled, native), 0.15);
}

} // namespace
} // namespace splab
