/**
 * @file
 * Unit tests for the cache model and hierarchy.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/hierarchy.hh"

namespace splab
{
namespace
{

CacheParams
smallCache(u32 ways, u64 size = 4096, u32 line = 64)
{
    return {"test", size, ways, line};
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache c(smallCache(4));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1008, false)); // same line
    EXPECT_EQ(c.statsRef().accesses, 3u);
    EXPECT_EQ(c.statsRef().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 4 KiB, 4-way, 64B lines -> 16 sets.  Lines mapping to set 0
    // are multiples of 64*16 = 1024.
    SetAssocCache c(smallCache(4));
    Addr base = 0x10000;
    for (int i = 0; i < 4; ++i)
        c.access(base + i * 1024, false); // fill set 0
    // Touch line 0 so line 1 becomes LRU.
    EXPECT_TRUE(c.access(base + 0 * 1024, false));
    // Insert a 5th line: must evict line 1.
    EXPECT_FALSE(c.access(base + 4 * 1024, false));
    EXPECT_TRUE(c.access(base + 0 * 1024, false));
    EXPECT_FALSE(c.access(base + 1 * 1024, false)); // evicted
}

TEST(Cache, DirectMappedConflicts)
{
    SetAssocCache c(smallCache(1)); // 64 sets
    Addr a = 0x0, b = 4096; // same index, different tag
    EXPECT_FALSE(c.access(a, false));
    EXPECT_FALSE(c.access(b, false)); // conflict
    EXPECT_FALSE(c.access(a, false)); // ping-pong
    EXPECT_EQ(c.statsRef().misses, 3u);
}

TEST(Cache, FullyAssociativeRetainsWorkingSet)
{
    // size = ways * line -> a single set.
    SetAssocCache c({"fa", 64 * 8, 8, 64});
    for (int i = 0; i < 8; ++i)
        c.access(i * 64, false);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(c.access(i * 64, false)) << i;
}

TEST(Cache, WarmupSuppressesCounters)
{
    SetAssocCache c(smallCache(4));
    c.setWarmup(true);
    c.access(0x2000, false);
    EXPECT_EQ(c.statsRef().accesses, 0u);
    c.setWarmup(false);
    // The warmed line now hits, proving state was updated.
    EXPECT_TRUE(c.access(0x2000, false));
    EXPECT_EQ(c.statsRef().accesses, 1u);
    EXPECT_EQ(c.statsRef().misses, 0u);
}

TEST(Cache, FlushDropsContentsKeepsStats)
{
    SetAssocCache c(smallCache(4));
    c.access(0x3000, false);
    c.flush();
    EXPECT_FALSE(c.access(0x3000, false));
    EXPECT_EQ(c.statsRef().accesses, 2u);
    EXPECT_EQ(c.statsRef().misses, 2u);
}

TEST(Cache, ReadWriteCountedSeparately)
{
    SetAssocCache c(smallCache(4));
    c.access(0x100, false);
    c.access(0x100, true);
    c.access(0x4100, true);
    const CacheStats &s = c.statsRef();
    EXPECT_EQ(s.readAccesses, 1u);
    EXPECT_EQ(s.readMisses, 1u);
    EXPECT_EQ(s.writeAccesses, 2u);
    EXPECT_EQ(s.writeMisses, 1u);
}

TEST(Cache, FifoEvictsByInsertionOrderNotRecency)
{
    // 2-way, 256 B, 64 B lines -> 2 sets; set-0 lines are multiples
    // of 128.  Fill with A, B, re-touch A, then insert C:
    //  - LRU refreshed A on the hit, so C evicts B;
    //  - FIFO keeps insertion order, so C evicts A.
    CacheParams p{"fifo", 256, 2, 64, ReplacementPolicy::FIFO};
    const Addr A = 0, B = 128, C = 256;

    SetAssocCache lru(
        CacheParams{"lru", 256, 2, 64, ReplacementPolicy::LRU});
    SetAssocCache fifo(p);
    for (SetAssocCache *c : {&lru, &fifo}) {
        EXPECT_FALSE(c->access(A, false));
        EXPECT_FALSE(c->access(B, false));
        EXPECT_TRUE(c->access(A, false));
        EXPECT_FALSE(c->access(C, false)); // evicts B (LRU) / A (FIFO)
    }
    // Probe the survivor first: probing the victim would itself
    // evict in a 2-way set.
    EXPECT_TRUE(lru.access(A, false));
    EXPECT_FALSE(lru.access(B, false));

    EXPECT_TRUE(fifo.access(B, false));
    EXPECT_FALSE(fifo.access(A, false));
}

TEST(Cache, ContentHashCoversEveryConfigField)
{
    // Artifact-cache keys hash the *full* CacheParams; any field
    // change — geometry or policy — must produce a fresh key.
    CacheParams base = smallCache(4);
    std::vector<CacheParams> variants;
    {
        CacheParams c = base;
        c.sizeBytes *= 2;
        variants.push_back(c);
    }
    {
        CacheParams c = base;
        c.ways *= 2;
        variants.push_back(c);
    }
    {
        CacheParams c = base;
        c.lineBytes *= 2;
        variants.push_back(c);
    }
    {
        CacheParams c = base;
        c.replacement = ReplacementPolicy::FIFO;
        variants.push_back(c);
    }

    std::set<u64> hashes = {base.contentHash()};
    for (const CacheParams &c : variants)
        hashes.insert(c.contentHash());
    EXPECT_EQ(hashes.size(), variants.size() + 1);

    // The hash identifies the configuration, not the instance.
    EXPECT_EQ(base.contentHash(), smallCache(4).contentHash());
}

TEST(Hierarchy, ContentHashSeesEveryLevel)
{
    HierarchyConfig base = tableIConfig();
    std::set<u64> hashes = {base.contentHash()};
    for (CacheParams HierarchyConfig::*level :
         {&HierarchyConfig::l1i, &HierarchyConfig::l1d,
          &HierarchyConfig::l2, &HierarchyConfig::l3}) {
        HierarchyConfig c = tableIConfig();
        (c.*level).replacement = ReplacementPolicy::FIFO;
        hashes.insert(c.contentHash());
    }
    EXPECT_EQ(hashes.size(), 5u);
}

TEST(Cache, MissRateComputation)
{
    CacheStats s;
    s.accesses = 200;
    s.misses = 50;
    EXPECT_DOUBLE_EQ(s.missRate(), 0.25);
    EXPECT_DOUBLE_EQ(CacheStats().missRate(), 0.0);
}

TEST(Hierarchy, TableIGeometry)
{
    HierarchyConfig c = tableIConfig();
    EXPECT_EQ(c.l1d.sizeBytes, 32u * 1024);
    EXPECT_EQ(c.l1d.ways, 32u);
    EXPECT_EQ(c.l1d.lineBytes, 32u);
    EXPECT_EQ(c.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(c.l2.ways, 1u); // direct-mapped
    EXPECT_EQ(c.l3.sizeBytes, 16u * 1024 * 1024);
    EXPECT_EQ(c.l3.ways, 1u);
}

TEST(Hierarchy, TableIIIGeometry)
{
    HierarchyConfig c = tableIIIConfig();
    EXPECT_EQ(c.l1d.ways, 8u);
    EXPECT_EQ(c.l2.sizeBytes, 256u * 1024);
    EXPECT_EQ(c.l3.sizeBytes, 8u * 1024 * 1024);
    EXPECT_EQ(c.l3.ways, 16u);
    EXPECT_EQ(c.l3.lineBytes, 64u);
}

TEST(Hierarchy, MissesPropagateDownTheLevels)
{
    CacheHierarchy h(tableIConfig());
    EXPECT_EQ(h.accessData(0x5000, false), HitLevel::Memory);
    // All levels saw the access.
    EXPECT_EQ(h.levelStats(CacheLevel::L1D).accesses, 1u);
    EXPECT_EQ(h.levelStats(CacheLevel::L2).accesses, 1u);
    EXPECT_EQ(h.levelStats(CacheLevel::L3).accesses, 1u);
    // Second touch hits in L1D and never reaches L2/L3.
    EXPECT_EQ(h.accessData(0x5000, false), HitLevel::L1);
    EXPECT_EQ(h.levelStats(CacheLevel::L2).accesses, 1u);
}

TEST(Hierarchy, InstrPathUsesL1I)
{
    CacheHierarchy h(tableIConfig());
    h.accessInstr(0x400000);
    EXPECT_EQ(h.levelStats(CacheLevel::L1I).accesses, 1u);
    EXPECT_EQ(h.levelStats(CacheLevel::L1D).accesses, 0u);
    EXPECT_EQ(h.accessInstr(0x400000), HitLevel::L1);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    CacheHierarchy h(tableIConfig());
    // Stream far beyond L1D (32 KiB) but within L2 (2 MiB).
    for (Addr a = 0; a < 256 * 1024; a += 32)
        h.accessData(a, false);
    // Address 0 was evicted from L1D but should still sit in L2.
    EXPECT_EQ(h.accessData(0, false), HitLevel::L2);
}

TEST(Hierarchy, FlushColdRestarts)
{
    CacheHierarchy h(tableIConfig());
    h.accessData(0x1234, false);
    h.flush();
    EXPECT_EQ(h.accessData(0x1234, false), HitLevel::Memory);
}

TEST(Hierarchy, ResetStatsZeroesCounters)
{
    CacheHierarchy h(tableIConfig());
    h.accessData(0x1, false);
    h.resetStats();
    EXPECT_EQ(h.levelStats(CacheLevel::L1D).accesses, 0u);
    // Contents survive.
    EXPECT_EQ(h.accessData(0x1, false), HitLevel::L1);
}

} // namespace
} // namespace splab
