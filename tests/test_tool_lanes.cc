/**
 * @file
 * Per-tool consumer lanes over the generation pipeline: a pure
 * scheduling change, so the tests are byte-equality tests — lanes on
 * vs off, thread count vs thread count — plus gauge coverage, the
 * per-call env re-read contracts, and arena-reuse poisoning.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "core/runs.hh"
#include "isa/accumulate.hh"
#include "isa/events.hh"
#include "obs/counters.hh"
#include "pin/engine.hh"
#include "support/env.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

BenchmarkSpec
laneSpec(u64 chunks = 300)
{
    BenchmarkSpec spec;
    spec.name = "toollanes-test";
    spec.seed = 4321;
    spec.totalChunks = chunks;
    spec.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.5;
    a.kernel = KernelKind::Stream;
    a.workingSetBytes = 4 << 20;
    PhaseSpec b;
    b.weight = 0.5;
    b.kernel = KernelKind::PointerChase;
    b.workingSetBytes = 1 << 20;
    spec.phases = {a, b};
    spec.schedule = ScheduleKind::Interleaved;
    spec.dwellChunks = 20;
    return spec;
}

/** Fused whole-run results as comparable bytes (wall time excluded,
 *  BBVs included) — every artifact the five lane tools produce. */
std::vector<u8>
fusedBytes(const FusedWholeResult &r)
{
    ByteWriter w;
    w.put<u64>(r.cache.instrs);
    for (double f : r.cache.mixFrac)
        w.put<double>(f);
    for (const LevelCounts *lc :
         {&r.cache.l1i, &r.cache.l1d, &r.cache.l2, &r.cache.l3}) {
        w.put<u64>(lc->accesses);
        w.put<u64>(lc->misses);
    }
    w.put<u64>(r.cache.branches);
    w.put<u64>(r.timing.instrs);
    w.put<double>(r.timing.cycles);
    w.put<u64>(r.timing.branches);
    w.put<u64>(r.timing.mispredicts);
    w.put<u64>(r.timing.l2Hits);
    w.put<u64>(r.timing.l3Hits);
    w.put<u64>(r.timing.memAccesses);
    w.put<u64>(r.bbvs.size());
    for (const FrequencyVector &fv : r.bbvs) {
        w.put<u64>(fv.entries.size());
        for (const BbvEntry &e : fv.entries) {
            w.put<u32>(e.block);
            w.put<float>(e.weight);
        }
    }
    return w.bytes();
}

/** RAII env toggle restoring the variable on scope exit. */
class EnvGuard
{
  public:
    EnvGuard(const char *n, const char *v) : name(n)
    {
        const char *old = std::getenv(n);
        had = old != nullptr;
        if (had)
            saved = old;
        setenv(n, v, 1);
    }
    ~EnvGuard()
    {
        if (had)
            setenv(name, saved.c_str(), 1);
        else
            unsetenv(name);
    }

  private:
    const char *name;
    bool had = false;
    std::string saved;
};

TEST(ToolLanes, LanesOffOnByteEquality)
{
    // Lanes are a pure scheduling change: with the pool sized so the
    // fused pass runs one lane per tool (5 tools + producers on 8
    // threads), SPLAB_TOOL_LANES=0 and =1 must produce byte-identical
    // cache, timing and BBV results.
    BenchmarkSpec spec = laneSpec(300);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    const ICount slice = 5 * spec.chunkLen;
    EnvGuard p("SPLAB_GEN_PIPELINE", "1");

    ThreadPool::setGlobalThreads(8);
    std::vector<u8> off, on;
    {
        EnvGuard g("SPLAB_TOOL_LANES", "0");
        off = fusedBytes(measureWholeFused(spec, caches, machine,
                                           slice));
    }
    {
        EnvGuard g("SPLAB_TOOL_LANES", "1");
        on = fusedBytes(measureWholeFused(spec, caches, machine,
                                          slice));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(off.empty());
    EXPECT_EQ(off, on);
}

TEST(ToolLanes, ThreadCountInvariantWithLanesForcedOn)
{
    // With lanes explicitly enabled, the fused pass must stay
    // byte-identical across SPLAB_THREADS = 1 (serial fallback), 2
    // (single consumer — no worker to spare for a second lane), 3
    // (two lanes, tools grouped round-robin) and 8 (one lane per
    // tool).
    BenchmarkSpec spec = laneSpec(250);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    EnvGuard p("SPLAB_GEN_PIPELINE", "1");
    EnvGuard g("SPLAB_TOOL_LANES", "1");

    std::vector<std::vector<u8>> blobs;
    for (std::size_t threads : {1u, 2u, 3u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        blobs.push_back(fusedBytes(
            measureWholeFused(spec, caches, machine,
                              6 * spec.chunkLen)));
    }
    ThreadPool::setGlobalThreads(0);
    ASSERT_FALSE(blobs[0].empty());
    for (std::size_t i = 1; i < blobs.size(); ++i)
        EXPECT_EQ(blobs[0], blobs[i]) << "thread config " << i;
}

TEST(ToolLanes, GaugesRecordLaneHealth)
{
    // A lane run must leave the toollanes gauges populated (gauges,
    // not counters: stall counts depend on scheduling and may not
    // perturb the deterministic manifest section).
    BenchmarkSpec spec = laneSpec(80);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    EnvGuard p("SPLAB_GEN_PIPELINE", "1");
    EnvGuard g("SPLAB_TOOL_LANES", "1");
    ThreadPool::setGlobalThreads(8);
    measureWholeFused(spec, caches, machine, 5 * spec.chunkLen);
    ThreadPool::setGlobalThreads(0);

    auto gauges = obs::gaugeSnapshot();
    ASSERT_TRUE(gauges.count("toollanes.runs"));
    EXPECT_GE(gauges["toollanes.runs"], 1u);
    ASSERT_TRUE(gauges.count("toollanes.lanes"));
    EXPECT_GE(gauges["toollanes.lanes"], 2u);
    EXPECT_TRUE(gauges.count("toollanes.lane_stalls"));
    EXPECT_TRUE(gauges.count("toollanes.lane0_stalls"));
    ASSERT_TRUE(gauges.count("toollanes.peak_inflight_slots"));
    EXPECT_GE(gauges["toollanes.peak_inflight_slots"], 1u);
}

TEST(ToolLanes, EnvKnobReReadPerRun)
{
    // SPLAB_TOOL_LANES must be consulted fresh on every run: toggle
    // it inside one process and watch lane engagement flip via the
    // toollanes.runs gauge.
    BenchmarkSpec spec = laneSpec(60);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    EnvGuard p("SPLAB_GEN_PIPELINE", "1");
    ThreadPool::setGlobalThreads(8);

    {
        EnvGuard g("SPLAB_TOOL_LANES", "0");
        EXPECT_FALSE(toolLanesEnabled());
        u64 before = obs::gaugeSnapshot()["toollanes.runs"];
        measureWholeFused(spec, caches, machine, 5 * spec.chunkLen);
        EXPECT_EQ(obs::gaugeSnapshot()["toollanes.runs"], before)
            << "lanes engaged despite SPLAB_TOOL_LANES=0";
    }
    {
        EnvGuard g("SPLAB_TOOL_LANES", "1");
        EXPECT_TRUE(toolLanesEnabled());
        u64 before = obs::gaugeSnapshot()["toollanes.runs"];
        measureWholeFused(spec, caches, machine, 5 * spec.chunkLen);
        EXPECT_GT(obs::gaugeSnapshot()["toollanes.runs"], before)
            << "lanes did not engage despite SPLAB_TOOL_LANES=1";
    }
    ThreadPool::setGlobalThreads(0);
}

TEST(EnvReRead, GenPipelineFlipsMidProcess)
{
    // SPLAB_GEN_PIPELINE is re-read per run, not latched at first
    // use: within one test body, a run with it off must not bump
    // genpipe.runs and a following run with it on must.
    BenchmarkSpec spec = laneSpec(60);
    ThreadPool::setGlobalThreads(4);
    SyntheticWorkload wl(spec);
    Engine engine; // no tools: generation + ordered delivery only

    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "0");
        EXPECT_FALSE(genPipelineEnabled());
        u64 before = obs::gaugeSnapshot()["genpipe.runs"];
        engine.runWhole(wl);
        EXPECT_EQ(obs::gaugeSnapshot()["genpipe.runs"], before)
            << "pipeline engaged despite SPLAB_GEN_PIPELINE=0";
    }
    {
        EnvGuard g("SPLAB_GEN_PIPELINE", "1");
        EXPECT_TRUE(genPipelineEnabled());
        u64 before = obs::gaugeSnapshot()["genpipe.runs"];
        engine.runWhole(wl);
        EXPECT_GT(obs::gaugeSnapshot()["genpipe.runs"], before)
            << "pipeline did not engage despite SPLAB_GEN_PIPELINE=1";
    }
    ThreadPool::setGlobalThreads(0);
}

TEST(EnvReRead, SimdFlipsMidProcess)
{
    // SPLAB_SIMD is re-read per call: toggling it inside one test
    // body must flip the dispatch both ways, with identical results
    // either way.
    std::mt19937_64 rng(99);
    std::vector<BlockRecord> recs;
    std::vector<u8> valid, taken, dataDep;
    for (std::size_t i = 0; i < 777; ++i) {
        BlockRecord r;
        r.bb = static_cast<u32>(rng() % 300);
        r.instrs = 1 + static_cast<u32>(rng() % 30);
        for (std::size_t m = 0; m < r.mix.count.size(); ++m)
            r.mix.count[m] = rng() % 11;
        r.fpInstrs = static_cast<u32>(rng() % 5);
        bool hasBr = (rng() & 1) != 0;
        r.endsInBranch = hasBr;
        recs.push_back(r);
        valid.push_back(hasBr ? 1 : 0);
        taken.push_back(hasBr && (rng() & 1) ? 1 : 0);
        dataDep.push_back(hasBr && (rng() & 1) ? 1 : 0);
    }
    BatchAggregates ref = accumulateScalar(
        recs.data(), recs.size(), valid.data(), taken.data(),
        dataDep.data());
    {
        EnvGuard g("SPLAB_SIMD", "0");
        EXPECT_FALSE(simdAccumulateEnabled());
        BatchAggregates got = accumulateBatch(
            recs.data(), recs.size(), valid.data(), taken.data(),
            dataDep.data());
        EXPECT_TRUE(ref == got);
    }
    {
        EnvGuard g("SPLAB_SIMD", "1");
        EXPECT_EQ(simdAccumulateEnabled(), simdAccumulateCompiled());
        BatchAggregates got = accumulateBatch(
            recs.data(), recs.size(), valid.data(), taken.data(),
            dataDep.data());
        EXPECT_TRUE(ref == got);
    }
}

/** Serialize a batch's full event content plus its aggregates. */
std::vector<u8>
batchBytes(const EventBatch &batch)
{
    ByteWriter w;
    w.put<u64>(batch.numBlocks());
    for (std::size_t i = 0; i < batch.numBlocks(); ++i) {
        const BlockRecord &rec = batch.block(i);
        w.put<u32>(rec.bb);
        w.put<u64>(rec.pc);
        w.put<u32>(rec.instrs);
        for (ICount c : rec.mix.count)
            w.put<u64>(c);
        w.put<u32>(rec.fpInstrs);
        w.put<u8>(rec.endsInBranch ? 1 : 0);
        w.put<u64>(batch.accCount(i));
        const MemAccess *accs = batch.accs(i);
        for (std::size_t k = 0; k < batch.accCount(i); ++k) {
            w.put<u64>(accs[k].addr);
            w.put<u8>(accs[k].size);
            w.put<u8>(accs[k].isWrite ? 1 : 0);
        }
        const BranchRecord *br = batch.branch(i);
        w.put<u8>(br ? 1 : 0);
        if (br) {
            w.put<u64>(br->pc);
            w.put<u8>(br->taken ? 1 : 0);
            w.put<u8>(br->dataDependent ? 1 : 0);
        }
    }
    w.put<u64>(batch.instrs());
    for (ICount c : batch.mixTotal().count)
        w.put<u64>(c);
    w.put<u64>(batch.fpTotal());
    w.put<u64>(batch.branchTotal());
    w.put<u64>(batch.takenTotal());
    w.put<u64>(batch.dataDependentTotal());
    w.put<u64>(batch.touchedBlocks().size());
    for (u32 bb : batch.touchedBlocks()) {
        w.put<u32>(bb);
        w.put<u64>(batch.blockInstrSum(bb));
    }
    return w.bytes();
}

TEST(ArenaReuse, PoisonedBatchRefillsClean)
{
    // The ring reuses retired arenas; a refill must not inherit
    // anything from the previous occupant.  Scribble garbage into a
    // batch — junk blocks, accesses, branches, finalized aggregates,
    // touched-block sums — then regenerate a chunk into it and
    // demand bytes identical to a fill into a pristine arena.
    BenchmarkSpec spec = laneSpec(50);
    SyntheticWorkload wl(spec);
    GenContext ctx(wl);

    EventBatch pristine;
    ctx.generateChunk(17, pristine, true);
    const std::vector<u8> want = batchBytes(pristine);

    EventBatch reused;
    std::mt19937_64 rng(1);
    for (int round = 0; round < 3; ++round) {
        // Poison: fill with random junk shaped like a real chunk,
        // including high block ids so blockSums grows past anything
        // chunk 17 touches.
        reused.clear();
        for (std::size_t i = 0; i < 500; ++i) {
            BlockRecord r;
            r.bb = static_cast<u32>(rng() % 4096);
            r.pc = rng();
            r.instrs = 1 + static_cast<u32>(rng() % 50);
            for (std::size_t m = 0; m < r.mix.count.size(); ++m)
                r.mix.count[m] = rng() % 23;
            r.fpInstrs = static_cast<u32>(rng() % 7);
            std::size_t nAccs = rng() % 4;
            MemAccess *accs = reused.reserveAccs(nAccs);
            for (std::size_t k = 0; k < nAccs; ++k) {
                accs[k].addr = rng();
                accs[k].size = 8;
                accs[k].isWrite = (rng() & 1) != 0;
            }
            BranchRecord br;
            br.pc = rng();
            br.taken = (rng() & 1) != 0;
            br.dataDependent = (rng() & 1) != 0;
            bool hasBr = (rng() & 1) != 0;
            r.endsInBranch = hasBr;
            reused.push(r, nAccs, br, hasBr);
        }
        reused.finalizeAggregates(); // cache junk aggregates too

        ctx.generateChunk(17, reused, true);
        EXPECT_EQ(batchBytes(reused), want) << "round " << round;
    }
}

} // namespace
} // namespace splab
