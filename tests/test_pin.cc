/**
 * @file
 * Unit tests for the instrumentation engine and the bundled tools.
 */

#include <gtest/gtest.h>

#include "pin/engine.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/bbv_tool.hh"
#include "pin/tools/branch_profile.hh"
#include "pin/tools/inscount.hh"
#include "pin/tools/ldstmix.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

BenchmarkSpec
smallSpec(u64 chunks = 300)
{
    BenchmarkSpec spec;
    spec.name = "pin-test";
    spec.seed = 77;
    spec.totalChunks = chunks;
    spec.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.6;
    a.kernel = KernelKind::Stream;
    a.workingSetBytes = 4 << 20;
    PhaseSpec b;
    b.weight = 0.4;
    b.kernel = KernelKind::PointerChase;
    b.workingSetBytes = 1 << 20;
    spec.phases = {a, b};
    spec.schedule = ScheduleKind::Interleaved;
    spec.dwellChunks = 30;
    return spec;
}

TEST(Engine, CountsInstructionsExactly)
{
    SyntheticWorkload wl(smallSpec(100));
    InsCountTool count;
    Engine engine;
    engine.attach(&count);
    ICount n = engine.runWhole(wl);
    EXPECT_EQ(n, 100000u);
    EXPECT_EQ(count.instructions(), 100000u);
    EXPECT_GT(count.blockCount(), 500u);
    EXPECT_GT(count.branchCount(), 0u);
    EXPECT_LE(count.branchCount(), count.blockCount());
}

TEST(Engine, MultipleToolsSeeTheSameStream)
{
    SyntheticWorkload wl(smallSpec(50));
    InsCountTool c1, c2;
    Engine engine;
    engine.attach(&c1);
    engine.attach(&c2);
    engine.runWhole(wl);
    EXPECT_EQ(c1.instructions(), c2.instructions());
    EXPECT_EQ(c1.blockCount(), c2.blockCount());
}

TEST(Engine, WindowedRunsAccumulate)
{
    SyntheticWorkload wl(smallSpec(60));
    InsCountTool count;
    Engine engine;
    engine.attach(&count);
    engine.run(wl, 0, 20);
    engine.run(wl, 40, 20);
    EXPECT_EQ(count.instructions(), 40000u);
    EXPECT_EQ(engine.instructionsExecuted(), 40000u);
}

TEST(LdStMix, FractionsSumToOne)
{
    SyntheticWorkload wl(smallSpec(200));
    LdStMixTool mix;
    Engine engine;
    engine.attach(&mix);
    engine.runWhole(wl);
    auto f = mix.mix().fractions();
    EXPECT_NEAR(f[0] + f[1] + f[2] + f[3], 1.0, 1e-12);
    EXPECT_GT(f[0], 0.2);
    EXPECT_GT(f[1], 0.1);
    EXPECT_EQ(mix.mix().total(), 200000u);
}

TEST(BbvTool, OneVectorPerSlice)
{
    SyntheticWorkload wl(smallSpec(120));
    BbvTool bbv(10000); // 10 chunks per slice
    Engine engine;
    engine.attach(&bbv);
    engine.runWhole(wl);
    EXPECT_EQ(bbv.vectors().size(), 12u);
    for (const auto &v : bbv.vectors()) {
        EXPECT_FALSE(v.entries.empty());
        EXPECT_NEAR(v.l1Norm(), 10000.0, 1e-6);
    }
}

TEST(BbvTool, SliceLengthMustAlignWithChunks)
{
    SyntheticWorkload wl(smallSpec(10));
    BbvTool bbv(1500); // not a multiple of 1000
    Engine engine;
    engine.attach(&bbv);
    EXPECT_DEATH(engine.runWhole(wl), "multiple of the chunk");
}

TEST(BbvTool, WindowedProfilingMatchesSliceOfWhole)
{
    // BBVs of slices 5..8 collected standalone equal those from a
    // full profile.
    SyntheticWorkload wlA(smallSpec(120));
    BbvTool whole(10000);
    Engine ea;
    ea.attach(&whole);
    ea.runWhole(wlA);

    SyntheticWorkload wlB(smallSpec(120));
    BbvTool window(10000);
    Engine eb;
    eb.attach(&window);
    eb.run(wlB, 50, 30); // slices 5,6,7

    ASSERT_EQ(window.vectors().size(), 3u);
    for (int s = 0; s < 3; ++s) {
        const auto &a = whole.vectors()[5 + s].entries;
        const auto &b = window.vectors()[s].entries;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].block, b[i].block);
            EXPECT_FLOAT_EQ(a[i].weight, b[i].weight);
        }
    }
}

TEST(AllCache, CountsAccessesConsistentWithMix)
{
    SyntheticWorkload wl(smallSpec(100));
    AllCacheTool cache(tableIConfig());
    LdStMixTool mix;
    Engine engine;
    engine.attach(&cache);
    engine.attach(&mix);
    engine.runWhole(wl);

    const InstrMix &m = mix.mix();
    u64 expectedData = m[MemClass::MemR] + m[MemClass::MemW] +
                       2 * m[MemClass::MemRW];
    EXPECT_EQ(cache.hierarchy()
                  .levelStats(CacheLevel::L1D)
                  .accesses,
              expectedData);
    EXPECT_GT(cache.hierarchy()
                  .levelStats(CacheLevel::L1I)
                  .accesses,
              0u);
}

TEST(AllCache, L1IMissRateIsNegligible)
{
    // The paper: "L1I has negligible miss rates in all cases".
    SyntheticWorkload wl(smallSpec(200));
    AllCacheTool cache(tableIConfig());
    Engine engine;
    engine.attach(&cache);
    engine.runWhole(wl);
    EXPECT_LT(cache.hierarchy()
                  .levelStats(CacheLevel::L1I)
                  .missRate(),
              0.02);
}

TEST(AllCache, ColdStartRaisesMissesVersusContinuation)
{
    // Replaying a late window cold must produce at least as many
    // L3 misses as the same window inside a continuous run.
    auto runWindow = [&](bool coldOnly) {
        SyntheticWorkload wl(smallSpec(200));
        AllCacheTool cache(tableIConfig());
        Engine engine;
        if (!coldOnly) {
            cache.setWarmup(true);
            engine.attach(&cache);
            engine.run(wl, 0, 150);
            cache.setWarmup(false);
            engine.clearTools();
        }
        engine.attach(&cache);
        engine.run(wl, 150, 50);
        return cache.hierarchy().levelStats(CacheLevel::L3).misses;
    };
    EXPECT_GE(runWindow(true), runWindow(false));
}

TEST(BranchProfile, RatesAreSane)
{
    SyntheticWorkload wl(smallSpec(100));
    BranchProfileTool prof;
    Engine engine;
    engine.attach(&prof);
    engine.runWhole(wl);
    EXPECT_GT(prof.branchCount(), 0u);
    EXPECT_GE(prof.takenCount(), 0u);
    EXPECT_LE(prof.takenCount(), prof.branchCount());
    EXPECT_LT(prof.dataDependentCount(), prof.branchCount());
    EXPECT_GT(prof.takenRate(), 0.05);
    EXPECT_LT(prof.takenRate(), 0.95);
}

} // namespace
} // namespace splab
