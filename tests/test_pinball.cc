/**
 * @file
 * Unit tests for the pinball checkpoint format, logger and replayer.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "pin/tools/inscount.hh"
#include "pinball/logger.hh"
#include "support/serialize.hh"
#include "pinball/replayer.hh"
#include "simpoint/simpoint.hh"

namespace splab
{
namespace
{

BenchmarkSpec
spec(u64 chunks = 400)
{
    BenchmarkSpec s;
    s.name = "pinball-test";
    s.seed = 4242;
    s.totalChunks = chunks;
    s.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.5;
    a.kernel = KernelKind::ZipfHotCold;
    PhaseSpec b;
    b.weight = 0.5;
    b.kernel = KernelKind::Stream;
    b.numBlocks = 12;
    s.phases = {a, b};
    s.schedule = ScheduleKind::Markov;
    s.dwellChunks = 40;
    return s;
}

SimPointResult
fakeSimPoints(u64 totalSlices)
{
    SimPointResult r;
    r.chosenK = 3;
    r.totalSlices = totalSlices;
    r.sliceInstrs = 10000;
    r.points = {{2, 0.5, 0, totalSlices / 2},
                {10, 0.3, 1, totalSlices * 3 / 10},
                {30, 0.2, 2, totalSlices / 5}};
    return r;
}

TEST(Pinball, WholeCapture)
{
    SyntheticWorkload wl(spec());
    Pinball p = Logger::captureWhole(wl);
    EXPECT_EQ(p.kind(), PinballKind::Whole);
    ASSERT_EQ(p.regions().size(), 1u);
    EXPECT_EQ(p.regions()[0].numChunks, 400u);
    EXPECT_EQ(p.coveredInstrs(), 400000u);
}

TEST(Pinball, RegionalFromSimPoints)
{
    SyntheticWorkload wl(spec());
    Pinball whole = Logger::captureWhole(wl);
    Pinball regional =
        Logger::makeRegional(whole, fakeSimPoints(40));
    EXPECT_EQ(regional.kind(), PinballKind::Regional);
    ASSERT_EQ(regional.regions().size(), 3u);
    EXPECT_EQ(regional.regions()[0].firstChunk, 20u); // slice 2 * 10
    EXPECT_EQ(regional.regions()[0].numChunks, 10u);
    EXPECT_DOUBLE_EQ(regional.regions()[0].weight, 0.5);
    EXPECT_EQ(regional.coveredInstrs(), 30000u);
}

TEST(Pinball, SaveLoadRoundTrip)
{
    std::string path = testing::TempDir() + "/test.pinball";
    SyntheticWorkload wl(spec());
    Pinball whole = Logger::captureWhole(wl, /*verify=*/true);
    Pinball regional =
        Logger::makeRegional(whole, fakeSimPoints(40));
    regional.save(path);

    Pinball loaded = Pinball::load(path);
    EXPECT_EQ(loaded.kind(), PinballKind::Regional);
    EXPECT_EQ(loaded.spec().contentHash(),
              regional.spec().contentHash());
    ASSERT_EQ(loaded.regions().size(), 3u);
    EXPECT_EQ(loaded.regions()[1].firstChunk, 100u);
    EXPECT_DOUBLE_EQ(loaded.regions()[1].weight, 0.3);
    std::remove(path.c_str());
}

TEST(Pinball, LoadRejectsGarbage)
{
    std::string path = testing::TempDir() + "/garbage.pinball";
    ByteWriter w;
    w.putString("this is not a pinball");
    ASSERT_TRUE(w.saveFile(path));
    EXPECT_DEATH((void)Pinball::load(path), "not a pinball");
    std::remove(path.c_str());
}

TEST(Replayer, RegionInstructionCounts)
{
    SyntheticWorkload wl(spec());
    Pinball regional = Logger::makeRegional(
        Logger::captureWhole(wl), fakeSimPoints(40));
    Replayer rep(regional);
    InsCountTool count;
    Engine engine;
    engine.attach(&count);
    EXPECT_EQ(rep.replayRegion(0, engine), 10000u);
    EXPECT_EQ(rep.replayAll(engine), 30000u);
}

TEST(Replayer, ReplayMatchesOriginalStream)
{
    // Checksum of a replayed region equals the checksum of the same
    // window of the original workload.
    SyntheticWorkload original(spec());
    u64 direct = Logger::streamChecksum(original, 100, 10);

    Pinball regional = Logger::makeRegional(
        Logger::captureWhole(original), fakeSimPoints(40));
    Replayer rep(regional);
    u64 replayed =
        Logger::streamChecksum(rep.workload(), 100, 10);
    EXPECT_EQ(direct, replayed);
}

TEST(Replayer, ChecksumVerification)
{
    SyntheticWorkload wl(spec(100));
    Pinball whole = Logger::captureWhole(wl, /*verify=*/true);
    EXPECT_NE(whole.streamChecksum(), 0u);
    Replayer rep(whole);
    EXPECT_TRUE(rep.verifyChecksum());
}

TEST(Replayer, WarmupClampedAtRunStart)
{
    SimPointResult sp;
    sp.totalSlices = 40;
    sp.sliceInstrs = 10000;
    sp.points = {{1, 1.0, 0, 40}}; // region starts at chunk 10
    SyntheticWorkload wl(spec());
    Pinball regional =
        Logger::makeRegional(Logger::captureWhole(wl), sp);
    Replayer rep(regional);
    Engine engine;
    // Ask for more warm-up than exists before the region.
    EXPECT_EQ(rep.replayWarmup(0, 1000, engine), 10000u);
    // Region at chunk 0 has no warm-up at all.
    SimPointResult sp0;
    sp0.totalSlices = 40;
    sp0.sliceInstrs = 10000;
    sp0.points = {{0, 1.0, 0, 40}};
    SyntheticWorkload wl2(spec());
    Replayer rep0(
        Logger::makeRegional(Logger::captureWhole(wl2), sp0));
    EXPECT_EQ(rep0.replayWarmup(0, 1000, engine), 0u);
}

TEST(Logger, ChecksumSensitiveToWindow)
{
    SyntheticWorkload wl(spec());
    EXPECT_NE(Logger::streamChecksum(wl, 0, 10),
              Logger::streamChecksum(wl, 10, 10));
    EXPECT_EQ(Logger::streamChecksum(wl, 0, 10),
              Logger::streamChecksum(wl, 0, 10));
}

} // namespace
} // namespace splab
