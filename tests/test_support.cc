/**
 * @file
 * Unit tests for the support library: RNG, serialization, tables,
 * numeric helpers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/stats_util.hh"
#include "support/table.hh"

namespace splab
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123, 7, 9);
    Rng b(123, 7, 9);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentStreamsDiffer)
{
    Rng a(123, 7);
    Rng b(123, 8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LE(same, 1);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(42);
    for (u64 bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng r(42);
    std::set<u64> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, BurstRespectsCap)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        u64 b = r.burst(50.0, 100);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 100u);
    }
}

TEST(Rng, Mix64AvalanchesSingleBit)
{
    // Flipping one input bit should flip roughly half the output.
    u64 a = mix64(0x1234);
    u64 b = mix64(0x1235);
    int diff = __builtin_popcountll(a ^ b);
    EXPECT_GT(diff, 16);
    EXPECT_LT(diff, 48);
}

TEST(SampleCdf, PicksCorrectBuckets)
{
    double cdf[] = {0.1, 0.4, 1.0};
    EXPECT_EQ(sampleCdf(cdf, 3, 0.05), 0u);
    EXPECT_EQ(sampleCdf(cdf, 3, 0.1), 0u);
    EXPECT_EQ(sampleCdf(cdf, 3, 0.25), 1u);
    EXPECT_EQ(sampleCdf(cdf, 3, 0.9), 2u);
    EXPECT_EQ(sampleCdf(cdf, 3, 1.5), 2u); // clamped
}

TEST(HashBytes, StableAndSensitive)
{
    std::string s1 = "623.xalancbmk_s";
    std::string s2 = "623.xalancbmk_r";
    EXPECT_EQ(hashBytes(s1.data(), s1.size()),
              hashBytes(s1.data(), s1.size()));
    EXPECT_NE(hashBytes(s1.data(), s1.size()),
              hashBytes(s2.data(), s2.size()));
}

TEST(Serialize, ScalarRoundTrip)
{
    ByteWriter w;
    w.put<u64>(0xdeadbeefULL);
    w.put<double>(3.25);
    w.put<u8>(7);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.get<u64>(), 0xdeadbeefULL);
    EXPECT_EQ(r.get<double>(), 3.25);
    EXPECT_EQ(r.get<u8>(), 7);
    EXPECT_TRUE(r.atEnd());
}

TEST(Serialize, StringAndVectorRoundTrip)
{
    ByteWriter w;
    w.putString("hello, pinball");
    w.putVector(std::vector<u32>{1, 2, 3, 42});
    w.putString("");
    ByteReader r(w.bytes());
    EXPECT_EQ(r.getString(), "hello, pinball");
    EXPECT_EQ(r.getVector<u32>(), (std::vector<u32>{1, 2, 3, 42}));
    EXPECT_EQ(r.getString(), "");
}

TEST(Serialize, FileRoundTripWithChecksum)
{
    std::string path = testing::TempDir() + "/splab_ser_test.bin";
    ByteWriter w;
    w.put<u64>(99);
    w.putString("persisted");
    ASSERT_TRUE(w.saveFile(path));
    ASSERT_TRUE(ByteReader::probeFile(path));
    ByteReader r = ByteReader::loadFile(path);
    EXPECT_EQ(r.get<u64>(), 99u);
    EXPECT_EQ(r.getString(), "persisted");
    std::remove(path.c_str());
}

TEST(Serialize, CorruptionDetected)
{
    std::string path = testing::TempDir() + "/splab_corrupt.bin";
    ByteWriter w;
    w.putString("soon to be damaged");
    ASSERT_TRUE(w.saveFile(path));
    // Flip a byte in the middle.
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 10, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 10, SEEK_SET);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
    EXPECT_FALSE(ByteReader::probeFile(path));
    std::remove(path.c_str());
}

TEST(Table, RendersAlignedColumns)
{
    TableWriter t("demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"bb", "22222"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("| alpha |"), std::string::npos);
    EXPECT_NE(out.find("| 22222 |"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials)
{
    CsvWriter c;
    c.header({"a", "b"});
    c.row({"x,y", "he said \"hi\""});
    EXPECT_EQ(c.content(),
              "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Format, Helpers)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmtPct(0.2516, 2), "25.16%");
    EXPECT_EQ(fmtX(750.34, 1), "750.3x");
    EXPECT_EQ(fmtSi(6873.9e9, 2), "6.87 T");
    EXPECT_EQ(fmtSi(10.4e9, 1), "10.4 B");
    EXPECT_EQ(fmtCount(1234567), "1,234,567");
    EXPECT_EQ(fmtCount(123), "123");
}

TEST(StatsUtil, MeanAndStddev)
{
    std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(StatsUtil, WeightedMean)
{
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {1.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(weightedMean({1.0, 3.0}, {3.0, 1.0}), 1.5);
    EXPECT_DOUBLE_EQ(weightedMean({}, {}), 0.0);
}

TEST(StatsUtil, RelativeError)
{
    EXPECT_DOUBLE_EQ(relativeError(110.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(90.0, 100.0), 0.1);
    EXPECT_DOUBLE_EQ(relativeError(5.0, 0.0), 5.0);
}

TEST(StatsUtil, Pearson)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> yUp = {2, 4, 6, 8, 10};
    std::vector<double> yDown = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearson(x, yUp), 1.0, 1e-12);
    EXPECT_NEAR(pearson(x, yDown), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(pearson(x, {1, 1, 1, 1, 1}), 0.0);
}

} // namespace
} // namespace splab
