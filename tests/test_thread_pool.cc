/**
 * @file
 * Unit tests for the deterministic fork-join layer: full index
 * coverage, index-ordered collection, exception propagation, empty
 * ranges, nesting, and the fixed-chunk decomposition that underpins
 * bit-identical parallel reductions.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "support/thread_pool.hh"

namespace splab
{
namespace
{

TEST(ThreadPool, ForEachVisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 10000;
    std::vector<std::atomic<int>> visits(n);
    std::function<void(std::size_t)> fn = [&](std::size_t i) {
        visits[i].fetch_add(1);
    };
    pool.forEach(n, fn);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyRangeIsANoop)
{
    ThreadPool pool(4);
    bool ran = false;
    std::function<void(std::size_t)> fn = [&](std::size_t) {
        ran = true;
    };
    pool.forEach(0, fn);
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::thread::id self = std::this_thread::get_id();
    std::function<void(std::size_t)> fn = [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), self);
    };
    pool.forEach(64, fn);
}

TEST(ThreadPool, ParallelMapCollectsByIndex)
{
    ThreadPool::setGlobalThreads(4);
    auto out = parallelMap<std::size_t>(
        1000, [](std::size_t i) { return i * i; });
    ThreadPool::setGlobalThreads(0);
    ASSERT_EQ(out.size(), 1000u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, LowestIndexExceptionPropagates)
{
    ThreadPool pool(4);
    std::function<void(std::size_t)> fn = [](std::size_t i) {
        if (i == 3 || i == 700)
            throw std::runtime_error("boom " + std::to_string(i));
    };
    // Completion order varies across runs; the rethrown exception
    // must still deterministically be the lowest failing index.
    try {
        pool.forEach(1000, fn);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "boom 3");
    }
}

TEST(ThreadPool, PoolSurvivesAnException)
{
    ThreadPool pool(4);
    std::function<void(std::size_t)> bad = [](std::size_t) {
        throw std::runtime_error("x");
    };
    EXPECT_THROW(pool.forEach(8, bad), std::runtime_error);
    std::atomic<int> count{0};
    std::function<void(std::size_t)> good = [&](std::size_t) {
        count.fetch_add(1);
    };
    pool.forEach(100, good);
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, NestedForEachRunsInlineWithoutDeadlock)
{
    ThreadPool::setGlobalThreads(4);
    constexpr std::size_t outer = 16, inner = 32;
    std::vector<std::vector<int>> hits(
        outer, std::vector<int>(inner, 0));
    parallelFor(outer, [&](std::size_t o) {
        parallelFor(inner, [&](std::size_t i) { ++hits[o][i]; });
    });
    ThreadPool::setGlobalThreads(0);
    for (const auto &row : hits)
        for (int h : row)
            EXPECT_EQ(h, 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesPool)
{
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(parallelThreads(), 3u);
    ThreadPool::setGlobalThreads(1);
    EXPECT_EQ(parallelThreads(), 1u);
    ThreadPool::setGlobalThreads(0);
    EXPECT_GE(parallelThreads(), 1u);
}

TEST(FixedChunks, CoversRangeExactlyOnce)
{
    for (std::size_t n : {0ul, 1ul, 255ul, 256ul, 257ul, 10000ul}) {
        auto chunks = fixedChunks(n, 256);
        std::size_t covered = 0;
        std::size_t expectedBegin = 0;
        for (const auto &c : chunks) {
            EXPECT_EQ(c.begin, expectedBegin);
            EXPECT_GT(c.end, c.begin);
            covered += c.size();
            expectedBegin = c.end;
        }
        EXPECT_EQ(covered, n);
        if (!chunks.empty())
            EXPECT_EQ(chunks.back().end, n);
    }
}

TEST(FixedChunks, DecompositionIgnoresThreadCount)
{
    // The property the determinism contract rests on: the chunk
    // boundaries are a pure function of (n, chunkSize).
    auto a = fixedChunks(12345, 512);
    ThreadPool::setGlobalThreads(7);
    auto b = fixedChunks(12345, 512);
    ThreadPool::setGlobalThreads(0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].begin, b[i].begin);
        EXPECT_EQ(a[i].end, b[i].end);
    }
}

TEST(FixedChunks, ChunkOrderReductionIsThreadCountInvariant)
{
    // End-to-end miniature of the pattern used by k-means and
    // finalize: per-chunk partial sums reduced in chunk order must
    // be bit-identical for 1, 2 and 8 threads.
    std::vector<double> xs(40000);
    for (std::size_t i = 0; i < xs.size(); ++i)
        xs[i] = 1.0 / (1.0 + static_cast<double>(i));

    auto sumWithThreads = [&](std::size_t t) {
        ThreadPool::setGlobalThreads(t);
        auto chunks = fixedChunks(xs.size(), 256);
        std::vector<double> partial(chunks.size(), 0.0);
        parallelFor(chunks.size(), [&](std::size_t ci) {
            double s = 0.0;
            for (std::size_t i = chunks[ci].begin;
                 i < chunks[ci].end; ++i)
                s += xs[i];
            partial[ci] = s;
        });
        double total = 0.0;
        for (double p : partial)
            total += p;
        return total;
    };
    double s1 = sumWithThreads(1);
    double s2 = sumWithThreads(2);
    double s8 = sumWithThreads(8);
    ThreadPool::setGlobalThreads(0);
    // Bit-identical, not approximately equal.
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s8);
}

} // namespace
} // namespace splab
