/**
 * @file
 * Tests for the triangle-inequality-accelerated clustering kernels.
 *
 * The acceleration contract is *exact equality*, not approximation:
 * with SPLAB_KMEANS_ACCEL on, every fit, nearest-centroid scan and
 * whole-pipeline SimPoint selection must be bit-identical to the
 * brute-force path at any SPLAB_THREADS — so these tests compare
 * doubles with memcmp, not EXPECT_NEAR.  The work tallies
 * (kmeans.distances_computed / distances_pruned / bound_fallbacks)
 * are deterministic counters and are asserted to be thread-count
 * invariant as well.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "core/pipeline.hh"
#include "obs/counters.hh"
#include "simpoint/simpoint.hh"
#include "support/env.hh"
#include "support/rng.hh"
#include "support/serialize.hh"
#include "support/thread_pool.hh"

namespace splab
{
namespace
{

/** Scoped SPLAB_KMEANS_ACCEL setter; restores the default (on). */
class AccelGuard
{
  public:
    explicit AccelGuard(bool on)
    {
        ::setenv("SPLAB_KMEANS_ACCEL", on ? "1" : "0", 1);
    }

    ~AccelGuard() { ::setenv("SPLAB_KMEANS_ACCEL", "1", 1); }
};

/** Scoped global-pool resize; restores the environment default. */
class ThreadsGuard
{
  public:
    explicit ThreadsGuard(std::size_t n)
    {
        ThreadPool::setGlobalThreads(n);
    }

    ~ThreadsGuard() { ThreadPool::setGlobalThreads(0); }
};

/** Byte-level equality of two fits — the acceleration contract. */
void
expectBitIdentical(const KMeansResult &a, const KMeansResult &b)
{
    ASSERT_EQ(a.k, b.k);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.clusterSize, b.clusterSize);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(std::memcmp(&a.distortion, &b.distortion,
                          sizeof(double)),
              0);
    ASSERT_EQ(a.centroids.rows(), b.centroids.rows());
    ASSERT_EQ(a.centroids.cols(), b.centroids.cols());
    for (std::size_t r = 0; r < a.centroids.rows(); ++r)
        EXPECT_EQ(std::memcmp(a.centroids.row(r), b.centroids.row(r),
                              a.centroids.cols() * sizeof(double)),
                  0)
            << "centroid row " << r << " differs";
}

std::vector<std::vector<double>>
gaussianBlobs(u32 clusters, u32 perCluster, double spread, u64 seed,
              std::size_t dim = 8)
{
    Rng rng(seed);
    std::vector<std::vector<double>> pts;
    for (u32 c = 0; c < clusters; ++c) {
        std::vector<double> centre(dim);
        for (auto &x : centre)
            x = rng.uniform(-10.0, 10.0);
        for (u32 i = 0; i < perCluster; ++i) {
            std::vector<double> p(dim);
            for (std::size_t d = 0; d < dim; ++d)
                p[d] = centre[d] + spread * rng.gaussian();
            pts.push_back(std::move(p));
        }
    }
    return pts;
}

struct KernelDeltas
{
    u64 computed = 0;
    u64 pruned = 0;
    u64 fallbacks = 0;
};

/** Counter deltas of the kmeans.* distance-kernel family across
 *  @p body (the counters are process-global and monotonic). */
template <typename Fn>
KernelDeltas
kernelDeltas(Fn &&body)
{
    obs::Counter &c = obs::counter("kmeans.distances_computed");
    obs::Counter &p = obs::counter("kmeans.distances_pruned");
    obs::Counter &f = obs::counter("kmeans.bound_fallbacks");
    u64 c0 = c.value(), p0 = p.value(), f0 = f.value();
    body();
    return {c.value() - c0, p.value() - p0, f.value() - f0};
}

TEST(KMeansAccel, FitBitIdenticalToBruteAcrossK)
{
    auto pts = gaussianBlobs(6, 60, 0.4, 11);
    for (u32 k : {1u, 2u, 3u, 5u, 8u, 16u}) {
        KMeansResult brute, accel;
        {
            AccelGuard off(false);
            brute = kmeansFit(pts, k, 7);
        }
        {
            AccelGuard on(true);
            accel = kmeansFit(pts, k, 7);
        }
        SCOPED_TRACE("k=" + std::to_string(k));
        expectBitIdentical(brute, accel);
    }
}

TEST(KMeansAccel, BestOfBitIdentical)
{
    auto pts = gaussianBlobs(4, 80, 0.6, 19);
    KMeansResult brute, accel;
    {
        AccelGuard off(false);
        brute = kmeansBestOf(pts, 6, 3, 4);
    }
    {
        AccelGuard on(true);
        accel = kmeansBestOf(pts, 6, 3, 4);
    }
    expectBitIdentical(brute, accel);
}

TEST(KMeansAccel, DuplicatePointsAndTiesBitIdentical)
{
    // Worst case for tie-breaking: many exactly coincident points
    // and a symmetric grid where several centroids end up exactly
    // equidistant from a point.  The brute scan resolves every tie
    // by lowest index; pruning must never change that.
    std::vector<std::vector<double>> pts;
    for (int rep = 0; rep < 20; ++rep)
        for (double x : {-1.0, 0.0, 1.0})
            for (double y : {-1.0, 0.0, 1.0})
                pts.push_back({x, y});
    for (u32 k : {2u, 3u, 4u, 9u}) {
        KMeansResult brute, accel;
        {
            AccelGuard off(false);
            brute = kmeansFit(pts, k, 1);
        }
        {
            AccelGuard on(true);
            accel = kmeansFit(pts, k, 1);
        }
        SCOPED_TRACE("k=" + std::to_string(k));
        expectBitIdentical(brute, accel);
    }
}

TEST(KMeansAccel, PruningEngagesAndSavesWork)
{
    auto pts = gaussianBlobs(8, 100, 0.1, 29);
    KernelDeltas brute, accel;
    {
        AccelGuard off(false);
        brute = kernelDeltas([&] { kmeansFit(pts, 16, 5); });
    }
    {
        AccelGuard on(true);
        accel = kernelDeltas([&] { kmeansFit(pts, 16, 5); });
    }
    // Brute force never prunes and never consults bounds.
    EXPECT_EQ(brute.pruned, 0u);
    EXPECT_EQ(brute.fallbacks, 0u);
    // The accelerated fit must actually skip work, and skip more
    // than its bound-maintenance overhead costs.
    EXPECT_GT(accel.pruned, 0u);
    EXPECT_LT(accel.computed, brute.computed);
}

TEST(KMeansAccel, KnobReReadPerFit)
{
    // The env knob is consulted per fit, so one process can compare
    // both paths without re-exec.
    auto pts = gaussianBlobs(4, 50, 0.2, 37);
    {
        AccelGuard off(false);
        KernelDeltas d = kernelDeltas([&] { kmeansFit(pts, 8, 2); });
        EXPECT_EQ(d.pruned, 0u);
    }
    {
        AccelGuard on(true);
        KernelDeltas d = kernelDeltas([&] { kmeansFit(pts, 8, 2); });
        EXPECT_GT(d.pruned, 0u);
    }
}

TEST(KMeansAccel, CountersThreadCountInvariant)
{
    // The work tallies are pure functions of the data and the bound
    // state — never of scheduling — so they are part of the
    // deterministic manifest section.  Assert the deltas (and the
    // fit bytes) are identical at 1, 2 and 8 threads.
    auto pts = gaussianBlobs(5, 120, 0.3, 43);
    AccelGuard on(true);
    KMeansResult ref;
    KernelDeltas refDeltas;
    bool first = true;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadsGuard tg(threads);
        KMeansResult r;
        KernelDeltas d =
            kernelDeltas([&] { r = kmeansFit(pts, 10, 9); });
        if (first) {
            ref = r;
            refDeltas = d;
            first = false;
            continue;
        }
        SCOPED_TRACE("threads=" + std::to_string(threads));
        expectBitIdentical(ref, r);
        EXPECT_EQ(d.computed, refDeltas.computed);
        EXPECT_EQ(d.pruned, refDeltas.pruned);
        EXPECT_EQ(d.fallbacks, refDeltas.fallbacks);
    }
}

TEST(NearestCentroids, MatchesBruteScanExactly)
{
    Rng rng(51);
    DenseMatrix cents(12, 6);
    for (std::size_t r = 0; r < cents.rows(); ++r)
        for (std::size_t c = 0; c < cents.cols(); ++c)
            cents.at(r, c) = rng.uniform(-5.0, 5.0);

    DistanceKernelStats stats;
    NearestCentroids pruned(cents, true, &stats);
    NearestCentroids brute(cents, false);
    EXPECT_TRUE(pruned.pruning());
    EXPECT_FALSE(brute.pruning());

    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> p(6);
        for (auto &x : p)
            x = rng.uniform(-6.0, 6.0);
        DistanceKernelStats sp, sb;
        double dPruned = 0.0, dBrute = 0.0;
        u32 cPruned = pruned.nearest(p.data(), dPruned, sp);
        u32 cBrute = brute.nearest(p.data(), dBrute, sb);
        EXPECT_EQ(cPruned, cBrute);
        EXPECT_EQ(std::memcmp(&dPruned, &dBrute, sizeof(double)), 0);
        // The brute scan computes every candidate.
        EXPECT_EQ(sb.computed, cents.rows());
        EXPECT_EQ(sp.computed + sp.pruned, cents.rows());
    }
}

TEST(NearestCentroids, SingleCentroidNeverPrunes)
{
    DenseMatrix cents(1, 4);
    NearestCentroids nc(cents, true);
    EXPECT_FALSE(nc.pruning());
    std::vector<double> p = {1.0, 2.0, 3.0, 4.0};
    DistanceKernelStats st;
    double d = 0.0;
    EXPECT_EQ(nc.nearest(p.data(), d, st), 0u);
    EXPECT_EQ(d, 30.0);
    EXPECT_EQ(st.pruned, 0u);
}

/** Synthesize per-slice BBVs with a known phase structure. */
std::vector<FrequencyVector>
phasedBbvs(const std::vector<double> &weights, u32 slices, u64 seed)
{
    Rng rng(seed);
    std::vector<double> cdf(weights.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        cdf[i] = acc;
    }
    for (auto &c : cdf)
        c /= acc;
    std::vector<FrequencyVector> out;
    for (u32 s = 0; s < slices; ++s) {
        auto phase = sampleCdf(cdf.data(), cdf.size(), rng.uniform());
        FrequencyVector v;
        for (u32 b = 0; b < 12; ++b) {
            double w = 1.0 + 0.05 * rng.gaussian();
            v.entries.push_back(
                {static_cast<u32>(phase * 12 + b),
                 static_cast<float>(w < 0.01 ? 0.01 : w)});
        }
        out.push_back(std::move(v));
    }
    return out;
}

std::vector<u8>
selectionBytes(const std::vector<FrequencyVector> &bbvs,
               const SimPointConfig &cfg)
{
    ByteWriter w;
    serializeSimPoints(w, pickSimPoints(bbvs, cfg));
    return w.bytes();
}

TEST(SimPointAccel, WholePipelineBytesInvariant)
{
    // End-to-end SimPoint selection — sub-sampled k-sweep, BIC pick,
    // whole-run slice assignment — serialized and byte-compared:
    // accel on/off and every thread count must agree exactly, which
    // is what keeps cached artifact bytes stable with no salt bump.
    auto bbvs = phasedBbvs({0.4, 0.3, 0.2, 0.1}, 500, 67);
    SimPointConfig cfg;
    cfg.maxK = 10;
    std::vector<u8> ref;
    {
        AccelGuard off(false);
        ref = selectionBytes(bbvs, cfg);
    }
    ASSERT_FALSE(ref.empty());
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadsGuard tg(threads);
        AccelGuard on(true);
        SCOPED_TRACE("threads=" + std::to_string(threads));
        EXPECT_EQ(selectionBytes(bbvs, cfg), ref);
    }
}

TEST(SimPointAccel, PipelinePruningEngages)
{
    auto bbvs = phasedBbvs({0.5, 0.3, 0.2}, 600, 71);
    SimPointConfig cfg;
    cfg.maxK = 12;
    AccelGuard on(true);
    KernelDeltas d =
        kernelDeltas([&] { pickSimPoints(bbvs, cfg); });
    EXPECT_GT(d.pruned, 0u);
    EXPECT_GT(d.computed, 0u);
}

TEST(KMeansResult, AvgClusterVarianceBoundaries)
{
    DenseMatrix pts = DenseMatrix::fromRows(
        {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}});

    // k == 0 and empty inputs are defined as zero, not UB.
    KMeansResult zero;
    EXPECT_EQ(zero.avgClusterVariance(pts), 0.0);
    KMeansResult fitted;
    fitted.k = 1;
    EXPECT_EQ(fitted.avgClusterVariance(DenseMatrix()), 0.0);

    // An empty cluster contributes nothing: the average runs over
    // live clusters only, so it must not drag the mean toward zero
    // (nor divide by its zero population).
    KMeansResult r;
    r.k = 2;
    r.assignment = {0, 0, 0};
    r.clusterSize = {3, 0};
    r.centroids.reset(2, 2);
    double perPoint =
        (squaredDistance(pts.row(0), r.centroids.row(0), 2) +
         squaredDistance(pts.row(1), r.centroids.row(0), 2) +
         squaredDistance(pts.row(2), r.centroids.row(0), 2)) /
        3.0;
    EXPECT_DOUBLE_EQ(r.avgClusterVariance(pts), perPoint);
}

SimPointResult
weightedResult(const std::vector<double> &weights)
{
    SimPointResult r;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        SimPoint p;
        p.slice = static_cast<SliceIndex>(i);
        p.weight = weights[i];
        p.cluster = static_cast<u32>(i);
        r.points.push_back(p);
    }
    return r;
}

TEST(SimPointResult, TopByWeightQuantileBoundaries)
{
    SimPointResult r = weightedResult({0.5, 0.3, 0.2});

    // Exact hit: the cumulative weight equals quantile * total.
    EXPECT_EQ(r.topByWeight(0.8).size(), 2u);
    // Within the 1e-12 epsilon below the threshold: still a hit —
    // float noise in the weight sum must not drag in an extra point.
    EXPECT_EQ(r.topByWeight(0.8 + 1e-13).size(), 2u);
    // Clearly above the epsilon: the next point is required.
    EXPECT_EQ(r.topByWeight(0.8 + 1e-9).size(), 3u);
    // Degenerate quantiles.
    EXPECT_EQ(r.topByWeight(0.0).size(), 1u);
    EXPECT_EQ(r.topByWeight(1.0).size(), 3u);
    // No points -> no selection (and no crash).
    EXPECT_TRUE(SimPointResult().topByWeight(0.9).empty());
}

TEST(SimPointResult, TopByWeightTieOrderIsDeterministic)
{
    // Equal weights tie-break by ascending slice index, so the kept
    // prefix is stable across runs.
    SimPointResult r = weightedResult({0.25, 0.25, 0.25, 0.25});
    auto kept = r.topByWeight(0.5);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0].slice, 0u);
    EXPECT_EQ(kept[1].slice, 1u);
}

} // namespace
} // namespace splab
