/**
 * @file
 * Unit tests for the benchmark-subsetting extension (hierarchical
 * clustering of suite-level feature vectors).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/subsetting.hh"
#include "support/rng.hh"

namespace splab
{
namespace
{

BenchmarkFeatures
feat(const std::string &name, std::vector<double> v)
{
    BenchmarkFeatures f;
    f.name = name;
    f.values = std::move(v);
    return f;
}

std::vector<BenchmarkFeatures>
twoFamilies()
{
    // Family A around (0,0,1); family B around (5,5,0).
    Rng rng(3);
    std::vector<BenchmarkFeatures> fs;
    for (int i = 0; i < 4; ++i)
        fs.push_back(feat("a" + std::to_string(i),
                          {0.0 + 0.05 * rng.gaussian(),
                           0.0 + 0.05 * rng.gaussian(), 1.0}));
    for (int i = 0; i < 4; ++i)
        fs.push_back(feat("b" + std::to_string(i),
                          {5.0 + 0.05 * rng.gaussian(),
                           5.0 + 0.05 * rng.gaussian(), 0.0}));
    return fs;
}

TEST(Subsetting, SeparatesObviousFamilies)
{
    auto fs = twoFamilies();
    SuiteSubset s = subsetSuite(fs, 2);
    ASSERT_EQ(s.clusterCount(), 2u);
    // All of family A in one cluster, all of family B in the other.
    for (int i = 1; i < 4; ++i)
        EXPECT_EQ(s.assignment[i], s.assignment[0]);
    for (int i = 5; i < 8; ++i)
        EXPECT_EQ(s.assignment[i], s.assignment[4]);
    EXPECT_NE(s.assignment[0], s.assignment[4]);
}

TEST(Subsetting, RepresentativesBelongToTheirClusters)
{
    auto fs = twoFamilies();
    SuiteSubset s = subsetSuite(fs, 3);
    std::set<u32> reps(s.representatives.begin(),
                       s.representatives.end());
    EXPECT_EQ(reps.size(), 3u);
    // Every cluster id is represented exactly once.
    std::set<u32> clusters;
    for (u32 r : s.representatives)
        clusters.insert(s.assignment[r]);
    EXPECT_EQ(clusters.size(), 3u);
}

TEST(Subsetting, ClusterCountClamped)
{
    auto fs = twoFamilies();
    EXPECT_EQ(subsetSuite(fs, 100).clusterCount(), fs.size());
    EXPECT_EQ(subsetSuite(fs, 0).clusterCount(), 1u);
    EXPECT_EQ(subsetSuite(fs, 1).clusterCount(), 1u);
}

TEST(Subsetting, ErrorDecreasesWithSubsetSize)
{
    Rng rng(11);
    std::vector<BenchmarkFeatures> fs;
    for (int i = 0; i < 12; ++i)
        fs.push_back(feat("x" + std::to_string(i),
                          {rng.uniform(0, 10), rng.uniform(0, 10),
                           rng.uniform(0, 10)}));
    double prev = 1e300;
    for (std::size_t k : {1u, 3u, 6u, 12u}) {
        SuiteSubset s = subsetSuite(fs, k);
        double err = subsetRepresentationError(fs, s);
        EXPECT_LE(err, prev + 1e-9) << "k=" << k;
        prev = err;
    }
    // Full subset represents perfectly.
    SuiteSubset full = subsetSuite(fs, 12);
    EXPECT_NEAR(subsetRepresentationError(fs, full), 0.0, 1e-12);
}

TEST(Subsetting, ConstantFeatureColumnIsHarmless)
{
    // A feature that never varies must not produce NaNs.
    std::vector<BenchmarkFeatures> fs = {
        feat("a", {1.0, 7.0}), feat("b", {2.0, 7.0}),
        feat("c", {9.0, 7.0})};
    SuiteSubset s = subsetSuite(fs, 2);
    EXPECT_EQ(s.clusterCount(), 2u);
    double err = subsetRepresentationError(fs, s);
    EXPECT_TRUE(std::isfinite(err));
}

TEST(Subsetting, MakeFeaturesPullsTheRightNumbers)
{
    CacheRunMetrics cache;
    cache.mixFrac = {0.5, 0.3, 0.15, 0.05};
    cache.l1d = {100, 10};
    cache.l2 = {10, 5};
    cache.l3 = {5, 4};
    TimingRunMetrics timing;
    timing.instrs = 1000;
    timing.cycles = 1500;
    timing.branches = 100;
    timing.mispredicts = 7;
    BenchmarkFeatures f = makeFeatures("t", cache, timing);
    ASSERT_EQ(f.values.size(), 9u);
    EXPECT_DOUBLE_EQ(f.values[0], 0.5);
    EXPECT_DOUBLE_EQ(f.values[4], 0.1);  // L1D miss
    EXPECT_DOUBLE_EQ(f.values[6], 0.8);  // L3 miss
    EXPECT_DOUBLE_EQ(f.values[7], 1.5);  // CPI
    EXPECT_DOUBLE_EQ(f.values[8], 0.07); // mispredict rate
}

} // namespace
} // namespace splab
