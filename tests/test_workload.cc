/**
 * @file
 * Unit and invariant tests for the synthetic workload substrate:
 * kernels, schedules, phases and the chunk-deterministic executor.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/rng.hh"
#include "support/serialize.hh"
#include "workload/kernels.hh"
#include "workload/schedule.hh"
#include "workload/suite.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

KernelConfig
kernelConfig(KernelKind kind, u64 ws = 1 << 20)
{
    KernelConfig c;
    c.kind = kind;
    c.base = 0x200000000ULL;
    c.workingSet = ws;
    return c;
}

TEST(Kernels, AllKindsStayInsideWorkingSet)
{
    for (u8 k = 0; k < kNumKernelKinds; ++k) {
        KernelConfig c =
            kernelConfig(static_cast<KernelKind>(k), 1 << 20);
        auto kern = makeKernel(c, 99);
        for (u64 chunk : {0ULL, 5ULL, 1000ULL}) {
            kern->beginChunk(chunk);
            for (int i = 0; i < 500; ++i) {
                Addr r = kern->nextRead();
                Addr w = kern->nextWrite();
                EXPECT_GE(r, c.base) << kernelKindName(c.kind);
                EXPECT_LT(r, c.base + c.workingSet)
                    << kernelKindName(c.kind);
                EXPECT_GE(w, c.base) << kernelKindName(c.kind);
                EXPECT_LT(w, c.base + c.workingSet)
                    << kernelKindName(c.kind);
            }
        }
    }
}

TEST(Kernels, ChunkStreamsAreDeterministic)
{
    for (u8 k = 0; k < kNumKernelKinds; ++k) {
        KernelConfig c = kernelConfig(static_cast<KernelKind>(k));
        auto k1 = makeKernel(c, 7);
        auto k2 = makeKernel(c, 7);
        // Execute different histories, then the same chunk: streams
        // must match (slice-addressable determinism).
        k1->beginChunk(3);
        for (int i = 0; i < 100; ++i)
            k1->nextRead();
        k1->beginChunk(17);
        k2->beginChunk(17);
        for (int i = 0; i < 200; ++i) {
            EXPECT_EQ(k1->nextRead(), k2->nextRead())
                << kernelKindName(c.kind);
            EXPECT_EQ(k1->nextWrite(), k2->nextWrite())
                << kernelKindName(c.kind);
        }
    }
}

TEST(Kernels, SeedChangesTheStream)
{
    KernelConfig c = kernelConfig(KernelKind::RandomUniform);
    auto k1 = makeKernel(c, 1);
    auto k2 = makeKernel(c, 2);
    k1->beginChunk(0);
    k2->beginChunk(0);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += k1->nextRead() == k2->nextRead();
    EXPECT_LT(same, 5);
}

TEST(Kernels, StreamKernelIsSequential)
{
    KernelConfig c = kernelConfig(KernelKind::Stream);
    auto k = makeKernel(c, 3);
    k->beginChunk(0);
    Addr prev = k->nextRead();
    for (int i = 0; i < 100; ++i) {
        Addr a = k->nextRead();
        EXPECT_EQ(a, prev + 8);
        prev = a;
    }
}

TEST(Kernels, PointerChaseVisitsManyDistinctLines)
{
    KernelConfig c = kernelConfig(KernelKind::PointerChase, 1 << 18);
    auto k = makeKernel(c, 3);
    k->beginChunk(0);
    std::set<Addr> lines;
    for (int i = 0; i < 2000; ++i)
        lines.insert(k->nextRead() / 64);
    // A dependent chain over 4096 slots should not revisit early.
    EXPECT_GT(lines.size(), 1500u);
}

TEST(Kernels, ZipfConcentratesInHotSet)
{
    KernelConfig c = kernelConfig(KernelKind::ZipfHotCold, 1 << 24);
    c.hotFraction = 0.01;
    c.hotProbability = 0.9;
    auto k = makeKernel(c, 3);
    k->beginChunk(0);
    u64 hot = 0, n = 20000;
    for (u64 i = 0; i < n; ++i) {
        Addr a = k->nextRead() - c.base;
        if (a < (1 << 18)) // 1% of 16 MiB, rounded to a power of 2
            ++hot;
    }
    EXPECT_GT(static_cast<double>(hot) / static_cast<double>(n), 0.8);
}

TEST(Schedule, ContiguousCoversInOrder)
{
    PhaseSchedule s(ScheduleKind::Contiguous, {0.5, 0.3, 0.2}, 1000,
                    0, 1);
    EXPECT_EQ(s.phaseOf(0), 0u);
    EXPECT_EQ(s.phaseOf(499), 0u);
    EXPECT_EQ(s.phaseOf(500), 1u);
    EXPECT_EQ(s.phaseOf(999), 2u);
    auto w = s.realizedWeights();
    EXPECT_NEAR(w[0], 0.5, 0.01);
    EXPECT_NEAR(w[1], 0.3, 0.01);
    EXPECT_NEAR(w[2], 0.2, 0.01);
}

TEST(Schedule, InterleavedRotates)
{
    PhaseSchedule s(ScheduleKind::Interleaved, {0.5, 0.5}, 1000, 10,
                    1);
    // Must alternate between the two phases repeatedly.
    int transitions = 0;
    for (u64 c = 1; c < 1000; ++c)
        transitions += s.phaseOf(c) != s.phaseOf(c - 1);
    EXPECT_GT(transitions, 10);
    auto w = s.realizedWeights();
    EXPECT_NEAR(w[0], 0.5, 0.05);
}

TEST(Schedule, MarkovRealizesWeights)
{
    std::vector<double> target = {0.6, 0.25, 0.1, 0.05};
    PhaseSchedule s(ScheduleKind::Markov, target, 200000, 50, 7);
    auto w = s.realizedWeights();
    ASSERT_EQ(w.size(), target.size());
    for (std::size_t p = 0; p < target.size(); ++p)
        EXPECT_NEAR(w[p], target[p], 0.05) << "phase " << p;
}

TEST(Schedule, MarkovIsDeterministicInSeed)
{
    PhaseSchedule a(ScheduleKind::Markov, {0.4, 0.6}, 5000, 30, 9);
    PhaseSchedule b(ScheduleKind::Markov, {0.4, 0.6}, 5000, 30, 9);
    ASSERT_EQ(a.segments().size(), b.segments().size());
    for (std::size_t i = 0; i < a.segments().size(); ++i) {
        EXPECT_EQ(a.segments()[i].firstChunk,
                  b.segments()[i].firstChunk);
        EXPECT_EQ(a.segments()[i].phase, b.segments()[i].phase);
    }
}

TEST(Schedule, PhaseOfMatchesSegments)
{
    PhaseSchedule s(ScheduleKind::Markov, {0.3, 0.3, 0.4}, 10000, 40,
                    11);
    const auto &segs = s.segments();
    for (std::size_t i = 0; i + 1 < segs.size(); i += 7) {
        EXPECT_EQ(s.phaseOf(segs[i].firstChunk), segs[i].phase);
        if (segs[i + 1].firstChunk > 0) {
            EXPECT_EQ(s.phaseOf(segs[i + 1].firstChunk - 1),
                      segs[i].phase);
        }
    }
}

BenchmarkSpec
tinySpec(u64 chunks = 500)
{
    BenchmarkSpec spec;
    spec.name = "tiny";
    spec.seed = 1234;
    spec.totalChunks = chunks;
    spec.chunkLen = 1000;
    PhaseSpec a;
    a.name = "hot";
    a.weight = 0.7;
    a.kernel = KernelKind::ZipfHotCold;
    a.workingSetBytes = 1 << 20;
    PhaseSpec b;
    b.name = "scan";
    b.weight = 0.3;
    b.kernel = KernelKind::Stream;
    b.workingSetBytes = 8 << 20;
    b.numBlocks = 10;
    spec.phases = {a, b};
    spec.schedule = ScheduleKind::Markov;
    spec.dwellChunks = 25;
    return spec;
}

/** Records the full event stream for equality comparison. */
class RecordingSink : public EventSink
{
  public:
    struct Event
    {
        BlockRecord rec;
        std::vector<MemAccess> accs;
        bool hasBranch = false;
        BranchRecord br;
    };

    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *br) override
    {
        Event e;
        e.rec = rec;
        e.accs.assign(accs, accs + nAccs);
        if (br) {
            e.hasBranch = true;
            e.br = *br;
        }
        events.push_back(std::move(e));
    }

    std::vector<Event> events;
};

bool
sameStream(const std::vector<RecordingSink::Event> &a,
           const std::vector<RecordingSink::Event> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const auto &x = a[i];
        const auto &y = b[i];
        if (x.rec.bb != y.rec.bb || x.rec.instrs != y.rec.instrs ||
            x.accs.size() != y.accs.size() ||
            x.hasBranch != y.hasBranch)
            return false;
        for (std::size_t j = 0; j < x.accs.size(); ++j)
            if (x.accs[j].addr != y.accs[j].addr ||
                x.accs[j].isWrite != y.accs[j].isWrite)
                return false;
        if (x.hasBranch &&
            (x.br.taken != y.br.taken || x.br.pc != y.br.pc))
            return false;
    }
    return true;
}

TEST(SyntheticWorkload, ChunksAreInstructionExact)
{
    SyntheticWorkload wl(tinySpec(50));
    RecordingSink sink;
    wl.run(0, 50, sink, true);
    ICount total = 0;
    for (const auto &e : sink.events)
        total += e.rec.instrs;
    EXPECT_EQ(total, 50u * 1000u);
}

TEST(SyntheticWorkload, ReplayIsBitIdentical)
{
    SyntheticWorkload wl1(tinySpec());
    SyntheticWorkload wl2(tinySpec());
    RecordingSink s1, s2;
    wl1.run(100, 40, s1, true);
    wl2.run(100, 40, s2, true);
    EXPECT_TRUE(sameStream(s1.events, s2.events));
}

TEST(SyntheticWorkload, RegionMatchesFullRunWindow)
{
    // The heart of pinball correctness: executing [120, 140) alone
    // yields exactly the same events as that window inside a full
    // run.
    SyntheticWorkload full(tinySpec(200));
    RecordingSink sFull;
    full.run(0, 200, sFull, true);

    SyntheticWorkload regional(tinySpec(200));
    RecordingSink sRegion;
    regional.run(120, 20, sRegion, true);

    // Locate the window inside the full stream by instruction count.
    std::vector<RecordingSink::Event> window;
    ICount icount = 0;
    for (const auto &e : sFull.events) {
        if (icount >= 120000 && icount < 140000)
            window.push_back(e);
        icount += e.rec.instrs;
    }
    EXPECT_TRUE(sameStream(window, sRegion.events));
}

TEST(SyntheticWorkload, BlockIdsWithinStaticTable)
{
    SyntheticWorkload wl(tinySpec(100));
    RecordingSink sink;
    wl.run(0, 100, sink, false);
    for (const auto &e : sink.events)
        EXPECT_LT(e.rec.bb, wl.numStaticBlocks());
}

TEST(SyntheticWorkload, MixTracksPhaseProfiles)
{
    SyntheticWorkload wl(tinySpec(500));
    RecordingSink sink;
    wl.run(0, 500, sink, false);
    InstrMix mix;
    for (const auto &e : sink.events)
        mix += e.rec.mix;
    auto f = mix.fractions();
    // Both phases use the default profile (~50/35/13/2).
    EXPECT_NEAR(f[0], 0.50, 0.08);
    EXPECT_NEAR(f[1], 0.35, 0.08);
    EXPECT_NEAR(f[2], 0.13, 0.05);
}

TEST(SyntheticWorkload, AddressGenerationToggleKeepsBlocks)
{
    SyntheticWorkload a(tinySpec(30)), b(tinySpec(30));
    RecordingSink sa, sb;
    a.run(0, 30, sa, true);
    b.run(0, 30, sb, false);
    ASSERT_EQ(sa.events.size(), sb.events.size());
    for (std::size_t i = 0; i < sa.events.size(); ++i) {
        EXPECT_EQ(sa.events[i].rec.bb, sb.events[i].rec.bb);
        EXPECT_EQ(sa.events[i].rec.instrs, sb.events[i].rec.instrs);
        EXPECT_TRUE(sb.events[i].accs.empty());
    }
}

TEST(SyntheticWorkload, PhasesUseDisjointBlocks)
{
    SyntheticWorkload wl(tinySpec(400));
    // Map observed blocks to the phase executing at that chunk.
    std::map<u32, std::set<u32>> phaseBlocks;
    class PhaseSink : public EventSink
    {
      public:
        PhaseSink(SyntheticWorkload &w,
                  std::map<u32, std::set<u32>> &m)
            : wl(w), map(m)
        {}
        void
        onBlock(const BlockRecord &rec, const MemAccess *,
                std::size_t, const BranchRecord *) override
        {
            u64 chunk = icount / wl.chunkLen();
            map[wl.phaseAt(chunk)].insert(rec.bb);
            icount += rec.instrs;
        }
        SyntheticWorkload &wl;
        std::map<u32, std::set<u32>> &map;
        ICount icount = 0;
    } sink(wl, phaseBlocks);
    wl.run(0, 400, sink, false);

    ASSERT_EQ(phaseBlocks.size(), 2u);
    for (u32 b : phaseBlocks[0])
        EXPECT_EQ(phaseBlocks[1].count(b), 0u);
}

TEST(BenchmarkSpec, SerializeRoundTrip)
{
    BenchmarkSpec s = tinySpec();
    ByteWriter w;
    s.serialize(w);
    ByteReader r(w.bytes());
    BenchmarkSpec t = BenchmarkSpec::deserialize(r);
    EXPECT_EQ(t.name, s.name);
    EXPECT_EQ(t.totalChunks, s.totalChunks);
    EXPECT_EQ(t.phases.size(), s.phases.size());
    EXPECT_EQ(t.contentHash(), s.contentHash());
}

TEST(BenchmarkSpec, HashSensitiveToContent)
{
    BenchmarkSpec a = tinySpec();
    BenchmarkSpec b = tinySpec();
    b.phases[0].workingSetBytes *= 2;
    EXPECT_NE(a.contentHash(), b.contentHash());
    BenchmarkSpec c = tinySpec();
    c.seed += 1;
    EXPECT_NE(a.contentHash(), c.contentHash());
}

} // namespace
} // namespace splab
