/**
 * @file
 * CI smoke check for the observability artifacts: runs a bench
 * binary (argv[1]) under SPLAB_TRACE=1 at a small workload scale,
 * then verifies that the emitted Chrome trace JSON and the run
 * manifest both parse and carry the expected structure.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hh"

namespace
{

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "smoke_obs_check: FAIL: %s\n", what);
        ++failures;
    }
}

std::string
slurp(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return "";
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: smoke_obs_check <bench-binary>\n");
        return 2;
    }
    std::string bin = argv[1];

    std::string cmd = "SPLAB_TRACE=1 SPLAB_MANIFEST=1 SPLAB_CACHE= "
                      "SPLAB_LOG=0 SPLAB_SCALE=0.05 \"" +
                      bin + "\" > /dev/null";
    int rc = std::system(cmd.c_str());
    check(rc == 0, "bench exited non-zero");

    using splab::obs::JsonValue;
    using splab::obs::parseJson;

    std::string traceText = slurp(bin + ".trace.json");
    check(!traceText.empty(), "trace JSON missing or empty");
    auto trace = parseJson(traceText);
    check(trace.has_value(), "trace JSON does not parse");
    if (trace) {
        const JsonValue *events = trace->find("traceEvents");
        check(events && events->isArray() && events->size() > 0,
              "traceEvents missing or empty");
        if (events && events->size() > 0) {
            const JsonValue &e = events->at(0);
            check(e.find("name") && e.find("ph") && e.find("ts") &&
                      e.find("dur") && e.find("pid") &&
                      e.find("tid"),
                  "trace event lacks Chrome trace_event fields");
        }
    }

    std::string maniText = slurp(bin + ".manifest.json");
    check(!maniText.empty(), "manifest missing or empty");
    auto mani = parseJson(maniText);
    check(mani.has_value(), "manifest does not parse");
    if (mani) {
        const JsonValue *schema = mani->find("schema");
        check(schema &&
                  schema->asString() == "splab-manifest-v1",
              "manifest schema tag wrong");
        check(mani->find("config") != nullptr,
              "manifest lacks config section");
        check(mani->find("counters") != nullptr,
              "manifest lacks counters section");
        const JsonValue *outs = mani->find("outputs");
        check(outs && outs->isArray() && outs->size() > 0,
              "manifest records no outputs");
    }

    if (failures == 0)
        std::printf("smoke_obs_check: OK (%s)\n", bin.c_str());
    return failures == 0 ? 0 : 1;
}
