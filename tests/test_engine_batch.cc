/**
 * @file
 * Batched event delivery and the fused whole-run measurement:
 * batching must be a pure delivery reordering (identical tool
 * statistics to per-block dispatch), the MRU cache fast path must be
 * semantically invisible, and the fused single-pass measurement must
 * be byte-identical to the separate passes it replaces.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/artifact_graph.hh"
#include "core/runs.hh"
#include "obs/counters.hh"
#include "pin/engine.hh"
#include "pin/tools/allcache.hh"
#include "pin/tools/bbv_tool.hh"
#include "pin/tools/branch_profile.hh"
#include "pin/tools/ldstmix.hh"
#include "support/serialize.hh"
#include "timing/interval_core.hh"
#include "workload/suite.hh"

namespace splab
{
namespace
{

BenchmarkSpec
smallSpec(u64 chunks = 300)
{
    BenchmarkSpec spec;
    spec.name = "batch-test";
    spec.seed = 99;
    spec.totalChunks = chunks;
    spec.chunkLen = 1000;
    PhaseSpec a;
    a.weight = 0.6;
    a.kernel = KernelKind::Stream;
    a.workingSetBytes = 4 << 20;
    PhaseSpec b;
    b.weight = 0.4;
    b.kernel = KernelKind::PointerChase;
    b.workingSetBytes = 1 << 20;
    spec.phases = {a, b};
    spec.schedule = ScheduleKind::Interleaved;
    spec.dwellChunks = 30;
    return spec;
}

/**
 * Forces per-block delivery: overrides only onBlock, so the default
 * EventSink::onBatch unpacks each chunk and the wrapped engine fans
 * out one virtual call per (block, tool) — the pre-batching path.
 */
class PerBlockFanout : public EventSink
{
  public:
    explicit PerBlockFanout(Engine &e) : engine(e) {}

    void
    onBlock(const BlockRecord &rec, const MemAccess *accs,
            std::size_t nAccs, const BranchRecord *br) override
    {
        engine.onBlock(rec, accs, nAccs, br);
    }

  private:
    Engine &engine;
};

void
expectSameCacheStats(const CacheHierarchy &a, const CacheHierarchy &b)
{
    for (CacheLevel l : {CacheLevel::L1I, CacheLevel::L1D,
                         CacheLevel::L2, CacheLevel::L3}) {
        const CacheStats &x = a.levelStats(l);
        const CacheStats &y = b.levelStats(l);
        EXPECT_EQ(x.accesses, y.accesses) << cacheLevelName(l);
        EXPECT_EQ(x.misses, y.misses) << cacheLevelName(l);
        EXPECT_EQ(x.readAccesses, y.readAccesses) << cacheLevelName(l);
        EXPECT_EQ(x.readMisses, y.readMisses) << cacheLevelName(l);
        EXPECT_EQ(x.writeAccesses, y.writeAccesses)
            << cacheLevelName(l);
        EXPECT_EQ(x.writeMisses, y.writeMisses) << cacheLevelName(l);
    }
}

TEST(EventBatching, BatchedMatchesPerBlock)
{
    // Every bundled tool, batched dispatch vs forced per-block
    // dispatch: all statistics exactly equal.
    BenchmarkSpec spec = smallSpec(200);
    const ICount slice = spec.chunkLen * 10;

    AllCacheTool cacheA(tableIConfig());
    LdStMixTool mixA;
    BranchProfileTool brA;
    IntervalCoreTool coreA(tableIIIMachine());
    BbvTool bbvA(slice);
    Engine batched;
    for (PinTool *t : std::initializer_list<PinTool *>{
             &cacheA, &mixA, &brA, &coreA, &bbvA})
        batched.attach(t);
    SyntheticWorkload wlA(spec);
    batched.runWhole(wlA);

    AllCacheTool cacheB(tableIConfig());
    LdStMixTool mixB;
    BranchProfileTool brB;
    IntervalCoreTool coreB(tableIIIMachine());
    BbvTool bbvB(slice);
    Engine perBlock;
    for (PinTool *t : std::initializer_list<PinTool *>{
             &cacheB, &mixB, &brB, &coreB, &bbvB})
        perBlock.attach(t);
    SyntheticWorkload wlB(spec);
    PerBlockFanout fanout(perBlock);
    for (PinTool *t : std::initializer_list<PinTool *>{
             &cacheB, &mixB, &brB, &coreB, &bbvB})
        t->onRunStart(wlB);
    wlB.run(0, spec.totalChunks, fanout, true);
    for (PinTool *t : std::initializer_list<PinTool *>{
             &cacheB, &mixB, &brB, &coreB, &bbvB})
        t->onRunEnd();

    expectSameCacheStats(cacheA.hierarchy(), cacheB.hierarchy());

    for (std::size_t c = 0; c < kNumMemClasses; ++c)
        EXPECT_EQ(mixA.mix().count[c], mixB.mix().count[c]);
    EXPECT_EQ(mixA.fpInstructions(), mixB.fpInstructions());

    EXPECT_EQ(brA.branchCount(), brB.branchCount());
    EXPECT_EQ(brA.takenCount(), brB.takenCount());
    EXPECT_EQ(brA.dataDependentCount(), brB.dataDependentCount());

    const TimingStats &ta = coreA.stats();
    const TimingStats &tb = coreB.stats();
    EXPECT_EQ(ta.instrs, tb.instrs);
    EXPECT_EQ(ta.cycles, tb.cycles);
    EXPECT_EQ(ta.branches, tb.branches);
    EXPECT_EQ(ta.mispredicts, tb.mispredicts);
    EXPECT_EQ(ta.l2Hits, tb.l2Hits);
    EXPECT_EQ(ta.l3Hits, tb.l3Hits);
    EXPECT_EQ(ta.memAccesses, tb.memAccesses);

    ASSERT_EQ(bbvA.vectors().size(), bbvB.vectors().size());
    for (std::size_t s = 0; s < bbvA.vectors().size(); ++s) {
        const auto &ea = bbvA.vectors()[s].entries;
        const auto &eb = bbvB.vectors()[s].entries;
        ASSERT_EQ(ea.size(), eb.size()) << "slice " << s;
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].block, eb[i].block);
            EXPECT_FLOAT_EQ(ea[i].weight, eb[i].weight);
        }
    }
}

/** Sink that checks the structural invariants of every batch. */
class InvariantSink : public EventSink
{
  public:
    void
    onBlock(const BlockRecord &, const MemAccess *, std::size_t,
            const BranchRecord *) override
    {
    }

    void
    onBatch(const EventBatch &batch) override
    {
        ++batches;
        const std::size_t n = batch.numBlocks();
        ASSERT_GT(n, 0u);
        ASSERT_EQ(batch.offsets().size(), n + 1);
        ASSERT_EQ(batch.branches().size(), n);
        ASSERT_EQ(batch.branchValid().size(), n);
        ASSERT_EQ(batch.blocks().size(), n);
        EXPECT_EQ(batch.offsets().front(), 0u);
        // The pool may retain high-water capacity; the offsets only
        // ever address the used prefix.
        EXPECT_LE(batch.offsets().back(), batch.accessPool().size());

        ICount instrSum = 0;
        std::size_t accSum = 0;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(batch.offsets()[i], batch.offsets()[i + 1]);
            instrSum += batch.block(i).instrs;
            accSum += batch.accCount(i);
            // Element accessors agree with the raw arrays.
            EXPECT_EQ(&batch.block(i), &batch.blocks()[i]);
            if (batch.accCount(i) == 0) {
                EXPECT_EQ(batch.accs(i), nullptr);
            } else {
                EXPECT_EQ(batch.accs(i), batch.accessPool().data() +
                                             batch.offsets()[i]);
            }
            if (batch.branch(i)) {
                EXPECT_EQ(batch.branch(i), &batch.branches()[i]);
                EXPECT_TRUE(batch.block(i).endsInBranch);
            }
        }
        EXPECT_EQ(batch.instrs(), instrSum);
        EXPECT_EQ(batch.offsets().back(), accSum);
        totalInstrs += instrSum;
    }

    std::size_t batches = 0;
    ICount totalInstrs = 0;
};

TEST(EventBatching, BatchLayoutInvariants)
{
    BenchmarkSpec spec = smallSpec(64);
    SyntheticWorkload wl(spec);
    InvariantSink sink;
    wl.run(0, spec.totalChunks, sink, true);
    // One batch per chunk, covering the full instruction budget.
    EXPECT_EQ(sink.batches, spec.totalChunks);
    EXPECT_EQ(sink.totalInstrs, spec.totalChunks * spec.chunkLen);
}

/** Sink that recomputes every per-chunk aggregate from the raw
 *  arrays and checks it against the precomputed accessors. */
class AggregateCheckSink : public EventSink
{
  public:
    void
    onBlock(const BlockRecord &, const MemAccess *, std::size_t,
            const BranchRecord *) override
    {
    }

    void
    onBatch(const EventBatch &batch) override
    {
        ++batches;
        InstrMix mix;
        ICount fp = 0;
        u64 branches = 0, taken = 0, dataDep = 0;
        std::map<u32, u64> sums;
        const std::size_t n = batch.numBlocks();
        for (std::size_t i = 0; i < n; ++i) {
            const BlockRecord &rec = batch.block(i);
            mix += rec.mix;
            fp += rec.fpInstrs;
            if (const BranchRecord *br = batch.branch(i)) {
                ++branches;
                taken += br->taken ? 1 : 0;
                dataDep += br->dataDependent ? 1 : 0;
            }
            sums[rec.bb] += rec.instrs;
        }
        for (std::size_t c = 0; c < kNumMemClasses; ++c)
            ASSERT_EQ(batch.mixTotal().count[c], mix.count[c]);
        ASSERT_EQ(batch.fpTotal(), fp);
        ASSERT_EQ(batch.branchTotal(), branches);
        ASSERT_EQ(batch.takenTotal(), taken);
        ASSERT_EQ(batch.dataDependentTotal(), dataDep);

        // The touched-block list names each touched block exactly
        // once, the per-block sums match a from-scratch reduction,
        // and together they cover the batch's instruction total.
        std::set<u32> seen;
        u64 total = 0;
        for (u32 b : batch.touchedBlocks()) {
            ASSERT_TRUE(seen.insert(b).second)
                << "duplicate touched block " << b;
            auto it = sums.find(b);
            ASSERT_NE(it, sums.end()) << "untouched block " << b;
            ASSERT_EQ(batch.blockInstrSum(b), it->second);
            total += it->second;
        }
        ASSERT_EQ(seen.size(), sums.size());
        ASSERT_EQ(total, batch.instrs());
    }

    std::size_t batches = 0;
};

TEST(EventBatching, ChunkAggregatesMatchPerBlockReduction)
{
    BenchmarkSpec spec = smallSpec(120);
    SyntheticWorkload wl(spec);
    AggregateCheckSink sink;
    wl.run(0, spec.totalChunks, sink, true);
    EXPECT_EQ(sink.batches, spec.totalChunks);
}

TEST(BbvToolT, HalfFullSliverBoundary)
{
    // 25 chunks at slice = 10 chunks leaves a final sliver with
    // inSlice * 2 == sliceInstrs exactly — the keep/drop boundary.
    // A half-full sliver is kept; just under half (24 chunks -> 0.4
    // of a slice) is dropped.  Both delivery grains must agree, and
    // the kept vectors must be bit-identical (the chunk-aggregate
    // BBV path reassociates exact integer-valued doubles only).
    for (u64 chunks : {u64{25}, u64{24}}) {
        BenchmarkSpec spec = smallSpec(chunks);
        const ICount slice = spec.chunkLen * 10;
        const std::size_t expectSlices = chunks == 25 ? 3 : 2;

        BbvTool batched(slice);
        Engine eb;
        eb.attach(&batched);
        SyntheticWorkload wlA(spec);
        eb.runWhole(wlA);

        BbvTool perBlock(slice);
        Engine ep;
        ep.attach(&perBlock);
        PerBlockFanout fanout(ep);
        SyntheticWorkload wlB(spec);
        perBlock.onRunStart(wlB);
        wlB.run(0, spec.totalChunks, fanout, false);
        perBlock.onRunEnd();

        ASSERT_EQ(batched.vectors().size(), expectSlices)
            << chunks << " chunks";
        ASSERT_EQ(perBlock.vectors().size(), expectSlices);
        for (std::size_t s = 0; s < expectSlices; ++s) {
            const auto &ea = batched.vectors()[s].entries;
            const auto &eb2 = perBlock.vectors()[s].entries;
            ASSERT_EQ(ea.size(), eb2.size()) << "slice " << s;
            for (std::size_t i = 0; i < ea.size(); ++i) {
                EXPECT_EQ(ea[i].block, eb2[i].block);
                // Exact, not approximate: byte-stability of the BBV
                // artifact is what keeps its cache salt unbumped.
                EXPECT_EQ(ea[i].weight, eb2[i].weight);
            }
        }
    }
}

TEST(HierarchyMemo, AccessDataMatchesMemoFreeWalk)
{
    // The absent-from-L1D memo must be semantically invisible: same
    // per-access hit levels and same per-level counters as a plain
    // L1D -> L2 -> L3 walk over memo-free caches.  Random streams
    // with a working set far above L1D capacity make missing lines
    // repeat (the memo's target case); a mid-stream flush checks the
    // memo resets with the contents.
    for (const HierarchyConfig &base :
         {tableIConfig(), tableIIIConfig()}) {
        for (ReplacementPolicy pol :
             {ReplacementPolicy::LRU, ReplacementPolicy::FIFO}) {
            HierarchyConfig cfg = base;
            cfg.l1d.replacement = pol;
            cfg.l2.replacement = pol;
            cfg.l3.replacement = pol;

            CacheHierarchy hier(cfg);
            SetAssocCache refL1d(cfg.l1d);
            SetAssocCache refL2(cfg.l2);
            SetAssocCache refL3(cfg.l3);

            u64 state = 0x9e3779b97f4a7c15ULL ^ cfg.contentHash();
            for (int i = 0; i < 200000; ++i) {
                if (i == 100000) {
                    hier.flush();
                    refL1d.flush();
                    refL2.flush();
                    refL3.flush();
                }
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Addr addr = (state % (256 * 1024)) & ~7ULL;
                bool isWrite = (state >> 21) & 1;
                HitLevel got = hier.accessData(addr, isWrite);
                HitLevel want =
                    refL1d.access(addr, isWrite) ? HitLevel::L1
                    : refL2.access(addr, isWrite)
                        ? HitLevel::L2
                        : refL3.access(addr, isWrite)
                              ? HitLevel::L3
                              : HitLevel::Memory;
                ASSERT_EQ(static_cast<int>(got),
                          static_cast<int>(want))
                    << "access " << i << " policy "
                    << replacementPolicyName(pol);
            }

            auto expectSame = [](const CacheStats &a,
                                 const CacheStats &b) {
                EXPECT_EQ(a.accesses, b.accesses);
                EXPECT_EQ(a.misses, b.misses);
                EXPECT_EQ(a.readAccesses, b.readAccesses);
                EXPECT_EQ(a.readMisses, b.readMisses);
                EXPECT_EQ(a.writeAccesses, b.writeAccesses);
                EXPECT_EQ(a.writeMisses, b.writeMisses);
            };
            expectSame(hier.levelStats(CacheLevel::L1D),
                       refL1d.statsRef());
            expectSame(hier.levelStats(CacheLevel::L2),
                       refL2.statsRef());
            expectSame(hier.levelStats(CacheLevel::L3),
                       refL3.statsRef());
            // The stream really exercised the memo's target case.
            EXPECT_GT(hier.levelStats(CacheLevel::L1D).misses, 0u);
        }
    }
}

TEST(EventBatching, EngineCountsBatches)
{
    obs::resetCounters();
    SyntheticWorkload wl(smallSpec(50));
    LdStMixTool mix;
    Engine engine;
    engine.attach(&mix);
    engine.runWhole(wl);
    auto counters = obs::counterSnapshot();
    EXPECT_EQ(counters.at("pin.batches"), 50u);
    EXPECT_GT(counters.at("pin.batch_blocks"), 50u);
    EXPECT_EQ(counters.at("pin.instrs"), 50000u);
}

/**
 * Reference cache: the pre-fast-path implementation (full way scan,
 * per-access tag-shift recomputation) with identical replacement and
 * counting semantics.
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheParams &p)
        : params(p), sets(p.numSets()), lines(sets * p.ways)
    {
    }

    bool
    access(Addr addr, bool isWrite)
    {
        u64 line = addr / params.lineBytes;
        u64 set = line % sets;
        u64 tag = line / sets;
        auto *t = &lines[set * params.ways];

        bool hit = false;
        u32 pos = 0;
        for (u32 i = 0; i < params.ways; ++i) {
            if (t[i].valid && t[i].tag == tag) {
                hit = true;
                pos = i;
                break;
            }
        }
        bool refresh =
            hit ? params.replacement == ReplacementPolicy::LRU : true;
        if (refresh) {
            u32 from = hit ? pos : params.ways - 1;
            for (u32 i = from; i > 0; --i)
                t[i] = t[i - 1];
            t[0] = {tag, true};
        }

        ++stats.accesses;
        if (isWrite) {
            ++stats.writeAccesses;
            if (!hit)
                ++stats.writeMisses;
        } else {
            ++stats.readAccesses;
            if (!hit)
                ++stats.readMisses;
        }
        if (!hit)
            ++stats.misses;
        return hit;
    }

    CacheStats stats;

  private:
    struct Line
    {
        u64 tag = 0;
        bool valid = false;
    };
    CacheParams params;
    u64 sets;
    std::vector<Line> lines;
};

TEST(CacheFastPath, MruProbeMatchesReference)
{
    // The inline MRU/tag-shift fast path against the slow reference
    // model: identical hit sequences and counters for both policies
    // and degenerate geometries (including direct-mapped, where the
    // fast path IS the whole probe).
    for (ReplacementPolicy pol :
         {ReplacementPolicy::LRU, ReplacementPolicy::FIFO}) {
        for (u32 ways : {1u, 2u, 8u}) {
            CacheParams p;
            p.name = "fastpath-test";
            p.sizeBytes = 16 * 1024;
            p.ways = ways;
            p.lineBytes = 64;
            p.replacement = pol;

            SetAssocCache fast(p);
            ReferenceCache ref(p);

            u64 state = 0x12345678 + ways;
            for (int i = 0; i < 200000; ++i) {
                // xorshift64; mask to a small range so sets collide
                // and hits dominate (exercising both probe paths).
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Addr addr = (state % (64 * 1024)) & ~7ULL;
                bool isWrite = (state >> 20) & 1;
                EXPECT_EQ(fast.access(addr, isWrite),
                          ref.access(addr, isWrite))
                    << "access " << i << " ways " << ways;
            }
            const CacheStats &s = fast.statsRef();
            EXPECT_EQ(s.accesses, ref.stats.accesses);
            EXPECT_EQ(s.misses, ref.stats.misses);
            EXPECT_EQ(s.readAccesses, ref.stats.readAccesses);
            EXPECT_EQ(s.readMisses, ref.stats.readMisses);
            EXPECT_EQ(s.writeAccesses, ref.stats.writeAccesses);
            EXPECT_EQ(s.writeMisses, ref.stats.writeMisses);
            EXPECT_GT(s.accesses, s.misses); // hits occurred
        }
    }
}

std::vector<u8>
cacheBytesNoWall(const CacheRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    for (double f : m.mixFrac)
        w.put<double>(f);
    for (const LevelCounts *lc : {&m.l1i, &m.l1d, &m.l2, &m.l3}) {
        w.put<u64>(lc->accesses);
        w.put<u64>(lc->misses);
    }
    w.put<u64>(m.branches);
    return w.bytes();
}

std::vector<u8>
timingBytesNoWall(const TimingRunMetrics &m)
{
    ByteWriter w;
    w.put<u64>(m.instrs);
    w.put<double>(m.cycles);
    w.put<u64>(m.branches);
    w.put<u64>(m.mispredicts);
    w.put<u64>(m.l2Hits);
    w.put<u64>(m.l3Hits);
    w.put<u64>(m.memAccesses);
    return w.bytes();
}

TEST(FusedWholeRun, MatchesSeparatePasses)
{
    BenchmarkSpec spec = smallSpec(250);
    HierarchyConfig caches = tableIConfig();
    MachineConfig machine = tableIIIMachine();
    const ICount slice = spec.chunkLen * 10;

    FusedWholeResult fused =
        measureWholeFused(spec, caches, machine, slice);
    CacheRunMetrics cacheOnly = measureWholeCache(spec, caches);
    TimingRunMetrics timingOnly = measureWholeTiming(spec, machine);

    EXPECT_EQ(cacheBytesNoWall(fused.cache),
              cacheBytesNoWall(cacheOnly));
    EXPECT_EQ(timingBytesNoWall(fused.timing),
              timingBytesNoWall(timingOnly));

    // The piggy-backed BBV pass matches a dedicated BBV tool run.
    SyntheticWorkload wl(spec);
    BbvTool bbv(slice);
    Engine engine;
    engine.attach(&bbv);
    engine.runWhole(wl);
    ASSERT_EQ(fused.bbvs.size(), bbv.vectors().size());
    for (std::size_t s = 0; s < fused.bbvs.size(); ++s) {
        const auto &ea = fused.bbvs[s].entries;
        const auto &eb = bbv.vectors()[s].entries;
        ASSERT_EQ(ea.size(), eb.size());
        for (std::size_t i = 0; i < ea.size(); ++i) {
            EXPECT_EQ(ea[i].block, eb[i].block);
            EXPECT_FLOAT_EQ(ea[i].weight, eb[i].weight);
        }
    }
}

TEST(FusedWholeRun, GraphProjectionsShareOneTraversal)
{
    const std::string bench = "505.mcf_r";
    obs::resetCounters();
    ArtifactGraph g(ExperimentConfig::paperDefaults(),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache("")));
    const CacheRunMetrics &wc = g.wholeCache(bench);
    const TimingRunMetrics &wt = g.wholeTiming(bench);
    const FusedWholeMetrics &fused = g.wholeFused(bench);

    // Projections are the fused node's fields, not re-measurements.
    EXPECT_EQ(cacheBytesNoWall(wc), cacheBytesNoWall(fused.cache));
    EXPECT_EQ(timingBytesNoWall(wt),
              timingBytesNoWall(fused.timing));
    auto counters = obs::counterSnapshot();
    // spec + fused + two projections; one engine window total.
    EXPECT_EQ(counters.at("graph.nodes_computed"), 4u);
    EXPECT_EQ(counters.at("pin.windows"), 1u);
}

TEST(RegionalPinball, SharedCaptureAcrossReplayKinds)
{
    // The whole-pinball capture happens once per benchmark even when
    // cold cache, warm cache and timing replays are all requested —
    // the RegionalPinball artifact is their shared upstream.
    const std::vector<std::string> benches = {"505.mcf_r"};
    ExperimentConfig cfg = ExperimentConfig::paperDefaults();
    cfg.simpoint.maxK = 4;
    obs::resetCounters();
    ArtifactGraph g(cfg, std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    g.runSuite(benches, {ArtifactKind::PointsCacheCold,
                         ArtifactKind::PointsCacheWarm,
                         ArtifactKind::PointsTiming});
    auto counters = obs::counterSnapshot();
    EXPECT_EQ(counters.at("pinball.whole_captured"), 1u);
}

} // namespace
} // namespace splab
