/**
 * @file
 * The artifact graph's contracts: Merkle key precision (every config
 * field keys exactly the artifacts it shapes), single-flight per
 * node, byte-identical values and counter snapshots at any
 * SPLAB_THREADS, and cold/warm artifact-cache coherence.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include "core/artifact_graph.hh"
#include "obs/counters.hh"
#include "support/thread_pool.hh"

namespace splab
{
namespace
{

// The graph resolves benchmarks through benchmarkByName, which bakes
// SPLAB_SCALE in on first use — set it before anything touches a
// spec so every test below runs on miniature workloads.
[[maybe_unused]] const bool kScaleSet = [] {
    setenv("SPLAB_SCALE", "0.05", 1);
    return true;
}();

/** The small benchmarks used throughout (fewest whole-run slices). */
const std::vector<std::string> kBenches = {"620.omnetpp_s",
                                           "520.omnetpp_r"};

ExperimentConfig
fastConfig()
{
    return ExperimentConfig::paperDefaults().withMaxK(6);
}

u64
keyOf(const ExperimentConfig &cfg, ArtifactKind kind)
{
    ArtifactGraph g(cfg, std::make_shared<const ArtifactCache>(
                             ArtifactCache("")));
    return g.artifactKey(kBenches[0], kind);
}

TEST(ArtifactKeys, StableAcrossGraphInstances)
{
    for (std::size_t k = 0; k < kNumArtifactKinds; ++k) {
        ArtifactKind kind = static_cast<ArtifactKind>(k);
        EXPECT_EQ(keyOf(fastConfig(), kind), keyOf(fastConfig(), kind))
            << artifactKindName(kind);
    }
}

TEST(ArtifactKeys, WarmupChunksKeysOnlyWarmedReplays)
{
    ExperimentConfig base = fastConfig();
    ExperimentConfig warmed = fastConfig().withWarmupChunks(7);

    // The warm-up length shapes warmed replays only: cold replays
    // and everything upstream must keep their cache blobs.
    EXPECT_NE(keyOf(base, ArtifactKind::PointsCacheWarm),
              keyOf(warmed, ArtifactKind::PointsCacheWarm));
    EXPECT_NE(keyOf(base, ArtifactKind::PointsTiming),
              keyOf(warmed, ArtifactKind::PointsTiming));
    EXPECT_EQ(keyOf(base, ArtifactKind::PointsCacheCold),
              keyOf(warmed, ArtifactKind::PointsCacheCold));
    EXPECT_EQ(keyOf(base, ArtifactKind::WholeCache),
              keyOf(warmed, ArtifactKind::WholeCache));
    EXPECT_EQ(keyOf(base, ArtifactKind::SimPoints),
              keyOf(warmed, ArtifactKind::SimPoints));
}

TEST(ArtifactKeys, ReplacementPolicyChangesCacheArtifactKeys)
{
    // The regression the old hand-rolled benchKey missed: it hashed
    // only sizeBytes/ways/lineBytes per level, so a replacement-
    // policy change silently reused stale blobs.
    ExperimentConfig base = fastConfig();
    ExperimentConfig fifo = fastConfig();
    fifo.allcache.l3.replacement = ReplacementPolicy::FIFO;

    EXPECT_NE(keyOf(base, ArtifactKind::WholeCache),
              keyOf(fifo, ArtifactKind::WholeCache));
    EXPECT_NE(keyOf(base, ArtifactKind::PointsCacheCold),
              keyOf(fifo, ArtifactKind::PointsCacheCold));
    // The simpoint selection and the timing machine (separate
    // hierarchy copy) do not read cfg.allcache.
    EXPECT_EQ(keyOf(base, ArtifactKind::SimPoints),
              keyOf(fifo, ArtifactKind::SimPoints));
    EXPECT_EQ(keyOf(base, ArtifactKind::WholeTiming),
              keyOf(fifo, ArtifactKind::WholeTiming));
}

TEST(ArtifactKeys, SimpointConfigCascadesToDependents)
{
    ExperimentConfig base = fastConfig();
    ExperimentConfig moreK = fastConfig().withMaxK(9);

    // Merkle keying: dependents inherit the change through their
    // upstream keys without hashing upstream *values*.
    EXPECT_NE(keyOf(base, ArtifactKind::SimPoints),
              keyOf(moreK, ArtifactKind::SimPoints));
    EXPECT_NE(keyOf(base, ArtifactKind::PointsCacheCold),
              keyOf(moreK, ArtifactKind::PointsCacheCold));
    EXPECT_NE(keyOf(base, ArtifactKind::PointsTiming),
              keyOf(moreK, ArtifactKind::PointsTiming));
    EXPECT_EQ(keyOf(base, ArtifactKind::WholeCache),
              keyOf(moreK, ArtifactKind::WholeCache));
    EXPECT_EQ(keyOf(base, ArtifactKind::Native),
              keyOf(moreK, ArtifactKind::Native));
}

TEST(ArtifactKeys, CostModelKeysNoArtifact)
{
    // The replay cost model only shapes derived report columns, so
    // no cached artifact may depend on it.
    ExperimentConfig base = fastConfig();
    ReplayCostModel cost;
    cost.wholeRate *= 2.0;
    ExperimentConfig priced = fastConfig().withCost(cost);
    for (std::size_t k = 0; k < kNumArtifactKinds; ++k) {
        ArtifactKind kind = static_cast<ArtifactKind>(k);
        EXPECT_EQ(keyOf(base, kind), keyOf(priced, kind))
            << artifactKindName(kind);
    }
    // ...but the whole-experiment hash must still see it.
    EXPECT_NE(base.contentHash(), priced.contentHash());
}

TEST(ExperimentConfigHash, EveryFieldChangesTheHash)
{
    ExperimentConfig base = fastConfig();
    std::vector<ExperimentConfig> variants;
    variants.push_back(fastConfig().withMaxK(7));
    variants.push_back(fastConfig().withSliceInstrs(
        base.simpoint.sliceInstrs + 1000));
    variants.push_back(fastConfig().withSeed(base.simpoint.seed + 1));
    variants.push_back(fastConfig().withWarmupChunks(
        base.warmupChunks + 1));
    {
        ExperimentConfig c = fastConfig();
        c.allcache.l1d.sizeBytes *= 2;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.allcache.l2.ways *= 2;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.allcache.l3.lineBytes *= 2;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.allcache.l1i.replacement = ReplacementPolicy::FIFO;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.machine.caches.l3.replacement = ReplacementPolicy::FIFO;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.machine.robEntries += 32;
        variants.push_back(c);
    }
    variants.push_back(fastConfig().withStrategy("smarts"));
    {
        // Inactive-strategy knobs still count for the whole-
        // experiment hash (per-node keys ignore them; see
        // test_sampling.cc).
        ExperimentConfig c = fastConfig();
        c.sampling.smarts.munit += 1;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.sampling.stratified.strata += 1;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.sampling.rankedSet.subsamples += 1;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.cost.regionalRate *= 1.5;
        variants.push_back(c);
    }
    {
        ExperimentConfig c = fastConfig();
        c.cost.pinballStartup += 1.0;
        variants.push_back(c);
    }

    std::set<u64> hashes = {base.contentHash()};
    for (std::size_t i = 0; i < variants.size(); ++i) {
        u64 h = variants[i].contentHash();
        EXPECT_NE(h, base.contentHash()) << "variant " << i;
        hashes.insert(h);
    }
    // All pairwise distinct, not just distinct from the baseline.
    EXPECT_EQ(hashes.size(), variants.size() + 1);
}

/** Wall-time-free bytes of every target artifact of @p g. */
std::vector<u8>
graphResultBytes(ArtifactGraph &g)
{
    ByteWriter w;
    for (const std::string &b : kBenches) {
        ByteWriter sp;
        serializeArtifact(sp, g.simpoints(b));
        w.putVector(sp.bytes());

        const CacheRunMetrics &whole = g.wholeCache(b);
        w.put<u64>(whole.instrs);
        for (double f : whole.mixFrac)
            w.put<double>(f);
        for (const LevelCounts *lc :
             {&whole.l1i, &whole.l1d, &whole.l2, &whole.l3}) {
            w.put<u64>(lc->accesses);
            w.put<u64>(lc->misses);
        }
        w.put<u64>(whole.branches);

        for (const PointCacheMetrics &p : g.pointsCacheCold(b)) {
            w.put<double>(p.weight);
            w.put<u64>(p.m.instrs);
            w.put<u64>(p.m.l3.accesses);
            w.put<u64>(p.m.l3.misses);
        }
    }
    return w.bytes();
}

TEST(ArtifactGraphScheduling, RunSuiteThreadCountInvariant)
{
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::SimPoints, ArtifactKind::WholeCache,
        ArtifactKind::PointsCacheCold};

    std::vector<std::vector<u8>> blobs;
    std::vector<std::map<std::string, u64>> counters;
    for (std::size_t threads : {1u, 2u, 8u}) {
        ThreadPool::setGlobalThreads(threads);
        obs::resetCounters();
        ArtifactGraph g(fastConfig(),
                        std::make_shared<const ArtifactCache>(
                            ArtifactCache("")));
        g.runSuite(kBenches, targets);
        blobs.push_back(graphResultBytes(g));

        std::map<std::string, u64> graphStats;
        for (const auto &kv : obs::counterSnapshot())
            if (kv.first.rfind("graph.", 0) == 0)
                graphStats[kv.first] = kv.second;
        counters.push_back(graphStats);
    }
    ThreadPool::setGlobalThreads(0);

    ASSERT_FALSE(blobs[0].empty());
    EXPECT_EQ(blobs[0], blobs[1]);
    EXPECT_EQ(blobs[0], blobs[2]);

    // Counters accumulate work performed, never scheduling: the
    // snapshots must match across thread counts too.
    EXPECT_EQ(counters[0], counters[1]);
    EXPECT_EQ(counters[0], counters[2]);
    // spec, bbv, sp, regions, fused, whole-cache projection,
    // regional pinball, cold replays
    EXPECT_EQ(counters[0].at("graph.nodes_computed"),
              kBenches.size() * 8);
    EXPECT_EQ(counters[0].at("graph.tasks_scheduled"),
              kBenches.size() * targets.size());
}

TEST(ArtifactGraphScheduling, SingleFlightUnderConcurrentRequests)
{
    ThreadPool::setGlobalThreads(8);
    obs::resetCounters();
    ArtifactGraph g(fastConfig(),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache("")));

    // 16 concurrent requests for the same node: exactly one
    // computation, every caller sees the same stored value.
    std::atomic<const SimPointResult *> first{nullptr};
    std::atomic<int> mismatches{0};
    parallelFor(16, [&](std::size_t) {
        const SimPointResult &r = g.simpoints(kBenches[0]);
        const SimPointResult *expected = nullptr;
        if (!first.compare_exchange_strong(expected, &r) &&
            expected != &r)
            mismatches.fetch_add(1);
    });
    ThreadPool::setGlobalThreads(0);

    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(obs::counterSnapshot().at("graph.nodes_computed"),
              3u); // spec, bbv profile, simpoints — each once
}

TEST(ArtifactGraphCache, ColdThenWarmRunsAreByteIdentical)
{
    std::string dir = testing::TempDir() + "/splab-graph-cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const std::vector<ArtifactKind> targets = {
        ArtifactKind::SimPoints, ArtifactKind::WholeCache,
        ArtifactKind::PointsCacheCold};

    obs::resetCounters();
    ArtifactGraph cold(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    cold.runSuite(kBenches, targets);
    std::vector<u8> coldBytes = graphResultBytes(cold);
    u64 coldHits = obs::counterSnapshot().at("graph.cache_hits");
    EXPECT_EQ(coldHits, 0u);

    obs::resetCounters();
    ArtifactGraph warm(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    warm.runSuite(kBenches, targets);
    std::vector<u8> warmBytes = graphResultBytes(warm);

    EXPECT_EQ(coldBytes, warmBytes);
    // Persisted targets come back from disk; only the memory-only
    // upstream (spec) is recomputed.  A warm simpoints hit must not
    // recompute the BBV profile.
    auto stats = obs::counterSnapshot();
    EXPECT_EQ(stats.at("graph.cache_hits"), kBenches.size() * 3);
    EXPECT_EQ(stats.at("graph.nodes_computed"), kBenches.size());

    // Same config in a third instance: keys resolve to the same
    // blobs without touching artifact values at all.
    ArtifactGraph probe(fastConfig(),
                        std::make_shared<const ArtifactCache>(
                            ArtifactCache(dir)));
    EXPECT_EQ(probe.artifactKey(kBenches[0],
                                ArtifactKind::PointsCacheCold),
              cold.artifactKey(kBenches[0],
                               ArtifactKind::PointsCacheCold));
    std::filesystem::remove_all(dir);
}

/**
 * Raw bytes of every *blob* file in @p dir, keyed by filename.  The
 * cache's bookkeeping files ("index.bin", "index.lock") are skipped:
 * the index records scheduling-dependent last-use stamps, so only
 * the content-addressed blobs are comparable across runs and thread
 * counts.
 */
std::map<std::string, std::vector<char>>
dirContents(const std::string &dir)
{
    std::map<std::string, std::vector<char>> out;
    for (const auto &e : std::filesystem::directory_iterator(dir)) {
        std::string name = e.path().filename().string();
        if (name.rfind("index.", 0) == 0)
            continue;
        std::ifstream f(e.path(), std::ios::binary);
        out[name] = {std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>()};
    }
    return out;
}

u64
counterOr0(const std::map<std::string, u64> &snap, const char *name)
{
    auto it = snap.find(name);
    return it == snap.end() ? 0 : it->second;
}

std::vector<u8>
fusedBytes(ArtifactGraph &g)
{
    ByteWriter w;
    for (const std::string &b : kBenches) {
        w.put(g.wholeFused(b));
        w.put(g.wholeCache(b));
        w.put(g.wholeTiming(b));
    }
    return w.bytes();
}

/**
 * Like fusedBytes() but with the wall-clock fields zeroed.  Blob
 * bytes carry wallSeconds verbatim (warm loads must reproduce the
 * measuring run's timing), so exact byte equality only holds between
 * a store and its warm load; across *independent computes* the
 * determinism contract — like graphResultBytes and the manifest
 * timing section — excludes wall time.
 */
std::vector<u8>
fusedStableBytes(ArtifactGraph &g)
{
    ByteWriter w;
    auto putCache = [&](CacheRunMetrics m) {
        m.wallSeconds = 0.0;
        w.put(m);
    };
    auto putTiming = [&](TimingRunMetrics m) {
        m.wallSeconds = 0.0;
        w.put(m);
    };
    for (const std::string &b : kBenches) {
        putCache(g.wholeFused(b).cache);
        putTiming(g.wholeFused(b).timing);
        putCache(g.wholeCache(b));
        putTiming(g.wholeTiming(b));
    }
    return w.bytes();
}

const std::vector<ArtifactKind> kWholeTargets = {
    ArtifactKind::WholeFused, ArtifactKind::WholeCache,
    ArtifactKind::WholeTiming};

TEST(FusedPersistence, WarmRunSkipsFusedTraversal)
{
    std::string dir = testing::TempDir() + "/splab-fused-cache";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    obs::resetCounters();
    ArtifactGraph cold(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    cold.runSuite(kBenches, kWholeTargets);
    std::vector<u8> coldBytes = fusedBytes(cold);
    auto coldStats = obs::counterSnapshot();
    // Each projection's single sub-blob was already stored by the
    // fused node (its serialization is their concatenation): exactly
    // two share hits per benchmark, and only two shared files plus
    // three ref blobs per benchmark on disk.
    EXPECT_EQ(counterOr0(coldStats, "artifact_cache.blob_share_hits"),
              kBenches.size() * 2);
    auto coldFiles = dirContents(dir);
    std::size_t sharedFiles = 0;
    for (const auto &kv : coldFiles)
        if (kv.first.rfind("shared-", 0) == 0)
            ++sharedFiles;
    EXPECT_EQ(sharedFiles, kBenches.size() * 2);

    obs::resetCounters();
    ArtifactGraph warm(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    warm.runSuite(kBenches, kWholeTargets);
    EXPECT_EQ(fusedBytes(warm), coldBytes);

    auto warmStats = obs::counterSnapshot();
    // All three whole-run nodes come back from disk; only the spec
    // (needed for keying) is recomputed — the warm run performs no
    // fused traversal at all.
    EXPECT_EQ(counterOr0(warmStats, "graph.cache_hits"),
              kBenches.size() * 3);
    EXPECT_EQ(counterOr0(warmStats, "graph.nodes_computed"),
              kBenches.size());
    EXPECT_EQ(counterOr0(warmStats, "pin.windows"), 0u);
    EXPECT_EQ(counterOr0(warmStats, "pin.chunks_replayed"), 0u);
    EXPECT_EQ(counterOr0(warmStats, "graph.shared_blob_fallbacks"),
              0u);

    // The warm run must not have rewritten or perturbed any blob.
    EXPECT_EQ(dirContents(dir), coldFiles);
    std::filesystem::remove_all(dir);
}

TEST(FusedPersistence, BlobLayoutAndCountersThreadCountInvariant)
{
    std::vector<std::set<std::string>> refNames;
    std::vector<std::size_t> sharedCounts;
    std::vector<u64> shareHits;
    std::vector<std::vector<u8>> values;
    for (std::size_t threads : {1u, 2u, 8u}) {
        std::string dir = testing::TempDir() +
                          "/splab-fused-threads-" +
                          std::to_string(threads);
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        ThreadPool::setGlobalThreads(threads);
        obs::resetCounters();
        ArtifactGraph g(fastConfig(),
                        std::make_shared<const ArtifactCache>(
                            ArtifactCache(dir)));
        g.runSuite(kBenches, kWholeTargets);
        values.push_back(fusedStableBytes(g));
        std::set<std::string> refs;
        std::size_t shared = 0;
        for (const auto &kv : dirContents(dir)) {
            if (kv.first.rfind("shared-", 0) == 0)
                ++shared;
            else
                refs.insert(kv.first);
        }
        refNames.push_back(refs);
        sharedCounts.push_back(shared);
        shareHits.push_back(counterOr0(
            obs::counterSnapshot(), "artifact_cache.blob_share_hits"));
        std::filesystem::remove_all(dir);
    }
    ThreadPool::setGlobalThreads(0);

    // Same stable value bytes, same key-addressed blob names, same
    // sub-blob count and share-hit count at every thread count.
    // (Shared filenames are content hashes over bytes that include
    // the measuring run's wall time, so only their count is
    // comparable across independent runs.)
    EXPECT_EQ(values[0], values[1]);
    EXPECT_EQ(values[0], values[2]);
    EXPECT_EQ(refNames[0], refNames[1]);
    EXPECT_EQ(refNames[0], refNames[2]);
    EXPECT_EQ(sharedCounts[0], kBenches.size() * 2);
    EXPECT_EQ(sharedCounts[1], sharedCounts[0]);
    EXPECT_EQ(sharedCounts[2], sharedCounts[0]);
    EXPECT_EQ(shareHits[0], kBenches.size() * 2);
    EXPECT_EQ(shareHits[1], shareHits[0]);
    EXPECT_EQ(shareHits[2], shareHits[0]);
}

TEST(FusedPersistence, CorruptSharedBlobRecomputesAndHeals)
{
    std::string dir = testing::TempDir() + "/splab-fused-corrupt";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    ThreadPool::setGlobalThreads(1);

    ArtifactGraph cold(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    cold.runSuite(kBenches, kWholeTargets);
    std::vector<u8> coldStable = fusedStableBytes(cold);

    // Trash every shared sub-blob (truncated garbage).
    std::size_t corrupted = 0;
    for (const auto &e : std::filesystem::directory_iterator(dir))
        if (e.path().filename().string().rfind("shared-", 0) == 0) {
            std::ofstream f(e.path(), std::ios::binary |
                                          std::ios::trunc);
            f << "garbage";
            ++corrupted;
        }
    ASSERT_EQ(corrupted, kBenches.size() * 2);

    obs::resetCounters();
    ArtifactGraph warm(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    // Degrades to recompute — identical values modulo wall time, no
    // crash — and the recompute's store writes fresh sub-blobs and
    // re-points every ref blob at them.
    EXPECT_EQ(fusedStableBytes(warm), coldStable);
    std::vector<u8> warmExact = fusedBytes(warm);
    auto stats = obs::counterSnapshot();
    EXPECT_GE(counterOr0(stats, "graph.shared_blob_fallbacks"), 1u);

    // Healed: a third instance is a clean warm run again, loading
    // the recomputed bytes verbatim.
    obs::resetCounters();
    ArtifactGraph again(fastConfig(),
                        std::make_shared<const ArtifactCache>(
                            ArtifactCache(dir)));
    EXPECT_EQ(fusedBytes(again), warmExact);
    auto cleanStats = obs::counterSnapshot();
    EXPECT_EQ(counterOr0(cleanStats, "graph.shared_blob_fallbacks"),
              0u);
    EXPECT_EQ(counterOr0(cleanStats, "pin.windows"), 0u);

    ThreadPool::setGlobalThreads(0);
    std::filesystem::remove_all(dir);
}

TEST(FusedPersistence, EnvKnobKeepsFusedMemoryResident)
{
    std::string dir = testing::TempDir() + "/splab-fused-knob";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    setenv("SPLAB_FUSED_PERSIST", "0", 1);

    ArtifactGraph cold(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    cold.runSuite(kBenches, kWholeTargets);
    std::vector<u8> coldBytes = fusedBytes(cold);
    // No wholefused ref blob on disk; projections persist as usual.
    for (const auto &kv : dirContents(dir))
        EXPECT_EQ(kv.first.rfind("wholefused-", 0),
                  std::string::npos)
            << kv.first;

    // Warm run: projections load, the fused node itself would need
    // recomputing — but nothing forces it, so the warm accessors of
    // the projections still skip the traversal.
    obs::resetCounters();
    ArtifactGraph warm(fastConfig(),
                       std::make_shared<const ArtifactCache>(
                           ArtifactCache(dir)));
    ByteWriter w;
    for (const std::string &b : kBenches) {
        w.put(warm.wholeCache(b));
        w.put(warm.wholeTiming(b));
    }
    auto stats = obs::counterSnapshot();
    EXPECT_EQ(counterOr0(stats, "pin.windows"), 0u);
    EXPECT_EQ(counterOr0(stats, "graph.cache_hits"),
              kBenches.size() * 2);

    unsetenv("SPLAB_FUSED_PERSIST");
    std::filesystem::remove_all(dir);
}

TEST(ArtifactGraphManifest, RecordsDependencyClosure)
{
    ArtifactGraph g(fastConfig(),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache("")));
    obs::RunManifest m("test");
    g.recordArtifacts(m, {kBenches[0]},
                      {ArtifactKind::PointsCacheCold});
    std::string json = m.renderDeterministic();
    // Target plus its transitive upstreams, nothing else.
    EXPECT_NE(json.find("\"pointscold/" + kBenches[0] + "\""),
              std::string::npos);
    // Region selection is in the closure (strategy-qualified blob
    // family); the SimPoints node is not — Regions declares its
    // value dependency on the BBV profile, not on how the simpoint
    // strategy's compute routes.
    EXPECT_NE(json.find("\"regions_simpoint/" + kBenches[0] + "\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"simpoints/"), std::string::npos);
    EXPECT_NE(json.find("\"bbvprofile/" + kBenches[0] + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"spec/" + kBenches[0] + "\""),
              std::string::npos);
    EXPECT_EQ(json.find("\"wholecache/"), std::string::npos);
    EXPECT_EQ(json.find("\"pointswarm/"), std::string::npos);
}

TEST(ArtifactGraphSerialization, RoundTripsEveryKind)
{
    ArtifactGraph g(fastConfig(),
                    std::make_shared<const ArtifactCache>(
                        ArtifactCache("")));
    const std::string &b = kBenches[0];
    g.runSuite({b}, {ArtifactKind::PointsCacheCold});

    auto roundTrip = [&](ArtifactKind kind, const ArtifactValue &v) {
        ByteWriter w;
        serializeArtifact(w, v);
        ByteReader r(w.bytes());
        ArtifactValue back = deserializeArtifact(kind, r);
        ByteWriter w2;
        serializeArtifact(w2, back);
        EXPECT_EQ(w.bytes(), w2.bytes()) << artifactKindName(kind);
    };
    roundTrip(ArtifactKind::Spec, g.spec(b));
    roundTrip(ArtifactKind::BbvProfile, g.bbvProfile(b));
    roundTrip(ArtifactKind::SimPoints, g.simpoints(b));
    roundTrip(ArtifactKind::Regions, g.regions(b));
    roundTrip(ArtifactKind::PointsCacheCold, g.pointsCacheCold(b));
}

} // namespace
} // namespace splab
