/**
 * @file
 * Property-style parameterized sweeps over the library's invariants:
 * replay determinism, weight conservation, chunk exactness and
 * clustering sanity across a grid of configurations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/pipeline.hh"
#include "pin/engine.hh"
#include "pin/tools/bbv_tool.hh"
#include "pin/tools/inscount.hh"
#include "pinball/logger.hh"
#include "workload/suite.hh"
#include "workload/synthetic.hh"

namespace splab
{
namespace
{

BenchmarkSpec
paramSpec(u64 seed, u32 nPhases, ScheduleKind sched, ICount chunkLen)
{
    BenchmarkSpec s;
    s.name = "prop-" + std::to_string(seed);
    s.seed = seed;
    s.chunkLen = chunkLen;
    s.totalChunks = 400;
    Rng rng(seed, 0x9999ULL);
    for (u32 p = 0; p < nPhases; ++p) {
        PhaseSpec ph;
        ph.name = "p" + std::to_string(p);
        ph.weight = rng.uniform(0.5, 2.0);
        ph.kernel = static_cast<KernelKind>(
            rng.below(kNumKernelKinds));
        ph.workingSetBytes = 64 * 1024ULL
                             << rng.below(8); // 64K..8M
        ph.numBlocks = 6 + static_cast<u32>(rng.below(20));
        ph.avgBlockLen = 40 + static_cast<u32>(rng.below(100));
        s.phases.push_back(ph);
    }
    s.schedule = sched;
    s.dwellChunks = 30;
    return s;
}

// ---------------------------------------------------------------
// Replay determinism across seeds / schedules / chunk lengths.

class ReplayProperty
    : public testing::TestWithParam<
          std::tuple<u64, ScheduleKind, ICount>>
{
};

TEST_P(ReplayProperty, AnyWindowReplaysBitIdentically)
{
    auto [seed, sched, chunkLen] = GetParam();
    BenchmarkSpec spec = paramSpec(seed, 3, sched, chunkLen);
    SyntheticWorkload wl(spec);

    Rng rng(seed, 0xabcULL);
    for (int trial = 0; trial < 4; ++trial) {
        u64 first = rng.below(spec.totalChunks - 10);
        u64 n = 1 + rng.below(10);
        u64 a = Logger::streamChecksum(wl, first, n);
        u64 b = Logger::streamChecksum(wl, first, n);
        EXPECT_EQ(a, b);
        // Disjoint or offset windows must differ.
        u64 c = Logger::streamChecksum(wl, first + 1 < spec.totalChunks - n
                                               ? first + 1
                                               : first - 1,
                                       n);
        EXPECT_NE(a, c);
    }
}

TEST_P(ReplayProperty, InstructionCountsAreExact)
{
    auto [seed, sched, chunkLen] = GetParam();
    BenchmarkSpec spec = paramSpec(seed, 3, sched, chunkLen);
    SyntheticWorkload wl(spec);
    InsCountTool count;
    Engine engine;
    engine.attach(&count);
    engine.run(wl, 7, 31);
    EXPECT_EQ(count.instructions(), 31 * chunkLen);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ReplayProperty,
    testing::Combine(
        testing::Values<u64>(1, 17, 9001),
        testing::Values(ScheduleKind::Contiguous,
                        ScheduleKind::Interleaved,
                        ScheduleKind::Markov),
        testing::Values<ICount>(500, 1000, 2000)));

// ---------------------------------------------------------------
// SimPoint weight conservation across phase counts.

class WeightProperty : public testing::TestWithParam<u32>
{
};

TEST_P(WeightProperty, SelectionConservesWeightAndCoverage)
{
    u32 nPhases = GetParam();
    BenchmarkSpec spec =
        paramSpec(nPhases * 131, nPhases, ScheduleKind::Markov, 1000);
    spec.totalChunks = 3000;
    SimPointConfig cfg;
    cfg.maxK = nPhases + 6;
    PinPointsPipeline pipe(cfg, ArtifactCache(""));
    SimPointResult r = pipe.simpoints(spec);

    EXPECT_NEAR(r.totalWeight(), 1.0, 1e-9);
    u64 totalPop = 0;
    for (const auto &p : r.points) {
        EXPECT_LT(p.slice, r.totalSlices);
        totalPop += p.clusterSize;
    }
    EXPECT_EQ(totalPop, r.totalSlices);
    // 90th percentile needs no more points than the full set.
    auto reduced = r.topByWeight(0.9);
    EXPECT_LE(reduced.size(), r.points.size());
    double cum = 0.0;
    for (const auto &p : reduced)
        cum += p.weight;
    EXPECT_GE(cum, 0.9 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PhaseCounts, WeightProperty,
                         testing::Values(1u, 2u, 4u, 8u, 12u));

// ---------------------------------------------------------------
// BBV slicing: slice count follows slice length.

class SliceProperty : public testing::TestWithParam<ICount>
{
};

TEST_P(SliceProperty, SliceCountMatchesLength)
{
    ICount sliceLen = GetParam();
    BenchmarkSpec spec =
        paramSpec(5, 2, ScheduleKind::Interleaved, 1000);
    spec.totalChunks = 320;
    SyntheticWorkload wl(spec);
    BbvTool bbv(sliceLen);
    Engine engine;
    engine.attach(&bbv);
    engine.runWhole(wl);
    EXPECT_EQ(bbv.vectors().size(),
              spec.totalInstrs() / sliceLen);
    for (const auto &v : bbv.vectors())
        EXPECT_NEAR(v.l1Norm(), static_cast<double>(sliceLen),
                    1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    SliceLengths, SliceProperty,
    testing::Values<ICount>(1000, 2000, 4000, 8000, 16000, 32000));

// ---------------------------------------------------------------
// Suite-wide structural invariants (one instance per benchmark).

class SuiteProperty : public testing::TestWithParam<const char *>
{
};

TEST_P(SuiteProperty, PhaseWeightsAndGeometry)
{
    BenchmarkSpec spec = benchmarkByName(GetParam());
    double sum = 0.0;
    for (const auto &p : spec.phases) {
        EXPECT_GT(p.weight, 0.0);
        EXPECT_GE(p.workingSetBytes, 4096u);
        EXPECT_GE(p.numBlocks, 1u);
        sum += p.weight;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_EQ(spec.totalChunks % 10, 0u); // whole default slices
}

TEST_P(SuiteProperty, ScheduleTouchesEveryDesignedPhase)
{
    BenchmarkSpec spec = benchmarkByName(GetParam());
    SyntheticWorkload wl(spec);
    auto w = wl.schedule().realizedWeights();
    // Every phase must actually appear in the schedule, or Table II
    // reproduction is impossible by construction.
    std::size_t present = 0;
    for (double x : w)
        present += x > 0.0;
    EXPECT_EQ(present, spec.phases.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProperty,
    testing::Values("500.perlbench_r", "502.gcc_r", "505.mcf_r",
                    "520.omnetpp_r", "525.x264_r", "531.deepsjeng_r",
                    "541.leela_r", "548.exchange2_r", "557.xz_r",
                    "600.perlbench_s", "602.gcc_s", "605.mcf_s",
                    "620.omnetpp_s", "623.xalancbmk_s", "625.x264_s",
                    "631.deepsjeng_s", "641.leela_s",
                    "648.exchange2_s", "657.xz_s", "503.bwaves_r",
                    "507.cactuBSSN_r", "508.namd_r", "510.parest_r",
                    "511.povray_r", "519.lbm_r", "526.blender_r",
                    "538.imagick_r", "544.nab_r", "549.fotonik3d_r"));

} // namespace
} // namespace splab
