# Empty dependencies file for ablation_simpoint.
# This may be replaced when dependencies are built.
