file(REMOVE_RECURSE
  "CMakeFiles/ablation_simpoint.dir/ablation_simpoint.cc.o"
  "CMakeFiles/ablation_simpoint.dir/ablation_simpoint.cc.o.d"
  "ablation_simpoint"
  "ablation_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
