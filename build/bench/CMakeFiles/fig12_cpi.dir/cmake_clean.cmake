file(REMOVE_RECURSE
  "CMakeFiles/fig12_cpi.dir/fig12_cpi.cc.o"
  "CMakeFiles/fig12_cpi.dir/fig12_cpi.cc.o.d"
  "fig12_cpi"
  "fig12_cpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
