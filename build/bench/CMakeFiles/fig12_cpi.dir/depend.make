# Empty dependencies file for fig12_cpi.
# This may be replaced when dependencies are built.
