# Empty compiler generated dependencies file for fig6_weights.
# This may be replaced when dependencies are built.
