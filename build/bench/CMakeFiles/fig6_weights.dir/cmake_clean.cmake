file(REMOVE_RECURSE
  "CMakeFiles/fig6_weights.dir/fig6_weights.cc.o"
  "CMakeFiles/fig6_weights.dir/fig6_weights.cc.o.d"
  "fig6_weights"
  "fig6_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
