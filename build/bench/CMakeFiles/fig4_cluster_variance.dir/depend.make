# Empty dependencies file for fig4_cluster_variance.
# This may be replaced when dependencies are built.
