# Empty compiler generated dependencies file for fig9_percentile_sweep.
# This may be replaced when dependencies are built.
