file(REMOVE_RECURSE
  "CMakeFiles/fig9_percentile_sweep.dir/fig9_percentile_sweep.cc.o"
  "CMakeFiles/fig9_percentile_sweep.dir/fig9_percentile_sweep.cc.o.d"
  "fig9_percentile_sweep"
  "fig9_percentile_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_percentile_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
