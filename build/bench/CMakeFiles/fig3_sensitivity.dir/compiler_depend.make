# Empty compiler generated dependencies file for fig3_sensitivity.
# This may be replaced when dependencies are built.
