# Empty compiler generated dependencies file for fig10_l3_accesses.
# This may be replaced when dependencies are built.
