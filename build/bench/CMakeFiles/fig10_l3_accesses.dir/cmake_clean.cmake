file(REMOVE_RECURSE
  "CMakeFiles/fig10_l3_accesses.dir/fig10_l3_accesses.cc.o"
  "CMakeFiles/fig10_l3_accesses.dir/fig10_l3_accesses.cc.o.d"
  "fig10_l3_accesses"
  "fig10_l3_accesses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_l3_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
