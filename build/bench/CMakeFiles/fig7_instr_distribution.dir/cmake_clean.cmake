file(REMOVE_RECURSE
  "CMakeFiles/fig7_instr_distribution.dir/fig7_instr_distribution.cc.o"
  "CMakeFiles/fig7_instr_distribution.dir/fig7_instr_distribution.cc.o.d"
  "fig7_instr_distribution"
  "fig7_instr_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_instr_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
