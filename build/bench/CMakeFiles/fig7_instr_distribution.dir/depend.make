# Empty dependencies file for fig7_instr_distribution.
# This may be replaced when dependencies are built.
