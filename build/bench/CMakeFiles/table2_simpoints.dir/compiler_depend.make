# Empty compiler generated dependencies file for table2_simpoints.
# This may be replaced when dependencies are built.
