file(REMOVE_RECURSE
  "CMakeFiles/table2_simpoints.dir/table2_simpoints.cc.o"
  "CMakeFiles/table2_simpoints.dir/table2_simpoints.cc.o.d"
  "table2_simpoints"
  "table2_simpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_simpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
