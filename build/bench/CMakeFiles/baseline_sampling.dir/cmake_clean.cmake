file(REMOVE_RECURSE
  "CMakeFiles/baseline_sampling.dir/baseline_sampling.cc.o"
  "CMakeFiles/baseline_sampling.dir/baseline_sampling.cc.o.d"
  "baseline_sampling"
  "baseline_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
