# Empty dependencies file for baseline_sampling.
# This may be replaced when dependencies are built.
