# Empty dependencies file for fig8_cache_missrates.
# This may be replaced when dependencies are built.
