file(REMOVE_RECURSE
  "CMakeFiles/fig8_cache_missrates.dir/fig8_cache_missrates.cc.o"
  "CMakeFiles/fig8_cache_missrates.dir/fig8_cache_missrates.cc.o.d"
  "fig8_cache_missrates"
  "fig8_cache_missrates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cache_missrates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
