
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_cache_missrates.cc" "bench/CMakeFiles/fig8_cache_missrates.dir/fig8_cache_missrates.cc.o" "gcc" "bench/CMakeFiles/fig8_cache_missrates.dir/fig8_cache_missrates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/splab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pinball/CMakeFiles/splab_pinball.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/splab_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/splab_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/pin/CMakeFiles/splab_pin.dir/DependInfo.cmake"
  "/root/repo/build/src/simpoint/CMakeFiles/splab_simpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/splab_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/splab_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/splab_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splab_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
