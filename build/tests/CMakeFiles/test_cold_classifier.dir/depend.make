# Empty dependencies file for test_cold_classifier.
# This may be replaced when dependencies are built.
