file(REMOVE_RECURSE
  "CMakeFiles/test_cold_classifier.dir/test_cold_classifier.cc.o"
  "CMakeFiles/test_cold_classifier.dir/test_cold_classifier.cc.o.d"
  "test_cold_classifier"
  "test_cold_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cold_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
