file(REMOVE_RECURSE
  "CMakeFiles/test_pin.dir/test_pin.cc.o"
  "CMakeFiles/test_pin.dir/test_pin.cc.o.d"
  "test_pin"
  "test_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
