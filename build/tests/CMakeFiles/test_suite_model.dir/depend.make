# Empty dependencies file for test_suite_model.
# This may be replaced when dependencies are built.
