file(REMOVE_RECURSE
  "CMakeFiles/test_suite_model.dir/test_suite_model.cc.o"
  "CMakeFiles/test_suite_model.dir/test_suite_model.cc.o.d"
  "test_suite_model"
  "test_suite_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suite_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
