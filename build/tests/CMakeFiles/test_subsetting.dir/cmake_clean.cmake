file(REMOVE_RECURSE
  "CMakeFiles/test_subsetting.dir/test_subsetting.cc.o"
  "CMakeFiles/test_subsetting.dir/test_subsetting.cc.o.d"
  "test_subsetting"
  "test_subsetting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subsetting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
