# Empty dependencies file for test_subsetting.
# This may be replaced when dependencies are built.
