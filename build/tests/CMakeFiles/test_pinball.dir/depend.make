# Empty dependencies file for test_pinball.
# This may be replaced when dependencies are built.
