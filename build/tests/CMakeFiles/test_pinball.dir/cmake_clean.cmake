file(REMOVE_RECURSE
  "CMakeFiles/test_pinball.dir/test_pinball.cc.o"
  "CMakeFiles/test_pinball.dir/test_pinball.cc.o.d"
  "test_pinball"
  "test_pinball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pinball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
