file(REMOVE_RECURSE
  "libsplab_simpoint.a"
)
