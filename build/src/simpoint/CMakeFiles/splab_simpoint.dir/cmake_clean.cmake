file(REMOVE_RECURSE
  "CMakeFiles/splab_simpoint.dir/baselines.cc.o"
  "CMakeFiles/splab_simpoint.dir/baselines.cc.o.d"
  "CMakeFiles/splab_simpoint.dir/bbv.cc.o"
  "CMakeFiles/splab_simpoint.dir/bbv.cc.o.d"
  "CMakeFiles/splab_simpoint.dir/bic.cc.o"
  "CMakeFiles/splab_simpoint.dir/bic.cc.o.d"
  "CMakeFiles/splab_simpoint.dir/kmeans.cc.o"
  "CMakeFiles/splab_simpoint.dir/kmeans.cc.o.d"
  "CMakeFiles/splab_simpoint.dir/projection.cc.o"
  "CMakeFiles/splab_simpoint.dir/projection.cc.o.d"
  "CMakeFiles/splab_simpoint.dir/simpoint.cc.o"
  "CMakeFiles/splab_simpoint.dir/simpoint.cc.o.d"
  "libsplab_simpoint.a"
  "libsplab_simpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_simpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
