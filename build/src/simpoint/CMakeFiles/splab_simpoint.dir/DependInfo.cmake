
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simpoint/baselines.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/baselines.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/baselines.cc.o.d"
  "/root/repo/src/simpoint/bbv.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/bbv.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/bbv.cc.o.d"
  "/root/repo/src/simpoint/bic.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/bic.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/bic.cc.o.d"
  "/root/repo/src/simpoint/kmeans.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/kmeans.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/kmeans.cc.o.d"
  "/root/repo/src/simpoint/projection.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/projection.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/projection.cc.o.d"
  "/root/repo/src/simpoint/simpoint.cc" "src/simpoint/CMakeFiles/splab_simpoint.dir/simpoint.cc.o" "gcc" "src/simpoint/CMakeFiles/splab_simpoint.dir/simpoint.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/splab_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
