# Empty dependencies file for splab_simpoint.
# This may be replaced when dependencies are built.
