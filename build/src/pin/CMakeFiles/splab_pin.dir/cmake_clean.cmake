file(REMOVE_RECURSE
  "CMakeFiles/splab_pin.dir/engine.cc.o"
  "CMakeFiles/splab_pin.dir/engine.cc.o.d"
  "CMakeFiles/splab_pin.dir/tools/allcache.cc.o"
  "CMakeFiles/splab_pin.dir/tools/allcache.cc.o.d"
  "CMakeFiles/splab_pin.dir/tools/bbv_tool.cc.o"
  "CMakeFiles/splab_pin.dir/tools/bbv_tool.cc.o.d"
  "CMakeFiles/splab_pin.dir/tools/cold_classifier.cc.o"
  "CMakeFiles/splab_pin.dir/tools/cold_classifier.cc.o.d"
  "libsplab_pin.a"
  "libsplab_pin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_pin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
