file(REMOVE_RECURSE
  "libsplab_pin.a"
)
