# Empty dependencies file for splab_pin.
# This may be replaced when dependencies are built.
