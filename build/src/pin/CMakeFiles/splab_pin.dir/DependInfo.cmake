
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pin/engine.cc" "src/pin/CMakeFiles/splab_pin.dir/engine.cc.o" "gcc" "src/pin/CMakeFiles/splab_pin.dir/engine.cc.o.d"
  "/root/repo/src/pin/tools/allcache.cc" "src/pin/CMakeFiles/splab_pin.dir/tools/allcache.cc.o" "gcc" "src/pin/CMakeFiles/splab_pin.dir/tools/allcache.cc.o.d"
  "/root/repo/src/pin/tools/bbv_tool.cc" "src/pin/CMakeFiles/splab_pin.dir/tools/bbv_tool.cc.o" "gcc" "src/pin/CMakeFiles/splab_pin.dir/tools/bbv_tool.cc.o.d"
  "/root/repo/src/pin/tools/cold_classifier.cc" "src/pin/CMakeFiles/splab_pin.dir/tools/cold_classifier.cc.o" "gcc" "src/pin/CMakeFiles/splab_pin.dir/tools/cold_classifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/splab_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/splab_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/simpoint/CMakeFiles/splab_simpoint.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/splab_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splab_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
