file(REMOVE_RECURSE
  "CMakeFiles/splab_perf.dir/native.cc.o"
  "CMakeFiles/splab_perf.dir/native.cc.o.d"
  "libsplab_perf.a"
  "libsplab_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
