# Empty compiler generated dependencies file for splab_perf.
# This may be replaced when dependencies are built.
