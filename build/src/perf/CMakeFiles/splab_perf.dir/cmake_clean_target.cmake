file(REMOVE_RECURSE
  "libsplab_perf.a"
)
