file(REMOVE_RECURSE
  "libsplab_cache.a"
)
