file(REMOVE_RECURSE
  "CMakeFiles/splab_cache.dir/cache.cc.o"
  "CMakeFiles/splab_cache.dir/cache.cc.o.d"
  "CMakeFiles/splab_cache.dir/hierarchy.cc.o"
  "CMakeFiles/splab_cache.dir/hierarchy.cc.o.d"
  "libsplab_cache.a"
  "libsplab_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
