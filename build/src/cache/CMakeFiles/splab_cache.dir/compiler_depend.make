# Empty compiler generated dependencies file for splab_cache.
# This may be replaced when dependencies are built.
