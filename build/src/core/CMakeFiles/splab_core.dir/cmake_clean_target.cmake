file(REMOVE_RECURSE
  "libsplab_core.a"
)
