# Empty compiler generated dependencies file for splab_core.
# This may be replaced when dependencies are built.
