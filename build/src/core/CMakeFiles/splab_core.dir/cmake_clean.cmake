file(REMOVE_RECURSE
  "CMakeFiles/splab_core.dir/artifact_cache.cc.o"
  "CMakeFiles/splab_core.dir/artifact_cache.cc.o.d"
  "CMakeFiles/splab_core.dir/experiments.cc.o"
  "CMakeFiles/splab_core.dir/experiments.cc.o.d"
  "CMakeFiles/splab_core.dir/metrics.cc.o"
  "CMakeFiles/splab_core.dir/metrics.cc.o.d"
  "CMakeFiles/splab_core.dir/pipeline.cc.o"
  "CMakeFiles/splab_core.dir/pipeline.cc.o.d"
  "CMakeFiles/splab_core.dir/runs.cc.o"
  "CMakeFiles/splab_core.dir/runs.cc.o.d"
  "CMakeFiles/splab_core.dir/subsetting.cc.o"
  "CMakeFiles/splab_core.dir/subsetting.cc.o.d"
  "libsplab_core.a"
  "libsplab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
