file(REMOVE_RECURSE
  "CMakeFiles/splab_isa.dir/instr.cc.o"
  "CMakeFiles/splab_isa.dir/instr.cc.o.d"
  "libsplab_isa.a"
  "libsplab_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
