# Empty dependencies file for splab_isa.
# This may be replaced when dependencies are built.
