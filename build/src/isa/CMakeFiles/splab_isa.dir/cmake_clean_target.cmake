file(REMOVE_RECURSE
  "libsplab_isa.a"
)
