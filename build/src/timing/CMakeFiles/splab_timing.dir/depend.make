# Empty dependencies file for splab_timing.
# This may be replaced when dependencies are built.
