file(REMOVE_RECURSE
  "CMakeFiles/splab_timing.dir/branch_predictor.cc.o"
  "CMakeFiles/splab_timing.dir/branch_predictor.cc.o.d"
  "CMakeFiles/splab_timing.dir/interval_core.cc.o"
  "CMakeFiles/splab_timing.dir/interval_core.cc.o.d"
  "CMakeFiles/splab_timing.dir/machine_config.cc.o"
  "CMakeFiles/splab_timing.dir/machine_config.cc.o.d"
  "libsplab_timing.a"
  "libsplab_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
