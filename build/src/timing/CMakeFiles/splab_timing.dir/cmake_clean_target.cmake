file(REMOVE_RECURSE
  "libsplab_timing.a"
)
