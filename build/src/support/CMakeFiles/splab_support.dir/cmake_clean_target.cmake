file(REMOVE_RECURSE
  "libsplab_support.a"
)
