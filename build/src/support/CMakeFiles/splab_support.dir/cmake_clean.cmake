file(REMOVE_RECURSE
  "CMakeFiles/splab_support.dir/env.cc.o"
  "CMakeFiles/splab_support.dir/env.cc.o.d"
  "CMakeFiles/splab_support.dir/logging.cc.o"
  "CMakeFiles/splab_support.dir/logging.cc.o.d"
  "CMakeFiles/splab_support.dir/rng.cc.o"
  "CMakeFiles/splab_support.dir/rng.cc.o.d"
  "CMakeFiles/splab_support.dir/serialize.cc.o"
  "CMakeFiles/splab_support.dir/serialize.cc.o.d"
  "CMakeFiles/splab_support.dir/stats_util.cc.o"
  "CMakeFiles/splab_support.dir/stats_util.cc.o.d"
  "CMakeFiles/splab_support.dir/table.cc.o"
  "CMakeFiles/splab_support.dir/table.cc.o.d"
  "libsplab_support.a"
  "libsplab_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
