# Empty compiler generated dependencies file for splab_support.
# This may be replaced when dependencies are built.
