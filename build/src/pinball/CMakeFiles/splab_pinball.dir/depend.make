# Empty dependencies file for splab_pinball.
# This may be replaced when dependencies are built.
