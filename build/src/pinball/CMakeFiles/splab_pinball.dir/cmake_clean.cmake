file(REMOVE_RECURSE
  "CMakeFiles/splab_pinball.dir/logger.cc.o"
  "CMakeFiles/splab_pinball.dir/logger.cc.o.d"
  "CMakeFiles/splab_pinball.dir/pinball.cc.o"
  "CMakeFiles/splab_pinball.dir/pinball.cc.o.d"
  "CMakeFiles/splab_pinball.dir/replayer.cc.o"
  "CMakeFiles/splab_pinball.dir/replayer.cc.o.d"
  "libsplab_pinball.a"
  "libsplab_pinball.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_pinball.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
