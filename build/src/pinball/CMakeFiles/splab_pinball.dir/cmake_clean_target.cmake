file(REMOVE_RECURSE
  "libsplab_pinball.a"
)
