file(REMOVE_RECURSE
  "libsplab_workload.a"
)
