file(REMOVE_RECURSE
  "CMakeFiles/splab_workload.dir/benchmark_spec.cc.o"
  "CMakeFiles/splab_workload.dir/benchmark_spec.cc.o.d"
  "CMakeFiles/splab_workload.dir/kernels.cc.o"
  "CMakeFiles/splab_workload.dir/kernels.cc.o.d"
  "CMakeFiles/splab_workload.dir/phase.cc.o"
  "CMakeFiles/splab_workload.dir/phase.cc.o.d"
  "CMakeFiles/splab_workload.dir/schedule.cc.o"
  "CMakeFiles/splab_workload.dir/schedule.cc.o.d"
  "CMakeFiles/splab_workload.dir/suite.cc.o"
  "CMakeFiles/splab_workload.dir/suite.cc.o.d"
  "CMakeFiles/splab_workload.dir/synthetic.cc.o"
  "CMakeFiles/splab_workload.dir/synthetic.cc.o.d"
  "libsplab_workload.a"
  "libsplab_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splab_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
