# Empty compiler generated dependencies file for splab_workload.
# This may be replaced when dependencies are built.
