
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmark_spec.cc" "src/workload/CMakeFiles/splab_workload.dir/benchmark_spec.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/benchmark_spec.cc.o.d"
  "/root/repo/src/workload/kernels.cc" "src/workload/CMakeFiles/splab_workload.dir/kernels.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/kernels.cc.o.d"
  "/root/repo/src/workload/phase.cc" "src/workload/CMakeFiles/splab_workload.dir/phase.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/phase.cc.o.d"
  "/root/repo/src/workload/schedule.cc" "src/workload/CMakeFiles/splab_workload.dir/schedule.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/schedule.cc.o.d"
  "/root/repo/src/workload/suite.cc" "src/workload/CMakeFiles/splab_workload.dir/suite.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/suite.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/workload/CMakeFiles/splab_workload.dir/synthetic.cc.o" "gcc" "src/workload/CMakeFiles/splab_workload.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/splab_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/splab_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
