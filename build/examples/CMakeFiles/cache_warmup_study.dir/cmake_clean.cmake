file(REMOVE_RECURSE
  "CMakeFiles/cache_warmup_study.dir/cache_warmup_study.cpp.o"
  "CMakeFiles/cache_warmup_study.dir/cache_warmup_study.cpp.o.d"
  "cache_warmup_study"
  "cache_warmup_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_warmup_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
