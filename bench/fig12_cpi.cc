/**
 * @file
 * Figure 12: CPI of native execution (perf counters) vs the Sniper
 * timing model driven by simulation points (Table III machine).
 *
 * Paper findings: Regional-run CPI correlates well with native
 * execution — 2.59% average CPI error across the suite; Reduced
 * Regional deviates more (13.9% average vs the whole run), with a
 * few outliers (e.g. 507.cactuBSSN_r).
 */

#include "bench_util.hh"
#include "support/stats_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("CPI: native (perf) vs Sniper with SimPoints",
                  "Figure 12");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::Native,
                                  ArtifactKind::PointsTiming});
    TableWriter t("Fig 12 - CPI comparison");
    t.header({"Benchmark", "Native (perf)", "Sniper Regional",
              "Sniper Reduced", "err R", "err RR"});
    CsvWriter csv;
    csv.header({"benchmark", "native_cpi", "regional_cpi",
                "reduced_cpi"});

    std::vector<double> natives, regionals;
    double errR = 0, errRR = 0, n = 0;
    for (const auto &e : suiteTable()) {
        double native = graph.native(e.name).cpi();
        const auto &pts = graph.pointsTiming(e.name);
        double regional = aggregateTiming(pts).cpi;
        double reduced =
            aggregateTiming(reduceToQuantile(pts, 0.9)).cpi;

        t.row({e.name, fmt(native, 3), fmt(regional, 3),
               fmt(reduced, 3),
               fmtPct(relativeError(regional, native)),
               fmtPct(relativeError(reduced, native))});
        csv.row({e.name, fmt(native, 5), fmt(regional, 5),
                 fmt(reduced, 5)});

        natives.push_back(native);
        regionals.push_back(regional);
        errR += relativeError(regional, native);
        errRR += relativeError(reduced, native);
        n += 1.0;
    }
    t.separator();
    t.row({"Average", "-", "-", "-", fmtPct(errR / n),
           fmtPct(errRR / n)});
    t.print();

    std::printf("\nPaper: 2.59%% average CPI error (Regional), "
                "13.9%% average deviation (Reduced).\n"
                "Measured: %.2f%% (Regional), %.2f%% (Reduced); "
                "native-vs-sampled CPI correlation r = %.3f.\n",
                errR / n * 100, errRR / n * 100,
                pearson(natives, regionals));
    bench::saveCsv(csv, argv[0]);
    return 0;
}
