/**
 * @file
 * Figure 7: instruction-distribution comparison of Whole, Regional
 * and Reduced Regional runs (ldstmix categories).
 *
 * Paper findings: category shares match the Whole Run almost
 * perfectly — errors below 1% for both Regional and Reduced
 * Regional; suite-average Whole mix is ~49.1% NO_MEM, 36.7% MEM_R,
 * 12.9% MEM_W.
 */

#include "bench_util.hh"

using namespace splab;

int
main(int, char **argv)
{
    bench::banner("Instruction distribution: Whole vs Regional vs "
                  "Reduced Regional", "Figure 7");

    ArtifactGraph graph(ExperimentConfig::paperDefaults());
    graph.runSuite(suiteNames(), {ArtifactKind::WholeCache,
                                  ArtifactKind::PointsCacheCold});
    TableWriter t("Fig 7 - instruction mix (NO_MEM/MEM_R/MEM_W/"
                  "MEM_RW, % of instructions)");
    t.header({"Benchmark", "Whole", "Regional", "Reduced",
              "max |err| R", "max |err| RR"});
    CsvWriter csv;
    csv.header({"benchmark", "run", "no_mem", "mem_r", "mem_w",
                "mem_rw"});

    auto mixString = [](const std::array<double, 4> &f) {
        return fmt(f[0] * 100, 1) + "/" + fmt(f[1] * 100, 1) + "/" +
               fmt(f[2] * 100, 1) + "/" + fmt(f[3] * 100, 1);
    };
    auto maxErr = [](const std::array<double, 4> &a,
                     const std::array<double, 4> &b) {
        double m = 0.0;
        for (int i = 0; i < 4; ++i)
            m = std::max(m, std::fabs(a[i] - b[i]));
        return m;
    };
    auto csvRow = [&](const std::string &bench, const char *run,
                      const std::array<double, 4> &f) {
        csv.row({bench, run, fmt(f[0], 6), fmt(f[1], 6), fmt(f[2], 6),
                 fmt(f[3], 6)});
    };

    std::array<double, 4> suiteWhole{};
    double sumErrR = 0.0, sumErrRR = 0.0;
    for (const auto &e : suiteTable()) {
        auto whole = wholeAsAggregate(graph.wholeCache(e.name));
        const auto &pts = graph.pointsCacheCold(e.name);
        auto regional = aggregateCache(pts);
        auto reduced = aggregateCache(reduceToQuantile(pts, 0.9));

        double errR = maxErr(regional.mixFrac, whole.mixFrac);
        double errRR = maxErr(reduced.mixFrac, whole.mixFrac);
        t.row({e.name, mixString(whole.mixFrac),
               mixString(regional.mixFrac),
               mixString(reduced.mixFrac), fmtPct(errR),
               fmtPct(errRR)});
        csvRow(e.name, "whole", whole.mixFrac);
        csvRow(e.name, "regional", regional.mixFrac);
        csvRow(e.name, "reduced", reduced.mixFrac);

        for (int i = 0; i < 4; ++i)
            suiteWhole[i] += whole.mixFrac[i];
        sumErrR += errR;
        sumErrRR += errRR;
    }
    double n = static_cast<double>(suiteTable().size());
    for (auto &x : suiteWhole)
        x /= n;
    t.separator();
    t.row({"Average", mixString(suiteWhole), "-", "-",
           fmtPct(sumErrR / n), fmtPct(sumErrRR / n)});
    t.print();

    std::printf("\nPaper: Whole-run average 49.1%% NO_MEM / 36.7%% "
                "MEM_R / 12.9%% MEM_W; sampling\nerrors < 1%%.  "
                "Measured: %.1f%% / %.1f%% / %.1f%%; avg max error "
                "%.2f%% (Regional), %.2f%% (Reduced).\n",
                suiteWhole[0] * 100, suiteWhole[1] * 100,
                suiteWhole[2] * 100, sumErrR / n * 100,
                sumErrRR / n * 100);
    bench::saveCsv(csv, argv[0]);
    return 0;
}
